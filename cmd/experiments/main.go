// Command experiments regenerates every table and figure of the paper's
// evaluation section (Section 7 and the Section 8 application studies)
// against the synthetic testbed. Each experiment prints a markdown table
// with the paper's reported values alongside the measured ones.
//
// Usage:
//
//	experiments -exp all|table2|table3|table4|table5|table6|fig9left|fig9right|coverage|search|recommend [-scale tiny|default]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alicoco/internal/apps/recommend"
	"alicoco/internal/apps/search"
	"alicoco/internal/conceptgen"
	"alicoco/internal/core"
	"alicoco/internal/hypernym"
	"alicoco/internal/mat"
	"alicoco/internal/matching"
	"alicoco/internal/pipeline"
	"alicoco/internal/tagging"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, table2..table6, fig9left, fig9right, coverage, search, recommend)")
	scale := flag.String("scale", "default", "testbed scale: tiny or default")
	flag.Parse()

	tb := buildTestbed(*scale)
	run := func(name string, fn func(*testbed)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fmt.Printf("\n## %s\n\n", name)
		fn(tb)
		fmt.Printf("\n_(%s in %.1fs)_\n", name, time.Since(start).Seconds())
	}

	run("table2", expTable2)
	run("fig9left", expFig9Left)
	run("fig9right", expFig9Right)
	run("table3", expTable3)
	run("table4", expTable4)
	run("table5", expTable5)
	run("table6", expTable6)
	run("coverage", expCoverage)
	run("search", expSearch)
	run("recommend", expRecommend)
}

// testbed is the shared world + corpus + embedding stack.
type testbed struct {
	scale string
	arts  *pipeline.Artifacts
	embed func(tokens []string) mat.Vec
	dim   int
}

func buildTestbed(scale string) *testbed {
	opts := pipeline.DefaultOptions()
	if scale == "tiny" {
		opts = pipeline.TinyOptions()
	}
	// Stronger embeddings for the model experiments. Workers=1 keeps
	// training bit-exact deterministic so the reproduced tables are
	// stable across reruns and machines (the serving pipeline defaults
	// to parallel training; reproduction trades speed for exactness).
	opts.W2V.Dim = 32
	opts.W2V.Epochs = 10
	opts.W2V.Workers = 1
	arts, err := pipeline.Build(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "build failed:", err)
		os.Exit(1)
	}
	tb := &testbed{scale: scale, arts: arts, dim: opts.W2V.Dim}
	tb.embed = func(tokens []string) mat.Vec {
		vs := arts.W2V.EmbedSeq(tokens)
		out := mat.NewVec(tb.dim)
		for _, v := range vs {
			out.Add(v)
		}
		if len(vs) > 0 {
			out.Scale(1 / float64(len(vs)))
		}
		return out
	}
	fmt.Printf("testbed: scale=%s nodes=%d edges=%d corpus=%d sentences\n",
		scale, arts.Net.NumNodes(), arts.Net.NumEdges(), arts.Corpus.Sentences())
	return tb
}

// ------------------------------------------------------------- Table 2 ----

func expTable2(tb *testbed) {
	s := tb.arts.Net.ComputeStats()
	fmt.Println("Paper (Table 2, production scale) vs this testbed (synthetic scale).")
	fmt.Println()
	fmt.Println("| Quantity | Paper | Measured |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| Primitive concepts | 2,853,276 | %d |\n", s.PerKind["primitive"])
	fmt.Printf("| E-commerce concepts | 5,262,063 | %d |\n", s.PerKind["econcept"])
	fmt.Printf("| Items | >3B | %d |\n", s.PerKind["item"])
	fmt.Printf("| Relations | >400B | %d |\n", s.Edges)
	fmt.Printf("| IsA (primitive layer) | 131,968 | %d |\n", s.IsAPrimitive)
	fmt.Printf("| IsA (e-commerce layer) | 22,287,167 | %d |\n", s.IsAEConcept)
	fmt.Printf("| Item-primitive edges | 21B | %d |\n", s.EdgesByKind["itemPrimitive"])
	fmt.Printf("| Item-econcept edges | 405B | %d |\n", s.EdgesByKind["itemEConcept"])
	fmt.Printf("| Econcept-primitive edges | 33,495,112 | %d |\n", s.EdgesByKind["interpretedBy"])
	fmt.Printf("| Avg primitives per item | 14 | %.1f |\n", s.AvgPrimitivesPerItem)
	fmt.Printf("| Avg e-concepts per item | 135 | %.1f |\n", s.AvgEConceptsPerItem)
	fmt.Printf("| Avg items per e-concept | 74,420 | %.1f |\n", s.AvgItemsPerEConcept)
	fmt.Println()
	fmt.Println("Primitive concepts per domain (measured):")
	fmt.Println()
	fmt.Print("```\n" + s.Render() + "```")
}

// -------------------------------------------------- hypernym experiments ----

func hypernymDataset(tb *testbed) *hypernym.Dataset {
	return hypernym.BuildDataset(tb.arts.World, tb.embed, 5)
}

func expFig9Left(tb *testbed) {
	d := hypernymDataset(tb)
	pos := d.TrainPos
	if len(pos) > 300 {
		pos = pos[:300]
	}
	fmt.Println("Figure 9 (left): MAP vs negative:positive ratio N (mean of 3 seeds).")
	fmt.Println("Paper shape: rises, best near N=100.")
	fmt.Println()
	fmt.Println("| N | MAP |")
	fmt.Println("|---|---|")
	for _, n := range []int{10, 20, 40, 60, 80, 100, 200} {
		var sum float64
		const seeds = 5
		for s := int64(0); s < seeds; s++ {
			train := d.TrainSet(pos, n, 7+s)
			model := hypernym.NewProjection(tb.dim, 4, 9+s)
			model.Fit(train, 6, 0.01, 32, 13+s)
			ev := d.Evaluate(model, d.TestPos, 0, 1)
			sum += ev.MAP
		}
		fmt.Printf("| %d | %.4f |\n", n, sum/seeds)
	}
}

func alPoolAndConfig(tb *testbed, d *hypernym.Dataset) ([]hypernym.Example, hypernym.ALConfig) {
	pos := d.TrainPos
	if len(pos) > 300 {
		pos = pos[:300]
	}
	pool := append(d.TrainSet(pos, 6, 21), d.HardNegatives(pos, 4, 22)...)
	cfg := hypernym.DefaultALConfig(tb.dim)
	cfg.K = len(pool) / 12
	cfg.MaxIters = 12
	cfg.Patience = 3
	cfg.Epochs = 4
	return pool, cfg
}

func expFig9Right(tb *testbed) {
	d := hypernymDataset(tb)
	pool, cfg := alPoolAndConfig(tb, d)
	fmt.Println("Figure 9 (right): best MAP per sampling strategy. Paper shape: UCS best (48.82%).")
	fmt.Println()
	fmt.Println("| Strategy | Best MAP |")
	fmt.Println("|---|---|")
	for _, strat := range []hypernym.Strategy{hypernym.Random, hypernym.US, hypernym.CS, hypernym.UCS} {
		res := hypernym.RunActiveLearning(d, pool, d.TestPos, cfg, strat)
		fmt.Printf("| %s | %.4f |\n", strat, res.Best.MAP)
	}
}

func expTable3(tb *testbed) {
	d := hypernymDataset(tb)
	pool, cfg := alPoolAndConfig(tb, d)

	// "Random" in Table 3 is training on the whole labeled pool without
	// active learning (labeled size = pool size).
	full := hypernym.NewProjection(cfg.EmbDim, cfg.TensorK, cfg.Seed+100)
	full.Fit(pool, cfg.Epochs, cfg.LR, 32, cfg.Seed)
	fullEv := d.Evaluate(full, d.TestPos, cfg.MaxCands, cfg.Seed)
	target := fullEv.MAP * 0.96

	fmt.Printf("Table 3: labels needed to reach a MAP comparable to full-pool training (target %.4f = 96%% of Random).\n", target)
	fmt.Println("Paper: Random 500k / US 375k / CS 400k / UCS 325k (UCS most economical, -35%).")
	fmt.Println()
	fmt.Println("| Strategy | Labeled | MRR | MAP | P@1 | Reduce vs Random |")
	fmt.Println("|---|---|---|---|---|---|")
	fmt.Printf("| Random (full pool) | %d | %.4f | %.4f | %.4f | - |\n",
		len(pool), fullEv.MRR, fullEv.MAP, fullEv.P1)
	for _, strat := range []hypernym.Strategy{hypernym.US, hypernym.CS, hypernym.UCS} {
		res := hypernym.RunActiveLearning(d, pool, d.TestPos, cfg, strat)
		labels := res.LabelsToReach(target)
		reduce := "(target not reached)"
		if labels < 0 {
			labels = res.LabeledUsed
		} else {
			reduce = fmt.Sprintf("%d (-%.0f%%)", len(pool)-labels, 100*float64(len(pool)-labels)/float64(len(pool)))
		}
		fmt.Printf("| %s | %d | %.4f | %.4f | %.4f | %s |\n",
			strat, labels, res.Best.MRR, res.Best.MAP, res.Best.P1, reduce)
	}
}

// ------------------------------------------------------------- Table 4 ----

func expTable4(tb *testbed) {
	w := tb.arts.World
	glossary := tb.arts.Glossary
	domainIdx := make(map[world.Domain]int)
	for i, d := range world.Domains {
		domainIdx[d] = i + 1
	}
	// Annotation is the scarce resource in the paper (the labeling ran for
	// months); the testbed mirrors that with a modest training set and a
	// large held-out test set whose implausible negatives use constraint
	// instantiations never seen in training — only generalization (not
	// memorization) solves them.
	nTrain, nTest := 800, 800
	if tb.scale == "tiny" {
		nTrain, nTest = 400, 300
	}
	trainCands, testCands := w.ConceptCandidatesHoldout(nTrain, nTest)

	configure := func(useChar, useWide, useLM, useKnow bool, seed int64) (float64, float64) {
		cfg := conceptgen.DefaultConfig()
		cfg.Epochs = 6
		cfg.Seed = seed
		cfg.UseChar, cfg.UseWide, cfg.UseLM, cfg.UseKnowledge = useChar, useWide, useLM, useKnow
		fz := &conceptgen.Featurizer{
			CharVocab: text.NewVocab(),
			WordVocab: text.NewVocab(),
			POS:       tb.arts.POS,
			LM:        tb.arts.LM,
			GlossDim:  cfg.GlossDim,
			UseLM:     useLM,
			DomainOf: func(word string) int {
				ids := w.BySurface[word]
				if len(ids) == 0 {
					return 0
				}
				return domainIdx[w.Prim(ids[0]).Domain]
			},
			GlossVec: func(word string) mat.Vec {
				ids := w.BySurface[word]
				if len(ids) == 0 {
					return mat.NewVec(cfg.GlossDim)
				}
				v := glossary.Vec(ids[0])
				out := mat.NewVec(cfg.GlossDim)
				copy(out, v)
				return out
			},
		}
		var trainS, testS []conceptgen.Sample
		for _, cand := range trainCands {
			trainS = append(trainS, conceptgen.Sample{Feat: fz.Featurize(cand.Tokens), Label: cand.Good})
		}
		for _, cand := range testCands {
			testS = append(testS, conceptgen.Sample{Feat: fz.Featurize(cand.Tokens), Label: cand.Good})
		}
		fz.CharVocab.Freeze()
		fz.WordVocab.Freeze()
		cls := conceptgen.NewClassifier(cfg, fz.CharVocab.Len(), fz.WordVocab.Len())
		cls.Train(trainS)
		return cls.EvaluatePrecision(testS)
	}

	fmt.Println("Table 4: concept classification ablation. Paper: 0.870 / 0.900 / 0.915 / 0.935.")
	fmt.Println("(The +Wide row groups the character branch with the surface-form wide features.)")
	fmt.Println()
	fmt.Println("| Model | Paper precision | Measured precision | Measured accuracy |")
	fmt.Println("|---|---|---|---|")
	rows := []struct {
		name                 string
		char, wide, lm, know bool
		paper                string
	}{
		{"Baseline (LSTM + Self Attention)", false, false, false, false, "0.870"},
		{"+Wide", true, true, false, false, "0.900"},
		{"+Wide & LM (BERT stand-in)", true, true, true, false, "0.915"},
		{"+Wide & LM & Knowledge", true, true, true, true, "0.935"},
	}
	for _, r := range rows {
		var sumP, sumA float64
		const seeds = 5
		for s := int64(0); s < seeds; s++ {
			prec, acc := configure(r.char, r.wide, r.lm, r.know, 23+s*37)
			sumP += prec
			sumA += acc
		}
		fmt.Printf("| %s | %s | %.3f | %.3f |\n", r.name, r.paper, sumP/seeds, sumA/seeds)
	}
	fmt.Println("\n(mean of 5 seeds; test negatives use held-out constraint instantiations)")
}

// ------------------------------------------------------------- Table 5 ----

func expTable5(tb *testbed) {
	w := tb.arts.World
	extra := 600
	if tb.scale == "tiny" {
		extra = 200
	}
	train, test := tagging.BuildDataset(w, extra, extra/2, 3)
	ambiguous := tagging.FilterAmbiguous(w, test)
	tm := tagging.BuildTextMatrix(tb.arts.Corpus.All(), tb.arts.D2V, 8)

	runCfg := func(fuzzy, know bool) (float64, float64, float64, float64) {
		cfg := tagging.DefaultConfig()
		cfg.UseFuzzy, cfg.UseKnowledge = fuzzy, know
		cfg.TMDim = tb.dim
		var tmFn func(string) mat.Vec
		if know {
			tmFn = tm
		}
		tg := tagging.NewTagger(world.DomainNames(), tb.arts.POS, tmFn, cfg)
		tg.Train(train)
		p, r, f1 := tagging.Evaluate(tg, test)
		_, _, f1Amb := tagging.Evaluate(tg, ambiguous)
		return p, r, f1, f1Amb
	}

	fmt.Printf("Table 5: concept tagging ablation (%d test concepts, %d with ambiguous surfaces).\n", len(test), len(ambiguous))
	fmt.Println("Paper F1: 0.8523 / 0.8703 / 0.8772.")
	fmt.Println()
	fmt.Println("| Model | Paper F1 | P | R | F1 | F1 (ambiguous subset) |")
	fmt.Println("|---|---|---|---|---|---|")
	rows := []struct {
		name        string
		fuzzy, know bool
		paper       string
	}{
		{"Baseline (BiLSTM-CRF)", false, false, "0.8523"},
		{"+Fuzzy CRF", true, false, "0.8703"},
		{"+Fuzzy CRF & Knowledge", true, true, "0.8772"},
	}
	for _, r := range rows {
		p, rc, f1, f1Amb := runCfg(r.fuzzy, r.know)
		fmt.Printf("| %s | %s | %.4f | %.4f | %.4f | %.4f |\n", r.name, r.paper, p, rc, f1, f1Amb)
	}
}

// ------------------------------------------------------------- Table 6 ----

func expTable6(tb *testbed) {
	w := tb.arts.World
	nPairs := 2500
	if tb.scale == "tiny" {
		nPairs = 600
	}
	pairs := matching.BuildPairs(w, nPairs, nPairs)
	train, test := matching.SplitPairs(pairs, 0.8, 9)
	groups := matching.BuildGroupedEval(w, 25, 30, 77)
	knowledge := matching.KnowledgeFn(w, tb.arts.Glossary)
	embed := tb.arts.W2V.Vec

	tc := matching.DefaultTrainConfig()
	tc.Epochs = 8

	models := []matching.Matcher{
		matching.BM25Squashed{BM25: matching.NewBM25()},
		matching.NewDSSM(embed, tb.dim, tc),
		matching.NewMatchPyramid(embed, tb.dim, tc),
		matching.NewRE2(embed, tb.dim, tc),
		matching.NewKADSM(embed, nil, tb.dim, tc),
		matching.NewKADSM(embed, knowledge, tb.dim, tc),
	}
	paper := map[string][3]string{
		"BM25":           {"-", "-", "0.7681"},
		"DSSM":           {"0.7885", "0.6937", "0.7971"},
		"MatchPyramid":   {"0.8127", "0.7352", "0.7813"},
		"RE2":            {"0.8664", "0.7052", "0.8977"},
		"Ours":           {"0.8610", "0.7532", "0.9015"},
		"Ours+Knowledge": {"0.8713", "0.7769", "0.9048"},
	}
	fmt.Println("Table 6: concept-item semantic matching.")
	fmt.Println()
	fmt.Println("| Model | Paper AUC | AUC | Paper F1 | F1 | Paper P@10 | P@10 |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, m := range models {
		m.Train(train)
		res := matching.Evaluate(m, test)
		p10 := matching.EvaluateGrouped(m, groups)
		pp := paper[m.Name()]
		fmt.Printf("| %s | %s | %.4f | %s | %.4f | %s | %.4f |\n",
			m.Name(), pp[0], res.AUC, pp[1], res.F1, pp[2], p10)
	}
}

// ------------------------------------------------------------ coverage ----

func expCoverage(tb *testbed) {
	// Engines serve from the frozen snapshot; MeasureCoverage fans each
	// day's queries out across GOMAXPROCS workers.
	full := search.NewEngine(tb.arts.Frozen, tb.arts.World.Stopwords())
	cpv := search.NewCPVEngine(tb.arts.Frozen, tb.arts.World.Stopwords())
	days := 30
	perDay := 2000
	if tb.scale == "tiny" {
		perDay = 400
	}
	var sumFull, sumCPV float64
	fmt.Println("Section 7.1 coverage: 30 daily samples of rewritten queries.")
	fmt.Println("Paper: AliCoCo ~75% vs former CPV ontology ~30%.")
	fmt.Println()
	fmt.Println("| Day | AliCoCo coverage | CPV coverage |")
	fmt.Println("|---|---|---|")
	for day := 0; day < days; day++ {
		qs := tb.arts.World.QuerySet(perDay)
		queries := make([][]string, len(qs))
		for i, q := range qs {
			queries[i] = q.Tokens
		}
		cf := search.MeasureCoverage(full, queries)
		cc := search.MeasureCoverage(cpv, queries)
		sumFull += cf.Rate()
		sumCPV += cc.Rate()
		if day < 5 || day == days-1 {
			fmt.Printf("| %d | %.3f | %.3f |\n", day+1, cf.Rate(), cc.Rate())
		} else if day == 5 {
			fmt.Println("| ... | ... | ... |")
		}
	}
	fmt.Printf("\n30-day mean: AliCoCo %.3f vs CPV %.3f (paper: 0.75 vs 0.30)\n", sumFull/float64(days), sumCPV/float64(days))
}

// -------------------------------------------------------------- search ----

func expSearch(tb *testbed) {
	n := 2000
	if tb.scale == "tiny" {
		n = 400
	}
	// Case scoring fans out across workers against the frozen snapshot.
	cases := search.BuildRelevanceCases(tb.arts.Frozen, n, 3)
	plain := search.EvalRelevance(tb.arts.Frozen, cases, false)
	expanded := search.EvalRelevance(tb.arts.Frozen, cases, true)
	fmt.Println("Section 8.1.1 search relevance with isA expansion.")
	fmt.Println("Paper: +1% AUC offline; -4% relevance bad cases online.")
	fmt.Println()
	fmt.Println("| Setting | AUC | Bad cases | Cases |")
	fmt.Println("|---|---|---|---|")
	fmt.Printf("| Lexical only | %.4f | %d | %d |\n", plain.AUC, plain.BadCases, plain.Total)
	fmt.Printf("| + isA expansion | %.4f | %d | %d |\n", expanded.AUC, expanded.BadCases, expanded.Total)
	drop := 0.0
	if plain.BadCases > 0 {
		drop = 100 * float64(plain.BadCases-expanded.BadCases) / float64(plain.BadCases)
	}
	fmt.Printf("\nAUC lift: %+.4f; bad cases dropped by %.1f%%\n", expanded.AUC-plain.AUC, drop)
}

// ----------------------------------------------------------- recommend ----

func expRecommend(tb *testbed) {
	nSessions := 400
	if tb.scale == "tiny" {
		nSessions = 120
	}
	raw := tb.arts.World.ClickLog(nSessions)
	var history [][]core.NodeID
	var sessions [][2][]core.NodeID
	for i, s := range raw {
		var viewed, clicked []core.NodeID
		for _, id := range s.Viewed {
			viewed = append(viewed, tb.arts.ItemNode[id])
		}
		for _, id := range s.Clicked {
			clicked = append(clicked, tb.arts.ItemNode[id])
		}
		if i < nSessions*2/3 {
			history = append(history, append(append([]core.NodeID{}, viewed...), clicked...))
		} else {
			sessions = append(sessions, [2][]core.NodeID{viewed, clicked})
		}
	}
	engine := recommend.NewEngine(tb.arts.Frozen)
	cf := recommend.NewItemCF(history)
	ranker := recommend.CoViewScore(cf)
	conceptRec := func(viewed []core.NodeID, k int) []core.NodeID {
		rec, ok := engine.Recommend(viewed, k)
		if !ok {
			return nil
		}
		return rec.Items
	}
	conceptRanked := func(viewed []core.NodeID, k int) []core.NodeID {
		rec, ok := engine.RecommendRanked(viewed, k, ranker)
		if !ok {
			return nil
		}
		return rec.Items
	}
	k := 10
	// Replay fans sessions out across workers; the engines read the frozen
	// snapshot lock-free.
	resConcept := recommend.Replay(tb.arts.Frozen, conceptRec, sessions, k)
	resRanked := recommend.Replay(tb.arts.Frozen, conceptRanked, sessions, k)
	resCF := recommend.Replay(tb.arts.Frozen, cf.Recommend, sessions, k)
	fmt.Println("Section 8.2.1 cognitive recommendation, offline replay (CTR proxy = hit rate on held-out clicks).")
	fmt.Println("Paper: concept recall followed by a ranking model, in production >1 year with high CTR.")
	fmt.Println()
	fmt.Println("| Recommender | HitRate@10 | Novelty | Session coverage |")
	fmt.Println("|---|---|---|---|")
	fmt.Printf("| Concept recall only | %.4f | %.4f | %.4f |\n", resConcept.HitRate, resConcept.Novelty, resConcept.Covered)
	fmt.Printf("| Concept recall + ranking (production design) | %.4f | %.4f | %.4f |\n", resRanked.HitRate, resRanked.Novelty, resRanked.Covered)
	fmt.Printf("| Item-CF baseline | %.4f | %.4f | %.4f |\n", resCF.HitRate, resCF.Novelty, resCF.Covered)
}
