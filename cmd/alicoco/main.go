// Command alicoco builds the e-commerce cognitive concept net end-to-end
// from the synthetic testbed, prints Table-2-style statistics, and
// optionally saves a binary snapshot.
//
// Usage:
//
//	alicoco [-scale small|default] [-out net.coco] [-query "outdoor barbecue"]
//	alicoco snapshot save [-scale small|default] -out net.fz
//	alicoco snapshot save [-scale small|default] -shards 4 [-retain 4] -out netdir
//	alicoco snapshot load -in net.fz [-query "outdoor barbecue"]
//	alicoco snapshot verify netdir
//	alicoco metrics lint <file|->
//
// `snapshot save` builds the net and writes the frozen serving snapshot —
// a single file, or with -shards N a generation committed into the
// snapshot store at -out: N independently reloadable shard files plus a
// checksummed manifest in a gen-NNNNNN directory, named by the store's
// CATALOG (serve it with `cocoserve -snapshot-dir`). Repeated saves into
// the same store append generations; -retain bounds how many the catalog
// keeps. `snapshot load` restores a single-file snapshot without
// rebuilding (cold start proportional to disk bandwidth) and can answer
// queries against it. `snapshot verify` re-hashes every file of a sharded
// snapshot — all generations of a catalog store — against its manifest and
// catalog entry, reporting per file and exiting non-zero on any mismatch,
// without modifying the store.
//
// `metrics lint` strict-parses a Prometheus text exposition (a /metrics
// capture, or stdin with `-`) with the same validator the load driver's
// cross-check uses, exiting non-zero on any format violation — CI curls
// the live /metrics through it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"alicoco"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		if len(os.Args) > 2 {
			switch os.Args[2] {
			case "save":
				snapshotSave(os.Args[3:])
				return
			case "load":
				snapshotLoad(os.Args[3:])
				return
			case "verify":
				snapshotVerify(os.Args[3:])
				return
			}
		}
		fmt.Fprintln(os.Stderr, "usage: alicoco snapshot save|load|verify [flags]")
		os.Exit(2)
	}
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		if len(os.Args) > 2 && os.Args[2] == "lint" {
			metricsLint(os.Args[3:])
			return
		}
		fmt.Fprintln(os.Stderr, "usage: alicoco metrics lint <file|->")
		os.Exit(2)
	}

	scale := flag.String("scale", "default", "build scale: small or default")
	out := flag.String("out", "", "path to save a binary snapshot of the net")
	query := flag.String("query", "", "optionally run one search query against the built net")
	flag.Parse()
	if flag.NArg() > 0 {
		// Catches e.g. `alicoco -scale small snapshot save`: the subcommand
		// must come first, or it would be silently ignored here.
		fmt.Fprintf(os.Stderr, "unexpected argument %q (subcommands go before flags: alicoco snapshot save|load [flags])\n", flag.Arg(0))
		os.Exit(2)
	}

	log.Printf("building AliCoCo (scale=%s)...", *scale)
	coco, err := alicoco.Build(scaleOptions(*scale))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Println(coco.Stats().Render())

	if *out != "" {
		if err := coco.SaveSnapshot(*out); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		log.Printf("snapshot written to %s", *out)
	}

	runQuery(coco, *query)
}

func rejectExtraArgs(fs *flag.FlagSet) {
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", fs.Arg(0))
		os.Exit(2)
	}
}

func scaleOptions(scale string) alicoco.Options {
	if scale == "small" {
		return alicoco.Small()
	}
	return alicoco.Default()
}

// snapshotSave builds the net and writes the frozen serving snapshot.
func snapshotSave(args []string) {
	fs := flag.NewFlagSet("snapshot save", flag.ExitOnError)
	scale := fs.String("scale", "default", "build scale: small or default")
	out := fs.String("out", "net.fz", "path to write the frozen snapshot (a directory with -shards)")
	shards := fs.Int("shards", 0, "write a sharded snapshot directory with this many shards instead of a single file")
	retain := fs.Int("retain", 0, "committed generations the snapshot store keeps (with -shards; 0 means the default window)")
	fs.Parse(args)
	rejectExtraArgs(fs)

	log.Printf("building AliCoCo (scale=%s)...", *scale)
	start := time.Now()
	coco, err := alicoco.Build(scaleOptions(*scale))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	log.Printf("built in %v", time.Since(start).Round(time.Millisecond))
	if *shards > 0 {
		man, gen, err := coco.SaveShardsRetain(*out, *shards, *retain)
		if err != nil {
			log.Fatalf("save shards: %v", err)
		}
		log.Printf("sharded snapshot committed to %s/ as generation %d (%d shards, serve with cocoserve -snapshot-dir)",
			*out, gen.ID, man.NumShards())
		fmt.Println(coco.Stats().Render())
		return
	}
	if err := coco.SaveFrozen(*out); err != nil {
		log.Fatalf("save frozen: %v", err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatalf("stat: %v", err)
	}
	log.Printf("frozen snapshot written to %s (%d bytes)", *out, info.Size())
	fmt.Println(coco.Stats().Render())
}

// snapshotLoad restores a frozen snapshot and optionally queries it.
func snapshotLoad(args []string) {
	fs := flag.NewFlagSet("snapshot load", flag.ExitOnError)
	in := fs.String("in", "net.fz", "path of the frozen snapshot to load")
	query := fs.String("query", "", "optionally run one search query against the loaded net")
	fs.Parse(args)
	rejectExtraArgs(fs)

	start := time.Now()
	coco, err := alicoco.LoadFrozen(*in)
	if err != nil {
		log.Fatalf("load frozen: %v", err)
	}
	log.Printf("loaded %s in %v", *in, time.Since(start).Round(time.Millisecond))
	fmt.Println(coco.Stats().Render())
	runQuery(coco, *query)
}

func runQuery(coco *alicoco.CoCo, query string) {
	if query == "" {
		return
	}
	res := coco.Search(query, 8)
	fmt.Printf("\nquery: %q\n", query)
	for _, card := range res.Cards {
		fmt.Printf("  concept card: %s\n", card.Name)
		for _, it := range card.Items {
			fmt.Printf("    - %s\n", it.Title)
		}
	}
	if len(res.Cards) == 0 {
		for i, it := range res.Items {
			if i >= 8 {
				break
			}
			fmt.Printf("  item: %s\n", it.Title)
		}
	}
}
