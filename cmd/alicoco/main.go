// Command alicoco builds the e-commerce cognitive concept net end-to-end
// from the synthetic testbed, prints Table-2-style statistics, and
// optionally saves a binary snapshot.
//
// Usage:
//
//	alicoco [-scale small|default] [-out net.coco] [-query "outdoor barbecue"]
package main

import (
	"flag"
	"fmt"
	"log"

	"alicoco"
)

func main() {
	scale := flag.String("scale", "default", "build scale: small or default")
	out := flag.String("out", "", "path to save a binary snapshot of the net")
	query := flag.String("query", "", "optionally run one search query against the built net")
	flag.Parse()

	opts := alicoco.Default()
	if *scale == "small" {
		opts = alicoco.Small()
	}
	log.Printf("building AliCoCo (scale=%s)...", *scale)
	coco, err := alicoco.Build(opts)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Println(coco.Stats().Render())

	if *out != "" {
		if err := coco.SaveSnapshot(*out); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		log.Printf("snapshot written to %s", *out)
	}

	if *query != "" {
		res := coco.Search(*query, 8)
		fmt.Printf("\nquery: %q\n", *query)
		for _, card := range res.Cards {
			fmt.Printf("  concept card: %s\n", card.Name)
			for _, it := range card.Items {
				fmt.Printf("    - %s\n", it.Title)
			}
		}
		if len(res.Cards) == 0 {
			for i, it := range res.Items {
				if i >= 8 {
					break
				}
				fmt.Printf("  item: %s\n", it.Title)
			}
		}
	}
}
