// `alicoco snapshot verify <dir>`: offline integrity audit of a sharded
// snapshot. Every file the manifest names — each shard body and the meta
// file — is re-hashed against its recorded checksum, and when the
// directory is a generation catalog the audit covers every committed
// generation, anchoring each one's manifest to its catalog entry first
// (catalog -> manifest -> file is the same chain of trust the serving
// scrubber walks). Strictly read-only: unlike opening the store, verify
// never sweeps or repairs anything. Exit status 0 means everything
// verified; 1 means at least one file failed, each reported on its own
// line.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"alicoco/internal/pipeline"
	"alicoco/internal/snapstore"
)

func snapshotVerify(args []string) {
	fs := flag.NewFlagSet("snapshot verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: alicoco snapshot verify <dir>")
		os.Exit(2)
	}
	dir := fs.Arg(0)
	checked, bad := 0, 0
	if snapstore.IsStore(dir) {
		gens, err := snapstore.ListGenerations(dir)
		if err != nil {
			log.Fatalf("verify: %v", err)
		}
		if len(gens) == 0 {
			log.Fatalf("verify: catalog at %s has no committed generations", dir)
		}
		for _, g := range gens {
			c, b := verifyGeneration(filepath.Join(dir, g.Dir), fmt.Sprintf("gen %d", g.ID), g.ManifestChecksum)
			checked, bad = checked+c, bad+b
		}
	} else {
		checked, bad = verifyGeneration(dir, dir, 0)
	}
	if bad > 0 {
		fmt.Printf("FAIL: %d of %d files failed verification\n", bad, checked)
		os.Exit(1)
	}
	fmt.Printf("OK: %d files verified\n", checked)
}

// verifyGeneration audits one snapshot directory: the manifest against the
// catalog checksum when there is one, then every file the manifest names.
// It reports one line per file and never stops at the first failure — the
// whole damage report is the point.
func verifyGeneration(dir, label string, manifestSum uint32) (checked, bad int) {
	if manifestSum != 0 {
		rep := snapstore.VerifyFiles(dir, []snapstore.FileCheck{{Name: pipeline.ShardManifestName, Want: manifestSum}})[0]
		checked++
		bad += printReport(label, rep)
		if !rep.OK() {
			// An untrusted manifest proves nothing about the files below
			// it; the per-file checks would be checking against lies.
			fmt.Printf("%s: manifest does not match catalog; skipping per-file checks\n", label)
			return checked, bad
		}
	}
	man, err := pipeline.ReadManifest(dir)
	if err != nil {
		fmt.Printf("%s: %s: BAD (%v)\n", label, pipeline.ShardManifestName, err)
		return checked + 1, bad + 1
	}
	for _, rep := range snapstore.VerifyFiles(dir, man.FileChecks()) {
		checked++
		bad += printReport(label, rep)
	}
	return checked, bad
}

func printReport(label string, rep snapstore.FileReport) int {
	switch {
	case rep.OK():
		fmt.Printf("%s: %s: ok (crc32 %08x)\n", label, rep.Name, rep.Got)
		return 0
	case rep.Err != nil:
		fmt.Printf("%s: %s: BAD (%v)\n", label, rep.Name, rep.Err)
	default:
		fmt.Printf("%s: %s: BAD (crc32 %08x, manifest says %08x)\n", label, rep.Name, rep.Got, rep.Want)
	}
	return 1
}
