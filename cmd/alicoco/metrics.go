package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"alicoco/internal/obs"
)

// metricsLint strict-parses a Prometheus text exposition and reports what
// it found. The parser is the same one cocoload's cross-check scrapes
// through, so a lint pass here means the file would survive a chaos run's
// per-phase scrape too.
func metricsLint(args []string) {
	fs := flag.NewFlagSet("metrics lint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alicoco metrics lint <file|->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	var body []byte
	var err error
	if path == "-" {
		body, err = io.ReadAll(os.Stdin)
	} else {
		body, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics lint: %v\n", err)
		os.Exit(1)
	}
	p, err := obs.ParseText(body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics lint: %s: %v\n", path, err)
		os.Exit(1)
	}
	samples := 0
	for _, f := range p.Families {
		samples += len(f.Samples)
	}
	fmt.Printf("metrics lint: ok — %d families, %d samples\n", len(p.Families), samples)
}
