// Command cocoserve serves the concept net over HTTP, mirroring the
// production surfaces of Figure 2: semantic search with concept cards,
// concept lookup, and cognitive recommendation.
//
// Endpoints:
//
//	GET  /stats
//	GET  /search?q=outdoor+barbecue
//	POST /search/batch      {"queries": ["outdoor barbecue", ...], "max_items": 12}
//	GET  /concept?name=outdoor+barbecue
//	GET  /recommend?items=1,2,3&k=10
//	POST /recommend/batch   {"sessions": [[1,2,3], [4,5]], "k": 10}
//	GET  /hypernyms?name=coat
//	POST /reload
//
// The batch endpoints amortize one HTTP round-trip over a page of queries
// (up to 256 per request): the whole batch is pinned to a single frozen
// snapshot and fanned out across GOMAXPROCS workers. /search/batch answers
// {"results": [SearchResult, ...]} and /recommend/batch answers
// {"results": [{"Found": bool, "Reason": ..., "Card": ...}, ...]}, both in
// request order.
//
// /stats reports the net shape plus a "snapshot" section (source, serving
// generation, the snapshot file's checksum when loaded from disk, publish
// time, age, serving node/edge counts) and a "cache" section with
// hit/miss/eviction counters per cache layer.
//
// Serving is cached at two layers, both stamped with the serving
// generation so POST /reload (or a refreeze) invalidates everything at
// once without scanning: the facade memoizes composed search/recommend
// results (shared by the single and batch endpoints), and the hot
// single-query GETs additionally cache their encoded JSON bytes keyed on
// the raw query string — a repeat request is one cache lookup and one
// buffer write. -cache-size sets the per-layer entry budget (0 disables).
// Request decoding allocates next to nothing: batch bodies parse through
// a pooled fixed-shape scanner instead of encoding/json, and GET
// parameters resolve as substrings of the raw query.
//
// Usage: cocoserve [-addr :8080] [-scale small|default]
//
//	[-snapshot net.fz] [-refresh 5m] [-cache-size 4096]
//
// With -snapshot, startup loads the frozen serving snapshot written by
// `alicoco snapshot save` instead of rebuilding the net — cold start is
// proportional to disk bandwidth. POST /reload re-reads the snapshot (or
// re-freezes the live net when built without one): the file's CRC-32 is
// verified (along with every structural invariant) before anything is
// swapped, so a corrupt or truncated snapshot leaves the current serving
// state untouched. The swap itself is one atomic pointer store — in-flight
// and concurrent queries keep answering without downtime; -refresh does
// the same on a timer.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"alicoco"
	"alicoco/internal/qcache"
)

// maxRecommendK caps the k parameter of /recommend so a single request
// cannot ask for an unbounded result set.
const maxRecommendK = 100

// defaultSearchItems is the per-card item count of GET /search and the
// default for batches; maxSearchItems caps what a batch may request.
const (
	defaultSearchItems = 12
	maxSearchItems     = 100
)

// maxBatch caps how many queries or sessions one batch request may carry.
const maxBatch = 256

// maxBatchBody caps a batch request's body size before decoding, so the
// maxBatch element cap cannot be sidestepped by one enormous JSON payload.
const maxBatchBody = 1 << 20

// maxPooledEncodeBuf is the largest response buffer worth keeping in the
// codec pool; a rare huge batch response should not pin megabytes per
// pool slot.
const maxPooledEncodeBuf = 64 << 10

type server struct {
	coco *alicoco.CoCo

	// snapshot is the file /reload re-reads; empty when the net was built
	// live, in which case /reload re-freezes instead. Reloads serialize on
	// the facade's own offline lock; queries are never blocked.
	snapshot string

	// searchBytes / recBytes cache the *encoded JSON bytes* of the hot
	// single-query GET endpoints, keyed on the raw query string and
	// stamped with the facade's serving generation (a /reload invalidates
	// them exactly like the engine-level result caches): a hit skips
	// parameter parsing, engine dispatch, and JSON encoding — one cache
	// lookup, one buffer write. nil disables the layer (-cache-size 0).
	searchBytes *qcache.Cache
	recBytes    *qcache.Cache
}

// newServer wires a server around a facade with the given per-cache entry
// budget (the facade's engine-level caches are resized to match).
func newServer(coco *alicoco.CoCo, snapshot string, cacheSize int) *server {
	coco.SetQueryCacheCapacity(cacheSize)
	s := &server{coco: coco, snapshot: snapshot}
	if cacheSize > 0 {
		s.searchBytes = qcache.New(cacheSize)
		s.recBytes = qcache.New(cacheSize)
	}
	return s
}

// jsonCodec is a pooled response encoder: the buffer and the encoder bound
// to it are recycled across requests, so steady-state encoding reuses one
// grown buffer instead of allocating per response.
type jsonCodec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var codecs = sync.Pool{New: func() any {
	c := &jsonCodec{}
	c.enc = json.NewEncoder(&c.buf)
	return c
}}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONCaching(w, v, nil, qcache.Stamp{}, "")
}

// writeJSONCaching encodes v through a pooled codec, writes it, and — when
// cache is non-nil — stores a private copy of the encoded bytes under
// (stamp, key), so the next identical request is a single buffer write.
// The stamp was read by the caller *before* computing v, which is what
// makes a cached entry never older than the generation it is keyed under
// (a concurrent reload can only make v newer than the stamp, and the new
// generation stops matching the old entries entirely).
func (s *server) writeJSONCaching(w http.ResponseWriter, v any, cache *qcache.Cache, stamp qcache.Stamp, key string) {
	c := codecs.Get().(*jsonCodec)
	defer func() {
		if c.buf.Cap() <= maxPooledEncodeBuf {
			codecs.Put(c)
		}
	}()
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		// Nothing has been written yet, so the client gets a clean 500
		// instead of a truncated body.
		log.Printf("encode: %v", err)
		http.Error(w, "encode failed", http.StatusInternalServerError)
		return
	}
	if cache != nil && s.coco.CacheStamp() == stamp {
		cache.PutString(stamp, key, append([]byte(nil), c.buf.Bytes()...))
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(c.buf.Bytes()); err != nil {
		log.Printf("write: %v", err)
	}
}

// writeJSONBytes serves an already-encoded cached response.
func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(b); err != nil {
		log.Printf("write: %v", err)
	}
}

// statsResponse is the /stats payload: the Table-2 net shape plus the
// serving snapshot's operational metadata and the query-cache counters.
type statsResponse struct {
	alicoco.Stats
	Snapshot snapshotInfo `json:"snapshot"`
	Cache    cacheInfo    `json:"cache"`
}

// cacheInfo breaks the hit/miss/eviction counters down by cache layer:
// the two facade-level result caches (shared by the single and batch
// endpoints) and the two encoded-bytes caches of the single-query GETs.
type cacheInfo struct {
	Search         qcache.Stats `json:"search"`
	Recommend      qcache.Stats `json:"recommend"`
	SearchBytes    qcache.Stats `json:"search_bytes"`
	RecommendBytes qcache.Stats `json:"recommend_bytes"`
}

func (s *server) cacheInfo() cacheInfo {
	ci := cacheInfo{
		SearchBytes:    s.searchBytes.Stats(),
		RecommendBytes: s.recBytes.Stats(),
	}
	ci.Search, ci.Recommend = s.coco.QueryCacheStats()
	return ci
}

type snapshotInfo struct {
	Source      string  `json:"source"`             // build | snapshot | refreeze
	Generation  uint64  `json:"generation"`         // serving publishes since startup
	Checksum    string  `json:"checksum,omitempty"` // CRC-32 of the loaded snapshot file
	File        string  `json:"file,omitempty"`     // -snapshot path, when serving from one
	PublishedAt string  `json:"published_at"`       // RFC 3339
	AgeSeconds  float64 `json:"age_seconds"`        // time since publish
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
}

func (s *server) snapshotInfo() snapshotInfo {
	info := s.coco.ServingInfo()
	return snapshotInfo{
		Source:      info.Source,
		Generation:  info.Generation,
		Checksum:    info.Checksum,
		File:        s.snapshot,
		PublishedAt: info.PublishedAt.UTC().Format(time.RFC3339),
		AgeSeconds:  time.Since(info.PublishedAt).Seconds(),
		Nodes:       info.Nodes,
		Edges:       info.Edges,
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, statsResponse{Stats: s.coco.Stats(), Snapshot: s.snapshotInfo(), Cache: s.cacheInfo()})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	// The stamp is read before anything else: a response computed after a
	// concurrent reload can only be newer than it, never staler.
	raw := r.URL.RawQuery
	stamp := s.coco.CacheStamp()
	if v, ok := s.searchBytes.GetString(stamp, raw); ok {
		writeJSONBytes(w, v.([]byte))
		return
	}
	q, _ := queryParam(raw, "q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.writeJSONCaching(w, s.coco.Search(q, defaultSearchItems), s.searchBytes, stamp, raw)
}

// handleSearchBatch fans a page of queries across workers against one
// pinned snapshot: POST {"queries": [...], "max_items": 12} answers
// {"results": [...]} in request order.
func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	var err error
	if sc.body, err = appendReadAll(sc.body[:0], http.MaxBytesReader(w, r.Body, maxBatchBody)); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	queries, maxItems, err := parseSearchBatchBody(sc)
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(queries) == 0 {
		http.Error(w, "missing queries", http.StatusBadRequest)
		return
	}
	if len(queries) > maxBatch {
		http.Error(w, "too many queries (max "+strconv.Itoa(maxBatch)+")", http.StatusBadRequest)
		return
	}
	for _, q := range queries {
		if strings.TrimSpace(q) == "" {
			http.Error(w, "empty query in batch", http.StatusBadRequest)
			return
		}
	}
	if maxItems <= 0 {
		maxItems = defaultSearchItems
	} else if maxItems > maxSearchItems {
		maxItems = maxSearchItems
	}
	s.writeJSON(w, map[string]any{"results": s.coco.SearchBatch(queries, maxItems)})
}

func (s *server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	cpt, ok := s.coco.LookupConcept(name)
	if !ok {
		http.Error(w, "concept not found", http.StatusNotFound)
		return
	}
	s.writeJSON(w, cpt)
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.RawQuery
	stamp := s.coco.CacheStamp()
	if v, ok := s.recBytes.GetString(stamp, raw); ok {
		writeJSONBytes(w, v.([]byte))
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	itemsVal, _ := queryParam(raw, "items")
	ids, err := appendItemsParam(sc.ids[:0], itemsVal)
	sc.ids = ids
	if err != nil {
		http.Error(w, "bad items parameter", http.StatusBadRequest)
		return
	}
	k := 10
	if ks, ok := queryParam(raw, "k"); ok && ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		if v > maxRecommendK {
			v = maxRecommendK
		}
		k = v
	}
	rec, ok := s.coco.Recommend(ids, k)
	if !ok {
		http.Error(w, "no recommendation for these items", http.StatusNotFound)
		return
	}
	s.writeJSONCaching(w, rec, s.recBytes, stamp, raw)
}

// handleRecommendBatch recommends for a page of sessions against one
// pinned snapshot: POST {"sessions": [[1,2],[3]], "k": 10} answers
// {"results": [{"Found": ...}, ...]} in request order (sessions with no
// recommendation report Found: false instead of failing the batch).
func (s *server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	var err error
	if sc.body, err = appendReadAll(sc.body[:0], http.MaxBytesReader(w, r.Body, maxBatchBody)); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	sessions, k, err := parseRecommendBatchBody(sc)
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(sessions) == 0 {
		http.Error(w, "missing sessions", http.StatusBadRequest)
		return
	}
	if len(sessions) > maxBatch {
		http.Error(w, "too many sessions (max "+strconv.Itoa(maxBatch)+")", http.StatusBadRequest)
		return
	}
	for _, sess := range sessions {
		for _, id := range sess {
			if id < 0 {
				http.Error(w, "negative item id in batch", http.StatusBadRequest)
				return
			}
		}
	}
	if k <= 0 {
		k = 10
	} else if k > maxRecommendK {
		k = maxRecommendK
	}
	s.writeJSON(w, map[string]any{"results": s.coco.RecommendBatch(sessions, k)})
}

func (s *server) handleHypernyms(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	s.writeJSON(w, map[string]any{"name": name, "hypernyms": s.coco.Hypernyms(name)})
}

// handleReload swaps in a fresh serving snapshot: re-read from the snapshot
// file when one was configured, otherwise a re-freeze of the live net. The
// loader verifies the file's checksum and structure before anything is
// published, so a bad snapshot cannot displace the serving state; queries
// keep serving the old snapshot throughout, and the swap itself is one
// atomic pointer store.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	source, err := s.reload()
	if err != nil {
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{
		"status":   "reloaded",
		"source":   source,
		"snapshot": s.snapshotInfo(),
	})
}

func (s *server) reload() (source string, err error) {
	if s.snapshot != "" {
		return "snapshot:" + s.snapshot, s.coco.ReloadFrozen(s.snapshot)
	}
	return "refreeze", s.coco.Refreeze()
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/search/batch", s.handleSearchBatch)
	mux.HandleFunc("/concept", s.handleConcept)
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/recommend/batch", s.handleRecommendBatch)
	mux.HandleFunc("/hypernyms", s.handleHypernyms)
	mux.HandleFunc("/reload", s.handleReload)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "build scale: small or default")
	snapshot := flag.String("snapshot", "", "serve from a frozen snapshot file instead of building")
	refresh := flag.Duration("refresh", 0, "if > 0, reload the snapshot (or refreeze) on this interval")
	cacheSize := flag.Int("cache-size", alicoco.DefaultQueryCacheCapacity,
		"query cache capacity in entries per cache layer (0 disables caching)")
	flag.Parse()

	var coco *alicoco.CoCo
	var err error
	if *snapshot != "" {
		start := time.Now()
		coco, err = alicoco.LoadFrozen(*snapshot)
		if err != nil {
			log.Fatalf("load snapshot: %v", err)
		}
		log.Printf("loaded snapshot %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	} else {
		opts := alicoco.Small()
		if *scale == "default" {
			opts = alicoco.Default()
		}
		log.Printf("building net (scale=%s)...", *scale)
		coco, err = alicoco.Build(opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
	}
	// Every handler reads the published frozen snapshot lock-free, so
	// request handling never contends with anything — including reloads.
	info := coco.ServingInfo()
	log.Printf("serving from frozen snapshot: %d nodes, %d edges (source %s)", info.Nodes, info.Edges, info.Source)
	s := newServer(coco, *snapshot, *cacheSize)
	if *cacheSize > 0 {
		log.Printf("query caches enabled: %d entries per layer (result + encoded-bytes)", *cacheSize)
	} else {
		log.Printf("query caches disabled (-cache-size 0)")
	}
	if *refresh > 0 {
		go func() {
			for range time.Tick(*refresh) {
				if src, err := s.reload(); err != nil {
					log.Printf("periodic reload: %v", err)
				} else {
					info := coco.ServingInfo()
					log.Printf("periodic reload from %s: %d nodes, %d edges", src, info.Nodes, info.Edges)
				}
			}
		}()
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}
