// Command cocoserve serves the concept net over HTTP, mirroring the
// production surfaces of Figure 2: semantic search with concept cards,
// concept lookup, and cognitive recommendation.
//
// Endpoints:
//
//	GET  /stats
//	GET  /search?q=outdoor+barbecue
//	GET  /concept?name=outdoor+barbecue
//	GET  /recommend?items=1,2,3&k=10
//	GET  /hypernyms?name=coat
//	POST /reload
//
// Usage: cocoserve [-addr :8080] [-scale small|default]
//
//	[-snapshot net.fz] [-refresh 5m]
//
// With -snapshot, startup loads the frozen serving snapshot written by
// `alicoco snapshot save` instead of rebuilding the net — cold start is
// proportional to disk bandwidth. POST /reload re-reads the snapshot (or
// re-freezes the live net when built without one) and hot-swaps it behind
// the atomic serving pointer, so in-flight and concurrent queries keep
// answering without downtime; -refresh does the same on a timer.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"alicoco"
)

// maxRecommendK caps the k parameter of /recommend so a single request
// cannot ask for an unbounded result set.
const maxRecommendK = 100

type server struct {
	coco *alicoco.CoCo

	// snapshot is the file /reload re-reads; empty when the net was built
	// live, in which case /reload re-freezes instead. Reloads serialize on
	// the facade's own offline lock; queries are never blocked.
	snapshot string
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.coco.Stats())
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.writeJSON(w, s.coco.Search(q, 12))
}

func (s *server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	cpt, ok := s.coco.LookupConcept(name)
	if !ok {
		http.Error(w, "concept not found", http.StatusNotFound)
		return
	}
	s.writeJSON(w, cpt)
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var ids []int
	for _, part := range strings.Split(r.URL.Query().Get("items"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 {
			http.Error(w, "bad items parameter", http.StatusBadRequest)
			return
		}
		ids = append(ids, id)
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		if v > maxRecommendK {
			v = maxRecommendK
		}
		k = v
	}
	rec, ok := s.coco.Recommend(ids, k)
	if !ok {
		http.Error(w, "no recommendation for these items", http.StatusNotFound)
		return
	}
	s.writeJSON(w, rec)
}

func (s *server) handleHypernyms(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	s.writeJSON(w, map[string]any{"name": name, "hypernyms": s.coco.Hypernyms(name)})
}

// handleReload swaps in a fresh serving snapshot: re-read from the snapshot
// file when one was configured, otherwise a re-freeze of the live net.
// Queries keep serving the old snapshot throughout; the swap itself is one
// atomic pointer store.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	source, err := s.reload()
	if err != nil {
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	nodes, edges := s.servingCounts()
	s.writeJSON(w, map[string]any{
		"status": "reloaded",
		"source": source,
		"nodes":  nodes,
		"edges":  edges,
	})
}

func (s *server) reload() (source string, err error) {
	if s.snapshot != "" {
		return "snapshot:" + s.snapshot, s.coco.ReloadFrozen(s.snapshot)
	}
	return "refreeze", s.coco.Refreeze()
}

// servingCounts reads node/edge counts from the published serving
// snapshot (not Internal().Frozen, which a concurrent refreeze mutates).
func (s *server) servingCounts() (nodes, edges int) {
	st := s.coco.Stats()
	return st.Classes + st.Primitives + st.EConcepts + st.Items, st.Relations
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/concept", s.handleConcept)
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/hypernyms", s.handleHypernyms)
	mux.HandleFunc("/reload", s.handleReload)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "build scale: small or default")
	snapshot := flag.String("snapshot", "", "serve from a frozen snapshot file instead of building")
	refresh := flag.Duration("refresh", 0, "if > 0, reload the snapshot (or refreeze) on this interval")
	flag.Parse()

	var coco *alicoco.CoCo
	var err error
	if *snapshot != "" {
		start := time.Now()
		coco, err = alicoco.LoadFrozen(*snapshot)
		if err != nil {
			log.Fatalf("load snapshot: %v", err)
		}
		log.Printf("loaded snapshot %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	} else {
		opts := alicoco.Small()
		if *scale == "default" {
			opts = alicoco.Default()
		}
		log.Printf("building net (scale=%s)...", *scale)
		coco, err = alicoco.Build(opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
	}
	// Every handler reads the published frozen snapshot lock-free, so
	// request handling never contends with anything — including reloads.
	frozen := coco.Internal().Frozen
	log.Printf("serving from frozen snapshot: %d nodes, %d edges", frozen.NumNodes(), frozen.NumEdges())
	s := &server{coco: coco, snapshot: *snapshot}
	if *refresh > 0 {
		go func() {
			for range time.Tick(*refresh) {
				if src, err := s.reload(); err != nil {
					log.Printf("periodic reload: %v", err)
				} else {
					nodes, edges := s.servingCounts()
					log.Printf("periodic reload from %s: %d nodes, %d edges", src, nodes, edges)
				}
			}
		}()
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}
