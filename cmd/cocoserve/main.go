// Command cocoserve serves the concept net over HTTP, mirroring the
// production surfaces of Figure 2: semantic search with concept cards,
// concept lookup, and cognitive recommendation.
//
// Endpoints:
//
//	GET /stats
//	GET /search?q=outdoor+barbecue
//	GET /concept?name=outdoor+barbecue
//	GET /recommend?items=1,2,3&k=10
//	GET /hypernyms?name=coat
//
// Usage: cocoserve [-addr :8080] [-scale small|default]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"strings"

	"alicoco"
)

type server struct {
	coco *alicoco.CoCo
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.coco.Stats())
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.writeJSON(w, s.coco.Search(q, 12))
}

func (s *server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	cpt, ok := s.coco.LookupConcept(name)
	if !ok {
		http.Error(w, "concept not found", http.StatusNotFound)
		return
	}
	s.writeJSON(w, cpt)
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var ids []int
	for _, part := range strings.Split(r.URL.Query().Get("items"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			http.Error(w, "bad items parameter", http.StatusBadRequest)
			return
		}
		ids = append(ids, id)
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		if v, err := strconv.Atoi(ks); err == nil && v > 0 {
			k = v
		}
	}
	rec, ok := s.coco.Recommend(ids, k)
	if !ok {
		http.Error(w, "no recommendation for these items", http.StatusNotFound)
		return
	}
	s.writeJSON(w, rec)
}

func (s *server) handleHypernyms(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	s.writeJSON(w, map[string]any{"name": name, "hypernyms": s.coco.Hypernyms(name)})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "build scale: small or default")
	flag.Parse()

	opts := alicoco.Small()
	if *scale == "default" {
		opts = alicoco.Default()
	}
	log.Printf("building net (scale=%s)...", *scale)
	coco, err := alicoco.Build(opts)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	// Build freezes the net into an immutable CSR snapshot; every handler
	// below reads that snapshot lock-free, so request handling never
	// contends with anything.
	frozen := coco.Internal().Frozen
	log.Printf("serving from frozen snapshot: %d nodes, %d edges", frozen.NumNodes(), frozen.NumEdges())
	s := &server{coco: coco}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/concept", s.handleConcept)
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/hypernyms", s.handleHypernyms)
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
