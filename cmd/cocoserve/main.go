// Command cocoserve serves the concept net over HTTP, mirroring the
// production surfaces of Figure 2: semantic search with concept cards,
// concept lookup, and cognitive recommendation.
//
// Endpoints:
//
//	GET  /stats
//	GET  /search?q=outdoor+barbecue
//	POST /search/batch      {"queries": ["outdoor barbecue", ...], "max_items": 12}
//	GET  /concept?name=outdoor+barbecue
//	GET  /recommend?items=1,2,3&k=10
//	POST /recommend/batch   {"sessions": [[1,2,3], [4,5]], "k": 10}
//	GET  /hypernyms?name=coat
//	POST /reload
//
// The batch endpoints amortize one HTTP round-trip over a page of queries
// (up to 256 per request): the whole batch is pinned to a single frozen
// snapshot and fanned out across GOMAXPROCS workers. /search/batch answers
// {"results": [SearchResult, ...]} and /recommend/batch answers
// {"results": [{"Found": bool, "Reason": ..., "Card": ...}, ...]}, both in
// request order.
//
// /stats reports the net shape plus a "snapshot" section: source, serving
// generation, the snapshot file's checksum (when loaded from disk),
// publish time, age, and serving node/edge counts.
//
// Usage: cocoserve [-addr :8080] [-scale small|default]
//
//	[-snapshot net.fz] [-refresh 5m]
//
// With -snapshot, startup loads the frozen serving snapshot written by
// `alicoco snapshot save` instead of rebuilding the net — cold start is
// proportional to disk bandwidth. POST /reload re-reads the snapshot (or
// re-freezes the live net when built without one): the file's CRC-32 is
// verified (along with every structural invariant) before anything is
// swapped, so a corrupt or truncated snapshot leaves the current serving
// state untouched. The swap itself is one atomic pointer store — in-flight
// and concurrent queries keep answering without downtime; -refresh does
// the same on a timer.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"alicoco"
)

// maxRecommendK caps the k parameter of /recommend so a single request
// cannot ask for an unbounded result set.
const maxRecommendK = 100

// defaultSearchItems is the per-card item count of GET /search and the
// default for batches; maxSearchItems caps what a batch may request.
const (
	defaultSearchItems = 12
	maxSearchItems     = 100
)

// maxBatch caps how many queries or sessions one batch request may carry.
const maxBatch = 256

// maxBatchBody caps a batch request's body size before decoding, so the
// maxBatch element cap cannot be sidestepped by one enormous JSON payload.
const maxBatchBody = 1 << 20

// maxPooledEncodeBuf is the largest response buffer worth keeping in the
// codec pool; a rare huge batch response should not pin megabytes per
// pool slot.
const maxPooledEncodeBuf = 64 << 10

type server struct {
	coco *alicoco.CoCo

	// snapshot is the file /reload re-reads; empty when the net was built
	// live, in which case /reload re-freezes instead. Reloads serialize on
	// the facade's own offline lock; queries are never blocked.
	snapshot string
}

// jsonCodec is a pooled response encoder: the buffer and the encoder bound
// to it are recycled across requests, so steady-state encoding reuses one
// grown buffer instead of allocating per response.
type jsonCodec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var codecs = sync.Pool{New: func() any {
	c := &jsonCodec{}
	c.enc = json.NewEncoder(&c.buf)
	return c
}}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	c := codecs.Get().(*jsonCodec)
	defer func() {
		if c.buf.Cap() <= maxPooledEncodeBuf {
			codecs.Put(c)
		}
	}()
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		// Nothing has been written yet, so the client gets a clean 500
		// instead of a truncated body.
		log.Printf("encode: %v", err)
		http.Error(w, "encode failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(c.buf.Bytes()); err != nil {
		log.Printf("write: %v", err)
	}
}

// statsResponse is the /stats payload: the Table-2 net shape plus the
// serving snapshot's operational metadata.
type statsResponse struct {
	alicoco.Stats
	Snapshot snapshotInfo `json:"snapshot"`
}

type snapshotInfo struct {
	Source      string  `json:"source"`             // build | snapshot | refreeze
	Generation  uint64  `json:"generation"`         // serving publishes since startup
	Checksum    string  `json:"checksum,omitempty"` // CRC-32 of the loaded snapshot file
	File        string  `json:"file,omitempty"`     // -snapshot path, when serving from one
	PublishedAt string  `json:"published_at"`       // RFC 3339
	AgeSeconds  float64 `json:"age_seconds"`        // time since publish
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
}

func (s *server) snapshotInfo() snapshotInfo {
	info := s.coco.ServingInfo()
	return snapshotInfo{
		Source:      info.Source,
		Generation:  info.Generation,
		Checksum:    info.Checksum,
		File:        s.snapshot,
		PublishedAt: info.PublishedAt.UTC().Format(time.RFC3339),
		AgeSeconds:  time.Since(info.PublishedAt).Seconds(),
		Nodes:       info.Nodes,
		Edges:       info.Edges,
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, statsResponse{Stats: s.coco.Stats(), Snapshot: s.snapshotInfo()})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.writeJSON(w, s.coco.Search(q, defaultSearchItems))
}

// handleSearchBatch fans a page of queries across workers against one
// pinned snapshot: POST {"queries": [...], "max_items": 12} answers
// {"results": [...]} in request order.
func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Queries  []string `json:"queries"`
		MaxItems int      `json:"max_items"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "missing queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > maxBatch {
		http.Error(w, "too many queries (max "+strconv.Itoa(maxBatch)+")", http.StatusBadRequest)
		return
	}
	for _, q := range req.Queries {
		if strings.TrimSpace(q) == "" {
			http.Error(w, "empty query in batch", http.StatusBadRequest)
			return
		}
	}
	maxItems := req.MaxItems
	if maxItems <= 0 {
		maxItems = defaultSearchItems
	} else if maxItems > maxSearchItems {
		maxItems = maxSearchItems
	}
	s.writeJSON(w, map[string]any{"results": s.coco.SearchBatch(req.Queries, maxItems)})
}

func (s *server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	cpt, ok := s.coco.LookupConcept(name)
	if !ok {
		http.Error(w, "concept not found", http.StatusNotFound)
		return
	}
	s.writeJSON(w, cpt)
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var ids []int
	for _, part := range strings.Split(r.URL.Query().Get("items"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 {
			http.Error(w, "bad items parameter", http.StatusBadRequest)
			return
		}
		ids = append(ids, id)
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		if v > maxRecommendK {
			v = maxRecommendK
		}
		k = v
	}
	rec, ok := s.coco.Recommend(ids, k)
	if !ok {
		http.Error(w, "no recommendation for these items", http.StatusNotFound)
		return
	}
	s.writeJSON(w, rec)
}

// handleRecommendBatch recommends for a page of sessions against one
// pinned snapshot: POST {"sessions": [[1,2],[3]], "k": 10} answers
// {"results": [{"Found": ...}, ...]} in request order (sessions with no
// recommendation report Found: false instead of failing the batch).
func (s *server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Sessions [][]int `json:"sessions"`
		K        int     `json:"k"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Sessions) == 0 {
		http.Error(w, "missing sessions", http.StatusBadRequest)
		return
	}
	if len(req.Sessions) > maxBatch {
		http.Error(w, "too many sessions (max "+strconv.Itoa(maxBatch)+")", http.StatusBadRequest)
		return
	}
	for _, sess := range req.Sessions {
		for _, id := range sess {
			if id < 0 {
				http.Error(w, "negative item id in batch", http.StatusBadRequest)
				return
			}
		}
	}
	k := req.K
	if k <= 0 {
		k = 10
	} else if k > maxRecommendK {
		k = maxRecommendK
	}
	s.writeJSON(w, map[string]any{"results": s.coco.RecommendBatch(req.Sessions, k)})
}

func (s *server) handleHypernyms(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	s.writeJSON(w, map[string]any{"name": name, "hypernyms": s.coco.Hypernyms(name)})
}

// handleReload swaps in a fresh serving snapshot: re-read from the snapshot
// file when one was configured, otherwise a re-freeze of the live net. The
// loader verifies the file's checksum and structure before anything is
// published, so a bad snapshot cannot displace the serving state; queries
// keep serving the old snapshot throughout, and the swap itself is one
// atomic pointer store.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	source, err := s.reload()
	if err != nil {
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{
		"status":   "reloaded",
		"source":   source,
		"snapshot": s.snapshotInfo(),
	})
}

func (s *server) reload() (source string, err error) {
	if s.snapshot != "" {
		return "snapshot:" + s.snapshot, s.coco.ReloadFrozen(s.snapshot)
	}
	return "refreeze", s.coco.Refreeze()
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/search/batch", s.handleSearchBatch)
	mux.HandleFunc("/concept", s.handleConcept)
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/recommend/batch", s.handleRecommendBatch)
	mux.HandleFunc("/hypernyms", s.handleHypernyms)
	mux.HandleFunc("/reload", s.handleReload)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "build scale: small or default")
	snapshot := flag.String("snapshot", "", "serve from a frozen snapshot file instead of building")
	refresh := flag.Duration("refresh", 0, "if > 0, reload the snapshot (or refreeze) on this interval")
	flag.Parse()

	var coco *alicoco.CoCo
	var err error
	if *snapshot != "" {
		start := time.Now()
		coco, err = alicoco.LoadFrozen(*snapshot)
		if err != nil {
			log.Fatalf("load snapshot: %v", err)
		}
		log.Printf("loaded snapshot %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	} else {
		opts := alicoco.Small()
		if *scale == "default" {
			opts = alicoco.Default()
		}
		log.Printf("building net (scale=%s)...", *scale)
		coco, err = alicoco.Build(opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
	}
	// Every handler reads the published frozen snapshot lock-free, so
	// request handling never contends with anything — including reloads.
	info := coco.ServingInfo()
	log.Printf("serving from frozen snapshot: %d nodes, %d edges (source %s)", info.Nodes, info.Edges, info.Source)
	s := &server{coco: coco, snapshot: *snapshot}
	if *refresh > 0 {
		go func() {
			for range time.Tick(*refresh) {
				if src, err := s.reload(); err != nil {
					log.Printf("periodic reload: %v", err)
				} else {
					info := coco.ServingInfo()
					log.Printf("periodic reload from %s: %d nodes, %d edges", src, info.Nodes, info.Edges)
				}
			}
		}()
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}
