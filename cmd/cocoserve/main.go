// Command cocoserve serves the concept net over HTTP, mirroring the
// production surfaces of Figure 2: semantic search with concept cards,
// concept lookup, and cognitive recommendation.
//
// Endpoints:
//
//	GET  /stats
//	GET  /search?q=outdoor+barbecue
//	POST /search/batch      {"queries": ["outdoor barbecue", ...], "max_items": 12}
//	GET  /concept?name=outdoor+barbecue
//	GET  /recommend?items=1,2,3&k=10
//	POST /recommend/batch   {"sessions": [[1,2,3], [4,5]], "k": 10}
//	GET  /hypernyms?name=coat
//	POST /reload
//	POST /rollback  (catalog stores: republish an earlier generation)
//	GET  /healthz   (liveness: 200 while the process can answer at all)
//	GET  /readyz    (readiness: 503 while draining or saturated)
//
// The batch endpoints amortize one HTTP round-trip over a page of queries
// (up to 256 per request): the whole batch is pinned to a single frozen
// snapshot and fanned out across GOMAXPROCS workers. /search/batch answers
// {"results": [SearchResult, ...]} and /recommend/batch answers
// {"results": [{"Found": bool, "Reason": ..., "Card": ...}, ...]}, both in
// request order.
//
// /stats reports the net shape plus a "snapshot" section (source, serving
// generation, the snapshot file's checksum when loaded from disk, publish
// time, age, serving node/edge counts) and a "cache" section with
// hit/miss/eviction counters per cache layer.
//
// Serving is cached at two layers, both stamped with the serving
// generation so POST /reload (or a refreeze) invalidates everything at
// once without scanning: the facade memoizes composed search/recommend
// results (shared by the single and batch endpoints), and the hot
// single-query GETs additionally cache their encoded JSON bytes keyed on
// the raw query string — a repeat request is one cache lookup and one
// buffer write. -cache-size sets the per-layer entry budget (0 disables).
// Request decoding allocates next to nothing: batch bodies parse through
// a pooled fixed-shape scanner instead of encoding/json, and GET
// parameters resolve as substrings of the raw query.
//
// Usage: cocoserve [-addr :8080] [-scale small|default]
//
//	[-snapshot net.fz] [-snapshot-dir dir] [-shards N]
//	[-refresh 5m] [-cache-size 4096]
//	[-deadline 2s] [-batch-deadline 15s] [-max-inflight N] [-queue-depth N]
//	[-drain-timeout 15s] [-retain 4] [-scrub-interval 10m]
//
// With -snapshot, startup loads the frozen serving snapshot written by
// `alicoco snapshot save` instead of rebuilding the net — cold start is
// proportional to disk bandwidth. POST /reload re-reads the snapshot (or
// re-freezes the live net when built without one): the file's CRC-32 is
// verified (along with every structural invariant) before anything is
// swapped, so a corrupt or truncated snapshot leaves the current serving
// state untouched. The swap itself is one atomic pointer store — in-flight
// and concurrent queries keep answering without downtime; -refresh does
// the same on a timer.
//
// With -snapshot-dir, the store is a partition of N independently frozen
// shards (written by SaveShards: a manifest plus one file per shard).
// POST /reload diffs the on-disk manifest against serving and re-reads
// only the shards whose checksums changed — unchanged shards keep their
// in-memory form and their cache entries stay warm; a no-op reload swaps
// nothing at all. POST /reload?shard=i force-reloads one shard. Each
// shard fails, retries, and quarantines independently: a shard file that
// keeps failing validation is renamed aside while the other shards keep
// reloading. /stats lists per-shard generation, checksum, publish age,
// and consecutive-failure counts. -shards N partitions a live-built net
// the same way (refreezes then re-freeze all N shards in parallel).
//
// Operational behavior (see PERF.md "Operational behavior" for budgets):
// handler panics become 500s behind recovery middleware; cache-missing
// queries carry a per-endpoint deadline and pass an admission gate that
// sheds with 429 + Retry-After once its bounded wait queue is full (cache
// hits always answer — the degraded cache-hits-only mode under overload);
// POST bodies are capped and answer 413 when oversized; /healthz is
// liveness, /readyz is readiness (fails while draining or saturated);
// SIGTERM/SIGINT drains in-flight requests within -drain-timeout before
// exiting; the -refresh loop retries failed reloads with jittered
// exponential backoff behind a circuit breaker and quarantines (renames) a
// snapshot file that repeatedly fails validation, keeping the last good
// generation serving throughout. /stats carries a "resilience" section
// with all of those counters.
//
// When -snapshot-dir is a generation catalog (a store written by
// `alicoco snapshot save -dir` or SaveShards: gen-NNNNNN directories plus
// a CATALOG file committed by atomic rename), the crash-safe snapshot
// lifecycle engages on top of all of the above: startup sweeps any
// torn/uncommitted save the publisher left behind; every newly published
// generation must pass post-swap validation or the server automatically
// rolls back down the catalog to the newest generation that loads and
// validates clean (the bad generation is skiplisted until a newer one
// lands); a reload breaker trip likewise re-anchors serving on the newest
// clean generation instead of freezing on "last good in memory";
// POST /rollback?gen=N republishes an earlier generation on demand;
// -retain N prunes the catalog after successful reloads (the serving
// generation is never dropped); and -scrub-interval runs a background
// integrity scrubber that re-hashes the served generation's files against
// its manifest — anchored by the catalog entry's manifest checksum —
// quarantining mismatches and repairing them from the newest clean source
// (another committed generation, else the in-memory shard). /stats gains a
// "snapstore" section reporting the catalog, rollback history, and scrub
// counters. A flat (pre-catalog) snapshot directory disables all of it and
// serves exactly as before.
package main

import "alicoco/internal/serve"

func main() { serve.Main() }
