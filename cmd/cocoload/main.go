// Command cocoload replays realistic traffic against a cocoserve and
// reports whether the serving layer kept its SLOs.
//
// It is an open-loop driver: arrivals are scheduled by the clock at -rate,
// never gated on responses, so a struggling server faces the full offered
// load and the measured tail includes queueing that a closed-loop
// benchmark would hide (coordinated omission). Request mixes come from the
// same world model the net is built from:
//
//	-mix uniform      every concept equally likely (cache-friendly)
//	-mix zipf         hot-key skew, the shape of production query logs
//	-mix adversarial  cache-busting unique queries + unknown-item sessions
//	-mix all          one phase per mix
//
// Two ways to point it at a server:
//
//	cocoload -addr http://host:8080 ...   an already-running cocoserve
//	cocoload -inprocess ...               builds a sharded net, saves a
//	                                      snapshot catalog, and embeds the
//	                                      production server stack in-process
//
// -chaos (requires -inprocess, because the fault injection points are
// process-global) runs each mix twice: a clean baseline, then the same
// offered load with reload churn hammering /reload, one artificially slow
// shard at every scatter-gather boundary, and corrupt reads injected into
// one shard's snapshot file so its reloads fail mid-run. The SLOs asserted
// over the chaos phase:
//
//   - zero 5xx from query endpoints — overload sheds with 429, never errors,
//   - zero hangs — every request is answered or refused within 2x deadline,
//   - admitted requests finish inside -deadline (p99 of successes),
//   - goodput (in-deadline successes/sec) stays above -floor x baseline —
//     shedding degrades throughput, it must not collapse it.
//
// The report is written to -out (default BENCH_serve.json); the exit code
// is non-zero when any SLO was violated.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocoload: ")
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	rep, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rep.Phases {
		tag := ""
		if p.Chaos {
			tag = " +chaos"
		}
		fmt.Printf("%-14s offered %6.0f rps  goodput %7.1f rps  p50 %6.1fms  p99 %7.1fms  p999 %7.1fms  ok %d shed %d late %d 5xx %d hang %d\n",
			p.Mix+tag, p.RateRPS, p.GoodputRPS, p.P50MS, p.P99MS, p.P999MS,
			p.Counts.OK, p.Counts.Shed, p.Counts.LateOK, p.Counts.ServerErr, p.Counts.Hang)
	}
	if cfg.out != "" {
		if err := rep.Write(cfg.out); err != nil {
			log.Fatalf("write %s: %v", cfg.out, err)
		}
		log.Printf("report written to %s", cfg.out)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			log.Printf("SLO VIOLATION: %s", v)
		}
		os.Exit(1)
	}
	log.Printf("all SLOs held")
}
