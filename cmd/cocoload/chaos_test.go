// The chaos SLO suite: drives the embedded production server stack at a
// rate its 2-slot gate cannot absorb, while an admin goroutine churns
// reloads, one shard is slow at every scatter-gather boundary, and one
// shard's snapshot file returns corrupt bytes. This is the executable form
// of the serving layer's promises: overload answers are 429s (never 5xx,
// never hangs), admitted work finishes inside its deadline or is canceled,
// and goodput degrades instead of collapsing. CI runs it under -race.
package main

import (
	"testing"
	"time"
)

func chaosConfig() config {
	return config{
		inprocess: true,
		scale:     "small",
		shards:    4,
		rate:      600,
		duration:  2 * time.Second,
		// Generous deadline: under -race everything runs several times
		// slower; the SLO is "admitted work finishes in deadline", not "the
		// race detector is fast".
		deadline:    800 * time.Millisecond,
		mix:         "adversarial",
		batchFrac:   0.05,
		maxInflight: 2,
		queueDepth:  4,
		chaos:       true,
		floor:       0.4,
		// 3ms per scatter-gather boundary crossing of the slow shard puts a
		// cache-missing query's service time near 10ms — 2 engine slots then
		// cap throughput around 200/s against 600 offered, so the gate must
		// shed regardless of how fast the host is. At 1ms a fast unraced
		// machine drained the queue and the "overload exercised" assertion
		// below flaked.
		slowShardDelay: 3 * time.Millisecond,
		churnEvery:     50 * time.Millisecond,
		seed:           1,
	}
}

func TestChaosSLOSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite drives multi-second load phases")
	}
	rep, err := run(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("SLO violation: %s", v)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("want baseline + chaos phases, got %d", len(rep.Phases))
	}
	base, chaos := rep.Phases[0], rep.Phases[1]
	if base.Chaos || !chaos.Chaos {
		t.Fatalf("phase chaos flags wrong: %v %v", base.Chaos, chaos.Chaos)
	}

	// The drill must actually have drilled: if nothing was shed the gate
	// was never pressured and the suite proved nothing.
	if chaos.Counts.Shed == 0 {
		t.Errorf("chaos phase shed nothing — overload not exercised: %+v", chaos.Counts)
	}
	if chaos.Counts.OK == 0 {
		t.Errorf("chaos phase had zero in-deadline successes: %+v", chaos.Counts)
	}
	// Overload must answer with 429, not errors or silence — asserted by
	// the SLO check too, but spelled out so a failure names the counter.
	for name, p := range map[string]struct{ v uint64 }{
		"baseline 5xx":  {base.Counts.ServerErr},
		"baseline hang": {base.Counts.Hang},
		"chaos 5xx":     {chaos.Counts.ServerErr},
		"chaos hang":    {chaos.Counts.Hang},
	} {
		if p.v != 0 {
			t.Errorf("%s = %d, want 0", name, p.v)
		}
	}

	// The churn goroutine must have reloaded for real, and the corrupt
	// shard's force-reloads must have failed *cleanly* (admin 500s, served
	// snapshot untouched — queries above stayed 5xx-free throughout).
	reloads, _ := chaos.Notes["reloads_ok"].(uint64)
	failed, _ := chaos.Notes["reloads_failed"].(uint64)
	if reloads == 0 {
		t.Errorf("no successful reloads during chaos: notes=%v", chaos.Notes)
	}
	if failed == 0 {
		t.Errorf("corrupt shard reloads never failed — corruption injection inert: notes=%v", chaos.Notes)
	}
}

func TestParseFlagsRejectsChaosWithoutInprocess(t *testing.T) {
	if _, err := parseFlags([]string{"-chaos"}); err == nil {
		t.Fatal("-chaos without -inprocess accepted; fault injection is process-global")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.mix != "zipf" || cfg.rate != 600 || cfg.chaos || cfg.inprocess {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
