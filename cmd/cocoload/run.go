package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alicoco"
	"alicoco/internal/faultfs"
	"alicoco/internal/loadgen"
	"alicoco/internal/obs"
	"alicoco/internal/resilience"
	"alicoco/internal/serve"
)

type config struct {
	addr      string
	inprocess bool
	scale     string
	shards    int

	rate      float64
	duration  time.Duration
	deadline  time.Duration
	mix       string
	batchFrac float64

	// Embedded-server gate sizing (-inprocess only); 0 keeps the serve
	// defaults, small values force overload at modest rates.
	maxInflight int
	queueDepth  int

	chaos          bool
	floor          float64
	slowShardDelay time.Duration
	churnEvery     time.Duration

	out  string
	seed int64
}

func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("cocoload", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "base URL of a running cocoserve")
	fs.BoolVar(&cfg.inprocess, "inprocess", false,
		"build a sharded net and embed the production server stack instead of dialing -addr")
	fs.StringVar(&cfg.scale, "scale", "small", "net build scale: small or default")
	fs.IntVar(&cfg.shards, "shards", 4, "shard count for -inprocess builds")
	fs.Float64Var(&cfg.rate, "rate", 600, "offered load in requests/second (open loop)")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "length of each phase")
	fs.DurationVar(&cfg.deadline, "deadline", 500*time.Millisecond,
		"single-query deadline the SLOs are judged against (also configures the -inprocess server)")
	fs.StringVar(&cfg.mix, "mix", "zipf", "request mix: uniform, zipf, adversarial, or all")
	fs.Float64Var(&cfg.batchFrac, "batch-fraction", 0.05, "fraction of search ops sent as POST /search/batch")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 0,
		"embedded server's engine slots (0 = serve default; small values force overload)")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 0, "embedded server's admission queue depth (0 = serve default)")
	fs.BoolVar(&cfg.chaos, "chaos", false,
		"after each clean phase, rerun it under reload churn + one slow shard + corrupt snapshot reads and assert the SLOs held (requires -inprocess)")
	fs.Float64Var(&cfg.floor, "floor", 0.5, "fraction of baseline goodput a chaos phase must retain")
	fs.DurationVar(&cfg.slowShardDelay, "slow-shard-delay", time.Millisecond,
		"chaos: injected delay per scatter-gather boundary crossing of the slow shard")
	fs.DurationVar(&cfg.churnEvery, "churn-every", 100*time.Millisecond, "chaos: interval between reload requests")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report here (e.g. BENCH_serve.json)")
	fs.Int64Var(&cfg.seed, "seed", 1, "base seed for the request mixes")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.chaos && !cfg.inprocess {
		return cfg, errors.New("-chaos requires -inprocess: fault injection points are process-global")
	}
	return cfg, nil
}

func scaleOpts(scale string) (alicoco.Options, error) {
	switch scale {
	case "small":
		return alicoco.Small(), nil
	case "default":
		return alicoco.Default(), nil
	default:
		return alicoco.Options{}, fmt.Errorf("unknown -scale %q (want small or default)", scale)
	}
}

// inproc is an embedded production server: the same handler stack
// cocoserve runs, serving a sharded snapshot catalog from a temp dir so
// /reload and shard force-reloads work exactly as in production.
type inproc struct {
	baseURL string
	snapDir string
	corpus  *loadgen.Corpus
	httpSrv *http.Server
}

func startInprocess(cfg config) (*inproc, error) {
	opts, err := scaleOpts(cfg.scale)
	if err != nil {
		return nil, err
	}
	built, err := alicoco.BuildSharded(opts, cfg.shards)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	// The corpus comes from the built net (which has the world model's
	// click log); the server serves the frozen snapshot of the same net.
	corpus, err := loadgen.CorpusFrom(built, 256)
	if err != nil {
		return nil, err
	}
	snapDir, err := os.MkdirTemp("", "cocoload-snap-")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*inproc, error) {
		os.RemoveAll(snapDir)
		return nil, err
	}
	if _, err := built.SaveShards(snapDir, cfg.shards); err != nil {
		return fail(fmt.Errorf("save shards: %w", err))
	}
	coco, err := alicoco.LoadShardedFrozen(snapDir)
	if err != nil {
		return fail(fmt.Errorf("load shards: %w", err))
	}
	sv := serve.New(coco, serve.Config{
		Deadline:      cfg.deadline,
		BatchDeadline: 4 * cfg.deadline,
		MaxInflight:   cfg.maxInflight,
		QueueDepth:    cfg.queueDepth,
		SnapshotDir:   snapDir,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	hs := &http.Server{Handler: sv.Handler()}
	go hs.Serve(ln)
	return &inproc{
		baseURL: "http://" + ln.Addr().String(),
		snapDir: snapDir,
		corpus:  corpus,
		httpSrv: hs,
	}, nil
}

func (ip *inproc) shutdown() {
	ip.httpSrv.Close()
	os.RemoveAll(ip.snapDir)
}

// run executes every requested phase and returns the full report. main and
// the chaos SLO test share this path.
func run(cfg config) (*loadgen.Report, error) {
	mixes := []string{cfg.mix}
	if cfg.mix == "all" {
		mixes = loadgen.MixNames
	}
	baseURL := cfg.addr
	var corpus *loadgen.Corpus
	var ip *inproc
	if cfg.inprocess {
		var err error
		if ip, err = startInprocess(cfg); err != nil {
			return nil, err
		}
		defer ip.shutdown()
		baseURL, corpus = ip.baseURL, ip.corpus
	} else {
		// Remote server: builds are deterministic, so a local build at the
		// same scale yields the same concept names and click sessions.
		opts, err := scaleOpts(cfg.scale)
		if err != nil {
			return nil, err
		}
		built, err := alicoco.Build(opts)
		if err != nil {
			return nil, fmt.Errorf("build corpus net: %w", err)
		}
		if corpus, err = loadgen.CorpusFrom(built, 256); err != nil {
			return nil, err
		}
	}

	rep := &loadgen.Report{
		Tool:       "cocoload",
		Scale:      cfg.scale,
		Shards:     cfg.shards,
		DeadlineMS: float64(cfg.deadline.Microseconds()) / 1000,
		GoVersion:  runtime.Version(),
	}
	slo := loadgen.SLO{Deadline: cfg.deadline, GoodputFloor: cfg.floor}
	// In-process runs cross-check the server's /metrics histograms against
	// the client-observed ones after every phase — including chaos phases:
	// telemetry that goes wrong under reload churn is worse than none.
	var scraper *loadgen.Scraper
	if cfg.inprocess {
		scraper = &loadgen.Scraper{BaseURL: baseURL, Family: serve.MetricsHistogramName}
	}
	phaseIdx := 0
	newOpts := func(mix *loadgen.Mix) loadgen.Options {
		return loadgen.Options{
			BaseURL:       baseURL,
			Mix:           mix,
			Rate:          cfg.rate,
			Duration:      cfg.duration,
			Deadline:      cfg.deadline,
			BatchDeadline: 4 * cfg.deadline,
			BatchFraction: cfg.batchFrac,
			Retry:         true,
			Budget:        resilience.NewRetryBudget(0, 0),
			Seed:          loadgen.PhaseSeed(cfg.seed, phaseIdx),
		}
	}
	// checked brackets one phase with /metrics scrapes and runs the
	// server-vs-client histogram cross-check on the delta; scrape failures
	// and disagreements land in the report's violations, never a skip.
	checked := func(label string, exec func() (*loadgen.Result, error)) (*loadgen.Result, *loadgen.ServerObs, []string, error) {
		var before obs.HistSnapshot
		var viols []string
		scraped := false
		if scraper != nil {
			var err error
			if before, err = scraper.Scrape(); err != nil {
				viols = append(viols, fmt.Sprintf("%s: pre-phase /metrics scrape failed: %v", label, err))
			} else {
				scraped = true
			}
		}
		res, err := exec()
		if err != nil || !scraped {
			return res, nil, viols, err
		}
		// The server records a request after writing its response, so the
		// client can finish a phase a beat before the last observations
		// land in the histogram; let them settle before the closing scrape.
		time.Sleep(150 * time.Millisecond)
		after, err := scraper.Scrape()
		if err != nil {
			viols = append(viols, fmt.Sprintf("%s: post-phase /metrics scrape failed: %v", label, err))
			return res, nil, viols, nil
		}
		delta := after.Sub(&before)
		so, v := loadgen.CrossCheck(label, delta, res)
		return res, &so, append(viols, v...), nil
	}

	for _, name := range mixes {
		mix, err := loadgen.NewMix(name, corpus, loadgen.PhaseSeed(cfg.seed, phaseIdx))
		if err != nil {
			return nil, err
		}
		base, sobs, viols, err := checked(name, func() (*loadgen.Result, error) {
			return loadgen.Run(newOpts(mix))
		})
		if err != nil {
			return nil, err
		}
		phaseIdx++
		pr := loadgen.NewPhaseReport(base, cfg.rate, false)
		pr.Server = sobs
		rep.Phases = append(rep.Phases, pr)
		rep.Violations = append(rep.Violations, viols...)
		rep.Violations = append(rep.Violations, slo.Check(base)...)

		if !cfg.chaos {
			continue
		}
		mix2, err := loadgen.NewMix(name, corpus, loadgen.PhaseSeed(cfg.seed, phaseIdx))
		if err != nil {
			return nil, err
		}
		var notes map[string]any
		chaosRes, sobs2, viols2, err := checked(name+"+chaos", func() (*loadgen.Result, error) {
			r, n, cerr := runChaos(cfg, newOpts(mix2))
			notes = n
			return r, cerr
		})
		if err != nil {
			return nil, err
		}
		phaseIdx++
		chaosRes.Name = name + "+chaos" // disambiguate SLO messages
		pr = loadgen.NewPhaseReport(chaosRes, cfg.rate, true)
		pr.Mix = name
		pr.Server = sobs2
		pr.Notes = notes
		rep.Phases = append(rep.Phases, pr)
		rep.Violations = append(rep.Violations, viols2...)
		rep.Violations = append(rep.Violations, slo.Check(chaosRes)...)
		rep.Violations = append(rep.Violations, slo.CheckGoodput(base, chaosRes)...)
	}
	return rep, nil
}

// runChaos reruns a phase with every fault the serving layer claims to
// survive armed at once: the last shard slowed at every scatter-gather
// boundary crossing, one shard's snapshot file returning corrupt bytes (so
// its force-reloads fail mid-run), and an admin goroutine churning full
// and per-shard reloads throughout.
func runChaos(cfg config, opts loadgen.Options) (*loadgen.Result, map[string]any, error) {
	slowShard := cfg.shards - 1
	restoreSlow := faultfs.InjectQuery(faultfs.QueryFault{Shard: slowShard, Delay: cfg.slowShardDelay})
	defer restoreSlow()
	corruptShard := 1 % cfg.shards
	restoreCorrupt := faultfs.Inject(faultfs.Fault{
		PathContains: fmt.Sprintf("shard-%04d", corruptShard),
		CorruptAt:    256,
	})
	defer restoreCorrupt()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reloads, reloadErrs atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(cfg.churnEvery):
			}
			url := opts.BaseURL + "/reload"
			if i%2 == 1 {
				url = fmt.Sprintf("%s?shard=%d", url, (i/2)%cfg.shards)
			}
			resp, err := client.Post(url, "", nil)
			if err != nil {
				reloadErrs.Add(1)
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Reloads of the corrupt shard *should* fail (500 from the admin
			// endpoint, served snapshot untouched); they are the drill, not a
			// query-path SLO violation.
			if resp.StatusCode == http.StatusOK {
				reloads.Add(1)
			} else {
				reloadErrs.Add(1)
			}
		}
	}()
	res, err := loadgen.Run(opts)
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}
	notes := map[string]any{
		"reloads_ok":       reloads.Load(),
		"reloads_failed":   reloadErrs.Load(),
		"slow_shard":       slowShard,
		"slow_shard_delay": cfg.slowShardDelay.String(),
		"corrupt_shard":    corruptShard,
		"churn_every":      cfg.churnEvery.String(),
	}
	return res, notes, nil
}
