module alicoco

go 1.21
