package alicoco

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"alicoco/internal/snapstore"
)

// flipByte corrupts one byte of a file in place — the silent bit rot the
// scrubber exists to catch.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = len(raw) + off
	}
	raw[off] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubOnceRepairsCorruption: flip a byte in a served shard file, run
// one scrub pass under concurrent query traffic, and the poisoned file is
// quarantined and re-materialized byte-verified — while every concurrent
// and subsequent answer stays byte-identical and the warm query caches
// survive untouched (serving reads memory; the scrub is disk-only).
func TestScrubOnceRepairsCorruption(t *testing.T) {
	c := buildSmall(t)
	root := t.TempDir()
	if _, err := c.SaveShards(root, 3); err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFrozen(root)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := resolveShardDir(root)
	if err != nil {
		t.Fatal(err)
	}

	queries := equivalenceQueries(c)
	want := make([]any, len(queries))
	for i, q := range queries {
		want[i] = l.Search(q, 8) // also warms the result cache
	}
	stamp := l.CacheStamp()
	hitsBefore, _ := l.QueryCacheStats()

	// Rot shard 1 on disk. Serving answers from memory, so nothing notices
	// until the scrubber re-hashes the files.
	victim := filepath.Join(loc.dir, "shard-0001.fz")
	flipByte(t, victim, -10)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				if got := l.Search(q, 8); !reflect.DeepEqual(got, want[(i+w)%len(queries)]) {
					t.Errorf("Search(%q) changed during scrub", q)
					return
				}
			}
		}(w)
	}

	rep, err := l.ScrubOnce()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("ScrubOnce: %v", err)
	}
	if t.Failed() {
		return
	}
	if rep.Clean() || len(rep.Mismatches) != 1 || rep.Mismatches[0] != "shard-0001.fz" {
		t.Fatalf("scrub report missed the corruption: %+v", rep)
	}
	if len(rep.Quarantined) != 1 || len(rep.Repaired) != 1 || len(rep.Unrepaired) != 0 {
		t.Fatalf("scrub did not quarantine+repair: %+v", rep)
	}
	if _, err := os.Stat(rep.Quarantined[0]); err != nil {
		t.Fatalf("quarantined evidence missing: %v", err)
	}

	// The re-materialized file must satisfy a second, clean pass.
	rep2, err := l.ScrubOnce()
	if err != nil || !rep2.Clean() {
		t.Fatalf("second scrub pass not clean: %+v err=%v", rep2, err)
	}

	// Warm caches survived: same stamp, and repeats hit.
	if l.CacheStamp() != stamp {
		t.Fatal("scrub changed the cache stamp")
	}
	if got := l.Search(queries[0], 8); !reflect.DeepEqual(got, want[0]) {
		t.Fatal("answer changed after scrub repair")
	}
	hitsAfter, _ := l.QueryCacheStats()
	if hitsAfter.Hits <= hitsBefore.Hits {
		t.Fatalf("query cache went cold across scrub: hits %d -> %d", hitsBefore.Hits, hitsAfter.Hits)
	}

	// And the repaired directory reloads from disk bit-for-bit.
	l2, err := LoadShardedFrozen(root)
	if err != nil {
		t.Fatalf("reload after repair: %v", err)
	}
	for i, q := range queries {
		if !reflect.DeepEqual(l2.Search(q, 8), want[i]) {
			t.Fatalf("Search(%q) differs on fresh load of the repaired store", q)
		}
	}
}

// TestScrubRepairFromOlderGeneration: when the store holds an older
// generation with the same shard content, repair draws on it even though
// the served generation's copy is rotten.
func TestScrubRepairFromOlderGeneration(t *testing.T) {
	c := buildSmall(t)
	root := t.TempDir()
	// Two commits of identical content: gen 1 and gen 2 share every
	// checksum; serving resolves to gen 2.
	if _, err := c.SaveShards(root, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveShards(root, 3); err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFrozen(root)
	if err != nil {
		t.Fatal(err)
	}
	if g := l.ServingInfo().CatalogGen; g != 2 {
		t.Fatalf("serving gen %d, want 2", g)
	}
	loc, err := resolveShardDir(root)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(loc.dir, "shard-0002.fz"), -10)
	rep, err := l.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) != 1 || rep.Repaired[0] != "shard-0002.fz" {
		t.Fatalf("repair from older generation failed: %+v", rep)
	}
	if rep2, err := l.ScrubOnce(); err != nil || !rep2.Clean() {
		t.Fatalf("post-repair pass not clean: %+v err=%v", rep2, err)
	}
}

// TestScrubManifestMismatchUnrepairable: a manifest whose bytes disagree
// with the catalog entry invalidates the whole chain of trust — the scrub
// reports it unrepaired (there is no other copy of a generation's
// manifest) and stops before "verifying" files against lies.
func TestScrubManifestMismatchUnrepairable(t *testing.T) {
	c := buildSmall(t)
	root := t.TempDir()
	if _, err := c.SaveShards(root, 2); err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFrozen(root)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := resolveShardDir(root)
	if err != nil {
		t.Fatal(err)
	}
	// Whitespace keeps the manifest parseable but changes its bytes.
	man := filepath.Join(loc.dir, "manifest.json")
	raw, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(man, append(raw, ' ', '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := l.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Unrepaired) != 1 || rep.Unrepaired[0] != "manifest.json" {
		t.Fatalf("manifest mismatch not reported unrepairable: %+v", rep)
	}
}

// TestRollbackToFacade: RollbackTo republishes an earlier committed
// generation — by explicit ID or "the previous one" — and serving answers
// match a fresh load of that generation.
func TestRollbackToFacade(t *testing.T) {
	c := buildSmall(t)
	root := t.TempDir()
	manA, err := c.SaveShards(root, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InferImplicitRelations(); err != nil {
		t.Fatal(err)
	}
	manB, err := c.SaveShards(root, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(manA, manB) {
		t.Fatal("both generations identical; rollback would be unobservable")
	}

	l, err := LoadShardedFrozen(root)
	if err != nil {
		t.Fatal(err)
	}
	if g := l.ServingInfo().CatalogGen; g != 2 {
		t.Fatalf("fresh load serves gen %d, want newest (2)", g)
	}
	afterB := l.Search("outdoor barbecue", 8)

	// Default rollback: one generation down.
	g, err := l.RollbackTo(0)
	if err != nil || g.ID != 1 {
		t.Fatalf("RollbackTo(0): gen %d err=%v, want 1", g.ID, err)
	}
	info := l.ServingInfo()
	if info.CatalogGen != 1 || info.Source != "rollback" {
		t.Fatalf("serving info after rollback: %+v", info)
	}

	// Answers now match generation A, loaded independently.
	refA, err := LoadShardedFrozen(filepath.Join(root, "gen-000001"))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range equivalenceQueries(c) {
		if !reflect.DeepEqual(refA.Search(q, 8), l.Search(q, 8)) {
			t.Fatalf("Search(%q) differs from generation 1 after rollback", q)
		}
	}

	// No older generation left: a further default rollback errors.
	if _, err := l.RollbackTo(0); err == nil {
		t.Fatal("rollback below the oldest generation succeeded")
	}
	// Unknown generations error.
	if _, err := l.RollbackTo(99); err == nil {
		t.Fatal("rollback to uncommitted generation succeeded")
	}
	// Roll forward again by explicit ID.
	if g, err := l.RollbackTo(2); err != nil || g.ID != 2 {
		t.Fatalf("RollbackTo(2): gen %d err=%v", g.ID, err)
	}
	if got := l.Search("outdoor barbecue", 8); !reflect.DeepEqual(got, afterB) {
		t.Fatal("roll-forward did not restore generation 2's answers")
	}

	// A CoCo not serving from a catalog cannot roll back.
	if _, err := c.RollbackTo(0); err == nil {
		t.Fatal("rollback on a live-built CoCo succeeded")
	}
}

// TestSaveShardsRetainWindow: the facade save honors the retention window
// and the committed generation is reported back.
func TestSaveShardsRetainWindow(t *testing.T) {
	c := buildSmall(t)
	root := t.TempDir()
	var last snapstore.Gen
	for i := 0; i < 4; i++ {
		var err error
		_, last, err = c.SaveShardsRetain(root, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.ID != 4 {
		t.Fatalf("last committed generation %d, want 4", last.ID)
	}
	gens, err := snapstore.ListGenerations(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].ID != 3 || gens[1].ID != 4 {
		t.Fatalf("retention kept %+v, want generations 3 and 4", gens)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "gen-") && e.Name() != "gen-000003" && e.Name() != "gen-000004" {
			t.Fatalf("pruned generation directory %s survived", e.Name())
		}
	}
}
