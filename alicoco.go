// Package alicoco is the public API of the AliCoCo reproduction: build (or
// load) the e-commerce cognitive concept net, inspect it, and run the two
// flagship applications — semantic search with concept cards and cognitive
// recommendation (Luo et al., SIGMOD 2020).
//
// Quick start:
//
//	coco, err := alicoco.Build(alicoco.Small())
//	res := coco.Search("outdoor barbecue", 10)
//	fmt.Println(res.Cards[0].Name, res.Cards[0].Items)
package alicoco

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alicoco/internal/apps/recommend"
	"alicoco/internal/apps/search"
	"alicoco/internal/core"
	"alicoco/internal/faultfs"
	"alicoco/internal/inference"
	"alicoco/internal/par"
	"alicoco/internal/pipeline"
	"alicoco/internal/qcache"
	"alicoco/internal/snapstore"
	"alicoco/internal/world"
)

// DefaultQueryCacheCapacity is the per-cache entry budget (one cache for
// search, one for recommendation) a Build- or LoadFrozen-constructed CoCo
// starts with; SetQueryCacheCapacity adjusts it at runtime.
const DefaultQueryCacheCapacity = 4096

// Options sizes the net construction. Use Small or Default and tweak.
type Options struct {
	// Seed makes the whole build deterministic.
	Seed int64
	// ItemsPerCategory controls the item layer size.
	ItemsPerCategory int
	// Scenarios controls how many shopping scenarios beyond the
	// handcrafted set are generated.
	Scenarios int
	// CorpusSentences controls the synthetic corpus size per source.
	CorpusSentences int
}

// Small returns a fast, test-sized configuration.
func Small() Options {
	return Options{Seed: 7, ItemsPerCategory: 3, Scenarios: 20, CorpusSentences: 300}
}

// Default returns the laptop-scale configuration used by the experiment
// harness.
func Default() Options {
	return Options{Seed: 42, ItemsPerCategory: 12, Scenarios: 120, CorpusSentences: 2000}
}

// CoCo is a built (or snapshot-loaded) concept net plus its application
// engines.
//
// All query methods read one servingState loaded atomically, so they are
// safe to call concurrently with InferImplicitRelations, Refreeze, and
// ReloadFrozen (each publishes a fresh snapshot by swapping the pointer,
// never by mutating one in place).
type CoCo struct {
	arts       atomic.Pointer[pipeline.Artifacts]
	offline    sync.Mutex // serializes offline mutation + republish cycles
	serving    atomic.Pointer[servingState]
	generation atomic.Uint64 // counts published serving snapshots

	// shardCount is the partition size live refreezes maintain: a CoCo
	// built with BuildSharded re-partitions into the same number of shards
	// on every refreeze (inference, Refreeze). 0 or 1 means unsharded.
	// Written only at construction, before the CoCo escapes.
	shardCount int

	// The query caches outlive individual serving snapshots: every entry
	// is stamped with the generation (and checksum) of the snapshot it was
	// computed from, so publishing a new snapshot — reload, refreeze,
	// inference — invalidates the whole cache for free (stale generations
	// simply stop matching). One cache per engine keeps the /stats
	// counters attributable.
	searchCache *qcache.Cache
	recCache    *qcache.Cache
}

// newCoCo returns an empty facade with its query caches allocated.
func newCoCo() *CoCo {
	return &CoCo{
		searchCache: qcache.New(DefaultQueryCacheCapacity),
		recCache:    qcache.New(DefaultQueryCacheCapacity),
	}
}

// servingReader is the store surface a serving state queries: the full
// Reader plus snapshot statistics. Both the single frozen net and the
// sharded set satisfy it.
type servingReader interface {
	core.Reader
	ComputeStats() core.Stats
}

// servingState bundles a frozen store with the engines and item index
// built on it, so everything a query touches swaps together atomically. A
// request loads the pointer once and keeps it for its whole lifetime —
// that per-request pinning is what makes a concurrent reload (of the whole
// net or of a single shard) invisible mid-request: the old state, with all
// its shard pointers, stays reachable until the last pinned request
// finishes.
type servingState struct {
	reader servingReader

	// Exactly one of the two stores below backs reader. frozen is the
	// whole net (or the sole shard of an N=1 partition, which keeps N=1 on
	// the unsharded fast path); shards is the scatter-gather set for N>1.
	frozen *core.FrozenNet
	shards *core.ShardSet

	// Sharded-snapshot bookkeeping: where the shards were loaded from and
	// the manifest they were verified against (nil for in-process freezes),
	// plus per-shard serving metadata. shardInfo is set whenever the state
	// was published from a partition, even an in-memory one. When the
	// snapshot came out of a generation catalog, shardRoot is the store
	// root (shardDir is then the generation's directory under it) and
	// catalogGen the committed generation being served — what RollbackTo
	// and the scrubber anchor on; both are zero for flat directories and
	// in-process freezes.
	shardDir   string
	shardRoot  string
	catalogGen uint64
	manifest   *pipeline.ShardManifest
	shardInfo  []ShardServingInfo

	search     *search.Engine
	rec        *recommend.Engine
	items      []Item               // world order, for deterministic listings
	itemByNode map[core.NodeID]Item // net node -> facade item
	itemNode   map[int]core.NodeID  // world item ID -> net node
	stamp      qcache.Stamp         // cache stamp of this snapshot (see stamps below)
	info       ServingInfo
}

// ShardServingInfo is the per-shard slice of ServingInfo: which file
// content the shard serves and since when. Generation/PublishedAt are
// carried over across republishes that reuse the shard's in-memory
// pointer, so they describe when this shard's content last changed — not
// when the set around it was reassembled.
type ShardServingInfo struct {
	Index       int       // shard position in the partition
	Checksum    string    // CRC-32 (hex) of the shard file; "" for in-process freezes
	Generation  uint64    // facade generation at which this shard's content was published
	PublishedAt time.Time // when this shard's content went live
	Nodes       int
	Edges       int
}

// ServingInfo identifies the snapshot queries are currently served from:
// where it came from, how many times serving has been republished, the
// checksum of the snapshot file (when loaded from disk), and when it went
// live — the operational metadata a fleet needs to tell which net version
// each replica is answering with.
type ServingInfo struct {
	Source      string    // "build", "snapshot", "shards", "refreeze", or "rollback"
	Generation  uint64    // increments with every published serving state
	Checksum    string    // CRC-32 (hex) of the loaded snapshot content; "" for in-process freezes
	PublishedAt time.Time // when this serving state was swapped in
	Nodes       int
	Edges       int
	Shards      int    // partition size; 0 when serving an unpartitioned net
	CatalogGen  uint64 // snapshot-store generation being served; 0 when not catalog-backed
}

// ServingInfo describes the currently published serving snapshot.
func (c *CoCo) ServingInfo() ServingInfo { return c.serving.Load().info }

// Build constructs the net end-to-end from a synthetic corpus.
func Build(opts Options) (*CoCo, error) {
	popts := pipeline.DefaultOptions()
	popts.World.Seed = opts.Seed
	popts.World.ItemsPerLeaf = opts.ItemsPerCategory
	popts.World.GeneratedFrames = opts.Scenarios
	popts.Queries = opts.CorpusSentences
	popts.Reviews = opts.CorpusSentences
	popts.Guides = opts.CorpusSentences
	arts, err := pipeline.Build(popts)
	if err != nil {
		return nil, err
	}
	// Serving always runs on the frozen snapshot: lock-free, zero-alloc
	// reads, postings pre-sorted at freeze time.
	c := newCoCo()
	c.arts.Store(arts)
	c.publish(arts, "build")
	return c, nil
}

// loadArtifacts reads a frozen snapshot file into a serving-only
// Artifacts bundle. The open goes through faultfs so chaos tests can
// inject slow, short, and corrupt reads against the real loader; with no
// fault armed it is a plain os.Open.
func loadArtifacts(path string) (*pipeline.Artifacts, error) {
	f, err := faultfs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pipeline.LoadSnapshot(bufio.NewReaderSize(f, 1<<20))
}

// LoadFrozen builds a CoCo from a snapshot file written by SaveFrozen,
// skipping world generation, model training, and the Freeze pass: cold
// start is proportional to disk bandwidth. The loaded CoCo serves every
// query path; offline paths that need the live net or the world
// (InferImplicitRelations, SampleSessions, Glosses) report that they are
// unavailable.
func LoadFrozen(path string) (*CoCo, error) {
	arts, err := loadArtifacts(path)
	if err != nil {
		return nil, err
	}
	c := newCoCo()
	c.arts.Store(arts)
	c.publish(arts, "snapshot")
	return c, nil
}

// SaveFrozen writes the serving state — the frozen net plus the serving
// metadata — to a snapshot file LoadFrozen can restore. The write has full
// crash-safety discipline (temp sibling, fsync file, checked close,
// rename, fsync parent directory), so neither a crash mid-save nor a power
// loss right after the rename can leave a corrupt or empty snapshot at the
// published path. It holds the offline lock so a concurrent refreeze
// cannot swap the frozen net mid-serialization.
func (c *CoCo) SaveFrozen(path string) error {
	c.offline.Lock()
	defer c.offline.Unlock()
	return snapstore.WriteFileAtomic(filepath.Dir(path), filepath.Base(path), func(w io.Writer) error {
		return c.arts.Load().SaveSnapshot(w)
	})
}

// ReloadFrozen reads a snapshot file and hot-swaps it into serving: queries
// running concurrently keep answering from the old snapshot until the
// atomic pointer swap, then see the new one. This is how a running server
// ingests new edges without a restart.
func (c *CoCo) ReloadFrozen(path string) error {
	arts, err := loadArtifacts(path)
	if err != nil {
		return err
	}
	c.offline.Lock()
	defer c.offline.Unlock()
	c.arts.Store(arts)
	c.publish(arts, "snapshot")
	return nil
}

// Refreeze republishes the live net's current state to the serving engines,
// preserving the configured partition (a BuildSharded CoCo re-freezes all
// shards). It errors on a snapshot-loaded CoCo, which has no live net.
func (c *CoCo) Refreeze() error {
	c.offline.Lock()
	defer c.offline.Unlock()
	if c.arts.Load().Net == nil {
		return errors.New("alicoco: refreeze: snapshot-loaded net has no live store")
	}
	return c.refreeze()
}

// BuildSharded is Build with the frozen store partitioned into shards:
// point lookups route to the owning shard, traversals and search
// scatter-gather across the set, and each shard can be re-frozen and
// reloaded independently. Every subsequent refreeze (inference, Refreeze)
// maintains the same partition. shards <= 1 behaves exactly like Build.
func BuildSharded(opts Options, shards int) (*CoCo, error) {
	c, err := Build(opts)
	if err != nil || shards <= 1 {
		return c, err
	}
	c.shardCount = shards
	arts := c.arts.Load()
	arts.Shards = arts.Net.FreezeShards(shards)
	arts.Frozen = nil // the partition is now the serving truth; see SaveShards
	return c, c.publishShards(arts, "build", shardLoc{}, nil)
}

// NumShards reports the partition size of the published serving state;
// 0 means serving is unpartitioned.
func (c *CoCo) NumShards() int { return c.serving.Load().info.Shards }

// ShardInfos describes each shard of the published serving partition —
// nil when serving is unpartitioned. The slice is a copy.
func (c *CoCo) ShardInfos() []ShardServingInfo {
	return append([]ShardServingInfo(nil), c.serving.Load().shardInfo...)
}

// SaveShards partitions the live net into count shards and commits them as
// a new generation in the snapshot store at dir — per-shard files plus a
// checksummed manifest in a gen-%06d directory, named by the store's
// catalog — that LoadShardedFrozen and ReloadShards restore. Shards are
// frozen and written in parallel into a temp generation directory; the
// atomic catalog update is the single commit point, so a crashed save
// leaves only debris the next open sweeps away. It errors on a
// snapshot-loaded CoCo (no live net to partition).
func (c *CoCo) SaveShards(dir string, count int) (*pipeline.ShardManifest, error) {
	man, _, err := c.SaveShardsRetain(dir, count, 0)
	return man, err
}

// SaveShardsRetain is SaveShards with an explicit retention count — how
// many committed generations the store keeps as the rollback window
// (<= 0 means snapstore.DefaultRetain). It also returns the committed
// generation.
func (c *CoCo) SaveShardsRetain(dir string, count, retain int) (*pipeline.ShardManifest, snapstore.Gen, error) {
	c.offline.Lock()
	defer c.offline.Unlock()
	return c.arts.Load().SaveShardsRetain(dir, count, retain)
}

// LoadShardedFrozen builds a CoCo from a sharded snapshot written by
// SaveShards: a snapshot-store root (the newest committed generation
// loads), a generation directory, or a pre-catalog flat directory. Shards
// load and verify in parallel; the CoCo serves every query path,
// scatter-gathering across the partition.
func LoadShardedFrozen(dir string) (*CoCo, error) {
	loc, err := resolveShardDir(dir)
	if err != nil {
		return nil, err
	}
	arts, man, err := pipeline.LoadShards(loc.dir)
	if err != nil {
		return nil, err
	}
	c := newCoCo()
	c.arts.Store(arts)
	if err := c.publishShards(arts, "shards", loc, man); err != nil {
		return nil, err
	}
	return c, nil
}

// shardLoc names where a sharded snapshot lives: the directory holding
// its files, plus — when it came out of a generation catalog — the store
// root and committed generation ID.
type shardLoc struct {
	dir  string
	root string
	gen  uint64
}

// resolveShardDir maps a snapshot directory argument through the
// generation catalog: a store root resolves to its newest committed
// generation, anything else to itself.
func resolveShardDir(dir string) (shardLoc, error) {
	resolved, gen, isStore, err := snapstore.ResolveDir(dir)
	if err != nil {
		return shardLoc{}, err
	}
	loc := shardLoc{dir: resolved}
	if isStore {
		loc.root, loc.gen = dir, gen
	}
	return loc, nil
}

// ReloadShards re-reads a sharded snapshot (store root, generation dir, or
// flat dir — see LoadShardedFrozen) and hot-swaps the changed parts into
// serving. It diffs the on-disk manifest against the partition currently
// served: shards whose checksums match keep their in-memory form (and, via
// the content stamp, their cache entries); only changed shards are read
// from disk — so a new catalog generation that touched one shard reloads
// one shard, even though it lives in a fresh gen-%06d directory. It
// returns how many shards were (re)loaded — 0 means the snapshot holds
// exactly what is already being served; when it is also the same directory
// nothing is republished at all, and when it is a newer generation with
// identical content only the location bookkeeping is republished (the
// content stamp, and with it every warm cache entry, carries over). A
// partition-shape change (shard count, stride, node total, or serving
// metadata) falls back to a full load. Queries running concurrently keep
// answering from the old partition until the single atomic swap, so no
// request ever sees a mix of generations.
func (c *CoCo) ReloadShards(dir string) (int, error) {
	c.offline.Lock()
	defer c.offline.Unlock()
	loc, err := resolveShardDir(dir)
	if err != nil {
		return 0, err
	}
	man, err := pipeline.ReadManifest(loc.dir)
	if err != nil {
		return 0, err
	}
	prev := c.serving.Load()
	if prev == nil || prev.manifest == nil || prev.shards == nil || !sameShape(prev.manifest, man) {
		arts, man, err := pipeline.LoadShards(loc.dir)
		if err != nil {
			return 0, err
		}
		c.arts.Store(arts)
		return man.NumShards(), c.publishShards(arts, "shards", loc, man)
	}
	shards := make([]*core.FrozenNet, man.NumShards())
	changed := 0
	for i := range shards {
		if man.Shards[i].Checksum == prev.manifest.Shards[i].Checksum {
			shards[i] = prev.shards.Shard(i)
			continue
		}
		sh, err := pipeline.LoadShard(loc.dir, man, i)
		if err != nil {
			return 0, err
		}
		shards[i] = sh
		changed++
	}
	if changed == 0 && prev.shardDir == loc.dir {
		return 0, nil
	}
	arts := *c.arts.Load()
	arts.Shards = shards
	c.arts.Store(&arts)
	return changed, c.publishShards(&arts, "shards", loc, man)
}

// ReloadShard force-reloads one shard from a sharded snapshot directory,
// regardless of whether its checksum changed; the rest of the partition
// keeps serving its in-memory shards. The manifest is re-read first so
// the shard is verified against the directory's current commit point; if
// the partition shape on disk no longer matches serving, the reload is
// refused (use ReloadShards, which handles shape changes).
func (c *CoCo) ReloadShard(dir string, i int) error {
	c.offline.Lock()
	defer c.offline.Unlock()
	prev := c.serving.Load()
	if prev == nil || prev.manifest == nil {
		return errors.New("alicoco: reload shard: serving is not backed by a sharded snapshot")
	}
	loc, err := resolveShardDir(dir)
	if err != nil {
		return err
	}
	man, err := pipeline.ReadManifest(loc.dir)
	if err != nil {
		return err
	}
	if i < 0 || i >= man.NumShards() {
		return fmt.Errorf("alicoco: reload shard: index %d out of range [0,%d)", i, man.NumShards())
	}
	if !sameShape(prev.manifest, man) {
		return errors.New("alicoco: reload shard: partition shape on disk changed; use ReloadShards")
	}
	sh, err := pipeline.LoadShard(loc.dir, man, i)
	if err != nil {
		return err
	}
	shards := append([]*core.FrozenNet(nil), prev.shards.Shards()...)
	shards[i] = sh
	// Publish under an *effective* manifest: the served manifest with only
	// entry i replaced. The directory's manifest may already describe newer
	// content for shards this reload did not touch (an operator rolling the
	// partition one shard at a time); recording it verbatim would stamp the
	// query caches with content that is not being served yet and make a
	// later ReloadShards diff believe those shards are already current.
	eff := *prev.manifest
	eff.Shards = append([]pipeline.ShardEntry(nil), prev.manifest.Shards...)
	eff.TotalEdges += man.Shards[i].Edges - eff.Shards[i].Edges
	eff.Shards[i] = man.Shards[i]
	arts := *c.arts.Load()
	arts.Shards = shards
	c.arts.Store(&arts)
	return c.publishShards(&arts, "shards", loc, &eff)
}

// RollbackTo republishes an earlier committed generation of the snapshot
// store serving was loaded from: the named generation (0 means the newest
// committed generation older than the one being served) is fully loaded
// and verified, then swapped in atomically — the recovery path for a
// generation that loads clean but misbehaves once live. It returns the
// generation actually published.
func (c *CoCo) RollbackTo(gen uint64) (snapstore.Gen, error) {
	c.offline.Lock()
	defer c.offline.Unlock()
	prev := c.serving.Load()
	if prev == nil || prev.shardRoot == "" {
		return snapstore.Gen{}, errors.New("alicoco: rollback: serving is not backed by a snapshot store")
	}
	store, err := snapstore.Open(prev.shardRoot, snapstore.Options{})
	if err != nil {
		return snapstore.Gen{}, err
	}
	var g snapstore.Gen
	if gen != 0 {
		if g, err = store.Find(gen); err != nil {
			return snapstore.Gen{}, err
		}
	} else {
		gens, err := store.Generations()
		if err != nil {
			return snapstore.Gen{}, err
		}
		for i := len(gens) - 1; i >= 0; i-- {
			if gens[i].ID < prev.catalogGen {
				g = gens[i]
				break
			}
		}
		if g.ID == 0 {
			return snapstore.Gen{}, fmt.Errorf("alicoco: rollback: no committed generation older than %d", prev.catalogGen)
		}
	}
	loc := shardLoc{dir: store.GenDir(g), root: prev.shardRoot, gen: g.ID}
	arts, man, err := pipeline.LoadShards(loc.dir)
	if err != nil {
		return snapstore.Gen{}, err
	}
	c.arts.Store(arts)
	return g, c.publishShards(arts, "rollback", loc, man)
}

// ScrubOnce runs one integrity pass over the generation directory serving
// was loaded from: every file is re-hashed against the on-disk manifest
// (itself verified against the catalog when the snapshot is
// catalog-backed), mismatches are quarantined, and each quarantined file
// is repaired from the newest clean source — another catalog generation
// with matching content first, the served in-memory shard second. Repair
// touches only the disk copy; serving reads the in-memory shards
// throughout, so traffic keeps answering byte-identically and warm cache
// entries survive. Holding the offline lock serializes the pass with
// saves and reloads.
func (c *CoCo) ScrubOnce() (*snapstore.ScrubReport, error) {
	c.offline.Lock()
	defer c.offline.Unlock()
	s := c.serving.Load()
	if s == nil || s.shardDir == "" {
		return nil, errors.New("alicoco: scrub: serving is not backed by an on-disk sharded snapshot")
	}
	opts := pipeline.ScrubOptions{Gen: s.catalogGen}
	if s.shardRoot != "" {
		store, err := snapstore.Open(s.shardRoot, snapstore.Options{})
		if err != nil {
			return nil, err
		}
		opts.Store = store
		if g, err := store.Find(s.catalogGen); err == nil {
			opts.ManifestChecksum = g.ManifestChecksum
		}
	}
	if s.shards != nil {
		opts.InMem = s.shards.Shards()
	} else if s.frozen != nil {
		opts.InMem = []*core.FrozenNet{s.frozen}
	}
	return pipeline.ScrubShardDir(s.shardDir, opts)
}

func buildItemIndex(meta *pipeline.ServingMeta) ([]Item, map[core.NodeID]Item, map[int]core.NodeID) {
	items := make([]Item, 0, len(meta.Items))
	rev := make(map[core.NodeID]Item, len(meta.Items))
	fwd := make(map[int]core.NodeID, len(meta.Items))
	for _, im := range meta.Items {
		it := Item{ID: im.WorldID, Title: im.Title, Category: im.Category}
		items = append(items, it)
		rev[im.Node] = it
		fwd[im.WorldID] = im.Node
	}
	return items, rev, fwd
}

// publish swaps in a serving state built on the artifacts' frozen snapshot.
// The fresh engines are stamped with the new generation, so everything the
// query caches hold for earlier snapshots becomes unreachable in the same
// atomic pointer store that publishes the snapshot itself.
func (c *CoCo) publish(arts *pipeline.Artifacts, source string) {
	frozen := arts.Frozen
	items, rev, fwd := buildItemIndex(arts.Serving)
	checksum := ""
	if source == "snapshot" { // only snapshot files have a recorded CRC
		checksum = fmt.Sprintf("%08x", frozen.Checksum())
	}
	stamp := qcache.Stamp{Gen: c.generation.Add(1), Sum: frozen.Checksum()}
	se := search.NewEngine(frozen, arts.Serving.Stopwords)
	se.UseCache(c.searchCache, stamp)
	re := recommend.NewEngine(frozen)
	re.UseCache(c.recCache, stamp)
	c.serving.Store(&servingState{
		reader:     frozen,
		frozen:     frozen,
		search:     se,
		rec:        re,
		items:      items,
		itemByNode: rev,
		itemNode:   fwd,
		stamp:      stamp,
		info: ServingInfo{
			Source:      source,
			Generation:  stamp.Gen,
			Checksum:    checksum,
			PublishedAt: time.Now(),
			Nodes:       frozen.NumNodes(),
			Edges:       frozen.NumEdges(),
		},
	})
}

// shardContentStamp derives the cache stamp of a disk-loaded shard
// partition from the manifest's content checksums (meta plus every shard)
// instead of from the publish counter: republishing the same bytes — a
// no-op ReloadShards, or a reload that pulled one changed shard and kept
// the rest — yields the same stamp, so cache entries computed from
// unchanged content stay live across the swap. Bit 63 of Gen is set so a
// content stamp can never collide with a counter stamp.
func shardContentStamp(man *pipeline.ShardManifest) qcache.Stamp {
	buf := make([]byte, 0, 4*(len(man.Shards)+1))
	put := func(v uint32) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	put(man.MetaChecksum)
	for _, e := range man.Shards {
		put(e.Checksum)
	}
	h := uint64(14695981039346656037) // FNV-1a 64
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return qcache.Stamp{Gen: h | 1<<63, Sum: crc32.ChecksumIEEE(buf)}
}

// sameShape reports whether two manifests describe the same partition
// (count, stride, node total) of the same serving metadata — the
// precondition for reusing in-memory shards across a reload.
func sameShape(a, b *pipeline.ShardManifest) bool {
	return a.NumShards() == b.NumShards() && a.Stride == b.Stride &&
		a.TotalNodes == b.TotalNodes && a.MetaChecksum == b.MetaChecksum
}

// publishShards swaps in a serving state backed by a shard partition
// (arts.Shards). For a single-shard partition the engines run directly on
// the sole shard — a whole frozen net — so N=1 stays on the unpartitioned
// fast path; for N>1 they run on the scatter-gather ShardSet. loc and man
// identify the sharded snapshot the partition was verified against (the
// directory, and for catalog-backed snapshots the store root and committed
// generation); both are zero for in-process freezes.
func (c *CoCo) publishShards(arts *pipeline.Artifacts, source string, loc shardLoc, man *pipeline.ShardManifest) error {
	set, err := core.NewShardSet(arts.Shards)
	if err != nil {
		return err
	}
	var reader servingReader = set
	var frozen *core.FrozenNet
	if set.NumShards() == 1 {
		frozen = set.Shard(0)
		reader = frozen
	}
	items, rev, fwd := buildItemIndex(arts.Serving)
	gen := c.generation.Add(1)
	stamp := qcache.Stamp{Gen: gen}
	checksum := ""
	if man != nil {
		stamp = shardContentStamp(man)
		checksum = fmt.Sprintf("%08x", stamp.Sum)
	}
	prev := c.serving.Load()
	now := time.Now()
	shardInfo := make([]ShardServingInfo, set.NumShards())
	for i := range shardInfo {
		sh := set.Shard(i)
		si := ShardServingInfo{
			Index:       i,
			Generation:  gen,
			PublishedAt: now,
			Nodes:       sh.NumNodes(),
			Edges:       sh.NumEdges(),
		}
		if man != nil {
			si.Checksum = fmt.Sprintf("%08x", man.Shards[i].Checksum)
		}
		// A shard whose in-memory pointer survived the republish did not
		// change content; keep its original publication metadata.
		if prev != nil && prev.shards != nil && i < prev.shards.NumShards() && prev.shards.Shard(i) == sh {
			si.Generation = prev.shardInfo[i].Generation
			si.PublishedAt = prev.shardInfo[i].PublishedAt
		}
		shardInfo[i] = si
	}
	se := search.NewEngine(reader, arts.Serving.Stopwords)
	se.UseCache(c.searchCache, stamp)
	re := recommend.NewEngine(reader)
	re.UseCache(c.recCache, stamp)
	c.serving.Store(&servingState{
		reader:     reader,
		frozen:     frozen,
		shards:     set,
		shardDir:   loc.dir,
		shardRoot:  loc.root,
		catalogGen: loc.gen,
		manifest:   man,
		shardInfo:  shardInfo,
		search:     se,
		rec:        re,
		items:      items,
		itemByNode: rev,
		itemNode:   fwd,
		stamp:      stamp,
		info: ServingInfo{
			Source:      source,
			Generation:  gen,
			Checksum:    checksum,
			PublishedAt: now,
			Nodes:       set.NumNodes(),
			Edges:       set.NumEdges(),
			Shards:      set.NumShards(),
			CatalogGen:  loc.gen,
		},
	})
	return nil
}

// CacheStamp returns the generation+checksum stamp of the published
// serving snapshot — the stamp callers layering their own caches on top
// (e.g. cocoserve's encoded-response cache) must write entries under, so
// a reload invalidates those layers the same way it invalidates the
// built-in query caches.
func (c *CoCo) CacheStamp() qcache.Stamp { return c.serving.Load().stamp }

// QueryCacheStats reports the hit/miss/eviction counters of the two query
// caches.
func (c *CoCo) QueryCacheStats() (searchStats, recommendStats qcache.Stats) {
	return c.searchCache.Stats(), c.recCache.Stats()
}

// SetQueryCacheCapacity resizes both query caches in place (entries each;
// n <= 0 disables result caching). Safe to call while serving.
func (c *CoCo) SetQueryCacheCapacity(n int) {
	c.searchCache.Resize(n)
	c.recCache.Resize(n)
}

// refreeze publishes the live net's current state to the serving engines
// after an offline mutation, re-partitioning into the configured shard
// count (each shard frozen in parallel). Callers hold c.offline.
func (c *CoCo) refreeze() error {
	arts := c.arts.Load()
	if c.shardCount > 1 {
		arts.Shards = arts.Net.FreezeShards(c.shardCount)
		return c.publishShards(arts, "refreeze", shardLoc{}, nil)
	}
	arts.Refreeze()
	c.publish(arts, "refreeze")
	return nil
}

// SaveSnapshot writes the mutable net to a file in the legacy gob format
// (see SaveFrozen for the serving snapshot that restores without a
// rebuild). It errors on a snapshot-loaded CoCo.
func (c *CoCo) SaveSnapshot(path string) error {
	arts := c.arts.Load()
	if arts.Net == nil {
		return errors.New("alicoco: save snapshot: snapshot-loaded net has no live store")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return arts.Net.Save(f)
}

// Stats summarizes the net (the Table 2 shape).
type Stats struct {
	Classes, Primitives, EConcepts, Items int
	Relations                             int
	PrimitivesByDomain                    map[string]int
	IsAPrimitive, IsAEConcept             int
	AvgPrimitivesPerItem                  float64
	AvgEConceptsPerItem                   float64
	AvgItemsPerEConcept                   float64
}

// Stats computes statistics of the published serving snapshot, so its
// counts always describe a state that queries actually served (never a
// half-materialized net mid-inference).
func (c *CoCo) Stats() Stats {
	s := c.serving.Load().reader.ComputeStats()
	return Stats{
		Classes:              s.PerKind["class"],
		Primitives:           s.PerKind["primitive"],
		EConcepts:            s.PerKind["econcept"],
		Items:                s.PerKind["item"],
		Relations:            s.Edges,
		PrimitivesByDomain:   s.PrimitivesByDom,
		IsAPrimitive:         s.IsAPrimitive,
		IsAEConcept:          s.IsAEConcept,
		AvgPrimitivesPerItem: s.AvgPrimitivesPerItem,
		AvgEConceptsPerItem:  s.AvgEConceptsPerItem,
		AvgItemsPerEConcept:  s.AvgItemsPerEConcept,
	}
}

// Render formats the stats as a Table-2-style block.
func (s Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Primitive concepts   %d\n", s.Primitives)
	fmt.Fprintf(&b, "# E-commerce concepts  %d\n", s.EConcepts)
	fmt.Fprintf(&b, "# Items                %d\n", s.Items)
	fmt.Fprintf(&b, "# Relations            %d\n", s.Relations)
	fmt.Fprintf(&b, "# IsA (primitive)      %d\n", s.IsAPrimitive)
	fmt.Fprintf(&b, "# IsA (e-commerce)     %d\n", s.IsAEConcept)
	fmt.Fprintf(&b, "avg primitives/item    %.1f\n", s.AvgPrimitivesPerItem)
	fmt.Fprintf(&b, "avg e-concepts/item    %.1f\n", s.AvgEConceptsPerItem)
	fmt.Fprintf(&b, "avg items/e-concept    %.1f\n", s.AvgItemsPerEConcept)
	return b.String()
}

// Item is a sellable unit in the net.
type Item struct {
	ID       int
	Title    string
	Category string
}

// Items lists every item.
func (c *CoCo) Items() []Item {
	return append([]Item(nil), c.serving.Load().items...)
}

// ConceptCard is a shopping-scenario card: the concept name and the titles
// of its top associated items (Figure 2 of the paper).
type ConceptCard struct {
	Name  string
	Items []Item
}

// SearchResult is the response to a query.
type SearchResult struct {
	Cards []ConceptCard
	Items []Item
}

// Search answers a free-text query with concept cards and item hits.
func (c *CoCo) Search(query string, maxItems int) SearchResult {
	return c.serving.Load().searchOne(query, maxItems)
}

// batchTokens bounds the total fan-out worker count across all concurrent
// batch calls: each call takes as many tokens as are free (always at least
// its calling goroutine), so one batch alone uses every core while many
// concurrent batches degrade toward one worker each instead of spawning
// GOMAXPROCS goroutines apiece and oversubscribing the scheduler.
var batchTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// batchFor fans fn over [0, n) with an admission-controlled worker count.
func batchFor(n int, fn func(i int)) {
	workers := 1 // the calling goroutine always works
	defer func() {
		for ; workers > 1; workers-- {
			<-batchTokens
		}
	}()
	for workers < n {
		select {
		case batchTokens <- struct{}{}:
			workers++
			continue
		default:
		}
		break
	}
	par.For(workers, n, fn)
}

// SearchBatch answers a page of queries in one call, all pinned to the
// same serving snapshot (a concurrent reload cannot split a batch across
// net versions) and fanned out across a bounded worker pool into
// index-addressed slots, so results line up with queries.
func (c *CoCo) SearchBatch(queries []string, maxItems int) []SearchResult {
	s := c.serving.Load()
	out := make([]SearchResult, len(queries))
	batchFor(len(queries), func(i int) {
		out[i] = s.searchOne(queries[i], maxItems)
	})
	return out
}

func (s *servingState) searchOne(query string, maxItems int) SearchResult {
	return s.compose(s.search.Search(query, maxItems))
}

func (s *servingState) searchOneCtx(ctx context.Context, query string, maxItems int) (SearchResult, error) {
	resp, err := s.search.SearchCtx(ctx, query, maxItems)
	if err != nil {
		return SearchResult{}, err
	}
	return s.compose(resp), nil
}

func (s *servingState) searchOneBytes(query []byte, maxItems int) SearchResult {
	return s.compose(s.search.SearchBytes(query, maxItems))
}

func (s *servingState) searchOneBytesCtx(ctx context.Context, query []byte, maxItems int) (SearchResult, error) {
	resp, err := s.search.SearchBytesCtx(ctx, query, maxItems)
	if err != nil {
		return SearchResult{}, err
	}
	return s.compose(resp), nil
}

func (s *servingState) compose(resp search.Response) SearchResult {
	var out SearchResult
	for _, card := range resp.Cards {
		out.Cards = append(out.Cards, ConceptCard{Name: card.Name, Items: s.itemsOf(card.Items)})
	}
	out.Items = s.itemsOf(resp.Items)
	return out
}

func (s *servingState) itemsOf(ids []core.NodeID) []Item {
	var out []Item
	for _, id := range ids {
		if it, ok := s.itemByNode[id]; ok {
			out = append(out, it)
		}
	}
	return out
}

// Recommendation is a concept card with its user-facing reason string.
type Recommendation struct {
	Reason string
	Card   ConceptCard
}

// Recommend infers the user's scenario from viewed item IDs and returns a
// concept card of unseen items, with the concept name as the reason.
func (c *CoCo) Recommend(viewedItemIDs []int, k int) (Recommendation, bool) {
	return c.serving.Load().recommendOne(viewedItemIDs, k)
}

// BatchRecommendation is one session's outcome in a RecommendBatch: Found
// reports whether the session produced a recommendation.
type BatchRecommendation struct {
	Found bool
	Recommendation
}

// RecommendBatch recommends for a page of sessions in one call, pinned to
// one serving snapshot and fanned across the same bounded worker pool as
// SearchBatch; results line up with sessions.
func (c *CoCo) RecommendBatch(sessions [][]int, k int) []BatchRecommendation {
	s := c.serving.Load()
	out := make([]BatchRecommendation, len(sessions))
	batchFor(len(sessions), func(i int) {
		rec, ok := s.recommendOne(sessions[i], k)
		out[i] = BatchRecommendation{Found: ok, Recommendation: rec}
	})
	return out
}

func (s *servingState) recommendOne(viewedItemIDs []int, k int) (Recommendation, bool) {
	rec, ok, _ := s.recommendOneCtx(context.Background(), viewedItemIDs, k)
	return rec, ok
}

func (s *servingState) recommendOneCtx(ctx context.Context, viewedItemIDs []int, k int) (Recommendation, bool, error) {
	viewed := make([]core.NodeID, 0, len(viewedItemIDs))
	for _, id := range viewedItemIDs {
		if node, ok := s.itemNode[id]; ok {
			viewed = append(viewed, node)
		}
	}
	rec, ok, err := s.rec.RecommendCtx(ctx, viewed, k)
	if err != nil {
		return Recommendation{}, false, err
	}
	if !ok {
		return Recommendation{}, false, nil
	}
	nd, _ := s.reader.Node(rec.Concept)
	return Recommendation{
		Reason: rec.Reason,
		Card:   ConceptCard{Name: nd.Name, Items: s.itemsOf(rec.Items)},
	}, true, nil
}

// Deadline-aware entry points: the *Ctx variants refuse to start engine
// work once ctx is canceled or past its deadline, and the deadline
// propagates all the way into the engines — ctx is checked between batch
// items, between engine phases, and per work unit just after each shard
// crossing, so admitted-but-doomed work (one slow shard, an expired
// budget) is abandoned at the next shard boundary instead of stalling the
// whole scatter-gather. They never return partial results as success — a
// query or batch cut short by the deadline reports the context error and
// the caller must discard the result. Cache hits never consult ctx (they
// are one in-memory copy), which preserves the degraded cache-hits-only
// mode under overload.

// SearchCtx is Search guarded by a context; see above for the
// propagation contract.
func (c *CoCo) SearchCtx(ctx context.Context, query string, maxItems int) (SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return SearchResult{}, err
	}
	return c.serving.Load().searchOneCtx(ctx, query, maxItems)
}

// RecommendCtx is Recommend guarded by a context; see above for the
// propagation contract.
func (c *CoCo) RecommendCtx(ctx context.Context, viewedItemIDs []int, k int) (Recommendation, bool, error) {
	if err := ctx.Err(); err != nil {
		return Recommendation{}, false, err
	}
	return c.serving.Load().recommendOneCtx(ctx, viewedItemIDs, k)
}

// SearchBatchCtx is SearchBatch guarded by a context: workers stop picking
// up new queries once ctx is done, and the call reports ctx's error (the
// partially filled results must not be served).
func (c *CoCo) SearchBatchCtx(ctx context.Context, queries []string, maxItems int) ([]SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := c.serving.Load()
	out := make([]SearchResult, len(queries))
	var stopped atomic.Bool
	batchFor(len(queries), func(i int) {
		if stopped.Load() {
			return
		}
		res, err := s.searchOneCtx(ctx, queries[i], maxItems)
		if err != nil {
			stopped.Store(true)
			return
		}
		out[i] = res
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SearchBatchBytesCtx is SearchBatchCtx for queries held as raw bytes —
// the serving path for batch bodies decoded without materializing one
// string per query. Equal query bytes produce byte-identical results and
// hit the same cache entries as the string entry points.
func (c *CoCo) SearchBatchBytesCtx(ctx context.Context, queries [][]byte, maxItems int) ([]SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := c.serving.Load()
	out := make([]SearchResult, len(queries))
	var stopped atomic.Bool
	batchFor(len(queries), func(i int) {
		if stopped.Load() {
			return
		}
		res, err := s.searchOneBytesCtx(ctx, queries[i], maxItems)
		if err != nil {
			stopped.Store(true)
			return
		}
		out[i] = res
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RecommendBatchCtx is RecommendBatch guarded by a context, with the same
// stop-on-deadline contract as SearchBatchCtx.
func (c *CoCo) RecommendBatchCtx(ctx context.Context, sessions [][]int, k int) ([]BatchRecommendation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := c.serving.Load()
	out := make([]BatchRecommendation, len(sessions))
	var stopped atomic.Bool
	batchFor(len(sessions), func(i int) {
		if stopped.Load() {
			return
		}
		rec, ok, err := s.recommendOneCtx(ctx, sessions[i], k)
		if err != nil {
			stopped.Store(true)
			return
		}
		out[i] = BatchRecommendation{Found: ok, Recommendation: rec}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Concept describes one e-commerce concept: its interpreting primitive
// concepts (domain:name) and its associated item count.
type Concept struct {
	Name       string
	Primitives []string
	ItemCount  int
}

// Concepts lists every e-commerce concept.
func (c *CoCo) Concepts() []Concept {
	var out []Concept
	net := c.serving.Load().reader
	for _, id := range net.NodesOfKind(core.KindEConcept) {
		nd, _ := net.Node(id)
		cpt := Concept{Name: nd.Name}
		for _, he := range net.PrimitivesForEConcept(id) {
			p, _ := net.Node(he.Peer)
			cpt.Primitives = append(cpt.Primitives, p.Domain+":"+p.Name)
		}
		cpt.ItemCount = len(net.ItemsForEConcept(id, 0))
		out = append(out, cpt)
	}
	return out
}

// LookupConcept returns one concept by name.
func (c *CoCo) LookupConcept(name string) (Concept, bool) {
	net := c.serving.Load().reader
	id := net.FirstByNameKind(strings.ToLower(name), core.KindEConcept)
	if id == core.InvalidNode {
		return Concept{}, false
	}
	nd, _ := net.Node(id)
	cpt := Concept{Name: nd.Name}
	for _, he := range net.PrimitivesForEConcept(id) {
		p, _ := net.Node(he.Peer)
		cpt.Primitives = append(cpt.Primitives, p.Domain+":"+p.Name)
	}
	cpt.ItemCount = len(net.ItemsForEConcept(id, 0))
	return cpt, true
}

// SampleSessions exposes simulated shopping sessions (viewed item IDs and
// the latent scenario), useful for recommendation demos.
func (c *CoCo) SampleSessions(n int) [][]int {
	arts := c.arts.Load()
	if arts.World == nil {
		return nil
	}
	log := arts.World.ClickLog(n)
	out := make([][]int, 0, n)
	for _, s := range log {
		out = append(out, append([]int(nil), s.Viewed...))
	}
	return out
}

// Hypernyms returns the isA ancestors of a primitive concept surface.
func (c *CoCo) Hypernyms(name string) []string {
	net := c.serving.Load().reader
	id := net.FirstByNameKind(strings.ToLower(name), core.KindPrimitive)
	if id == core.InvalidNode {
		return nil
	}
	var out []string
	seen := map[string]bool{strings.ToLower(name): true}
	for _, a := range net.Ancestors(id, 0) {
		nd, _ := net.Node(a)
		if (nd.Kind == core.KindPrimitive || nd.Kind == core.KindClass) && !seen[nd.Name] {
			seen[nd.Name] = true
			out = append(out, nd.Name)
		}
	}
	return out
}

// Glosses exposes the knowledge-base gloss of a primitive concept.
func (c *CoCo) Glosses(name string) []string {
	arts := c.arts.Load()
	if arts.World == nil {
		return nil
	}
	var out []string
	for _, pid := range arts.World.BySurface[strings.ToLower(name)] {
		out = append(out, arts.World.Glosses[pid])
	}
	return out
}

// ImpliedRelation is a commonsense relation mined from item statistics
// (the paper's Section 10 future work): the concept's items concentrate on a
// primitive far above base rate, e.g. a "keep warm for kids" concept implies
// Function:warm even when not stated.
type ImpliedRelation struct {
	Concept   string
	Primitive string // "Domain:name"
	Lift      float64
	Coverage  float64
}

// InferImplicitRelations mines implied concept-primitive relations from the
// frozen snapshot, materializes them into the live net as weighted
// "implied" interpretation edges, and re-freezes so the serving engines see
// the new knowledge.
func (c *CoCo) InferImplicitRelations() ([]ImpliedRelation, error) {
	c.offline.Lock()
	defer c.offline.Unlock()
	arts := c.arts.Load()
	if arts.Net == nil {
		return nil, errors.New("alicoco: infer: snapshot-loaded net has no live store to materialize into")
	}
	m := inference.NewMiner(c.serving.Load().reader, inference.DefaultConfig())
	rels := m.InferAll()
	if _, err := m.Materialize(arts.Net, rels); err != nil {
		return nil, err
	}
	if err := c.refreeze(); err != nil {
		return nil, err
	}
	out := make([]ImpliedRelation, 0, len(rels))
	for _, r := range rels {
		cn, _ := arts.Net.Node(r.Concept)
		pn, _ := arts.Net.Node(r.Primitive)
		out = append(out, ImpliedRelation{
			Concept:   cn.Name,
			Primitive: pn.Domain + ":" + pn.Name,
			Lift:      r.Lift,
			Coverage:  r.Coverage,
		})
	}
	return out, nil
}

// Internal exposes the underlying artifacts for the cmd/ and examples/
// binaries in this module that need lower-level access (experiments,
// serving). External users should treat CoCo as the API.
func (c *CoCo) Internal() *pipeline.Artifacts { return c.arts.Load() }

// WorldDomains lists the 20 taxonomy domains.
func WorldDomains() []string { return world.DomainNames() }
