// Benchmarks: one testing.B per table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index). Each bench executes the same
// code path as `cmd/experiments` at reduced scale, so `go test -bench=.`
// regenerates the shape of every reported result. Full-scale numbers are
// produced by `go run alicoco/cmd/experiments` and recorded in
// EXPERIMENTS.md.
package alicoco

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"alicoco/internal/apps/recommend"
	"alicoco/internal/apps/search"
	"alicoco/internal/conceptgen"
	"alicoco/internal/core"
	"alicoco/internal/hypernym"
	"alicoco/internal/mat"
	"alicoco/internal/matching"
	"alicoco/internal/pipeline"
	"alicoco/internal/tagging"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

// benchArts is the shared tiny testbed, built once.
var (
	benchOnce sync.Once
	benchA    *pipeline.Artifacts
)

func benchArtifacts(b *testing.B) *pipeline.Artifacts {
	b.Helper()
	benchOnce.Do(func() {
		opts := pipeline.TinyOptions()
		opts.W2V.Dim = 32
		opts.W2V.Epochs = 6
		opts.Queries, opts.Reviews, opts.Guides = 800, 800, 800
		a, err := pipeline.Build(opts)
		if err != nil {
			panic(err)
		}
		benchA = a
	})
	return benchA
}

func benchEmbed(a *pipeline.Artifacts) func([]string) mat.Vec {
	return func(tokens []string) mat.Vec {
		vs := a.W2V.EmbedSeq(tokens)
		out := mat.NewVec(a.W2V.Dim)
		for _, v := range vs {
			out.Add(v)
		}
		if len(vs) > 0 {
			out.Scale(1 / float64(len(vs)))
		}
		return out
	}
}

// BenchmarkTable2BuildNet measures the full four-layer construction (E1).
func BenchmarkTable2BuildNet(b *testing.B) {
	opts := pipeline.TinyOptions()
	for i := 0; i < b.N; i++ {
		a, err := pipeline.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		s := a.Net.ComputeStats()
		if s.PerKind["econcept"] == 0 {
			b.Fatal("empty net")
		}
	}
}

// BenchmarkFig9LeftNegativeRatio measures one point of the negative-ratio
// sweep: train the projection model at N=60 and evaluate MAP (E2).
func BenchmarkFig9LeftNegativeRatio(b *testing.B) {
	a := benchArtifacts(b)
	d := hypernym.BuildDataset(a.World, benchEmbed(a), 5)
	pos := d.TrainPos
	if len(pos) > 120 {
		pos = pos[:120]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train := d.TrainSet(pos, 60, 7)
		model := hypernym.NewProjection(a.W2V.Dim, 4, 9)
		model.Fit(train, 3, 0.01, 32, 13)
		ev := d.Evaluate(model, d.TestPos, 0, 1)
		if ev.MAP < 0 {
			b.Fatal("bad MAP")
		}
	}
}

// BenchmarkFig9RightStrategies runs one UCS active-learning loop (E3).
func BenchmarkFig9RightStrategies(b *testing.B) {
	a := benchArtifacts(b)
	d := hypernym.BuildDataset(a.World, benchEmbed(a), 5)
	pos := d.TrainPos
	if len(pos) > 120 {
		pos = pos[:120]
	}
	pool := append(d.TrainSet(pos, 4, 21), d.HardNegatives(pos, 2, 22)...)
	cfg := hypernym.DefaultALConfig(a.W2V.Dim)
	cfg.K = len(pool) / 8
	cfg.MaxIters = 3
	cfg.Epochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hypernym.RunActiveLearning(d, pool, d.TestPos, cfg, hypernym.UCS)
		if res.LabeledUsed == 0 {
			b.Fatal("no labels used")
		}
	}
}

// BenchmarkTable3ActiveLearning compares UCS against Random end-to-end (E4).
func BenchmarkTable3ActiveLearning(b *testing.B) {
	a := benchArtifacts(b)
	d := hypernym.BuildDataset(a.World, benchEmbed(a), 5)
	pos := d.TrainPos
	if len(pos) > 120 {
		pos = pos[:120]
	}
	pool := append(d.TrainSet(pos, 4, 21), d.HardNegatives(pos, 2, 22)...)
	cfg := hypernym.DefaultALConfig(a.W2V.Dim)
	cfg.K = len(pool) / 8
	cfg.MaxIters = 3
	cfg.Epochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, strat := range []hypernym.Strategy{hypernym.Random, hypernym.UCS} {
			hypernym.RunActiveLearning(d, pool, d.TestPos, cfg, strat)
		}
	}
}

// BenchmarkTable4Classification trains and evaluates the full
// knowledge-enhanced concept classifier (E5).
func BenchmarkTable4Classification(b *testing.B) {
	a := benchArtifacts(b)
	w := a.World
	domainIdx := make(map[world.Domain]int)
	for i, d := range world.Domains {
		domainIdx[d] = i + 1
	}
	cands := w.ConceptCandidates(400)
	cfg := conceptgen.DefaultConfig()
	cfg.Epochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz := &conceptgen.Featurizer{
			CharVocab: text.NewVocab(),
			WordVocab: text.NewVocab(),
			POS:       a.POS,
			LM:        a.LM,
			GlossDim:  cfg.GlossDim,
			UseLM:     true,
			DomainOf: func(word string) int {
				ids := w.BySurface[word]
				if len(ids) == 0 {
					return 0
				}
				return domainIdx[w.Prim(ids[0]).Domain]
			},
			GlossVec: func(word string) mat.Vec {
				ids := w.BySurface[word]
				if len(ids) == 0 {
					return mat.NewVec(cfg.GlossDim)
				}
				v := a.Glossary.Vec(ids[0])
				out := mat.NewVec(cfg.GlossDim)
				copy(out, v)
				return out
			},
		}
		var samples []conceptgen.Sample
		for _, cand := range cands {
			samples = append(samples, conceptgen.Sample{Feat: fz.Featurize(cand.Tokens), Label: cand.Good})
		}
		fz.CharVocab.Freeze()
		fz.WordVocab.Freeze()
		cls := conceptgen.NewClassifier(cfg, fz.CharVocab.Len(), fz.WordVocab.Len())
		split := len(samples) * 8 / 10
		cls.Train(samples[:split])
		prec, _ := cls.EvaluatePrecision(samples[split:])
		if prec < 0 {
			b.Fatal("bad precision")
		}
	}
}

// BenchmarkTable5Tagging trains and evaluates the fuzzy-CRF tagger (E6).
func BenchmarkTable5Tagging(b *testing.B) {
	a := benchArtifacts(b)
	train, test := tagging.BuildDataset(a.World, 120, 60, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := tagging.DefaultConfig()
		cfg.UseKnowledge = false
		cfg.Epochs = 2
		tg := tagging.NewTagger(world.DomainNames(), a.POS, nil, cfg)
		tg.Train(train)
		_, _, f1 := tagging.Evaluate(tg, test)
		if f1 < 0 {
			b.Fatal("bad F1")
		}
	}
}

// BenchmarkTable6Matching trains and evaluates the knowledge-aware matcher
// against BM25 (E7).
func BenchmarkTable6Matching(b *testing.B) {
	a := benchArtifacts(b)
	pairs := matching.BuildPairs(a.World, 300, 300)
	train, test := matching.SplitPairs(pairs, 0.8, 9)
	knowledge := matching.KnowledgeFn(a.World, a.Glossary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := matching.DefaultTrainConfig()
		tc.Epochs = 2
		m := matching.NewKADSM(a.W2V.Vec, knowledge, a.W2V.Dim, tc)
		m.Train(train)
		res := matching.Evaluate(m, test)
		bm := matching.BM25Squashed{BM25: matching.NewBM25()}
		bm.Train(train)
		resB := matching.Evaluate(bm, test)
		if res.AUC <= 0 || resB.AUC <= 0 {
			b.Fatal("bad AUC")
		}
	}
}

// BenchmarkCoverage measures one day's coverage sample, both engines (E8).
func BenchmarkCoverage(b *testing.B) {
	a := benchArtifacts(b)
	full := search.NewEngine(a.Net, a.World.Stopwords())
	cpv := search.NewCPVEngine(a.Net, a.World.Stopwords())
	qs := a.World.QuerySet(500)
	queries := make([][]string, len(qs))
	for i, q := range qs {
		queries[i] = q.Tokens
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf := search.MeasureCoverage(full, queries)
		cc := search.MeasureCoverage(cpv, queries)
		if cf.Rate() <= cc.Rate() {
			b.Fatal("coverage inversion")
		}
	}
}

// BenchmarkSearchRelevance measures the isA-expansion relevance experiment (E9).
func BenchmarkSearchRelevance(b *testing.B) {
	a := benchArtifacts(b)
	cases := search.BuildRelevanceCases(a.Net, 300, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain := search.EvalRelevance(a.Net, cases, false)
		expanded := search.EvalRelevance(a.Net, cases, true)
		if expanded.AUC < plain.AUC {
			b.Fatal("expansion should not hurt")
		}
	}
}

// BenchmarkRecommend measures the concept-card recommender replay (E10).
func BenchmarkRecommend(b *testing.B) {
	a := benchArtifacts(b)
	raw := a.World.ClickLog(120)
	var history [][]core.NodeID
	var sessions [][2][]core.NodeID
	for i, s := range raw {
		var viewed, clicked []core.NodeID
		for _, id := range s.Viewed {
			viewed = append(viewed, a.ItemNode[id])
		}
		for _, id := range s.Clicked {
			clicked = append(clicked, a.ItemNode[id])
		}
		if i < 80 {
			history = append(history, append(append([]core.NodeID{}, viewed...), clicked...))
		} else {
			sessions = append(sessions, [2][]core.NodeID{viewed, clicked})
		}
	}
	engine := recommend.NewEngine(a.Net)
	conceptRec := func(viewed []core.NodeID, k int) []core.NodeID {
		rec, ok := engine.Recommend(viewed, k)
		if !ok {
			return nil
		}
		return rec.Items
	}
	cf := recommend.NewItemCF(history)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1 := recommend.Replay(a.Net, conceptRec, sessions, 10)
		r2 := recommend.Replay(a.Net, cf.Recommend, sessions, 10)
		if r1.HitRate < 0 || r2.HitRate < 0 {
			b.Fatal("bad replay")
		}
	}
}

// --- ablation benches for the design choices DESIGN.md §4 calls out ---

// BenchmarkAblationFuzzyVsPlainCRF compares the two CRF losses directly.
func BenchmarkAblationFuzzyVsPlainCRF(b *testing.B) {
	a := benchArtifacts(b)
	train, test := tagging.BuildDataset(a.World, 120, 60, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fuzzy := range []bool{false, true} {
			cfg := tagging.DefaultConfig()
			cfg.UseFuzzy = fuzzy
			cfg.UseKnowledge = false
			cfg.Epochs = 2
			tg := tagging.NewTagger(world.DomainNames(), a.POS, nil, cfg)
			tg.Train(train)
			tagging.Evaluate(tg, test)
		}
	}
}

// BenchmarkAblationKnowledgeInMatching compares KADSM with and without the
// gloss knowledge sequence.
func BenchmarkAblationKnowledgeInMatching(b *testing.B) {
	a := benchArtifacts(b)
	pairs := matching.BuildPairs(a.World, 200, 200)
	train, test := matching.SplitPairs(pairs, 0.8, 9)
	knowledge := matching.KnowledgeFn(a.World, a.Glossary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kn := range []func([]string) []mat.Vec{nil, knowledge} {
			tc := matching.DefaultTrainConfig()
			tc.Epochs = 2
			m := matching.NewKADSM(a.W2V.Vec, kn, a.W2V.Dim, tc)
			m.Train(train)
			matching.Evaluate(m, test)
		}
	}
}

// BenchmarkNetQueries measures raw store throughput: name lookup, concept
// card assembly, ancestor traversal.
func BenchmarkNetQueries(b *testing.B) {
	a := benchArtifacts(b)
	concept := a.Net.FirstByNameKind("outdoor barbecue", core.KindEConcept)
	coat := a.Net.FirstByNameKind("coat", core.KindPrimitive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Net.FindByName("grill")
		a.Net.ItemsForEConcept(concept, 10)
		a.Net.Ancestors(coat, 0)
	}
}

// --- frozen-vs-locked serving benchmarks -------------------------------
//
// Each BenchmarkFrozenVsLocked* pair runs the identical read workload
// against the mutex-guarded *core.Net and the immutable *core.FrozenNet
// snapshot. These are the paper's online serving paths (Section 8), so the
// frozen side is expected to be several times faster with ~0 allocs/op;
// scripts/bench.sh records the trajectory in BENCH_core.json.

// lockedVsFrozen runs fn once per iteration against each store. fn gets
// the sub-benchmark's own *testing.B so failures land on the right
// goroutine.
func lockedVsFrozen(b *testing.B, a *pipeline.Artifacts, fn func(b *testing.B, net core.Reader)) {
	b.Helper()
	frozen := a.Frozen
	b.Run("locked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn(b, a.Net)
		}
	})
	b.Run("frozen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn(b, frozen)
		}
	})
}

// BenchmarkFrozenVsLockedOut measures the innermost read: kind-filtered
// adjacency of a well-connected e-commerce concept node.
func BenchmarkFrozenVsLockedOut(b *testing.B) {
	a := benchArtifacts(b)
	concept := a.Net.FirstByNameKind("outdoor barbecue", core.KindEConcept)
	lockedVsFrozen(b, a, func(_ *testing.B, net core.Reader) {
		net.Out(concept, core.EdgeInterpretedBy)
		net.In(concept, core.EdgeItemEConcept)
	})
}

// BenchmarkFrozenVsLockedTraversal measures the isA BFS used by hypernym
// lookups and relevance expansion.
func BenchmarkFrozenVsLockedTraversal(b *testing.B) {
	a := benchArtifacts(b)
	coat := a.Net.FirstByNameKind("coat", core.KindPrimitive)
	item := a.Net.NodesOfKind(core.KindItem)[0]
	cat := a.Net.FirstByNameKind("category", core.KindClass)
	lockedVsFrozen(b, a, func(_ *testing.B, net core.Reader) {
		net.Ancestors(coat, 0)
		net.IsAncestor(item, cat)
	})
}

// BenchmarkFrozenVsLockedConceptCard measures concept-card assembly (the
// Figure 2 search surface): weight-ranked item postings for a concept.
func BenchmarkFrozenVsLockedConceptCard(b *testing.B) {
	a := benchArtifacts(b)
	concept := a.Net.FirstByNameKind("outdoor barbecue", core.KindEConcept)
	lockedVsFrozen(b, a, func(_ *testing.B, net core.Reader) {
		net.ItemsForEConcept(concept, 10)
	})
}

// BenchmarkFrozenVsLockedRecommend measures one cognitive recommendation
// (Section 8.2): concept voting over a session plus unseen-item selection.
// Engines are built once per store, the way serving builds one engine per
// published snapshot.
func BenchmarkFrozenVsLockedRecommend(b *testing.B) {
	a := benchArtifacts(b)
	raw := a.World.ClickLog(20)
	var viewed []core.NodeID
	for _, id := range raw[0].Viewed {
		viewed = append(viewed, a.ItemNode[id])
	}
	engines := map[string]*recommend.Engine{
		"locked": recommend.NewEngine(a.Net),
		"frozen": recommend.NewEngine(a.Frozen),
	}
	for _, name := range []string{"locked", "frozen"} {
		engine := engines[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := engine.Recommend(viewed, 10); !ok {
					b.Fatal("no recommendation")
				}
			}
		})
	}
}

// BenchmarkFrozenVsLockedNodesOfKind measures the per-layer index: the
// locked net scans all nodes, the snapshot returns a precomputed slice.
func BenchmarkFrozenVsLockedNodesOfKind(b *testing.B) {
	a := benchArtifacts(b)
	lockedVsFrozen(b, a, func(_ *testing.B, net core.Reader) {
		net.NodesOfKind(core.KindEConcept)
	})
}

// --- cold-start benchmarks ---------------------------------------------
//
// The pair contrasts the two ways a server can reach serving state:
// rebuild everything from scratch (world, corpus, embeddings, net, freeze)
// versus re-reading the frozen binary snapshot from a byte stream.
// scripts/bench.sh records both in BENCH_core.json; the frozen side is
// expected to win by orders of magnitude since it is bounded by I/O
// bandwidth, not model training.

// BenchmarkColdStartLive measures a from-scratch cold start at test scale:
// the full pipeline build ending in a published frozen snapshot.
func BenchmarkColdStartLive(b *testing.B) {
	opts := pipeline.TinyOptions()
	for i := 0; i < b.N; i++ {
		a, err := pipeline.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		if a.Frozen.NumNodes() == 0 {
			b.Fatal("empty net")
		}
	}
}

// BenchmarkColdStartFrozen measures cold start from a snapshot: one
// LoadSnapshot pass over the serialized bytes of the same net
// BenchmarkColdStartLive builds.
func BenchmarkColdStartFrozen(b *testing.B) {
	a, err := pipeline.Build(pipeline.TinyOptions())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arts, err := pipeline.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if arts.Frozen.NumNodes() != a.Frozen.NumNodes() {
			b.Fatal("loaded net differs")
		}
	}
}

// BenchmarkFrozenSearchEngine measures an end-to-end query through the
// search engine on each store.
func BenchmarkFrozenSearchEngine(b *testing.B) {
	a := benchArtifacts(b)
	frozen := a.Frozen
	for _, tc := range []struct {
		name string
		net  core.Reader
	}{{"locked", a.Net}, {"frozen", frozen}} {
		engine := search.NewEngine(tc.net, a.World.Stopwords())
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Search("outdoor barbecue", 10)
			}
		})
	}
}

// --- parallel serving benchmarks ---------------------------------------
//
// The zero-allocation query path is built for many goroutines hitting one
// frozen snapshot: scratch state is pooled per engine, responses are
// caller-reused, reads are lock-free. b.RunParallel exercises exactly that
// shape; allocs/op is the headline number (expected 0 for exact-match
// search) and bench.sh records it in BENCH_core.json.

// benchCoCo builds a facade around the shared testbed with the query
// caches deliberately left unallocated: the batch/sequential benchmarks
// below measure engine dispatch, and a warm cache would collapse them all
// into hit measurements (BenchmarkServeCacheHit/Miss in cmd/cocoserve
// cover the cached path).
func benchCoCo(b *testing.B) *CoCo {
	a := benchArtifacts(b)
	c := &CoCo{}
	c.arts.Store(a)
	c.publish(a, "build")
	return c
}

// BenchmarkParallelFrozenSearch measures concurrent exact-match queries
// through SearchInto with per-goroutine reused Responses.
func BenchmarkParallelFrozenSearch(b *testing.B) {
	a := benchArtifacts(b)
	engine := search.NewEngine(a.Frozen, a.World.Stopwords())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var resp search.Response
		for pb.Next() {
			engine.SearchInto(&resp, "outdoor barbecue", 10)
		}
	})
}

// BenchmarkParallelFrozenRecommend measures concurrent sessions through
// RecommendInto with per-goroutine reused Recommendations.
func BenchmarkParallelFrozenRecommend(b *testing.B) {
	a := benchArtifacts(b)
	raw := a.World.ClickLog(20)
	var viewed []core.NodeID
	for _, id := range raw[0].Viewed {
		viewed = append(viewed, a.ItemNode[id])
	}
	engine := recommend.NewEngine(a.Frozen)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var rec recommend.Recommendation
		for pb.Next() {
			engine.RecommendInto(&rec, viewed, 10)
		}
	})
}

// BenchmarkParallelFrozenTraversal measures concurrent append-style BFS
// into per-goroutine reused buffers (the pooled visited arrays are the
// shared resource under contention).
func BenchmarkParallelFrozenTraversal(b *testing.B) {
	a := benchArtifacts(b)
	coat := a.Net.FirstByNameKind("coat", core.KindPrimitive)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var dst []core.NodeID
		for pb.Next() {
			dst = a.Frozen.AppendAncestors(dst[:0], coat, 0)
		}
	})
}

// --- batch serving benchmarks ------------------------------------------
//
// One facade batch call versus the same page of queries issued one at a
// time: the batch pins a single snapshot and fans across internal/par
// workers, so on multi-core hosts it wins wall-clock; on one core it
// documents the overhead floor.

func benchBatchQueries(a *pipeline.Artifacts) []string {
	queries := []string{"outdoor barbecue", "winter coat", "grill", "coat"}
	for _, qs := range a.World.QuerySet(28) {
		queries = append(queries, strings.Join(qs.Tokens, " "))
	}
	return queries
}

// BenchmarkBatchServeSearch compares a 32-query page served sequentially
// against one SearchBatch call.
func BenchmarkBatchServeSearch(b *testing.B) {
	c := benchCoCo(b)
	queries := benchBatchQueries(benchArtifacts(b))
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				c.Search(q, 10)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.SearchBatch(queries, 10)
		}
	})
}

// BenchmarkBatchServeRecommend compares a page of sessions served
// sequentially against one RecommendBatch call.
func BenchmarkBatchServeRecommend(b *testing.B) {
	c := benchCoCo(b)
	sessions := c.SampleSessions(32)
	if len(sessions) == 0 {
		b.Fatal("no sessions")
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range sessions {
				c.Recommend(s, 10)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.RecommendBatch(sessions, 10)
		}
	})
}

// --- sharded serving benchmarks ----------------------------------------
//
// The same hot read workloads against an N-shard partition of the store:
// N=1 serves the sole shard directly (the unsharded fast path, expected
// within noise of the frozen net), N=4 routes every point lookup to its
// owner shard and scatter-gathers traversals — the per-query cost of
// independent reloadability. scripts/bench.sh records both in
// BENCH_core.json.

// benchShardStore partitions the shared testbed into n shards and returns
// the store serving reads: the sole shard itself for n=1 (exactly what the
// facade publishes), the scatter-gather set otherwise.
func benchShardStore(b *testing.B, n int) core.Reader {
	b.Helper()
	a := benchArtifacts(b)
	shards := a.Net.FreezeShards(n)
	if n == 1 {
		return shards[0]
	}
	set, err := core.NewShardSet(shards)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkShardedSearch measures an exact-match query through the search
// engine on a 1-shard and a 4-shard partition with a reused Response —
// the sharded counterpart of BenchmarkSearchIntoReused.
func BenchmarkShardedSearch(b *testing.B) {
	a := benchArtifacts(b)
	for _, n := range []int{1, 4} {
		engine := search.NewEngine(benchShardStore(b, n), a.World.Stopwords())
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var resp search.Response
			for i := 0; i < b.N; i++ {
				engine.SearchInto(&resp, "outdoor barbecue", 10)
			}
		})
	}
}

// BenchmarkShardedRecommend measures one cognitive recommendation against
// a 1-shard and a 4-shard partition with a reused Recommendation.
func BenchmarkShardedRecommend(b *testing.B) {
	a := benchArtifacts(b)
	raw := a.World.ClickLog(20)
	var viewed []core.NodeID
	for _, id := range raw[0].Viewed {
		viewed = append(viewed, a.ItemNode[id])
	}
	for _, n := range []int{1, 4} {
		engine := recommend.NewEngine(benchShardStore(b, n))
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var rec recommend.Recommendation
			for i := 0; i < b.N; i++ {
				if !engine.RecommendInto(&rec, viewed, 10) {
					b.Fatal("no recommendation")
				}
			}
		})
	}
}

// BenchmarkShardedFreeze contrasts republish latency: one whole-net freeze
// versus freezing a 4-shard partition (each shard is an independent range,
// frozen in parallel across internal/par workers — on multi-core hosts the
// partition refreeze wins wall-clock; on one core it documents the
// partitioning overhead).
func BenchmarkShardedFreeze(b *testing.B) {
	a := benchArtifacts(b)
	b.Run("whole", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if a.Net.Freeze().NumNodes() == 0 {
				b.Fatal("empty freeze")
			}
		}
	})
	b.Run("shards4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(a.Net.FreezeShards(4)) != 4 {
				b.Fatal("bad partition")
			}
		}
	})
}

// BenchmarkSearchIntoReused is the single-goroutine zero-allocation
// headline: exact-match search through a reused Response on the frozen
// snapshot (compare against BenchmarkFrozenSearchEngine/frozen, which
// allocates a fresh Response per query).
func BenchmarkSearchIntoReused(b *testing.B) {
	a := benchArtifacts(b)
	engine := search.NewEngine(a.Frozen, a.World.Stopwords())
	var resp search.Response
	engine.SearchInto(&resp, "outdoor barbecue", 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.SearchInto(&resp, "outdoor barbecue", 10)
	}
}
