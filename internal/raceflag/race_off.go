//go:build !race

package raceflag

// Enabled reports whether the binary was built with the race detector.
const Enabled = false
