package snapstore

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"alicoco/internal/faultfs"
)

// WriteFileAtomic writes dir/name with full crash-safety discipline: emit
// into a temp file in the same directory, flush, fsync the file, close
// (checking the error — a buffered NFS/overlay close can be the first
// place a write error surfaces), rename over the target, then fsync the
// parent directory so the rename itself survives a power loss. Every step
// goes through faultfs, so crash-matrix tests can kill the sequence at any
// operation.
func WriteFileAtomic(dir, name string, emit func(w io.Writer) error) error {
	f, err := faultfs.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapstore: write %s: %w", name, err)
	}
	tmp := f.Name()
	defer faultfs.Remove(tmp) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(f, 1<<20)
	if err := emit(bw); err != nil {
		f.Close()
		return fmt.Errorf("snapstore: write %s: %w", name, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("snapstore: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapstore: write %s: sync: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapstore: write %s: close: %w", name, err)
	}
	if err := faultfs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("snapstore: write %s: %w", name, err)
	}
	if err := faultfs.SyncDir(dir); err != nil {
		return fmt.Errorf("snapstore: write %s: sync dir: %w", name, err)
	}
	return nil
}

// FileCheck names one file of a generation and the checksum it must hash
// to. HeaderLen/TrailerLen carve off framing bytes (magic + version,
// embedded CRC trailer) that are not part of the checksummed body; both
// zero means the whole file is hashed.
type FileCheck struct {
	// Name is the file's name relative to the generation directory.
	Name string
	// HeaderLen bytes at the start are excluded from the hash.
	HeaderLen int
	// TrailerLen bytes at the end are excluded from the hash.
	TrailerLen int
	// Want is the expected CRC-32 (IEEE) of the body.
	Want uint32
}

// FileReport is the verification outcome for one file.
type FileReport struct {
	Name string
	// Got is the body checksum actually read; zero when Err is set.
	Got  uint32
	Want uint32
	// Err is non-nil when the file could not be read or framed (missing,
	// truncated below header+trailer, I/O error).
	Err error
}

// OK reports whether the file verified clean.
func (r FileReport) OK() bool { return r.Err == nil && r.Got == r.Want }

// VerifyFiles re-hashes every named file in dir against its expected
// checksum and returns one report per check, in order. It never stops
// early: an operator fixing a corrupt generation wants the full damage
// report, not the first casualty. Reads go through faultfs so corruption
// and I/O faults are injectable.
func VerifyFiles(dir string, checks []FileCheck) []FileReport {
	reports := make([]FileReport, len(checks))
	for i, c := range checks {
		got, err := fileCRC(filepath.Join(dir, c.Name), c.HeaderLen, c.TrailerLen)
		reports[i] = FileReport{Name: c.Name, Got: got, Want: c.Want, Err: err}
		if err != nil {
			reports[i].Got = 0
		}
	}
	return reports
}

// fileCRC hashes a file's body — everything between headerLen bytes of
// leading framing and trailerLen bytes of trailing framing — with
// CRC-32 (IEEE), streaming so shard files never load whole into memory.
func fileCRC(path string, headerLen, trailerLen int) (uint32, error) {
	f, err := faultfs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if headerLen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(headerLen)); err != nil {
			return 0, fmt.Errorf("header: %w", err)
		}
	}
	h := crc32.NewIEEE()
	if trailerLen == 0 {
		if _, err := io.Copy(h, br); err != nil {
			return 0, err
		}
		return h.Sum32(), nil
	}
	// Lag the hash by trailerLen bytes so the trailer never enters it.
	hold := make([]byte, 0, trailerLen)
	buf := make([]byte, 1<<16)
	for {
		n, err := br.Read(buf)
		if n > 0 {
			hold = append(hold, buf[:n]...)
			if over := len(hold) - trailerLen; over > 0 {
				h.Write(hold[:over])
				hold = append(hold[:0], hold[over:]...)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	if len(hold) < trailerLen {
		return 0, fmt.Errorf("file shorter than its %d-byte trailer", trailerLen)
	}
	return h.Sum32(), nil
}

// ScrubReport summarizes one integrity pass over a served generation.
type ScrubReport struct {
	// Gen is the generation that was scrubbed.
	Gen uint64 `json:"gen"`
	// Checked is how many files were re-hashed.
	Checked int `json:"checked"`
	// Mismatches lists files whose body hash disagreed with the manifest
	// (or could not be read at all).
	Mismatches []string `json:"mismatches,omitempty"`
	// Quarantined lists the paths poisoned files were renamed aside to.
	Quarantined []string `json:"quarantined,omitempty"`
	// Repaired lists files re-materialized from a clean source.
	Repaired []string `json:"repaired,omitempty"`
	// Unrepaired lists files that were quarantined but had no clean source
	// to repair from — the generation is degraded and a rollback or
	// re-publish is needed.
	Unrepaired []string `json:"unrepaired,omitempty"`
}

// Clean reports whether the pass found nothing wrong.
func (r ScrubReport) Clean() bool { return len(r.Mismatches) == 0 }
