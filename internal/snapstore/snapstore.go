// Package snapstore is the crash-safe lifecycle layer under sharded
// snapshot directories: instead of one flat directory that every save
// overwrites in place, a store root holds an append-only sequence of
// retained generations plus a journaled catalog naming the committed ones:
//
//	root/
//	  CATALOG            committed generation list (JSON, renamed into place)
//	  gen-000001/        one complete sharded snapshot (manifest + files)
//	  gen-000002/
//	  .gen-tmp-*         an in-flight save (uncommitted; swept on recovery)
//
// A save writes its entire generation into a .gen-tmp-* directory, fsyncs
// it, renames it to its gen-%06d name, fsyncs the root, and then — the
// single commit point — rewrites CATALOG via WriteFileAtomic. A crash
// anywhere in that sequence leaves either the old catalog (the new
// generation's files are garbage a recovery sweep deletes) or the new one
// (the generation is complete and durable); there is no in-between state a
// loader can observe. Open performs the recovery sweep: every .gen-tmp-*
// and every gen-* directory the catalog does not name is deleted.
//
// Retention turns the store into a rollback window: commits prune to the
// newest Retain generations (protected generations — e.g. the one a server
// is serving — are never pruned), so a generation that loads clean but
// misbehaves can be rolled back to the newest earlier generation that
// still verifies.
//
// The package is deliberately manifest-agnostic: it journals directories
// and verifies (file, checksum) pairs, while the snapshot format itself —
// manifests, shard files, serving metadata — stays in internal/pipeline,
// which builds its catalog-aware SaveShards/LoadShards on top of this.
package snapstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"alicoco/internal/faultfs"
)

const (
	// CatalogName is the catalog's file name inside a store root; its
	// rename is every save's commit point.
	CatalogName = "CATALOG"

	// DefaultRetain is how many committed generations a store keeps when
	// the caller does not say otherwise: enough of a rollback window to
	// survive a bad publish or a corrupted newest generation, small enough
	// that disk use stays bounded at a few snapshots.
	DefaultRetain = 4

	catalogVersion = 1
	genDirPrefix   = "gen-"
	tmpGenPrefix   = ".gen-tmp-"
)

// Gen is one committed generation in the catalog.
type Gen struct {
	// ID is the generation's monotonically increasing identity.
	ID uint64 `json:"id"`
	// Dir is the generation's directory name, relative to the store root.
	Dir string `json:"dir"`
	// CreatedAt is when the generation was committed.
	CreatedAt time.Time `json:"created_at"`
	// ManifestChecksum is the CRC-32 (IEEE) of the generation's manifest
	// file bytes as committed — the anchor `snapshot verify` and the
	// scrubber hang the whole chain of trust on (catalog -> manifest ->
	// per-file checksums).
	ManifestChecksum uint32 `json:"manifest_checksum"`
}

// catalogFile is the on-disk CATALOG: the committed generations, ascending
// by ID.
type catalogFile struct {
	Version     int   `json:"version"`
	Generations []Gen `json:"generations"`
}

// Options configures a store.
type Options struct {
	// Retain is how many committed generations commits keep; <= 0 means
	// DefaultRetain. Retention never drops protected generations.
	Retain int
}

// Store is a handle on one snapshot store root. The catalog is re-read
// from disk on every listing, so a handle observes commits made by other
// handles (or other processes) without refresh calls; the mutex only
// serializes this handle's own writes.
type Store struct {
	root   string
	retain int
	mu     sync.Mutex
}

// IsStore reports whether root holds a generation catalog.
func IsStore(root string) bool {
	_, err := os.Stat(filepath.Join(root, CatalogName))
	return err == nil
}

// Open opens (creating if needed) the store at root and runs the recovery
// sweep: uncommitted temp directories and generation directories the
// catalog does not name are deleted, and catalog entries whose directories
// are gone are dropped. After Open returns, every directory the catalog
// names exists and every gen-*/.gen-tmp-* directory on disk is committed.
func Open(root string, opts Options) (*Store, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: open: %w", err)
	}
	s := &Store{root: root, retain: opts.Retain}
	if s.retain <= 0 {
		s.retain = DefaultRetain
	}
	if _, err := s.Sweep(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Retain returns the store's retention count.
func (s *Store) Retain() int { return s.retain }

// readCatalog loads and validates the catalog at root; a missing catalog
// is an empty store, not an error.
func readCatalog(root string) (*catalogFile, error) {
	f, err := faultfs.Open(filepath.Join(root, CatalogName))
	if errors.Is(err, fs.ErrNotExist) {
		return &catalogFile{Version: catalogVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snapstore: read catalog: %w", err)
	}
	defer f.Close()
	var cat catalogFile
	if err := json.NewDecoder(f).Decode(&cat); err != nil {
		return nil, fmt.Errorf("snapstore: read catalog: %w", err)
	}
	if cat.Version != catalogVersion {
		return nil, fmt.Errorf("snapstore: read catalog: unsupported version %d", cat.Version)
	}
	var lastID uint64
	for i := range cat.Generations {
		g := &cat.Generations[i]
		if g.ID == 0 || g.ID <= lastID {
			return nil, fmt.Errorf("snapstore: read catalog: generation ids not ascending at entry %d", i)
		}
		lastID = g.ID
		if g.Dir == "" || g.Dir != filepath.Base(g.Dir) || !strings.HasPrefix(g.Dir, genDirPrefix) {
			return nil, fmt.Errorf("snapstore: read catalog: generation %d has invalid dir %q", g.ID, g.Dir)
		}
	}
	return &cat, nil
}

// writeCatalog commits a catalog atomically and durably.
func writeCatalog(root string, cat *catalogFile) error {
	return WriteFileAtomic(root, CatalogName, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cat)
	})
}

// Generations lists the committed generations, ascending by ID. The slice
// is the caller's.
func (s *Store) Generations() ([]Gen, error) {
	return ListGenerations(s.root)
}

// ListGenerations lists a store's committed generations, ascending by ID,
// without opening the store — a strictly read-only catalog read that never
// sweeps, for inspection tools that must not mutate the store they audit.
func ListGenerations(root string) ([]Gen, error) {
	cat, err := readCatalog(root)
	if err != nil {
		return nil, err
	}
	return cat.Generations, nil
}

// Latest returns the newest committed generation; ok is false for an
// empty store.
func (s *Store) Latest() (Gen, bool, error) {
	gens, err := s.Generations()
	if err != nil || len(gens) == 0 {
		return Gen{}, false, err
	}
	return gens[len(gens)-1], true, nil
}

// Find returns the committed generation with the given ID.
func (s *Store) Find(id uint64) (Gen, error) {
	gens, err := s.Generations()
	if err != nil {
		return Gen{}, err
	}
	for _, g := range gens {
		if g.ID == id {
			return g, nil
		}
	}
	return Gen{}, fmt.Errorf("snapstore: generation %d is not in the catalog", id)
}

// GenDir returns the absolute directory of a generation.
func (s *Store) GenDir(g Gen) string { return filepath.Join(s.root, g.Dir) }

func genDirName(id uint64) string { return fmt.Sprintf("%s%06d", genDirPrefix, id) }

// ResolveDir maps a snapshot directory argument to the directory a loader
// should read: for a store root it is the newest committed generation's
// directory (gen > 0, isStore true); for anything else — a flat sharded
// snapshot directory, or a generation directory itself — it is dir
// unchanged. An existing store with no committed generations is an error:
// the caller pointed at a catalog that has nothing to serve.
func ResolveDir(dir string) (resolved string, gen uint64, isStore bool, err error) {
	if !IsStore(dir) {
		return dir, 0, false, nil
	}
	cat, err := readCatalog(dir)
	if err != nil {
		return "", 0, true, err
	}
	if len(cat.Generations) == 0 {
		return "", 0, true, fmt.Errorf("snapstore: %s: catalog has no committed generations", dir)
	}
	g := cat.Generations[len(cat.Generations)-1]
	return filepath.Join(dir, g.Dir), g.ID, true, nil
}

// Sweep is the recovery pass: it deletes every uncommitted temp directory
// and every gen-* directory the catalog does not name (a save that crashed
// after renaming its directory but before the catalog commit), and drops
// catalog entries whose directories are missing (a prune that crashed
// between the catalog write and the directory removal leaves the opposite
// orphan — an entry-less directory — which the first rule already covers).
// It returns the names it removed.
func (s *Store) Sweep() (removed []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cat, err := readCatalog(s.root)
	if err != nil {
		return nil, err
	}
	committed := make(map[string]bool, len(cat.Generations))
	for _, g := range cat.Generations {
		committed[g.Dir] = true
	}
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("snapstore: sweep: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stray := strings.HasPrefix(name, tmpGenPrefix) ||
			(e.IsDir() && strings.HasPrefix(name, genDirPrefix) && !committed[name])
		if !stray {
			continue
		}
		if err := faultfs.RemoveAll(filepath.Join(s.root, name)); err != nil {
			return removed, fmt.Errorf("snapstore: sweep %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	// Entries whose directories are gone cannot be loaded or rolled back
	// to; dropping them keeps every catalog entry serviceable.
	live := cat.Generations[:0]
	for _, g := range cat.Generations {
		if _, err := os.Stat(filepath.Join(s.root, g.Dir)); err == nil {
			live = append(live, g)
		}
	}
	if len(live) != len(cat.Generations) {
		cat.Generations = live
		if err := writeCatalog(s.root, cat); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Tx is one in-flight generation: a temp directory the caller fills with
// the generation's files, then commits (rename + catalog update) or
// aborts (delete).
type Tx struct {
	store *Store
	dir   string
	done  bool
}

// Begin starts a new generation: a .gen-tmp-* directory under the root
// that Commit will rename into place. Fill it via Dir, then Commit or
// Abort; a crash in between leaves only a temp directory the next Open
// sweeps away.
func (s *Store) Begin() (*Tx, error) {
	dir, err := os.MkdirTemp(s.root, tmpGenPrefix)
	if err != nil {
		return nil, fmt.Errorf("snapstore: begin: %w", err)
	}
	return &Tx{store: s, dir: dir}, nil
}

// Dir is the transaction's directory; the caller writes the generation's
// files (manifest included) into it before Commit.
func (t *Tx) Dir() string { return t.dir }

// Abort deletes an uncommitted transaction's directory. Safe to defer:
// after Commit it does nothing.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	os.RemoveAll(t.dir)
}

// Commit makes the transaction's directory the newest committed
// generation: fsync the directory, rename it to its gen-%06d name, fsync
// the root, then rewrite the catalog — the single commit point — naming it
// (and dropping generations beyond the retention window; their directories
// are deleted after the catalog lands, so a crash mid-prune only leaves
// orphans the next sweep removes). manifestName is the generation's
// manifest file, whose committed bytes are checksummed into the catalog
// entry. protect lists generation IDs retention must keep regardless of
// age (nil is fine).
func (t *Tx) Commit(manifestName string, protect map[uint64]bool) (Gen, error) {
	if t.done {
		return Gen{}, errors.New("snapstore: commit: transaction already finished")
	}
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	cat, err := readCatalog(s.root)
	if err != nil {
		return Gen{}, err
	}
	manSum, err := fileCRC(filepath.Join(t.dir, manifestName), 0, 0)
	if err != nil {
		return Gen{}, fmt.Errorf("snapstore: commit: manifest: %w", err)
	}
	// Make the generation's contents durable before anything can name it.
	if err := faultfs.SyncDir(t.dir); err != nil {
		return Gen{}, fmt.Errorf("snapstore: commit: %w", err)
	}
	id := uint64(1)
	if n := len(cat.Generations); n > 0 {
		id = cat.Generations[n-1].ID + 1
	}
	g := Gen{ID: id, Dir: genDirName(id), CreatedAt: time.Now().UTC(), ManifestChecksum: manSum}
	if err := faultfs.Rename(t.dir, filepath.Join(s.root, g.Dir)); err != nil {
		return Gen{}, fmt.Errorf("snapstore: commit: %w", err)
	}
	if err := faultfs.SyncDir(s.root); err != nil {
		return Gen{}, fmt.Errorf("snapstore: commit: %w", err)
	}
	t.done = true // the directory is renamed away; Abort must not touch it
	keep, drop := retainSplit(append(cat.Generations, g), s.retain, protect)
	cat.Generations = keep
	if err := writeCatalog(s.root, cat); err != nil {
		return Gen{}, err
	}
	for _, d := range drop {
		// Best-effort: a failure (or crash) here leaves an orphan directory
		// the catalog no longer names, which the next sweep deletes.
		_ = faultfs.RemoveAll(filepath.Join(s.root, d.Dir))
	}
	return g, nil
}

// Prune enforces the retention window outside a commit (a serving process
// bounding a store it does not write), keeping the newest retain
// generations plus every protected ID.
func (s *Store) Prune(protect map[uint64]bool) (dropped []Gen, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cat, err := readCatalog(s.root)
	if err != nil {
		return nil, err
	}
	keep, drop := retainSplit(cat.Generations, s.retain, protect)
	if len(drop) == 0 {
		return nil, nil
	}
	cat.Generations = keep
	if err := writeCatalog(s.root, cat); err != nil {
		return nil, err
	}
	for _, d := range drop {
		_ = faultfs.RemoveAll(filepath.Join(s.root, d.Dir))
	}
	return drop, nil
}

// retainSplit splits an ascending generation list into the entries to keep
// — the newest retain ones plus every protected ID — and the rest.
func retainSplit(gens []Gen, retain int, protect map[uint64]bool) (keep, drop []Gen) {
	cut := len(gens) - retain
	for i, g := range gens {
		if i < cut && !protect[g.ID] {
			drop = append(drop, g)
		} else {
			keep = append(keep, g)
		}
	}
	return keep, drop
}

// QuarantinePath picks the name a poisoned file is renamed aside to:
// path.quarantined when free, else a numbered variant — so quarantining
// the same logical file across successive generations never collides with
// an earlier quarantine and never clobbers evidence an operator has not
// inspected yet. gen seeds the suffix so the origin generation is legible
// in the name.
func QuarantinePath(path string, gen uint64) string {
	dst := path + ".quarantined"
	if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
		return dst
	}
	for n := gen; ; n++ {
		dst := fmt.Sprintf("%s.quarantined.%d", path, n)
		if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
			return dst
		}
	}
}
