package snapstore

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// commitGen writes one tiny generation (a manifest file with the given
// content) and commits it, returning the committed Gen.
func commitGen(t *testing.T, s *Store, content string) Gen {
	t.Helper()
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if err := os.WriteFile(filepath.Join(tx.Dir(), "manifest.json"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := tx.Commit("manifest.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCatalogRoundTrip: commits append ascending generations named
// gen-%06d, and Latest/Find/Generations agree on them across reopens.
func TestCatalogRoundTrip(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Latest(); ok {
		t.Fatal("empty store reported a latest generation")
	}
	for i := 1; i <= 3; i++ {
		g := commitGen(t, s, strings.Repeat("x", i))
		if g.ID != uint64(i) || g.Dir != genDirName(uint64(i)) || g.ManifestChecksum == 0 {
			t.Fatalf("commit %d produced %+v", i, g)
		}
	}
	if !IsStore(root) {
		t.Fatal("committed store not recognized as a store")
	}
	// A second handle (a different process) sees the same catalog.
	s2, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gens, err := s2.Generations()
	if err != nil || len(gens) != 3 {
		t.Fatalf("reopened store: %d generations (%v), want 3", len(gens), err)
	}
	for i, g := range gens {
		if g.ID != uint64(i+1) {
			t.Fatalf("generation %d has ID %d; catalog must stay ascending", i, g.ID)
		}
	}
	latest, ok, err := s2.Latest()
	if err != nil || !ok || latest.ID != 3 {
		t.Fatalf("Latest: %+v ok=%v err=%v", latest, ok, err)
	}
	if g, err := s2.Find(2); err != nil || g.ID != 2 {
		t.Fatalf("Find(2): %+v err=%v", g, err)
	}
	if _, err := s2.Find(99); err == nil {
		t.Fatal("Find(99) on a 3-generation store succeeded")
	}
}

// TestRetainPrune: commits beyond the retention window drop the oldest
// generations — entry and directory both — unless protected.
func TestRetainPrune(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		commitGen(t, s, strings.Repeat("y", i))
	}
	gens, err := s.Generations()
	if err != nil || len(gens) != 2 || gens[0].ID != 3 || gens[1].ID != 4 {
		t.Fatalf("after 4 commits with retain 2: %+v err=%v", gens, err)
	}
	if _, err := os.Stat(filepath.Join(root, genDirName(1))); !os.IsNotExist(err) {
		t.Fatal("pruned generation 1's directory survived")
	}
	if _, err := os.Stat(filepath.Join(root, genDirName(4))); err != nil {
		t.Fatal("retained generation 4's directory is missing")
	}

	// A protected generation survives retention on the next commit.
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tx.Dir(), "manifest.json"), []byte("w"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit("manifest.json", map[uint64]bool{3: true}); err != nil {
		t.Fatal(err)
	}
	gens, _ = s.Generations()
	ids := make([]uint64, len(gens))
	for i, g := range gens {
		ids[i] = g.ID
	}
	found := false
	for _, id := range ids {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("protected generation 3 was pruned: %v", ids)
	}
}

// TestSweepRemovesDebris: Open sweeps uncommitted temp dirs and gen-*
// directories the catalog does not name, and drops catalog entries whose
// directories vanished — every form of crash debris.
func TestSweepRemovesDebris(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitGen(t, s, "alpha")
	commitGen(t, s, "beta")

	// Crash debris: a torn transaction, an uncataloged generation dir
	// (crash between rename and catalog write), and a committed entry
	// whose directory was lost.
	if err := os.MkdirAll(filepath.Join(root, ".gen-tmp-torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, ".gen-tmp-torn", "shard.fz"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, genDirName(9)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, genDirName(1))); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(root, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".gen-tmp-") || e.Name() == genDirName(9) {
			t.Fatalf("sweep left %s behind", e.Name())
		}
	}
	gens, err := s2.Generations()
	if err != nil || len(gens) != 1 || gens[0].ID != 2 {
		t.Fatalf("after sweep: %+v err=%v, want only generation 2", gens, err)
	}
}

// TestAbortLeavesNoTrace: an aborted transaction deletes its directory and
// commits nothing; Abort after Commit is a no-op.
func TestAbortLeavesNoTrace(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	dir := tx.Dir()
	tx.Abort()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("aborted transaction's directory survived")
	}
	if gens, _ := s.Generations(); len(gens) != 0 {
		t.Fatal("abort committed something")
	}
	g := commitGen(t, s, "kept")
	if _, err := os.Stat(s.GenDir(g)); err != nil {
		t.Fatal("deferred Abort after Commit deleted the committed generation")
	}
}

// TestResolveDir: a store root resolves to its newest generation, anything
// else resolves to itself, and an empty catalog is an explicit error.
func TestResolveDir(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A store whose catalog is empty has nothing to serve.
	if _, err := os.Stat(filepath.Join(root, CatalogName)); err == nil {
		if _, _, _, err := ResolveDir(root); err == nil {
			t.Fatal("empty catalog resolved")
		}
	}

	commitGen(t, s, "one")
	g2 := commitGen(t, s, "two")
	resolved, gen, isStore, err := ResolveDir(root)
	if err != nil || !isStore || gen != g2.ID || resolved != s.GenDir(g2) {
		t.Fatalf("ResolveDir(store): %q gen=%d isStore=%v err=%v", resolved, gen, isStore, err)
	}
	// Idempotent: a generation directory resolves to itself.
	again, gen2, isStore2, err := ResolveDir(resolved)
	if err != nil || isStore2 || gen2 != 0 || again != resolved {
		t.Fatalf("ResolveDir(gen dir): %q gen=%d isStore=%v err=%v", again, gen2, isStore2, err)
	}
	// A flat directory resolves to itself.
	flat := t.TempDir()
	got, gen3, isStore3, err := ResolveDir(flat)
	if err != nil || isStore3 || gen3 != 0 || got != flat {
		t.Fatalf("ResolveDir(flat): %q gen=%d isStore=%v err=%v", got, gen3, isStore3, err)
	}
}

// TestQuarantinePath: the first quarantine keeps the bare .quarantined
// name (operator muscle memory and older tooling), and collisions get a
// numbered suffix instead of clobbering the existing evidence.
func TestQuarantinePath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0001.fz")
	if got, want := QuarantinePath(path, 7), path+".quarantined"; got != want {
		t.Fatalf("first quarantine: %q, want %q", got, want)
	}
	if err := os.WriteFile(path+".quarantined", []byte("old evidence"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := QuarantinePath(path, 7)
	if got == path+".quarantined" {
		t.Fatal("second quarantine would clobber the first")
	}
	if !strings.HasPrefix(got, path+".quarantined.") {
		t.Fatalf("collision name %q lacks the numbered suffix", got)
	}
	if err := os.WriteFile(got, []byte("newer evidence"), 0o644); err != nil {
		t.Fatal(err)
	}
	third := QuarantinePath(path, 7)
	if third == got || third == path+".quarantined" {
		t.Fatalf("third quarantine reused %q", third)
	}
}

// TestWriteFileAtomic: content lands complete under the final name with no
// temp debris; an emit error leaves no file at all.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	err := WriteFileAtomic(dir, "out.bin", func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "out.bin"))
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}

	sentinel := os.ErrInvalid
	err = WriteFileAtomic(dir, "bad.bin", func(io.Writer) error { return sentinel })
	if err == nil {
		t.Fatal("emit error swallowed")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.bin" {
			t.Fatalf("failed write left %s behind", e.Name())
		}
	}
}

// TestVerifyFiles: reports pair Got/Want per file, flag mismatches and
// missing files, and never stop at the first failure.
func TestVerifyFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "good"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := VerifyFiles(dir, []FileCheck{{Name: "good"}})[0]
	if good.Err != nil || good.Got == 0 {
		t.Fatalf("hashing an intact file: %+v", good)
	}
	want := good.Got // CRC of "hello" as computed by the verifier itself

	if err := os.WriteFile(filepath.Join(dir, "bad"), []byte("hellx"), 0o644); err != nil {
		t.Fatal(err)
	}
	reports := VerifyFiles(dir, []FileCheck{
		{Name: "good", Want: want},
		{Name: "bad", Want: want},
		{Name: "missing", Want: want},
	})
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	if !reports[0].OK() {
		t.Fatalf("good file failed: %+v", reports[0])
	}
	if reports[1].OK() || reports[1].Err != nil || reports[1].Got == want {
		t.Fatalf("bad file: %+v", reports[1])
	}
	if reports[2].OK() || reports[2].Err == nil {
		t.Fatalf("missing file: %+v", reports[2])
	}
}

// TestCatalogRejectsGarbage: a corrupted or descending catalog refuses to
// open instead of serving lies.
func TestCatalogRejectsGarbage(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitGen(t, s, "v")
	if err := os.WriteFile(filepath.Join(root, CatalogName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generations(); err == nil {
		t.Fatal("garbage catalog accepted")
	}
	if err := os.WriteFile(filepath.Join(root, CatalogName),
		[]byte(`{"version":1,"generations":[{"id":2,"dir":"gen-000002"},{"id":1,"dir":"gen-000001"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generations(); err == nil {
		t.Fatal("descending catalog accepted")
	}
}
