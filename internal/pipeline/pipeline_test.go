package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/world"
)

func buildTiny(t *testing.T) *Artifacts {
	t.Helper()
	a, err := Build(TinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildProducesFourLayers(t *testing.T) {
	a := buildTiny(t)
	s := a.Net.ComputeStats()
	if s.PerKind["class"] == 0 || s.PerKind["primitive"] == 0 || s.PerKind["econcept"] == 0 || s.PerKind["item"] == 0 {
		t.Fatalf("missing layer: %+v", s.PerKind)
	}
	if s.PerKind["primitive"] != len(a.World.Primitives) {
		t.Fatalf("primitive count: net %d vs world %d", s.PerKind["primitive"], len(a.World.Primitives))
	}
	if s.PerKind["econcept"] != len(a.World.Frames) {
		t.Fatalf("econcept count: net %d vs world %d", s.PerKind["econcept"], len(a.World.Frames))
	}
	if s.PerKind["item"] != len(a.World.Items) {
		t.Fatalf("item count: net %d vs world %d", s.PerKind["item"], len(a.World.Items))
	}
}

func TestAllTwentyDomainClasses(t *testing.T) {
	a := buildTiny(t)
	for _, d := range world.Domains {
		if _, ok := a.DomainCls[d]; !ok {
			t.Fatalf("missing domain class %s", d)
		}
	}
	root := a.Net.FirstByNameKind("root", core.KindClass)
	kids := a.Net.In(root, core.EdgeIsA)
	if len(kids) != 20 {
		t.Fatalf("root should have 20 domain children, got %d", len(kids))
	}
}

func TestCategoryPathInNet(t *testing.T) {
	a := buildTiny(t)
	// Figure 3 path: category -> clothing -> outerwear -> coat (class),
	// with the "coat" primitive instanceOf the leaf class.
	coatPrim := a.Net.FirstByNameKind("coat", core.KindPrimitive)
	if coatPrim == core.InvalidNode {
		t.Fatal("coat primitive missing")
	}
	catCls := a.DomainCls[world.Category]
	if !a.Net.IsAncestor(coatPrim, catCls) {
		t.Fatal("coat should reach the Category domain class via isA/instanceOf")
	}
}

func TestEConceptInterpretation(t *testing.T) {
	a := buildTiny(t)
	ob := a.Net.FirstByNameKind("outdoor barbecue", core.KindEConcept)
	if ob == core.InvalidNode {
		t.Fatal("outdoor barbecue concept missing")
	}
	prims := a.Net.PrimitivesForEConcept(ob)
	names := map[string]bool{}
	for _, he := range prims {
		nd, _ := a.Net.Node(he.Peer)
		names[nd.Domain+":"+nd.Name] = true
	}
	if !names["Location:outdoor"] || !names["Event:barbecue"] {
		t.Fatalf("interpretation wrong: %v", names)
	}
}

func TestItemsAssociatedWithConcepts(t *testing.T) {
	a := buildTiny(t)
	ob := a.Net.FirstByNameKind("outdoor barbecue", core.KindEConcept)
	items := a.Net.ItemsForEConcept(ob, 0)
	if len(items) == 0 {
		t.Fatal("no items for outdoor barbecue")
	}
	// Every associated item's title should end with a required category.
	f := a.World.Frames[0]
	reqNames := map[string]bool{}
	for _, leafID := range f.Required {
		reqNames[a.World.Prim(leafID).Name()] = true
	}
	for _, he := range items[:min(5, len(items))] {
		nd, _ := a.Net.Node(he.Peer)
		words := strings.Fields(nd.Name)
		if !reqNames[words[len(words)-1]] {
			t.Fatalf("item %q not in required categories %v", nd.Name, reqNames)
		}
	}
}

func TestEConceptIsAHierarchy(t *testing.T) {
	a := buildTiny(t)
	s := a.Net.ComputeStats()
	if s.IsAEConcept == 0 {
		t.Fatal("no isA edges in the e-commerce concept layer")
	}
}

func TestSchemaEdgesPresent(t *testing.T) {
	a := buildTiny(t)
	s := a.Net.ComputeStats()
	if s.EdgesByKind["schema"] == 0 {
		t.Fatal("no schema edges")
	}
	// suitable_when must connect a category class to the Time domain.
	mooncake := a.Net.FirstByNameKind("mooncake", core.KindClass)
	found := false
	for _, he := range a.Net.Out(mooncake, core.EdgeSchema) {
		if he.Rel == "suitable_when" && he.Peer == a.DomainCls[world.Time] {
			found = true
		}
	}
	if !found {
		t.Fatal("mooncake should be suitable_when Time")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := buildTiny(t)
	var buf bytes.Buffer
	if err := a.Net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != a.Net.NumNodes() || loaded.NumEdges() != a.Net.NumEdges() {
		t.Fatal("snapshot round trip lost data")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a1 := buildTiny(t)
	a2 := buildTiny(t)
	if a1.Net.NumNodes() != a2.Net.NumNodes() || a1.Net.NumEdges() != a2.Net.NumEdges() {
		t.Fatal("build not deterministic")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
