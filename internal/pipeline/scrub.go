package pipeline

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"

	"alicoco/internal/core"
	"alicoco/internal/faultfs"
	"alicoco/internal/snapstore"
)

// Integrity scrubbing: re-hash a generation's files against its own
// on-disk manifest (anchored, when the generation is cataloged, by the
// catalog entry's manifest checksum — catalog -> manifest -> file is the
// whole chain of trust), quarantine anything that disagrees, and repair it
// from the newest clean source available. Repair is per-file: a single
// bit-flipped shard is re-materialized alone, it never forces republishing
// the generation or invalidating warm caches — serving reads the in-memory
// shards and is not interrupted.

// File framing the scrubber must skip when re-hashing bodies: the frozen
// shard format (core/persist_frozen.go) and the sharded meta file both
// carry magic+version headers and a CRC-32 trailer that are not part of
// the checksummed body.
const (
	frozenHeaderLen  = 6 // "ACFZ" magic + uint16 version
	frozenTrailerLen = 4 // body CRC-32
	metaHeaderLen    = 5 // "ACSM" magic + version byte
	metaTrailerLen   = 4 // body CRC-32
)

// FileChecks returns the verification checks covering every file the
// manifest names — each shard body plus the meta body — against the
// checksums the manifest committed.
func (m *ShardManifest) FileChecks() []snapstore.FileCheck {
	checks := make([]snapstore.FileCheck, 0, len(m.Shards)+1)
	for i := range m.Shards {
		e := &m.Shards[i]
		checks = append(checks, snapstore.FileCheck{
			Name: e.File, HeaderLen: frozenHeaderLen, TrailerLen: frozenTrailerLen, Want: e.Checksum,
		})
	}
	checks = append(checks, snapstore.FileCheck{
		Name: m.MetaFile, HeaderLen: metaHeaderLen, TrailerLen: metaTrailerLen, Want: m.MetaChecksum,
	})
	return checks
}

// ScrubOptions configures one scrub pass.
type ScrubOptions struct {
	// Store, when non-nil, is the generation catalog repair draws on:
	// other committed generations holding a file with the matching
	// checksum are the first repair source.
	Store *snapstore.Store

	// InMem, when non-nil, are the currently served frozen shards —
	// the fallback repair source: a shard whose in-memory checksum matches
	// the manifest entry is re-serialized to disk.
	InMem []*core.FrozenNet

	// Gen is the generation being scrubbed; it stamps the report and
	// seeds quarantine suffixes. Zero for a flat (uncataloged) directory.
	Gen uint64

	// ManifestChecksum, when non-zero, is the catalog entry's checksum the
	// on-disk manifest itself must hash to before its per-file checksums
	// are trusted.
	ManifestChecksum uint32
}

// ScrubShardDir re-hashes every file of the sharded snapshot in dir
// against its manifest, quarantines mismatches (rename aside, never
// delete — the poisoned bytes are evidence), and repairs each quarantined
// file from the newest source whose checksum matches: another catalog
// generation first, then the served in-memory shard. The error return is
// for scrub-infrastructure failures (unreadable manifest, failed
// quarantine rename); integrity findings are the report's.
func ScrubShardDir(dir string, opts ScrubOptions) (*snapstore.ScrubReport, error) {
	report := &snapstore.ScrubReport{Gen: opts.Gen}

	// The manifest is the root of trust for everything below it: if its
	// bytes do not match the catalog, its per-file checksums prove nothing.
	// There is no repair source for it (each generation's manifest is
	// unique), so a mismatch degrades the generation and the caller must
	// roll back or republish.
	if opts.ManifestChecksum != 0 {
		rep := snapstore.VerifyFiles(dir, []snapstore.FileCheck{{Name: ShardManifestName, Want: opts.ManifestChecksum}})
		report.Checked++
		if !rep[0].OK() {
			report.Mismatches = append(report.Mismatches, ShardManifestName)
			report.Unrepaired = append(report.Unrepaired, ShardManifestName)
			return report, nil
		}
	}

	man, err := ReadManifest(dir)
	if err != nil {
		return report, fmt.Errorf("pipeline: scrub: %w", err)
	}
	checks := man.FileChecks()
	reports := snapstore.VerifyFiles(dir, checks)
	report.Checked += len(checks)
	for i, rep := range reports {
		if rep.OK() {
			continue
		}
		report.Mismatches = append(report.Mismatches, rep.Name)
		path := filepath.Join(dir, rep.Name)
		if rep.Err == nil || !errors.Is(rep.Err, fs.ErrNotExist) {
			q := snapstore.QuarantinePath(path, opts.Gen)
			if err := faultfs.Rename(path, q); err != nil {
				return report, fmt.Errorf("pipeline: scrub: quarantine %s: %w", rep.Name, err)
			}
			report.Quarantined = append(report.Quarantined, q)
		}
		if repairFile(dir, checks[i], opts) {
			report.Repaired = append(report.Repaired, rep.Name)
		} else {
			report.Unrepaired = append(report.Unrepaired, rep.Name)
		}
	}
	return report, nil
}

// repairFile re-materializes one missing/quarantined file and reports
// success only after the fresh copy re-verifies against its check.
func repairFile(dir string, check snapstore.FileCheck, opts ScrubOptions) bool {
	if opts.Store != nil && repairFromCatalog(dir, check, opts.Store) {
		return true
	}
	return repairFromMemory(dir, check, opts.InMem)
}

// repairFromCatalog copies the file from the newest other committed
// generation holding content with the matching checksum.
func repairFromCatalog(dir string, check snapstore.FileCheck, store *snapstore.Store) bool {
	gens, err := store.Generations()
	if err != nil {
		return false
	}
	for i := len(gens) - 1; i >= 0; i-- {
		srcDir := store.GenDir(gens[i])
		if srcDir == dir {
			continue
		}
		srcMan, err := ReadManifest(srcDir)
		if err != nil {
			continue
		}
		srcName := ""
		if check.Name == srcMan.MetaFile && srcMan.MetaChecksum == check.Want {
			srcName = srcMan.MetaFile
		}
		for j := range srcMan.Shards {
			if srcMan.Shards[j].Checksum == check.Want {
				srcName = srcMan.Shards[j].File
				break
			}
		}
		if srcName == "" {
			continue
		}
		if copyVerified(srcDir, srcName, dir, check) {
			return true
		}
	}
	return false
}

// copyVerified atomically copies src into dir/check.Name and re-hashes the
// result; a copy that does not verify (the source was rotten too) is a
// failure, not a repair.
func copyVerified(srcDir, srcName, dir string, check snapstore.FileCheck) bool {
	err := writeFileAtomic(dir, check.Name, func(w io.Writer) error {
		src, err := faultfs.Open(filepath.Join(srcDir, srcName))
		if err != nil {
			return err
		}
		defer src.Close()
		_, err = io.Copy(w, src)
		return err
	})
	if err != nil {
		return false
	}
	return snapstore.VerifyFiles(dir, []snapstore.FileCheck{check})[0].OK()
}

// repairFromMemory re-serializes the served in-memory shard whose frozen
// checksum matches the manifest entry — the disk copy rotted but the
// memory copy (which loaded and verified once) is still good.
func repairFromMemory(dir string, check snapstore.FileCheck, shards []*core.FrozenNet) bool {
	for _, sh := range shards {
		if sh == nil || sh.Checksum() != check.Want {
			continue
		}
		var sum uint32
		err := writeFileAtomic(dir, check.Name, func(w io.Writer) error {
			var err error
			sum, err = sh.SaveSum(w)
			return err
		})
		if err == nil && sum == check.Want {
			return true
		}
	}
	return false
}
