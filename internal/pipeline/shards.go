package pipeline

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"slices"

	"alicoco/internal/core"
	"alicoco/internal/faultfs"
	"alicoco/internal/par"
	"alicoco/internal/snapstore"
	"alicoco/internal/world"
)

// Sharded snapshot persistence: one directory holds N independently
// written, independently reloadable shard files plus the shared serving
// metadata, tied together by a manifest:
//
//	manifest.json   shard count, partition spec, per-file checksums (commit point)
//	meta.bin        gob snapshotExtras ("ACSM" magic + version + CRC-32 trailer)
//	shard-0000.fz … frozen-format v2 shard files (see core/persist_frozen.go)
//
// Every file is written to a temp name and renamed into place, and the
// manifest is renamed last — a crashed save never leaves a directory that
// parses as complete. Reloading one shard means re-reading the manifest,
// loading only the files whose checksums changed, and reassembling the
// ShardSet around the untouched in-memory shards.

const (
	// ShardManifestName is the manifest's file name inside a shard
	// directory; its rename is the save's commit point.
	ShardManifestName = "manifest.json"
	// shardMetaName holds the gob serving metadata shared by all shards.
	shardMetaName = "meta.bin"

	shardManifestVersion = 1
	shardPartitionRange  = "range"
)

var shardMetaMagic = [4]byte{'A', 'C', 'S', 'M'}

const shardMetaVersion = 1

// ShardEntry describes one shard file in the manifest.
type ShardEntry struct {
	// File is the shard's file name relative to the manifest's directory.
	File string `json:"file"`
	// Checksum is the frozen-format body CRC-32 the file must load with.
	Checksum uint32 `json:"checksum"`
	// Base and Nodes are the global-ID range [Base, Base+Nodes) the shard
	// owns; Edges is its out-half-edge count.
	Base  int `json:"base"`
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

// ShardManifest is the on-disk description of one sharded snapshot: the
// partition spec plus per-file checksums, so a loader can verify it is
// assembling exactly the files one save produced — and a reloader can tell
// which shards actually changed.
type ShardManifest struct {
	Version      int          `json:"version"`
	Partition    string       `json:"partition"`
	Stride       int          `json:"stride"`
	TotalNodes   int          `json:"total_nodes"`
	TotalEdges   int          `json:"total_edges"`
	MetaFile     string       `json:"meta_file"`
	MetaChecksum uint32       `json:"meta_checksum"`
	Shards       []ShardEntry `json:"shards"`
}

// NumShards returns the partition's shard count.
func (m *ShardManifest) NumShards() int { return len(m.Shards) }

// ShardLoadError attributes a sharded-load failure to one file, so callers
// (the serving layer's per-shard breaker/quarantine) can act on the shard
// that failed instead of the directory as a whole.
type ShardLoadError struct {
	Index int
	File  string
	Err   error
}

func (e *ShardLoadError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.Index, e.File, e.Err)
}

func (e *ShardLoadError) Unwrap() error { return e.Err }

// shardFileName is the canonical name of shard i.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.fz", i) }

// shardMetaWire is the deterministic gob wire form of snapshotExtras used
// by the sharded meta file. The single-file snapshot encodes the extras'
// maps directly, but Go map iteration order would make gob emit different
// bytes for identical content — and the sharded format's MetaChecksum must
// be a pure content hash: ReloadShards treats a changed MetaChecksum as a
// shape change and falls back to a full reload, so a nondeterministic
// encoding would defeat per-shard diffing on every re-save.
type shardMetaWire struct {
	PrimNode  []nodePair
	FrameNode []nodePair
	ItemNode  []nodePair
	DomainCls []domainPair
	Serving   ServingMeta
}

type nodePair struct {
	Key  int
	Node core.NodeID
}

type domainPair struct {
	Domain world.Domain
	Node   core.NodeID
}

func sortedPairs(m map[int]core.NodeID) []nodePair {
	ps := make([]nodePair, 0, len(m))
	for k, v := range m {
		ps = append(ps, nodePair{Key: k, Node: v})
	}
	slices.SortFunc(ps, func(a, b nodePair) int { return cmp.Compare(a.Key, b.Key) })
	return ps
}

func pairsMap(ps []nodePair) map[int]core.NodeID {
	m := make(map[int]core.NodeID, len(ps))
	for _, p := range ps {
		m[p.Key] = p.Node
	}
	return m
}

// wire converts the extras to their canonical (sorted) encodable form.
func (e *snapshotExtras) wire() shardMetaWire {
	w := shardMetaWire{
		PrimNode:  sortedPairs(e.PrimNode),
		FrameNode: sortedPairs(e.FrameNode),
		ItemNode:  sortedPairs(e.ItemNode),
		Serving:   e.Serving,
	}
	for d, id := range e.DomainCls {
		w.DomainCls = append(w.DomainCls, domainPair{Domain: d, Node: id})
	}
	slices.SortFunc(w.DomainCls, func(a, b domainPair) int { return cmp.Compare(a.Domain, b.Domain) })
	return w
}

// extras converts the wire form back to the map-based in-memory form.
func (w *shardMetaWire) extras() snapshotExtras {
	e := snapshotExtras{
		PrimNode:  pairsMap(w.PrimNode),
		FrameNode: pairsMap(w.FrameNode),
		ItemNode:  pairsMap(w.ItemNode),
		DomainCls: make(map[world.Domain]core.NodeID, len(w.DomainCls)),
		Serving:   w.Serving,
	}
	for _, p := range w.DomainCls {
		e.DomainCls[p.Domain] = p.Node
	}
	return e
}

// writeFileAtomic writes bytes produced by emit to a temp file in dir and
// renames it to name, with snapstore's full durability discipline (fsync
// file, checked close, rename, fsync parent dir) — a crash mid-write never
// leaves a half-written file under the real name, and a power loss right
// after the rename cannot lose the contents either.
func writeFileAtomic(dir, name string, emit func(w io.Writer) error) error {
	return snapstore.WriteFileAtomic(dir, name, emit)
}

// SaveShards partitions the live net into count shards and commits them as
// a new generation in the snapshot store at dir (creating the store, and
// its catalog, if dir is new or was a flat snapshot directory). The shard
// files are frozen and written in parallel into a temp generation
// directory; the catalog update is the single commit point, so a crashed
// save leaves only debris the next open sweeps away. Retention defaults to
// snapstore.DefaultRetain; use SaveShardsRetain to choose. Requires a live
// Net — a serving-only Artifacts has nothing to partition.
func (a *Artifacts) SaveShards(dir string, count int) (*ShardManifest, error) {
	man, _, err := a.SaveShardsRetain(dir, count, 0)
	return man, err
}

// SaveShardsRetain is SaveShards with an explicit retention count
// (<= 0 means snapstore.DefaultRetain); it also returns the committed
// generation.
func (a *Artifacts) SaveShardsRetain(dir string, count, retain int) (*ShardManifest, snapstore.Gen, error) {
	if a.Net == nil {
		return nil, snapstore.Gen{}, errors.New("pipeline: save shards: no live net (serving-only artifacts)")
	}
	if a.Serving == nil {
		return nil, snapstore.Gen{}, errors.New("pipeline: save shards: no serving metadata")
	}
	if count < 1 {
		count = 1
	}
	store, err := snapstore.Open(dir, snapstore.Options{Retain: retain})
	if err != nil {
		return nil, snapstore.Gen{}, fmt.Errorf("pipeline: save shards: %w", err)
	}
	tx, err := store.Begin()
	if err != nil {
		return nil, snapstore.Gen{}, fmt.Errorf("pipeline: save shards: %w", err)
	}
	defer tx.Abort()
	shards := a.Net.FreezeShards(count)
	man, err := writeShardDir(tx.Dir(), shards, a.servingExtras())
	if err != nil {
		return nil, snapstore.Gen{}, err
	}
	gen, err := tx.Commit(ShardManifestName, nil)
	if err != nil {
		return nil, snapstore.Gen{}, fmt.Errorf("pipeline: save shards: %w", err)
	}
	return man, gen, nil
}

// writeShardDir persists already-frozen shards plus the serving extras as
// one sharded snapshot directory.
func writeShardDir(dir string, shards []*core.FrozenNet, extras snapshotExtras) (*ShardManifest, error) {
	man := &ShardManifest{
		Version:    shardManifestVersion,
		Partition:  shardPartitionRange,
		Stride:     core.ShardStride(shards[0].TotalNodes(), len(shards)),
		TotalNodes: shards[0].TotalNodes(),
		MetaFile:   shardMetaName,
		Shards:     make([]ShardEntry, len(shards)),
	}
	errs := make([]error, len(shards))
	par.For(0, len(shards), func(i int) {
		sh := shards[i]
		name := shardFileName(i)
		var sum uint32
		err := writeFileAtomic(dir, name, func(w io.Writer) error {
			var err error
			sum, err = sh.SaveSum(w)
			return err
		})
		if err != nil {
			errs[i] = &ShardLoadError{Index: i, File: name, Err: err}
			return
		}
		man.Shards[i] = ShardEntry{
			File:     name,
			Checksum: sum,
			Base:     int(sh.Base()),
			Nodes:    sh.NumNodes(),
			Edges:    sh.NumEdges(),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: save shards: %w", err)
		}
	}
	for i := range man.Shards {
		man.TotalEdges += man.Shards[i].Edges
	}

	var metaBody bytes.Buffer
	metaWire := extras.wire()
	if err := gob.NewEncoder(&metaBody).Encode(&metaWire); err != nil {
		return nil, fmt.Errorf("pipeline: save shards: meta: %w", err)
	}
	metaSum := crc32.ChecksumIEEE(metaBody.Bytes())
	man.MetaChecksum = metaSum
	err := writeFileAtomic(dir, shardMetaName, func(w io.Writer) error {
		if _, err := w.Write(shardMetaMagic[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{shardMetaVersion}); err != nil {
			return err
		}
		if _, err := w.Write(metaBody.Bytes()); err != nil {
			return err
		}
		var crc [4]byte
		crc[0], crc[1], crc[2], crc[3] = byte(metaSum), byte(metaSum>>8), byte(metaSum>>16), byte(metaSum>>24)
		_, err := w.Write(crc[:])
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: save shards: meta: %w", err)
	}

	err = writeFileAtomic(dir, ShardManifestName, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: save shards: manifest: %w", err)
	}
	return man, nil
}

// ReadManifest reads and structurally validates a shard directory's
// manifest. It does not open the shard files.
func ReadManifest(dir string) (*ShardManifest, error) {
	f, err := faultfs.Open(filepath.Join(dir, ShardManifestName))
	if err != nil {
		return nil, fmt.Errorf("pipeline: read manifest: %w", err)
	}
	defer f.Close()
	var man ShardManifest
	if err := json.NewDecoder(f).Decode(&man); err != nil {
		return nil, fmt.Errorf("pipeline: read manifest: %w", err)
	}
	if man.Version != shardManifestVersion {
		return nil, fmt.Errorf("pipeline: read manifest: unsupported version %d", man.Version)
	}
	if man.Partition != shardPartitionRange {
		return nil, fmt.Errorf("pipeline: read manifest: unsupported partition %q", man.Partition)
	}
	if len(man.Shards) == 0 {
		return nil, errors.New("pipeline: read manifest: no shards")
	}
	if man.TotalNodes < 0 || man.Stride != core.ShardStride(man.TotalNodes, len(man.Shards)) {
		return nil, fmt.Errorf("pipeline: read manifest: stride %d does not fit %d nodes over %d shards",
			man.Stride, man.TotalNodes, len(man.Shards))
	}
	edges := 0
	for i := range man.Shards {
		e := &man.Shards[i]
		wantBase := min(i*man.Stride, man.TotalNodes)
		wantNodes := min(wantBase+man.Stride, man.TotalNodes) - wantBase
		if e.Base != wantBase || e.Nodes != wantNodes {
			return nil, fmt.Errorf("pipeline: read manifest: shard %d covers [%d,%d), want [%d,%d)",
				i, e.Base, e.Base+e.Nodes, wantBase, wantBase+wantNodes)
		}
		if e.File == "" || e.File != filepath.Base(e.File) {
			return nil, fmt.Errorf("pipeline: read manifest: shard %d has invalid file name %q", i, e.File)
		}
		if e.Edges < 0 {
			return nil, fmt.Errorf("pipeline: read manifest: shard %d has negative edge count", i)
		}
		edges += e.Edges
	}
	if edges != man.TotalEdges {
		return nil, fmt.Errorf("pipeline: read manifest: shard edges sum to %d, manifest claims %d",
			edges, man.TotalEdges)
	}
	return &man, nil
}

// LoadShard loads shard i of a manifest from dir and verifies it is exactly
// the file the manifest describes: matching checksum, ID range, and totals.
// Failures are *ShardLoadError so callers can attribute them.
func LoadShard(dir string, man *ShardManifest, i int) (*core.FrozenNet, error) {
	if i < 0 || i >= len(man.Shards) {
		return nil, fmt.Errorf("pipeline: load shard: index %d out of range (%d shards)", i, len(man.Shards))
	}
	entry := &man.Shards[i]
	fail := func(err error) (*core.FrozenNet, error) {
		return nil, &ShardLoadError{Index: i, File: entry.File, Err: err}
	}
	f, err := faultfs.Open(filepath.Join(dir, entry.File))
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	sh, err := core.LoadFrozen(f)
	if err != nil {
		return fail(err)
	}
	if sh.Checksum() != entry.Checksum {
		return fail(fmt.Errorf("checksum %08x does not match manifest %08x", sh.Checksum(), entry.Checksum))
	}
	if int(sh.Base()) != entry.Base || sh.NumNodes() != entry.Nodes || sh.NumEdges() != entry.Edges {
		return fail(fmt.Errorf("shard covers [%d,%d) with %d edges, manifest says [%d,%d) with %d",
			sh.Base(), int(sh.Base())+sh.NumNodes(), sh.NumEdges(), entry.Base, entry.Base+entry.Nodes, entry.Edges))
	}
	if sh.TotalNodes() != man.TotalNodes {
		return fail(fmt.Errorf("shard declares total %d, manifest says %d", sh.TotalNodes(), man.TotalNodes))
	}
	return sh, nil
}

// loadShardMeta reads and validates the gob serving-metadata file.
func loadShardMeta(dir string, man *ShardManifest) (*snapshotExtras, error) {
	f, err := faultfs.Open(filepath.Join(dir, man.MetaFile))
	if err != nil {
		return nil, fmt.Errorf("pipeline: load shard meta: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("pipeline: load shard meta: %w", err)
	}
	if len(raw) < 9 {
		return nil, errors.New("pipeline: load shard meta: file too short")
	}
	if [4]byte{raw[0], raw[1], raw[2], raw[3]} != shardMetaMagic {
		return nil, fmt.Errorf("pipeline: load shard meta: bad magic %q", raw[:4])
	}
	if raw[4] != shardMetaVersion {
		return nil, fmt.Errorf("pipeline: load shard meta: unsupported version %d", raw[4])
	}
	body, crc := raw[5:len(raw)-4], raw[len(raw)-4:]
	stored := uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	if sum := crc32.ChecksumIEEE(body); sum != stored {
		return nil, fmt.Errorf("pipeline: load shard meta: checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	if stored != man.MetaChecksum {
		return nil, fmt.Errorf("pipeline: load shard meta: checksum %08x does not match manifest %08x", stored, man.MetaChecksum)
	}
	var wire shardMetaWire
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("pipeline: load shard meta: %w", err)
	}
	extras := wire.extras()
	if err := extras.validate(man.TotalNodes); err != nil {
		return nil, fmt.Errorf("pipeline: load shard meta: %w", err)
	}
	return &extras, nil
}

// LoadShards loads a complete sharded snapshot: manifest, serving
// metadata, and all shard files (in parallel), verified against the
// manifest's checksums. dir may be a snapshot-store root (the newest
// committed generation is loaded), a generation directory, or a
// pre-catalog flat snapshot directory. Like LoadSnapshot it returns a
// serving-only Artifacts — Shards holds the loaded partition and Frozen is
// nil. Per-file failures come back as *ShardLoadError (the first failing
// shard).
func LoadShards(dir string) (*Artifacts, *ShardManifest, error) {
	dir, _, _, err := snapstore.ResolveDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: load shards: %w", err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	extras, err := loadShardMeta(dir, man)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]*core.FrozenNet, len(man.Shards))
	errs := make([]error, len(man.Shards))
	par.For(0, len(man.Shards), func(i int) {
		shards[i], errs[i] = LoadShard(dir, man, i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: load shards: %w", err)
		}
	}
	// NewShardSet re-validates geometry; run it here so a bad assembly is
	// caught at load time, not first request.
	if _, err := core.NewShardSet(shards); err != nil {
		return nil, nil, fmt.Errorf("pipeline: load shards: %w", err)
	}
	return &Artifacts{
		Shards:    shards,
		PrimNode:  extras.PrimNode,
		FrameNode: extras.FrameNode,
		ItemNode:  extras.ItemNode,
		DomainCls: extras.DomainCls,
		Serving:   &extras.Serving,
	}, man, nil
}
