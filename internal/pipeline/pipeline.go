// Package pipeline orchestrates the end-to-end semi-automatic construction
// of the concept net (Sections 3-6): generate/ingest corpora, train the
// embedding substrate, build the taxonomy layer, import and mine primitive
// concepts, generate and link e-commerce concepts, and associate items —
// producing a complete core.Net plus the trained artifacts around it.
package pipeline

import (
	"fmt"
	"runtime"
	"strings"

	"alicoco/internal/core"
	"alicoco/internal/emb"
	"alicoco/internal/hypernym"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

// Options sizes the build.
type Options struct {
	World   world.Config
	Queries int
	Reviews int
	Guides  int
	W2V     emb.W2VConfig

	// MinePatternIsA additionally runs Hearst-pattern mining over the
	// guides corpus and adds the discovered isA edges.
	MinePatternIsA bool
}

// DefaultOptions returns a laptop-scale build.
func DefaultOptions() Options {
	w2v := emb.DefaultW2VConfig()
	w2v.Dim = 32
	w2v.Epochs = 6
	w2v.Workers = runtime.GOMAXPROCS(0)
	return Options{
		World:          world.DefaultConfig(),
		Queries:        2000,
		Reviews:        2000,
		Guides:         2000,
		W2V:            w2v,
		MinePatternIsA: true,
	}
}

// TinyOptions returns a fast build for tests.
func TinyOptions() Options {
	w2v := emb.DefaultW2VConfig()
	w2v.Dim = 16
	w2v.Epochs = 2
	w2v.Workers = runtime.GOMAXPROCS(0)
	return Options{
		World:          world.TinyConfig(),
		Queries:        300,
		Reviews:        300,
		Guides:         300,
		W2V:            w2v,
		MinePatternIsA: true,
	}
}

// Artifacts bundles everything the build produces.
type Artifacts struct {
	Opts     Options
	World    *world.World
	Corpus   *world.Corpus
	W2V      *emb.Word2Vec
	D2V      *emb.Doc2Vec
	Glossary *emb.Glossary
	LM       *text.NGramLM
	POS      *text.POSTagger
	Net      *core.Net

	// Frozen is the read-optimized immutable snapshot of Net taken when
	// the build finished — the store serving code should query (the
	// build-offline / serve-online split). After mutating Net, call
	// Refreeze to publish a fresh snapshot.
	Frozen *core.FrozenNet

	// Shards is the partitioned form of the same snapshot when the
	// artifacts came from a sharded snapshot directory (LoadShards) — the
	// serving layer assembles them into a core.ShardSet. Nil for built and
	// single-snapshot-loaded artifacts.
	Shards []*core.FrozenNet

	// Node maps from world IDs to net node IDs.
	PrimNode  map[int]core.NodeID
	FrameNode map[int]core.NodeID
	ItemNode  map[int]core.NodeID
	DomainCls map[world.Domain]core.NodeID

	// Serving is the world-derived metadata the serving layer needs
	// (stopwords, item table). Build derives it from World; LoadSnapshot
	// restores it, which is what lets a snapshot-loaded Artifacts serve
	// with World == nil.
	Serving *ServingMeta
}

// Build runs the full construction.
func Build(opts Options) (*Artifacts, error) {
	a := &Artifacts{
		Opts:      opts,
		PrimNode:  make(map[int]core.NodeID),
		FrameNode: make(map[int]core.NodeID),
		ItemNode:  make(map[int]core.NodeID),
		DomainCls: make(map[world.Domain]core.NodeID),
	}
	a.World = world.New(opts.World)
	a.Corpus = a.World.GenCorpus(opts.Queries, opts.Reviews, opts.Guides)

	// Embedding substrate (Sections 4-6 models all consume these).
	a.W2V = emb.TrainWord2Vec(a.Corpus.All(), opts.W2V)
	a.D2V = emb.NewDoc2Vec(a.W2V)
	a.Glossary = emb.BuildGlossary(a.World.Glosses, a.D2V)
	a.LM = text.NewNGramLM()
	a.LM.Train(a.Corpus.All())
	a.POS = text.NewPOSTagger()
	a.learnPOSLexicon()

	a.Net = core.NewNet()
	if err := a.buildTaxonomy(); err != nil {
		return nil, fmt.Errorf("pipeline: taxonomy: %w", err)
	}
	if err := a.buildPrimitives(); err != nil {
		return nil, fmt.Errorf("pipeline: primitives: %w", err)
	}
	if err := a.buildEConcepts(); err != nil {
		return nil, fmt.Errorf("pipeline: e-commerce concepts: %w", err)
	}
	if err := a.buildItems(); err != nil {
		return nil, fmt.Errorf("pipeline: items: %w", err)
	}
	a.Frozen = a.Net.Freeze()
	a.Serving = a.buildServingMeta()
	return a, nil
}

// Refreeze rebuilds the frozen snapshot from the live net's current state
// and returns it. Call it after offline mutations (e.g. materializing
// inferred relations) to publish them to serving code. The Frozen field
// write is not synchronized — serving layers that swap snapshots under
// traffic should hold the returned pointer in their own atomic (as the
// alicoco facade does) rather than re-reading Frozen concurrently.
func (a *Artifacts) Refreeze() *core.FrozenNet {
	a.Frozen = a.Net.Freeze()
	return a.Frozen
}

// learnPOSLexicon seeds the POS tagger from the world's vocabulary.
func (a *Artifacts) learnPOSLexicon() {
	nounDomains := map[world.Domain]bool{
		world.Category: true, world.Brand: true, world.IP: true,
		world.Organization: true, world.Location: true, world.Time: true,
		world.Audience: true, world.Event: true, world.Quantity: true,
	}
	for _, p := range a.World.Primitives {
		pos := text.PosAdj
		if nounDomains[p.Domain] {
			pos = text.PosNoun
		}
		for _, tok := range p.Tokens {
			a.POS.Learn(tok, pos)
		}
	}
}

// buildTaxonomy adds the 20 domain classes, the Category subtree classes,
// and the schema relations among classes (Section 3).
func (a *Artifacts) buildTaxonomy() error {
	root := a.Net.AddNode(core.KindClass, "root", "")
	for _, d := range world.Domains {
		cls := a.Net.AddNode(core.KindClass, strings.ToLower(string(d)), string(d))
		a.DomainCls[d] = cls
		if err := a.Net.AddEdge(cls, root, core.EdgeIsA, "", 1); err != nil {
			return err
		}
	}
	// Category subtree classes come from the primitives' class paths.
	for _, p := range a.World.Primitives {
		if p.Domain != world.Category || len(p.ClassPath) == 0 {
			continue
		}
		parent := a.DomainCls[world.Category]
		for depth := 0; depth < len(p.ClassPath); depth++ {
			name := p.ClassPath[depth]
			cls := a.Net.AddNode(core.KindClass, name, "Category")
			if cls != parent {
				if err := a.Net.AddEdge(cls, parent, core.EdgeIsA, "", 1); err != nil {
					return err
				}
			}
			parent = cls
		}
	}
	// Schema: family classes carry property domains; categories are
	// used_in events and suitable_when times.
	for fam, doms := range world.FamilyAttributes() {
		famCls := a.Net.FirstByNameKind(fam, core.KindClass)
		if famCls == core.InvalidNode {
			continue
		}
		for _, d := range doms {
			if err := a.Net.AddEdge(famCls, a.DomainCls[d], core.EdgeSchema, "has_property", 1); err != nil {
				return err
			}
		}
	}
	addSchema := func(table map[string][]string, rel string, targetDomain world.Domain) error {
		for key, leaves := range table {
			_ = key
			for _, leaf := range leaves {
				leafCls := a.Net.FirstByNameKind(leaf, core.KindClass)
				if leafCls == core.InvalidNode {
					continue
				}
				if err := a.Net.AddEdge(leafCls, a.DomainCls[targetDomain], core.EdgeSchema, rel, 1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := addSchema(world.EventRequirements(), "used_in", world.Event); err != nil {
		return err
	}
	if err := addSchema(world.TimeRequirements(), "suitable_when", world.Time); err != nil {
		return err
	}
	return addSchema(world.FunctionRequirements(), "has_function", world.Function)
}

// buildPrimitives imports every primitive concept, its instanceOf link, the
// planted isA edges (the "existing knowledge" import of Section 7.2), and
// optionally pattern-mined isA edges (Section 4.2.1).
func (a *Artifacts) buildPrimitives() error {
	for _, p := range a.World.Primitives {
		node := a.Net.AddNode(core.KindPrimitive, p.Name(), string(p.Domain))
		a.PrimNode[p.ID] = node
		cls := a.DomainCls[p.Domain]
		if p.Domain == world.Category && len(p.ClassPath) > 0 {
			// instanceOf the finest class on its path that is a class node.
			finest := p.ClassPath[len(p.ClassPath)-1]
			if c := a.Net.FirstByNameKind(finest, core.KindClass); c != core.InvalidNode {
				cls = c
			}
		}
		if err := a.Net.AddEdge(node, cls, core.EdgeInstanceOf, "", 1); err != nil {
			return err
		}
	}
	for _, pair := range a.World.HypernymPairs {
		if err := a.Net.AddEdge(a.PrimNode[pair[0]], a.PrimNode[pair[1]], core.EdgeIsA, "", 1); err != nil {
			return err
		}
	}
	if a.Opts.MinePatternIsA {
		pairs := hypernym.MinePatterns(a.Corpus.Guides)
		for _, pp := range pairs {
			hypo := a.Net.FirstByNameKind(pp.Hypo, core.KindPrimitive)
			hyper := a.Net.FirstByNameKind(pp.Hyper, core.KindPrimitive)
			if hypo == core.InvalidNode || hyper == core.InvalidNode || hypo == hyper {
				continue
			}
			if err := a.Net.AddEdge(hypo, hyper, core.EdgeIsA, "", 0.9); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildEConcepts adds every scenario frame as an e-commerce concept node,
// links it to its constituent primitives (the tagging links of Section 5.3),
// and adds isA edges between concepts whose primitive sets nest.
func (a *Artifacts) buildEConcepts() error {
	for _, f := range a.World.Frames {
		node := a.Net.AddNode(core.KindEConcept, f.Name(), "")
		a.FrameNode[f.ID] = node
		for _, pid := range f.Primitives {
			if err := a.Net.AddEdge(node, a.PrimNode[pid], core.EdgeInterpretedBy, "", 1); err != nil {
				return err
			}
		}
	}
	// isA between e-commerce concepts: A isA B when B's primitives are a
	// proper subset of A's (e.g. "winter skiing" isA "skiing"-anchored
	// concepts).
	primSets := make([]map[int]bool, len(a.World.Frames))
	for i, f := range a.World.Frames {
		primSets[i] = make(map[int]bool, len(f.Primitives))
		for _, pid := range f.Primitives {
			primSets[i][pid] = true
		}
	}
	for i, fa := range a.World.Frames {
		for j, fb := range a.World.Frames {
			if i == j || len(primSets[j]) >= len(primSets[i]) || len(primSets[j]) == 0 {
				continue
			}
			subset := true
			for pid := range primSets[j] {
				if !primSets[i][pid] {
					subset = false
					break
				}
			}
			if subset {
				if err := a.Net.AddEdge(a.FrameNode[fa.ID], a.FrameNode[fb.ID], core.EdgeIsA, "", 0.8); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// buildItems adds item nodes and both association layers (Section 6).
func (a *Artifacts) buildItems() error {
	for _, item := range a.World.Items {
		node := a.Net.AddNode(core.KindItem, strings.Join(item.Title, " "), item.Family)
		a.ItemNode[item.ID] = node
		for _, pid := range a.World.ItemPrimitives(item.ID) {
			if err := a.Net.AddEdge(node, a.PrimNode[pid], core.EdgeItemPrimitive, "", 1); err != nil {
				return err
			}
		}
	}
	for _, f := range a.World.Frames {
		fNode := a.FrameNode[f.ID]
		for _, itemID := range a.World.FrameItems(f) {
			if err := a.Net.AddEdge(a.ItemNode[itemID], fNode, core.EdgeItemEConcept, "", 1); err != nil {
				return err
			}
		}
	}
	return nil
}
