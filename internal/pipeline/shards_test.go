package pipeline

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/snapstore"
)

// saveShardDir commits one generation into a fresh store and returns the
// committed generation's directory (where the shard files actually live),
// which the corruption tests mutate directly.
func saveShardDir(t *testing.T, a *Artifacts, count int) (string, *ShardManifest) {
	t.Helper()
	root := t.TempDir()
	man, err := a.SaveShards(root, count)
	if err != nil {
		t.Fatalf("SaveShards(%d): %v", count, err)
	}
	dir, _, _, err := snapstore.ResolveDir(root)
	if err != nil {
		t.Fatalf("ResolveDir: %v", err)
	}
	return dir, man
}

// TestSaveShardsDeterministic: saving the same net twice must produce
// byte-identical manifests — every checksum, including MetaChecksum, is a
// pure content hash. ReloadShards treats a changed MetaChecksum as a shape
// change (full reload), so a nondeterministic meta encoding would defeat
// per-shard diffing on every re-save of unchanged content.
func TestSaveShardsDeterministic(t *testing.T) {
	a := buildTiny(t)
	_, man1 := saveShardDir(t, a, 3)
	_, man2 := saveShardDir(t, a, 3)
	if !reflect.DeepEqual(man1, man2) {
		t.Fatalf("re-save of identical content produced a different manifest:\n%+v\n%+v", man1, man2)
	}
}

// TestShardDirRoundTrip: a sharded save loads back into a serving-only
// Artifacts whose assembled ShardSet answers exactly like the unsharded
// frozen net, and whose metadata survives the gob round trip.
func TestShardDirRoundTrip(t *testing.T) {
	a := buildTiny(t)
	for _, count := range []int{1, 3, 4} {
		dir, man := saveShardDir(t, a, count)
		if man.NumShards() != count || man.TotalNodes != a.Frozen.NumNodes() || man.TotalEdges != a.Frozen.NumEdges() {
			t.Fatalf("count %d: manifest geometry %+v does not match net", count, man)
		}
		b, man2, err := LoadShards(dir)
		if err != nil {
			t.Fatalf("LoadShards: %v", err)
		}
		if !reflect.DeepEqual(man, man2) {
			t.Fatal("manifest changed across round trip")
		}
		if b.Net != nil || b.World != nil || b.Frozen != nil {
			t.Fatal("loaded artifacts should be serving-only with Shards set")
		}
		if len(b.Shards) != count {
			t.Fatalf("loaded %d shards, want %d", len(b.Shards), count)
		}
		if !reflect.DeepEqual(a.Serving, b.Serving) || !reflect.DeepEqual(a.ItemNode, b.ItemNode) {
			t.Fatal("serving metadata differs after round trip")
		}
		s, err := core.NewShardSet(b.Shards)
		if err != nil {
			t.Fatalf("NewShardSet: %v", err)
		}
		if s.NumNodes() != a.Frozen.NumNodes() || s.NumEdges() != a.Frozen.NumEdges() {
			t.Fatal("shard set counts differ from unsharded net")
		}
		for _, ec := range a.Frozen.NodesOfKind(core.KindEConcept)[:5] {
			if !reflect.DeepEqual(a.Frozen.ItemsForEConcept(ec, 10), s.ItemsForEConcept(ec, 10)) {
				t.Fatalf("ItemsForEConcept(%d) differs after round trip", ec)
			}
		}
		for _, p := range a.Frozen.NodesOfKind(core.KindPrimitive)[:5] {
			if !reflect.DeepEqual(a.Frozen.Ancestors(p, 0), s.Ancestors(p, 0)) {
				t.Fatalf("Ancestors(%d) differs after round trip", p)
			}
		}
	}
}

// TestLoadShardVerifiesManifest: a shard file swapped for another valid
// shard — or a checksum edit in the manifest — is rejected with a
// *ShardLoadError naming the failing shard.
func TestLoadShardVerifiesManifest(t *testing.T) {
	a := buildTiny(t)
	dir, _ := saveShardDir(t, a, 3)

	// Swap shard 1's file for shard 2's: loads fine as a frozen net, but
	// its checksum and geometry do not match the manifest entry.
	orig, err := os.ReadFile(filepath.Join(dir, shardFileName(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, shardFileName(1)), orig, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadShards(dir)
	var sle *ShardLoadError
	if err == nil || !errors.As(err, &sle) {
		t.Fatalf("swapped shard file: got %v, want *ShardLoadError", err)
	}
	if sle.Index != 1 {
		t.Fatalf("failure attributed to shard %d, want 1", sle.Index)
	}
}

// TestLoadShardsRejectsCorruption: flipped bytes in a shard file, the meta
// file, or the manifest never load.
func TestLoadShardsRejectsCorruption(t *testing.T) {
	a := buildTiny(t)
	flip := func(t *testing.T, dir, name string, off int) {
		t.Helper()
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off = len(raw) + off
		}
		raw[off] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("shard body", func(t *testing.T) {
		dir, _ := saveShardDir(t, a, 3)
		flip(t, dir, shardFileName(1), -5)
		if _, _, err := LoadShards(dir); err == nil {
			t.Fatal("corrupt shard file loaded")
		}
	})
	t.Run("meta body", func(t *testing.T) {
		dir, _ := saveShardDir(t, a, 3)
		flip(t, dir, shardMetaName, 16)
		if _, _, err := LoadShards(dir); err == nil {
			t.Fatal("corrupt meta file loaded")
		}
	})
	t.Run("missing shard file", func(t *testing.T) {
		dir, _ := saveShardDir(t, a, 3)
		if err := os.Remove(filepath.Join(dir, shardFileName(2))); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadShards(dir)
		var sle *ShardLoadError
		if err == nil || !errors.As(err, &sle) || sle.Index != 2 {
			t.Fatalf("missing shard file: got %v, want *ShardLoadError for shard 2", err)
		}
	})
	t.Run("manifest garbage", func(t *testing.T) {
		dir, _ := saveShardDir(t, a, 3)
		if err := os.WriteFile(filepath.Join(dir, ShardManifestName), []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadShards(dir); err == nil {
			t.Fatal("garbage manifest accepted")
		}
	})
	t.Run("manifest stride lie", func(t *testing.T) {
		dir, man := saveShardDir(t, a, 3)
		man.Stride++
		raw, err := json.Marshal(man)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ShardManifestName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); err == nil {
			t.Fatal("manifest with wrong stride accepted")
		}
	})
}

// TestLoadShardSingle: LoadShard re-reads exactly one shard, which is what
// the serving layer's single-shard reload path builds on.
func TestLoadShardSingle(t *testing.T) {
	a := buildTiny(t)
	dir, man := saveShardDir(t, a, 4)
	sh, err := LoadShard(dir, man, 2)
	if err != nil {
		t.Fatal(err)
	}
	if int(sh.Base()) != man.Shards[2].Base || sh.NumNodes() != man.Shards[2].Nodes {
		t.Fatal("LoadShard returned the wrong range")
	}
	if _, err := LoadShard(dir, man, 99); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}

// TestSaveShardsRequiresLiveNet: serving-only artifacts cannot partition.
func TestSaveShardsRequiresLiveNet(t *testing.T) {
	a := buildTiny(t)
	dir, _ := saveShardDir(t, a, 2)
	b, _, err := LoadShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SaveShards(t.TempDir(), 2); err == nil {
		t.Fatal("SaveShards on serving-only artifacts should fail")
	}
}
