package pipeline

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alicoco/internal/faultfs"
	"alicoco/internal/snapstore"
)

// copyTree replicates a snapshot store so each crash trial mutates its own
// copy.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, s, d)
			continue
		}
		in, err := os.Open(s)
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// listTempDirs returns the leftover uncommitted transaction dirs in a
// store root — recovery must always leave zero.
func listTempDirs(t *testing.T, root string) []string {
	t.Helper()
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".gen-tmp-") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

// recoverAndLoad is what a process restart does after a crashed save:
// open the store (running the torn-write sweep) and load the newest
// committed generation. It returns the loaded manifest and the newest
// generation ID.
func recoverAndLoad(t *testing.T, root string) (*ShardManifest, uint64) {
	t.Helper()
	st, err := snapstore.Open(root, snapstore.Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if tmps := listTempDirs(t, root); len(tmps) != 0 {
		t.Fatalf("recovery left temp dirs behind: %v", tmps)
	}
	g, ok, err := st.Latest()
	if err != nil || !ok {
		t.Fatalf("recovery lost every committed generation: ok=%v err=%v", ok, err)
	}
	_, man, err := LoadShards(root)
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	return man, g.ID
}

// TestCrashMatrix kills a snapshot save at every single write operation it
// performs — every create, write, fsync, close, rename, directory sync,
// and remove, one trial per operation, with all later writes failing too
// (nothing reaches disk after death) — and proves that recovery after each
// crash yields a store whose newest committed generation is either
// complete generation A (the old snapshot, crash before the catalog
// commit) or complete generation B (the new one, crash after it). No
// trial may ever surface a torn, partial, or unloadable store.
//
// The default run exercises one shard-count transition (3 -> 4). Set
// CRASH_MATRIX=full (the CI workflow_dispatch toggle) to also sweep the
// single-shard and wider transitions.
func TestCrashMatrix(t *testing.T) {
	configs := []struct{ shardsA, shardsB int }{{3, 4}}
	if os.Getenv("CRASH_MATRIX") == "full" {
		configs = append(configs,
			struct{ shardsA, shardsB int }{1, 2},
			struct{ shardsA, shardsB int }{4, 6},
		)
	}
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("%dto%d", cfg.shardsA, cfg.shardsB), func(t *testing.T) {
			runCrashMatrix(t, cfg.shardsA, cfg.shardsB)
		})
	}
}

func runCrashMatrix(t *testing.T, shardsA, shardsB int) {
	a := buildTiny(t)

	// Generation A: a clean commit every trial starts from.
	base := t.TempDir()
	manA, _, err := a.SaveShardsRetain(base, shardsA, 0)
	if err != nil {
		t.Fatalf("seed save: %v", err)
	}

	// Generation B: what the save under attack produces when it completes —
	// a different shard count, so the manifests are distinguishable.
	cleanB := t.TempDir()
	copyTree(t, base, cleanB)
	manB, _, err := a.SaveShardsRetain(cleanB, shardsB, 0)
	if err != nil {
		t.Fatalf("clean second save: %v", err)
	}
	if reflect.DeepEqual(manA, manB) {
		t.Fatal("generation A and B manifests must differ for the matrix to discriminate them")
	}

	// Dry run: arm a crash point that never fires and count the save's
	// write operations — that count is the matrix width.
	dry := t.TempDir()
	copyTree(t, base, dry)
	restore := faultfs.InjectCrash(faultfs.CrashPoint{After: math.MaxUint64})
	if _, _, err := a.SaveShardsRetain(dry, shardsB, 0); err != nil {
		restore()
		t.Fatalf("dry-run save: %v", err)
	}
	ops := faultfs.CrashOps()
	restore()
	if ops < 20 {
		t.Fatalf("dry run counted only %d write operations; crash instrumentation is not covering the save", ops)
	}
	t.Logf("crash matrix: %d write operations", ops)

	for i := uint64(0); i < ops; i++ {
		trial := t.TempDir()
		copyTree(t, base, trial)
		restore := faultfs.InjectCrash(faultfs.CrashPoint{After: i})
		_, _, saveErr := a.SaveShardsRetain(trial, shardsB, 0)
		fired := faultfs.CrashFired()
		restore()
		if !fired {
			t.Fatalf("op %d: crash point never fired", i)
		}

		man, gen := recoverAndLoad(t, trial)
		switch gen {
		case 1:
			if !reflect.DeepEqual(man, manA) {
				t.Fatalf("op %d: recovered generation 1 is not the complete old snapshot", i)
			}
		case 2:
			if !reflect.DeepEqual(man, manB) {
				t.Fatalf("op %d: recovered generation 2 is not the complete new snapshot", i)
			}
		default:
			t.Fatalf("op %d: recovery surfaced unexpected generation %d", i, gen)
		}
		if saveErr == nil && gen != 2 {
			// The only way a crashed save reports success is when the
			// crash landed on best-effort cleanup after the commit point.
			t.Fatalf("op %d: save reported success but generation %d is serving", i, gen)
		}
	}
}

// TestSaveCrashRenameFailure: a save whose generation-directory rename (the
// step just before the catalog commit) fails leaves the store exactly as it
// was — the sweep clears the transaction dir and generation A still loads.
func TestSaveCrashRenameFailure(t *testing.T) {
	testSaveCrash(t, faultfs.CrashPoint{Op: faultfs.OpRename, PathContains: "gen-"})
}

// TestSaveCrashFsyncFailure: same contract when an fsync fails mid-save
// (the disk lied or died); no partial state may surface.
func TestSaveCrashFsyncFailure(t *testing.T) {
	testSaveCrash(t, faultfs.CrashPoint{Op: faultfs.OpSync})
}

// TestSaveCrashShortWrite: a power loss mid-write tears the file — half
// the bytes land. The torn file lives only in the uncommitted transaction
// dir, so recovery sweeps it with the rest of the debris.
func TestSaveCrashShortWrite(t *testing.T) {
	testSaveCrash(t, faultfs.CrashPoint{Op: faultfs.OpWrite, PathContains: "shard-", Short: true})
}

func testSaveCrash(t *testing.T, cp faultfs.CrashPoint) {
	a := buildTiny(t)
	root := t.TempDir()
	manA, _, err := a.SaveShardsRetain(root, 3, 0)
	if err != nil {
		t.Fatalf("seed save: %v", err)
	}
	restore := faultfs.InjectCrash(cp)
	_, _, saveErr := a.SaveShardsRetain(root, 3, 0)
	fired := faultfs.CrashFired()
	restore()
	if !fired {
		t.Fatal("crash point never fired")
	}
	if saveErr == nil {
		t.Fatal("crashed save reported success")
	}
	man, gen := recoverAndLoad(t, root)
	if gen != 1 || !reflect.DeepEqual(man, manA) {
		t.Fatalf("recovery after failed save: gen %d, want untouched generation 1", gen)
	}
}
