package pipeline

import (
	"bytes"
	"reflect"
	"testing"

	"alicoco/internal/core"
)

func TestArtifactsSnapshotRoundTrip(t *testing.T) {
	a := buildTiny(t)
	var buf bytes.Buffer
	if err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Net != nil || b.World != nil || b.W2V != nil {
		t.Fatal("loaded artifacts should be serving-only")
	}
	if b.Frozen.NumNodes() != a.Frozen.NumNodes() || b.Frozen.NumEdges() != a.Frozen.NumEdges() {
		t.Fatalf("frozen counts differ: %d/%d nodes, %d/%d edges",
			b.Frozen.NumNodes(), a.Frozen.NumNodes(), b.Frozen.NumEdges(), a.Frozen.NumEdges())
	}
	if !reflect.DeepEqual(a.PrimNode, b.PrimNode) || !reflect.DeepEqual(a.FrameNode, b.FrameNode) ||
		!reflect.DeepEqual(a.ItemNode, b.ItemNode) || !reflect.DeepEqual(a.DomainCls, b.DomainCls) {
		t.Fatal("node maps differ after round trip")
	}
	if !reflect.DeepEqual(a.Serving, b.Serving) {
		t.Fatal("serving metadata differs after round trip")
	}
	// Spot-check real queries answer identically on the loaded net.
	for _, ec := range a.Frozen.NodesOfKind(core.KindEConcept)[:5] {
		la, lb := a.Frozen.ItemsForEConcept(ec, 10), b.Frozen.ItemsForEConcept(ec, 10)
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("ItemsForEConcept(%d) differs after round trip", ec)
		}
	}
	for _, p := range a.Frozen.NodesOfKind(core.KindPrimitive)[:5] {
		if !reflect.DeepEqual(a.Frozen.Ancestors(p, 0), b.Frozen.Ancestors(p, 0)) {
			t.Fatalf("Ancestors(%d) differs after round trip", p)
		}
	}
}

func TestLoadSnapshotRejectsCorruptHeader(t *testing.T) {
	a := buildTiny(t)
	var buf bytes.Buffer
	if err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	bad := append([]byte(nil), full...)
	copy(bad, "XXXX")
	if _, err := LoadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), full...)
	bad[4] = 99
	if _, err := LoadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	for _, cut := range []int{0, 3, 5, len(full) / 2, len(full) - 1} {
		if _, err := LoadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestSaveSnapshotRequiresFrozen(t *testing.T) {
	a := &Artifacts{}
	var buf bytes.Buffer
	if err := a.SaveSnapshot(&buf); err == nil {
		t.Fatal("snapshot of artifacts without a frozen net should error")
	}
}
