package pipeline

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"strings"

	"alicoco/internal/core"
	"alicoco/internal/world"
)

// Snapshot persistence: an Artifacts bundle round-trips through the frozen
// binary format, so cold start re-reads the served net from disk instead of
// regenerating the world, retraining embeddings, and re-freezing. The file
// is the core.FrozenNet section (versioned, checksummed, bulk-read CSR)
// followed by a small gob section carrying the world-derived data serving
// needs: the node maps and the ServingMeta (stopwords + item table).
//
// A loaded Artifacts is serving-only: Net, World, and the trained models
// are nil. Offline mutation paths must check Net before using it.

var snapshotMagic = [4]byte{'A', 'C', 'P', 'S'}

const artifactsSnapshotVersion = 1

// ServingMeta is the world-derived data the serving layer needs beyond the
// net itself: the stopword list the search engine tokenizes with, and the
// item table mapping world item IDs to net nodes, titles, and categories.
// Build populates it; a snapshot round-trips it so a loaded Artifacts can
// serve without a World.
type ServingMeta struct {
	Stopwords []string
	Items     []ItemMeta
}

// ItemMeta is one sellable item's serving-facing identity.
type ItemMeta struct {
	WorldID  int
	Node     core.NodeID
	Title    string
	Category string
}

// snapshotExtras is the gob wire form of everything beyond the frozen net.
// Versioning lives in the container header; gob's own tolerance for
// added/removed fields covers same-version evolution.
type snapshotExtras struct {
	PrimNode  map[int]core.NodeID
	FrameNode map[int]core.NodeID
	ItemNode  map[int]core.NodeID
	DomainCls map[world.Domain]core.NodeID
	Serving   ServingMeta
}

// servingExtras assembles the gob section from the artifacts' fields.
func (a *Artifacts) servingExtras() snapshotExtras {
	return snapshotExtras{
		PrimNode:  a.PrimNode,
		FrameNode: a.FrameNode,
		ItemNode:  a.ItemNode,
		DomainCls: a.DomainCls,
		Serving:   *a.Serving,
	}
}

// validate checks every node reference in the extras against the node-ID
// space [0, total) of the net they were saved with.
func (e *snapshotExtras) validate(total int) error {
	validID := func(id core.NodeID) bool { return id >= 0 && int(id) < total }
	for name, m := range map[string]map[int]core.NodeID{
		"PrimNode": e.PrimNode, "FrameNode": e.FrameNode, "ItemNode": e.ItemNode,
	} {
		for k, id := range m {
			if !validID(id) {
				return fmt.Errorf("%s[%d] = %d out of range", name, k, id)
			}
		}
	}
	for d, id := range e.DomainCls {
		if !validID(id) {
			return fmt.Errorf("DomainCls[%s] = %d out of range", d, id)
		}
	}
	for i, it := range e.Serving.Items {
		if !validID(it.Node) {
			return fmt.Errorf("item %d node %d out of range", i, it.Node)
		}
	}
	return nil
}

// buildServingMeta derives the serving metadata from the built world.
func (a *Artifacts) buildServingMeta() *ServingMeta {
	m := &ServingMeta{Stopwords: a.World.Stopwords()}
	for _, it := range a.World.Items {
		m.Items = append(m.Items, ItemMeta{
			WorldID:  it.ID,
			Node:     a.ItemNode[it.ID],
			Title:    strings.Join(it.Title, " "),
			Category: a.World.Prim(it.Leaf).Name(),
		})
	}
	return m
}

// SaveSnapshot writes the serving state of the artifacts — the frozen net
// plus ServingMeta and node maps — in the binary snapshot format. The
// writer should be buffered for large nets.
func (a *Artifacts) SaveSnapshot(w io.Writer) error {
	if a.Frozen == nil {
		return errors.New("pipeline: save snapshot: no frozen net (call Freeze/Refreeze first)")
	}
	if a.Serving == nil {
		return errors.New("pipeline: save snapshot: no serving metadata")
	}
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("pipeline: save snapshot: %w", err)
	}
	if _, err := w.Write([]byte{artifactsSnapshotVersion}); err != nil {
		return fmt.Errorf("pipeline: save snapshot: %w", err)
	}
	if err := a.Frozen.Save(w); err != nil {
		return err
	}
	extras := a.servingExtras()
	if err := gob.NewEncoder(w).Encode(&extras); err != nil {
		return fmt.Errorf("pipeline: save snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot written by SaveSnapshot and returns a
// serving-only Artifacts: Frozen, the node maps, and Serving are populated;
// Net, World, and the trained models are nil. Node references in the maps
// and item table are validated against the loaded net.
func LoadSnapshot(r io.Reader) (*Artifacts, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("pipeline: load snapshot: %w", err)
	}
	if [4]byte{head[0], head[1], head[2], head[3]} != snapshotMagic {
		return nil, fmt.Errorf("pipeline: load snapshot: bad magic %q", head[:4])
	}
	if head[4] != artifactsSnapshotVersion {
		return nil, fmt.Errorf("pipeline: load snapshot: unsupported version %d", head[4])
	}
	frozen, err := core.LoadFrozen(r)
	if err != nil {
		return nil, err
	}
	var extras snapshotExtras
	if err := gob.NewDecoder(r).Decode(&extras); err != nil {
		return nil, fmt.Errorf("pipeline: load snapshot: %w", err)
	}
	if err := extras.validate(frozen.NumNodes()); err != nil {
		return nil, fmt.Errorf("pipeline: load snapshot: %w", err)
	}
	return &Artifacts{
		Frozen:    frozen,
		PrimNode:  extras.PrimNode,
		FrameNode: extras.FrameNode,
		ItemNode:  extras.ItemNode,
		DomainCls: extras.DomainCls,
		Serving:   &extras.Serving,
	}, nil
}
