package tagging

import (
	"math/rand"
	"sort"

	"alicoco/internal/emb"
	"alicoco/internal/mat"
	"alicoco/internal/metrics"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

// BuildDataset assembles the tagging benchmark of Section 7.5 from the
// world's frames plus pattern-generated distant-supervised examples. The
// training side carries the distant-supervision noise of the real pipeline:
// for ambiguous surfaces the noisy gold label picks a random reading, while
// the Allowed sets record every lexicon-consistent reading (the fuzzy CRF's
// extra signal). The test side keeps the true gold labels.
func BuildDataset(w *world.World, extraTrain, extraTest int, seed int64) (train, test []Example) {
	rng := rand.New(rand.NewSource(seed))
	frames := append([]*world.Frame(nil), w.Frames...)
	rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	split := len(frames) * 8 / 10
	for i, f := range frames {
		ex := frameExample(w, f)
		if i < split {
			train = append(train, noisyCopy(w, ex, rng))
		} else {
			test = append(test, ex)
		}
	}
	for i := 0; i < extraTrain; i++ {
		train = append(train, noisyCopy(w, patternExample(w, rng), rng))
	}
	// Extra test examples keep true gold; a dedicated RNG stream keeps them
	// disjoint in distribution draws from the training stream.
	testRng := rand.New(rand.NewSource(seed + 104729))
	for i := 0; i < extraTest; i++ {
		test = append(test, patternExample(w, testRng))
	}
	return train, test
}

// frameExample converts a frame's gold spans into an Example.
func frameExample(w *world.World, f *world.Frame) Example {
	gold := text.EncodeIOB(len(f.Tokens), f.Spans)
	return Example{Tokens: append([]string(nil), f.Tokens...), Gold: gold}
}

// patternExample generates a short concept with known labeling, the
// distant-supervision analog of the paper's 24k auto-generated pairs.
func patternExample(w *world.World, rng *rand.Rand) Example {
	pick := func(d world.Domain) *world.Primitive {
		pool := w.ByDomain[d]
		return w.Prim(pool[rng.Intn(len(pool))])
	}
	type slot struct {
		p   *world.Primitive
		lit string
	}
	var slots []slot
	switch rng.Intn(4) {
	case 0: // "<style> <category>"
		slots = []slot{{p: pick(world.Style)}, {p: pick(world.Category)}}
	case 1: // "<location> <event>"
		slots = []slot{{p: pick(world.Location)}, {p: pick(world.Event)}}
	case 2: // "<function> <category> for <audience>"
		slots = []slot{{p: pick(world.Function)}, {p: pick(world.Category)}, {lit: "for"}, {p: pick(world.Audience)}}
	default: // "<time> <category>"
		slots = []slot{{p: pick(world.Time)}, {p: pick(world.Category)}}
	}
	var tokens []string
	var spans []text.Span
	for _, s := range slots {
		if s.lit != "" {
			tokens = append(tokens, s.lit)
			continue
		}
		start := len(tokens)
		tokens = append(tokens, s.p.Tokens...)
		spans = append(spans, text.Span{Start: start, End: len(tokens), Label: string(s.p.Domain)})
	}
	return Example{Tokens: tokens, Gold: text.EncodeIOB(len(tokens), spans)}
}

// noisyCopy injects distant-supervision ambiguity noise: for each span whose
// surface belongs to several domains, the noisy gold randomly picks one
// reading; Allowed records all readings.
func noisyCopy(w *world.World, ex Example, rng *rand.Rand) Example {
	out := Example{Tokens: ex.Tokens, Gold: append([]string(nil), ex.Gold...)}
	allowed := make([][]string, len(ex.Tokens))
	anyAmbiguous := false
	for _, sp := range text.DecodeIOB(ex.Gold) {
		surface := joinTokens(ex.Tokens[sp.Start:sp.End])
		doms := w.AmbiguousDomains(surface)
		if len(doms) <= 1 {
			continue
		}
		anyAmbiguous = true
		// Noisy label: random reading.
		noisy := string(doms[rng.Intn(len(doms))])
		out.Gold[sp.Start] = "B-" + noisy
		for i := sp.Start + 1; i < sp.End; i++ {
			out.Gold[i] = "I-" + noisy
		}
		// Allowed: every reading.
		sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
		for i := sp.Start; i < sp.End; i++ {
			prefix := "I-"
			if i == sp.Start {
				prefix = "B-"
			}
			for _, d := range doms {
				allowed[i] = append(allowed[i], prefix+string(d))
			}
		}
	}
	if anyAmbiguous {
		for i := range allowed {
			if allowed[i] == nil {
				allowed[i] = []string{out.Gold[i]}
			}
		}
		out.Allowed = allowed
	}
	return out
}

func joinTokens(tokens []string) string {
	out := ""
	for i, t := range tokens {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}

// Evaluate computes span-level precision/recall/F1 on examples (Table 5).
func Evaluate(t *Tagger, examples []Example) (precision, recall, f1 float64) {
	var c metrics.Confusion
	for _, ex := range examples {
		pred := t.PredictSpans(ex.Tokens)
		gold := text.DecodeIOB(ex.Gold)
		predKeys := make([]metrics.SpanKey, len(pred))
		for i, sp := range pred {
			predKeys[i] = metrics.SpanKey{Start: sp.Start, End: sp.End, Label: sp.Label}
		}
		goldKeys := make([]metrics.SpanKey, len(gold))
		for i, sp := range gold {
			goldKeys[i] = metrics.SpanKey{Start: sp.Start, End: sp.End, Label: sp.Label}
		}
		metrics.SpanPRF1(&c, predKeys, goldKeys)
	}
	return c.Precision(), c.Recall(), c.F1()
}

// FilterAmbiguous keeps only examples containing at least one span whose
// surface belongs to several domains — the Figure 7 cases where the fuzzy
// CRF matters.
func FilterAmbiguous(w *world.World, examples []Example) []Example {
	var out []Example
	for _, ex := range examples {
		for _, sp := range text.DecodeIOB(ex.Gold) {
			surface := joinTokens(ex.Tokens[sp.Start:sp.End])
			if len(w.AmbiguousDomains(surface)) > 1 {
				out = append(out, ex)
				break
			}
		}
	}
	return out
}

// BuildTextMatrix constructs the text-augmented lookup TM of Section 5.3.1:
// for every corpus word, up to maxContexts context windows are pooled and
// encoded with Doc2vec.
func BuildTextMatrix(corpus [][]string, d2v *emb.Doc2Vec, maxContexts int) func(string) mat.Vec {
	contexts := make(map[string][]string)
	counts := make(map[string]int)
	for _, sent := range corpus {
		for i, w := range sent {
			if counts[w] >= maxContexts {
				continue
			}
			counts[w]++
			lo, hi := i-2, i+3
			if lo < 0 {
				lo = 0
			}
			if hi > len(sent) {
				hi = len(sent)
			}
			for j := lo; j < hi; j++ {
				if j != i {
					contexts[w] = append(contexts[w], sent[j])
				}
			}
		}
	}
	cache := make(map[string]mat.Vec, len(contexts))
	for w, ctx := range contexts {
		cache[w] = d2v.Encode(ctx)
	}
	dim := d2v.Dim()
	return func(word string) mat.Vec {
		if v, ok := cache[word]; ok {
			return v.Clone()
		}
		return mat.NewVec(dim)
	}
}
