package tagging

import (
	"testing"

	"alicoco/internal/emb"
	"alicoco/internal/mat"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

func setup(t *testing.T, extra int) (*world.World, []Example, []Example, *text.POSTagger, func(string) mat.Vec) {
	t.Helper()
	cfg := world.TinyConfig()
	cfg.GeneratedFrames = 60
	w := world.New(cfg)
	train, test := BuildDataset(w, extra, extra/2, 3)
	pos := text.NewPOSTagger()
	corpus := w.GenCorpus(200, 200, 200).All()
	w2vCfg := emb.DefaultW2VConfig()
	w2vCfg.Dim = 16
	w2vCfg.Epochs = 2
	w2v := emb.TrainWord2Vec(corpus, w2vCfg)
	d2v := emb.NewDoc2Vec(w2v)
	tm := BuildTextMatrix(corpus, d2v, 6)
	return w, train, test, pos, tm
}

func TestBuildDatasetShapes(t *testing.T) {
	w, train, test, _, _ := setup(t, 150)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("empty splits: %d/%d", len(train), len(test))
	}
	for _, ex := range append(append([]Example{}, train...), test...) {
		if len(ex.Tokens) != len(ex.Gold) {
			t.Fatal("token/gold length mismatch")
		}
		if ex.Allowed != nil && len(ex.Allowed) != len(ex.Tokens) {
			t.Fatal("allowed length mismatch")
		}
	}
	// Some training examples must carry ambiguity (allowed sets).
	ambiguous := 0
	for _, ex := range train {
		if ex.Allowed != nil {
			ambiguous++
		}
	}
	if ambiguous == 0 {
		t.Fatal("no ambiguous training examples; fuzzy CRF has nothing to do")
	}
	_ = w
}

func TestNoisyGoldStaysWithinAllowed(t *testing.T) {
	_, train, _, _, _ := setup(t, 150)
	for _, ex := range train {
		if ex.Allowed == nil {
			continue
		}
		for i, g := range ex.Gold {
			ok := false
			for _, a := range ex.Allowed[i] {
				if a == g {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("noisy gold %q not in allowed %v", g, ex.Allowed[i])
			}
		}
	}
}

func TestTaggerLearnsSpans(t *testing.T) {
	_, train, test, pos, tm := setup(t, 200)
	cfg := DefaultConfig()
	cfg.Epochs = 6
	tg := NewTagger(world.DomainNames(), pos, tm, cfg)
	loss := tg.Train(train)
	if loss < 0 {
		t.Fatalf("negative loss %v", loss)
	}
	p, r, f1 := Evaluate(tg, test)
	if f1 < 0.55 {
		t.Fatalf("full tagger too weak: P=%.3f R=%.3f F1=%.3f", p, r, f1)
	}
}

func TestFuzzyBeatsPlainOnAmbiguousData(t *testing.T) {
	_, train, test, pos, tm := setup(t, 200)

	plainCfg := DefaultConfig()
	plainCfg.UseFuzzy = false
	plainCfg.UseKnowledge = false
	plainCfg.Epochs = 5
	plain := NewTagger(world.DomainNames(), pos, nil, plainCfg)
	plain.Train(train)
	_, _, f1Plain := Evaluate(plain, test)

	fuzzyCfg := DefaultConfig()
	fuzzyCfg.UseFuzzy = true
	fuzzyCfg.UseKnowledge = false
	fuzzyCfg.Epochs = 5
	fuzzy := NewTagger(world.DomainNames(), pos, nil, fuzzyCfg)
	fuzzy.Train(train)
	_, _, f1Fuzzy := Evaluate(fuzzy, test)

	_ = tm
	// The Table 5 shape: fuzzy should not lose meaningfully to plain on
	// data with ambiguous labels (and typically wins).
	if f1Fuzzy+0.05 < f1Plain {
		t.Fatalf("fuzzy (%.3f) clearly worse than plain (%.3f)", f1Fuzzy, f1Plain)
	}
}

func TestPredictBeforeTrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tg := NewTagger(world.DomainNames(), text.NewPOSTagger(), nil, DefaultConfig())
	tg.Predict([]string{"x"})
}

func TestPredictSpansDecodable(t *testing.T) {
	_, train, _, pos, _ := setup(t, 80)
	cfg := DefaultConfig()
	cfg.UseKnowledge = false
	cfg.Epochs = 2
	tg := NewTagger(world.DomainNames(), pos, nil, cfg)
	tg.Train(train[:60])
	spans := tg.PredictSpans([]string{"outdoor", "barbecue"})
	for _, sp := range spans {
		if sp.Start < 0 || sp.End > 2 || sp.Start >= sp.End {
			t.Fatalf("bad span %+v", sp)
		}
	}
}

func TestBuildTextMatrix(t *testing.T) {
	corpus := [][]string{{"grill", "for", "barbecue"}, {"grill", "outdoor", "barbecue"}}
	w2vCfg := emb.DefaultW2VConfig()
	w2vCfg.Dim = 8
	w2v := emb.TrainWord2Vec(corpus, w2vCfg)
	tm := BuildTextMatrix(corpus, emb.NewDoc2Vec(w2v), 4)
	if len(tm("grill")) != 8 {
		t.Fatal("tm dim wrong")
	}
	v := tm("unknownword")
	for _, x := range v {
		if x != 0 {
			t.Fatal("unknown word should be zero vector")
		}
	}
}
