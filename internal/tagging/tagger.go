// Package tagging implements e-commerce concept tagging (Section 5.3): the
// text-augmented deep NER model with a fuzzy CRF that links an e-commerce
// concept's words to primitive-concept domains, handling surfaces that
// legitimately belong to several domains ("village" as Location or Style,
// Figure 7). Evaluated as Table 5.
package tagging

import (
	"math/rand"
	"strings"

	"alicoco/internal/mat"
	"alicoco/internal/nn"
	"alicoco/internal/text"
)

// Config controls the model and its Table 5 ablation switches.
type Config struct {
	WordDim, CharDim, CharFilters, POSDim int
	Hidden, AttnDim, TMDim                int
	UseFuzzy, UseKnowledge                bool
	Epochs                                int
	LR                                    float64
	Seed                                  int64
}

// DefaultConfig returns laptop-scale hyperparameters for the full model.
func DefaultConfig() Config {
	return Config{
		WordDim: 20, CharDim: 10, CharFilters: 10, POSDim: 4,
		Hidden: 14, AttnDim: 20, TMDim: 16,
		UseFuzzy: true, UseKnowledge: true,
		Epochs: 8, LR: 0.01, Seed: 31,
	}
}

// Example is one training/evaluation concept: tokens, IOB gold tags, and
// (for fuzzy training) the set of acceptable tags per position derived from
// the lexicon's ambiguity.
type Example struct {
	Tokens  []string
	Gold    []string
	Allowed [][]string // nil means singleton gold
}

// Tagger is the model of Figure 6.
type Tagger struct {
	cfg     Config
	Tags    []string
	tagIdx  map[string]int
	wordVoc *text.Vocab
	charVoc *text.Vocab
	pos     *text.POSTagger
	tm      func(word string) mat.Vec // text-augmented lookup (frozen)

	wordEmb *nn.Embedding
	charEmb *nn.Embedding
	charCNN *nn.Conv1D
	posEmb  *nn.Embedding
	bi      *nn.BiLSTM
	attn    *nn.SelfAttention
	proj    *nn.Dense
	crf     *nn.CRF

	params []*nn.Param
	opt    *nn.Adam
}

// NewTagger builds an untrained tagger over the given domain classes. tm may
// be nil when UseKnowledge is false.
func NewTagger(classes []string, pos *text.POSTagger, tm func(string) mat.Vec, cfg Config) *Tagger {
	tags, tagIdx := text.IOBLabelSet(classes)
	return &Tagger{
		cfg: cfg, Tags: tags, tagIdx: tagIdx,
		wordVoc: text.NewVocab(), charVoc: text.NewVocab(),
		pos: pos, tm: tm,
	}
}

func (t *Tagger) finalize() {
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	t.wordEmb = nn.NewEmbedding("tag.wordEmb", t.wordVoc.Len(), t.cfg.WordDim, rng)
	t.charEmb = nn.NewEmbedding("tag.charEmb", t.charVoc.Len(), t.cfg.CharDim, rng)
	t.charCNN = nn.NewConv1D("tag.charCNN", t.cfg.CharDim, t.cfg.CharFilters, 3, nn.Tanh, rng)
	t.posEmb = nn.NewEmbedding("tag.posEmb", 8, t.cfg.POSDim, rng)
	wordIn := t.cfg.WordDim + t.cfg.CharFilters + t.cfg.POSDim
	t.bi = nn.NewBiLSTM("tag.bi", wordIn, t.cfg.Hidden, rng)
	encDim := 2 * t.cfg.Hidden
	layers := []nn.Layer{t.wordEmb, t.charEmb, t.charCNN, t.posEmb, t.bi}
	if t.cfg.UseKnowledge {
		t.attn = nn.NewSelfAttention("tag.attn", encDim+t.cfg.TMDim, t.cfg.AttnDim, rng)
		layers = append(layers, t.attn)
		encDim = t.cfg.AttnDim
	}
	t.proj = nn.NewDense("tag.proj", encDim, len(t.Tags), nn.Identity, rng)
	t.crf = nn.NewCRF("tag.crf", len(t.Tags), rng)
	layers = append(layers, t.proj, t.crf)
	t.params = nn.CollectParams(layers...)
	t.opt = nn.NewAdam(t.cfg.LR, 5)
}

// forward encodes a concept and returns per-token emissions plus a backward
// closure.
func (t *Tagger) forward(tokens []string) ([]mat.Vec, func([]mat.Vec)) {
	n := len(tokens)
	wordIDs := t.wordVoc.EncodeFixed(tokens)
	posIDs := make([]int, n)
	for i, p := range t.pos.TagSeq(tokens) {
		posIDs[i] = int(p)
	}
	charIDs := make([][]int, n)
	charCaches := make([]*nn.Conv1DCache, n)
	charPools := make([]*nn.MaxPoolCache, n)
	xs := make([]mat.Vec, n)
	for i, tok := range tokens {
		ids := make([]int, 0, len(tok))
		for _, r := range tok {
			ids = append(ids, t.charVoc.ID(string(r)))
		}
		charIDs[i] = ids
		cs := t.charEmb.LookupSeq(ids)
		convOut, cc := t.charCNN.Forward(cs)
		pooled, pc := nn.MaxPool(convOut)
		if pooled == nil {
			pooled = mat.NewVec(t.cfg.CharFilters)
		}
		charCaches[i], charPools[i] = cc, pc
		xs[i] = mat.Concat(t.wordEmb.Lookup(wordIDs[i]), pooled, t.posEmb.Lookup(posIDs[i]))
	}
	hs, biCache := t.bi.Forward(xs)

	var enc []mat.Vec
	var attnCache *nn.AttnCache
	if t.cfg.UseKnowledge {
		aug := make([]mat.Vec, n)
		for i := range hs {
			aug[i] = mat.Concat(hs[i], t.tmVec(tokens[i]))
		}
		enc, attnCache = t.attn.Forward(aug)
	} else {
		enc = hs
	}
	emits := make([]mat.Vec, n)
	dCaches := make([]*nn.DenseCache, n)
	for i, e := range enc {
		emits[i], dCaches[i] = t.proj.Forward(e)
	}

	back := func(dEmit []mat.Vec) {
		dEnc := make([]mat.Vec, n)
		for i := range dEmit {
			dEnc[i] = t.proj.Backward(dEmit[i], dCaches[i])
		}
		var dHs []mat.Vec
		if t.cfg.UseKnowledge {
			dAug := t.attn.Backward(dEnc, attnCache)
			dHs = make([]mat.Vec, n)
			for i := range dAug {
				dHs[i] = mat.Vec(dAug[i][:2*t.cfg.Hidden]).Clone() // tm is frozen
			}
		} else {
			dHs = dEnc
		}
		dXs := t.bi.Backward(dHs, biCache)
		for i, dx := range dXs {
			off := 0
			t.wordEmb.Accumulate(t.wordVoc.ID(tokens[i]), dx[off:off+t.cfg.WordDim])
			off += t.cfg.WordDim
			dPool := mat.Vec(dx[off : off+t.cfg.CharFilters])
			off += t.cfg.CharFilters
			if charPools[i] != nil && len(charIDs[i]) > 0 {
				dConv := nn.MaxPoolBackward(dPool, charPools[i])
				dChars := t.charCNN.Backward(dConv, charCaches[i])
				t.charEmb.AccumulateSeq(charIDs[i], dChars)
			}
			t.posEmb.Accumulate(posIDs[i], dx[off:])
		}
	}
	return emits, back
}

// tmVec returns the text-augmented vector for a word (zero if absent).
func (t *Tagger) tmVec(word string) mat.Vec {
	if t.tm == nil {
		return mat.NewVec(t.cfg.TMDim)
	}
	v := t.tm(word)
	if len(v) != t.cfg.TMDim {
		out := mat.NewVec(t.cfg.TMDim)
		copy(out, v)
		return out
	}
	return v
}

// allowedMask converts an example's allowed tag sets into a CRF mask.
func (t *Tagger) allowedMask(ex Example) [][]bool {
	mask := make([][]bool, len(ex.Tokens))
	for i := range mask {
		mask[i] = make([]bool, len(t.Tags))
		if ex.Allowed != nil && len(ex.Allowed[i]) > 0 {
			for _, tag := range ex.Allowed[i] {
				if k, ok := t.tagIdx[tag]; ok {
					mask[i][k] = true
				}
			}
		} else {
			mask[i][t.tagIdx[ex.Gold[i]]] = true
		}
	}
	return mask
}

// Train fits the tagger. With UseFuzzy it optimizes Equation 8 over the
// allowed sets; otherwise the standard CRF NLL over the (possibly noisy)
// gold path.
func (t *Tagger) Train(examples []Example) float64 {
	for _, ex := range examples {
		t.wordVoc.Encode(ex.Tokens)
		for _, tok := range ex.Tokens {
			for _, r := range tok {
				t.charVoc.Add(string(r))
			}
		}
	}
	t.wordVoc.Freeze()
	t.charVoc.Freeze()
	t.finalize()
	rng := rand.New(rand.NewSource(t.cfg.Seed + 1))
	var last float64
	for epoch := 0; epoch < t.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		var total float64
		for _, pi := range perm {
			ex := examples[pi]
			emits, back := t.forward(ex.Tokens)
			var loss float64
			var dEmit []mat.Vec
			if t.cfg.UseFuzzy {
				loss, dEmit = t.crf.FuzzyLoss(emits, t.allowedMask(ex))
			} else {
				gold := make([]int, len(ex.Gold))
				for i, g := range ex.Gold {
					gold[i] = t.tagIdx[g]
				}
				loss, dEmit = t.crf.Loss(emits, gold)
			}
			total += loss
			back(dEmit)
			t.opt.Step(t.params)
		}
		last = total / float64(len(examples))
	}
	return last
}

// Predict returns IOB tags for a concept phrase.
func (t *Tagger) Predict(tokens []string) []string {
	if t.crf == nil {
		panic("tagging: Predict before Train")
	}
	emits, _ := t.forward(tokens)
	nn.ZeroGrads(t.params)
	path, _ := t.crf.Decode(emits)
	out := make([]string, len(path))
	for i, k := range path {
		out[i] = t.Tags[k]
	}
	return out
}

// PredictSpans decodes and returns labeled spans.
func (t *Tagger) PredictSpans(tokens []string) []text.Span {
	return text.DecodeIOB(t.Predict(tokens))
}

// Name joins tokens for error messages.
func Name(tokens []string) string { return strings.Join(tokens, " ") }
