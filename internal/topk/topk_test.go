package topk

import (
	"math/rand"
	"sort"
	"testing"

	"alicoco/internal/core"
)

// refTopK is the straightforward specification: full sort, take k.
func refTopK(entries []Entry, k int) []Entry {
	out := append([]Entry(nil), entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < 0 {
		k = 0
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestHeapMatchesSortRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Heap
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60)
		k := rng.Intn(8)
		entries := make([]Entry, n)
		for i := range entries {
			// Small score range forces plenty of ties so the ID
			// tie-break is exercised.
			entries[i] = Entry{ID: core.NodeID(rng.Intn(25)), Score: float64(rng.Intn(5))}
		}
		h.Reset(k)
		for _, e := range entries {
			h.Push(e.ID, e.Score)
		}
		got := h.Descending()
		want := refTopK(entries, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): rank %d got %+v want %+v\nall got %v\nwant %v",
					trial, n, k, i, got[i], want[i], got, want)
			}
		}
	}
}

func TestHeapReuseDoesNotAllocate(t *testing.T) {
	var h Heap
	// Warm the buffer to the largest k used below.
	h.Reset(8)
	for i := 0; i < 64; i++ {
		h.Push(core.NodeID(i), float64(i%7))
	}
	h.Descending()
	allocs := testing.AllocsPerRun(100, func() {
		h.Reset(8)
		for i := 0; i < 64; i++ {
			h.Push(core.NodeID(i), float64(i%7))
		}
		h.Descending()
	})
	if allocs != 0 {
		t.Fatalf("reused heap allocated %.1f times per run", allocs)
	}
}

func TestHeapPushAfterDescendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Descending should panic")
		}
	}()
	var h Heap
	h.Reset(2)
	h.Push(1, 1)
	h.Descending()
	h.Push(2, 2)
}
