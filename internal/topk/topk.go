// Package topk provides the bounded top-k selector the serving ranking
// paths share. Ranking a query means keeping the k best of n scored
// candidates; sorting all n is O(n log n) and allocates, while a bounded
// min-heap does O(n log k) comparisons in a reusable buffer — with
// Reset-between-requests it is allocation-free in steady state, which is
// what the zero-allocation query path needs.
package topk

import "alicoco/internal/core"

// Entry is one scored candidate. The final ranking is score descending,
// ties broken by ascending ID, matching the sort order the engines used
// before (deterministic regardless of push order).
type Entry struct {
	ID    core.NodeID
	Score float64
}

// worse reports whether a ranks strictly below b in the final order.
func worse(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Heap selects the k highest-ranked entries pushed into it. The zero value
// is ready after Reset; the internal buffer is reused across Resets, so a
// pooled Heap allocates only until it has seen its largest k.
//
// Internally it is a min-heap on the ranking order: the root is the weakest
// entry currently kept, so each push against a full heap is one comparison
// plus at most log k sift steps.
type Heap struct {
	k       int
	entries []Entry
	sorted  bool
}

// Reset empties the heap and sets its bound. k <= 0 keeps nothing.
func (h *Heap) Reset(k int) {
	h.k = k
	h.entries = h.entries[:0]
	h.sorted = false
}

// Len returns the number of entries currently kept.
func (h *Heap) Len() int { return len(h.entries) }

// Push offers one candidate. It never allocates once the buffer has grown
// to k entries.
func (h *Heap) Push(id core.NodeID, score float64) {
	if h.sorted {
		panic("topk: Push after Descending without Reset")
	}
	if h.k <= 0 {
		return
	}
	e := Entry{ID: id, Score: score}
	if len(h.entries) < h.k {
		h.entries = append(h.entries, e)
		h.up(len(h.entries) - 1)
		return
	}
	if !worse(h.entries[0], e) { // not strictly better than the weakest kept
		return
	}
	h.entries[0] = e
	h.down(0, len(h.entries))
}

// Descending finalizes the selection and returns the kept entries ranked
// best-first. The returned slice aliases the heap's buffer and is valid
// until the next Reset; the heap accepts no further pushes until then.
func (h *Heap) Descending() []Entry {
	if !h.sorted {
		// Heapsort in place: repeatedly move the weakest (root) to the
		// shrinking tail, leaving the array best-first.
		for end := len(h.entries) - 1; end > 0; end-- {
			h.entries[0], h.entries[end] = h.entries[end], h.entries[0]
			h.down(0, end)
		}
		h.sorted = true
	}
	return h.entries
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.entries[i], h.entries[parent]) {
			return
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *Heap) down(i, n int) {
	for {
		least := i
		if l := 2*i + 1; l < n && worse(h.entries[l], h.entries[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && worse(h.entries[r], h.entries[least]) {
			least = r
		}
		if least == i {
			return
		}
		h.entries[i], h.entries[least] = h.entries[least], h.entries[i]
		i = least
	}
}
