package text

import (
	"math"
	"strings"
)

// NGramLM is a trigram language model with Jelinek-Mercer interpolation. It
// stands in for the BERT model the paper trains on e-commerce corpus to
// score the fluency (perplexity) of candidate concepts (Section 5.2.2): a
// phrase whose word order never occurs in the corpus gets high perplexity.
type NGramLM struct {
	uni        map[string]float64
	bi         map[string]float64
	tri        map[string]float64
	biCtx      map[string]float64
	triCtx     map[string]float64
	total      float64
	vocabSize  float64
	L1, L2, L3 float64 // interpolation weights, sum to 1
}

// Sentence boundary markers.
const (
	bos = "<s>"
	eos = "</s>"
)

// NewNGramLM returns an untrained trigram LM with default interpolation
// weights favouring higher orders.
func NewNGramLM() *NGramLM {
	return &NGramLM{
		uni: make(map[string]float64), bi: make(map[string]float64), tri: make(map[string]float64),
		biCtx: make(map[string]float64), triCtx: make(map[string]float64),
		L1: 0.1, L2: 0.3, L3: 0.6,
	}
}

// Train accumulates counts from a corpus of tokenized sentences. It may be
// called repeatedly.
func (lm *NGramLM) Train(corpus [][]string) {
	for _, sent := range corpus {
		toks := make([]string, 0, len(sent)+3)
		toks = append(toks, bos, bos)
		toks = append(toks, sent...)
		toks = append(toks, eos)
		for i := 2; i < len(toks); i++ {
			w := toks[i]
			lm.uni[w]++
			lm.total++
			big := toks[i-1] + " " + w
			lm.bi[big]++
			lm.biCtx[toks[i-1]]++
			trig := toks[i-2] + " " + toks[i-1] + " " + w
			lm.tri[trig]++
			lm.triCtx[toks[i-2]+" "+toks[i-1]]++
		}
	}
	lm.vocabSize = float64(len(lm.uni)) + 1
}

// prob returns the interpolated probability of w given the two preceding
// tokens.
func (lm *NGramLM) prob(w2, w1, w string) float64 {
	// Unigram with add-one smoothing so unseen words keep nonzero mass.
	p1 := (lm.uni[w] + 1) / (lm.total + lm.vocabSize)
	p2 := 0.0
	if c := lm.biCtx[w1]; c > 0 {
		p2 = lm.bi[w1+" "+w] / c
	}
	p3 := 0.0
	if c := lm.triCtx[w2+" "+w1]; c > 0 {
		p3 = lm.tri[w2+" "+w1+" "+w] / c
	}
	return lm.L1*p1 + lm.L2*p2 + lm.L3*p3
}

// LogProb returns the total log-probability of the token sequence.
func (lm *NGramLM) LogProb(tokens []string) float64 {
	toks := make([]string, 0, len(tokens)+3)
	toks = append(toks, bos, bos)
	toks = append(toks, tokens...)
	toks = append(toks, eos)
	var lp float64
	for i := 2; i < len(toks); i++ {
		lp += math.Log(lm.prob(toks[i-2], toks[i-1], toks[i]))
	}
	return lp
}

// Perplexity returns exp(-logprob/len) over the sequence including the
// end-of-sentence event. Lower means more fluent in-domain text.
func (lm *NGramLM) Perplexity(tokens []string) float64 {
	n := float64(len(tokens) + 1)
	return math.Exp(-lm.LogProb(tokens) / n)
}

// WordFrequency returns the relative corpus frequency of w — the
// "popularity" wide feature of Section 5.2.2.
func (lm *NGramLM) WordFrequency(w string) float64 {
	if lm.total == 0 {
		return 0
	}
	return lm.uni[strings.ToLower(w)] / lm.total
}
