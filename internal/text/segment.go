package text

import (
	"slices"
	"strings"
	"sync"
)

// Segmenter performs maximum-matching segmentation of a token stream against
// a lexicon of known (possibly multi-token) phrases. The paper uses exactly
// this dynamic program to distantly label training sentences with existing
// primitive concepts (Section 7.2): segments that match the lexicon receive
// the concept's domain label, everything else is O, and sentences whose
// matching is ambiguous are discarded. At serving time the same program
// backs the search engine's primitive matching, so the DP runs on pooled
// scratch there (SegmentInto) instead of allocating per query.
type Segmenter struct {
	// phrases maps the space-joined phrase to the set of labels it can
	// carry (a surface form may belong to several domains, which is what
	// makes a sentence ambiguous).
	phrases map[string][]string
	// stopwords are function/template words allowed to stay unlabeled (O)
	// in a perfectly matched sentence.
	stopwords map[string]bool
	maxLen    int
	pool      sync.Pool // *segScratch
}

// segScratch is the per-call working memory of one SegmentInto: the DP
// table and the byte buffer phrase keys are joined into. Recycled through
// the segmenter's pool so steady-state queries allocate nothing.
type segScratch struct {
	dp  []segState
	key []byte
}

// segState is one DP cell: the best (matched tokens, -segments) for a
// prefix, plus the backpointer (length of the last segment).
type segState struct {
	matched, segs int
	prevLen       int
	isMatch       bool
}

// NewSegmenter returns an empty segmenter.
func NewSegmenter() *Segmenter {
	s := &Segmenter{phrases: make(map[string][]string), stopwords: make(map[string]bool)}
	s.pool.New = func() any { return &segScratch{} }
	return s
}

// AddStopwords registers function words that may remain unlabeled in a
// perfectly matched sentence.
func (s *Segmenter) AddStopwords(words ...string) {
	for _, w := range words {
		s.stopwords[w] = true
	}
}

// AddPhrase registers a phrase (already tokenized, space-joined internally)
// under a label. Duplicate labels for a phrase are ignored.
func (s *Segmenter) AddPhrase(tokens []string, label string) {
	key := strings.Join(tokens, " ")
	for _, l := range s.phrases[key] {
		if l == label {
			return
		}
	}
	s.phrases[key] = append(s.phrases[key], label)
	if len(tokens) > s.maxLen {
		s.maxLen = len(tokens)
	}
}

// Len returns the number of distinct phrases.
func (s *Segmenter) Len() int { return len(s.phrases) }

// Segment is one unit of a segmentation: a token range plus the candidate
// labels from the lexicon (empty for out-of-lexicon single tokens).
type Segment struct {
	Start, End int
	Labels     []string
}

// MaxMatch segments tokens greedily longest-match-first via dynamic
// programming: among segmentations that maximize total matched tokens it
// prefers fewer segments. Unmatched positions become single-token segments
// with no labels. The returned segments own fresh Labels copies; hot
// callers should reuse a buffer through SegmentInto instead.
func (s *Segmenter) MaxMatch(tokens []string) []Segment {
	segs := s.SegmentInto(nil, tokens)
	for i := range segs {
		if segs[i].Labels != nil {
			segs[i].Labels = append([]string(nil), segs[i].Labels...)
		}
	}
	return segs
}

// SegmentInto is MaxMatch appending into a caller-owned buffer: the DP
// table and the phrase-key join buffer come from a pooled scratch, phrase
// lookups go through the allocation-free map[string(bytes)] form, and the
// Labels of matched segments are shared read-only views into the lexicon
// (callers must not modify them — MaxMatch returns copies instead). With a
// reused dst, steady-state segmentation performs zero allocations, which
// is what keeps the search engine's voting path allocation-free.
func (s *Segmenter) SegmentInto(dst []Segment, tokens []string) []Segment {
	return segmentInto(s, dst, tokens)
}

// SegmentBytesInto is SegmentInto for byte-slice tokens (the bytes query
// pipeline); same contract, same DP, same shared-Labels caveat.
func (s *Segmenter) SegmentBytesInto(dst []Segment, tokens [][]byte) []Segment {
	return segmentInto(s, dst, tokens)
}

// segmentInto is the shared DP; methods cannot be generic, so the string
// and bytes entry points delegate here.
func segmentInto[T string | []byte](s *Segmenter, dst []Segment, tokens []T) []Segment {
	n := len(tokens)
	if n == 0 {
		return dst
	}
	sc := s.pool.Get().(*segScratch)
	defer s.pool.Put(sc)
	sc.dp = slices.Grow(sc.dp[:0], n+1)[:n+1]
	dp := sc.dp
	dp[0] = segState{}
	for i := 1; i <= n; i++ {
		// Default: single unmatched token.
		best := segState{matched: dp[i-1].matched, segs: dp[i-1].segs + 1, prevLen: 1, isMatch: false}
		maxL := s.maxLen
		if maxL > i {
			maxL = i
		}
		for l := 1; l <= maxL; l++ {
			sc.key = appendJoin(sc.key[:0], tokens[i-l:i])
			if _, ok := s.phrases[string(sc.key)]; !ok { // alloc-free map key form
				continue
			}
			cand := segState{matched: dp[i-l].matched + l, segs: dp[i-l].segs + 1, prevLen: l, isMatch: true}
			if cand.matched > best.matched || (cand.matched == best.matched && cand.segs < best.segs) {
				best = cand
			}
		}
		dp[i] = best
	}
	// Reconstruct back-to-front directly into dst: dp[n].segs is the exact
	// segment count, so the tail of dst is sized once and filled in place.
	base := len(dst)
	dst = slices.Grow(dst, dp[n].segs)[:base+dp[n].segs]
	idx := len(dst) - 1
	for i := n; i > 0; idx-- {
		st := dp[i]
		seg := Segment{Start: i - st.prevLen, End: i}
		if st.isMatch {
			sc.key = appendJoin(sc.key[:0], tokens[seg.Start:seg.End])
			seg.Labels = s.phrases[string(sc.key)] // shared read-only view
		}
		dst[idx] = seg
		i -= st.prevLen
	}
	return dst
}

// AppendJoin writes tokens space-separated into dst — the allocation-free
// form of strings.Join(tokens, " ") the serving paths key lexicon and
// name-index lookups with.
func AppendJoin(dst []byte, tokens []string) []byte {
	return appendJoin(dst, tokens)
}

// AppendJoinBytes is AppendJoin for byte-slice tokens.
func AppendJoinBytes(dst []byte, tokens [][]byte) []byte {
	return appendJoin(dst, tokens)
}

func appendJoin[T string | []byte](dst []byte, tokens []T) []byte {
	for i, tok := range tokens {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, tok...)
	}
	return dst
}

// DistantLabel converts a max-match segmentation into IOB tags. Following
// Section 7.2, only perfectly matched sentences qualify: every token is
// covered by exactly one concept label or is a registered stopword (tagged
// O). Sentences with ambiguous matches (a segment carrying two labels) or
// with unknown words are rejected.
func (s *Segmenter) DistantLabel(tokens []string) ([]string, bool) {
	segs := s.MaxMatch(tokens)
	anyMatch := false
	var spans []Span
	for _, seg := range segs {
		switch len(seg.Labels) {
		case 0:
			if seg.End-seg.Start == 1 && s.stopwords[tokens[seg.Start]] {
				continue // function word, stays O
			}
			return nil, false // unknown word: not a perfect match
		case 1:
			anyMatch = true
			spans = append(spans, Span{Start: seg.Start, End: seg.End, Label: seg.Labels[0]})
		default:
			return nil, false // ambiguous
		}
	}
	if !anyMatch {
		return nil, false
	}
	return EncodeIOB(len(tokens), spans), true
}
