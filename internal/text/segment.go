package text

import "strings"

// Segmenter performs maximum-matching segmentation of a token stream against
// a lexicon of known (possibly multi-token) phrases. The paper uses exactly
// this dynamic program to distantly label training sentences with existing
// primitive concepts (Section 7.2): segments that match the lexicon receive
// the concept's domain label, everything else is O, and sentences whose
// matching is ambiguous are discarded.
type Segmenter struct {
	// phrases maps the space-joined phrase to the set of labels it can
	// carry (a surface form may belong to several domains, which is what
	// makes a sentence ambiguous).
	phrases map[string][]string
	// stopwords are function/template words allowed to stay unlabeled (O)
	// in a perfectly matched sentence.
	stopwords map[string]bool
	maxLen    int
}

// NewSegmenter returns an empty segmenter.
func NewSegmenter() *Segmenter {
	return &Segmenter{phrases: make(map[string][]string), stopwords: make(map[string]bool)}
}

// AddStopwords registers function words that may remain unlabeled in a
// perfectly matched sentence.
func (s *Segmenter) AddStopwords(words ...string) {
	for _, w := range words {
		s.stopwords[w] = true
	}
}

// AddPhrase registers a phrase (already tokenized, space-joined internally)
// under a label. Duplicate labels for a phrase are ignored.
func (s *Segmenter) AddPhrase(tokens []string, label string) {
	key := strings.Join(tokens, " ")
	for _, l := range s.phrases[key] {
		if l == label {
			return
		}
	}
	s.phrases[key] = append(s.phrases[key], label)
	if len(tokens) > s.maxLen {
		s.maxLen = len(tokens)
	}
}

// Len returns the number of distinct phrases.
func (s *Segmenter) Len() int { return len(s.phrases) }

// Segment is one unit of a segmentation: a token range plus the candidate
// labels from the lexicon (empty for out-of-lexicon single tokens).
type Segment struct {
	Start, End int
	Labels     []string
}

// MaxMatch segments tokens greedily longest-match-first via dynamic
// programming: among segmentations that maximize total matched tokens it
// prefers fewer segments. Unmatched positions become single-token segments
// with no labels.
func (s *Segmenter) MaxMatch(tokens []string) []Segment {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	// dp[i] = (matched tokens, -segments) best for prefix of length i.
	type state struct {
		matched, segs int
		prevLen       int // length of last segment
		isMatch       bool
	}
	dp := make([]state, n+1)
	for i := 1; i <= n; i++ {
		// Default: single unmatched token.
		best := state{matched: dp[i-1].matched, segs: dp[i-1].segs + 1, prevLen: 1, isMatch: false}
		maxL := s.maxLen
		if maxL > i {
			maxL = i
		}
		for l := 1; l <= maxL; l++ {
			key := strings.Join(tokens[i-l:i], " ")
			if _, ok := s.phrases[key]; !ok {
				continue
			}
			cand := state{matched: dp[i-l].matched + l, segs: dp[i-l].segs + 1, prevLen: l, isMatch: true}
			if cand.matched > best.matched || (cand.matched == best.matched && cand.segs < best.segs) {
				best = cand
			}
		}
		dp[i] = best
	}
	// Reconstruct.
	var rev []Segment
	for i := n; i > 0; {
		st := dp[i]
		seg := Segment{Start: i - st.prevLen, End: i}
		if st.isMatch {
			key := strings.Join(tokens[seg.Start:seg.End], " ")
			seg.Labels = append([]string(nil), s.phrases[key]...)
		}
		rev = append(rev, seg)
		i -= st.prevLen
	}
	out := make([]Segment, len(rev))
	for i, seg := range rev {
		out[len(rev)-1-i] = seg
	}
	return out
}

// DistantLabel converts a max-match segmentation into IOB tags. Following
// Section 7.2, only perfectly matched sentences qualify: every token is
// covered by exactly one concept label or is a registered stopword (tagged
// O). Sentences with ambiguous matches (a segment carrying two labels) or
// with unknown words are rejected.
func (s *Segmenter) DistantLabel(tokens []string) ([]string, bool) {
	segs := s.MaxMatch(tokens)
	anyMatch := false
	var spans []Span
	for _, seg := range segs {
		switch len(seg.Labels) {
		case 0:
			if seg.End-seg.Start == 1 && s.stopwords[tokens[seg.Start]] {
				continue // function word, stays O
			}
			return nil, false // unknown word: not a perfect match
		case 1:
			anyMatch = true
			spans = append(spans, Span{Start: seg.Start, End: seg.End, Label: seg.Labels[0]})
		default:
			return nil, false // ambiguous
		}
	}
	if !anyMatch {
		return nil, false
	}
	return EncodeIOB(len(tokens), spans), true
}
