// Package text provides the text-processing substrate for the AliCoCo
// reproduction: tokenization, vocabularies, IOB span encoding, the
// max-matching segmenter used for distant supervision (Section 7.2), an
// interpolated n-gram language model standing in for the paper's BERT
// perplexity feature (Section 5.2.2), and a lexicon-driven part-of-speech
// tagger standing in for the Stanford tagger (Section 5.3).
package text

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize lower-cases s and splits it on whitespace. The synthetic corpus
// is generated pre-normalized, so no further normalization is needed.
func Tokenize(s string) []string {
	return AppendTokens(nil, s)
}

// AppendTokens is Tokenize into a caller-owned buffer: tokens are appended
// to dst as substrings of the lower-cased input. For input that is already
// lower-case (the serving steady state — strings.ToLower returns its
// argument unchanged then) a caller reusing dst pays zero allocations.
func AppendTokens(dst []string, s string) []string {
	s = strings.ToLower(s)
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// AppendLower lower-cases s into dst, producing exactly the bytes
// strings.ToLower would: each rune maps through unicode.ToLower, and an
// invalid UTF-8 byte becomes U+FFFD. It is the entry point of the bytes
// query pipeline — request bytes flow to the engines through reused
// buffers without ever materializing a string.
func AppendLower(dst, s []byte) []byte {
	for i := 0; i < len(s); {
		// ASCII fast path (the common case for queries): a single byte
		// lower-cases without a rune decode, exactly as strings.ToLower's
		// own ASCII loop does.
		if c := s[i]; c < utf8.RuneSelf {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
			i++
			continue
		}
		r, size := utf8.DecodeRune(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = utf8.AppendRune(dst, utf8.RuneError)
		} else {
			dst = utf8.AppendRune(dst, unicode.ToLower(r))
		}
		i += size
	}
	return dst
}

// AppendTokensBytes splits an already lower-cased byte query (see
// AppendLower) on Unicode whitespace, appending subslices of s to dst —
// the bytes form of AppendTokens, splitting at exactly the same
// boundaries.
func AppendTokensBytes(dst [][]byte, s []byte) [][]byte {
	start := -1
	for i := 0; i < len(s); {
		// ASCII fast path mirroring AppendLower's: single-byte runes
		// split on the ASCII whitespace set without a rune decode
		// (unicode.IsSpace on an ASCII rune tests exactly these bytes).
		if c := s[i]; c < utf8.RuneSelf {
			if c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
				if start >= 0 {
					dst = append(dst, s[start:i])
					start = -1
				}
			} else if start < 0 {
				start = i
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(s[i:])
		if unicode.IsSpace(r) {
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
		i += size
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// Reserved vocabulary ids.
const (
	PadID = 0
	UnkID = 1
)

// Vocab maps words to dense integer ids. Id 0 is padding and id 1 the
// unknown token.
type Vocab struct {
	byWord map[string]int
	words  []string
	frozen bool
}

// NewVocab returns a vocabulary containing only the reserved tokens.
func NewVocab() *Vocab {
	v := &Vocab{byWord: make(map[string]int)}
	v.Add("<pad>")
	v.Add("<unk>")
	return v
}

// Add inserts w if absent and returns its id. On a frozen vocabulary,
// unknown words map to UnkID.
func (v *Vocab) Add(w string) int {
	if id, ok := v.byWord[w]; ok {
		return id
	}
	if v.frozen {
		return UnkID
	}
	id := len(v.words)
	v.byWord[w] = id
	v.words = append(v.words, w)
	return id
}

// Freeze stops the vocabulary from growing; unseen words become <unk>.
func (v *Vocab) Freeze() { v.frozen = true }

// ID returns the id of w, or UnkID if unseen.
func (v *Vocab) ID(w string) int {
	if id, ok := v.byWord[w]; ok {
		return id
	}
	return UnkID
}

// Has reports whether w is in the vocabulary.
func (v *Vocab) Has(w string) bool {
	_, ok := v.byWord[w]
	return ok
}

// Word returns the word for id, or "<unk>" for out-of-range ids.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return "<unk>"
	}
	return v.words[id]
}

// Len returns the vocabulary size including reserved tokens.
func (v *Vocab) Len() int { return len(v.words) }

// Encode maps tokens to ids, adding unseen tokens unless frozen.
func (v *Vocab) Encode(tokens []string) []int {
	ids := make([]int, len(tokens))
	for i, t := range tokens {
		ids[i] = v.Add(t)
	}
	return ids
}

// EncodeFixed maps tokens to ids without ever growing the vocabulary.
func (v *Vocab) EncodeFixed(tokens []string) []int {
	ids := make([]int, len(tokens))
	for i, t := range tokens {
		ids[i] = v.ID(t)
	}
	return ids
}

// Words returns a copy of all vocabulary words in id order.
func (v *Vocab) Words() []string {
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// Span is a labeled token range [Start, End) within a sentence.
type Span struct {
	Start, End int
	Label      string
}

// EncodeIOB renders spans over a sentence of n tokens as IOB tags
// ("B-Label", "I-Label", "O"). Overlapping spans are resolved first-wins in
// sorted order.
func EncodeIOB(n int, spans []Span) []string {
	tags := make([]string, n)
	for i := range tags {
		tags[i] = "O"
	}
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for _, sp := range sorted {
		if sp.Start < 0 || sp.End > n || sp.Start >= sp.End {
			continue
		}
		conflict := false
		for i := sp.Start; i < sp.End; i++ {
			if tags[i] != "O" {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		tags[sp.Start] = "B-" + sp.Label
		for i := sp.Start + 1; i < sp.End; i++ {
			tags[i] = "I-" + sp.Label
		}
	}
	return tags
}

// DecodeIOB extracts spans from IOB tags, tolerating I- tags that start a
// span (treated as B-).
func DecodeIOB(tags []string) []Span {
	var spans []Span
	var cur *Span
	flush := func() {
		if cur != nil {
			spans = append(spans, *cur)
			cur = nil
		}
	}
	for i, tag := range tags {
		switch {
		case tag == "O" || tag == "":
			flush()
		case strings.HasPrefix(tag, "B-"):
			flush()
			cur = &Span{Start: i, End: i + 1, Label: tag[2:]}
		case strings.HasPrefix(tag, "I-"):
			label := tag[2:]
			if cur != nil && cur.Label == label && cur.End == i {
				cur.End = i + 1
			} else {
				flush()
				cur = &Span{Start: i, End: i + 1, Label: label}
			}
		default:
			flush()
		}
	}
	flush()
	return spans
}

// IOBLabelSet builds the tag inventory ("O", "B-X", "I-X" for each class) in
// a deterministic order and returns the tag list plus a tag->index map.
func IOBLabelSet(classes []string) ([]string, map[string]int) {
	sorted := append([]string(nil), classes...)
	sort.Strings(sorted)
	tags := []string{"O"}
	for _, c := range sorted {
		tags = append(tags, "B-"+c, "I-"+c)
	}
	idx := make(map[string]int, len(tags))
	for i, t := range tags {
		idx[t] = i
	}
	return tags, idx
}
