package text

// POS is a coarse part-of-speech tag. The paper feeds POS-tag embeddings to
// both the concept classifier (Section 5.2.2) and the tagging model
// (Section 5.3); we reproduce that feature with a lexicon-driven tagger over
// the synthetic world's vocabulary.
type POS int

// Coarse tag inventory.
const (
	PosOther POS = iota
	PosNoun
	PosAdj
	PosVerb
	PosPrep
	PosNum
	NumPOS // count of tags
)

// String returns the conventional abbreviation for the tag.
func (p POS) String() string {
	switch p {
	case PosNoun:
		return "NOUN"
	case PosAdj:
		return "ADJ"
	case PosVerb:
		return "VERB"
	case PosPrep:
		return "PREP"
	case PosNum:
		return "NUM"
	default:
		return "OTHER"
	}
}

// POSTagger assigns coarse tags from a lexicon with closed-class and
// morphological fallbacks.
type POSTagger struct {
	lexicon map[string]POS
}

// NewPOSTagger returns a tagger seeded with English closed-class words.
func NewPOSTagger() *POSTagger {
	t := &POSTagger{lexicon: make(map[string]POS)}
	for _, w := range []string{"for", "in", "on", "at", "with", "from", "of", "to", "under", "over"} {
		t.lexicon[w] = PosPrep
	}
	return t
}

// Learn records the tag for a word; later entries do not override earlier
// ones so closed-class words stay stable.
func (t *POSTagger) Learn(word string, pos POS) {
	if _, ok := t.lexicon[word]; !ok {
		t.lexicon[word] = pos
	}
}

// Tag returns the tag for a single word.
func (t *POSTagger) Tag(word string) POS {
	if p, ok := t.lexicon[word]; ok {
		return p
	}
	if len(word) > 0 && word[0] >= '0' && word[0] <= '9' {
		return PosNum
	}
	// Morphological heuristics mirroring how a trained tagger backs off.
	switch {
	case hasSuffix(word, "ing"), hasSuffix(word, "ed"):
		return PosVerb
	case hasSuffix(word, "y"), hasSuffix(word, "ful"), hasSuffix(word, "ish"), hasSuffix(word, "al"):
		return PosAdj
	default:
		return PosNoun
	}
}

// TagSeq tags every token of a sentence.
func (t *POSTagger) TagSeq(tokens []string) []POS {
	out := make([]POS, len(tokens))
	for i, w := range tokens {
		out[i] = t.Tag(w)
	}
	return out
}

func hasSuffix(w, suf string) bool {
	return len(w) > len(suf)+1 && w[len(w)-len(suf):] == suf
}
