package text

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"alicoco/internal/raceflag"
)

// randomLexicon builds a segmenter over phrases drawn from a small token
// alphabet, so random sentences hit overlapping multi-token phrases often.
func randomLexicon(rng *rand.Rand) (*Segmenter, []string) {
	alphabet := make([]string, 12)
	for i := range alphabet {
		alphabet[i] = fmt.Sprintf("w%d", i)
	}
	s := NewSegmenter()
	for i := 0; i < 30; i++ {
		l := 1 + rng.Intn(3)
		phrase := make([]string, l)
		for j := range phrase {
			phrase[j] = alphabet[rng.Intn(len(alphabet))]
		}
		labels := []string{"prim", "ecpt", "brand"}
		s.AddPhrase(phrase, labels[rng.Intn(len(labels))])
		if rng.Intn(4) == 0 { // some phrases carry a second label
			s.AddPhrase(phrase, labels[rng.Intn(len(labels))])
		}
	}
	return s, alphabet
}

func segsEqual(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || len(a[i].Labels) != len(b[i].Labels) {
			return false
		}
		for j := range a[i].Labels {
			if a[i].Labels[j] != b[i].Labels[j] {
				return false
			}
		}
	}
	return true
}

// TestSegmentIntoMatchesMaxMatch replays a randomized sentence stream
// through one reused buffer and compares every segmentation (boundaries
// and labels) against a fresh MaxMatch call — the equivalence leg of the
// pooled-DP-scratch change. Run under -race it also proves concurrent
// SegmentInto calls never share scratch state.
func TestSegmentIntoMatchesMaxMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		s, alphabet := randomLexicon(rng)
		var reused []Segment
		for sent := 0; sent < 50; sent++ {
			tokens := make([]string, rng.Intn(12))
			for i := range tokens {
				tokens[i] = alphabet[rng.Intn(len(alphabet))]
			}
			reused = s.SegmentInto(reused[:0], tokens)
			fresh := s.MaxMatch(tokens)
			if !segsEqual(reused, fresh) {
				t.Fatalf("trial %d sentence %d %v:\nSegmentInto %+v\nMaxMatch    %+v",
					trial, sent, tokens, reused, fresh)
			}
			// Coverage invariant: segments tile [0, len(tokens)).
			pos := 0
			for _, seg := range reused {
				if seg.Start != pos || seg.End <= seg.Start {
					t.Fatalf("segments do not tile %v: %+v", tokens, reused)
				}
				pos = seg.End
			}
			if pos != len(tokens) {
				t.Fatalf("segments do not cover %v: %+v", tokens, reused)
			}
		}
	}
}

// TestSegmentIntoConcurrent hammers one segmenter from several goroutines
// with per-goroutine buffers; -race proves the pooled DP scratches never
// leak between in-flight calls.
func TestSegmentIntoConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, alphabet := randomLexicon(rng)
	sentences := make([][]string, 16)
	want := make([][]Segment, len(sentences))
	for i := range sentences {
		tokens := make([]string, 1+rng.Intn(10))
		for j := range tokens {
			tokens[j] = alphabet[rng.Intn(len(alphabet))]
		}
		sentences[i] = tokens
		want[i] = s.MaxMatch(tokens)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []Segment
			for i := 0; i < 300; i++ {
				si := (g + i) % len(sentences)
				buf = s.SegmentInto(buf[:0], sentences[si])
				if !segsEqual(buf, want[si]) {
					t.Errorf("goroutine %d: segmentation of %v drifted", g, sentences[si])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSegmentIntoAppends: SegmentInto appends after existing elements like
// the append builtin, so callers can accumulate segmentations.
func TestSegmentIntoAppends(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"outdoor", "barbecue"}, "ecpt")
	first := s.SegmentInto(nil, []string{"outdoor", "barbecue"})
	both := s.SegmentInto(first, []string{"grill"})
	if len(both) != 2 || both[0].End != 2 || both[1].Start != 0 || both[1].End != 1 {
		t.Fatalf("append semantics broken: %+v", both)
	}
}

// TestSegmentIntoZeroAllocs is the CI guard: segmentation through a reused
// buffer on a warmed segmenter performs zero allocations per call, which
// is what extends the serving path's 0 allocs/op property to non-exact
// (voting) queries.
func TestSegmentIntoZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race (sync.Pool drops items)")
	}
	s := NewSegmenter()
	s.AddPhrase([]string{"outdoor", "barbecue"}, "ecpt")
	s.AddPhrase([]string{"barbecue"}, "prim")
	s.AddPhrase([]string{"winter", "coat"}, "ecpt")
	tokens := []string{"winter", "coat", "for", "outdoor", "barbecue"}
	var buf []Segment
	buf = s.SegmentInto(buf[:0], tokens) // warm the pooled scratch and dst
	if len(buf) == 0 {
		t.Fatal("no segments")
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = s.SegmentInto(buf[:0], tokens)
	})
	if allocs != 0 {
		t.Fatalf("SegmentInto allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkSegmentInto measures the pooled-scratch DP against the
// allocating MaxMatch on a serving-shaped query (recorded by
// scripts/bench.sh in BENCH_core.json).
func BenchmarkSegmentInto(b *testing.B) {
	s := NewSegmenter()
	s.AddPhrase([]string{"outdoor", "barbecue"}, "ecpt")
	s.AddPhrase([]string{"barbecue"}, "prim")
	s.AddPhrase([]string{"grill"}, "prim")
	s.AddPhrase([]string{"winter", "coat"}, "ecpt")
	s.AddPhrase([]string{"coat"}, "prim")
	tokens := []string{"winter", "coat", "outdoor", "barbecue", "grill"}
	b.Run("into", func(b *testing.B) {
		var buf []Segment
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = s.SegmentInto(buf[:0], tokens)
		}
	})
	b.Run("maxmatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.MaxMatch(tokens)
		}
	})
}
