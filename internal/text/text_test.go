package text

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("  Warm  Hat for TRAVELING ")
	want := []string{"warm", "hat", "for", "traveling"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize: got %v", got)
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("Tokenize empty should be empty")
	}
}

func TestVocabBasics(t *testing.T) {
	v := NewVocab()
	if v.Len() != 2 {
		t.Fatalf("fresh vocab should hold pad+unk, got %d", v.Len())
	}
	id := v.Add("grill")
	if id != 2 {
		t.Fatalf("first word id: got %d", id)
	}
	if v.Add("grill") != id {
		t.Fatal("Add should be idempotent")
	}
	if v.ID("nope") != UnkID {
		t.Fatal("unseen word should map to unk")
	}
	if v.Word(id) != "grill" {
		t.Fatal("Word roundtrip failed")
	}
	if v.Word(9999) != "<unk>" {
		t.Fatal("out-of-range Word should be <unk>")
	}
}

func TestVocabFreeze(t *testing.T) {
	v := NewVocab()
	v.Add("a")
	v.Freeze()
	if v.Add("b") != UnkID {
		t.Fatal("frozen vocab must map new words to unk")
	}
	ids := v.EncodeFixed([]string{"a", "b"})
	if ids[0] == UnkID || ids[1] != UnkID {
		t.Fatalf("EncodeFixed: got %v", ids)
	}
}

func TestVocabEncodeGrows(t *testing.T) {
	v := NewVocab()
	ids := v.Encode([]string{"x", "y", "x"})
	if ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("Encode: got %v", ids)
	}
	if v.Len() != 4 {
		t.Fatalf("vocab size after encode: got %d", v.Len())
	}
}

func TestIOBRoundTrip(t *testing.T) {
	spans := []Span{{Start: 0, End: 2, Label: "Category"}, {Start: 3, End: 4, Label: "Event"}}
	tags := EncodeIOB(5, spans)
	want := []string{"B-Category", "I-Category", "O", "B-Event", "O"}
	if !reflect.DeepEqual(tags, want) {
		t.Fatalf("EncodeIOB: got %v", tags)
	}
	back := DecodeIOB(tags)
	if !reflect.DeepEqual(back, spans) {
		t.Fatalf("DecodeIOB: got %v", back)
	}
}

func TestIOBOverlapResolution(t *testing.T) {
	tags := EncodeIOB(3, []Span{{0, 2, "A"}, {1, 3, "B"}})
	if tags[0] != "B-A" || tags[1] != "I-A" || tags[2] != "O" {
		t.Fatalf("overlap: got %v", tags)
	}
}

func TestIOBInvalidSpansIgnored(t *testing.T) {
	tags := EncodeIOB(2, []Span{{-1, 1, "A"}, {0, 5, "B"}, {1, 1, "C"}})
	for _, tag := range tags {
		if tag != "O" {
			t.Fatalf("invalid spans should be dropped: %v", tags)
		}
	}
}

func TestDecodeIOBToleratesOrphanI(t *testing.T) {
	spans := DecodeIOB([]string{"I-X", "I-X", "O", "I-Y"})
	if len(spans) != 2 || spans[0].Label != "X" || spans[0].End != 2 || spans[1].Label != "Y" {
		t.Fatalf("orphan-I decode: got %v", spans)
	}
}

func TestDecodeIOBLabelChange(t *testing.T) {
	spans := DecodeIOB([]string{"B-X", "I-Y"})
	if len(spans) != 2 {
		t.Fatalf("label change should split spans: got %v", spans)
	}
}

func TestIOBLabelSet(t *testing.T) {
	tags, idx := IOBLabelSet([]string{"B", "A"})
	want := []string{"O", "B-A", "I-A", "B-B", "I-B"}
	if !reflect.DeepEqual(tags, want) {
		t.Fatalf("IOBLabelSet: got %v", tags)
	}
	if idx["I-B"] != 4 {
		t.Fatalf("index: got %d", idx["I-B"])
	}
}

// Property: EncodeIOB/DecodeIOB round-trips any set of disjoint spans.
func TestPropertyIOBRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		var spans []Span
		pos := 0
		labels := []string{"A", "B", "C"}
		for pos < n {
			l := 1 + rng.Intn(3)
			if pos+l > n {
				l = n - pos
			}
			if rng.Float64() < 0.6 {
				spans = append(spans, Span{Start: pos, End: pos + l, Label: labels[rng.Intn(3)]})
			}
			pos += l + rng.Intn(2)
		}
		tags := EncodeIOB(n, spans)
		back := DecodeIOB(tags)
		if len(back) != len(spans) {
			return false
		}
		for i := range back {
			if back[i] != spans[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bytes query pipeline is byte-for-byte the string pipeline.
// AppendLower must produce exactly strings.ToLower's output and
// AppendTokensBytes must split at exactly AppendTokens' boundaries, for
// inputs mixing ASCII, multi-byte runes, non-ASCII whitespace (NEL, NBSP,
// ideographic space — all unicode.IsSpace, none on the ASCII fast path),
// and invalid UTF-8.
func TestPropertyBytesPipelineMatchesStrings(t *testing.T) {
	alphabet := []string{
		"a", "Z", "q", "M", "7", "-",
		" ", "\t", "\n", "\v", "\f", "\r",
		"É", "ß", "Ω", "控", "制", "🎛",
		"", " ", "　", // NEL, NBSP, ideographic space
		"\xff", "\xc3", "\xe4\xb8", // invalid / truncated UTF-8
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for n := rng.Intn(24); n > 0; n-- {
			sb.WriteString(alphabet[rng.Intn(len(alphabet))])
		}
		s := sb.String()

		if got, want := string(AppendLower(nil, []byte(s))), strings.ToLower(s); got != want {
			t.Logf("AppendLower(%q) = %q, want %q", s, got, want)
			return false
		}
		lowered := strings.ToLower(s)
		var gotToks []string
		for _, tok := range AppendTokensBytes(nil, []byte(lowered)) {
			gotToks = append(gotToks, string(tok))
		}
		wantToks := AppendTokens(nil, s)
		if len(gotToks) != len(wantToks) {
			t.Logf("token count for %q: got %v want %v", s, gotToks, wantToks)
			return false
		}
		for i := range gotToks {
			if gotToks[i] != wantToks[i] {
				t.Logf("token %d for %q: got %q want %q", i, s, gotToks[i], wantToks[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmenterMaxMatch(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"outdoor", "barbecue"}, "Event")
	s.AddPhrase([]string{"outdoor"}, "Location")
	s.AddPhrase([]string{"grill"}, "Category")
	segs := s.MaxMatch([]string{"outdoor", "barbecue", "grill", "fun"})
	if len(segs) != 3 {
		t.Fatalf("segments: got %v", segs)
	}
	if segs[0].End != 2 || segs[0].Labels[0] != "Event" {
		t.Fatalf("longest match should win: %v", segs[0])
	}
	if segs[1].Labels[0] != "Category" {
		t.Fatalf("second segment: %v", segs[1])
	}
	if segs[2].Labels != nil {
		t.Fatalf("unmatched token should have no labels: %v", segs[2])
	}
}

func TestSegmenterEmptyInput(t *testing.T) {
	s := NewSegmenter()
	if s.MaxMatch(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestDistantLabelPerfectMatch(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"warm", "hat"}, "Category")
	s.AddPhrase([]string{"traveling"}, "Event")
	s.AddStopwords("for")
	tags, ok := s.DistantLabel([]string{"warm", "hat", "for", "traveling"})
	if !ok {
		t.Fatal("expected a perfect match")
	}
	want := []string{"B-Category", "I-Category", "O", "B-Event"}
	if !reflect.DeepEqual(tags, want) {
		t.Fatalf("DistantLabel: got %v", tags)
	}
}

func TestDistantLabelRejectsUnknownWord(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"hat"}, "Category")
	if _, ok := s.DistantLabel([]string{"zzz", "hat"}); ok {
		t.Fatal("sentence with unknown non-stopword must be rejected")
	}
	s.AddStopwords("zzz")
	if _, ok := s.DistantLabel([]string{"zzz", "hat"}); !ok {
		t.Fatal("stopword should be tolerated as O")
	}
}

func TestDistantLabelRejectsAmbiguity(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"village"}, "Location")
	s.AddPhrase([]string{"village"}, "Style")
	if _, ok := s.DistantLabel([]string{"village", "skirt"}); ok {
		t.Fatal("ambiguous sentence must be rejected")
	}
}

func TestDistantLabelRejectsNoMatch(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"hat"}, "Category")
	if _, ok := s.DistantLabel([]string{"zzz", "qqq"}); ok {
		t.Fatal("sentence without matches must be rejected")
	}
}

func TestSegmenterDuplicateLabelIgnored(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"hat"}, "Category")
	s.AddPhrase([]string{"hat"}, "Category")
	segs := s.MaxMatch([]string{"hat"})
	if len(segs[0].Labels) != 1 {
		t.Fatalf("duplicate label should be ignored: %v", segs[0].Labels)
	}
}

func TestNGramLMFluency(t *testing.T) {
	lm := NewNGramLM()
	corpus := [][]string{}
	for i := 0; i < 50; i++ {
		corpus = append(corpus, []string{"warm", "hat", "for", "winter"})
		corpus = append(corpus, []string{"red", "dress", "for", "party"})
	}
	lm.Train(corpus)
	fluent := lm.Perplexity([]string{"warm", "hat", "for", "winter"})
	scrambled := lm.Perplexity([]string{"winter", "for", "hat", "warm"})
	unseen := lm.Perplexity([]string{"zzz", "qqq"})
	if fluent >= scrambled {
		t.Fatalf("fluent %v should beat scrambled %v", fluent, scrambled)
	}
	if fluent >= unseen {
		t.Fatalf("fluent %v should beat unseen %v", fluent, unseen)
	}
}

func TestNGramLMWordFrequency(t *testing.T) {
	lm := NewNGramLM()
	lm.Train([][]string{{"a", "a", "b"}})
	if lm.WordFrequency("a") <= lm.WordFrequency("b") {
		t.Fatal("frequency ordering wrong")
	}
	if lm.WordFrequency("zzz") != 0 {
		t.Fatal("unseen word frequency should be 0")
	}
	empty := NewNGramLM()
	if empty.WordFrequency("a") != 0 {
		t.Fatal("untrained LM frequency should be 0")
	}
}

func TestNGramLMProbSumsToOne(t *testing.T) {
	lm := NewNGramLM()
	lm.Train([][]string{{"a", "b"}, {"b", "a"}, {"a", "a"}})
	// Sum of interpolated probabilities over the vocab + eos should be ~1
	// in any context when all unigram mass is covered.
	words := []string{"a", "b", eos}
	var sum float64
	for _, w := range words {
		sum += lm.prob("a", "b", w)
	}
	// add-one smoothing reserves some mass for unseen events, so the sum
	// over seen events must be < 1 but close.
	if sum <= 0.5 || sum > 1.0001 {
		t.Fatalf("probability mass looks wrong: %v", sum)
	}
}

func TestPOSTagger(t *testing.T) {
	tg := NewPOSTagger()
	tg.Learn("hat", PosNoun)
	tg.Learn("warm", PosAdj)
	if tg.Tag("hat") != PosNoun || tg.Tag("warm") != PosAdj {
		t.Fatal("lexicon tags wrong")
	}
	if tg.Tag("for") != PosPrep {
		t.Fatal("closed-class preposition wrong")
	}
	if tg.Tag("traveling") != PosVerb {
		t.Fatal("morphology -ing should be verb")
	}
	if tg.Tag("3pack") != PosNum {
		t.Fatal("digit-initial should be num")
	}
	if tg.Tag("gadget") != PosNoun {
		t.Fatal("default should be noun")
	}
	seq := tg.TagSeq([]string{"warm", "hat"})
	if seq[0] != PosAdj || seq[1] != PosNoun {
		t.Fatalf("TagSeq: got %v", seq)
	}
}

func TestPOSLearnDoesNotOverride(t *testing.T) {
	tg := NewPOSTagger()
	tg.Learn("for", PosNoun)
	if tg.Tag("for") != PosPrep {
		t.Fatal("Learn must not override closed-class entries")
	}
}

func TestPOSStrings(t *testing.T) {
	names := map[POS]string{PosNoun: "NOUN", PosAdj: "ADJ", PosVerb: "VERB", PosPrep: "PREP", PosNum: "NUM", PosOther: "OTHER"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("POS(%d).String: got %s want %s", p, p.String(), want)
		}
	}
}

func TestSegmenterPrefersFewerSegments(t *testing.T) {
	s := NewSegmenter()
	s.AddPhrase([]string{"a", "b", "c"}, "X")
	s.AddPhrase([]string{"a"}, "Y")
	s.AddPhrase([]string{"b"}, "Y")
	s.AddPhrase([]string{"c"}, "Y")
	segs := s.MaxMatch([]string{"a", "b", "c"})
	if len(segs) != 1 || !strings.Contains(strings.Join(segs[0].Labels, ","), "X") {
		t.Fatalf("should prefer single long match: %v", segs)
	}
}
