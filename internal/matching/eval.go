package matching

import (
	"math/rand"
	"sort"

	"alicoco/internal/emb"
	"alicoco/internal/mat"
	"alicoco/internal/metrics"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

// BuildPairs materializes the matching dataset of Section 7.6 from the
// world's ground truth: positive pairs from frame-item association (the
// stand-in for strong rules + click logs), negatives by random mismatch.
func BuildPairs(w *world.World, nPos, nNeg int) []Pair {
	raw := w.MatchingPairs(nPos, nNeg)
	out := make([]Pair, 0, len(raw))
	for _, mp := range raw {
		f := w.Frames[mp.Frame]
		item := w.Items[mp.Item]
		out = append(out, Pair{
			Concept: append([]string(nil), f.Tokens...),
			Title:   append([]string(nil), item.Title...),
			Label:   mp.Label,
			FrameID: mp.Frame,
			ItemID:  mp.Item,
		})
	}
	return out
}

// SplitPairs shuffles deterministically and splits train/test.
func SplitPairs(pairs []Pair, trainFrac float64, seed int64) (train, test []Pair) {
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]Pair(nil), pairs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	split := int(float64(len(shuffled)) * trainFrac)
	return shuffled[:split], shuffled[split:]
}

// Result bundles the Table 6 metrics.
type Result struct {
	Model string
	AUC   float64
	F1    float64
	P10   float64
}

// Evaluate computes AUC and F1 (threshold 0.5) over test pairs plus P@10
// per concept group (concepts with at least 10 candidates).
func Evaluate(m Matcher, test []Pair) Result {
	scores := make([]float64, len(test))
	labels := make([]bool, len(test))
	var conf metrics.Confusion
	groups := make(map[int][]int)
	for i, p := range test {
		scores[i] = m.Score(p.Concept, p.Title)
		labels[i] = p.Label
		conf.Add(scores[i] >= 0.5, p.Label)
		groups[p.FrameID] = append(groups[p.FrameID], i)
	}
	var rankings []metrics.Ranking
	frameIDs := make([]int, 0, len(groups))
	for fid := range groups {
		frameIDs = append(frameIDs, fid)
	}
	sort.Ints(frameIDs)
	for _, fid := range frameIDs {
		idx := groups[fid]
		if len(idx) < 10 {
			continue
		}
		hasPos := false
		for _, i := range idx {
			if labels[i] {
				hasPos = true
				break
			}
		}
		if !hasPos {
			continue
		}
		sortPairsByScore(idx, scores)
		rel := make([]bool, len(idx))
		for rank, i := range idx {
			rel[rank] = labels[i]
		}
		rankings = append(rankings, metrics.Ranking{Relevant: rel})
	}
	return Result{
		Model: m.Name(),
		AUC:   metrics.AUC(scores, labels),
		F1:    conf.F1(),
		P10:   metrics.MeanPrecisionAt(rankings, 10),
	}
}

// Group is one concept's candidate list for P@10 evaluation.
type Group struct {
	Concept []string
	Items   []Pair // mixed positives and negatives for this concept
}

// BuildGroupedEval constructs the Table 6 P@10 protocol of Section 7.6: for
// each sampled concept, a candidate set with its true items plus random
// negatives, labeled by ground truth.
func BuildGroupedEval(w *world.World, nFrames, candsPerFrame int, seed int64) []Group {
	rng := rand.New(rand.NewSource(seed))
	frameIdx := rng.Perm(len(w.Frames))
	var groups []Group
	for _, fi := range frameIdx {
		if len(groups) >= nFrames {
			break
		}
		f := w.Frames[fi]
		assoc := w.FrameItems(f)
		if len(assoc) < 5 {
			continue
		}
		g := Group{Concept: append([]string(nil), f.Tokens...)}
		rng.Shuffle(len(assoc), func(i, j int) { assoc[i], assoc[j] = assoc[j], assoc[i] })
		nPos := candsPerFrame / 2
		if nPos > len(assoc) {
			nPos = len(assoc)
		}
		inGroup := make(map[int]bool)
		for _, itemID := range assoc[:nPos] {
			g.Items = append(g.Items, Pair{Concept: g.Concept, Title: w.Items[itemID].Title, Label: true, FrameID: f.ID, ItemID: itemID})
			inGroup[itemID] = true
		}
		assocSet := make(map[int]bool)
		for _, id := range assoc {
			assocSet[id] = true
		}
		for len(g.Items) < candsPerFrame {
			item := w.Items[rng.Intn(len(w.Items))]
			if assocSet[item.ID] || inGroup[item.ID] {
				continue
			}
			inGroup[item.ID] = true
			g.Items = append(g.Items, Pair{Concept: g.Concept, Title: item.Title, Label: false, FrameID: f.ID, ItemID: item.ID})
		}
		// Shuffle so score ties cannot leak construction order.
		rng.Shuffle(len(g.Items), func(i, j int) { g.Items[i], g.Items[j] = g.Items[j], g.Items[i] })
		groups = append(groups, g)
	}
	return groups
}

// EvaluateGrouped computes mean P@10 over explicit candidate groups.
func EvaluateGrouped(m Matcher, groups []Group) float64 {
	var rankings []metrics.Ranking
	for _, g := range groups {
		scores := make([]float64, len(g.Items))
		labels := make([]bool, len(g.Items))
		for i, p := range g.Items {
			scores[i] = m.Score(p.Concept, p.Title)
			labels[i] = p.Label
		}
		rankings = append(rankings, metrics.RankScores(scores, labels))
	}
	return metrics.MeanPrecisionAt(rankings, 10)
}

// BM25Score adapts BM25 (raw scores) for AUC/F1 comparison: F1 needs a
// threshold, so scores are squashed by score/(score+1).
type BM25Squashed struct{ *BM25 }

// Score implements Matcher with scores in (0,1).
func (b BM25Squashed) Score(concept, title []string) float64 {
	s := b.BM25.Score(concept, title)
	return s / (s + 1)
}

// KnowledgeFn builds the gloss-sequence function for KADSM from the world's
// glossary: concept tokens are max-matched against primitive surfaces and
// each matched primitive contributes its gloss vector.
func KnowledgeFn(w *world.World, glossary *emb.Glossary) func([]string) []mat.Vec {
	seg := text.NewSegmenter()
	for _, p := range w.Primitives {
		seg.AddPhrase(p.Tokens, "x")
	}
	return func(concept []string) []mat.Vec {
		var out []mat.Vec
		for _, s := range seg.MaxMatch(concept) {
			if len(s.Labels) == 0 {
				continue
			}
			surface := joinRange(concept, s.Start, s.End)
			if ids := w.BySurface[surface]; len(ids) > 0 {
				out = append(out, glossary.Vec(ids[0]))
			}
		}
		return out
	}
}

func joinRange(tokens []string, start, end int) string {
	out := ""
	for i := start; i < end; i++ {
		if i > start {
			out += " "
		}
		out += tokens[i]
	}
	return out
}
