package matching

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"alicoco/internal/mat"
	"alicoco/internal/nn"
)

// Pair is one labeled (concept phrase, item title) example.
type Pair struct {
	Concept []string
	Title   []string
	Label   bool
	// FrameID / ItemID are kept for grouped evaluation (P@10 per concept).
	FrameID, ItemID int
}

// Matcher scores concept-item pairs.
type Matcher interface {
	Name() string
	Train(pairs []Pair)
	Score(concept, title []string) float64
}

// ---------------------------------------------------------------- BM25 ----

// BM25 is the lexical baseline of Table 6: the concept is the query, the
// item title the document.
type BM25 struct {
	K1, B  float64
	idf    map[string]float64
	avgLen float64
}

// NewBM25 returns a BM25 matcher with the usual parameters.
func NewBM25() *BM25 { return &BM25{K1: 1.2, B: 0.75} }

// Name implements Matcher.
func (b *BM25) Name() string { return "BM25" }

// Train computes document statistics over the training titles.
func (b *BM25) Train(pairs []Pair) {
	df := make(map[string]int)
	docs := 0
	var totalLen float64
	seen := make(map[string]bool)
	for _, p := range pairs {
		key := strings.Join(p.Title, " ")
		if seen[key] {
			continue
		}
		seen[key] = true
		docs++
		totalLen += float64(len(p.Title))
		uniq := make(map[string]bool)
		for _, w := range p.Title {
			uniq[w] = true
		}
		for w := range uniq {
			df[w]++
		}
	}
	b.idf = make(map[string]float64, len(df))
	for w, d := range df {
		b.idf[w] = math.Log(1 + (float64(docs)-float64(d)+0.5)/(float64(d)+0.5))
	}
	if docs > 0 {
		b.avgLen = totalLen / float64(docs)
	}
}

// Score implements Matcher.
func (b *BM25) Score(concept, title []string) float64 {
	tf := make(map[string]float64)
	for _, w := range title {
		tf[w]++
	}
	var s float64
	dl := float64(len(title))
	for _, q := range concept {
		f := tf[q]
		if f == 0 {
			continue
		}
		idf := b.idf[q]
		if idf == 0 {
			idf = 0.1
		}
		denom := f + b.K1*(1-b.B+b.B*dl/math.Max(b.avgLen, 1))
		s += idf * f * (b.K1 + 1) / denom
	}
	return s
}

// ---------------------------------------------------------------- DSSM ----

// DSSM is the two-tower deep structured semantic model baseline: each side
// is a bag-of-embeddings passed through dense layers; the score is the
// scaled cosine of the tower outputs.
type DSSM struct {
	embed  func(string) mat.Vec
	dim    int
	towerA *nn.Dense
	towerB *nn.Dense
	outA   *nn.Dense
	outB   *nn.Dense
	scaleW *nn.Param
	params []*nn.Param
	opt    *nn.Adam
	cfg    TrainConfig
}

// TrainConfig controls deep matcher training.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultTrainConfig returns settings shared by the deep matchers.
func DefaultTrainConfig() TrainConfig { return TrainConfig{Epochs: 3, LR: 0.01, Seed: 41} }

// NewDSSM builds the model over frozen embeddings of dimension dim.
func NewDSSM(embed func(string) mat.Vec, dim int, cfg TrainConfig) *DSSM {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &DSSM{embed: embed, dim: dim, cfg: cfg}
	hidden := 24
	d.towerA = nn.NewDense("dssm.a1", dim, hidden, nn.Tanh, rng)
	d.outA = nn.NewDense("dssm.a2", hidden, 16, nn.Tanh, rng)
	d.towerB = nn.NewDense("dssm.b1", dim, hidden, nn.Tanh, rng)
	d.outB = nn.NewDense("dssm.b2", hidden, 16, nn.Tanh, rng)
	d.scaleW = nn.NewParam("dssm.scale", 1, 1)
	d.scaleW.W.Data[0] = 5
	d.params = append(nn.CollectParams(d.towerA, d.outA, d.towerB, d.outB), d.scaleW)
	d.opt = nn.NewAdam(cfg.LR, 5)
	return d
}

// Name implements Matcher.
func (d *DSSM) Name() string { return "DSSM" }

func (d *DSSM) bag(tokens []string) mat.Vec {
	out := mat.NewVec(d.dim)
	for _, w := range tokens {
		out.Add(d.embed(w))
	}
	if len(tokens) > 0 {
		out.Scale(1 / float64(len(tokens)))
	}
	return out
}

// forward returns the score and backward closure for one pair.
func (d *DSSM) forward(concept, title []string) (float64, func(dLogit float64)) {
	xa, xb := d.bag(concept), d.bag(title)
	h1, c1 := d.towerA.Forward(xa)
	va, c2 := d.outA.Forward(h1)
	h2, c3 := d.towerB.Forward(xb)
	vb, c4 := d.outB.Forward(h2)
	na, nb := va.Norm(), vb.Norm()
	cos := 0.0
	if na > 0 && nb > 0 {
		cos = va.Dot(vb) / (na * nb)
	}
	scale := d.scaleW.W.Data[0]
	score := mat.Sigmoid(scale * cos)
	back := func(dLogit float64) {
		d.scaleW.G.Data[0] += dLogit * cos
		dcos := dLogit * scale
		if na > 0 && nb > 0 {
			dva := make(mat.Vec, len(va))
			dvb := make(mat.Vec, len(vb))
			for i := range va {
				dva[i] = dcos * (vb[i]/(na*nb) - cos*va[i]/(na*na))
				dvb[i] = dcos * (va[i]/(na*nb) - cos*vb[i]/(nb*nb))
			}
			dh1 := d.outA.Backward(dva, c2)
			d.towerA.Backward(dh1, c1)
			dh2 := d.outB.Backward(dvb, c4)
			d.towerB.Backward(dh2, c3)
		}
	}
	return score, back
}

// Train implements Matcher.
func (d *DSSM) Train(pairs []Pair) { trainLogistic(d.forward, d.params, d.opt, pairs, d.cfg) }

// Score implements Matcher.
func (d *DSSM) Score(concept, title []string) float64 {
	s, _ := d.forward(concept, title)
	nn.ZeroGrads(d.params)
	return s
}

// trainLogistic is the shared point-wise BCE training loop.
func trainLogistic(forward func(c, t []string) (float64, func(float64)), params []*nn.Param, opt *nn.Adam, pairs []Pair, cfg TrainConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(pairs))
		for _, pi := range perm {
			p := pairs[pi]
			score, back := forward(p.Concept, p.Title)
			y := 0.0
			if p.Label {
				y = 1
			}
			back(score - y)
			opt.Step(params)
		}
	}
}

// -------------------------------------------------------- MatchPyramid ----

// MatchPyramid pools the word-word similarity matrix into a fixed grid and
// classifies it with an MLP (Pang et al., simplified to adaptive pooling).
type MatchPyramid struct {
	embed  func(string) mat.Vec
	dim    int
	rows   int
	cols   int
	h1, h2 *nn.Dense
	params []*nn.Param
	opt    *nn.Adam
	cfg    TrainConfig
}

// NewMatchPyramid builds the model over frozen embeddings.
func NewMatchPyramid(embed func(string) mat.Vec, dim int, cfg TrainConfig) *MatchPyramid {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := &MatchPyramid{embed: embed, dim: dim, rows: 3, cols: 3, cfg: cfg}
	m.h1 = nn.NewDense("mp.h1", m.rows*m.cols, 16, nn.Tanh, rng)
	m.h2 = nn.NewDense("mp.h2", 16, 1, nn.Identity, rng)
	m.params = nn.CollectParams(m.h1, m.h2)
	m.opt = nn.NewAdam(cfg.LR, 5)
	return m
}

// Name implements Matcher.
func (m *MatchPyramid) Name() string { return "MatchPyramid" }

func (m *MatchPyramid) forward(concept, title []string) (float64, func(float64)) {
	a := embedSeq(m.embed, concept)
	b := embedSeq(m.embed, title)
	feats, _ := gridPool(a, b, m.rows, m.cols)
	h, c1 := m.h1.Forward(feats)
	logit, c2 := m.h2.Forward(h)
	score := mat.Sigmoid(logit[0])
	back := func(dLogit float64) {
		dh := m.h2.Backward(mat.Vec{dLogit}, c2)
		m.h1.Backward(dh, c1) // embeddings frozen: grid grads not propagated
	}
	return score, back
}

// Train implements Matcher.
func (m *MatchPyramid) Train(pairs []Pair) { trainLogistic(m.forward, m.params, m.opt, pairs, m.cfg) }

// Score implements Matcher.
func (m *MatchPyramid) Score(concept, title []string) float64 {
	s, _ := m.forward(concept, title)
	nn.ZeroGrads(m.params)
	return s
}

func embedSeq(embed func(string) mat.Vec, tokens []string) []mat.Vec {
	out := make([]mat.Vec, len(tokens))
	for i, w := range tokens {
		out[i] = embed(w)
	}
	return out
}

// ----------------------------------------------------------------- RE2 ----

// RE2 is the alignment-and-fusion baseline (Yang et al., simplified): each
// side is aligned onto the other, fused as [x; aligned; x−aligned; x⊙aligned]
// through a dense layer, max-pooled, and classified.
type RE2 struct {
	embed  func(string) mat.Vec
	dim    int
	fuse   *nn.Dense
	h1, h2 *nn.Dense
	params []*nn.Param
	opt    *nn.Adam
	cfg    TrainConfig
}

// NewRE2 builds the model over frozen embeddings.
func NewRE2(embed func(string) mat.Vec, dim int, cfg TrainConfig) *RE2 {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	r := &RE2{embed: embed, dim: dim, cfg: cfg}
	fdim := 16
	r.fuse = nn.NewDense("re2.fuse", 4*dim, fdim, nn.Tanh, rng)
	r.h1 = nn.NewDense("re2.h1", 2*fdim, 16, nn.Tanh, rng)
	r.h2 = nn.NewDense("re2.h2", 16, 1, nn.Identity, rng)
	r.params = nn.CollectParams(r.fuse, r.h1, r.h2)
	r.opt = nn.NewAdam(cfg.LR, 5)
	return r
}

// Name implements Matcher.
func (r *RE2) Name() string { return "RE2" }

// sideEncode aligns a onto b and fuse-pools, returning the pooled vector and
// backward closure for the fuse layer (embeddings frozen).
func (r *RE2) sideEncode(a, b []mat.Vec) (mat.Vec, func(dPool mat.Vec)) {
	aligned, _ := alignOnto(a, b)
	fused := make([]mat.Vec, len(a))
	caches := make([]*nn.DenseCache, len(a))
	for i := range a {
		diff := a[i].Clone()
		diff.AddScaled(-1, aligned[i])
		prod := a[i].Clone()
		prod.Hadamard(aligned[i])
		in := mat.Concat(a[i], aligned[i], diff, prod)
		fused[i], caches[i] = r.fuse.Forward(in)
	}
	pooled, pc := nn.MaxPool(fused)
	if pooled == nil {
		pooled = mat.NewVec(r.fuse.Out)
	}
	back := func(dPool mat.Vec) {
		if pc == nil || len(fused) == 0 {
			return
		}
		dFused := nn.MaxPoolBackward(dPool, pc)
		for i := range dFused {
			r.fuse.Backward(dFused[i], caches[i])
		}
	}
	return pooled, back
}

func (r *RE2) forward(concept, title []string) (float64, func(float64)) {
	a := embedSeq(r.embed, concept)
	b := embedSeq(r.embed, title)
	pa, backA := r.sideEncode(a, b)
	pb, backB := r.sideEncode(b, a)
	h, c1 := r.h1.Forward(mat.Concat(pa, pb))
	logit, c2 := r.h2.Forward(h)
	score := mat.Sigmoid(logit[0])
	back := func(dLogit float64) {
		dh := r.h2.Backward(mat.Vec{dLogit}, c2)
		dcat := r.h1.Backward(dh, c1)
		backA(mat.Vec(dcat[:len(pa)]))
		backB(mat.Vec(dcat[len(pa):]))
	}
	return score, back
}

// Train implements Matcher.
func (r *RE2) Train(pairs []Pair) { trainLogistic(r.forward, r.params, r.opt, pairs, r.cfg) }

// Score implements Matcher.
func (r *RE2) Score(concept, title []string) float64 {
	s, _ := r.forward(concept, title)
	nn.ZeroGrads(r.params)
	return s
}

// sortPairsByScore is a helper for grouped evaluation.
func sortPairsByScore(idx []int, scores []float64) {
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
}
