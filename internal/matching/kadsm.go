package matching

import (
	"math/rand"

	"alicoco/internal/mat"
	"alicoco/internal/nn"
)

// KADSM is "ours": the knowledge-aware deep semantic matching model of
// Figure 8. Both sides are encoded with wide CNNs, pooled through two-way
// attention, combined with a matching-pyramid grid over the encoded
// sequences, and classified by an MLP. With Knowledge enabled, the concept
// side is extended with the gloss vectors of its linked primitive concepts —
// the bridge that fixes semantic-drift pairs (Mid-Autumn Festival → moon
// cakes).
type KADSM struct {
	embed      func(string) mat.Vec
	knowledge  func(concept []string) []mat.Vec // nil disables the knowledge sequence
	dim        int
	rows, cols int

	convA, convB *nn.Conv1D
	gridFC       *nn.Dense
	h1, h2       *nn.Dense
	params       []*nn.Param
	opt          *nn.Adam
	cfg          TrainConfig
}

// NewKADSM builds the model. knowledge may be nil (the "Ours" row of
// Table 6); non-nil enables the "Ours + Knowledge" row.
func NewKADSM(embed func(string) mat.Vec, knowledge func([]string) []mat.Vec, dim int, cfg TrainConfig) *KADSM {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	k := &KADSM{embed: embed, knowledge: knowledge, dim: dim, rows: 4, cols: 4, cfg: cfg}
	enc := 24
	k.convA = nn.NewConv1D("kadsm.convA", dim, enc, 1, nn.Tanh, rng)
	k.convB = nn.NewConv1D("kadsm.convB", dim, enc, 1, nn.Tanh, rng)
	k.gridFC = nn.NewDense("kadsm.grid", 2*k.rows*k.cols, 12, nn.Tanh, rng)
	k.h1 = nn.NewDense("kadsm.h1", enc+enc+12+2*dim, 24, nn.Tanh, rng)
	k.h2 = nn.NewDense("kadsm.h2", 24, 1, nn.Identity, rng)
	k.params = nn.CollectParams(k.convA, k.convB, k.gridFC, k.h1, k.h2)
	k.opt = nn.NewAdam(cfg.LR, 5)
	return k
}

// Name implements Matcher.
func (k *KADSM) Name() string {
	if k.knowledge != nil {
		return "Ours+Knowledge"
	}
	return "Ours"
}

func (k *KADSM) forward(concept, title []string) (float64, func(float64)) {
	a := embedSeq(k.embed, concept)
	if k.knowledge != nil {
		a = append(a, k.knowledge(concept)...)
	}
	b := embedSeq(k.embed, title)
	if len(a) == 0 {
		a = zeroSeq(1, k.dim)
	}
	if len(b) == 0 {
		b = zeroSeq(1, k.dim)
	}
	aEnc, aCache := k.convA.Forward(a)
	bEnc, bCache := k.convB.Forward(b)

	c, _, backC := attnPool(aEnc, bEnc)
	iv, _, backI := attnPool(bEnc, aEnc)
	// Frozen-feature attention pools over the raw sequences give the head
	// immediately informative inputs while the CNNs train.
	cRaw, _, _ := attnPool(a, b)
	ivRaw, _, _ := attnPool(b, a)
	// Two matching-pyramid layers (Equation 16's K layers): one over the
	// raw embedding+knowledge sequences, one over the CNN encodings.
	gridRaw, _ := gridPool(a, b, k.rows, k.cols) // inputs frozen
	gridEnc, backG := gridPool(aEnc, bEnc, k.rows, k.cols)
	gf, gfCache := k.gridFC.Forward(mat.Concat(gridRaw, gridEnc))

	h, c1 := k.h1.Forward(mat.Concat(c, iv, gf, cRaw, ivRaw))
	logit, c2 := k.h2.Forward(h)
	score := mat.Sigmoid(logit[0])

	back := func(dLogit float64) {
		dh := k.h2.Backward(mat.Vec{dLogit}, c2)
		dcat := k.h1.Backward(dh, c1)
		enc := len(c)
		dc := mat.Vec(dcat[:enc])
		di := mat.Vec(dcat[enc : 2*enc])
		dgf := mat.Vec(dcat[2*enc : 2*enc+len(gf)])

		dA := zeroSeq(len(aEnc), enc)
		dB := zeroSeq(len(bEnc), enc)
		backC(dc, dA, dB)
		backI(di, dB, dA) // note swapped roles
		dGrid := k.gridFC.Backward(dgf, gfCache)
		backG(mat.Vec(dGrid[k.rows*k.cols:]), dA, dB) // raw-grid half hits frozen inputs

		k.convA.Backward(dA, aCache)
		k.convB.Backward(dB, bCache)
	}
	return score, back
}

// Train implements Matcher.
func (k *KADSM) Train(pairs []Pair) { trainLogistic(k.forward, k.params, k.opt, pairs, k.cfg) }

// Score implements Matcher.
func (k *KADSM) Score(concept, title []string) float64 {
	s, _ := k.forward(concept, title)
	nn.ZeroGrads(k.params)
	return s
}
