package matching

import (
	"math"
	"math/rand"
	"testing"

	"alicoco/internal/emb"
	"alicoco/internal/mat"
	"alicoco/internal/world"
)

func randSeq(rng *rand.Rand, n, dim int) []mat.Vec {
	out := make([]mat.Vec, n)
	for i := range out {
		out[i] = make(mat.Vec, dim)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// Finite-difference check for attnPool's input gradients.
func TestAttnPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randSeq(rng, 3, 4)
	b := randSeq(rng, 2, 4)
	loss := func() float64 {
		c, _, _ := attnPool(a, b)
		var l float64
		for _, x := range c {
			l += 0.5 * x * x
		}
		return l
	}
	c, _, back := attnPool(a, b)
	dA := zeroSeq(len(a), 4)
	dB := zeroSeq(len(b), 4)
	back(c.Clone(), dA, dB)
	eps := 1e-6
	checkSeqGrad(t, "A", a, dA, loss, eps)
	checkSeqGrad(t, "B", b, dB, loss, eps)
}

func TestAlignOntoGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSeq(rng, 3, 4)
	b := randSeq(rng, 2, 4)
	loss := func() float64 {
		out, _ := alignOnto(a, b)
		var l float64
		for _, v := range out {
			for _, x := range v {
				l += 0.5 * x * x
			}
		}
		return l
	}
	out, back := alignOnto(a, b)
	dAligned := make([]mat.Vec, len(out))
	for i := range out {
		dAligned[i] = out[i].Clone()
	}
	dA := zeroSeq(len(a), 4)
	dB := zeroSeq(len(b), 4)
	back(dAligned, dA, dB)
	eps := 1e-6
	checkSeqGrad(t, "A", a, dA, loss, eps)
	checkSeqGrad(t, "B", b, dB, loss, eps)
}

func TestGridPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSeq(rng, 4, 3)
	b := randSeq(rng, 5, 3)
	loss := func() float64 {
		f, _ := gridPool(a, b, 2, 2)
		var l float64
		for _, x := range f {
			l += 0.5 * x * x
		}
		return l
	}
	f, back := gridPool(a, b, 2, 2)
	dA := zeroSeq(len(a), 3)
	dB := zeroSeq(len(b), 3)
	back(f.Clone(), dA, dB)
	checkSeqGrad(t, "A", a, dA, loss, 1e-6)
	checkSeqGrad(t, "B", b, dB, loss, 1e-6)
}

func checkSeqGrad(t *testing.T, name string, xs []mat.Vec, dxs []mat.Vec, loss func() float64, eps float64) {
	t.Helper()
	for i := range xs {
		for j := range xs[i] {
			orig := xs[i][j]
			xs[i][j] = orig + eps
			lp := loss()
			xs[i][j] = orig - eps
			lm := loss()
			xs[i][j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dxs[i][j]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad (%d,%d): analytic %v numeric %v", name, i, j, dxs[i][j], num)
			}
		}
	}
}

func TestAttnPoolEmptyInputs(t *testing.T) {
	c, _, back := attnPool(nil, nil)
	back(c, nil, nil) // must not panic
	a := randSeq(rand.New(rand.NewSource(4)), 2, 3)
	c2, _, _ := attnPool(a, nil)
	if len(c2) != 3 {
		t.Fatalf("empty-B pool dim: %d", len(c2))
	}
}

func TestBM25RanksLexicalOverlap(t *testing.T) {
	b := NewBM25()
	b.Train([]Pair{
		{Title: []string{"red", "grill", "steel"}},
		{Title: []string{"silk", "dress", "elegant"}},
		{Title: []string{"blue", "tent", "camping"}},
	})
	match := b.Score([]string{"grill"}, []string{"red", "grill", "steel"})
	miss := b.Score([]string{"grill"}, []string{"silk", "dress", "elegant"})
	if match <= miss {
		t.Fatalf("BM25 should reward overlap: %v vs %v", match, miss)
	}
}

// fixture: tiny world, pairs, embeddings.
type fix struct {
	w           *world.World
	train, test []Pair
	embed       func(string) mat.Vec
	dim         int
	knowledge   func([]string) []mat.Vec
}

func buildFix(t *testing.T) *fix {
	t.Helper()
	w := world.New(world.TinyConfig())
	pairs := BuildPairs(w, 600, 600)
	train, test := SplitPairs(pairs, 0.8, 9)
	corpus := w.GenCorpus(1500, 1500, 1500).All()
	cfg := emb.DefaultW2VConfig()
	cfg.Dim = 32
	cfg.Epochs = 10
	w2v := emb.TrainWord2Vec(corpus, cfg)
	glossary := emb.BuildGlossary(w.Glosses, emb.NewDoc2Vec(w2v))
	return &fix{
		w: w, train: train, test: test,
		embed: w2v.Vec, dim: 32,
		knowledge: KnowledgeFn(w, glossary),
	}
}

func TestDeepMatchersBeatChance(t *testing.T) {
	f := buildFix(t)
	tc := DefaultTrainConfig()
	tc.Epochs = 4
	models := []Matcher{
		NewDSSM(f.embed, f.dim, tc),
		NewMatchPyramid(f.embed, f.dim, tc),
		NewRE2(f.embed, f.dim, tc),
		NewKADSM(f.embed, nil, f.dim, tc),
		NewKADSM(f.embed, f.knowledge, f.dim, tc),
	}
	for _, m := range models {
		m.Train(f.train)
		res := Evaluate(m, f.test)
		if res.AUC < 0.6 {
			t.Fatalf("%s AUC too low: %+v", m.Name(), res)
		}
	}
}

func TestKnowledgeHelpsOnDriftPairs(t *testing.T) {
	f := buildFix(t)
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	plain := NewKADSM(f.embed, nil, f.dim, tc)
	plain.Train(f.train)
	know := NewKADSM(f.embed, f.knowledge, f.dim, tc)
	know.Train(f.train)

	// Drift test: positive pairs whose concept shares no token with the
	// title (the Mid-Autumn/moon-cake case).
	var drift []Pair
	for _, p := range f.test {
		if !p.Label {
			continue
		}
		overlap := false
		ts := map[string]bool{}
		for _, w := range p.Title {
			ts[w] = true
		}
		for _, w := range p.Concept {
			if ts[w] {
				overlap = true
			}
		}
		if !overlap {
			drift = append(drift, p)
		}
	}
	if len(drift) < 5 {
		t.Skip("not enough drift pairs in tiny world")
	}
	var sumPlain, sumKnow float64
	for _, p := range drift {
		sumPlain += plain.Score(p.Concept, p.Title)
		sumKnow += know.Score(p.Concept, p.Title)
	}
	t.Logf("drift positives: plain=%.3f know=%.3f (n=%d)", sumPlain/float64(len(drift)), sumKnow/float64(len(drift)), len(drift))
	resPlain := Evaluate(plain, f.test)
	resKnow := Evaluate(know, f.test)
	if resKnow.AUC+0.05 < resPlain.AUC {
		t.Fatalf("knowledge model clearly worse: %+v vs %+v", resKnow, resPlain)
	}
}

func TestEvaluateProducesGroupedP10(t *testing.T) {
	f := buildFix(t)
	b := BM25Squashed{NewBM25()}
	b.Train(f.train)
	res := Evaluate(b, f.test)
	if res.P10 < 0 || res.P10 > 1 {
		t.Fatalf("P10 out of range: %+v", res)
	}
	if res.AUC <= 0.5 {
		t.Fatalf("BM25 should beat chance on this data: %+v", res)
	}
}

func TestSplitPairsDeterministic(t *testing.T) {
	f := buildFix(t)
	tr1, te1 := SplitPairs(f.train, 0.5, 3)
	tr2, te2 := SplitPairs(f.train, 0.5, 3)
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Fatal("split not deterministic")
	}
	for i := range tr1 {
		if tr1[i].FrameID != tr2[i].FrameID || tr1[i].ItemID != tr2[i].ItemID {
			t.Fatal("split order differs")
		}
	}
}

func TestKnowledgeFnFindsMultiTokenPrimitives(t *testing.T) {
	f := buildFix(t)
	ks := f.knowledge([]string{"mid-autumn", "festival", "gifts"})
	if len(ks) == 0 {
		t.Fatal("knowledge fn found nothing for mid-autumn festival")
	}
	nonZero := false
	for _, k := range ks {
		if k.Norm() > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("knowledge vectors all zero")
	}
}
