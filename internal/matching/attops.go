// Package matching implements concept-item association (Section 6): the
// knowledge-aware deep semantic matching model of Figure 8 plus the
// baselines of Table 6 (BM25, DSSM, MatchPyramid, RE2). All deep models
// share frozen word embeddings and hand-derived backward passes.
package matching

import (
	"math"

	"alicoco/internal/mat"
)

// attnPool computes the two-way attention pooling of Figure 8 over encoded
// sequences A and B: e_ij = A_i·B_j/√d, row sums are softmaxed into weights
// over A, giving c = Σ α_i A_i. It returns the pooled vector, the attention
// weights, and a backward closure that accumulates gradients into dA and dB.
func attnPool(a, b []mat.Vec) (mat.Vec, mat.Vec, func(dc mat.Vec, dA, dB []mat.Vec)) {
	m, l := len(a), len(b)
	if m == 0 || l == 0 {
		dim := 0
		if m > 0 {
			dim = len(a[0])
		} else if l > 0 {
			dim = len(b[0])
		}
		return mat.NewVec(dim), nil, func(mat.Vec, []mat.Vec, []mat.Vec) {}
	}
	scale := 1 / math.Sqrt(float64(len(a[0])))
	e := make([][]float64, m)
	r := make(mat.Vec, m)
	for i := 0; i < m; i++ {
		e[i] = make([]float64, l)
		for j := 0; j < l; j++ {
			e[i][j] = a[i].Dot(b[j]) * scale
			r[i] += e[i][j]
		}
	}
	alpha := mat.Softmax(r)
	c := mat.NewVec(len(a[0]))
	for i := 0; i < m; i++ {
		c.AddScaled(alpha[i], a[i])
	}
	back := func(dc mat.Vec, dA, dB []mat.Vec) {
		dAlpha := make(mat.Vec, m)
		for i := 0; i < m; i++ {
			dAlpha[i] = dc.Dot(a[i])
			dA[i].AddScaled(alpha[i], dc)
		}
		// softmax backward
		dot := 0.0
		for i := 0; i < m; i++ {
			dot += alpha[i] * dAlpha[i]
		}
		for i := 0; i < m; i++ {
			dr := alpha[i] * (dAlpha[i] - dot)
			for j := 0; j < l; j++ {
				de := dr * scale
				dA[i].AddScaled(de, b[j])
				dB[j].AddScaled(de, a[i])
			}
		}
	}
	return c, alpha, back
}

// gridPool adaptively max-pools the similarity matrix M_ij = A_i·B_j into a
// rows×cols feature grid (the MatchPyramid pooling). It returns the flat
// features and a backward closure.
func gridPool(a, b []mat.Vec, rows, cols int) (mat.Vec, func(df mat.Vec, dA, dB []mat.Vec)) {
	m, l := len(a), len(b)
	feats := mat.NewVec(rows * cols)
	type cell struct{ i, j int }
	argmax := make([]cell, rows*cols)
	for g := range argmax {
		argmax[g] = cell{-1, -1}
	}
	if m == 0 || l == 0 {
		return feats, func(mat.Vec, []mat.Vec, []mat.Vec) {}
	}
	for g := 0; g < rows*cols; g++ {
		feats[g] = math.Inf(-1)
	}
	for i := 0; i < m; i++ {
		gr := i * rows / m
		for j := 0; j < l; j++ {
			gc := j * cols / l
			g := gr*cols + gc
			v := a[i].Dot(b[j])
			if v > feats[g] {
				feats[g] = v
				argmax[g] = cell{i, j}
			}
		}
	}
	for g := range feats {
		if math.IsInf(feats[g], -1) {
			feats[g] = 0
		}
	}
	back := func(df mat.Vec, dA, dB []mat.Vec) {
		for g, cl := range argmax {
			if cl.i < 0 {
				continue
			}
			dA[cl.i].AddScaled(df[g], b[cl.j])
			dB[cl.j].AddScaled(df[g], a[cl.i])
		}
	}
	return feats, back
}

// alignOnto computes, for each vector of a, the attention-weighted average
// of b (cross alignment, the core of RE2). Returns aligned vectors and a
// backward closure.
func alignOnto(a, b []mat.Vec) ([]mat.Vec, func(dAligned []mat.Vec, dA, dB []mat.Vec)) {
	m, l := len(a), len(b)
	if m == 0 || l == 0 {
		out := make([]mat.Vec, m)
		for i := range out {
			out[i] = mat.NewVec(dimOf(a, b))
		}
		return out, func([]mat.Vec, []mat.Vec, []mat.Vec) {}
	}
	scale := 1 / math.Sqrt(float64(len(a[0])))
	attn := make([]mat.Vec, m)
	out := make([]mat.Vec, m)
	for i := 0; i < m; i++ {
		e := make(mat.Vec, l)
		for j := 0; j < l; j++ {
			e[j] = a[i].Dot(b[j]) * scale
		}
		attn[i] = mat.Softmax(e)
		o := mat.NewVec(len(b[0]))
		for j := 0; j < l; j++ {
			o.AddScaled(attn[i][j], b[j])
		}
		out[i] = o
	}
	back := func(dAligned []mat.Vec, dA, dB []mat.Vec) {
		for i := 0; i < m; i++ {
			da := make(mat.Vec, l)
			for j := 0; j < l; j++ {
				da[j] = dAligned[i].Dot(b[j])
				dB[j].AddScaled(attn[i][j], dAligned[i])
			}
			dot := 0.0
			for j := 0; j < l; j++ {
				dot += attn[i][j] * da[j]
			}
			for j := 0; j < l; j++ {
				de := attn[i][j] * (da[j] - dot) * scale
				dA[i].AddScaled(de, b[j])
				dB[j].AddScaled(de, a[i])
			}
		}
	}
	return out, back
}

func dimOf(a, b []mat.Vec) int {
	if len(a) > 0 {
		return len(a[0])
	}
	if len(b) > 0 {
		return len(b[0])
	}
	return 0
}

func zeroSeq(n, dim int) []mat.Vec {
	out := make([]mat.Vec, n)
	for i := range out {
		out[i] = mat.NewVec(dim)
	}
	return out
}
