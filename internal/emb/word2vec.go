// Package emb trains the distributional embeddings the paper's models
// consume: skip-gram word vectors with negative sampling (the stand-in for
// pre-trained GloVe, Section 5.3), a PV-DBOW document encoder (the stand-in
// for Doc2vec, Section 5.2.2), and the gloss knowledge base built from the
// world's generated glosses (the stand-in for Wikipedia).
package emb

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
	"alicoco/internal/text"
)

// W2VConfig controls skip-gram training.
type W2VConfig struct {
	Dim      int
	Window   int
	Negative int
	Epochs   int
	LR       float64
	MinCount int
	Seed     int64
}

// DefaultW2VConfig returns settings sized for the synthetic corpus.
func DefaultW2VConfig() W2VConfig {
	return W2VConfig{Dim: 32, Window: 3, Negative: 5, Epochs: 3, LR: 0.05, MinCount: 1, Seed: 1}
}

// Word2Vec holds trained input (In) and output (Out) vectors per vocab id.
type Word2Vec struct {
	Vocab *text.Vocab
	Dim   int
	In    *mat.Mat
	Out   *mat.Mat

	unigram []int // negative-sampling table of vocab ids
}

// TrainWord2Vec trains skip-gram with negative sampling over the corpus.
// Deterministic for a fixed config.
func TrainWord2Vec(corpus [][]string, cfg W2VConfig) *Word2Vec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	counts := make(map[string]int)
	for _, sent := range corpus {
		for _, w := range sent {
			counts[w]++
		}
	}
	vocab := text.NewVocab()
	for _, sent := range corpus {
		for _, w := range sent {
			if counts[w] >= cfg.MinCount {
				vocab.Add(w)
			}
		}
	}
	vocab.Freeze()
	m := &Word2Vec{Vocab: vocab, Dim: cfg.Dim, In: mat.NewMat(vocab.Len(), cfg.Dim), Out: mat.NewMat(vocab.Len(), cfg.Dim)}
	m.In.RandInit(rng, 0.5/float64(cfg.Dim))
	m.buildUnigramTable(counts)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * (1 - float64(epoch)/float64(cfg.Epochs+1))
		for _, sent := range corpus {
			ids := vocab.EncodeFixed(sent)
			for i, center := range ids {
				if center == text.UnkID || center == text.PadID {
					continue
				}
				win := 1 + rng.Intn(cfg.Window)
				for j := i - win; j <= i+win; j++ {
					if j < 0 || j >= len(ids) || j == i {
						continue
					}
					ctx := ids[j]
					if ctx == text.UnkID || ctx == text.PadID {
						continue
					}
					m.trainPair(center, ctx, cfg.Negative, lr, rng)
				}
			}
		}
	}
	return m
}

func (m *Word2Vec) buildUnigramTable(counts map[string]int) {
	const tableSize = 1 << 16
	var total float64
	pow := make([]float64, m.Vocab.Len())
	for w, c := range counts {
		id := m.Vocab.ID(w)
		if id <= text.UnkID {
			continue
		}
		pow[id] = math.Pow(float64(c), 0.75)
		total += pow[id]
	}
	if total == 0 {
		return
	}
	m.unigram = make([]int, 0, tableSize)
	for id, p := range pow {
		n := int(p / total * tableSize)
		for k := 0; k <= n; k++ {
			m.unigram = append(m.unigram, id)
		}
	}
}

// trainPair performs one SGNS update: center's In vector against ctx's Out
// vector (positive) and sampled negatives.
func (m *Word2Vec) trainPair(center, ctx, negative int, lr float64, rng *rand.Rand) {
	in := m.In.Row(center)
	dIn := mat.NewVec(m.Dim)
	update := func(outID int, label float64) {
		out := m.Out.Row(outID)
		p := mat.Sigmoid(in.Dot(out))
		g := (p - label) * lr
		dIn.AddScaled(-g, out)
		out.AddScaled(-g, in)
	}
	update(ctx, 1)
	for k := 0; k < negative && len(m.unigram) > 0; k++ {
		neg := m.unigram[rng.Intn(len(m.unigram))]
		if neg == ctx {
			continue
		}
		update(neg, 0)
	}
	in.Add(dIn)
}

// Vec returns the input vector for a word (zero vector if unknown).
func (m *Word2Vec) Vec(word string) mat.Vec {
	id := m.Vocab.ID(word)
	if id == text.UnkID || id == text.PadID {
		return mat.NewVec(m.Dim)
	}
	return m.In.Row(id).Clone()
}

// Similarity returns the cosine similarity of two words' vectors.
func (m *Word2Vec) Similarity(a, b string) float64 {
	return mat.CosineSimilarity(m.Vec(a), m.Vec(b))
}

// EmbedSeq maps tokens to their vectors.
func (m *Word2Vec) EmbedSeq(tokens []string) []mat.Vec {
	out := make([]mat.Vec, len(tokens))
	for i, w := range tokens {
		out[i] = m.Vec(w)
	}
	return out
}
