// Package emb trains the distributional embeddings the paper's models
// consume: skip-gram word vectors with negative sampling (the stand-in for
// pre-trained GloVe, Section 5.3), a PV-DBOW document encoder (the stand-in
// for Doc2vec, Section 5.2.2), and the gloss knowledge base built from the
// world's generated glosses (the stand-in for Wikipedia).
package emb

import (
	"math"
	"math/rand"
	"sync"

	"alicoco/internal/mat"
	"alicoco/internal/text"
)

// W2VConfig controls skip-gram training.
type W2VConfig struct {
	Dim      int
	Window   int
	Negative int
	Epochs   int
	LR       float64
	MinCount int
	Seed     int64
	// Workers shards each epoch's sentences across this many goroutines,
	// HogWild-style with striped row locks. Workers <= 1 trains
	// sequentially and bit-exactly deterministically for a fixed config;
	// with more workers each shard's sampling sequence is still fixed by
	// (Seed, shard, epoch), but concurrent row updates may interleave
	// differently between runs, so final vectors can differ in the last
	// bits. The pipeline sets Workers to GOMAXPROCS.
	Workers int
}

// DefaultW2VConfig returns settings sized for the synthetic corpus.
func DefaultW2VConfig() W2VConfig {
	return W2VConfig{Dim: 32, Window: 3, Negative: 5, Epochs: 3, LR: 0.05, MinCount: 1, Seed: 1}
}

// Word2Vec holds trained input (In) and output (Out) vectors per vocab id.
type Word2Vec struct {
	Vocab *text.Vocab
	Dim   int
	In    *mat.Mat
	Out   *mat.Mat

	unigram []int // negative-sampling table of vocab ids
}

// TrainWord2Vec trains skip-gram with negative sampling over the corpus.
// Deterministic for a fixed config when cfg.Workers <= 1; see W2VConfig.
func TrainWord2Vec(corpus [][]string, cfg W2VConfig) *Word2Vec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	counts := make(map[string]int)
	for _, sent := range corpus {
		for _, w := range sent {
			counts[w]++
		}
	}
	vocab := text.NewVocab()
	for _, sent := range corpus {
		for _, w := range sent {
			if counts[w] >= cfg.MinCount {
				vocab.Add(w)
			}
		}
	}
	vocab.Freeze()
	m := &Word2Vec{Vocab: vocab, Dim: cfg.Dim, In: mat.NewMat(vocab.Len(), cfg.Dim), Out: mat.NewMat(vocab.Len(), cfg.Dim)}
	m.In.RandInit(rng, 0.5/float64(cfg.Dim))
	m.buildUnigramTable(counts)

	workers := cfg.Workers
	if workers > len(corpus) {
		workers = len(corpus)
	}
	if workers > 1 {
		m.trainSharded(corpus, cfg, workers)
		return m
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * (1 - float64(epoch)/float64(cfg.Epochs+1))
		for _, sent := range corpus {
			m.trainSentence(sent, cfg.Negative, cfg.Window, lr, rng, nil, nil, nil)
		}
	}
	return m
}

// trainSentence runs the skip-gram window loop over one sentence. With nil
// locks it performs the classic sequential updates; with striped locks and
// a scratch buffer it performs the lock-protected HogWild-style updates of
// sharded training.
func (m *Word2Vec) trainSentence(sent []string, negative, window int, lr float64, rng *rand.Rand, s *pairScratch, inMu, outMu *stripedLocks) {
	ids := m.Vocab.EncodeFixed(sent)
	for i, center := range ids {
		if center == text.UnkID || center == text.PadID {
			continue
		}
		win := 1 + rng.Intn(window)
		for j := i - win; j <= i+win; j++ {
			if j < 0 || j >= len(ids) || j == i {
				continue
			}
			ctx := ids[j]
			if ctx == text.UnkID || ctx == text.PadID {
				continue
			}
			if inMu == nil {
				m.trainPair(center, ctx, negative, lr, rng)
			} else {
				m.trainPairLocked(center, ctx, negative, lr, rng, s, inMu, outMu)
			}
		}
	}
}

// lockStripes is the number of row-lock stripes per matrix; a power of two
// so striping is a mask. 256 stripes keep collision odds low at GOMAXPROCS
// worker counts while the lock arrays stay cache-resident.
const lockStripes = 256

type stripedLocks [lockStripes]sync.Mutex

func (s *stripedLocks) of(row int) *sync.Mutex { return &s[row&(lockStripes-1)] }

// pairScratch is per-worker scratch so sharded updates allocate nothing.
type pairScratch struct {
	in  mat.Vec // stable copy of the center row for this pair
	dIn mat.Vec // accumulated center-row gradient
}

// trainSharded splits each epoch's sentences round-robin across workers.
// Every shard draws windows and negatives from its own RNG seeded by
// (Seed, epoch, shard), so the sampled work is scheduling-independent;
// row updates go through striped locks (one held at a time — no lock
// ordering, no deadlock), so training is race-free under -race. Like
// HogWild, a worker may read a center row that another worker is about to
// update; that staleness is benign for SGD.
func (m *Word2Vec) trainSharded(corpus [][]string, cfg W2VConfig, workers int) {
	var inMu, outMu stripedLocks
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * (1 - float64(epoch)/float64(cfg.Epochs+1))
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(epoch)*104729 + int64(w)*7919))
				scratch := &pairScratch{in: mat.NewVec(m.Dim), dIn: mat.NewVec(m.Dim)}
				for i := w; i < len(corpus); i += workers {
					m.trainSentence(corpus[i], cfg.Negative, cfg.Window, lr, rng, scratch, &inMu, &outMu)
				}
			}(w)
		}
		wg.Wait()
	}
}

func (m *Word2Vec) buildUnigramTable(counts map[string]int) {
	const tableSize = 1 << 16
	var total float64
	pow := make([]float64, m.Vocab.Len())
	for w, c := range counts {
		id := m.Vocab.ID(w)
		if id <= text.UnkID {
			continue
		}
		pow[id] = math.Pow(float64(c), 0.75)
		total += pow[id]
	}
	if total == 0 {
		return
	}
	m.unigram = make([]int, 0, tableSize)
	for id, p := range pow {
		n := int(p / total * tableSize)
		for k := 0; k <= n; k++ {
			m.unigram = append(m.unigram, id)
		}
	}
}

// trainPair performs one SGNS update: center's In vector against ctx's Out
// vector (positive) and sampled negatives.
func (m *Word2Vec) trainPair(center, ctx, negative int, lr float64, rng *rand.Rand) {
	in := m.In.Row(center)
	dIn := mat.NewVec(m.Dim)
	update := func(outID int, label float64) {
		out := m.Out.Row(outID)
		p := mat.Sigmoid(in.Dot(out))
		g := (p - label) * lr
		dIn.AddScaled(-g, out)
		out.AddScaled(-g, in)
	}
	update(ctx, 1)
	for k := 0; k < negative && len(m.unigram) > 0; k++ {
		neg := m.unigram[rng.Intn(len(m.unigram))]
		if neg == ctx {
			continue
		}
		update(neg, 0)
	}
	in.Add(dIn)
}

// trainPairLocked is the sharded-training counterpart of trainPair: the
// same SGNS update, but every read or write of a shared row happens under
// that row's stripe lock, and at most one lock is held at a time.
func (m *Word2Vec) trainPairLocked(center, ctx, negative int, lr float64, rng *rand.Rand, s *pairScratch, inMu, outMu *stripedLocks) {
	cmu := inMu.of(center)
	cmu.Lock()
	copy(s.in, m.In.Row(center))
	cmu.Unlock()
	for i := range s.dIn {
		s.dIn[i] = 0
	}
	update := func(outID int, label float64) {
		omu := outMu.of(outID)
		omu.Lock()
		out := m.Out.Row(outID)
		p := mat.Sigmoid(s.in.Dot(out))
		g := (p - label) * lr
		s.dIn.AddScaled(-g, out)
		out.AddScaled(-g, s.in)
		omu.Unlock()
	}
	update(ctx, 1)
	for k := 0; k < negative && len(m.unigram) > 0; k++ {
		neg := m.unigram[rng.Intn(len(m.unigram))]
		if neg == ctx {
			continue
		}
		update(neg, 0)
	}
	cmu.Lock()
	m.In.Row(center).Add(s.dIn)
	cmu.Unlock()
}

// Vec returns the input vector for a word (zero vector if unknown).
func (m *Word2Vec) Vec(word string) mat.Vec {
	id := m.Vocab.ID(word)
	if id == text.UnkID || id == text.PadID {
		return mat.NewVec(m.Dim)
	}
	return m.In.Row(id).Clone()
}

// Similarity returns the cosine similarity of two words' vectors.
func (m *Word2Vec) Similarity(a, b string) float64 {
	return mat.CosineSimilarity(m.Vec(a), m.Vec(b))
}

// EmbedSeq maps tokens to their vectors.
func (m *Word2Vec) EmbedSeq(tokens []string) []mat.Vec {
	out := make([]mat.Vec, len(tokens))
	for i, w := range tokens {
		out[i] = m.Vec(w)
	}
	return out
}
