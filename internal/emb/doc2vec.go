package emb

import (
	"math/rand"

	"alicoco/internal/mat"
	"alicoco/internal/text"
)

// Doc2Vec is a PV-DBOW document encoder: a document vector is trained to
// predict the document's words against the (frozen) word2vec output matrix.
// It plays the role of the Doc2vec gloss encoder in Sections 5.2.2/5.3/6.
type Doc2Vec struct {
	w2v      *Word2Vec
	Epochs   int
	LR       float64
	Negative int
	Seed     int64
}

// NewDoc2Vec wraps a trained Word2Vec model as a document encoder.
func NewDoc2Vec(w2v *Word2Vec) *Doc2Vec {
	return &Doc2Vec{w2v: w2v, Epochs: 12, LR: 0.1, Negative: 4, Seed: 3}
}

// Dim returns the embedding dimension.
func (d *Doc2Vec) Dim() int { return d.w2v.Dim }

// Encode infers a vector for the document by PV-DBOW gradient steps against
// the frozen word output vectors, starting from the mean word vector.
// Deterministic for fixed inputs.
func (d *Doc2Vec) Encode(tokens []string) mat.Vec {
	ids := d.w2v.Vocab.EncodeFixed(tokens)
	var known []int
	for _, id := range ids {
		if id != text.UnkID && id != text.PadID {
			known = append(known, id)
		}
	}
	vec := mat.NewVec(d.w2v.Dim)
	if len(known) == 0 {
		return vec
	}
	// Warm start: mean of input vectors.
	for _, id := range known {
		vec.Add(d.w2v.In.Row(id))
	}
	vec.Scale(1 / float64(len(known)))

	rng := rand.New(rand.NewSource(d.Seed + int64(len(tokens))))
	for epoch := 0; epoch < d.Epochs; epoch++ {
		lr := d.LR * (1 - float64(epoch)/float64(d.Epochs+1))
		for _, id := range known {
			out := d.w2v.Out.Row(id)
			p := mat.Sigmoid(vec.Dot(out))
			vec.AddScaled(-(p-1)*lr, out)
			for k := 0; k < d.Negative && len(d.w2v.unigram) > 0; k++ {
				neg := d.w2v.unigram[rng.Intn(len(d.w2v.unigram))]
				if neg == id {
					continue
				}
				nOut := d.w2v.Out.Row(neg)
				pn := mat.Sigmoid(vec.Dot(nOut))
				vec.AddScaled(-pn*lr, nOut)
			}
		}
	}
	return vec
}

// Glossary is the external knowledge base: one encoded gloss vector per
// primitive-concept ID, plus the raw gloss text for lexical lookups.
type Glossary struct {
	Dim   int
	Texts map[int]string
	Vecs  map[int]mat.Vec
}

// BuildGlossary encodes every gloss with the document encoder.
func BuildGlossary(glosses map[int]string, d2v *Doc2Vec) *Glossary {
	g := &Glossary{Dim: d2v.Dim(), Texts: make(map[int]string, len(glosses)), Vecs: make(map[int]mat.Vec, len(glosses))}
	for id, gl := range glosses {
		g.Texts[id] = gl
		g.Vecs[id] = d2v.Encode(text.Tokenize(gl))
	}
	return g
}

// Vec returns the gloss vector for a primitive ID (zero vector if absent).
func (g *Glossary) Vec(id int) mat.Vec {
	if v, ok := g.Vecs[id]; ok {
		return v.Clone()
	}
	return mat.NewVec(g.Dim)
}

// Text returns the gloss text for a primitive ID.
func (g *Glossary) Text(id int) string { return g.Texts[id] }
