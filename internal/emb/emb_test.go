package emb

import (
	"runtime"
	"testing"

	"alicoco/internal/mat"
)

// toyCorpus has two disjoint topics: kitchen and clothing.
func toyCorpus() [][]string {
	var corpus [][]string
	for i := 0; i < 120; i++ {
		corpus = append(corpus,
			[]string{"grill", "charcoal", "barbecue", "outdoor"},
			[]string{"charcoal", "grill", "tongs", "barbecue"},
			[]string{"dress", "skirt", "elegant", "wedding"},
			[]string{"skirt", "dress", "silk", "wedding"},
		)
	}
	return corpus
}

func TestWord2VecLearnsTopics(t *testing.T) {
	cfg := DefaultW2VConfig()
	cfg.Dim = 16
	cfg.Epochs = 4
	m := TrainWord2Vec(toyCorpus(), cfg)
	same := m.Similarity("grill", "charcoal")
	cross := m.Similarity("grill", "dress")
	if same <= cross {
		t.Fatalf("in-topic similarity %v should exceed cross-topic %v", same, cross)
	}
}

func TestWord2VecDeterminism(t *testing.T) {
	cfg := DefaultW2VConfig()
	cfg.Epochs = 1
	m1 := TrainWord2Vec(toyCorpus(), cfg)
	m2 := TrainWord2Vec(toyCorpus(), cfg)
	v1, v2 := m1.Vec("grill"), m2.Vec("grill")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestWord2VecUnknownWord(t *testing.T) {
	m := TrainWord2Vec(toyCorpus(), DefaultW2VConfig())
	v := m.Vec("zzzunknown")
	if v.Norm() != 0 {
		t.Fatal("unknown word should embed to zero vector")
	}
	if m.Similarity("zzz", "grill") != 0 {
		t.Fatal("similarity with unknown should be 0")
	}
}

func TestEmbedSeq(t *testing.T) {
	m := TrainWord2Vec(toyCorpus(), DefaultW2VConfig())
	seq := m.EmbedSeq([]string{"grill", "zzz"})
	if len(seq) != 2 {
		t.Fatal("wrong length")
	}
	if seq[0].Norm() == 0 || seq[1].Norm() != 0 {
		t.Fatal("embedding mixup")
	}
}

func TestMinCountFiltersRareWords(t *testing.T) {
	corpus := [][]string{{"common", "common", "common", "rare"}}
	for i := 0; i < 10; i++ {
		corpus = append(corpus, []string{"common", "filler"})
	}
	cfg := DefaultW2VConfig()
	cfg.MinCount = 2
	m := TrainWord2Vec(corpus, cfg)
	if m.Vocab.Has("rare") {
		t.Fatal("rare word should be filtered by MinCount")
	}
	if !m.Vocab.Has("common") {
		t.Fatal("common word should be kept")
	}
}

func TestDoc2VecTopicSimilarity(t *testing.T) {
	cfg := DefaultW2VConfig()
	cfg.Dim = 16
	cfg.Epochs = 4
	m := TrainWord2Vec(toyCorpus(), cfg)
	d2v := NewDoc2Vec(m)
	kitchen1 := d2v.Encode([]string{"grill", "charcoal", "tongs"})
	kitchen2 := d2v.Encode([]string{"barbecue", "grill"})
	clothing := d2v.Encode([]string{"dress", "silk", "skirt"})
	if mat.CosineSimilarity(kitchen1, kitchen2) <= mat.CosineSimilarity(kitchen1, clothing) {
		t.Fatal("doc2vec should place same-topic docs closer")
	}
}

func TestDoc2VecEmptyAndUnknownDoc(t *testing.T) {
	m := TrainWord2Vec(toyCorpus(), DefaultW2VConfig())
	d2v := NewDoc2Vec(m)
	if d2v.Encode(nil).Norm() != 0 {
		t.Fatal("empty doc should be zero")
	}
	if d2v.Encode([]string{"zzz", "qqq"}).Norm() != 0 {
		t.Fatal("all-unknown doc should be zero")
	}
}

func TestDoc2VecDeterminism(t *testing.T) {
	m := TrainWord2Vec(toyCorpus(), DefaultW2VConfig())
	d2v := NewDoc2Vec(m)
	a := d2v.Encode([]string{"grill", "charcoal"})
	b := d2v.Encode([]string{"grill", "charcoal"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("doc2vec encode not deterministic")
		}
	}
}

func TestGlossary(t *testing.T) {
	m := TrainWord2Vec(toyCorpus(), DefaultW2VConfig())
	d2v := NewDoc2Vec(m)
	g := BuildGlossary(map[int]string{
		1: "grill charcoal barbecue",
		2: "dress silk wedding",
	}, d2v)
	if g.Vec(1).Norm() == 0 || g.Vec(2).Norm() == 0 {
		t.Fatal("gloss vectors should be nonzero")
	}
	if g.Vec(99).Norm() != 0 {
		t.Fatal("missing gloss should be zero vector")
	}
	if g.Text(1) == "" || g.Text(99) != "" {
		t.Fatal("gloss text lookup wrong")
	}
	// Vec returns a copy: mutating it must not corrupt the glossary.
	v := g.Vec(1)
	v[0] = 999
	if g.Vec(1)[0] == 999 {
		t.Fatal("Vec must return a copy")
	}
}

func TestWord2VecParallelLearnsTopics(t *testing.T) {
	cfg := DefaultW2VConfig()
	cfg.Dim = 16
	cfg.Epochs = 4
	cfg.Workers = 4
	m := TrainWord2Vec(toyCorpus(), cfg)
	same := m.Similarity("grill", "charcoal")
	cross := m.Similarity("grill", "dress")
	if same <= cross {
		t.Fatalf("parallel training lost topics: in-topic %v vs cross-topic %v", same, cross)
	}
}

func TestWord2VecParallelMatchesSequentialVocab(t *testing.T) {
	cfg := DefaultW2VConfig()
	cfg.Epochs = 1
	seq := TrainWord2Vec(toyCorpus(), cfg)
	cfg.Workers = 4
	parl := TrainWord2Vec(toyCorpus(), cfg)
	if seq.Vocab.Len() != parl.Vocab.Len() {
		t.Fatalf("vocab differs: %d vs %d", seq.Vocab.Len(), parl.Vocab.Len())
	}
}

func benchCorpus() [][]string {
	var corpus [][]string
	base := toyCorpus()
	for i := 0; i < 10; i++ {
		corpus = append(corpus, base...)
	}
	return corpus
}

func BenchmarkWord2VecTrainSequential(b *testing.B) {
	corpus := benchCorpus()
	cfg := DefaultW2VConfig()
	cfg.Epochs = 2
	for i := 0; i < b.N; i++ {
		TrainWord2Vec(corpus, cfg)
	}
}

func BenchmarkWord2VecTrainSharded(b *testing.B) {
	corpus := benchCorpus()
	cfg := DefaultW2VConfig()
	cfg.Epochs = 2
	cfg.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		TrainWord2Vec(corpus, cfg)
	}
}
