// Package inference implements the first item of the paper's future work
// (Section 10): mining unseen commonsense relations for e-commerce concepts —
// e.g. "boy's T-shirts" implies Time=Summer even though no time word appears
// in the concept. The signal is distributional: the items associated with a
// concept concentrate on particular attribute values far above the corpus
// base rate, and that concentration is evidence of an implicit relation.
package inference

import (
	"math"
	"sort"

	"alicoco/internal/core"
	"alicoco/internal/par"
)

// ImplicitRelation is an inferred (concept, primitive) link with its
// strength: the lift of the primitive among the concept's items over its
// base rate across all items, and the coverage (share of the concept's items
// carrying it).
type ImplicitRelation struct {
	Concept   core.NodeID
	Primitive core.NodeID
	Domain    string
	Lift      float64 // P(prim | concept items) / P(prim | all items)
	Coverage  float64 // P(prim | concept items)
}

// Config tunes the miner.
type Config struct {
	MinLift     float64 // minimum lift to report (e.g. 2.0)
	MinCoverage float64 // minimum share of the concept's items
	MinItems    int     // concepts with fewer associated items are skipped
	// Domains restricts inference to these primitive domains (nil = all
	// non-Category domains; Category is the item's identity, not an
	// implicit property).
	Domains []string
}

// DefaultConfig returns conservative thresholds.
func DefaultConfig() Config {
	return Config{MinLift: 2.0, MinCoverage: 0.3, MinItems: 5}
}

// Miner precomputes base rates over the net's item layer. Mining is pure
// reading, so a Miner runs against a frozen snapshot as well as a live net;
// only Materialize needs a writable net.
type Miner struct {
	net      core.Reader
	cfg      Config
	baseRate map[core.NodeID]float64 // primitive -> share of all items carrying it
	items    int
	domains  map[string]bool
}

// NewMiner scans the item layer once.
func NewMiner(net core.Reader, cfg Config) *Miner {
	m := &Miner{net: net, cfg: cfg, baseRate: make(map[core.NodeID]float64)}
	if len(cfg.Domains) > 0 {
		m.domains = make(map[string]bool, len(cfg.Domains))
		for _, d := range cfg.Domains {
			m.domains[d] = true
		}
	}
	items := net.NodesOfKind(core.KindItem)
	m.items = len(items)
	for _, it := range items {
		for _, he := range net.Out(it, core.EdgeItemPrimitive) {
			m.baseRate[he.Peer]++
		}
	}
	for p := range m.baseRate {
		m.baseRate[p] /= math.Max(1, float64(m.items))
	}
	return m
}

// admissible reports whether a primitive's domain may carry an implicit
// relation.
func (m *Miner) admissible(prim core.NodeID) bool {
	nd, ok := m.net.Node(prim)
	if !ok {
		return false
	}
	if m.domains != nil {
		return m.domains[nd.Domain]
	}
	return nd.Domain != "Category" && nd.Domain != "Brand"
}

// InferConcept mines implicit relations for one e-commerce concept,
// excluding primitives the concept is already interpreted by.
func (m *Miner) InferConcept(concept core.NodeID) []ImplicitRelation {
	itemEdges := m.net.In(concept, core.EdgeItemEConcept)
	if len(itemEdges) < m.cfg.MinItems {
		return nil
	}
	known := make(map[core.NodeID]bool)
	for _, he := range m.net.Out(concept, core.EdgeInterpretedBy) {
		known[he.Peer] = true
	}
	counts := make(map[core.NodeID]int)
	for _, ie := range itemEdges {
		for _, pe := range m.net.Out(ie.Peer, core.EdgeItemPrimitive) {
			counts[pe.Peer]++
		}
	}
	var out []ImplicitRelation
	n := float64(len(itemEdges))
	for prim, c := range counts {
		if known[prim] || !m.admissible(prim) {
			continue
		}
		coverage := float64(c) / n
		base := m.baseRate[prim]
		if base == 0 {
			continue
		}
		lift := coverage / base
		if lift < m.cfg.MinLift || coverage < m.cfg.MinCoverage {
			continue
		}
		nd, _ := m.net.Node(prim)
		out = append(out, ImplicitRelation{
			Concept: concept, Primitive: prim, Domain: nd.Domain,
			Lift: lift, Coverage: coverage,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		return out[i].Primitive < out[j].Primitive
	})
	return out
}

// InferAll mines every e-commerce concept and returns relations grouped by
// concept in node-id order. Concepts are independent — mining is a pure
// read of the (frozen) net plus the precomputed base rates — so the scan
// fans out across GOMAXPROCS workers, each writing its concept's relations
// into an index-addressed slot; the sequential ordered reduce keeps the
// output byte-identical to the old single-threaded loop.
func (m *Miner) InferAll() []ImplicitRelation {
	concepts := m.net.NodesOfKind(core.KindEConcept)
	slots := make([][]ImplicitRelation, len(concepts))
	par.For(0, len(concepts), func(i int) {
		slots[i] = m.InferConcept(concepts[i])
	})
	var out []ImplicitRelation
	for _, rels := range slots {
		out = append(out, rels...)
	}
	return out
}

// Materialize writes inferred relations into dst as weighted interpretedBy
// edges (weight = normalized confidence from coverage), making the implicit
// knowledge queryable like any other interpretation link. It returns the
// number of edges added. dst is passed explicitly because the miner itself
// may be reading a frozen snapshot; callers that serve from a snapshot
// should re-freeze dst afterwards to publish the new edges.
func (m *Miner) Materialize(dst *core.Net, rels []ImplicitRelation) (int, error) {
	added := 0
	for _, r := range rels {
		w := r.Coverage
		if w > 0.99 {
			w = 0.99 // inferred edges never outrank manual ones
		}
		if err := dst.AddEdge(r.Concept, r.Primitive, core.EdgeInterpretedBy, "implied", w); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}
