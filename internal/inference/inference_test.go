package inference

import (
	"runtime"
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/pipeline"
)

func buildNet(t *testing.T) *pipeline.Artifacts {
	t.Helper()
	a, err := pipeline.Build(pipeline.TinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInferImplicitRelations(t *testing.T) {
	a := buildNet(t)
	m := NewMiner(a.Net, DefaultConfig())
	rels := m.InferAll()
	if len(rels) == 0 {
		t.Fatal("no implicit relations inferred")
	}
	for _, r := range rels {
		if r.Lift < 2.0 || r.Coverage < 0.3 {
			t.Fatalf("thresholds violated: %+v", r)
		}
		nd, _ := a.Net.Node(r.Primitive)
		if nd.Domain == "Category" || nd.Domain == "Brand" {
			t.Fatalf("inadmissible domain %s inferred", nd.Domain)
		}
		// Must not duplicate an existing interpretation.
		for _, he := range a.Net.Out(r.Concept, core.EdgeInterpretedBy) {
			if he.Peer == r.Primitive && he.Rel == "" {
				t.Fatal("inferred relation duplicates an explicit one")
			}
		}
	}
}

// The planted world guarantees an analogue of the paper's example: the
// "keep warm for kids" concept's items are winter categories, so a Function
// or Material concentration should surface for some concept.
func TestInferenceFindsMeaningfulConcentrations(t *testing.T) {
	a := buildNet(t)
	m := NewMiner(a.Net, Config{MinLift: 1.5, MinCoverage: 0.25, MinItems: 4})
	found := false
	for _, c := range a.Net.NodesOfKind(core.KindEConcept) {
		rels := m.InferConcept(c)
		if len(rels) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no concept has any attribute concentration")
	}
}

func TestInferConceptSkipsSmallConcepts(t *testing.T) {
	a := buildNet(t)
	cfg := DefaultConfig()
	cfg.MinItems = 1 << 30
	m := NewMiner(a.Net, cfg)
	if rels := m.InferAll(); len(rels) != 0 {
		t.Fatalf("MinItems not respected: %d relations", len(rels))
	}
}

func TestDomainRestriction(t *testing.T) {
	a := buildNet(t)
	cfg := Config{MinLift: 1.2, MinCoverage: 0.2, MinItems: 4, Domains: []string{"Function"}}
	m := NewMiner(a.Net, cfg)
	for _, r := range m.InferAll() {
		if r.Domain != "Function" {
			t.Fatalf("domain restriction violated: %+v", r)
		}
	}
}

func TestMaterialize(t *testing.T) {
	a := buildNet(t)
	m := NewMiner(a.Net, DefaultConfig())
	rels := m.InferAll()
	if len(rels) == 0 {
		t.Skip("nothing to materialize in tiny world")
	}
	before := a.Net.NumEdges()
	added, err := m.Materialize(a.Net, rels)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(rels) {
		t.Fatalf("added %d of %d", added, len(rels))
	}
	if a.Net.NumEdges() != before+added {
		t.Fatal("edge count mismatch after materialize")
	}
	// Materialized edges are queryable and tagged "implied".
	r := rels[0]
	foundImplied := false
	for _, he := range a.Net.Out(r.Concept, core.EdgeInterpretedBy) {
		if he.Peer == r.Primitive && he.Rel == "implied" {
			foundImplied = true
			if he.Weight > 0.99 {
				t.Fatal("implied weight should be capped below manual edges")
			}
		}
	}
	if !foundImplied {
		t.Fatal("materialized edge not found")
	}
	// Idempotent: re-materializing updates weights, adds no edges.
	before = a.Net.NumEdges()
	if _, err := m.Materialize(a.Net, rels); err != nil {
		t.Fatal(err)
	}
	if a.Net.NumEdges() != before {
		t.Fatal("re-materialize duplicated edges")
	}
}

// TestMinerOnFrozenSnapshot is the serving configuration: mine from an
// immutable snapshot, materialize into the live net, and re-freeze.
func TestMinerOnFrozenSnapshot(t *testing.T) {
	a := buildNet(t)
	frozen := a.Net.Freeze()
	live := NewMiner(a.Net, DefaultConfig()).InferAll()
	snap := NewMiner(frozen, DefaultConfig())
	fromSnap := snap.InferAll()
	if len(fromSnap) != len(live) {
		t.Fatalf("frozen mining found %d relations, live found %d", len(fromSnap), len(live))
	}
	for i := range live {
		if live[i] != fromSnap[i] {
			t.Fatalf("relation %d differs: live %+v vs frozen %+v", i, live[i], fromSnap[i])
		}
	}
	if len(fromSnap) == 0 {
		t.Skip("nothing to materialize in tiny world")
	}
	before := a.Net.NumEdges()
	added, err := snap.Materialize(a.Net, fromSnap)
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.NumEdges() != before+added {
		t.Fatal("materializing from a frozen miner lost edges")
	}
	refrozen := a.Net.Freeze()
	if refrozen.NumEdges() != a.Net.NumEdges() {
		t.Fatal("re-freeze did not pick up materialized edges")
	}
}

func TestRelationsSortedByLift(t *testing.T) {
	a := buildNet(t)
	m := NewMiner(a.Net, Config{MinLift: 1.2, MinCoverage: 0.2, MinItems: 4})
	for _, c := range a.Net.NodesOfKind(core.KindEConcept) {
		rels := m.InferConcept(c)
		for i := 1; i < len(rels); i++ {
			if rels[i].Lift > rels[i-1].Lift {
				t.Fatal("relations not sorted by lift")
			}
		}
	}
}

// TestInferAllParallelDeterministic proves the fanned-out scan returns the
// same relations in the same order regardless of worker count: the run is
// repeated with GOMAXPROCS forced above 1 (par.For sizes its worker pool
// from it) and compared element-wise against itself and across stores.
func TestInferAllParallelDeterministic(t *testing.T) {
	a := buildNet(t)
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	m := NewMiner(a.Frozen, DefaultConfig())
	want := m.InferAll()
	if len(want) == 0 {
		t.Fatal("no relations to compare")
	}
	for run := 0; run < 5; run++ {
		got := m.InferAll()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d relations, want %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: relation %d = %+v, want %+v", run, i, got[i], want[i])
			}
		}
	}
	// Ordering contract: grouped by concept in ascending node-id order.
	for i := 1; i < len(want); i++ {
		if want[i].Concept < want[i-1].Concept {
			t.Fatalf("relations not grouped by ascending concept at %d", i)
		}
	}
}
