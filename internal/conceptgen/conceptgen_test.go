package conceptgen

import (
	"strings"
	"testing"

	"alicoco/internal/emb"
	"alicoco/internal/mat"
	"alicoco/internal/text"
	"alicoco/internal/world"
)

func TestMinePhrases(t *testing.T) {
	corpus := [][]string{}
	for i := 0; i < 5; i++ {
		corpus = append(corpus, []string{"outdoor", "barbecue", "is", "fun"})
	}
	stop := StopwordSet([]string{"is"})
	phrases := MinePhrases(corpus, 3, stop)
	found := false
	for _, p := range phrases {
		if p.Name() == "outdoor barbecue" {
			found = true
			if p.Count != 5 {
				t.Fatalf("count: got %d", p.Count)
			}
		}
		if strings.HasPrefix(p.Name(), "is ") || strings.HasSuffix(p.Name(), " is") {
			t.Fatalf("stopword boundary leaked: %q", p.Name())
		}
	}
	if !found {
		t.Fatal("frequent phrase not mined")
	}
}

func TestMinePhrasesMinCount(t *testing.T) {
	corpus := [][]string{{"rare", "pair"}, {"rare", "pair"}}
	if got := MinePhrases(corpus, 3, nil); len(got) != 0 {
		t.Fatalf("minCount not enforced: %v", got)
	}
}

func TestCombinerGeneratesFromPatterns(t *testing.T) {
	c := &Combiner{ByClass: map[string][]string{
		"Function": {"warm", "waterproof"},
		"Category": {"hat", "boots"},
		"Event":    {"traveling"},
		"Location": {"outdoor"},
		"Style":    {"casual"},
		"Time":     {"winter"},
		"Audience": {"kids"},
	}}
	cands := c.Generate(DefaultPatterns(), 12)
	if len(cands) != 12 {
		t.Fatalf("candidates: got %d", len(cands))
	}
	seen := make(map[string]bool)
	for _, cand := range cands {
		seen[strings.Join(cand, " ")] = true
	}
	if !seen["warm hat for traveling"] {
		t.Fatalf("expected 'warm hat for traveling' among %v", seen)
	}
	if !seen["outdoor barbecue"] { // Location Event with only outdoor+?? - no barbecue here
		// barbecue isn't in the Event list; just check the pattern shape exists
		foundLE := false
		for s := range seen {
			if s == "outdoor traveling" {
				foundLE = true
			}
		}
		if !foundLE {
			t.Fatalf("Location-Event pattern missing: %v", seen)
		}
	}
}

func TestCombinerExhaustsSpace(t *testing.T) {
	c := &Combiner{ByClass: map[string][]string{"Location": {"outdoor"}, "Event": {"barbecue"}}}
	cands := c.Generate([]Pattern{{"Location", "Event"}}, 10)
	if len(cands) != 1 {
		t.Fatalf("should exhaust after 1 combination: got %d", len(cands))
	}
}

func TestCombinerMultiTokenValues(t *testing.T) {
	c := &Combiner{ByClass: map[string][]string{"Time": {"mid-autumn festival"}, "Category": {"tea"}, "Audience": {"elders"}}}
	cands := c.Generate([]Pattern{{"Time", "Category", "for", "Audience"}}, 1)
	if len(cands) != 1 {
		t.Fatal("no candidate")
	}
	want := "mid-autumn festival tea for elders"
	if strings.Join(cands[0], " ") != want {
		t.Fatalf("got %q want %q", strings.Join(cands[0], " "), want)
	}
}

// classifierFixture builds the full featurizer stack over a tiny world.
type classifierFixture struct {
	w     *world.World
	fz    *Featurizer
	train []Sample
	test  []Sample
}

func buildClassifierFixture(t *testing.T, cfg Config, nData int) *classifierFixture {
	t.Helper()
	w := world.New(world.TinyConfig())
	corpus := w.GenCorpus(300, 300, 200)
	lm := text.NewNGramLM()
	lm.Train(corpus.All())

	w2vCfg := emb.DefaultW2VConfig()
	w2vCfg.Dim = cfg.GlossDim
	w2vCfg.Epochs = 2
	w2v := emb.TrainWord2Vec(corpus.All(), w2vCfg)
	d2v := emb.NewDoc2Vec(w2v)
	glossary := emb.BuildGlossary(w.Glosses, d2v)

	pos := text.NewPOSTagger()
	domainIdx := make(map[world.Domain]int)
	for i, d := range world.Domains {
		domainIdx[d] = i + 1
	}
	fz := &Featurizer{
		CharVocab: text.NewVocab(),
		WordVocab: text.NewVocab(),
		POS:       pos,
		LM:        lm,
		GlossDim:  cfg.GlossDim,
		UseLM:     cfg.UseLM,
		DomainOf: func(word string) int {
			ids := w.BySurface[word]
			if len(ids) == 0 {
				return 0
			}
			return domainIdx[w.Prim(ids[0]).Domain]
		},
		GlossVec: func(word string) mat.Vec {
			ids := w.BySurface[word]
			if len(ids) == 0 {
				return mat.NewVec(cfg.GlossDim)
			}
			return glossary.Vec(ids[0])
		},
	}

	cands := w.ConceptCandidates(nData)
	var samples []Sample
	for _, cand := range cands {
		samples = append(samples, Sample{Feat: fz.Featurize(cand.Tokens), Label: cand.Good})
	}
	split := len(samples) * 8 / 10
	return &classifierFixture{w: w, fz: fz, train: samples[:split], test: samples[split:]}
}

func TestClassifierLearnsCriteria(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	fx := buildClassifierFixture(t, cfg, 700)
	fx.fz.CharVocab.Freeze()
	fx.fz.WordVocab.Freeze()
	cls := NewClassifier(cfg, fx.fz.CharVocab.Len(), fx.fz.WordVocab.Len())
	loss := cls.Train(fx.train)
	if loss > 0.7 {
		t.Fatalf("training loss did not drop: %v", loss)
	}
	prec, acc := cls.EvaluatePrecision(fx.test)
	if prec < 0.7 || acc < 0.65 {
		t.Fatalf("full model too weak: precision=%.3f accuracy=%.3f", prec, acc)
	}
}

func TestAblationOrdering(t *testing.T) {
	// Baseline (no wide, no LM, no knowledge) should not beat the full
	// model on precision; this is the Table 4 shape at test scale.
	base := DefaultConfig()
	base.UseWide, base.UseLM, base.UseKnowledge = false, false, false
	base.Epochs = 3
	full := DefaultConfig()
	full.Epochs = 3

	fxB := buildClassifierFixture(t, base, 500)
	fxB.fz.CharVocab.Freeze()
	fxB.fz.WordVocab.Freeze()
	clsB := NewClassifier(base, fxB.fz.CharVocab.Len(), fxB.fz.WordVocab.Len())
	clsB.Train(fxB.train)
	precB, _ := clsB.EvaluatePrecision(fxB.test)

	fxF := buildClassifierFixture(t, full, 500)
	fxF.fz.CharVocab.Freeze()
	fxF.fz.WordVocab.Freeze()
	clsF := NewClassifier(full, fxF.fz.CharVocab.Len(), fxF.fz.WordVocab.Len())
	clsF.Train(fxF.train)
	precF, _ := clsF.EvaluatePrecision(fxF.test)

	if precF+0.02 < precB {
		t.Fatalf("full model (%.3f) should not be clearly worse than baseline (%.3f)", precF, precB)
	}
}

func TestFeaturizeShapes(t *testing.T) {
	cfg := DefaultConfig()
	fx := buildClassifierFixture(t, cfg, 20)
	ft := fx.fz.Featurize([]string{"outdoor", "barbecue"})
	if len(ft.WordIDs) != 2 || len(ft.POS) != 2 || len(ft.NER) != 2 || len(ft.Gloss) != 2 {
		t.Fatal("per-word feature lengths wrong")
	}
	if len(ft.CharIDs) != len("outdoor barbecue") {
		t.Fatalf("char ids: got %d", len(ft.CharIDs))
	}
	if len(ft.Wide) != WideDim {
		t.Fatalf("wide dim: got %d", len(ft.Wide))
	}
	if ft.NER[0] == 0 || ft.NER[1] == 0 {
		t.Fatal("known primitives should have NER domain ids")
	}
	if ft.Gloss[1].Norm() == 0 {
		t.Fatal("known primitive should have a gloss vector")
	}
}

func TestFeaturizeLMSignal(t *testing.T) {
	cfg := DefaultConfig()
	fx := buildClassifierFixture(t, cfg, 20)
	good := fx.fz.Featurize([]string{"outdoor", "barbecue"})
	scrambled := fx.fz.Featurize([]string{"barbecue", "outdoor", "the", "for"})
	// Wide slot 3 is normalized perplexity.
	if good.Wide[3] >= scrambled.Wide[3] {
		t.Fatalf("perplexity feature should separate fluent (%v) from scrambled (%v)", good.Wide[3], scrambled.Wide[3])
	}
}
