package conceptgen

import (
	"alicoco/internal/mat"
	"alicoco/internal/text"
)

// Features is the preprocessed input of one candidate concept for the
// classifier (Figure 5): char ids, word ids, POS/NER tag ids, per-word gloss
// knowledge vectors, and the wide feature vector.
type Features struct {
	Tokens  []string
	CharIDs []int
	WordIDs []int
	POS     []int
	NER     []int     // domain id per word (0 = none)
	Gloss   []mat.Vec // knowledge vector per word (zero vec if none)
	Wide    mat.Vec
}

// WideDim is the size of the wide feature vector:
// [numChars, numWords, avgWordLen, perplexity, minPopularity, avgPopularity, oovFraction].
const WideDim = 7

// Featurizer converts token sequences to Features. The NER and Gloss
// lookups come from the net under construction (known primitive surfaces),
// the LM is the fluency model, and the POS tagger supplies tag features.
type Featurizer struct {
	CharVocab *text.Vocab
	WordVocab *text.Vocab
	POS       *text.POSTagger
	LM        *text.NGramLM
	// DomainOf returns a dense id >= 1 for a word that is a known
	// primitive surface, 0 otherwise.
	DomainOf func(word string) int
	// GlossVec returns the knowledge vector for a word ("" vector when
	// unknown).
	GlossVec func(word string) mat.Vec
	GlossDim int
	// Ablation switches (Table 4): when UseLM is false the perplexity and
	// popularity slots are zeroed; the gloss branch is controlled by the
	// classifier config.
	UseLM bool
}

// NumDomains is the NER tag-embedding table size (20 domains + none).
const NumDomains = 21

// Featurize preprocesses a candidate. Vocabularies grow unless frozen.
func (f *Featurizer) Featurize(tokens []string) Features {
	ft := Features{Tokens: tokens}
	joined := ""
	for i, tok := range tokens {
		if i > 0 {
			joined += " "
		}
		joined += tok
	}
	for _, r := range joined {
		ft.CharIDs = append(ft.CharIDs, f.CharVocab.Add(string(r)))
	}
	ft.WordIDs = f.WordVocab.Encode(tokens)
	for _, p := range f.POS.TagSeq(tokens) {
		ft.POS = append(ft.POS, int(p))
	}
	nChars := float64(len(joined))
	nWords := float64(len(tokens))
	var minPop, sumPop float64
	minPop = 1
	oov := 0.0
	for _, tok := range tokens {
		ft.NER = append(ft.NER, f.DomainOf(tok))
		if f.GlossVec != nil {
			ft.Gloss = append(ft.Gloss, f.GlossVec(tok))
		} else {
			ft.Gloss = append(ft.Gloss, mat.NewVec(f.GlossDim))
		}
		pop := f.LM.WordFrequency(tok)
		if pop < minPop {
			minPop = pop
		}
		sumPop += pop
		if pop == 0 {
			oov++
		}
	}
	ppl := 0.0
	pops := [3]float64{}
	if f.UseLM {
		ppl = f.LM.Perplexity(tokens)
		if ppl > 1000 {
			ppl = 1000
		}
		ppl /= 1000 // normalize to [0,1]
		pops[0] = minPop * 100
		pops[1] = sumPop / nWords * 100
		pops[2] = oov / nWords
	}
	avgLen := nChars / nWords
	ft.Wide = mat.Vec{nChars / 30, nWords / 6, avgLen / 10, ppl, pops[0], pops[1], pops[2]}
	return ft
}
