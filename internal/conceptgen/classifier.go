package conceptgen

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
	"alicoco/internal/nn"
)

// Config controls the classifier and its Table 4 ablation switches. UseChar
// toggles the character-level branch, grouped with the surface-form wide
// features in the ablation.
type Config struct {
	CharDim, WordDim, POSDim, NERDim      int
	Hidden                                int // BiLSTM hidden per direction
	AttnDim                               int
	GlossDim                              int
	UseChar, UseWide, UseLM, UseKnowledge bool
	Epochs                                int
	LR                                    float64
	Seed                                  int64
}

// DefaultConfig returns laptop-scale hyperparameters for the full model.
func DefaultConfig() Config {
	return Config{
		CharDim: 12, WordDim: 20, POSDim: 4, NERDim: 6,
		Hidden: 12, AttnDim: 16, GlossDim: 16,
		UseChar: true, UseWide: true, UseLM: true, UseKnowledge: true,
		Epochs: 4, LR: 0.01, Seed: 23,
	}
}

// Classifier is the knowledge-enhanced Wide&Deep model of Figure 5.
type Classifier struct {
	cfg Config

	charEmb *nn.Embedding
	charBi  *nn.BiLSTM

	wordEmb *nn.Embedding
	posEmb  *nn.Embedding
	nerEmb  *nn.Embedding
	wordBi  *nn.BiLSTM
	attn    *nn.SelfAttention

	kAttn *nn.SelfAttention // knowledge branch (gloss self-attention)

	wideFC *nn.Dense
	head1  *nn.Dense
	head2  *nn.Dense

	params []*nn.Param
	opt    *nn.Adam
}

// NewClassifier builds the model for frozen vocab sizes.
func NewClassifier(cfg Config, charVocab, wordVocab int) *Classifier {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Classifier{cfg: cfg}

	wordIn := cfg.WordDim + cfg.POSDim + cfg.NERDim
	c.wordEmb = nn.NewEmbedding("cls.wordEmb", wordVocab, cfg.WordDim, rng)
	c.posEmb = nn.NewEmbedding("cls.posEmb", 8, cfg.POSDim, rng)
	c.nerEmb = nn.NewEmbedding("cls.nerEmb", NumDomains, cfg.NERDim, rng)
	c.wordBi = nn.NewBiLSTM("cls.wordBi", wordIn, cfg.Hidden, rng)
	c.attn = nn.NewSelfAttention("cls.attn", 2*cfg.Hidden, cfg.AttnDim, rng)

	layers := []nn.Layer{c.wordEmb, c.posEmb, c.nerEmb, c.wordBi, c.attn}

	deepDim := cfg.AttnDim // word attn max pool
	if cfg.UseChar {
		c.charEmb = nn.NewEmbedding("cls.charEmb", charVocab, cfg.CharDim, rng)
		c.charBi = nn.NewBiLSTM("cls.charBi", cfg.CharDim, cfg.Hidden, rng)
		layers = append(layers, c.charEmb, c.charBi)
		deepDim += 2 * cfg.Hidden // char mean pool
	}
	if cfg.UseKnowledge {
		c.kAttn = nn.NewSelfAttention("cls.kattn", cfg.GlossDim, cfg.AttnDim, rng)
		layers = append(layers, c.kAttn)
		deepDim += cfg.AttnDim
	}
	if cfg.UseWide {
		c.wideFC = nn.NewDense("cls.wide", WideDim, 8, nn.Tanh, rng)
		layers = append(layers, c.wideFC)
		deepDim += 8
	}
	c.head1 = nn.NewDense("cls.head1", deepDim, 16, nn.Tanh, rng)
	c.head2 = nn.NewDense("cls.head2", 16, 1, nn.Identity, rng)
	layers = append(layers, c.head1, c.head2)
	c.params = nn.CollectParams(layers...)
	c.opt = nn.NewAdam(cfg.LR, 5)
	return c
}

// forward computes the score and returns a backward closure that
// backpropagates d(loss)/d(logit).
func (c *Classifier) forward(ft Features) (float64, func(dLogit float64)) {
	// Char branch: embed -> BiLSTM -> mean pool.
	var c1 mat.Vec
	var charHs []mat.Vec
	var charCache *nn.BiLSTMCache
	if c.cfg.UseChar {
		charXs := c.charEmb.LookupSeq(ft.CharIDs)
		charHs, charCache = c.charBi.Forward(charXs)
		c1 = nn.MeanPool(charHs)
	}

	// Word branch: [word;pos;ner] -> BiLSTM -> self attention -> max pool.
	wordXs := make([]mat.Vec, len(ft.WordIDs))
	for i := range ft.WordIDs {
		wordXs[i] = mat.Concat(
			c.wordEmb.Lookup(ft.WordIDs[i]),
			c.posEmb.Lookup(ft.POS[i]),
			c.nerEmb.Lookup(ft.NER[i]),
		)
	}
	wordHs, wordCache := c.wordBi.Forward(wordXs)
	attnOut, attnCache := c.attn.Forward(wordHs)
	c2, c2Pool := nn.MaxPool(attnOut)

	parts := []mat.Vec{c2}
	if c.cfg.UseChar {
		parts = append(parts, c1)
	}

	// Knowledge branch: gloss vectors -> self attention -> max pool.
	var kOut []mat.Vec
	var kCache *nn.AttnCache
	var kPool *nn.MaxPoolCache
	if c.cfg.UseKnowledge {
		var k2 mat.Vec
		kOut, kCache = c.kAttn.Forward(ft.Gloss)
		k2, kPool = nn.MaxPool(kOut)
		parts = append(parts, k2)
	}

	// Wide branch.
	var wideCache *nn.DenseCache
	if c.cfg.UseWide {
		var c3 mat.Vec
		c3, wideCache = c.wideFC.Forward(ft.Wide)
		parts = append(parts, c3)
	}

	joint := mat.Concat(parts...)
	h, hCache := c.head1.Forward(joint)
	logitVec, oCache := c.head2.Forward(h)
	score := mat.Sigmoid(logitVec[0])

	back := func(dLogit float64) {
		dh := c.head2.Backward(mat.Vec{dLogit}, oCache)
		dJoint := c.head1.Backward(dh, hCache)
		off := 0
		take := func(n int) mat.Vec {
			seg := dJoint[off : off+n]
			off += n
			return mat.Vec(seg)
		}
		dc2 := take(len(c2))
		dAttnOut := nn.MaxPoolBackward(dc2, c2Pool)
		dWordHs := c.attn.Backward(dAttnOut, attnCache)
		dWordXs := c.wordBi.Backward(dWordHs, wordCache)
		for i, dx := range dWordXs {
			c.wordEmb.Accumulate(ft.WordIDs[i], dx[:c.cfg.WordDim])
			c.posEmb.Accumulate(ft.POS[i], dx[c.cfg.WordDim:c.cfg.WordDim+c.cfg.POSDim])
			c.nerEmb.Accumulate(ft.NER[i], dx[c.cfg.WordDim+c.cfg.POSDim:])
		}

		if c.cfg.UseChar {
			dc1 := take(len(c1))
			dCharHs := nn.MeanPoolBackward(dc1, len(charHs))
			dCharXs := c.charBi.Backward(dCharHs, charCache)
			c.charEmb.AccumulateSeq(ft.CharIDs, dCharXs)
		}

		if c.cfg.UseKnowledge {
			dk2 := take(c.cfg.AttnDim)
			dkOut := nn.MaxPoolBackward(dk2, kPool)
			c.kAttn.Backward(dkOut, kCache) // gloss vectors are frozen inputs
			_ = kOut
		}
		if c.cfg.UseWide {
			dc3 := take(8)
			c.wideFC.Backward(dc3, wideCache)
		}
	}
	return score, back
}

// Score returns the probability that the candidate is a good e-commerce
// concept.
func (c *Classifier) Score(ft Features) float64 {
	s, _ := c.forward(ft)
	nn.ZeroGrads(c.params)
	return s
}

// Sample is one labeled training candidate.
type Sample struct {
	Feat  Features
	Label bool
}

// Train fits the classifier with the point-wise negative log-likelihood of
// Equation 3. Returns the final average loss.
func (c *Classifier) Train(samples []Sample) float64 {
	rng := rand.New(rand.NewSource(c.cfg.Seed + 1))
	var last float64
	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(samples))
		var total float64
		for _, pi := range perm {
			s := samples[pi]
			score, back := c.forward(s.Feat)
			y := 0.0
			if s.Label {
				y = 1
			}
			eps := 1e-12
			if s.Label {
				total += -math.Log(score + eps)
			} else {
				total += -math.Log(1 - score + eps)
			}
			back(score - y) // d(BCE)/d(logit)
			c.opt.Step(c.params)
		}
		last = total / float64(len(samples))
	}
	return last
}

// EvaluatePrecision returns classification precision on the positive class
// at threshold 0.5 (the Table 4 metric) plus overall accuracy.
func (c *Classifier) EvaluatePrecision(samples []Sample) (precision, accuracy float64) {
	tp, fp, correct := 0, 0, 0
	for _, s := range samples {
		pred := c.Score(s.Feat) >= 0.5
		if pred == s.Label {
			correct++
		}
		if pred && s.Label {
			tp++
		} else if pred && !s.Label {
			fp++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	accuracy = float64(correct) / float64(len(samples))
	return precision, accuracy
}
