// Package conceptgen implements e-commerce concept generation
// (Section 5.2): candidate generation by phrase mining (an AutoPhrase-lite
// over the corpus) and by pattern combination of primitive concepts, then
// the knowledge-enhanced Wide&Deep classifier that keeps only candidates
// meeting the five criteria of Section 5.1 (evaluated as Table 4).
package conceptgen

import (
	"sort"
	"strings"
)

// MinedPhrase is a candidate phrase with corpus support.
type MinedPhrase struct {
	Tokens []string
	Count  int
}

// Name returns the space-joined phrase.
func (p MinedPhrase) Name() string { return strings.Join(p.Tokens, " ") }

// MinePhrases extracts frequent 2-4 token phrases from the corpus whose
// boundaries are content words — the AutoPhrase stand-in. A phrase must
// occur at least minCount times and not start or end with a stopword.
func MinePhrases(corpus [][]string, minCount int, stopwords map[string]bool) []MinedPhrase {
	counts := make(map[string]int)
	for _, sent := range corpus {
		for n := 2; n <= 4; n++ {
			for i := 0; i+n <= len(sent); i++ {
				first, last := sent[i], sent[i+n-1]
				if stopwords[first] || stopwords[last] {
					continue
				}
				counts[strings.Join(sent[i:i+n], " ")]++
			}
		}
	}
	var out []MinedPhrase
	for phrase, c := range counts {
		if c < minCount {
			continue
		}
		out = append(out, MinedPhrase{Tokens: strings.Fields(phrase), Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// StopwordSet builds a lookup set.
func StopwordSet(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// Pattern is a combination template over primitive-concept classes
// (Table 1 of the paper), e.g. {"Function", "Category", "for", "Event"}:
// capitalized elements are class slots, lower-case elements are literals.
type Pattern []string

// DefaultPatterns mirrors Table 1.
func DefaultPatterns() []Pattern {
	return []Pattern{
		{"Function", "Category", "for", "Event"},
		{"Style", "Time", "Category"},
		{"Location", "Event"},
		{"Function", "for", "Audience"},
		{"Event", "in", "Location"},
		{"Time", "Category", "for", "Audience"},
	}
}

// Combiner generates candidates by filling patterns with primitives.
type Combiner struct {
	// ByClass maps a class name to the surface forms available for it.
	ByClass map[string][]string
}

// Generate fills each pattern with the idx-th combination in mixed-radix
// order, yielding up to n candidates round-robin across patterns. The
// output is deterministic.
func (c *Combiner) Generate(patterns []Pattern, n int) [][]string {
	var out [][]string
	if n <= 0 {
		return out
	}
	counters := make([]int, len(patterns))
	for len(out) < n {
		progressed := false
		for pi, pat := range patterns {
			if len(out) >= n {
				break
			}
			cand, ok := c.fill(pat, counters[pi])
			counters[pi]++
			if !ok {
				continue
			}
			progressed = true
			out = append(out, cand)
		}
		if !progressed {
			break
		}
	}
	return out
}

// fill instantiates pattern slots using the idx-th mixed-radix combination;
// ok is false when idx exceeds the combination space.
func (c *Combiner) fill(pat Pattern, idx int) ([]string, bool) {
	sizes := make([]int, 0, len(pat))
	for _, el := range pat {
		if isSlot(el) {
			vals := c.ByClass[el]
			if len(vals) == 0 {
				return nil, false
			}
			sizes = append(sizes, len(vals))
		}
	}
	total := 1
	for _, s := range sizes {
		total *= s
		if total > 1<<30 {
			break
		}
	}
	if idx >= total {
		return nil, false
	}
	var tokens []string
	si := 0
	rem := idx
	for _, el := range pat {
		if !isSlot(el) {
			tokens = append(tokens, el)
			continue
		}
		vals := c.ByClass[el]
		choice := rem % len(vals)
		rem /= len(vals)
		_ = si
		tokens = append(tokens, strings.Fields(vals[choice])...)
	}
	return tokens, true
}

func isSlot(el string) bool {
	return len(el) > 0 && el[0] >= 'A' && el[0] <= 'Z'
}
