// Package search implements the Section 8.1 applications on top of the
// concept net: semantic search with concept cards (Figure 2a), coverage
// measurement against a CPV-only ontology (Section 7.1), and isA-expanded
// relevance (Section 8.1.1).
package search

import (
	"sort"
	"strings"

	"alicoco/internal/core"
	"alicoco/internal/text"
)

// ConceptCard is the Figure 2 card: a concept with its associated items.
type ConceptCard struct {
	Concept core.NodeID
	Name    string
	Items   []core.NodeID
}

// Response is a search result: zero or more concept cards plus plain item
// hits.
type Response struct {
	Cards []ConceptCard
	Items []core.NodeID
}

// Engine answers queries against a net. It holds a core.Reader, so it can
// serve either a live *core.Net or — the production configuration — an
// immutable *core.FrozenNet snapshot, whose reads are lock-free and
// allocation-free. All Engine methods are safe for concurrent use when the
// reader is.
type Engine struct {
	net       core.Reader
	seg       *text.Segmenter
	stopwords map[string]bool
}

// NewEngine indexes the net's primitive and e-commerce concept surfaces.
func NewEngine(net core.Reader, stopwords []string) *Engine {
	e := &Engine{net: net, seg: text.NewSegmenter(), stopwords: make(map[string]bool)}
	for _, w := range stopwords {
		e.stopwords[w] = true
	}
	for _, id := range net.NodesOfKind(core.KindPrimitive) {
		nd, _ := net.Node(id)
		e.seg.AddPhrase(strings.Fields(nd.Name), "prim")
	}
	for _, id := range net.NodesOfKind(core.KindEConcept) {
		nd, _ := net.Node(id)
		e.seg.AddPhrase(strings.Fields(nd.Name), "ecpt")
	}
	return e
}

// Search resolves a query to concept cards and items: an exact e-commerce
// concept match triggers its card (the "baking" flow of Figure 2a);
// otherwise matched primitives vote for the concepts they interpret.
func (e *Engine) Search(query string, maxItems int) Response {
	tokens := text.Tokenize(query)
	var resp Response

	// 1. Exact e-commerce concept match.
	if ids := e.net.FindByNameKind(strings.Join(tokens, " "), core.KindEConcept); len(ids) > 0 {
		resp.Cards = append(resp.Cards, e.card(ids[0], maxItems))
		return resp
	}

	// 2. Primitive-concept voting: concepts interpreted by the most
	// matched primitives win.
	matched := e.matchPrimitives(tokens)
	votes := make(map[core.NodeID]int)
	for _, prim := range matched {
		for _, he := range e.net.In(prim, core.EdgeInterpretedBy) {
			votes[he.Peer]++
		}
	}
	type scored struct {
		id    core.NodeID
		votes int
	}
	var ranked []scored
	for id, v := range votes {
		ranked = append(ranked, scored{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].votes != ranked[j].votes {
			return ranked[i].votes > ranked[j].votes
		}
		return ranked[i].id < ranked[j].id
	})
	for i := 0; i < len(ranked) && i < 3; i++ {
		if ranked[i].votes*2 >= len(matched) { // at least half the query matched
			resp.Cards = append(resp.Cards, e.card(ranked[i].id, maxItems))
		}
	}

	// 3. Plain item hits from matched primitives (CPV-style retrieval).
	// maxItems caps the total across all matched primitives (maxItems <= 0
	// means unlimited), so the cap check must leave both loops.
	seen := make(map[core.NodeID]bool)
collect:
	for _, prim := range matched {
		for _, he := range e.net.In(prim, core.EdgeItemPrimitive) {
			if maxItems > 0 && len(resp.Items) >= maxItems {
				break collect
			}
			if !seen[he.Peer] {
				seen[he.Peer] = true
				resp.Items = append(resp.Items, he.Peer)
			}
		}
	}
	sort.Slice(resp.Items, func(i, j int) bool { return resp.Items[i] < resp.Items[j] })
	return resp
}

func (e *Engine) card(concept core.NodeID, maxItems int) ConceptCard {
	nd, _ := e.net.Node(concept)
	card := ConceptCard{Concept: concept, Name: nd.Name}
	for _, he := range e.net.ItemsForEConcept(concept, maxItems) {
		card.Items = append(card.Items, he.Peer)
	}
	return card
}

// matchPrimitives max-matches the query against primitive surfaces.
func (e *Engine) matchPrimitives(tokens []string) []core.NodeID {
	var out []core.NodeID
	for _, seg := range e.seg.MaxMatch(tokens) {
		if len(seg.Labels) == 0 {
			continue
		}
		surface := strings.Join(tokens[seg.Start:seg.End], " ")
		for _, id := range e.net.FindByNameKind(surface, core.KindPrimitive) {
			out = append(out, id)
			break // first reading is enough for retrieval
		}
	}
	return out
}

// Covered reports whether every non-stopword token of the query is part of
// some known concept surface — the Section 7.1 coverage criterion.
func (e *Engine) Covered(tokens []string) bool {
	segs := e.seg.MaxMatch(tokens)
	for _, seg := range segs {
		if len(seg.Labels) > 0 {
			continue
		}
		for i := seg.Start; i < seg.End; i++ {
			if !e.stopwords[tokens[i]] {
				return false
			}
		}
	}
	return true
}

// NewCPVEngine builds the Section 7.1 baseline: an engine that only knows
// CPV vocabulary (categories, brands and property values) — no e-commerce
// concepts, no general-purpose domains.
func NewCPVEngine(net core.Reader, stopwords []string) *Engine {
	cpvDomains := map[string]bool{
		"Category": true, "Brand": true, "Color": true, "Material": true,
		"Design": true, "Function": true, "Pattern": true, "Shape": true,
		"Smell": true, "Taste": true, "Style": true, "Quantity": true,
	}
	e := &Engine{net: net, seg: text.NewSegmenter(), stopwords: make(map[string]bool)}
	for _, w := range stopwords {
		e.stopwords[w] = true
	}
	for _, id := range net.NodesOfKind(core.KindPrimitive) {
		nd, _ := net.Node(id)
		if cpvDomains[nd.Domain] {
			e.seg.AddPhrase(strings.Fields(nd.Name), "prim")
		}
	}
	return e
}
