// Package search implements the Section 8.1 applications on top of the
// concept net: semantic search with concept cards (Figure 2a), coverage
// measurement against a CPV-only ontology (Section 7.1), and isA-expanded
// relevance (Section 8.1.1).
package search

import (
	"context"
	"encoding/binary"
	"slices"
	"strings"
	"sync"

	"alicoco/internal/core"
	"alicoco/internal/qcache"
	"alicoco/internal/text"
	"alicoco/internal/topk"
)

// ConceptCard is the Figure 2 card: a concept with its associated items.
type ConceptCard struct {
	Concept core.NodeID
	Name    string
	Items   []core.NodeID
}

// Response is a search result: zero or more concept cards plus plain item
// hits. A Response can be reused across queries via SearchInto, which
// recycles the Cards/Items backing arrays — the zero-allocation serving
// configuration.
type Response struct {
	Cards []ConceptCard
	Items []core.NodeID
}

// maxVotedCards bounds how many primitive-voted concept cards one query can
// trigger; the ranking keeps only this many concepts, so voting is
// O(concepts·log maxVotedCards) with no full sort.
const maxVotedCards = 3

// scratch is the per-request working memory of one Search call. Engines
// recycle scratches through a sync.Pool, so steady-state queries reuse the
// token buffer, the name-join buffer, the vote map, and the top-k heap of
// an earlier request instead of allocating their own.
type scratch struct {
	raw    []byte               // copy of a string query (the bytes core's input)
	low    []byte               // lower-cased query bytes
	tokens [][]byte             // token views into low
	name   []byte               // space-joined tokens, the exact-match key
	key    []byte               // query-cache key (maxItems + raw query bytes)
	segs   []text.Segment       // max-match segmentation buffer
	prims  []core.NodeID        // matched primitive concepts
	votes  map[core.NodeID]int  // concept -> primitive votes
	seen   map[core.NodeID]bool // item dedup for plain hits
	heap   topk.Heap
}

// Engine answers queries against a net. It holds a core.Reader, so it can
// serve either a live *core.Net or — the production configuration — an
// immutable *core.FrozenNet snapshot, whose reads are lock-free and
// allocation-free. All Engine methods are safe for concurrent use when the
// reader is; concurrent Search calls each draw their own pooled scratch.
type Engine struct {
	net       core.Reader
	seg       *text.Segmenter
	stopwords map[string]bool
	pool      sync.Pool // *scratch
	// cache, when attached, memoizes composed query results keyed on the
	// raw query bytes and stamped with the serving snapshot's generation;
	// see UseCache.
	cache *qcache.Cache
	stamp qcache.Stamp
}

func newEngine(net core.Reader, stopwords []string) *Engine {
	e := &Engine{net: net, seg: text.NewSegmenter(), stopwords: make(map[string]bool)}
	for _, w := range stopwords {
		e.stopwords[w] = true
	}
	e.pool.New = func() any {
		return &scratch{
			votes: make(map[core.NodeID]int),
			seen:  make(map[core.NodeID]bool),
		}
	}
	return e
}

// NewEngine indexes the net's primitive and e-commerce concept surfaces.
func NewEngine(net core.Reader, stopwords []string) *Engine {
	e := newEngine(net, stopwords)
	for _, id := range net.NodesOfKind(core.KindPrimitive) {
		nd, _ := net.Node(id)
		e.seg.AddPhrase(strings.Fields(nd.Name), "prim")
	}
	for _, id := range net.NodesOfKind(core.KindEConcept) {
		nd, _ := net.Node(id)
		e.seg.AddPhrase(strings.Fields(nd.Name), "ecpt")
	}
	return e
}

// Search resolves a query to concept cards and items: an exact e-commerce
// concept match triggers its card (the "baking" flow of Figure 2a);
// otherwise matched primitives vote for the concepts they interpret. The
// returned Response owns fresh slices; hot callers should reuse a Response
// through SearchInto instead.
func (e *Engine) Search(query string, maxItems int) Response {
	var resp Response
	e.SearchInto(&resp, query, maxItems)
	return resp
}

// UseCache attaches a shared query-result cache. Every entry is stamped
// with stamp — the publish generation (and snapshot checksum) of the net
// this engine serves — so entries written by an engine on an older
// snapshot can never satisfy this engine's lookups: a reload or refreeze
// invalidates the whole cache for free. Cache hits deep-copy the memoized
// Response into the caller's reused one, so the zero-allocation SearchInto
// contract survives caching.
func (e *Engine) UseCache(c *qcache.Cache, stamp qcache.Stamp) {
	e.cache = c
	e.stamp = stamp
}

// CacheStats reports the attached cache's counters (zero when uncached).
func (e *Engine) CacheStats() qcache.Stats { return e.cache.Stats() }

// SearchInto is Search writing into a caller-owned Response, recycling its
// backing arrays. On the exact-match path — a normalized query naming an
// e-commerce concept, answered from a frozen snapshot — a reused Response
// makes the whole call allocation-free: pooled scratch, zero-copy postings,
// recycled card storage. The pooled-DP segmenter and byte-keyed name
// lookups extend the same property to the voting (non-exact) path, and a
// cache hit costs only the deep copy into resp.
func (e *Engine) SearchInto(resp *Response, query string, maxItems int) {
	sc := e.pool.Get().(*scratch)
	defer e.pool.Put(sc)
	sc.raw = append(sc.raw[:0], query...)
	_ = e.searchInto(context.Background(), sc, resp, sc.raw, maxItems)
}

// SearchCtx is Search bounded by a context: the engine checks ctx at every
// phase boundary and per matched primitive on the uncached path, so one
// slow shard (or an expired deadline) abandons the query at the next shard
// crossing instead of stalling the whole scatter-gather. A cache hit never
// consults ctx — it is a single in-memory copy. On error the partially
// filled Response must be discarded.
func (e *Engine) SearchCtx(ctx context.Context, query string, maxItems int) (Response, error) {
	var resp Response
	err := e.SearchIntoCtx(ctx, &resp, query, maxItems)
	return resp, err
}

// SearchIntoCtx is SearchInto bounded by a context; see SearchCtx.
func (e *Engine) SearchIntoCtx(ctx context.Context, resp *Response, query string, maxItems int) error {
	sc := e.pool.Get().(*scratch)
	defer e.pool.Put(sc)
	sc.raw = append(sc.raw[:0], query...)
	return e.searchInto(ctx, sc, resp, sc.raw, maxItems)
}

// SearchBytesCtx is SearchBytes bounded by a context; see SearchCtx.
func (e *Engine) SearchBytesCtx(ctx context.Context, query []byte, maxItems int) (Response, error) {
	var resp Response
	err := e.SearchBytesIntoCtx(ctx, &resp, query, maxItems)
	return resp, err
}

// SearchBytesIntoCtx is SearchBytesInto bounded by a context; see
// SearchCtx.
func (e *Engine) SearchBytesIntoCtx(ctx context.Context, resp *Response, query []byte, maxItems int) error {
	sc := e.pool.Get().(*scratch)
	defer e.pool.Put(sc)
	return e.searchInto(ctx, sc, resp, query, maxItems)
}

// SearchBytes is Search for a query held as raw bytes (e.g. decoded
// straight out of a request body) — no string is ever materialized on the
// way to the engine.
func (e *Engine) SearchBytes(query []byte, maxItems int) Response {
	var resp Response
	e.SearchBytesInto(&resp, query, maxItems)
	return resp
}

// SearchBytesInto is SearchInto for a byte-slice query; both entry points
// share one bytes core, so results and cache keys are byte-identical for
// equal query bytes.
func (e *Engine) SearchBytesInto(resp *Response, query []byte, maxItems int) {
	sc := e.pool.Get().(*scratch)
	defer e.pool.Put(sc)
	_ = e.searchInto(context.Background(), sc, resp, query, maxItems)
}

// searchInto is the shared core behind the string and bytes entry points:
// cache probe, engine dispatch, cache fill. The unbounded entry points
// pass context.Background(), whose Err is a constant nil — the checks cost
// nothing there, keeping the zero-allocation contract intact.
func (e *Engine) searchInto(ctx context.Context, sc *scratch, resp *Response, query []byte, maxItems int) error {
	resp.Cards = resp.Cards[:0]
	resp.Items = resp.Items[:0]

	if e.cache != nil {
		sc.key = appendSearchKey(sc.key[:0], query, maxItems)
		if v, ok := e.cache.Get(e.stamp, sc.key); ok {
			copyResponse(resp, v.(*Response))
			return nil
		}
	}
	if err := e.searchUncached(ctx, sc, resp, query, maxItems); err != nil {
		// Abandoned mid-computation: resp is partial, never cache it.
		return err
	}
	if e.cache != nil {
		e.cache.Put(e.stamp, sc.key, cloneResponse(resp))
	}
	return nil
}

// searchUncached computes the answer through the engines; sc is the
// caller's pooled scratch. ctx is checked between phases and per matched
// primitive — each check sits just after a shard crossing, so a query
// stalled by one slow shard is abandoned at the next boundary.
func (e *Engine) searchUncached(ctx context.Context, sc *scratch, resp *Response, query []byte, maxItems int) error {
	sc.low = text.AppendLower(sc.low[:0], query)
	sc.tokens = text.AppendTokensBytes(sc.tokens[:0], sc.low)

	// 1. Exact e-commerce concept match, keyed through the reused join
	// buffer so no query string is materialized.
	sc.name = text.AppendJoinBytes(sc.name[:0], sc.tokens)
	if id := e.net.FirstByNameKindBytes(sc.name, core.KindEConcept); id != core.InvalidNode {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.appendCard(resp, id, maxItems)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// 2. Primitive-concept voting: concepts interpreted by the most
	// matched primitives win. The bounded heap keeps the maxVotedCards
	// best (votes desc, id asc — the order the full sort used) without
	// ranking every candidate.
	sc.prims = e.appendMatchPrimitives(sc, sc.prims[:0], sc.tokens)
	clear(sc.votes)
	for _, prim := range sc.prims {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, he := range e.net.In(prim, core.EdgeInterpretedBy) {
			sc.votes[he.Peer]++
		}
	}
	sc.heap.Reset(maxVotedCards)
	for id, v := range sc.votes {
		sc.heap.Push(id, float64(v))
	}
	for _, ent := range sc.heap.Descending() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if int(ent.Score)*2 >= len(sc.prims) { // at least half the query matched
			e.appendCard(resp, ent.ID, maxItems)
		}
	}

	// 3. Plain item hits from matched primitives (CPV-style retrieval).
	// maxItems caps the total across all matched primitives (maxItems <= 0
	// means unlimited), so the cap check must leave both loops.
	clear(sc.seen)
collect:
	for _, prim := range sc.prims {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, he := range e.net.In(prim, core.EdgeItemPrimitive) {
			if maxItems > 0 && len(resp.Items) >= maxItems {
				break collect
			}
			if !sc.seen[he.Peer] {
				sc.seen[he.Peer] = true
				resp.Items = append(resp.Items, he.Peer)
			}
		}
	}
	slices.Sort(resp.Items) // unlike sort.Slice, allocation-free
	return nil
}

// appendCard appends the concept's card to resp, reviving the Items backing
// array of a card previously stored in the same slot when the Response is
// being reused.
func (e *Engine) appendCard(resp *Response, concept core.NodeID, maxItems int) {
	if cap(resp.Cards) > len(resp.Cards) {
		resp.Cards = resp.Cards[:len(resp.Cards)+1]
	} else {
		resp.Cards = append(resp.Cards, ConceptCard{})
	}
	card := &resp.Cards[len(resp.Cards)-1]
	nd, _ := e.net.Node(concept)
	card.Concept = concept
	card.Name = nd.Name
	card.Items = card.Items[:0]
	for _, he := range e.net.ItemsForEConcept(concept, maxItems) {
		card.Items = append(card.Items, he.Peer)
	}
}

// appendMatchPrimitives max-matches the query against primitive surfaces.
// It runs on the scratch's reused segmentation buffer and resolves each
// matched surface through the byte-keyed exact lookup, so the voting path
// stays allocation-free (the first reading of a surface is enough for
// retrieval, which is exactly what FirstByNameKindBytes returns).
func (e *Engine) appendMatchPrimitives(sc *scratch, dst []core.NodeID, tokens [][]byte) []core.NodeID {
	sc.segs = e.seg.SegmentBytesInto(sc.segs[:0], tokens)
	for _, seg := range sc.segs {
		if len(seg.Labels) == 0 {
			continue
		}
		sc.name = text.AppendJoinBytes(sc.name[:0], tokens[seg.Start:seg.End])
		if id := e.net.FirstByNameKindBytes(sc.name, core.KindPrimitive); id != core.InvalidNode {
			dst = append(dst, id)
		}
	}
	return dst
}

// appendSearchKey builds the cache key: maxItems (part of the answer
// shape, full 64-bit so distinct values can never collide) followed by
// the raw query bytes.
func appendSearchKey(dst []byte, query []byte, maxItems int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(maxItems)))
	return append(dst, query...)
}

// copyResponse deep-copies a cached canonical Response into a caller-owned
// one, reviving dst's backing arrays exactly like appendCard does — with a
// reused dst the copy allocates nothing in steady state.
func copyResponse(dst *Response, src *Response) {
	for i := range src.Cards {
		if cap(dst.Cards) > len(dst.Cards) {
			dst.Cards = dst.Cards[:len(dst.Cards)+1]
		} else {
			dst.Cards = append(dst.Cards, ConceptCard{})
		}
		card := &dst.Cards[len(dst.Cards)-1]
		card.Concept = src.Cards[i].Concept
		card.Name = src.Cards[i].Name
		card.Items = append(card.Items[:0], src.Cards[i].Items...)
	}
	dst.Items = append(dst.Items[:0], src.Items...)
}

// cloneResponse makes the immutable copy the cache retains (the caller's
// resp is about to be recycled, so the cache cannot alias it).
func cloneResponse(resp *Response) *Response {
	out := &Response{
		Cards: make([]ConceptCard, len(resp.Cards)),
		Items: append([]core.NodeID(nil), resp.Items...),
	}
	for i, c := range resp.Cards {
		out.Cards[i] = ConceptCard{
			Concept: c.Concept,
			Name:    c.Name,
			Items:   append([]core.NodeID(nil), c.Items...),
		}
	}
	return out
}

// Covered reports whether every non-stopword token of the query is part of
// some known concept surface — the Section 7.1 coverage criterion.
func (e *Engine) Covered(tokens []string) bool {
	segs := e.seg.MaxMatch(tokens)
	for _, seg := range segs {
		if len(seg.Labels) > 0 {
			continue
		}
		for i := seg.Start; i < seg.End; i++ {
			if !e.stopwords[tokens[i]] {
				return false
			}
		}
	}
	return true
}

// NewCPVEngine builds the Section 7.1 baseline: an engine that only knows
// CPV vocabulary (categories, brands and property values) — no e-commerce
// concepts, no general-purpose domains.
func NewCPVEngine(net core.Reader, stopwords []string) *Engine {
	cpvDomains := map[string]bool{
		"Category": true, "Brand": true, "Color": true, "Material": true,
		"Design": true, "Function": true, "Pattern": true, "Shape": true,
		"Smell": true, "Taste": true, "Style": true, "Quantity": true,
	}
	e := newEngine(net, stopwords)
	for _, id := range net.NodesOfKind(core.KindPrimitive) {
		nd, _ := net.Node(id)
		if cpvDomains[nd.Domain] {
			e.seg.AddPhrase(strings.Fields(nd.Name), "prim")
		}
	}
	return e
}
