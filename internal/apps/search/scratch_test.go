package search

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"alicoco/internal/raceflag"
)

// respEqual compares two responses structurally.
func respEqual(a, b Response) bool {
	if len(a.Cards) != len(b.Cards) || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Cards {
		if a.Cards[i].Concept != b.Cards[i].Concept || a.Cards[i].Name != b.Cards[i].Name {
			return false
		}
		if len(a.Cards[i].Items) != len(b.Cards[i].Items) {
			return false
		}
		for j := range a.Cards[i].Items {
			if a.Cards[i].Items[j] != b.Cards[i].Items[j] {
				return false
			}
		}
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

// TestSearchIntoReusedMatchesFresh replays a randomized query stream
// through one reused Response and compares every answer against a fresh
// Search call — proving buffer recycling never leaks one query's result
// into the next (the dedicated equivalence leg of the zero-alloc path).
func TestSearchIntoReusedMatchesFresh(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Frozen, a.World.Stopwords())
	rng := rand.New(rand.NewSource(3))
	var queries []string
	queries = append(queries, "outdoor barbecue", "barbecue outdoor", "grill", "", "  ", "UNKNOWN tokens here")
	for _, qs := range a.World.QuerySet(60) {
		queries = append(queries, strings.Join(qs.Tokens, " "))
	}
	var reused Response
	for trial := 0; trial < 300; trial++ {
		q := queries[rng.Intn(len(queries))]
		maxItems := rng.Intn(12) // includes 0 = unlimited
		e.SearchInto(&reused, q, maxItems)
		fresh := e.Search(q, maxItems)
		if !respEqual(reused, fresh) {
			t.Fatalf("trial %d: reused response differs for %q (maxItems=%d):\nreused %+v\nfresh  %+v",
				trial, q, maxItems, reused, fresh)
		}
	}
}

// TestSearchIntoConcurrent hammers SearchInto from several goroutines with
// per-goroutine Responses; -race proves the pooled scratches never share
// state between in-flight queries.
func TestSearchIntoConcurrent(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Frozen, a.World.Stopwords())
	queries := []string{"outdoor barbecue", "barbecue outdoor", "grill", "coat"}
	want := make([]Response, len(queries))
	for i, q := range queries {
		want[i] = e.Search(q, 10)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var resp Response
			for i := 0; i < 200; i++ {
				qi := (g + i) % len(queries)
				e.SearchInto(&resp, queries[qi], 10)
				if !respEqual(resp, want[qi]) {
					t.Errorf("goroutine %d: answer for %q drifted", g, queries[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSearchExactMatchZeroAllocs is the CI guard for the tentpole property:
// an exact e-commerce concept query served from a frozen snapshot into a
// reused Response does zero allocations per call.
func TestSearchExactMatchZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race (sync.Pool drops items)")
	}
	a := buildArts(t)
	e := NewEngine(a.Frozen, a.World.Stopwords())
	var resp Response
	e.SearchInto(&resp, "outdoor barbecue", 10) // warm the pooled scratch
	if len(resp.Cards) == 0 {
		t.Fatal("exact query should produce a card")
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.SearchInto(&resp, "outdoor barbecue", 10)
	})
	if allocs != 0 {
		t.Fatalf("exact-match SearchInto allocates %.1f times per op, want 0", allocs)
	}
}

// TestSearchVotingPathStillCorrectAfterPooling pins the voting path's
// interaction with scratch reuse: a query with leftover state from a much
// larger previous query must not see stale votes or seen-items.
func TestSearchVotingPathStillCorrectAfterPooling(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Frozen, a.World.Stopwords())
	var resp Response
	// Large voting query first to dirty the scratch maps...
	e.SearchInto(&resp, "barbecue outdoor", 0)
	// ...then a query that matches nothing may not inherit anything.
	e.SearchInto(&resp, "zzz unknown words", 10)
	if len(resp.Cards) != 0 || len(resp.Items) != 0 {
		t.Fatalf("unknown query inherited pooled state: %+v", resp)
	}
}
