package search

import (
	"strings"
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/pipeline"
)

func buildArts(t *testing.T) *pipeline.Artifacts {
	t.Helper()
	a, err := pipeline.Build(pipeline.TinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSearchExactConceptCard(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Net, a.World.Stopwords())
	resp := e.Search("outdoor barbecue", 10)
	if len(resp.Cards) == 0 {
		t.Fatal("no card for exact concept query")
	}
	card := resp.Cards[0]
	if card.Name != "outdoor barbecue" {
		t.Fatalf("card name: %q", card.Name)
	}
	if len(card.Items) == 0 {
		t.Fatal("card has no items")
	}
	// Card items should include a grill.
	foundGrill := false
	for _, it := range card.Items {
		nd, _ := a.Net.Node(it)
		if strings.HasSuffix(nd.Name, "grill") {
			foundGrill = true
		}
	}
	if !foundGrill {
		t.Fatal("outdoor barbecue card should surface a grill")
	}
}

func TestSearchPrimitiveVoting(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Net, a.World.Stopwords())
	// "barbecue outdoor" is not an exact concept name; primitive voting
	// should still surface the outdoor barbecue card (the intro's
	// "barbecue outdoor" example).
	resp := e.Search("barbecue outdoor", 10)
	found := false
	for _, c := range resp.Cards {
		if c.Name == "outdoor barbecue" {
			found = true
		}
	}
	if !found {
		t.Fatalf("voting failed to surface the concept: %+v", resp.Cards)
	}
}

func TestSearchPlainCategory(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Net, a.World.Stopwords())
	resp := e.Search("grill", 5)
	if len(resp.Items) == 0 {
		t.Fatal("category query should return items")
	}
	for _, it := range resp.Items {
		nd, _ := a.Net.Node(it)
		if nd.Kind != core.KindItem {
			t.Fatal("non-item in item results")
		}
	}
}

func TestCoverageConceptNetBeatsCPV(t *testing.T) {
	a := buildArts(t)
	full := NewEngine(a.Net, a.World.Stopwords())
	cpv := NewCPVEngine(a.Net, a.World.Stopwords())
	qs := a.World.QuerySet(400)
	queries := make([][]string, len(qs))
	for i, q := range qs {
		queries[i] = q.Tokens
	}
	cFull := MeasureCoverage(full, queries)
	cCPV := MeasureCoverage(cpv, queries)
	if cFull.Rate() <= cCPV.Rate() {
		t.Fatalf("concept net coverage (%.2f) should beat CPV (%.2f)", cFull.Rate(), cCPV.Rate())
	}
	if cFull.Rate() < 0.55 {
		t.Fatalf("full coverage too low: %.2f", cFull.Rate())
	}
	if cCPV.Rate() > 0.55 {
		t.Fatalf("CPV coverage suspiciously high: %.2f", cCPV.Rate())
	}
}

func TestRelevanceIsAExpansion(t *testing.T) {
	a := buildArts(t)
	cases := BuildRelevanceCases(a.Net, 200, 3)
	if len(cases) < 50 {
		t.Fatalf("too few relevance cases: %d", len(cases))
	}
	plain := EvalRelevance(a.Net, cases, false)
	expanded := EvalRelevance(a.Net, cases, true)
	if expanded.AUC <= plain.AUC {
		t.Fatalf("isA expansion should raise AUC: %.3f vs %.3f", expanded.AUC, plain.AUC)
	}
	if expanded.BadCases >= plain.BadCases {
		t.Fatalf("isA expansion should cut bad cases: %d vs %d", expanded.BadCases, plain.BadCases)
	}
}

func TestCoveredRespectsStopwords(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Net, a.World.Stopwords())
	if !e.Covered([]string{"outdoor", "barbecue"}) {
		t.Fatal("known phrase should be covered")
	}
	if e.Covered([]string{"outdoor", "zzzgizmo"}) {
		t.Fatal("unknown token should break coverage")
	}
}

// TestSearchMaxItemsCapAcrossPrimitives is the regression test for the
// overflow where the per-primitive break let resp.Items grow past maxItems
// once several primitives matched.
func TestSearchMaxItemsCapAcrossPrimitives(t *testing.T) {
	a := buildArts(t)
	e := NewEngine(a.Net, a.World.Stopwords())
	// "barbecue outdoor" matches two primitives, each with item postings.
	for _, maxItems := range []int{1, 2, 3, 5} {
		resp := e.Search("barbecue outdoor", maxItems)
		if len(resp.Items) > maxItems {
			t.Fatalf("maxItems=%d but got %d items", maxItems, len(resp.Items))
		}
	}
	// maxItems <= 0 means unlimited: same hits as a huge cap.
	unlimited := e.Search("grill", 0)
	capped := e.Search("grill", 1<<20)
	if len(unlimited.Items) == 0 || len(unlimited.Items) != len(capped.Items) {
		t.Fatalf("maxItems=0 should mean unlimited: got %d vs %d", len(unlimited.Items), len(capped.Items))
	}
}

// TestSearchFrozenMatchesLive runs the same queries against an engine on
// the live net and one on its frozen snapshot.
func TestSearchFrozenMatchesLive(t *testing.T) {
	a := buildArts(t)
	live := NewEngine(a.Net, a.World.Stopwords())
	frozen := NewEngine(a.Frozen, a.World.Stopwords())
	queries := []string{"outdoor barbecue", "barbecue outdoor", "grill", "coat"}
	for _, qs := range a.World.QuerySet(50) {
		queries = append(queries, strings.Join(qs.Tokens, " "))
	}
	for _, q := range queries {
		lr := live.Search(q, 10)
		fr := frozen.Search(q, 10)
		if len(lr.Cards) != len(fr.Cards) {
			t.Fatalf("query %q: card count differs (live %d, frozen %d)", q, len(lr.Cards), len(fr.Cards))
		}
		for i := range lr.Cards {
			if lr.Cards[i].Name != fr.Cards[i].Name || len(lr.Cards[i].Items) != len(fr.Cards[i].Items) {
				t.Fatalf("query %q: card %d differs", q, i)
			}
		}
		if len(lr.Items) != len(fr.Items) {
			t.Fatalf("query %q: item count differs (live %d, frozen %d)", q, len(lr.Items), len(fr.Items))
		}
		for i := range lr.Items {
			if lr.Items[i] != fr.Items[i] {
				t.Fatalf("query %q: item %d differs", q, i)
			}
		}
	}
}
