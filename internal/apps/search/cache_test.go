package search

import (
	"math/rand"
	"strings"
	"testing"

	"alicoco/internal/qcache"
	"alicoco/internal/raceflag"
)

// TestSearchCachedMatchesUncached replays a randomized query stream (with
// heavy repetition, so hits actually occur) through a cached engine and
// compares every answer against an uncached twin — the cache may never
// change an answer, only its cost.
func TestSearchCachedMatchesUncached(t *testing.T) {
	a := buildArts(t)
	cached := NewEngine(a.Frozen, a.World.Stopwords())
	cached.UseCache(qcache.New(256), qcache.Stamp{Gen: 1})
	plain := NewEngine(a.Frozen, a.World.Stopwords())

	rng := rand.New(rand.NewSource(23))
	queries := []string{"outdoor barbecue", "barbecue outdoor", "grill", "", "UNKNOWN words"}
	for _, qs := range a.World.QuerySet(40) {
		queries = append(queries, strings.Join(qs.Tokens, " "))
	}
	var reused Response
	for trial := 0; trial < 600; trial++ {
		q := queries[rng.Intn(len(queries))]
		maxItems := rng.Intn(4) * 5 // repeats (q, maxItems) pairs often
		cached.SearchInto(&reused, q, maxItems)
		fresh := plain.Search(q, maxItems)
		if !respEqual(reused, fresh) {
			t.Fatalf("trial %d: cached answer differs for %q (maxItems=%d):\ncached %+v\nfresh  %+v",
				trial, q, maxItems, reused, fresh)
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Fatal("stream produced no cache hits; test is vacuous")
	}
}

// TestSearchCacheStampMiss: an engine on a newer stamp must never serve
// entries a previous engine wrote against the same shared cache.
func TestSearchCacheStampMiss(t *testing.T) {
	a := buildArts(t)
	shared := qcache.New(256)
	old := NewEngine(a.Frozen, a.World.Stopwords())
	old.UseCache(shared, qcache.Stamp{Gen: 1})
	old.Search("outdoor barbecue", 10) // populates gen-1 entry

	next := NewEngine(a.Frozen, a.World.Stopwords())
	next.UseCache(shared, qcache.Stamp{Gen: 2})
	before := shared.Stats()
	resp := next.Search("outdoor barbecue", 10)
	after := shared.Stats()
	if after.Hits != before.Hits {
		t.Fatal("gen-2 engine hit a gen-1 entry")
	}
	if len(resp.Cards) == 0 {
		t.Fatal("recomputed answer is wrong")
	}
	// And the recomputed entry now serves gen-2 lookups.
	next.Search("outdoor barbecue", 10)
	if final := shared.Stats(); final.Hits != after.Hits+1 {
		t.Fatal("gen-2 entry not cached")
	}
}

// TestSearchVotingZeroAllocs is the CI guard for the tentpole property: a
// non-exact (primitive-voting) query served from a frozen snapshot into a
// reused Response does zero allocations per call — the pooled segmenter
// scratch and byte-keyed surface lookups closed the last leaks.
func TestSearchVotingZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race (sync.Pool drops items)")
	}
	a := buildArts(t)
	e := NewEngine(a.Frozen, a.World.Stopwords())
	var resp Response
	// "barbecue outdoor" is not an e-commerce concept surface, so it takes
	// the voting path end-to-end (segmentation, primitive votes, card
	// ranking, plain item hits).
	e.SearchInto(&resp, "barbecue outdoor", 10) // warm pooled scratch + resp
	if len(resp.Cards) == 0 && len(resp.Items) == 0 {
		t.Fatal("voting query should produce results")
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.SearchInto(&resp, "barbecue outdoor", 10)
	})
	if allocs != 0 {
		t.Fatalf("voting SearchInto allocates %.1f times per op, want 0", allocs)
	}
}

// TestSearchCachedHitZeroAllocs: a cache hit deep-copied into a reused
// Response is also allocation-free, so attaching the cache cannot regress
// the zero-alloc serving property.
func TestSearchCachedHitZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race (sync.Pool drops items)")
	}
	a := buildArts(t)
	e := NewEngine(a.Frozen, a.World.Stopwords())
	e.UseCache(qcache.New(64), qcache.Stamp{Gen: 1})
	var resp Response
	e.SearchInto(&resp, "barbecue outdoor", 10) // miss: computes and stores
	e.SearchInto(&resp, "barbecue outdoor", 10) // hit: warms the copy path
	allocs := testing.AllocsPerRun(200, func() {
		e.SearchInto(&resp, "barbecue outdoor", 10)
	})
	if allocs != 0 {
		t.Fatalf("cached-hit SearchInto allocates %.1f times per op, want 0", allocs)
	}
	if st := e.CacheStats(); st.Hits == 0 {
		t.Fatal("guard never hit the cache")
	}
}
