package search

import (
	"math/rand"
	"strings"

	"alicoco/internal/core"
	"alicoco/internal/metrics"
	"alicoco/internal/par"
)

// RelevanceCase is one query-item relevance judgment for the Section 8.1.1
// experiment: the query is a broader class/hypernym word ("top"-style), the
// item is relevant when its category is a descendant of the query concept.
type RelevanceCase struct {
	Query    string
	QueryID  core.NodeID // primitive or class node of the query word
	Item     core.NodeID
	Relevant bool
}

// RelevanceResult is the Section 8.1.1 outcome: AUC of the relevance scores
// and the count of "bad cases" (relevant items scored zero).
type RelevanceResult struct {
	AUC      float64
	BadCases int
	Total    int
}

// BuildRelevanceCases samples queries with positive items drawn from the
// query concept or its descendant categories, negatives at random. Half the
// queries are leaf-level (the item title contains the word, so lexical
// matching works); half are hypernym-level ("top"-style queries where only
// isA expansion can find the relevant items).
func BuildRelevanceCases(net core.Reader, n int, seed int64) []RelevanceCase {
	rng := rand.New(rand.NewSource(seed))
	// Query pool: primitives that have isA descendants (hypernyms).
	var queries []core.NodeID
	for _, id := range net.NodesOfKind(core.KindPrimitive) {
		if len(net.In(id, core.EdgeIsA)) > 0 {
			queries = append(queries, id)
		}
	}
	// Leaf pool: primitives items attach to directly.
	var leaves []core.NodeID
	for _, id := range net.NodesOfKind(core.KindPrimitive) {
		if len(net.In(id, core.EdgeItemPrimitive)) > 0 {
			leaves = append(leaves, id)
		}
	}
	items := net.NodesOfKind(core.KindItem)
	var out []RelevanceCase
	for len(out) < n && len(queries) > 0 && len(leaves) > 0 && len(items) > 0 {
		var q core.NodeID
		if rng.Intn(2) == 0 {
			q = leaves[rng.Intn(len(leaves))]
		} else {
			q = queries[rng.Intn(len(queries))]
		}
		qn, _ := net.Node(q)
		// Positive: an item attached to q directly or transitively below it.
		var posItems []core.NodeID
		for _, he := range net.In(q, core.EdgeItemPrimitive) {
			posItems = append(posItems, he.Peer)
		}
		for _, d := range net.Descendants(q, 0) {
			for _, he := range net.In(d, core.EdgeItemPrimitive) {
				posItems = append(posItems, he.Peer)
			}
		}
		if len(posItems) == 0 {
			continue
		}
		out = append(out, RelevanceCase{Query: qn.Name, QueryID: q, Item: posItems[rng.Intn(len(posItems))], Relevant: true})
		// Negative: random item not under q.
		for tries := 0; tries < 20; tries++ {
			it := items[rng.Intn(len(items))]
			under := false
			for _, he := range net.Out(it, core.EdgeItemPrimitive) {
				if he.Peer == q || net.IsAncestor(he.Peer, q) {
					under = true
					break
				}
			}
			if !under {
				out = append(out, RelevanceCase{Query: qn.Name, QueryID: q, Item: it, Relevant: false})
				break
			}
		}
	}
	return out
}

// EvalRelevance scores each case lexically (query word appears in the item
// title) and, when expandIsA is set, also structurally (some item primitive
// has the query as an isA ancestor) — the "jacket is a kind of top" fix.
// Cases are independent, so scoring fans out across GOMAXPROCS workers;
// results land in index-addressed slots, keeping the outcome deterministic.
func EvalRelevance(net core.Reader, cases []RelevanceCase, expandIsA bool) RelevanceResult {
	scores := make([]float64, len(cases))
	labels := make([]bool, len(cases))
	par.For(0, len(cases), func(i int) {
		c := cases[i]
		nd, _ := net.Node(c.Item)
		score := 0.0
		if strings.Contains(" "+nd.Name+" ", " "+c.Query+" ") {
			score = 1
		}
		if expandIsA && score == 0 {
			for _, he := range net.Out(c.Item, core.EdgeItemPrimitive) {
				if he.Peer == c.QueryID || net.IsAncestor(he.Peer, c.QueryID) {
					score = 0.9
					break
				}
			}
		}
		scores[i] = score
		labels[i] = c.Relevant
	})
	bad := 0
	for i, c := range cases {
		if c.Relevant && scores[i] == 0 {
			bad++
		}
	}
	return RelevanceResult{AUC: metrics.AUC(scores, labels), BadCases: bad, Total: len(cases)}
}

// CoverageResult is one day's coverage sample (Section 7.1).
type CoverageResult struct {
	Covered int
	Total   int
}

// Rate returns the covered fraction.
func (c CoverageResult) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Covered) / float64(c.Total)
}

// MeasureCoverage counts queries fully covered by the engine's vocabulary.
// Queries fan out across GOMAXPROCS workers (the engine's segmenter is
// read-only after construction).
func MeasureCoverage(e *Engine, queries [][]string) CoverageResult {
	res := CoverageResult{Total: len(queries)}
	covered := make([]bool, len(queries))
	par.For(0, len(queries), func(i int) {
		covered[i] = e.Covered(queries[i])
	})
	for _, c := range covered {
		if c {
			res.Covered++
		}
	}
	return res
}
