package recommend

import (
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/pipeline"
)

type fixture struct {
	arts     *pipeline.Artifacts
	sessions [][2][]core.NodeID // (viewed, clicked) in node ids
	history  [][]core.NodeID    // co-view training sessions
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	arts, err := pipeline.Build(pipeline.TinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	raw := arts.World.ClickLog(120)
	f := &fixture{arts: arts}
	for i, s := range raw {
		var viewed, clicked []core.NodeID
		for _, id := range s.Viewed {
			viewed = append(viewed, arts.ItemNode[id])
		}
		for _, id := range s.Clicked {
			clicked = append(clicked, arts.ItemNode[id])
		}
		if i < 80 { // history for item-CF training
			f.history = append(f.history, append(append([]core.NodeID{}, viewed...), clicked...))
		} else {
			f.sessions = append(f.sessions, [2][]core.NodeID{viewed, clicked})
		}
	}
	return f
}

func TestRecommendInfersScenario(t *testing.T) {
	f := buildFixture(t)
	e := NewEngine(f.arts.Net)
	viewed, _ := f.sessions[0][0], f.sessions[0][1]
	rec, ok := e.Recommend(viewed, 5)
	if !ok {
		t.Fatal("no recommendation for a scenario session")
	}
	if rec.Reason == "" || rec.Reason == "for " {
		t.Fatalf("empty reason: %q", rec.Reason)
	}
	for _, it := range rec.Items {
		for _, v := range viewed {
			if it == v {
				t.Fatal("recommended an already viewed item")
			}
		}
	}
}

func TestConceptRecommenderBeatsItemCFOnHitRate(t *testing.T) {
	f := buildFixture(t)
	e := NewEngine(f.arts.Net)
	conceptRec := func(viewed []core.NodeID, k int) []core.NodeID {
		rec, ok := e.Recommend(viewed, k)
		if !ok {
			return nil
		}
		return rec.Items
	}
	cf := NewItemCF(f.history)
	k := 10
	resConcept := Replay(f.arts.Net, conceptRec, f.sessions, k)
	resCF := Replay(f.arts.Net, cf.Recommend, f.sessions, k)
	t.Logf("concept: %+v, itemCF: %+v", resConcept, resCF)
	if resConcept.HitRate <= resCF.HitRate {
		t.Fatalf("concept recommender (%.3f) should beat item-CF (%.3f) on scenario sessions", resConcept.HitRate, resCF.HitRate)
	}
	// Note: novelty parity is expected here because the item-CF baseline is
	// trained on the same scenario-structured sessions, so its co-view
	// matrix also crosses categories. The paper's novelty claim comes from
	// a user survey, not replay. We only require meaningful novelty.
	if resConcept.Novelty < 0.3 {
		t.Fatalf("concept recommender should cross categories: novelty %.3f", resConcept.Novelty)
	}
}

func TestItemCFRecommendsCoViewed(t *testing.T) {
	sessions := [][]core.NodeID{{1, 2, 3}, {1, 2}, {2, 3}}
	cf := NewItemCF(sessions)
	rec := cf.Recommend([]core.NodeID{1}, 2)
	if len(rec) == 0 || rec[0] != 2 {
		t.Fatalf("most co-viewed item should rank first: %v", rec)
	}
}

func TestRecommendEmptyViewed(t *testing.T) {
	f := buildFixture(t)
	e := NewEngine(f.arts.Net)
	if _, ok := e.Recommend(nil, 5); ok {
		t.Fatal("empty view history should not recommend")
	}
}

func TestReplayEmptySessions(t *testing.T) {
	f := buildFixture(t)
	res := Replay(f.arts.Net, func([]core.NodeID, int) []core.NodeID { return nil }, nil, 5)
	if res.HitRate != 0 || res.Covered != 0 {
		t.Fatalf("empty replay should be zero: %+v", res)
	}
}

// TestRecommendFrozenMatchesLive runs the same sessions through an engine
// on the live net and one on its frozen snapshot.
func TestRecommendFrozenMatchesLive(t *testing.T) {
	f := buildFixture(t)
	live := NewEngine(f.arts.Net)
	frozen := NewEngine(f.arts.Frozen)
	for _, s := range f.sessions {
		lr, lok := live.Recommend(s[0], 5)
		fr, fok := frozen.Recommend(s[0], 5)
		if lok != fok {
			t.Fatalf("ok differs for session %v", s[0])
		}
		if !lok {
			continue
		}
		if lr.Concept != fr.Concept || lr.Reason != fr.Reason {
			t.Fatalf("concept differs: live %+v vs frozen %+v", lr, fr)
		}
		if len(lr.Items) != len(fr.Items) {
			t.Fatalf("item count differs: live %v vs frozen %v", lr.Items, fr.Items)
		}
	}
	lrep := Replay(f.arts.Net, func(v []core.NodeID, k int) []core.NodeID {
		r, ok := live.Recommend(v, k)
		if !ok {
			return nil
		}
		return r.Items
	}, f.sessions, 10)
	frep := Replay(f.arts.Frozen, func(v []core.NodeID, k int) []core.NodeID {
		r, ok := frozen.Recommend(v, k)
		if !ok {
			return nil
		}
		return r.Items
	}, f.sessions, 10)
	if lrep.Covered != frep.Covered || lrep.HitRate != frep.HitRate || lrep.Novelty != frep.Novelty {
		t.Fatalf("replay differs: live %+v vs frozen %+v", lrep, frep)
	}
}
