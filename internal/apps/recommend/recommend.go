// Package recommend implements cognitive recommendation (Section 8.2):
// concept cards inferred from a user's viewed items, recommendation reasons
// (the concept name), and the item-CF baseline it is compared against.
package recommend

import (
	"sort"

	"alicoco/internal/core"
	"alicoco/internal/par"
)

// Recommendation is a Figure 2(b/c) card: a concept, the reason string shown
// to the user, and the recommended items.
type Recommendation struct {
	Concept core.NodeID
	Reason  string
	Items   []core.NodeID
}

// Engine recommends via the concept net. It reads through core.Reader, so
// production serving runs on a frozen snapshot with lock-free lookups and
// pre-sorted item postings; Engine methods are safe for concurrent use when
// the reader is.
type Engine struct {
	net core.Reader
}

// NewEngine wraps a net (live or frozen).
func NewEngine(net core.Reader) *Engine { return &Engine{net: net} }

// Recommend infers the user's latent shopping scenario from viewed items
// (each viewed item votes for the e-commerce concepts it serves), then
// recommends unseen items of the winning concept. The concept name is the
// recommendation reason (Section 8.2.2).
func (e *Engine) Recommend(viewed []core.NodeID, k int) (Recommendation, bool) {
	return e.RecommendRanked(viewed, k, nil)
}

// RecommendRanked is Recommend with an item-scoring model applied inside the
// concept's candidate set — the paper's production split of concept recall
// followed by ranking ("recommends items with highest weights after scoring
// with a ranking model", Section 1). score may be nil (edge-weight order).
func (e *Engine) RecommendRanked(viewed []core.NodeID, k int, score func(viewed []core.NodeID, item core.NodeID) float64) (Recommendation, bool) {
	votes := make(map[core.NodeID]float64)
	for _, item := range viewed {
		for _, he := range e.net.EConceptsForItem(item, 0) {
			votes[he.Peer] += he.Weight
		}
	}
	if len(votes) == 0 {
		return Recommendation{}, false
	}
	type scored struct {
		id core.NodeID
		v  float64
	}
	ranked := make([]scored, 0, len(votes))
	for id, v := range votes {
		ranked = append(ranked, scored{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].id < ranked[j].id
	})
	best := ranked[0].id
	nd, _ := e.net.Node(best)
	rec := Recommendation{Concept: best, Reason: "for " + nd.Name}
	seen := make(map[core.NodeID]bool, len(viewed))
	for _, v := range viewed {
		seen[v] = true
	}
	candidates := e.net.ItemsForEConcept(best, 0)
	if score != nil {
		type cand struct {
			id core.NodeID
			s  float64
		}
		cs := make([]cand, 0, len(candidates))
		for _, he := range candidates {
			if seen[he.Peer] {
				continue
			}
			cs = append(cs, cand{he.Peer, score(viewed, he.Peer)})
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].s != cs[j].s {
				return cs[i].s > cs[j].s
			}
			return cs[i].id < cs[j].id
		})
		for _, c := range cs {
			rec.Items = append(rec.Items, c.id)
			if len(rec.Items) >= k {
				break
			}
		}
		return rec, len(rec.Items) > 0
	}
	for _, he := range candidates {
		if seen[he.Peer] {
			continue
		}
		rec.Items = append(rec.Items, he.Peer)
		if len(rec.Items) >= k {
			break
		}
	}
	return rec, len(rec.Items) > 0
}

// CoViewScore builds a ranking function from co-view statistics, for use
// with RecommendRanked.
func CoViewScore(cf *ItemCF) func(viewed []core.NodeID, item core.NodeID) float64 {
	return func(viewed []core.NodeID, item core.NodeID) float64 {
		var s float64
		for _, v := range viewed {
			s += cf.co[v][item]
		}
		return s
	}
}

// ItemCF is the item-based collaborative filtering baseline of Section 1:
// recommendations are the items most co-viewed with the trigger items.
type ItemCF struct {
	co map[core.NodeID]map[core.NodeID]float64
}

// NewItemCF builds the co-occurrence model from historical sessions (each a
// set of item nodes seen together).
func NewItemCF(sessions [][]core.NodeID) *ItemCF {
	cf := &ItemCF{co: make(map[core.NodeID]map[core.NodeID]float64)}
	for _, s := range sessions {
		for i, a := range s {
			for j, b := range s {
				if i == j {
					continue
				}
				if cf.co[a] == nil {
					cf.co[a] = make(map[core.NodeID]float64)
				}
				cf.co[a][b]++
			}
		}
	}
	return cf
}

// Recommend returns the k items most co-viewed with the trigger set.
func (cf *ItemCF) Recommend(viewed []core.NodeID, k int) []core.NodeID {
	scores := make(map[core.NodeID]float64)
	seen := make(map[core.NodeID]bool, len(viewed))
	for _, v := range viewed {
		seen[v] = true
	}
	for _, v := range viewed {
		for peer, c := range cf.co[v] {
			if !seen[peer] {
				scores[peer] += c
			}
		}
	}
	type scored struct {
		id core.NodeID
		v  float64
	}
	ranked := make([]scored, 0, len(scores))
	for id, v := range scores {
		ranked = append(ranked, scored{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].id < ranked[j].id
	})
	out := make([]core.NodeID, 0, k)
	for _, s := range ranked {
		out = append(out, s.id)
		if len(out) >= k {
			break
		}
	}
	return out
}

// EvalResult is the offline replay outcome (Section 8.2.1): hit rate on
// held-out clicks (the CTR proxy) and novelty (recommended items outside the
// viewed items' categories).
type EvalResult struct {
	HitRate float64
	Novelty float64
	Covered float64 // fraction of sessions with any recommendation
}

// Recommender is anything mapping viewed items to recommendations.
type Recommender func(viewed []core.NodeID, k int) []core.NodeID

// Replay evaluates a recommender on test sessions: for each session the
// recommender sees the viewed items and is scored on whether it retrieves
// the held-out clicked items. Sessions are independent, so they fan out
// across GOMAXPROCS workers — rec must be safe for concurrent calls (the
// Engine and ItemCF recommenders are). Per-session outcomes land in
// index-addressed slots and are reduced in session order, so the result is
// deterministic regardless of scheduling.
func Replay(net core.Reader, rec Recommender, sessions [][2][]core.NodeID, k int) EvalResult {
	type outcome struct {
		counted, covered bool
		hit, novelty     float64
	}
	outs := make([]outcome, len(sessions))
	par.For(0, len(sessions), func(i int) {
		viewed, clicked := sessions[i][0], sessions[i][1]
		if len(viewed) == 0 || len(clicked) == 0 {
			return
		}
		outs[i].counted = true
		items := rec(viewed, k)
		if len(items) == 0 {
			return
		}
		outs[i].covered = true
		clickSet := make(map[core.NodeID]bool, len(clicked))
		for _, c := range clicked {
			clickSet[c] = true
		}
		hits := 0
		for _, it := range items {
			if clickSet[it] {
				hits++
			}
		}
		denom := len(clicked)
		if k < denom {
			denom = k
		}
		outs[i].hit = float64(hits) / float64(denom)
		outs[i].novelty = noveltyOf(net, viewed, items)
	})
	var res EvalResult
	nSessions := 0
	for _, o := range outs {
		if !o.counted {
			continue
		}
		nSessions++
		if !o.covered {
			continue
		}
		res.Covered++
		res.HitRate += o.hit
		res.Novelty += o.novelty
	}
	if res.Covered > 0 {
		res.HitRate /= res.Covered
		res.Novelty /= res.Covered
	}
	if nSessions > 0 {
		res.Covered /= float64(nSessions)
	}
	return res
}

// noveltyOf returns the fraction of recommended items whose category
// primitive differs from every viewed item's category.
func noveltyOf(net core.Reader, viewed, recommended []core.NodeID) float64 {
	viewedCats := make(map[core.NodeID]bool)
	for _, v := range viewed {
		for _, he := range net.Out(v, core.EdgeItemPrimitive) {
			nd, _ := net.Node(he.Peer)
			if nd.Domain == "Category" {
				viewedCats[he.Peer] = true
			}
		}
	}
	if len(recommended) == 0 {
		return 0
	}
	novel := 0
	for _, r := range recommended {
		isNovel := true
		for _, he := range net.Out(r, core.EdgeItemPrimitive) {
			if viewedCats[he.Peer] {
				isNovel = false
				break
			}
		}
		if isNovel {
			novel++
		}
	}
	return float64(novel) / float64(len(recommended))
}
