// Package recommend implements cognitive recommendation (Section 8.2):
// concept cards inferred from a user's viewed items, recommendation reasons
// (the concept name), and the item-CF baseline it is compared against.
package recommend

import (
	"context"
	"encoding/binary"
	"sort"
	"sync"

	"alicoco/internal/core"
	"alicoco/internal/par"
	"alicoco/internal/qcache"
	"alicoco/internal/topk"
)

// Recommendation is a Figure 2(b/c) card: a concept, the reason string shown
// to the user, and the recommended items. A Recommendation can be reused
// across sessions via RecommendInto, which recycles the Items backing array.
type Recommendation struct {
	Concept core.NodeID
	Reason  string
	Items   []core.NodeID
}

// scratch is the per-request working memory of one Recommend call, recycled
// through a sync.Pool so steady-state sessions reuse the vote map, the
// viewed-set, and the ranking heap instead of allocating their own.
type scratch struct {
	votes map[core.NodeID]float64 // concept -> accumulated edge weight
	seen  map[core.NodeID]bool    // viewed items, excluded from results
	key   []byte                  // session-cache key (k + viewed node ids)
	heap  topk.Heap
}

// Engine recommends via the concept net. It reads through core.Reader, so
// production serving runs on a frozen snapshot with lock-free lookups and
// pre-sorted item postings; Engine methods are safe for concurrent use when
// the reader is — concurrent calls each draw their own pooled scratch.
type Engine struct {
	net core.Reader
	// reasons precomputes the "for <concept>" reason string of every
	// e-commerce concept known at construction, so serving a session
	// builds no strings. Concepts added to a live net afterwards fall
	// back to concatenating (the serving configuration rebuilds the
	// engine on every published snapshot, so the map is always complete
	// there).
	reasons map[core.NodeID]string
	pool    sync.Pool // *scratch
	// cache, when attached, memoizes sessions keyed on (k, viewed ids)
	// and stamped with the serving snapshot's generation; see UseCache.
	cache *qcache.Cache
	stamp qcache.Stamp
}

// cachedRec is the immutable value the session cache retains: the outcome
// flag plus a private copy of the recommendation.
type cachedRec struct {
	ok  bool
	rec Recommendation
}

// NewEngine wraps a net (live or frozen).
func NewEngine(net core.Reader) *Engine {
	e := &Engine{net: net, reasons: make(map[core.NodeID]string)}
	for _, id := range net.NodesOfKind(core.KindEConcept) {
		nd, _ := net.Node(id)
		e.reasons[id] = "for " + nd.Name
	}
	e.pool.New = func() any {
		return &scratch{
			votes: make(map[core.NodeID]float64),
			seen:  make(map[core.NodeID]bool),
		}
	}
	return e
}

// UseCache attaches a shared session-result cache. Entries are stamped
// with the publish generation (and snapshot checksum) of the net this
// engine serves, so a reload or refreeze invalidates everything cached
// against older snapshots without any scan. Only the unscored path
// (score == nil, the serving configuration) is memoized: a caller-supplied
// ranking closure could change between calls, so scored sessions always
// compute. Hits deep-copy into the caller's reused Recommendation, keeping
// RecommendInto allocation-free.
func (e *Engine) UseCache(c *qcache.Cache, stamp qcache.Stamp) {
	e.cache = c
	e.stamp = stamp
}

// CacheStats reports the attached cache's counters (zero when uncached).
func (e *Engine) CacheStats() qcache.Stats { return e.cache.Stats() }

// reasonFor returns the recommendation reason for a concept.
func (e *Engine) reasonFor(concept core.NodeID) string {
	if r, ok := e.reasons[concept]; ok {
		return r
	}
	nd, _ := e.net.Node(concept)
	return "for " + nd.Name
}

// Recommend infers the user's latent shopping scenario from viewed items
// (each viewed item votes for the e-commerce concepts it serves), then
// recommends unseen items of the winning concept. The concept name is the
// recommendation reason (Section 8.2.2).
func (e *Engine) Recommend(viewed []core.NodeID, k int) (Recommendation, bool) {
	return e.RecommendRanked(viewed, k, nil)
}

// RecommendInto is Recommend writing into a caller-owned Recommendation,
// recycling its Items backing array across sessions.
func (e *Engine) RecommendInto(rec *Recommendation, viewed []core.NodeID, k int) bool {
	ok, _ := e.recommendRanked(context.Background(), rec, viewed, k, nil)
	return ok
}

// RecommendCtx is Recommend bounded by a context: the engine checks ctx
// per viewed item during concept voting and before the candidate scan, so
// a session stalled by one slow shard is abandoned at the next shard
// boundary instead of stalling the caller past its deadline. A cache hit
// never consults ctx. On error the Recommendation must be discarded.
func (e *Engine) RecommendCtx(ctx context.Context, viewed []core.NodeID, k int) (Recommendation, bool, error) {
	var rec Recommendation
	ok, err := e.RecommendIntoCtx(ctx, &rec, viewed, k)
	return rec, ok, err
}

// RecommendIntoCtx is RecommendInto bounded by a context; see RecommendCtx.
func (e *Engine) RecommendIntoCtx(ctx context.Context, rec *Recommendation, viewed []core.NodeID, k int) (bool, error) {
	return e.recommendRanked(ctx, rec, viewed, k, nil)
}

// RecommendRanked is Recommend with an item-scoring model applied inside the
// concept's candidate set — the paper's production split of concept recall
// followed by ranking ("recommends items with highest weights after scoring
// with a ranking model", Section 1). score may be nil (edge-weight order).
func (e *Engine) RecommendRanked(viewed []core.NodeID, k int, score func(viewed []core.NodeID, item core.NodeID) float64) (Recommendation, bool) {
	var rec Recommendation
	ok, _ := e.recommendRanked(context.Background(), &rec, viewed, k, score)
	return rec, ok
}

// recommendRanked is the shared core: cache probe, engine dispatch, cache
// fill. The unbounded entry points pass context.Background(), whose Err is
// a constant nil, so the ctx checks cost nothing on the zero-alloc path.
func (e *Engine) recommendRanked(ctx context.Context, rec *Recommendation, viewed []core.NodeID, k int, score func(viewed []core.NodeID, item core.NodeID) float64) (bool, error) {
	sc := e.pool.Get().(*scratch)
	defer e.pool.Put(sc)
	rec.Concept = core.InvalidNode
	rec.Reason = ""
	rec.Items = rec.Items[:0]

	cached := e.cache != nil && score == nil
	if cached {
		sc.key = appendSessionKey(sc.key[:0], viewed, k)
		if v, ok := e.cache.Get(e.stamp, sc.key); ok {
			cr := v.(*cachedRec)
			rec.Concept = cr.rec.Concept
			rec.Reason = cr.rec.Reason
			rec.Items = append(rec.Items[:0], cr.rec.Items...)
			return cr.ok, nil
		}
	}
	ok, err := e.recommendUncached(ctx, sc, rec, viewed, k, score)
	if err != nil {
		// Abandoned mid-computation: rec is partial, never cache it.
		return false, err
	}
	if cached {
		e.cache.Put(e.stamp, sc.key, &cachedRec{ok: ok, rec: Recommendation{
			Concept: rec.Concept,
			Reason:  rec.Reason,
			Items:   append([]core.NodeID(nil), rec.Items...),
		}})
	}
	return ok, nil
}

// appendSessionKey builds the cache key: k (part of the answer shape,
// full 64-bit so distinct values can never collide) followed by the
// viewed item nodes in session order.
func appendSessionKey(dst []byte, viewed []core.NodeID, k int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(k)))
	for _, id := range viewed {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	return dst
}

// recommendUncached computes the recommendation; sc is the caller's pooled
// scratch, and rec has already been reset. ctx is checked per viewed item
// and before the candidate scan — each check sits just after a shard
// crossing, so a session stalled by one slow shard is abandoned at the
// next boundary.
func (e *Engine) recommendUncached(ctx context.Context, sc *scratch, rec *Recommendation, viewed []core.NodeID, k int, score func(viewed []core.NodeID, item core.NodeID) float64) (bool, error) {
	clear(sc.votes)
	for _, item := range viewed {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		for _, he := range e.net.EConceptsForItem(item, 0) {
			sc.votes[he.Peer] += he.Weight
		}
	}
	if len(sc.votes) == 0 {
		return false, nil
	}
	// Top-1 selection through the bounded heap: O(concepts) with the same
	// (weight desc, id asc) order the full sort produced.
	sc.heap.Reset(1)
	for id, v := range sc.votes {
		sc.heap.Push(id, v)
	}
	best := sc.heap.Descending()[0].ID
	rec.Concept = best
	rec.Reason = e.reasonFor(best)
	clear(sc.seen)
	for _, v := range viewed {
		sc.seen[v] = true
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	candidates := e.net.ItemsForEConcept(best, 0)
	if score != nil {
		// Score-ranked selection: a k-bounded heap does O(n log k) work
		// instead of sorting every unseen candidate. k <= 0 still yields
		// the single best candidate, as the sorted path always did.
		if k < 1 {
			k = 1
		}
		sc.heap.Reset(k)
		for _, he := range candidates {
			if sc.seen[he.Peer] {
				continue
			}
			sc.heap.Push(he.Peer, score(viewed, he.Peer))
		}
		for _, ent := range sc.heap.Descending() {
			rec.Items = append(rec.Items, ent.ID)
		}
		return len(rec.Items) > 0, nil
	}
	// Edge-weight order: postings are pre-sorted (at freeze time on the
	// serving store), so the first k unseen candidates are the answer.
	for _, he := range candidates {
		if sc.seen[he.Peer] {
			continue
		}
		rec.Items = append(rec.Items, he.Peer)
		if len(rec.Items) >= k {
			break
		}
	}
	return len(rec.Items) > 0, nil
}

// CoViewScore builds a ranking function from co-view statistics, for use
// with RecommendRanked.
func CoViewScore(cf *ItemCF) func(viewed []core.NodeID, item core.NodeID) float64 {
	return func(viewed []core.NodeID, item core.NodeID) float64 {
		var s float64
		for _, v := range viewed {
			s += cf.co[v][item]
		}
		return s
	}
}

// ItemCF is the item-based collaborative filtering baseline of Section 1:
// recommendations are the items most co-viewed with the trigger items.
type ItemCF struct {
	co map[core.NodeID]map[core.NodeID]float64
}

// NewItemCF builds the co-occurrence model from historical sessions (each a
// set of item nodes seen together).
func NewItemCF(sessions [][]core.NodeID) *ItemCF {
	cf := &ItemCF{co: make(map[core.NodeID]map[core.NodeID]float64)}
	for _, s := range sessions {
		for i, a := range s {
			for j, b := range s {
				if i == j {
					continue
				}
				if cf.co[a] == nil {
					cf.co[a] = make(map[core.NodeID]float64)
				}
				cf.co[a][b]++
			}
		}
	}
	return cf
}

// Recommend returns the k items most co-viewed with the trigger set.
func (cf *ItemCF) Recommend(viewed []core.NodeID, k int) []core.NodeID {
	scores := make(map[core.NodeID]float64)
	seen := make(map[core.NodeID]bool, len(viewed))
	for _, v := range viewed {
		seen[v] = true
	}
	for _, v := range viewed {
		for peer, c := range cf.co[v] {
			if !seen[peer] {
				scores[peer] += c
			}
		}
	}
	type scored struct {
		id core.NodeID
		v  float64
	}
	ranked := make([]scored, 0, len(scores))
	for id, v := range scores {
		ranked = append(ranked, scored{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].id < ranked[j].id
	})
	out := make([]core.NodeID, 0, k)
	for _, s := range ranked {
		out = append(out, s.id)
		if len(out) >= k {
			break
		}
	}
	return out
}

// EvalResult is the offline replay outcome (Section 8.2.1): hit rate on
// held-out clicks (the CTR proxy) and novelty (recommended items outside the
// viewed items' categories).
type EvalResult struct {
	HitRate float64
	Novelty float64
	Covered float64 // fraction of sessions with any recommendation
}

// Recommender is anything mapping viewed items to recommendations.
type Recommender func(viewed []core.NodeID, k int) []core.NodeID

// Replay evaluates a recommender on test sessions: for each session the
// recommender sees the viewed items and is scored on whether it retrieves
// the held-out clicked items. Sessions are independent, so they fan out
// across GOMAXPROCS workers — rec must be safe for concurrent calls (the
// Engine and ItemCF recommenders are). Per-session outcomes land in
// index-addressed slots and are reduced in session order, so the result is
// deterministic regardless of scheduling.
func Replay(net core.Reader, rec Recommender, sessions [][2][]core.NodeID, k int) EvalResult {
	type outcome struct {
		counted, covered bool
		hit, novelty     float64
	}
	outs := make([]outcome, len(sessions))
	par.For(0, len(sessions), func(i int) {
		viewed, clicked := sessions[i][0], sessions[i][1]
		if len(viewed) == 0 || len(clicked) == 0 {
			return
		}
		outs[i].counted = true
		items := rec(viewed, k)
		if len(items) == 0 {
			return
		}
		outs[i].covered = true
		clickSet := make(map[core.NodeID]bool, len(clicked))
		for _, c := range clicked {
			clickSet[c] = true
		}
		hits := 0
		for _, it := range items {
			if clickSet[it] {
				hits++
			}
		}
		denom := len(clicked)
		if k < denom {
			denom = k
		}
		outs[i].hit = float64(hits) / float64(denom)
		outs[i].novelty = noveltyOf(net, viewed, items)
	})
	var res EvalResult
	nSessions := 0
	for _, o := range outs {
		if !o.counted {
			continue
		}
		nSessions++
		if !o.covered {
			continue
		}
		res.Covered++
		res.HitRate += o.hit
		res.Novelty += o.novelty
	}
	if res.Covered > 0 {
		res.HitRate /= res.Covered
		res.Novelty /= res.Covered
	}
	if nSessions > 0 {
		res.Covered /= float64(nSessions)
	}
	return res
}

// noveltyOf returns the fraction of recommended items whose category
// primitive differs from every viewed item's category.
func noveltyOf(net core.Reader, viewed, recommended []core.NodeID) float64 {
	viewedCats := make(map[core.NodeID]bool)
	for _, v := range viewed {
		for _, he := range net.Out(v, core.EdgeItemPrimitive) {
			nd, _ := net.Node(he.Peer)
			if nd.Domain == "Category" {
				viewedCats[he.Peer] = true
			}
		}
	}
	if len(recommended) == 0 {
		return 0
	}
	novel := 0
	for _, r := range recommended {
		isNovel := true
		for _, he := range net.Out(r, core.EdgeItemPrimitive) {
			if viewedCats[he.Peer] {
				isNovel = false
				break
			}
		}
		if isNovel {
			novel++
		}
	}
	return float64(novel) / float64(len(recommended))
}
