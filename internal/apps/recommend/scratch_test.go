package recommend

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/pipeline"
	"alicoco/internal/raceflag"
)

func scratchArts(t *testing.T) *pipeline.Artifacts {
	t.Helper()
	a, err := pipeline.Build(pipeline.TinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func randomSessions(a *pipeline.Artifacts, rng *rand.Rand, n int) [][]core.NodeID {
	items := a.Frozen.NodesOfKind(core.KindItem)
	out := make([][]core.NodeID, n)
	for i := range out {
		sess := make([]core.NodeID, 1+rng.Intn(6))
		for j := range sess {
			sess[j] = items[rng.Intn(len(items))]
		}
		out[i] = sess
	}
	return out
}

func recsEqual(a, b Recommendation) bool {
	if a.Concept != b.Concept || a.Reason != b.Reason || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

// refRankedItems is the pre-heap specification of the score path: sort all
// unseen candidates by (score desc, id asc), take k.
func refRankedItems(net core.Reader, best core.NodeID, viewed []core.NodeID, k int, score func([]core.NodeID, core.NodeID) float64) []core.NodeID {
	seen := make(map[core.NodeID]bool)
	for _, v := range viewed {
		seen[v] = true
	}
	type cand struct {
		id core.NodeID
		s  float64
	}
	var cs []cand
	for _, he := range net.ItemsForEConcept(best, 0) {
		if !seen[he.Peer] {
			cs = append(cs, cand{he.Peer, score(viewed, he.Peer)})
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].s != cs[j].s {
			return cs[i].s > cs[j].s
		}
		return cs[i].id < cs[j].id
	})
	var out []core.NodeID
	for _, c := range cs {
		out = append(out, c.id)
		if len(out) >= k {
			break
		}
	}
	return out
}

// TestRecommendIntoReusedMatchesFresh replays randomized sessions through
// one reused Recommendation and checks every answer against a fresh
// Recommend call.
func TestRecommendIntoReusedMatchesFresh(t *testing.T) {
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	rng := rand.New(rand.NewSource(11))
	var reused Recommendation
	for _, sess := range randomSessions(a, rng, 300) {
		k := 1 + rng.Intn(8)
		gotOK := e.RecommendInto(&reused, sess, k)
		fresh, wantOK := e.Recommend(sess, k)
		if gotOK != wantOK {
			t.Fatalf("session %v: ok %v vs %v", sess, gotOK, wantOK)
		}
		if gotOK && !recsEqual(reused, fresh) {
			t.Fatalf("session %v: reused %+v differs from fresh %+v", sess, reused, fresh)
		}
	}
}

// TestRecommendRankedHeapMatchesSort proves the k-bounded heap in the
// scoring path selects exactly what the full sort used to.
func TestRecommendRankedHeapMatchesSort(t *testing.T) {
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	rng := rand.New(rand.NewSource(13))
	// A deliberately collision-heavy score so ID tie-breaks are exercised.
	score := func(viewed []core.NodeID, item core.NodeID) float64 {
		return float64((int(item) + len(viewed)) % 4)
	}
	for _, sess := range randomSessions(a, rng, 200) {
		k := 1 + rng.Intn(6)
		rec, ok := e.RecommendRanked(sess, k, score)
		if !ok {
			continue
		}
		want := refRankedItems(a.Frozen, rec.Concept, sess, k, score)
		if len(rec.Items) != len(want) {
			t.Fatalf("session %v k=%d: %d items, want %d", sess, k, len(rec.Items), len(want))
		}
		for i := range want {
			if rec.Items[i] != want[i] {
				t.Fatalf("session %v k=%d: rank %d item %d, want %d", sess, k, i, rec.Items[i], want[i])
			}
		}
	}
}

// TestRecommendConcurrent hammers the pooled scratch path under -race.
func TestRecommendConcurrent(t *testing.T) {
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	rng := rand.New(rand.NewSource(17))
	sessions := randomSessions(a, rng, 16)
	want := make([]Recommendation, len(sessions))
	okWant := make([]bool, len(sessions))
	for i, s := range sessions {
		want[i], okWant[i] = e.Recommend(s, 5)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var rec Recommendation
			for i := 0; i < 150; i++ {
				si := (g + i) % len(sessions)
				ok := e.RecommendInto(&rec, sessions[si], 5)
				if ok != okWant[si] || (ok && !recsEqual(rec, want[si])) {
					t.Errorf("goroutine %d: answer for session %d drifted", g, si)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRecommendIntoZeroAllocs guards the recommend leg of the
// zero-allocation serving path: a reused Recommendation served from a
// frozen snapshot allocates nothing per session.
func TestRecommendIntoZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race (sync.Pool drops items)")
	}
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	rng := rand.New(rand.NewSource(29))
	sessions := randomSessions(a, rng, 8)
	var rec Recommendation
	for _, s := range sessions { // warm pooled scratch and Items buffer
		e.RecommendInto(&rec, s, 10)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, s := range sessions {
			e.RecommendInto(&rec, s, 10)
		}
	})
	if allocs != 0 {
		t.Fatalf("RecommendInto allocates %.1f times per run, want 0", allocs)
	}
}
