package recommend

import (
	"math/rand"
	"testing"

	"alicoco/internal/core"
	"alicoco/internal/qcache"
	"alicoco/internal/raceflag"
)

// TestRecommendCachedMatchesUncached replays randomized sessions (drawn
// from a small pool, so repeats hit the cache) through a cached engine and
// compares every outcome — found flag, concept, reason, items — against an
// uncached twin.
func TestRecommendCachedMatchesUncached(t *testing.T) {
	a := scratchArts(t)
	cached := NewEngine(a.Frozen)
	cached.UseCache(qcache.New(128), qcache.Stamp{Gen: 1})
	plain := NewEngine(a.Frozen)

	rng := rand.New(rand.NewSource(31))
	sessions := randomSessions(a, rng, 40)
	var reused Recommendation
	for trial := 0; trial < 600; trial++ {
		sess := sessions[rng.Intn(len(sessions))]
		k := 1 + rng.Intn(3)*5
		okCached := cached.RecommendInto(&reused, sess, k)
		fresh, okFresh := plain.Recommend(sess, k)
		if okCached != okFresh || (okCached && !recsEqual(reused, fresh)) {
			t.Fatalf("trial %d: cached recommendation differs (k=%d):\ncached %v %+v\nfresh  %v %+v",
				trial, k, okCached, reused, okFresh, fresh)
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Fatal("stream produced no cache hits; test is vacuous")
	}
}

// TestRecommendScoredPathBypassesCache: RecommendRanked with a score
// function must not read or write the cache (the closure can change
// between calls).
func TestRecommendScoredPathBypassesCache(t *testing.T) {
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	e.UseCache(qcache.New(128), qcache.Stamp{Gen: 1})
	rng := rand.New(rand.NewSource(7))
	sess := randomSessions(a, rng, 1)[0]
	e.RecommendRanked(sess, 5, func(_ []core.NodeID, item core.NodeID) float64 { return float64(item) })
	if st := e.CacheStats(); st.Hits+st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("scored path touched the cache: %+v", st)
	}
	// The unscored path with the same session still works and caches.
	e.Recommend(sess, 5)
	if st := e.CacheStats(); st.Misses != 1 {
		t.Fatalf("unscored path did not consult the cache: %+v", st)
	}
}

// TestRecommendCachedHitZeroAllocs: a session served from the cache into a
// reused Recommendation performs zero allocations.
func TestRecommendCachedHitZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race (sync.Pool drops items)")
	}
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	e.UseCache(qcache.New(64), qcache.Stamp{Gen: 1})
	rng := rand.New(rand.NewSource(13))
	sess := randomSessions(a, rng, 1)[0]
	var rec Recommendation
	e.RecommendInto(&rec, sess, 10) // miss: computes and stores
	e.RecommendInto(&rec, sess, 10) // hit: warms the copy path
	allocs := testing.AllocsPerRun(200, func() {
		e.RecommendInto(&rec, sess, 10)
	})
	if allocs != 0 {
		t.Fatalf("cached-hit RecommendInto allocates %.1f times per op, want 0", allocs)
	}
	if st := e.CacheStats(); st.Hits == 0 {
		t.Fatal("guard never hit the cache")
	}
}

// TestRecommendNegativeOutcomeCached: sessions with no recommendation are
// memoized too (found=false round-trips through the cache).
func TestRecommendNegativeOutcomeCached(t *testing.T) {
	a := scratchArts(t)
	e := NewEngine(a.Frozen)
	e.UseCache(qcache.New(64), qcache.Stamp{Gen: 1})
	var rec Recommendation
	if e.RecommendInto(&rec, nil, 5) {
		t.Fatal("empty session should not recommend")
	}
	if e.RecommendInto(&rec, nil, 5) {
		t.Fatal("cached empty session should not recommend")
	}
	if rec.Concept != core.InvalidNode || rec.Reason != "" || len(rec.Items) != 0 {
		t.Fatalf("cached negative outcome leaked state: %+v", rec)
	}
	if st := e.CacheStats(); st.Hits != 1 {
		t.Fatalf("negative outcome not served from cache: %+v", st)
	}
}
