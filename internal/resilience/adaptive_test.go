package resilience

import (
	"context"
	"testing"
	"time"
)

// fakeClock drives a Gate deterministically through the injectable now.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func clockGate(g *Gate, c *fakeClock) *Gate  { g.now = c.now; return g }

// fillSlots occupies every slot so subsequent acquires hit the contended path.
func fillSlots(t *testing.T, g *Gate, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := g.Acquire(context.Background()); err != nil {
			t.Fatalf("fill acquire %d: %v", i, err)
		}
	}
}

func TestAdaptiveGateEntersDroppingAfterInterval(t *testing.T) {
	clk := newFakeClock()
	g := clockGate(NewGateCfg(GateConfig{Capacity: 1, QueueDepth: 4, Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, Seed: 1}), clk)
	fillSlots(t, g, 1)

	// Feed sojourns above target: first one starts the grace interval,
	// later ones inside the interval must not flip to dropping yet.
	g.observe(10 * time.Millisecond)
	if g.Stats().Dropping {
		t.Fatal("dropping after a single above-target sojourn")
	}
	clk.advance(50 * time.Millisecond)
	g.observe(10 * time.Millisecond)
	if g.Stats().Dropping {
		t.Fatal("dropping before a full interval above target")
	}
	// Past the interval the next above-target sojourn starts dropping.
	clk.advance(60 * time.Millisecond)
	g.observe(10 * time.Millisecond)
	if !g.Stats().Dropping {
		t.Fatal("not dropping after a full interval above target")
	}

	// While dropping: low priority sheds unconditionally with ErrQueueDelay.
	if err := g.AcquirePri(context.Background(), PriorityLow); err != ErrQueueDelay {
		t.Fatalf("low priority while dropping: got %v, want ErrQueueDelay", err)
	}
	// High priority is never controller-shed: it queues (and times out on
	// ctx here since the slot is held).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.AcquirePri(ctx, PriorityHigh); err == ErrQueueDelay || err == ErrSaturated {
		t.Fatalf("high priority was shed: %v", err)
	}

	st := g.Stats()
	if st.ShedOverDelay == 0 || st.ShedLow == 0 {
		t.Fatalf("controller sheds not counted: %+v", st)
	}
}

func TestAdaptiveGateControlLawPacesNormalSheds(t *testing.T) {
	clk := newFakeClock()
	g := clockGate(NewGateCfg(GateConfig{Capacity: 1, QueueDepth: 8, Target: time.Millisecond, Interval: 100 * time.Millisecond, Seed: 1}), clk)
	fillSlots(t, g, 1)

	// Enter dropping mode.
	g.observe(5 * time.Millisecond)
	clk.advance(101 * time.Millisecond)
	g.observe(5 * time.Millisecond)
	if !g.Stats().Dropping {
		t.Fatal("not dropping")
	}

	// Immediately after entering dropping, dropNext is one control-law
	// spacing away, so a Normal arrival right now queues rather than sheds.
	if g.controllerSheds(PriorityNormal) {
		t.Fatal("normal shed before first control-law deadline")
	}
	// After the spacing elapses it sheds, and the spacing shrinks.
	clk.advance(101 * time.Millisecond)
	if !g.controllerSheds(PriorityNormal) {
		t.Fatal("normal not shed after control-law deadline")
	}
	first := g.controlLaw() // now dropCount >= 2: interval/sqrt(n)
	if first >= 100*time.Millisecond {
		t.Fatalf("control law did not tighten: %v", first)
	}
}

func TestAdaptiveGateFreeSlotResetsDropping(t *testing.T) {
	clk := newFakeClock()
	g := clockGate(NewGateCfg(GateConfig{Capacity: 1, QueueDepth: 4, Target: time.Millisecond, Interval: 50 * time.Millisecond, Seed: 1}), clk)
	fillSlots(t, g, 1)
	g.observe(5 * time.Millisecond)
	clk.advance(51 * time.Millisecond)
	g.observe(5 * time.Millisecond)
	if !g.Stats().Dropping {
		t.Fatal("not dropping")
	}
	// Drain: release the slot, then a fast-path acquire must clear the
	// episode (queue delay is provably zero when a slot is free).
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if g.Stats().Dropping {
		t.Fatal("still dropping after an uncontended admit")
	}
	g.Release()
}

func TestAdaptiveGateBelowTargetSojournResets(t *testing.T) {
	clk := newFakeClock()
	g := clockGate(NewGateCfg(GateConfig{Capacity: 1, QueueDepth: 4, Target: 10 * time.Millisecond, Interval: 50 * time.Millisecond, Seed: 1}), clk)
	fillSlots(t, g, 1)
	g.observe(20 * time.Millisecond)
	clk.advance(60 * time.Millisecond)
	g.observe(5 * time.Millisecond) // below target: streak broken
	g.observe(20 * time.Millisecond)
	if g.Stats().Dropping {
		t.Fatal("dropping despite streak reset by below-target sojourn")
	}
}

func TestRetryAfterDerivedFromDrainRate(t *testing.T) {
	clk := newFakeClock()
	g := clockGate(NewGateCfg(GateConfig{Capacity: 4, QueueDepth: 4, Seed: 42}), clk)

	// No drain observed yet: floor hint.
	if d := g.RetryAfter(); d != time.Second {
		t.Fatalf("cold RetryAfter = %v, want 1s", d)
	}

	// Simulate 4 in-flight plus releases at 10/sec over a window.
	fillSlots(t, g, 4)
	g.drainRate() // prime the window mark
	for i := 0; i < 4; i++ {
		g.Release()
	}
	fillSlots(t, g, 4)
	clk.advance(400 * time.Millisecond) // 4 releases / 0.4s = 10/s
	// backlog = 4 in flight; est = 4/10s = 400ms -> clamped to 1s floor.
	if d := g.RetryAfter(); d != time.Second {
		t.Fatalf("fast-drain RetryAfter = %v, want 1s floor", d)
	}

	// Now a slow drain: one more release over a long window.
	g.Release()
	fillSlots(t, g, 1)
	clk.advance(10 * time.Second) // 1 release / 10s = 0.1/s; backlog 4 -> est 40s
	for i := 0; i < 20; i++ {
		d := g.RetryAfter()
		if d < time.Second || d > 30*time.Second {
			t.Fatalf("RetryAfter out of clamp range: %v", d)
		}
	}
	if s := g.RetryAfterSeconds(); s < 1 || s > 30 {
		t.Fatalf("RetryAfterSeconds out of range: %d", s)
	}
}

func TestRetryAfterJitterVaries(t *testing.T) {
	clk := newFakeClock()
	g := clockGate(NewGateCfg(GateConfig{Capacity: 2, QueueDepth: 2, Seed: 7}), clk)
	// Build a backlog and a slow measured rate so est >> 1s and jitter has
	// room to show.
	fillSlots(t, g, 2)
	g.drainRate()
	g.Release()
	fillSlots(t, g, 1)
	clk.advance(5 * time.Second) // 0.2/s, backlog 2 -> est 10s

	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[g.RetryAfter()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("RetryAfter shows no jitter: %v", seen)
	}
}

func TestNilGateAdaptiveSurface(t *testing.T) {
	var g *Gate
	if err := g.AcquirePri(context.Background(), PriorityLow); err != nil {
		t.Fatalf("nil gate AcquirePri: %v", err)
	}
	if d := g.RetryAfter(); d != time.Second {
		t.Fatalf("nil gate RetryAfter = %v", d)
	}
	if s := g.RetryAfterSeconds(); s != 1 {
		t.Fatalf("nil gate RetryAfterSeconds = %d", s)
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(0.5, 2) // starts full at 2 tokens
	if !b.Spend() || !b.Spend() {
		t.Fatal("full budget refused initial retries")
	}
	if b.Spend() {
		t.Fatal("empty budget allowed a retry")
	}
	// Two attempts at ratio 0.5 earn one retry.
	b.Attempt()
	if b.Spend() {
		t.Fatal("half-earned budget allowed a retry")
	}
	b.Attempt()
	if !b.Spend() {
		t.Fatal("earned retry refused")
	}
	// Cap: many attempts never exceed burst.
	for i := 0; i < 100; i++ {
		b.Attempt()
	}
	if got := b.Balance(); got > 2 {
		t.Fatalf("budget exceeded burst cap: %v", got)
	}
	var nilB *RetryBudget
	nilB.Attempt()
	if !nilB.Spend() {
		t.Fatal("nil budget must always allow retries")
	}
}

func TestAcquireSojournObservedWhileQueued(t *testing.T) {
	// A queued acquire that wins a slot must feed its sojourn to the
	// controller (this is the signal source for dropping mode).
	g := NewGateCfg(GateConfig{Capacity: 1, QueueDepth: 2, Target: time.Nanosecond, Interval: time.Hour, Seed: 1})
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("fill: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	// Wait until queued, then free the slot.
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * time.Millisecond) // guarantee a measurable sojourn
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if st := g.Stats(); st.LastSojournUS == 0 {
		t.Fatalf("queued sojourn not observed: %+v", st)
	}
	g.Release()
}
