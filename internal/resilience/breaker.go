package resilience

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker guarding an operation
// that can break persistently (a snapshot file that fails validation on
// every read): after threshold consecutive failures it opens and Allow
// reports false until cooldown has elapsed, after which attempts flow
// again (half-open); the first success closes it, while further failures
// restart the cooldown window — so a persistently broken dependency is
// probed at most once per cooldown instead of being hammered.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu          sync.Mutex
	consecutive int
	openSince   time.Time
	opens       uint64
	denied      uint64
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and cools down for cooldown before probing again.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether an attempt should proceed. A nil breaker always
// allows.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.threshold {
		return true
	}
	if b.now().Sub(b.openSince) < b.cooldown {
		b.denied++
		return false
	}
	return true // half-open: let a probe through
}

// Success records a successful attempt and closes the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.mu.Unlock()
}

// Failure records a failed attempt; crossing the threshold opens the
// breaker, and any failure past it restarts the cooldown window.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive == b.threshold {
		b.opens++
	}
	if b.consecutive >= b.threshold {
		b.openSince = b.now()
	}
}

// BreakerStats is a point-in-time snapshot for /stats scraping.
type BreakerStats struct {
	State               string `json:"state"` // closed | open | half-open
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               uint64 `json:"opens"`  // times the breaker tripped
	Denied              uint64 `json:"denied"` // attempts refused while open
}

// Stats snapshots the breaker; a nil breaker reports closed.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: "closed"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{ConsecutiveFailures: b.consecutive, Opens: b.opens, Denied: b.denied}
	switch {
	case b.consecutive < b.threshold:
		st.State = "closed"
	case b.now().Sub(b.openSince) < b.cooldown:
		st.State = "open"
	default:
		st.State = "half-open"
	}
	return st
}
