package resilience

import (
	"net/http"
)

// Recover wraps next so a handler panic is converted into a 500 response
// and an onPanic callback instead of net/http killing the connection (and
// taking keep-alive request pipelines down with it). http.ErrAbortHandler
// is re-panicked — it is the sanctioned way to abort a response and must
// keep its net/http semantics. The wrapper costs nothing per request on
// the non-panicking path: one deferred recover, no allocation.
//
// If the handler had already written part of a response body before
// panicking, the 500 cannot be delivered cleanly (headers are out); the
// client then sees a truncated body, which is still detectable via
// Content-Length mismatch. Handlers in this codebase buffer their
// encoding before writing, so that window is effectively empty.
func Recover(next http.Handler, onPanic func(v any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if onPanic != nil {
				onPanic(v)
			}
			http.Error(w, "internal error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}
