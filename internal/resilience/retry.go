package resilience

import "sync/atomic"

// RetryBudget bounds how many retries a client may issue relative to the
// first-attempt traffic it sends, so that when a server sheds load the
// client fleet cannot amplify the overload by retrying everything at once
// (the classic retry storm). It is the token-bucket scheme from gRPC's
// retry design: every first attempt deposits a fraction of a token, every
// retry withdraws a whole one, and the balance is capped — so sustained
// retries cost sustained successes elsewhere, and a burst of sheds burns
// the budget out quickly instead of doubling the offered load.
//
// The balance is fixed-point millitokens in one atomic, so Attempt and
// Spend are lock-free and allocation-free. A nil *RetryBudget always
// allows the retry (no budget configured).
type RetryBudget struct {
	deposit int64 // millitokens added per first attempt
	max     int64 // millitoken cap
	tokens  atomic.Int64
}

// NewRetryBudget returns a budget that earns ratio tokens per first
// attempt (e.g. 0.1 allows roughly one retry per ten requests) and holds
// at most burst tokens. Non-positive arguments fall back to 0.1 and 10.
// The bucket starts full so cold-start failures can still retry.
func NewRetryBudget(ratio float64, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	b := &RetryBudget{
		deposit: int64(ratio * 1000),
		max:     int64(burst * 1000),
	}
	if b.deposit < 1 {
		b.deposit = 1
	}
	if b.max < 1000 {
		b.max = 1000
	}
	b.tokens.Store(b.max)
	return b
}

// Attempt records one first attempt, depositing its fraction of a retry
// token up to the cap.
func (b *RetryBudget) Attempt() {
	if b == nil {
		return
	}
	for {
		cur := b.tokens.Load()
		next := cur + b.deposit
		if next > b.max {
			next = b.max
		}
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Spend withdraws one retry token; it reports false — and withdraws
// nothing — when the budget is exhausted and the retry must be dropped.
func (b *RetryBudget) Spend() bool {
	if b == nil {
		return true
	}
	for {
		cur := b.tokens.Load()
		if cur < 1000 {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// Balance reports the current whole-token balance (for stats/tests).
func (b *RetryBudget) Balance() float64 {
	if b == nil {
		return 0
	}
	return float64(b.tokens.Load()) / 1000
}
