package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces exponentially growing retry delays with equal jitter:
// attempt n waits between ceil/2 and ceil where ceil = min(base<<n, max),
// so concurrent retriers spread out instead of synchronizing while still
// guaranteeing at least half the nominal delay.
type Backoff struct {
	base, max time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a backoff starting at base and capped at max; seed
// makes the jitter sequence deterministic for tests.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before the next retry and advances the attempt
// counter.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	ceil := b.max
	// base<<attempt, sticking to the cap once the doubling overflows.
	if d := b.base << uint(min(b.attempt, 62)); d > 0 && d < b.max {
		ceil = d
	}
	b.attempt++
	half := ceil / 2
	if half <= 0 {
		return ceil
	}
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Reset rewinds the schedule to the first attempt (after a success).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempt reports how many delays have been handed out since the last
// Reset — the "where in the backoff schedule are we" signal /stats
// exposes.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}
