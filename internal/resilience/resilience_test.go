package resilience

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// --- Gate ---------------------------------------------------------------

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire with no queue: err=%v, want ErrSaturated", err)
	}
	st := g.Stats()
	if st.InFlight != 2 || st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("stats %+v", st)
	}
	if !g.Saturated() {
		t.Fatal("full gate with empty queue should report saturated")
	}
	g.Release()
	if g.Saturated() {
		t.Fatal("gate with a free slot reports saturated")
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	g.Release()
	g.Release()
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight after releases: %+v", st)
	}
}

func TestGateQueuedAcquireGetsFreedSlot(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- g.Acquire(context.Background()) }()
	// Wait until the second acquire is actually queued.
	for i := 0; i < 1000 && g.Stats().Waiting == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Stats().Waiting != 1 {
		t.Fatal("second acquire never queued")
	}
	g.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never admitted after release")
	}
	g.Release()
}

func TestGateQueueOverflowSheds(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.Acquire(context.Background()) }()
	for i := 0; i < 1000 && g.Stats().Waiting == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	// Slot held, queue position held: the next caller is shed immediately.
	if err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow acquire: err=%v, want ErrSaturated", err)
	}
	g.Release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestGateAcquireHonorsContextWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire past deadline: err=%v", err)
	}
	if st := g.Stats(); st.Waiting != 0 || st.Shed != 1 {
		t.Fatalf("queue token not returned after deadline: %+v", st)
	}
	g.Release()
}

func TestGateConcurrentHammer(t *testing.T) {
	g := NewGate(4, 4)
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			if err := g.Acquire(ctx); err != nil {
				shed.Store(i, true)
				return
			}
			admitted.Store(i, true)
			if got := g.Stats().InFlight; got > 4 {
				t.Errorf("in-flight %d exceeds capacity", got)
			}
			time.Sleep(time.Millisecond)
			g.Release()
		}(i)
	}
	wg.Wait()
	if st := g.Stats(); st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.Release()
	if g.Saturated() {
		t.Fatal("nil gate saturated")
	}
	if st := g.Stats(); st != (GateStats{}) {
		t.Fatalf("nil gate stats %+v", st)
	}
}

// --- Breaker ------------------------------------------------------------

func TestBreakerOpensAfterThresholdAndCoolsDown(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		b.Failure()
	}
	if b.Allow() {
		t.Fatal("breaker still allowing after threshold failures")
	}
	if st := b.Stats(); st.State != "open" || st.Opens != 1 || st.Denied != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Cooldown elapses: half-open lets a probe through.
	now = now.Add(2 * time.Minute)
	if st := b.Stats(); st.State != "half-open" {
		t.Fatalf("state after cooldown: %+v", st)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	// Probe fails: the cooldown window restarts.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker allowed immediately after failed probe")
	}
	// Probe succeeds after the next cooldown: breaker closes fully.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker denied probe after second cooldown")
	}
	b.Success()
	if st := b.Stats(); st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("stats after success: %+v", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	b.Failure()
	b.Success()
	b.Failure()
	if !b.Allow() {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied")
	}
	b.Success()
	b.Failure()
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("nil breaker stats %+v", st)
	}
}

// --- Backoff ------------------------------------------------------------

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	prevCeil := time.Duration(0)
	for i := 0; i < 10; i++ {
		d := b.Next()
		ceil := 10 * time.Millisecond << uint(i)
		if ceil > 80*time.Millisecond || ceil <= 0 {
			ceil = 80 * time.Millisecond
		}
		if d < ceil/2 || d > ceil {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, ceil/2, ceil)
		}
		if ceil < prevCeil {
			t.Fatalf("ceiling shrank: %v after %v", ceil, prevCeil)
		}
		prevCeil = ceil
	}
	if b.Attempt() != 10 {
		t.Fatalf("attempt count %d", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatal("reset did not rewind")
	}
	if d := b.Next(); d > 10*time.Millisecond {
		t.Fatalf("first delay after reset %v exceeds base", d)
	}
}

func TestBackoffManyAttemptsNoOverflow(t *testing.T) {
	b := NewBackoff(time.Millisecond, time.Second, 42)
	for i := 0; i < 200; i++ {
		d := b.Next()
		if d <= 0 || d > time.Second {
			t.Fatalf("attempt %d: delay %v out of range", i, d)
		}
	}
}

// --- Recover middleware -------------------------------------------------

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var panics int
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("kaboom")
		}
		w.WriteHeader(http.StatusOK)
	}), func(v any) { panics++ })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic status %d", rec.Code)
	}
	if panics != 1 {
		t.Fatalf("panic callback fired %d times", panics)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ok", nil))
	if rec.Code != http.StatusOK || panics != 1 {
		t.Fatalf("healthy request after panic: status %d, panics %d", rec.Code, panics)
	}
}

func TestRecoverRepanicsAbortHandler(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(v any) { t.Error("onPanic fired for ErrAbortHandler") })
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

// --- Budget -------------------------------------------------------------

func TestBudget(t *testing.T) {
	if !Budget(context.Background(), time.Hour) {
		t.Fatal("no-deadline context should always have budget")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if !Budget(ctx, time.Minute) {
		t.Fatal("hour-long deadline lacks a minute of budget")
	}
	if Budget(ctx, 2*time.Hour) {
		t.Fatal("hour-long deadline claims two hours of budget")
	}
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if Budget(canceled, 0) {
		t.Fatal("canceled context has budget")
	}
}
