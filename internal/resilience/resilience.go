// Package resilience holds the serving tier's production-hardening
// primitives: an admission gate with a bounded wait queue (shed instead of
// collapse), a consecutive-failure circuit breaker (stop hammering a
// broken dependency), exponential backoff with jitter (retry without
// thundering), panic-recovery middleware (a handler bug costs one 500, not
// a connection), and deadline-budget helpers.
//
// Everything here is allocation-free on the success path and safe for
// concurrent use; the types are also nil-tolerant — calling methods on a
// nil *Gate or *Breaker is a no-op policy (admit everything, never open) —
// so callers can wire them in unconditionally and leave them unset in
// tests that don't care.
package resilience

import (
	"context"
	"time"
)

// Budget reports whether ctx still has at least need of runway before its
// deadline. A context with no deadline always has budget; an already
// canceled or expired one never does. Serving paths use this to refuse
// starting engine work they cannot finish in time (degrading to
// cache-hits-only instead of burning a saturated server's cycles on
// responses nobody will wait for).
func Budget(ctx context.Context, need time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return time.Until(dl) >= need
}
