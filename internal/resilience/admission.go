package resilience

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated reports that both the running slots and the wait queue are
// full: the caller should shed the request (HTTP 429 + Retry-After), not
// queue it — unbounded queuing under overload only converts saturation
// into timeouts.
var ErrSaturated = errors.New("resilience: admission queue saturated")

// Gate is an admission controller: up to capacity callers hold a slot at
// once, up to queueDepth more wait for one inside the caller's deadline,
// and everything beyond that is shed immediately. Acquire on the
// uncontended path is one channel send — no allocation, no lock.
type Gate struct {
	slots chan struct{} // buffered to capacity; a held slot is a buffered element
	queue chan struct{} // buffered to queueDepth; tokens held while waiting

	inflight atomic.Int64
	waiting  atomic.Int64
	shed     atomic.Uint64
	admitted atomic.Uint64
}

// NewGate returns a gate admitting capacity concurrent holders with a
// bounded wait queue of queueDepth behind them.
func NewGate(capacity, queueDepth int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Gate{
		slots: make(chan struct{}, capacity),
		queue: make(chan struct{}, queueDepth),
	}
}

// Acquire admits the caller, waits for a slot in the bounded queue, or
// sheds. It returns nil when a slot is held (the caller must Release),
// ErrSaturated when slots and queue are both full, and ctx.Err() when the
// deadline expires or is canceled while queued. A nil gate admits
// everything.
func (g *Gate) Acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		g.admitted.Add(1)
		return nil
	default:
	}
	// All slots busy: take a queue token or shed.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		return ErrSaturated
	}
	g.waiting.Add(1)
	defer func() {
		g.waiting.Add(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		g.admitted.Add(1)
		return nil
	case <-ctx.Done():
		g.shed.Add(1)
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.inflight.Add(-1)
	<-g.slots
}

// Saturated reports whether an Acquire right now would shed: every slot
// held and every queue position taken. A nil gate is never saturated.
func (g *Gate) Saturated() bool {
	if g == nil {
		return false
	}
	return len(g.slots) == cap(g.slots) && len(g.queue) == cap(g.queue)
}

// GateStats is a point-in-time snapshot of the gate for /stats scraping.
type GateStats struct {
	Capacity   int    `json:"capacity"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`
	Waiting    int64  `json:"waiting"`
	Admitted   uint64 `json:"admitted"`
	Shed       uint64 `json:"shed"`
}

// Stats snapshots the gate's counters; a nil gate reports zeros.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{
		Capacity:   cap(g.slots),
		QueueDepth: cap(g.queue),
		InFlight:   g.inflight.Load(),
		Waiting:    g.waiting.Load(),
		Admitted:   g.admitted.Load(),
		Shed:       g.shed.Load(),
	}
}
