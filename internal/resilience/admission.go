package resilience

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated reports that both the running slots and the wait queue are
// full: the caller should shed the request (HTTP 429 + Retry-After), not
// queue it — unbounded queuing under overload only converts saturation
// into timeouts.
var ErrSaturated = errors.New("resilience: admission queue saturated")

// ErrQueueDelay reports that the adaptive controller shed the request
// before it ever queued: the gate's standing queue delay has exceeded the
// configured target for at least one interval, so adding more waiters
// would only grow the sojourn time everyone pays. The caller should shed
// exactly like ErrSaturated; the two errors differ only in *why*.
var ErrQueueDelay = errors.New("resilience: queue delay above target")

// Priority classifies admissions for the adaptive controller. While the
// controller is in dropping mode (standing queue delay above target),
// PriorityLow work is shed first and continuously, PriorityNormal work is
// shed on the CoDel control-law schedule, and PriorityHigh work is only
// ever shed by the hard capacity+queue limit. Callers that answer from a
// cache before acquiring the gate have an implicit class above all three.
type Priority uint8

const (
	// PriorityHigh is for health probes and operator traffic: shed only
	// when the gate is hard-saturated.
	PriorityHigh Priority = iota
	// PriorityNormal is interactive single-query work: shed on the CoDel
	// control-law schedule while the controller is dropping.
	PriorityNormal
	// PriorityLow is batch/bulk work: the first class to shed, and shed
	// continuously while the controller is dropping.
	PriorityLow
	numPriorities
)

// String names the class for logs and stats.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return "unknown"
}

// GateConfig configures an adaptive Gate beyond the two hard limits.
// The zero value of every knob means "use the default".
type GateConfig struct {
	// Capacity holders run at once; <1 is raised to 1.
	Capacity int
	// QueueDepth more wait for a slot; <0 is clamped to 0.
	QueueDepth int
	// Target is the CoDel target: the standing queue delay the controller
	// tolerates. Waiters observing sojourns above Target continuously for
	// Interval flip the gate into dropping mode. 0 means DefaultTarget.
	Target time.Duration
	// Interval is the CoDel interval: how long sojourns must stay above
	// Target before dropping starts, and the base spacing of control-law
	// sheds. 0 means DefaultInterval.
	Interval time.Duration
	// Seed seeds the Retry-After jitter; 0 derives one from the clock.
	Seed int64
}

// Default CoDel parameters: the classic 5ms/100ms from the CoDel paper
// scale to interactive RPC serving unchanged — a request that sits queued
// for >5ms on a machine that answers cache hits in microseconds is already
// waiting orders of magnitude longer than it runs.
const (
	DefaultTarget   = 5 * time.Millisecond
	DefaultInterval = 100 * time.Millisecond
)

// retry-hint clamps: a shed client is told to come back within [1s, 30s].
const (
	minRetryAfter = time.Second
	maxRetryAfter = 30 * time.Second
)

// Gate is an adaptive admission controller. The hard shape is unchanged
// from the fixed gate it replaces: up to capacity callers hold a slot at
// once, up to queueDepth more wait for one inside the caller's deadline,
// and everything beyond that is shed immediately (ErrSaturated). On top of
// that, a CoDel-style controller watches the *sojourn time* of queued
// acquisitions: when waiters keep sitting past the target delay for a full
// interval, the gate flips into dropping mode and sheds new arrivals
// (ErrQueueDelay) by priority class — low first, normal on the control-law
// schedule, high never — instead of letting the queue run full and
// converting overload into worst-case latency for everyone.
//
// Acquire on the uncontended path is one channel send plus two atomic
// loads — no allocation, no lock. A nil *Gate admits everything.
type Gate struct {
	slots chan struct{} // buffered to capacity; a held slot is a buffered element
	queue chan struct{} // buffered to queueDepth; tokens held while waiting

	target   time.Duration
	interval time.Duration
	now      func() time.Time // injectable clock for tests; nil means time.Now

	inflight atomic.Int64
	waiting  atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
	shedBy   [numPriorities]atomic.Uint64
	overDly  atomic.Uint64 // sheds decided by the controller (vs hard saturation)

	// armed mirrors "mu-guarded state is non-zero" so the uncontended
	// fast path can skip the mutex entirely: it is set while firstAbove
	// or dropping is live and cleared by resetLocked.
	armed atomic.Bool

	// CoDel controller state, mutated only under mu (the queued/shedding
	// paths, which are contended by definition).
	mu          sync.Mutex
	firstAbove  time.Time // when a sojourn streak above target ends the grace interval; zero = no streak
	dropping    bool
	dropNext    time.Time // next control-law shed while dropping
	dropCount   int       // sheds this dropping episode (control-law divisor)
	lastSojourn time.Duration

	// Drain-rate estimator for Retry-After: Release bumps one atomic; the
	// rate is sampled lazily (only sheds read it) over >=100ms windows.
	releases  atomic.Uint64
	rateMu    sync.Mutex
	rateMark  time.Time
	relMark   uint64
	ratePerS  float64
	rateKnown bool

	rng atomic.Uint64 // xorshift state for Retry-After jitter
}

// NewGate returns an adaptive gate admitting capacity concurrent holders
// with a bounded wait queue of queueDepth behind them, using the default
// CoDel target and interval.
func NewGate(capacity, queueDepth int) *Gate {
	return NewGateCfg(GateConfig{Capacity: capacity, QueueDepth: queueDepth})
}

// NewGateCfg is NewGate with explicit controller knobs.
func NewGateCfg(cfg GateConfig) *Gate {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.Target <= 0 {
		cfg.Target = DefaultTarget
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	g := &Gate{
		slots:    make(chan struct{}, cfg.Capacity),
		queue:    make(chan struct{}, cfg.QueueDepth),
		target:   cfg.Target,
		interval: cfg.Interval,
	}
	g.rng.Store(uint64(cfg.Seed) | 1) // xorshift state must be non-zero
	return g
}

func (g *Gate) clock() time.Time {
	if g.now != nil {
		return g.now()
	}
	return time.Now()
}

// Acquire admits the caller at PriorityNormal; see AcquirePri.
func (g *Gate) Acquire(ctx context.Context) error {
	return g.AcquirePri(ctx, PriorityNormal)
}

// AcquirePri admits the caller, waits for a slot in the bounded queue, or
// sheds. It returns nil when a slot is held (the caller must Release),
// ErrSaturated when slots and queue are both full, ErrQueueDelay when the
// adaptive controller shed the request for this priority class, and
// ctx.Err() when the deadline expires or is canceled while queued. A nil
// gate admits everything.
func (g *Gate) AcquirePri(ctx context.Context, pri Priority) error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		g.admitted.Add(1)
		// A free slot means no standing queue: the CoDel signal (minimum
		// sojourn over the interval) just touched zero, so any dropping
		// episode ends. The atomic keeps the fast path lock-free.
		if g.armed.Load() {
			g.resetController()
		}
		return nil
	default:
	}
	// All slots busy. Ask the controller first: while the standing queue
	// delay is above target, shedding here (before taking a queue token)
	// is what keeps the queue short for the work that is admitted.
	if g.controllerSheds(pri) {
		g.shed.Add(1)
		g.shedBy[pri].Add(1)
		g.overDly.Add(1)
		return ErrQueueDelay
	}
	// Take a queue token or shed on the hard limit.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		g.shedBy[pri].Add(1)
		return ErrSaturated
	}
	g.waiting.Add(1)
	start := g.clock()
	defer func() {
		g.waiting.Add(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		g.observe(g.clock().Sub(start))
		g.inflight.Add(1)
		g.admitted.Add(1)
		return nil
	case <-ctx.Done():
		// A wait that burned the whole deadline is itself a sojourn
		// measurement — and a strong one.
		g.observe(g.clock().Sub(start))
		g.shed.Add(1)
		g.shedBy[pri].Add(1)
		return ctx.Err()
	}
}

// observe feeds one queued-acquisition sojourn to the controller.
func (g *Gate) observe(sojourn time.Duration) {
	now := g.clock()
	g.mu.Lock()
	g.lastSojourn = sojourn
	if sojourn < g.target {
		g.resetLocked()
	} else {
		switch {
		case g.firstAbove.IsZero():
			// First above-target sojourn: start the grace interval.
			g.firstAbove = now.Add(g.interval)
		case !g.dropping && now.After(g.firstAbove):
			// Above target continuously for a full interval: start
			// dropping. Episodes that resume shortly after the last one
			// restart near the previous drop rate instead of from 1 —
			// CoDel's "drop state" memory — approximated here by keeping
			// dropCount decayed rather than cleared on exit.
			g.dropping = true
			if g.dropCount > 2 {
				g.dropCount -= 2
			} else {
				g.dropCount = 1
			}
			g.dropNext = now.Add(g.controlLaw())
		}
		g.armed.Store(true)
	}
	g.mu.Unlock()
}

// controllerSheds decides whether the adaptive controller sheds an arrival
// of the given priority while every slot is busy.
func (g *Gate) controllerSheds(pri Priority) bool {
	if pri == PriorityHigh || !g.armed.Load() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.dropping {
		return false
	}
	if pri == PriorityLow {
		// The lowest class does not get control-law pacing: while the
		// queue delay is above target, batch work yields its queue space
		// to interactive work wholesale.
		return true
	}
	now := g.clock()
	if now.After(g.dropNext) {
		g.dropCount++
		g.dropNext = now.Add(g.controlLaw())
		return true
	}
	return false
}

// controlLaw returns the CoDel drop spacing: interval / sqrt(dropCount).
func (g *Gate) controlLaw() time.Duration {
	return time.Duration(float64(g.interval) / math.Sqrt(float64(g.dropCount)))
}

// resetController exits any dropping episode (called from the uncontended
// fast path when a slot was free, via one atomic check).
func (g *Gate) resetController() {
	g.mu.Lock()
	g.resetLocked()
	g.mu.Unlock()
}

func (g *Gate) resetLocked() {
	g.firstAbove = time.Time{}
	g.dropping = false
	g.armed.Store(false)
}

// Release returns a slot taken by a successful Acquire and feeds the
// drain-rate estimator behind Retry-After.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.inflight.Add(-1)
	g.releases.Add(1)
	<-g.slots
}

// Saturated reports whether an Acquire right now would hard-shed: every
// slot held and every queue position taken. A nil gate is never saturated.
func (g *Gate) Saturated() bool {
	if g == nil {
		return false
	}
	return len(g.slots) == cap(g.slots) && len(g.queue) == cap(g.queue)
}

// drainRate estimates the gate's recent drain rate in releases per second,
// sampled over windows of at least 100ms. The second return is false until
// a full window has been measured.
func (g *Gate) drainRate() (float64, bool) {
	now := g.clock()
	rel := g.releases.Load()
	g.rateMu.Lock()
	defer g.rateMu.Unlock()
	if g.rateMark.IsZero() {
		g.rateMark, g.relMark = now, rel
		return g.ratePerS, g.rateKnown
	}
	if elapsed := now.Sub(g.rateMark); elapsed >= 100*time.Millisecond {
		g.ratePerS = float64(rel-g.relMark) / elapsed.Seconds()
		g.rateKnown = true
		g.rateMark, g.relMark = now, rel
	}
	return g.ratePerS, g.rateKnown
}

// xorshift64 advances the jitter state lock-free.
func (g *Gate) rand() uint64 {
	for {
		old := g.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if g.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// RetryAfter is the jittered hint a shed response should carry: how long
// until the backlog ahead of a retry (current waiters plus in-flight work)
// drains at the observed drain rate, equal-jittered to [est/2, est] so a
// burst of simultaneously shed clients does not re-stampede the gate in
// lockstep, clamped to [1s, 30s]. With no drain observed yet the hint is
// the 1s floor. A nil gate hints the floor.
func (g *Gate) RetryAfter() time.Duration {
	if g == nil {
		return minRetryAfter
	}
	backlog := g.waiting.Load() + g.inflight.Load()
	rate, known := g.drainRate()
	var est time.Duration
	switch {
	case !known || backlog <= 0:
		est = minRetryAfter
	case rate <= 0:
		// Saturated and nothing draining: the longest hint we give.
		est = maxRetryAfter
	default:
		est = time.Duration(float64(backlog) / rate * float64(time.Second))
	}
	if est > minRetryAfter {
		// Equal jitter: half deterministic, half uniform.
		half := est / 2
		est = half + time.Duration(g.rand()%uint64(half+1))
	}
	if est < minRetryAfter {
		est = minRetryAfter
	}
	if est > maxRetryAfter {
		est = maxRetryAfter
	}
	return est
}

// RetryAfterSeconds is RetryAfter in whole seconds (ceiling), the unit the
// HTTP Retry-After header carries; always >= 1.
func (g *Gate) RetryAfterSeconds() int {
	d := g.RetryAfter()
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// GateStats is a point-in-time snapshot of the gate for /stats scraping.
type GateStats struct {
	Capacity   int    `json:"capacity"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`
	Waiting    int64  `json:"waiting"`
	Admitted   uint64 `json:"admitted"`
	Shed       uint64 `json:"shed"`

	// Adaptive-controller state.
	TargetMicros   int64   `json:"target_us"`        // CoDel target sojourn
	IntervalMicros int64   `json:"interval_us"`      // CoDel interval
	Dropping       bool    `json:"dropping"`         // controller in dropping mode
	LastSojournUS  int64   `json:"last_sojourn_us"`  // most recent queued-acquire sojourn
	ShedOverDelay  uint64  `json:"shed_over_delay"`  // sheds decided by the controller
	ShedHigh       uint64  `json:"shed_high"`        // hard-limit sheds of PriorityHigh
	ShedNormal     uint64  `json:"shed_normal"`      // sheds of PriorityNormal
	ShedLow        uint64  `json:"shed_low"`         // sheds of PriorityLow
	DrainPerSec    float64 `json:"drain_per_sec"`    // observed release rate
	RetryAfterSecs int     `json:"retry_after_secs"` // the hint a shed would carry now
}

// Stats snapshots the gate's counters; a nil gate reports zeros.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	g.mu.Lock()
	dropping := g.dropping
	sojourn := g.lastSojourn
	g.mu.Unlock()
	rate, _ := g.drainRate()
	return GateStats{
		Capacity:       cap(g.slots),
		QueueDepth:     cap(g.queue),
		InFlight:       g.inflight.Load(),
		Waiting:        g.waiting.Load(),
		Admitted:       g.admitted.Load(),
		Shed:           g.shed.Load(),
		TargetMicros:   g.target.Microseconds(),
		IntervalMicros: g.interval.Microseconds(),
		Dropping:       dropping,
		LastSojournUS:  sojourn.Microseconds(),
		ShedOverDelay:  g.overDly.Load(),
		ShedHigh:       g.shedBy[PriorityHigh].Load(),
		ShedNormal:     g.shedBy[PriorityNormal].Load(),
		ShedLow:        g.shedBy[PriorityLow].Load(),
		DrainPerSec:    rate,
		RetryAfterSecs: g.RetryAfterSeconds(),
	}
}
