// Request-lifecycle and process-lifecycle policy for cocoserve: admission
// control with load shedding, per-endpoint deadlines, health/readiness
// probes, hardened snapshot refresh (stoppable ticker, jittered backoff
// retries, circuit breaker, quarantine of persistently bad files), and
// graceful SIGTERM/SIGINT drain. The mechanisms live in
// internal/resilience; this file is the wiring.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"syscall"
	"time"

	"alicoco"
	"alicoco/internal/pipeline"
	"alicoco/internal/resilience"
	"alicoco/internal/snapstore"
)

// serveConfig is the resilience policy knobs; the zero value disables
// everything (no deadlines, no gate, no breaker), which is what direct
// &server{} literals in tests get.
type serveConfig struct {
	cacheSize int

	// deadline / batchDeadline bound a cache-missing request's lifetime,
	// queue wait included; 0 means unbounded.
	deadline      time.Duration
	batchDeadline time.Duration

	// maxInflight engine dispatches run concurrently, queueDepth more wait
	// for a slot, the rest shed with 429. 0 maxInflight disables gating.
	maxInflight int
	queueDepth  int

	// targetDelay / shedInterval tune the gate's adaptive controller: when
	// queued admissions keep waiting longer than targetDelay for a full
	// shedInterval, the gate starts shedding by priority class (batch
	// first) before the hard queue limit is reached. 0 means the
	// resilience package defaults (5ms / 100ms).
	targetDelay  time.Duration
	shedInterval time.Duration

	// minBudget is how much of the deadline must remain after admission to
	// bother dispatching; with less, the request is refused (degraded
	// cache-hits-only mode) rather than computed for nobody.
	minBudget time.Duration

	// Reload hardening: retries failed reloads per refresh trigger with
	// backoffBase..backoffMax jittered exponential delays; breakerThreshold
	// consecutive failures open the breaker for breakerCooldown; after
	// quarantineAfter consecutive failures the snapshot file is renamed
	// aside. breakerThreshold 0 disables the breaker, quarantineAfter 0
	// disables quarantine.
	retries          int
	backoffBase      time.Duration
	backoffMax       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	quarantineAfter  int

	// Snapstore lifecycle (catalog-backed -snapshot-dir only): retain
	// bounds how many committed generations pruning keeps on disk;
	// scrubInterval > 0 runs the background integrity scrubber on that
	// period; validate is the post-swap check every newly published
	// generation must pass or be rolled back (nil skips validation).
	retain        int
	scrubInterval time.Duration
	validate      func(*alicoco.CoCo) error

	// slowQuery is the -slow-query threshold: responses at or above it
	// emit a correlation log line (endpoint, latency, generation, request
	// ID) and count in cocoserve_slow_queries_total. 0 disables the log.
	slowQuery time.Duration

	// pprofAddr, when non-empty, serves net/http/pprof on its own private
	// listener — the profiling surface is never mounted on the serving
	// mux. See pprof.go in this package.
	pprofAddr string
}

// defaultDrainTimeout bounds how long shutdown waits for in-flight
// requests; it deliberately exceeds the default batch deadline so a drain
// never has to abandon an admitted batch.
const defaultDrainTimeout = 20 * time.Second

func defaultServeConfig() serveConfig {
	nproc := runtime.GOMAXPROCS(0)
	return serveConfig{
		cacheSize:        0, // callers fill in
		deadline:         2 * time.Second,
		batchDeadline:    15 * time.Second,
		maxInflight:      4 * nproc,
		queueDepth:       16 * nproc,
		targetDelay:      resilience.DefaultTarget,
		shedInterval:     resilience.DefaultInterval,
		minBudget:        time.Millisecond,
		retries:          3,
		backoffBase:      200 * time.Millisecond,
		backoffMax:       5 * time.Second,
		breakerThreshold: 5,
		breakerCooldown:  30 * time.Second,
		quarantineAfter:  8,
		retain:           snapstore.DefaultRetain,
		validate:         defaultValidate,
	}
}

// handler is the production entry point: the route mux wrapped in panic
// recovery, so one buggy request costs a 500 and a counter increment
// instead of a torn-down connection. The wrapper adds no per-request
// allocations, keeping the cache-hit path's zero-alloc property.
func (s *server) handler() http.Handler {
	return resilience.Recover(s.mux(), func(v any) {
		s.panics.Add(1)
		log.Printf("panic in handler (recovered): %v\n%s", v, debug.Stack())
	})
}

// admit applies the request-lifecycle policy to a request that missed the
// response caches: attach the endpoint deadline, then take an engine slot
// from the admission gate at the endpoint's priority class (waiting in the
// bounded queue within the deadline). It answers 429 + Retry-After and
// reports ok=false when the server is saturated, the adaptive controller
// shed this class, the wait exhausted the deadline, or too little budget
// remains to start engine work — cache hits were served before this point,
// so under overload the server degrades to cache-hits-only instead of
// collapsing. On ok=true the caller must call release exactly once.
func (s *server) admit(w http.ResponseWriter, r *http.Request, deadline time.Duration, pri resilience.Priority) (ctx context.Context, release func(), ok bool) {
	// Every request that reaches admission gets a correlation ID (unless
	// the client's was already echoed): assigned before the gate so shed
	// responses carry one too. The miss path allocates anyway; cache hits
	// were served before this point and skip the assignment cost.
	if h := w.Header(); h[ridHeader] == nil {
		h[ridHeader] = []string{newRequestID()}
	}
	ctx = r.Context()
	cancel := func() {}
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	}
	if err := s.gate.AcquirePri(ctx, pri); err != nil {
		cancel()
		switch {
		case errors.Is(err, resilience.ErrQueueDelay):
			s.shed(w, shedQueueDelay)
		case errors.Is(err, resilience.ErrSaturated):
			s.shed(w, shedSaturated)
		default: // deadline expired or client gone while queued
			s.shed(w, shedTimeout)
		}
		return nil, nil, false
	}
	release = func() {
		s.gate.Release()
		cancel()
	}
	if !resilience.Budget(ctx, s.cfg.minBudget) {
		s.degraded.Add(1)
		release()
		s.shed(w, shedDegraded)
		return nil, nil, false
	}
	return ctx, release, true
}

// shedReason is the machine-readable cause a shed response body carries,
// so clients and dashboards can tell hard saturation from adaptive
// queue-delay shedding from deadline exhaustion without string-matching.
type shedReason uint8

const (
	shedSaturated  shedReason = iota // hard limit: every slot and queue position taken
	shedQueueDelay                   // adaptive controller: standing queue delay above target
	shedTimeout                      // deadline expired while queued or mid-engine
	shedDegraded                     // admitted with too little budget left to dispatch
	numShedReasons
)

// shedBodies are the complete response bodies, encoded once at init like
// the other tiny error responses — a shed burst is exactly when we least
// want to encode JSON per refusal.
var shedBodies = func() [numShedReasons][]byte {
	names := [numShedReasons]string{"saturated", "queue_delay", "timeout", "degraded"}
	var b [numShedReasons][]byte
	for i, n := range names {
		b[i] = []byte(`{"error":"server overloaded, retry later","reason":"` + n + `"}` + "\n")
	}
	return b
}()

// retryAfterStrs pre-renders every value RetryAfterSeconds can clamp to so
// shed responses never format an integer per refusal.
var retryAfterStrs = func() [31]string {
	var s [31]string
	for i := range s {
		s[i] = strconv.Itoa(i)
	}
	return s
}()

// shed answers 429 with a machine-readable reason and a Retry-After hint
// derived from the gate's observed drain rate (jittered, so a burst of
// simultaneously shed clients does not retry in lockstep) — the one
// overload response the server ever gives (never a timeout, never a 500),
// so clients and load balancers can tell "back off" from "broken".
func (s *server) shed(w http.ResponseWriter, reason shedReason) {
	secs := s.gate.RetryAfterSeconds()
	if secs < 1 {
		secs = 1
	} else if secs >= len(retryAfterStrs) {
		secs = len(retryAfterStrs) - 1
	}
	h := w.Header()
	h.Set("Retry-After", retryAfterStrs[secs])
	h.Set("Content-Type", "application/json")
	h.Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusTooManyRequests)
	_, _ = w.Write(shedBodies[reason])
}

// writeBodyError maps a request-body read failure to its status: 413 when
// the MaxBytesReader cap tripped, 400 for anything else.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, "request body too large (max "+strconv.FormatInt(mbe.Limit, 10)+" bytes)",
			http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
}

// handleHealthz is liveness: 200 as long as the process can run a handler
// at all — it must keep answering through overload, reload storms, and
// drain, so it touches no gate, no cache, no engine.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 503 while draining (shutdown has begun; load
// balancers must stop routing here) or while the admission gate is fully
// saturated (slots and queue exhausted — new work would only be shed).
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.gate.Saturated() {
		http.Error(w, "saturated", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ready\n"))
}

// tryReload performs one reload attempt with the resilience bookkeeping:
// outcome fed to the breaker, failure counters, backoff reset on success,
// and quarantine of a snapshot file that keeps failing validation. Serving
// keeps the last good snapshot through any number of failures — a reload
// only ever publishes after full validation.
func (s *server) tryReload() (source string, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	// While the newest catalog generation is skiplisted (it failed
	// validation and was rolled back), hold rather than republish it; a
	// newer generation clears the hold. See snapstore.go.
	if hold := s.reloadGateLocked(); hold != "" {
		return "held: " + hold, nil
	}
	before := s.coco.ServingInfo().Generation
	source, err = s.reload()
	if err == nil {
		err = s.validateSwapLocked(before)
	}
	if err == nil {
		s.breaker.Success()
		if s.backoff != nil {
			s.backoff.Reset()
		}
		s.consecReloads = 0
		clear(s.shardFails)
		s.pruneLocked()
		return source, nil
	}
	s.reloadFailures.Add(1)
	s.breaker.Failure()
	s.consecReloads++
	var sle *pipeline.ShardLoadError
	if s.snapshotDir != "" && errors.As(err, &sle) {
		s.noteShardFailureLocked(sle.Index, sle.File, err)
	}
	if s.snapshot != "" && s.cfg.quarantineAfter > 0 && s.consecReloads >= s.cfg.quarantineAfter {
		s.quarantineSnapshot(err)
	}
	// Catalog-backed serving does not freeze on "last good in memory":
	// when reloads keep failing past the breaker threshold, re-anchor on
	// the newest older generation that still loads and validates clean.
	if s.store != nil && s.cfg.breakerThreshold > 0 && s.consecReloads == s.cfg.breakerThreshold {
		if rerr := s.autoRollbackLocked(0, fmt.Sprintf("reload breaker tripped: %v", err)); rerr != nil {
			log.Printf("auto-rollback: %v", rerr)
		}
	}
	return source, err
}

// tryReloadShard force-reloads one shard of the -snapshot-dir partition
// with the same resilience bookkeeping as tryReload: the outcome feeds the
// breaker, and a shard that keeps failing is quarantined on its own —
// the rest of the partition keeps serving and reloading.
func (s *server) tryReloadShard(i int) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	err := s.coco.ReloadShard(s.snapshotDir, i)
	if err == nil {
		s.breaker.Success()
		if s.backoff != nil {
			s.backoff.Reset()
		}
		s.consecReloads = 0
		delete(s.shardFails, i)
		return nil
	}
	s.reloadFailures.Add(1)
	s.breaker.Failure()
	var sle *pipeline.ShardLoadError
	if errors.As(err, &sle) {
		s.noteShardFailureLocked(sle.Index, sle.File, err)
	}
	return err
}

// noteShardFailureLocked counts a reload failure attributed to one shard
// and quarantines that shard's file once it keeps failing — the sharded
// analogue of quarantineSnapshot, scoped to the one bad file so the other
// shards keep reloading. Callers hold reloadMu.
func (s *server) noteShardFailureLocked(idx int, file string, cause error) {
	if s.shardFails == nil {
		s.shardFails = make(map[int]int)
	}
	s.shardFails[idx]++
	if s.cfg.quarantineAfter <= 0 || s.shardFails[idx] < s.cfg.quarantineAfter {
		return
	}
	s.shardFails[idx] = 0
	// The failing file lives in the directory reloads actually read: the
	// newest committed generation when -snapshot-dir is a catalog store,
	// the directory itself when it is flat.
	dir, gen := s.snapshotDir, uint64(0)
	if resolved, g, isStore, err := snapstore.ResolveDir(dir); err == nil && isStore {
		dir, gen = resolved, g
	}
	path := filepath.Join(dir, file)
	if _, err := os.Stat(path); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			log.Printf("quarantine: stat %s: %v", path, err)
		}
		return
	}
	dst := snapstore.QuarantinePath(path, gen)
	if err := os.Rename(path, dst); err != nil {
		log.Printf("quarantine: rename %s: %v", path, err)
		return
	}
	s.quarantines.Add(1)
	log.Printf("quarantined shard %d (%s -> %s) after repeated failures (last: %v)", idx, path, dst, cause)
}

// quarantineSnapshot renames the persistently failing snapshot file aside
// (path -> path.quarantined) so the refresh loop stops re-reading a file
// that will never validate and an operator can inspect it; the last good
// generation keeps serving. A file that is simply missing is not
// quarantined — there is nothing to rename and nothing to inspect.
func (s *server) quarantineSnapshot(cause error) {
	if _, err := os.Stat(s.snapshot); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			log.Printf("quarantine: stat %s: %v", s.snapshot, err)
		}
		return
	}
	dst := snapstore.QuarantinePath(s.snapshot, 0)
	if err := os.Rename(s.snapshot, dst); err != nil {
		log.Printf("quarantine: rename %s: %v", s.snapshot, err)
		return
	}
	s.quarantines.Add(1)
	log.Printf("quarantined snapshot %s -> %s after %d consecutive failures (last: %v)",
		s.snapshot, dst, s.consecReloads, cause)
}

// refreshLoop reloads on a stoppable ticker. A failed reload is retried up
// to cfg.retries times with jittered exponential backoff before waiting
// for the next tick; while the breaker is open the loop skips attempts
// entirely instead of hammering a file that keeps failing. The loop exits
// when done closes (shutdown), which also interrupts any backoff sleep —
// the goroutine can never leak the way the old time.Tick version did.
func (s *server) refreshLoop(interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		if !s.breaker.Allow() {
			continue
		}
		src, err := s.tryReload()
		if err == nil {
			info := s.coco.ServingInfo()
			log.Printf("periodic reload from %s: %d nodes, %d edges", src, info.Nodes, info.Edges)
			continue
		}
		log.Printf("periodic reload: %v", err)
		for attempt := 0; attempt < s.cfg.retries; attempt++ {
			delay := time.Duration(0)
			if s.backoff != nil {
				delay = s.backoff.Next()
			}
			timer := time.NewTimer(delay)
			select {
			case <-done:
				timer.Stop()
				return
			case <-timer.C:
			}
			if !s.breaker.Allow() {
				break
			}
			s.reloadRetries.Add(1)
			if _, err = s.tryReload(); err == nil {
				info := s.coco.ServingInfo()
				log.Printf("reload retry %d succeeded: %d nodes, %d edges", attempt+1, info.Nodes, info.Edges)
				break
			}
			log.Printf("reload retry %d: %v", attempt+1, err)
		}
	}
}

// serve runs the hardened server lifecycle on addr; see serveListener.
func serve(s *server, addr string, refresh, drainTimeout time.Duration, sigc <-chan os.Signal) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(s, ln, refresh, drainTimeout, sigc)
}

// serveListener runs the full server lifecycle on ln: an http.Server with
// read/write/idle timeouts (a slow or stuck client cannot pin a connection
// goroutine forever), the stoppable refresh loop, and graceful shutdown —
// on SIGTERM/SIGINT the server flips /readyz to failing, stops the refresh
// loop, stops accepting connections, and drains in-flight requests within
// drainTimeout before returning. sigc overrides the signal source for
// tests; nil subscribes to the real signals. It returns nil after a clean
// drain and the underlying error otherwise.
func serveListener(s *server, ln net.Listener, refresh, drainTimeout time.Duration, sigc <-chan os.Signal) error {
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	if s.cfg.pprofAddr != "" {
		stop, err := startPprof(s.cfg.pprofAddr)
		if err != nil {
			return err
		}
		defer stop()
	}
	if refresh > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.refreshLoop(refresh, done)
		}()
	}
	if s.cfg.scrubInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.scrubLoop(s.cfg.scrubInterval, done)
		}()
	}
	if sigc == nil {
		c := make(chan os.Signal, 1)
		signal.Notify(c, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(c)
		sigc = c
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener failed outright; there is nothing to drain.
		close(done)
		wg.Wait()
		return err
	case sig := <-sigc:
		log.Printf("received %v: draining (readiness down, refresh stopped)", sig)
	}
	s.draining.Store(true) // /readyz fails from here on
	close(done)            // refresh loop winds down
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(ctx) // stop accepting, wait for in-flight requests
	wg.Wait()
	if err != nil {
		return err
	}
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return nil
}
