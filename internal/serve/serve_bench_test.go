package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"alicoco"
)

// The ServeCacheHit/ServeCacheMiss pair measures the end-to-end handler
// path — routing, parameter handling, engine dispatch, JSON encoding —
// with and without the query caches, over identical repeated requests.
// The hit side answers from the encoded-bytes cache (one lookup, one
// buffer write); the miss side is the full pre-cache pipeline on a
// cache-disabled server. scripts/bench.sh records both in BENCH_core.json;
// the tentpole target is hit ≥ 5x faster than miss.

var (
	serveBenchOnce sync.Once
	serveBenchErr  error
	serveHit       *server // all cache layers on
	serveMiss      *server // all cache layers off
	serveSession   string  // items= value for /recommend
)

func benchServers(b *testing.B) (hit, miss *server) {
	b.Helper()
	serveBenchOnce.Do(func() {
		base := testServer(b)
		dir, err := os.MkdirTemp("", "cocoserve-bench-")
		if err != nil {
			serveBenchErr = err
			return
		}
		path := filepath.Join(dir, "net.fz")
		if err := base.coco.SaveFrozen(path); err != nil {
			serveBenchErr = err
			return
		}
		cocoHit, err := alicoco.LoadFrozen(path)
		if err != nil {
			serveBenchErr = err
			return
		}
		cocoMiss, err := alicoco.LoadFrozen(path)
		if err != nil {
			serveBenchErr = err
			return
		}
		serveHit = newServer(cocoHit, path, 4096)
		serveMiss = newServer(cocoMiss, path, 0)
		sessions := base.coco.SampleSessions(1)
		if len(sessions) == 0 {
			serveBenchErr = fmt.Errorf("no sessions")
			return
		}
		parts := make([]string, len(sessions[0]))
		for i, id := range sessions[0] {
			parts[i] = fmt.Sprint(id)
		}
		serveSession = strings.Join(parts, ",")
	})
	if serveBenchErr != nil {
		b.Fatal(serveBenchErr)
	}
	return serveHit, serveMiss
}

// benchEndpoint drives one URL through the full production handler —
// panic-recovery middleware, routing, admission — with a reused request
// and recorder (the handlers never mutate either), so the numbers include
// whatever the resilience layer costs per request.
func benchEndpoint(b *testing.B, s *server, url string) {
	b.Helper()
	mux := s.handler()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req) // warm caches, pools, and the recorder body
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", url, rec.Code, rec.Body.String())
	}
	want := rec.Body.String()
	rec.Body.Reset()
	mux.ServeHTTP(rec, req)
	if rec.Body.String() != want {
		b.Fatalf("%s: unstable response", url)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Body.Reset()
		mux.ServeHTTP(rec, req)
	}
}

// BenchmarkServeCacheHit: repeated identical requests served from the
// encoded-bytes cache.
func BenchmarkServeCacheHit(b *testing.B) {
	hit, _ := benchServers(b)
	b.Run("search", func(b *testing.B) {
		benchEndpoint(b, hit, "/search?q=outdoor+barbecue")
	})
	b.Run("search_voting", func(b *testing.B) {
		benchEndpoint(b, hit, "/search?q=barbecue+outdoor")
	})
	b.Run("recommend", func(b *testing.B) {
		benchEndpoint(b, hit, "/recommend?items="+serveSession+"&k=10")
	})
}

// BenchmarkServeCacheMiss: the same requests on a cache-disabled server —
// the full parse + engine + encode pipeline every time.
func BenchmarkServeCacheMiss(b *testing.B) {
	_, miss := benchServers(b)
	b.Run("search", func(b *testing.B) {
		benchEndpoint(b, miss, "/search?q=outdoor+barbecue")
	})
	b.Run("search_voting", func(b *testing.B) {
		benchEndpoint(b, miss, "/search?q=barbecue+outdoor")
	})
	b.Run("recommend", func(b *testing.B) {
		benchEndpoint(b, miss, "/recommend?items="+serveSession+"&k=10")
	})
}

// BenchmarkBatchDecode isolates the request-decoding change: the pooled
// fixed-shape scanner versus encoding/json on a 32-session batch body.
func BenchmarkBatchDecode(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`{"sessions": [`)
	for i := 0; i < 32; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "[%d, %d, %d]", i, i+7, i+20)
	}
	sb.WriteString(`], "k": 10}`)
	body := []byte(sb.String())
	b.Run("scanner", func(b *testing.B) {
		sc := &reqScratch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.body = append(sc.body[:0], body...)
			if _, _, err := parseRecommendBatchBody(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoding_json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req struct {
				Sessions [][]int `json:"sessions"`
				K        int     `json:"k"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
