package serve

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// scanSearch runs the scanner over body through a fresh scratch, converting
// the byte-slice queries to strings for comparison against encoding/json.
func scanSearch(body string) ([]string, int, error) {
	sc := &reqScratch{body: []byte(body)}
	qb, maxItems, err := parseSearchBatchBody(sc)
	var queries []string
	for _, q := range qb {
		queries = append(queries, string(q))
	}
	return queries, maxItems, err
}

func scanRecommend(body string) ([][]int, int, error) {
	sc := &reqScratch{body: []byte(body)}
	return parseRecommendBatchBody(sc)
}

// TestParseSearchBatchMatchesEncodingJSON feeds randomized request bodies
// — including escapes, unicode, unknown fields, odd whitespace — to both
// the scanner and encoding/json and requires identical decoded requests.
func TestParseSearchBatchMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	alphabet := []string{
		"grill", "outdoor barbecue", "", " ", "caf\u00e9", "emoji \U0001F600",
		"quote\"inside", "back\\slash", "tab\tchar", "new\nline", "控制",
	}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(6)
		queries := make([]string, n)
		for i := range queries {
			queries[i] = alphabet[rng.Intn(len(alphabet))]
		}
		req := map[string]any{"queries": queries}
		if rng.Intn(2) == 0 {
			req["max_items"] = rng.Intn(50) - 10
		}
		if rng.Intn(3) == 0 {
			req["unknown"] = map[string]any{"nested": []any{1, "x", nil, true}}
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var want struct {
			Queries  []string `json:"queries"`
			MaxItems int      `json:"max_items"`
		}
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		gotQ, gotMax, err := scanSearch(string(body))
		if err != nil {
			t.Fatalf("trial %d: scanner rejected %s: %v", trial, body, err)
		}
		if len(gotQ) == 0 {
			gotQ = nil
		}
		if len(want.Queries) == 0 {
			want.Queries = nil
		}
		if !reflect.DeepEqual(gotQ, want.Queries) || gotMax != want.MaxItems {
			t.Fatalf("trial %d: scanner differs on %s:\ngot  %q %d\nwant %q %d",
				trial, body, gotQ, gotMax, want.Queries, want.MaxItems)
		}
	}
}

// TestParseRecommendBatchMatchesEncodingJSON does the same for the
// sessions shape, including scratch reuse across parses (the pooled
// configuration), which must never leak one request's sessions into the
// next.
func TestParseRecommendBatchMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sc := &reqScratch{} // reused across trials, like the pool does
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(5)
		sessions := make([][]int, n)
		for i := range sessions {
			sess := make([]int, rng.Intn(4))
			for j := range sess {
				sess[j] = rng.Intn(2000) - 100
			}
			sessions[i] = sess
		}
		req := map[string]any{"sessions": sessions}
		if rng.Intn(2) == 0 {
			req["k"] = rng.Intn(40) - 5
		}
		if rng.Intn(4) == 0 {
			req["extra"] = "ignored"
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var want struct {
			Sessions [][]int `json:"sessions"`
			K        int     `json:"k"`
		}
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		sc.body = append(sc.body[:0], body...)
		gotS, gotK, err := parseRecommendBatchBody(sc)
		if err != nil {
			t.Fatalf("trial %d: scanner rejected %s: %v", trial, body, err)
		}
		if gotK != want.K || len(gotS) != len(want.Sessions) {
			t.Fatalf("trial %d: scanner differs on %s:\ngot  %v %d\nwant %v %d",
				trial, body, gotS, gotK, want.Sessions, want.K)
		}
		for i := range gotS {
			a, b := gotS[i], want.Sessions[i]
			if len(a) != len(b) {
				t.Fatalf("trial %d session %d: %v vs %v", trial, i, a, b)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("trial %d session %d: %v vs %v", trial, i, a, b)
				}
			}
		}
	}
}

// TestScannerRejectsMalformed: structurally broken bodies error instead of
// decoding garbage.
func TestScannerRejectsMalformed(t *testing.T) {
	bad := []string{
		"", "{", "[]", "null", `"s"`, "42",
		`{"queries": "grill"}`,      // wrong type
		`{"queries": [1]}`,          // wrong element type
		`{"queries": ["a"`,          // unterminated
		`{"queries": ["a"] "k": 1}`, // missing comma
		`{"max_items": 1.5}`,        // not an integer
		`{"max_items": 1e3}`,        // not an integer
		`{"queries": ["\q"]}`,       // bad escape
		`{"queries": ["a\u12"]}`,    // short unicode escape
	}
	for _, body := range bad {
		if _, _, err := scanSearch(body); err == nil {
			t.Errorf("scanner accepted malformed search body %q", body)
		}
	}
	badRec := []string{
		`{"sessions": [1]}`,        // session must be an array
		`{"sessions": [[1.5]]}`,    // non-integer id
		`{"sessions": [["a"]]}`,    // wrong element type
		`{"sessions": [[1], [2}]}`, // broken nesting
		`{"k": true}`,              // wrong type
	}
	for _, body := range badRec {
		if _, _, err := scanRecommend(body); err == nil {
			t.Errorf("scanner accepted malformed recommend body %q", body)
		}
	}
}

// TestScannerNullAndEmpty: nulls decode like encoding/json (empty/absent),
// so the handlers' "missing queries/sessions" validation still fires.
func TestScannerNullAndEmpty(t *testing.T) {
	for _, body := range []string{`{}`, `{"queries": null}`, `{"queries": []}`} {
		q, _, err := scanSearch(body)
		if err != nil || len(q) != 0 {
			t.Errorf("%s: got %v, %v", body, q, err)
		}
	}
	s, k, err := scanRecommend(`{"sessions": [null, [7]], "k": null}`)
	if err != nil || k != 0 || len(s) != 2 || len(s[0]) != 0 || len(s[1]) != 1 || s[1][0] != 7 {
		t.Errorf("null session decode: %v %d %v", s, k, err)
	}
}

// TestScannerDuplicateFieldLastWins matches encoding/json's behavior.
func TestScannerDuplicateFieldLastWins(t *testing.T) {
	q, maxItems, err := scanSearch(`{"queries": ["a"], "queries": ["b", "c"], "max_items": 1, "max_items": 9}`)
	if err != nil || maxItems != 9 || strings.Join(q, ",") != "b,c" {
		t.Fatalf("duplicate fields: %v %d %v", q, maxItems, err)
	}
}

// TestAppendItemsParam pins the alloc-free items parser against the old
// strings.Split loop's semantics.
func TestAppendItemsParam(t *testing.T) {
	good := map[string][]int{
		"":        nil,
		"1,2,3":   {1, 2, 3},
		" 4 , 5 ": {4, 5},
		"7":       {7},
		",,2,":    {2},
		"0":       {0},
	}
	for in, want := range good {
		got, err := appendItemsParam(nil, in)
		if err != nil {
			t.Errorf("%q: unexpected error %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("%q: got %v want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%q: got %v want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"-1", "3,-7,2", "-0x2", "abc", "1,x"} {
		if _, err := appendItemsParam(nil, in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}
