package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"alicoco"
	"alicoco/internal/qcache"
)

// cachedFixture is a snapshot-loaded server with every cache layer on,
// built from the shared test net.
func cachedFixture(t *testing.T) *server {
	t.Helper()
	_, _, path := snapshotFixture(t)
	coco, err := alicoco.LoadFrozen(path)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(coco, path, 1024)
}

// TestCachedResponsesByteIdentical is the regression guard for the
// encoded-bytes cache: the first (miss) response, every subsequent (hit)
// response, and a cache-disabled server's response must be byte-identical
// — caching may change cost, never content.
func TestCachedResponsesByteIdentical(t *testing.T) {
	s := cachedFixture(t)
	uncachedCoco, err := alicoco.LoadFrozen(s.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	uncached := newServer(uncachedCoco, s.snapshot, 0)

	sessions := testServer(t).coco.SampleSessions(2)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	parts := make([]string, len(sessions[0]))
	for i, id := range sessions[0] {
		parts[i] = fmt.Sprint(id)
	}
	urls := []string{
		"/search?q=outdoor+barbecue",
		"/search?q=barbecue+outdoor", // voting path
		"/search?q=grill",
		"/recommend?items=" + strings.Join(parts, ",") + "&k=5",
	}
	for _, url := range urls {
		missCode, missBody := get(s, url)
		if missCode != http.StatusOK {
			t.Fatalf("%s: miss status %d", url, missCode)
		}
		for i := 0; i < 3; i++ {
			hitCode, hitBody := get(s, url)
			if hitCode != missCode || hitBody != missBody {
				t.Fatalf("%s: hit %d differs from miss:\nmiss %q\nhit  %q", url, i, missBody, hitBody)
			}
		}
		unCode, unBody := get(uncached, url)
		if unCode != missCode || unBody != missBody {
			t.Fatalf("%s: uncached server differs:\ncached   %q\nuncached %q", url, missBody, unBody)
		}
	}
	// The loop above must actually have exercised the byte caches.
	ci := s.cacheInfo()
	if ci.SearchBytes.Hits == 0 || ci.RecommendBytes.Hits == 0 {
		t.Fatalf("byte caches never hit: %+v", ci)
	}
	if un := uncached.cacheInfo(); un.SearchBytes.Hits+un.SearchBytes.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", un)
	}
}

// TestStatsCacheSection: /stats exposes per-layer hit/miss counters that
// move with traffic.
func TestStatsCacheSection(t *testing.T) {
	s := cachedFixture(t)
	get(s, "/search?q=grill")
	get(s, "/search?q=grill")
	var resp struct {
		Cache cacheInfo `json:"cache"`
	}
	_, body := get(s, "/stats")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	ci := resp.Cache
	if ci.SearchBytes.Hits == 0 || ci.SearchBytes.Misses == 0 {
		t.Fatalf("search_bytes counters did not move: %+v", ci)
	}
	if ci.Search.Capacity == 0 || ci.SearchBytes.Capacity == 0 {
		t.Fatalf("cache capacities missing from stats: %+v", ci)
	}
}

// TestCacheHitSkipsRecomputation: after a warm-up request the byte cache
// answers without touching the facade caches (one lookup, one write).
func TestCacheHitSkipsRecomputation(t *testing.T) {
	s := cachedFixture(t)
	get(s, "/search?q=winter+coat")
	before := s.cacheInfo()
	get(s, "/search?q=winter+coat")
	after := s.cacheInfo()
	if after.SearchBytes.Hits != before.SearchBytes.Hits+1 {
		t.Fatalf("expected one byte-cache hit: %+v -> %+v", before, after)
	}
	if after.Search.Hits != before.Search.Hits || after.Search.Misses != before.Search.Misses {
		t.Fatalf("byte-cache hit still consulted the result cache: %+v -> %+v", before, after)
	}
}

// TestServeNoStaleAcrossReload hammers /search and /recommend while the
// snapshot file is swapped between two different nets and POST /reload
// republishes. Every concurrent response must match one of the two nets
// exactly, and — the stale-generation assertion — a request issued after
// a reload completes must answer from the just-loaded net, never from
// bytes cached against the previous generation.
func TestServeNoStaleAcrossReload(t *testing.T) {
	optsA := alicoco.Options{Seed: 7, ItemsPerCategory: 2, Scenarios: 12, CorpusSentences: 150}
	optsB := alicoco.Options{Seed: 11, ItemsPerCategory: 3, Scenarios: 12, CorpusSentences: 150}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.fz")
	pathB := filepath.Join(dir, "b.fz")
	live := filepath.Join(dir, "live.fz")
	for _, c := range []struct {
		opts alicoco.Options
		path string
	}{{optsA, pathA}, {optsB, pathB}} {
		coco, err := alicoco.Build(c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := coco.SaveFrozen(c.path); err != nil {
			t.Fatal(err)
		}
	}
	copyFile := func(src string) {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(live, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile(pathA)
	coco, err := alicoco.LoadFrozen(live)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(coco, live, 1024)

	// Canonical responses per snapshot, computed on dedicated uncached
	// servers. The recommend session is picked dynamically: the first one
	// both nets answer 200 with *different* bodies, so a stale hit is
	// detectable.
	srvA, errA := alicoco.LoadFrozen(pathA)
	srvB, errB := alicoco.LoadFrozen(pathB)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	canonSrv := [2]*server{newServer(srvA, pathA, 0), newServer(srvB, pathB, 0)}
	urls := []string{"/search?q=outdoor+barbecue"}
	for i := 0; i < 40; i++ {
		u := fmt.Sprintf("/recommend?items=%d,%d,%d&k=5", i, i+1, i+2)
		codeA, bodyA := get(canonSrv[0], u)
		codeB, bodyB := get(canonSrv[1], u)
		if codeA == http.StatusOK && codeB == http.StatusOK && bodyA != bodyB {
			urls = append(urls, u)
			break
		}
	}
	if len(urls) < 2 {
		t.Fatal("no recommend session distinguishes the two snapshots")
	}
	canon := make(map[string][2]string) // url -> per-snapshot body
	for i := range canonSrv {
		for _, u := range urls {
			_, body := get(canonSrv[i], u)
			pair := canon[u]
			pair[i] = body
			canon[u] = pair
		}
	}
	for _, u := range urls {
		if canon[u][0] == canon[u][1] {
			t.Fatalf("%s answers identically on both snapshots; staleness undetectable", u)
		}
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[g%len(urls)]
				_, body := get(s, u)
				if body != canon[u][0] && body != canon[u][1] {
					errc <- fmt.Errorf("%s: response matches neither snapshot: %q", u, body)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		want := i % 2 // 0 -> A, 1 -> B ... starting by switching to B
		want = 1 - want
		if want == 1 {
			copyFile(pathB)
		} else {
			copyFile(pathA)
		}
		rec := httptest.NewRecorder()
		s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		// The reload has returned: the new generation is published, so a
		// stale cached response from the old net would surface right here.
		for _, u := range urls {
			_, body := get(s, u)
			if body != canon[u][want] {
				t.Fatalf("reload %d: %s served stale generation:\ngot  %q\nwant %q", i, u, body, canon[u][want])
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestQueryParamFastPath pins the RawQuery scanner against net/url
// semantics for the shapes the handlers rely on.
func TestQueryParamFastPath(t *testing.T) {
	cases := []struct {
		raw, key, want string
		found          bool
	}{
		{"q=grill", "q", "grill", true},
		{"q=outdoor+barbecue", "q", "outdoor barbecue", true},
		{"q=outdoor%20barbecue", "q", "outdoor barbecue", true},
		{"a=1&q=x&b=2", "q", "x", true},
		{"q=first&q=second", "q", "first", true},
		{"items=1,2,3&k=5", "k", "5", true},
		{"items=1,2,3&k=5", "items", "1,2,3", true},
		{"", "q", "", false},
		{"q", "q", "", false},
		{"qq=x", "q", "", false},
		{"q=%zz", "q", "", false}, // malformed escape: dropped like ParseQuery does
	}
	for _, c := range cases {
		got, found := queryParam(c.raw, c.key)
		if got != c.want || found != c.found {
			t.Errorf("queryParam(%q, %q) = (%q, %v), want (%q, %v)", c.raw, c.key, got, found, c.want, c.found)
		}
	}
}

// TestWriteJSONCachingSkipsStaleStamp: if the serving generation moves
// between reading the stamp and writing the response, the bytes are not
// cached under the outdated stamp.
func TestWriteJSONCachingSkipsStaleStamp(t *testing.T) {
	s := cachedFixture(t)
	stale := qcache.Stamp{Gen: s.coco.CacheStamp().Gen - 1}
	rec := httptest.NewRecorder()
	s.writeJSONCaching(rec, map[string]int{"x": 1}, s.searchBytes, stale, "stale-key")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if _, ok := s.searchBytes.GetString(stale, "stale-key"); ok {
		t.Fatal("response cached under a stamp that is no longer current")
	}
}
