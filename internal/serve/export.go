// Exported embedding surface: cmd/cocoload (and tests that want a real
// server without a subprocess) runs the same server the cocoserve command
// runs, in-process. This is what lets the chaos drills inject faults via
// internal/faultfs — the injection points are process-global, so the
// server under test must share the process with the driver.
package serve

import (
	"net/http"
	"time"

	"alicoco"
	"alicoco/internal/resilience"
)

// Config is the embedding-facing serving policy. The zero value means
// "production defaults" for every field; Disabled (-1) turns a knob off
// where 0 could not (cache, gate, deadlines).
type Config struct {
	// CacheSize is the per-layer query cache entry budget; 0 means
	// alicoco.DefaultQueryCacheCapacity, Disabled turns caching off.
	CacheSize int
	// Deadline / BatchDeadline bound a cache-missing request's lifetime,
	// queue wait included; 0 means the defaults (2s / 15s), Disabled
	// unbounded.
	Deadline      time.Duration
	BatchDeadline time.Duration
	// MaxInflight engine dispatches run at once, QueueDepth more wait; 0
	// means the defaults (4x / 16x GOMAXPROCS), Disabled no gate.
	MaxInflight int
	QueueDepth  int
	// TargetDelay / ShedInterval tune the gate's adaptive controller; 0
	// means the resilience defaults (5ms / 100ms).
	TargetDelay  time.Duration
	ShedInterval time.Duration
	// SnapshotDir, when non-empty, wires the crash-safe snapshot store
	// (reload/rollback/scrub against a generation catalog).
	SnapshotDir string
	// Snapshot, when non-empty, is the single-file snapshot /reload
	// re-reads.
	Snapshot string
	// SlowQuery, when > 0, logs responses slower than the threshold and
	// counts them in cocoserve_slow_queries_total; 0 disables.
	SlowQuery time.Duration
}

// Disabled turns off a Config knob whose zero value means "default".
const Disabled = -1

func (c Config) toServeConfig() serveConfig {
	cfg := defaultServeConfig()
	cfg.cacheSize = alicoco.DefaultQueryCacheCapacity
	apply := func(dst *int, v int) {
		if v == Disabled {
			*dst = 0
		} else if v != 0 {
			*dst = v
		}
	}
	applyDur := func(dst *time.Duration, v time.Duration) {
		if v == Disabled {
			*dst = 0
		} else if v != 0 {
			*dst = v
		}
	}
	apply(&cfg.cacheSize, c.CacheSize)
	apply(&cfg.maxInflight, c.MaxInflight)
	apply(&cfg.queueDepth, c.QueueDepth)
	applyDur(&cfg.deadline, c.Deadline)
	applyDur(&cfg.batchDeadline, c.BatchDeadline)
	applyDur(&cfg.targetDelay, c.TargetDelay)
	applyDur(&cfg.shedInterval, c.ShedInterval)
	if c.SlowQuery > 0 {
		cfg.slowQuery = c.SlowQuery
	}
	return cfg
}

// Server is an embedded cocoserve instance.
type Server struct{ s *server }

// New wires a server around a built or loaded facade. When cfg.SnapshotDir
// names a generation catalog the snapshot lifecycle (reload diffing,
// rollback, scrubbing) engages exactly as under the cocoserve command.
func New(coco *alicoco.CoCo, cfg Config) *Server {
	s := newServerCfg(coco, cfg.Snapshot, cfg.toServeConfig())
	s.snapshotDir = cfg.SnapshotDir
	s.initStore()
	return &Server{s: s}
}

// Handler is the production handler stack: the full route mux wrapped in
// panic recovery, identical to what the cocoserve command serves.
func (sv *Server) Handler() http.Handler { return sv.s.handler() }

// GateStats snapshots the admission gate (zeros when gating is disabled).
func (sv *Server) GateStats() resilience.GateStats { return sv.s.gate.Stats() }
