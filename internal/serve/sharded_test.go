package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"alicoco"
)

// newShardedServer saves the built net as an n-shard snapshot directory
// and starts a server serving from it (as -snapshot-dir would).
func newShardedServer(t *testing.T, built *server, n int) (*server, string) {
	t.Helper()
	dir := t.TempDir()
	if _, err := built.coco.SaveShards(dir, n); err != nil {
		t.Fatal(err)
	}
	coco, err := alicoco.LoadShardedFrozen(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(coco, "", alicoco.DefaultQueryCacheCapacity)
	s.snapshotDir = dir
	return s, dir
}

// TestShardedServesIdenticalAnswers: a cocoserve started from -snapshot-dir
// must answer every endpoint — including the batch POSTs — byte-identically
// to the freshly built net the shards were saved from.
func TestShardedServesIdenticalAnswers(t *testing.T) {
	built := testServer(t)
	sharded, _ := newShardedServer(t, built, 4)

	urls := []string{
		"/search?q=outdoor+barbecue",
		"/search?q=winter+coat",
		"/search?q=grill",
		"/search?q=zzz+no+such+thing",
		"/concept?name=outdoor+barbecue",
		"/hypernyms?name=coat",
		"/hypernyms?name=grill",
	}
	sessions := built.coco.SampleSessions(3)
	sessionStrs := make([]string, len(sessions))
	for i, sess := range sessions {
		parts := make([]string, len(sess))
		for j, id := range sess {
			parts[j] = strconv.Itoa(id)
		}
		sessionStrs[i] = strings.Join(parts, ",")
		urls = append(urls, "/recommend?items="+sessionStrs[i]+"&k=5")
	}
	for _, url := range urls {
		bCode, bBody := get(built, url)
		sCode, sBody := get(sharded, url)
		if bCode != sCode || bBody != sBody {
			t.Fatalf("%s: answers differ\nbuilt (%d):   %s\nsharded (%d): %s", url, bCode, bBody, sCode, sBody)
		}
	}
	batches := []struct{ url, body string }{
		{"/search/batch", `{"queries": ["outdoor barbecue", "winter coat", "grill", "控制"], "max_items": 8}`},
		{"/recommend/batch", `{"sessions": [[` + strings.Join(sessionStrs, `],[`) + `]], "k": 5}`},
	}
	for _, b := range batches {
		bCode, bBody := post(built, b.url, b.body)
		sCode, sBody := post(sharded, b.url, b.body)
		if bCode != sCode || bBody != sBody {
			t.Fatalf("POST %s: answers differ\nbuilt (%d):   %s\nsharded (%d): %s", b.url, bCode, bBody, sCode, sBody)
		}
	}
}

// TestStatsShardedSection: a sharded server's /stats names the directory
// it serves from and lists per-shard checksum, generation, and age.
func TestStatsShardedSection(t *testing.T) {
	built := testServer(t)
	sharded, dir := newShardedServer(t, built, 4)
	type statsResp struct {
		Snapshot snapshotInfo `json:"snapshot"`
	}
	var resp statsResp
	if _, body := get(sharded, "/stats"); json.Unmarshal([]byte(body), &resp) != nil {
		t.Fatal("bad sharded stats")
	}
	sn := resp.Snapshot
	if sn.Source != "shards" || sn.Dir != dir || sn.Checksum == "" || sn.File != "" {
		t.Fatalf("sharded snapshot section: %+v", sn)
	}
	if len(sn.Shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(sn.Shards))
	}
	for i, sh := range sn.Shards {
		if sh.Index != i || sh.Checksum == "" || sh.Generation == 0 || sh.Nodes == 0 {
			t.Fatalf("shard stat %d malformed: %+v", i, sh)
		}
		if sh.AgeSeconds < 0 || sh.PublishedAt == "" || sh.Failures != 0 {
			t.Fatalf("shard stat %d malformed: %+v", i, sh)
		}
	}
	// The unsharded built server reports no shard section.
	var bresp statsResp
	if _, body := get(built, "/stats"); json.Unmarshal([]byte(body), &bresp) != nil {
		t.Fatal("bad built stats")
	}
	if len(bresp.Snapshot.Shards) != 0 || bresp.Snapshot.Dir != "" {
		t.Fatalf("built server should have no shard section: %+v", bresp.Snapshot)
	}
}

// TestReloadShardEndpoint exercises POST /reload?shard=i: a valid index
// reloads one shard, malformed and out-of-range indices are rejected, and
// servers without -snapshot-dir refuse shard reloads outright.
func TestReloadShardEndpoint(t *testing.T) {
	built := testServer(t)
	sharded, _ := newShardedServer(t, built, 3)

	code, body := post(sharded, "/reload?shard=1", "")
	if code != http.StatusOK || !strings.Contains(body, `"source":"shard:1"`) {
		t.Fatalf("shard reload: %d %s", code, body)
	}
	if code, _ := post(sharded, "/reload?shard=abc", ""); code != http.StatusBadRequest {
		t.Fatalf("bad shard parameter: %d, want 400", code)
	}
	if code, _ := post(sharded, "/reload?shard=-2", ""); code != http.StatusBadRequest {
		t.Fatalf("negative shard: %d, want 400", code)
	}
	if code, _ := post(sharded, "/reload?shard=99", ""); code != http.StatusInternalServerError {
		t.Fatalf("out-of-range shard: %d, want 500", code)
	}
	if code, _ := post(built, "/reload?shard=0", ""); code != http.StatusBadRequest {
		t.Fatalf("shard reload without -snapshot-dir: %d, want 400", code)
	}
	// A full /reload against an unchanged directory is a no-op diff.
	code, body = post(sharded, "/reload", "")
	if code != http.StatusOK || !strings.Contains(body, "(0 reloaded)") {
		t.Fatalf("no-op dir reload: %d %s", code, body)
	}
}
