package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"alicoco"
)

var (
	srvOnce sync.Once
	srv     *server
)

var srvErr error

// testServer builds the shared test net once (benchmarks reuse it too, so
// it takes a testing.TB).
func testServer(t testing.TB) *server {
	t.Helper()
	srvOnce.Do(func() {
		coco, err := alicoco.Build(alicoco.Small())
		if err != nil {
			srvErr = err
			return
		}
		srv = newServer(coco, "", alicoco.DefaultQueryCacheCapacity)
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var stats alicoco.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.EConcepts == 0 {
		t.Fatal("stats empty")
	}
}

func TestHandleSearch(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleSearch(rec, httptest.NewRequest(http.MethodGet, "/search?q=outdoor+barbecue", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var res alicoco.SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cards) == 0 || res.Cards[0].Name != "outdoor barbecue" {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestHandleSearchMissingQuery(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleSearch(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestHandleConcept(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleConcept(rec, httptest.NewRequest(http.MethodGet, "/concept?name=outdoor+barbecue", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.handleConcept(rec, httptest.NewRequest(http.MethodGet, "/concept?name=nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing concept status %d", rec.Code)
	}
}

func TestHandleRecommend(t *testing.T) {
	s := testServer(t)
	sessions := s.coco.SampleSessions(1)
	if len(sessions) == 0 || len(sessions[0]) == 0 {
		t.Fatal("no sessions")
	}
	parts := make([]string, len(sessions[0]))
	for i, id := range sessions[0] {
		parts[i] = strconv.Itoa(id)
	}
	rec := httptest.NewRecorder()
	s.handleRecommend(rec, httptest.NewRequest(http.MethodGet, "/recommend?items="+strings.Join(parts, ",")+"&k=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var r alicoco.Recommendation
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Reason == "" || len(r.Card.Items) == 0 {
		t.Fatalf("bad recommendation: %+v", r)
	}
}

func TestHandleRecommendBadInput(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleRecommend(rec, httptest.NewRequest(http.MethodGet, "/recommend?items=abc", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestHandleHypernyms(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleHypernyms(rec, httptest.NewRequest(http.MethodGet, "/hypernyms?name=coat", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "clothing") {
		t.Fatalf("hypernyms missing clothing: %s", rec.Body.String())
	}
}
