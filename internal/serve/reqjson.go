// Request decoding without encoding/json: the server accepts exactly three
// request shapes — single-query GET parameters (q / items / k), the search
// batch body {"queries": [...], "max_items": n}, and the recommend batch
// body {"sessions": [[...], ...], "k": n} — so a small hand-rolled scanner
// over pooled byte buffers replaces the reflection decoder on the hot
// path. The scanner itself performs no allocations: request bodies land in
// a pooled buffer, sessions decode into pooled [][]int storage (inner
// slices revived), and the only per-request allocations left are the query
// strings a search batch materializes (reflection decoding paid dozens on
// top). GET parameters are resolved as substrings of the raw query string,
// unescaping only when an escape is actually present.
package serve

import (
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// reqScratch is the pooled per-request working memory of the decoding
// path: the body buffer, the string-unescape buffer, and the decoded
// request structures, all recycled across requests. Batch queries decode
// as byte slices — views into body for escape-free strings, views into
// arena for unescaped ones — so no per-query string is ever materialized.
type reqScratch struct {
	body     []byte
	strbuf   []byte
	arena    []byte // stable storage for unescaped query bytes
	ids      []int
	queries  [][]byte
	sessions [][]int
}

var reqPool = sync.Pool{New: func() any { return &reqScratch{} }}

func getScratch() *reqScratch { return reqPool.Get().(*reqScratch) }

// putScratch recycles a scratch unless its body buffer has ballooned past
// the request-size cap (append doubling while reading a max-size body can
// overshoot it); a rare huge request should not pin megabytes per pool
// slot, mirroring the encode-side codec pool's cap.
func putScratch(sc *reqScratch) {
	if cap(sc.body) <= maxBatchBody && cap(sc.arena) <= maxBatchBody {
		reqPool.Put(sc)
	}
}

// appendReadAll reads r to EOF into dst (appending), growing it as needed.
func appendReadAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// queryParam returns the first value of key in a raw (still escaped) URL
// query. The common case — no %-escapes, no '+' — returns a substring of
// rawQuery without allocating; escaped values are unescaped (allocating,
// like net/url would). Malformed escapes report not-found, matching
// url.ParseQuery's behavior of dropping the broken pair.
func queryParam(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		var seg string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			seg, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			seg, rawQuery = rawQuery, ""
		}
		if len(seg) <= len(key) || seg[len(key)] != '=' || seg[:len(key)] != key {
			continue
		}
		v := seg[len(key)+1:]
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v, true
		}
		u, err := url.QueryUnescape(v)
		if err != nil {
			return "", false
		}
		return u, true
	}
	return "", false
}

// appendItemsParam parses a comma-separated id list ("1,22,3", with blanks
// tolerated like the previous strings.Split loop) into dst without
// allocating. Non-numeric or negative entries error.
func appendItemsParam(dst []int, v string) ([]int, error) {
	for len(v) > 0 {
		var part string
		if i := strings.IndexByte(v, ','); i >= 0 {
			part, v = v[:i], v[i+1:]
		} else {
			part, v = v, ""
		}
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 {
			return dst, errBadItems
		}
		dst = append(dst, id)
	}
	return dst, nil
}

// scanError is the scanner's constant error type (no fmt, no allocation).
type scanError string

func (e scanError) Error() string { return string(e) }

const (
	errBadItems     = scanError("bad items parameter")
	errSyntax       = scanError("invalid JSON")
	errNotObject    = scanError("expected a JSON object")
	errNotInt       = scanError("expected an integer")
	errNotString    = scanError("expected a string")
	errNotArray     = scanError("expected an array")
	errUnterminated = scanError("unterminated JSON value")
)

// jscan is a cursor over one request body.
type jscan struct {
	b      []byte
	i      int
	strbuf []byte // unescape scratch, borrowed from the reqScratch
	slow   bool   // last parseStringBytes took the unescape path (bytes alias strbuf)
}

func (s *jscan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (s *jscan) peek() byte {
	s.ws()
	if s.i >= len(s.b) {
		return 0
	}
	return s.b[s.i]
}

func (s *jscan) expect(c byte) error {
	if s.peek() != c {
		return errSyntax
	}
	s.i++
	return nil
}

// parseStringBytes decodes the next JSON string. Escape-free strings come
// back as a subslice of the body; escaped ones decode into the scratch
// buffer. Either way the bytes are valid only until the next call.
func (s *jscan) parseStringBytes() ([]byte, error) {
	s.slow = false
	if err := s.expect('"'); err != nil {
		return nil, errNotString
	}
	start := s.i
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '"':
			raw := s.b[start:s.i]
			s.i++
			return raw, nil
		case c == '\\':
			return s.parseStringSlow(start)
		case c < 0x20:
			return nil, errSyntax
		default:
			s.i++
		}
	}
	return nil, errUnterminated
}

// parseStringSlow handles strings containing escapes, decoding into the
// reused scratch buffer. s.i points at the first backslash.
func (s *jscan) parseStringSlow(start int) ([]byte, error) {
	buf := append(s.strbuf[:0], s.b[start:s.i]...)
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			s.i++
			s.strbuf = buf
			s.slow = true
			return buf, nil
		case c < 0x20:
			return nil, errSyntax
		case c != '\\':
			buf = append(buf, c)
			s.i++
		default:
			s.i++
			if s.i >= len(s.b) {
				return nil, errUnterminated
			}
			esc := s.b[s.i]
			s.i++
			switch esc {
			case '"', '\\', '/':
				buf = append(buf, esc)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := s.parseHex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(rune(r)) {
					// A high surrogate must pair with a following \uXXXX
					// low surrogate; anything else becomes U+FFFD, the way
					// encoding/json repairs it.
					r2 := rune(utf8.RuneError)
					if s.i+1 < len(s.b) && s.b[s.i] == '\\' && s.b[s.i+1] == 'u' {
						save := s.i
						s.i += 2
						lo, err := s.parseHex4()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(rune(r), rune(lo)); dec != utf8.RuneError {
							r2 = dec
						} else {
							s.i = save // lone surrogate: re-scan the escape normally
						}
					}
					if r2 == utf8.RuneError {
						buf = utf8.AppendRune(buf, utf8.RuneError)
					} else {
						buf = utf8.AppendRune(buf, r2)
					}
				} else {
					buf = utf8.AppendRune(buf, rune(r))
				}
			default:
				return nil, errSyntax
			}
		}
	}
	return nil, errUnterminated
}

// parseHex4 reads 4 hex digits (after "\u").
func (s *jscan) parseHex4() (uint32, error) {
	if s.i+4 > len(s.b) {
		return 0, errUnterminated
	}
	var r uint32
	for j := 0; j < 4; j++ {
		c := s.b[s.i+j]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | uint32(c-'A'+10)
		default:
			return 0, errSyntax
		}
	}
	s.i += 4
	return r, nil
}

// parseInt reads a JSON number that must be an integer (fractions and
// exponents are rejected, the way encoding/json rejects them for int
// fields).
func (s *jscan) parseInt() (int, error) {
	s.ws()
	start := s.i
	if s.i < len(s.b) && s.b[s.i] == '-' {
		s.i++
	}
	digits := 0
	var v int64
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		v = v*10 + int64(s.b[s.i]-'0')
		digits++
		if digits > 18 {
			return 0, errNotInt
		}
		s.i++
	}
	if digits == 0 {
		return 0, errNotInt
	}
	if s.i < len(s.b) {
		switch s.b[s.i] {
		case '.', 'e', 'E':
			return 0, errNotInt
		}
	}
	if s.b[start] == '-' {
		v = -v
	}
	return int(v), nil
}

// skipValue consumes any JSON value (used for unknown object fields, which
// the reflection decoder also ignored).
func (s *jscan) skipValue() error {
	switch c := s.peek(); {
	case c == '"':
		_, err := s.parseStringBytes()
		return err
	case c == '{' || c == '[':
		open, close := c, byte('}')
		if c == '[' {
			close = ']'
		}
		s.i++
		depth := 1
		for s.i < len(s.b) && depth > 0 {
			switch b := s.b[s.i]; b {
			case '"':
				if _, err := s.parseStringBytes(); err != nil {
					return err
				}
				continue
			case open:
				depth++
			case close:
				depth--
			}
			s.i++
		}
		if depth != 0 {
			return errUnterminated
		}
		return nil
	case c == 't':
		return s.skipLiteral("true")
	case c == 'f':
		return s.skipLiteral("false")
	case c == 'n':
		return s.skipLiteral("null")
	case c == '-' || (c >= '0' && c <= '9'):
		s.i++
		for s.i < len(s.b) {
			b := s.b[s.i]
			if (b >= '0' && b <= '9') || b == '.' || b == 'e' || b == 'E' || b == '+' || b == '-' {
				s.i++
				continue
			}
			break
		}
		return nil
	default:
		return errSyntax
	}
}

func (s *jscan) skipLiteral(lit string) error {
	if s.i+len(lit) > len(s.b) || string(s.b[s.i:s.i+len(lit)]) != lit {
		return errSyntax
	}
	s.i += len(lit)
	return nil
}

// tryNull consumes a null literal if present.
func (s *jscan) tryNull() bool {
	if s.peek() == 'n' && s.skipLiteral("null") == nil {
		return true
	}
	return false
}

// parseObject walks the top-level object, calling field for each key (the
// raw key bytes are valid only during the call) and skipping nothing
// itself — field must consume the value or return an error.
func (s *jscan) parseObject(field func(key []byte) error) error {
	if err := s.expect('{'); err != nil {
		return errNotObject
	}
	if s.peek() == '}' {
		s.i++
		return nil
	}
	for {
		key, err := s.parseStringBytes()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		switch s.peek() {
		case ',':
			s.i++
		case '}':
			s.i++
			return nil
		default:
			return errSyntax
		}
	}
}

// parseSearchBatchBody decodes {"queries": [...], "max_items": n},
// appending queries into the caller's reused slice as byte slices, not
// strings: an escape-free query is a view into the body buffer; an
// escaped one is copied into the scratch arena, whose earlier views stay
// valid across growth because the old backing array is only abandoned,
// never rewritten. Unknown fields are skipped; a null or absent queries
// array comes back empty (the handler rejects it, as it rejected the nil
// the reflection decoder produced).
func parseSearchBatchBody(sc *reqScratch) (queries [][]byte, maxItems int, err error) {
	s := jscan{b: sc.body, strbuf: sc.strbuf[:0]}
	queries = sc.queries[:0]
	arena := sc.arena[:0]
	err = s.parseObject(func(key []byte) error {
		switch string(key) {
		case "queries":
			queries = queries[:0] // duplicate field: last one wins, like encoding/json
			if s.tryNull() {
				return nil
			}
			if err := s.expect('['); err != nil {
				return errNotArray
			}
			if s.peek() == ']' {
				s.i++
				return nil
			}
			for {
				qb, err := s.parseStringBytes()
				if err != nil {
					return err
				}
				if s.slow {
					// qb aliases the unescape scratch, which the next parse
					// reuses; move the bytes somewhere stable.
					n := len(arena)
					arena = append(arena, qb...)
					qb = arena[n:len(arena):len(arena)]
				}
				queries = append(queries, qb)
				switch s.peek() {
				case ',':
					s.i++
				case ']':
					s.i++
					return nil
				default:
					return errSyntax
				}
			}
		case "max_items":
			if s.tryNull() {
				return nil
			}
			n, err := s.parseInt()
			if err != nil {
				return err
			}
			maxItems = n
			return nil
		default:
			return s.skipValue()
		}
	})
	sc.strbuf = s.strbuf
	sc.arena = arena
	sc.queries = queries
	return queries, maxItems, err
}

// parseRecommendBatchBody decodes {"sessions": [[...], ...], "k": n} into
// the caller's reused [][]int (outer and inner storage both revived), so
// a recommend batch decodes with zero allocations in steady state.
func parseRecommendBatchBody(sc *reqScratch) (sessions [][]int, k int, err error) {
	s := jscan{b: sc.body, strbuf: sc.strbuf[:0]}
	sessions = sc.sessions[:0]
	err = s.parseObject(func(key []byte) error {
		switch string(key) {
		case "sessions":
			sessions = sessions[:0] // duplicate field: last one wins, like encoding/json
			if s.tryNull() {
				return nil
			}
			if err := s.expect('['); err != nil {
				return errNotArray
			}
			if s.peek() == ']' {
				s.i++
				return nil
			}
			for {
				if s.tryNull() {
					sessions = appendSession(sessions)
					sessions[len(sessions)-1] = sessions[len(sessions)-1][:0]
				} else {
					if err := s.expect('['); err != nil {
						return errNotArray
					}
					sessions = appendSession(sessions)
					inner := sessions[len(sessions)-1][:0]
					if s.peek() == ']' {
						s.i++
					} else {
					items:
						for {
							id, err := s.parseInt()
							if err != nil {
								return err
							}
							inner = append(inner, id)
							switch s.peek() {
							case ',':
								s.i++
							case ']':
								s.i++
								break items
							default:
								return errSyntax
							}
						}
					}
					sessions[len(sessions)-1] = inner
				}
				switch s.peek() {
				case ',':
					s.i++
				case ']':
					s.i++
					return nil
				default:
					return errSyntax
				}
			}
		case "k":
			if s.tryNull() {
				return nil
			}
			n, err := s.parseInt()
			if err != nil {
				return err
			}
			k = n
			return nil
		default:
			return s.skipValue()
		}
	})
	sc.strbuf = s.strbuf
	sc.sessions = sessions
	return sessions, k, err
}

// appendSession grows the outer session slice by one, reviving the inner
// slice previously stored in that slot.
func appendSession(sessions [][]int) [][]int {
	if cap(sessions) > len(sessions) {
		sessions = sessions[:len(sessions)+1]
		sessions[len(sessions)-1] = sessions[len(sessions)-1][:0]
		return sessions
	}
	return append(sessions, nil)
}
