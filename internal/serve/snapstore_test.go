package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alicoco"
	"alicoco/internal/snapstore"
)

// newCatalogServer commits gens generations (each with different content)
// into a snapshot store and starts a server over it with the snapstore
// lifecycle wired up, as `cocoserve -snapshot-dir <store>` would.
func newCatalogServer(t *testing.T, gens int) (*server, *alicoco.CoCo, string) {
	t.Helper()
	coco, err := alicoco.Build(alicoco.Small())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := coco.SaveShards(dir, 3); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < gens; i++ {
		if _, err := coco.InferImplicitRelations(); err != nil {
			t.Fatal(err)
		}
		if _, err := coco.SaveShards(dir, 3); err != nil {
			t.Fatal(err)
		}
	}
	serving, err := alicoco.LoadShardedFrozen(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(serving, "", alicoco.DefaultQueryCacheCapacity)
	s.snapshotDir = dir
	s.initStore()
	if s.store == nil {
		t.Fatal("catalog store not detected")
	}
	return s, coco, dir
}

// statsSnapstore fetches and decodes the /stats "snapstore" section.
func statsSnapstore(t *testing.T, s *server) snapstoreInfo {
	t.Helper()
	var resp struct {
		Snapstore snapstoreInfo `json:"snapstore"`
	}
	code, body := get(s, "/stats")
	if code != http.StatusOK || json.Unmarshal([]byte(body), &resp) != nil {
		t.Fatalf("stats: %d %s", code, body)
	}
	return resp.Snapstore
}

// TestRollbackEndpoint: POST /rollback republishes the previous committed
// generation, /stats reports it, the refresh loop holds on the skiplisted
// newer generation, and a brand-new commit clears the hold.
func TestRollbackEndpoint(t *testing.T) {
	s, coco, dir := newCatalogServer(t, 2)
	if g := s.coco.ServingInfo().CatalogGen; g != 2 {
		t.Fatalf("fresh catalog server serves gen %d, want 2", g)
	}

	code, body := post(s, "/rollback", "")
	if code != http.StatusOK || !strings.Contains(body, `"gen":1`) {
		t.Fatalf("rollback: %d %s", code, body)
	}
	if g := s.coco.ServingInfo().CatalogGen; g != 1 {
		t.Fatalf("serving gen %d after rollback, want 1", g)
	}
	sn := statsSnapstore(t, s)
	if !sn.Enabled || sn.ServingGen != 1 || sn.Rollbacks != 1 || sn.LastRollback == nil {
		t.Fatalf("snapstore stats after rollback: %+v", sn)
	}
	if sn.LastRollback.From != 2 || sn.LastRollback.To != 1 {
		t.Fatalf("last_rollback: %+v", sn.LastRollback)
	}
	var sawBad bool
	for _, g := range sn.Generations {
		if g.ID == 2 && g.Bad {
			sawBad = true
		}
		if g.ID == 1 && !g.Serving {
			t.Fatalf("generation 1 not marked serving: %+v", sn.Generations)
		}
	}
	if !sawBad {
		t.Fatalf("generation 2 not skiplisted after rollback: %+v", sn.Generations)
	}

	// A reload holds instead of rolling forward onto the skiplisted gen.
	src, err := s.tryReload()
	if err != nil || !strings.HasPrefix(src, "held:") {
		t.Fatalf("reload after rollback: %q err=%v, want a hold", src, err)
	}
	if g := s.coco.ServingInfo().CatalogGen; g != 1 {
		t.Fatalf("hold did not hold: serving gen %d", g)
	}

	// A new commit supersedes the skiplist and reloads resume.
	if _, err := coco.SaveShards(dir, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tryReload(); err != nil {
		t.Fatalf("reload of superseding generation: %v", err)
	}
	if g := s.coco.ServingInfo().CatalogGen; g != 3 {
		t.Fatalf("serving gen %d after superseding commit, want 3", g)
	}

	// Operators can also roll forward by explicit ID.
	if code, body := post(s, "/rollback?gen=2", ""); code != http.StatusOK || !strings.Contains(body, `"gen":2`) {
		t.Fatalf("explicit rollback: %d %s", code, body)
	}
	if code, _ := post(s, "/rollback?gen=abc", ""); code != http.StatusBadRequest {
		t.Fatalf("bad gen parameter: %d, want 400", code)
	}
	if code, _ := get(s, "/rollback"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rollback: %d, want 405", code)
	}
}

// TestRollbackRequiresCatalog: servers not backed by a generation catalog
// refuse /rollback outright.
func TestRollbackRequiresCatalog(t *testing.T) {
	built := testServer(t)
	if code, _ := post(built, "/rollback", ""); code != http.StatusBadRequest {
		t.Fatalf("rollback without catalog: %d, want 400", code)
	}
}

// TestAutoRollbackOnValidationFailure is the acceptance scenario: a new
// generation that loads cleanly but fails post-swap validation is rolled
// back automatically, the fallback is reported in /stats, the bad
// generation stays skiplisted, and the next good commit recovers.
func TestAutoRollbackOnValidationFailure(t *testing.T) {
	s, coco, dir := newCatalogServer(t, 1)
	poison := errors.New("golden query came back empty")
	s.cfg.validate = func(c *alicoco.CoCo) error {
		if c.ServingInfo().CatalogGen == 2 {
			return poison
		}
		return nil
	}

	// Generation 2: loads and verifies clean — only validation hates it.
	if _, err := coco.InferImplicitRelations(); err != nil {
		t.Fatal(err)
	}
	if _, err := coco.SaveShards(dir, 3); err != nil {
		t.Fatal(err)
	}

	_, err := s.tryReload()
	if err == nil || !strings.Contains(err.Error(), "validation") {
		t.Fatalf("reload of invalid generation: %v, want validation failure", err)
	}
	if g := s.coco.ServingInfo().CatalogGen; g != 1 {
		t.Fatalf("serving gen %d after auto-rollback, want 1", g)
	}
	sn := statsSnapstore(t, s)
	if sn.ValidationFailures != 1 || sn.Rollbacks != 1 || sn.ServingGen != 1 {
		t.Fatalf("snapstore stats after auto-rollback: %+v", sn)
	}
	if sn.LastRollback == nil || !strings.Contains(sn.LastRollback.Reason, "validation") {
		t.Fatalf("last_rollback: %+v", sn.LastRollback)
	}

	// The refresh loop no longer fights the bad generation.
	src, err := s.tryReload()
	if err != nil || !strings.HasPrefix(src, "held:") {
		t.Fatalf("post-rollback reload: %q err=%v, want a hold", src, err)
	}

	// Generation 3 passes validation and serving moves on.
	if _, err := coco.SaveShards(dir, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tryReload(); err != nil {
		t.Fatalf("reload of fixed generation: %v", err)
	}
	if g := s.coco.ServingInfo().CatalogGen; g != 3 {
		t.Fatalf("serving gen %d, want 3", g)
	}
}

// TestScrubTickRepairsAndReports: one scrubber tick finds injected
// corruption, quarantines and repairs it, and /stats carries the counters
// and the last report.
func TestScrubTickRepairsAndReports(t *testing.T) {
	s, _, dir := newCatalogServer(t, 1)
	gens, err := snapstore.ListGenerations(dir)
	if err != nil || len(gens) != 1 {
		t.Fatalf("generations: %v err=%v", gens, err)
	}
	victim := filepath.Join(dir, gens[0].Dir, "shard-0001.fz")
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0x40
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s.scrubTick()
	sn := statsSnapstore(t, s)
	if sn.Scrub.Passes != 1 || sn.Scrub.Quarantines != 1 || sn.Scrub.Repairs != 1 || sn.Scrub.Unrepaired != 0 {
		t.Fatalf("scrub stats after corrupt tick: %+v", sn.Scrub)
	}
	if sn.Scrub.Last == nil || len(sn.Scrub.Last.Mismatches) != 1 {
		t.Fatalf("last scrub report: %+v", sn.Scrub.Last)
	}

	// A second tick over the repaired store is clean.
	s.scrubTick()
	sn = statsSnapstore(t, s)
	if sn.Scrub.Passes != 2 || sn.Scrub.Quarantines != 1 || sn.Scrub.Last == nil || !sn.Scrub.Last.Clean() {
		t.Fatalf("scrub stats after clean tick: %+v", sn.Scrub)
	}
}

// TestStatsSnapstoreDisabled: without a catalog the section stays inert —
// flat directories and live-built servers behave exactly as before.
func TestStatsSnapstoreDisabled(t *testing.T) {
	built := testServer(t)
	sn := statsSnapstore(t, built)
	if sn.Enabled || sn.Root != "" || len(sn.Generations) != 0 {
		t.Fatalf("snapstore section on a live-built server: %+v", sn)
	}
}
