// Snapshot-store lifecycle wiring for cocoserve: when -snapshot-dir points
// at a generation catalog (a store written by `alicoco snapshot save -dir`
// or pipeline.SaveShards), the server gains the crash-safe lifecycle on
// top of plain reloads — automatic rollback down the catalog when a new
// generation fails post-swap validation or trips the reload breaker, a
// POST /rollback operator endpoint, retention pruning (-retain), a
// background integrity scrubber (-scrub-interval), and a /stats
// "snapstore" section reporting all of it. A flat (pre-catalog) snapshot
// directory leaves every feature here disabled and serves exactly as
// before.
package serve

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"alicoco"
	"alicoco/internal/snapstore"
)

// initStore opens the generation catalog behind -snapshot-dir when there
// is one. Open runs the torn-write recovery sweep, so by the time the
// server accepts traffic every uncommitted temp directory from a crashed
// save is gone.
func (s *server) initStore() {
	if s.snapshotDir == "" || !snapstore.IsStore(s.snapshotDir) {
		return
	}
	st, err := snapstore.Open(s.snapshotDir, snapstore.Options{Retain: s.cfg.retain})
	if err != nil {
		log.Printf("snapstore: %v (rollback/scrub disabled)", err)
		return
	}
	s.store = st
}

// defaultValidate is the post-swap validation every newly published
// generation must pass before the server trusts it: the serving state must
// actually hold a net. Tests and deployments can tighten this via
// cfg.validate (golden-query checks, minimum node counts, ...).
func defaultValidate(c *alicoco.CoCo) error {
	if info := c.ServingInfo(); info.Nodes <= 0 {
		return errors.New("serving state has no nodes")
	}
	return nil
}

// markBadLocked adds a generation to the skiplist of generations the
// refresh loop must not re-publish (they loaded clean but failed
// validation, or failed to load during a rollback walk). Callers hold
// reloadMu.
func (s *server) markBadLocked(gen uint64) {
	if gen == 0 {
		return
	}
	if s.badGens == nil {
		s.badGens = make(map[uint64]bool)
	}
	s.badGens[gen] = true
}

// reloadGateLocked decides whether a periodic/manual reload should proceed
// given the bad-generation skiplist: a newest generation that is marked
// bad is held (the last rollback target keeps serving), and a fresh
// generation newer than every known-bad one supersedes the skiplist
// entirely — the publisher shipped a fix, so reloads resume. Callers hold
// reloadMu. The returned hold reason is non-empty when the reload should
// be skipped.
func (s *server) reloadGateLocked() (hold string) {
	if s.store == nil {
		return ""
	}
	g, ok, err := s.store.Latest()
	if err != nil || !ok {
		return ""
	}
	maxBad := uint64(0)
	for id := range s.badGens {
		if id > maxBad {
			maxBad = id
		}
	}
	if g.ID > maxBad && len(s.badGens) > 0 {
		clear(s.badGens)
		return ""
	}
	if s.badGens[g.ID] {
		return fmt.Sprintf("newest gen %d marked bad; serving gen %d", g.ID, s.coco.ServingInfo().CatalogGen)
	}
	return ""
}

// validateSwapLocked runs post-swap validation after a reload that
// published a new serving state; on failure it marks the generation bad
// and falls back down the catalog. Callers hold reloadMu. The returned
// error is non-nil whenever validation failed, even if the rollback that
// followed succeeded — the requested reload did not stick, and callers'
// failure bookkeeping should say so.
func (s *server) validateSwapLocked(beforeGen uint64) error {
	if s.cfg.validate == nil {
		return nil
	}
	info := s.coco.ServingInfo()
	if info.Generation == beforeGen {
		return nil // nothing newly published, nothing to validate
	}
	verr := s.cfg.validate(s.coco)
	if verr == nil {
		return nil
	}
	s.validationFailures.Add(1)
	if s.store == nil || info.CatalogGen == 0 {
		return fmt.Errorf("post-swap validation failed (no catalog to roll back in): %w", verr)
	}
	s.markBadLocked(info.CatalogGen)
	if rerr := s.autoRollbackLocked(info.CatalogGen, "post-swap validation failed: "+verr.Error()); rerr != nil {
		return fmt.Errorf("post-swap validation failed (%v) and rollback failed: %w", verr, rerr)
	}
	return fmt.Errorf("post-swap validation failed (rolled back to gen %d): %w",
		s.coco.ServingInfo().CatalogGen, verr)
}

// autoRollbackLocked walks the catalog from the newest generation older
// than badGen down, skipping known-bad generations, and publishes the
// first one that loads and verifies clean. Callers hold reloadMu.
func (s *server) autoRollbackLocked(badGen uint64, reason string) error {
	if s.store == nil {
		return errors.New("no generation catalog to roll back in")
	}
	if badGen == 0 {
		g, ok, err := s.store.Latest()
		if err != nil || !ok {
			return errors.New("no committed generations to roll back in")
		}
		badGen = g.ID
		s.markBadLocked(g.ID)
	}
	gens, err := s.store.Generations()
	if err != nil {
		return err
	}
	from := s.coco.ServingInfo().CatalogGen
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if g.ID >= badGen || s.badGens[g.ID] {
			continue
		}
		if _, err := s.coco.RollbackTo(g.ID); err != nil {
			log.Printf("rollback: gen %d failed to load (%v); marking bad and continuing down", g.ID, err)
			s.markBadLocked(g.ID)
			continue
		}
		// The rollback target must clear the same bar the failed
		// generation missed, or the walk keeps descending.
		if s.cfg.validate != nil {
			if verr := s.cfg.validate(s.coco); verr != nil {
				log.Printf("rollback: gen %d failed validation (%v); marking bad and continuing down", g.ID, verr)
				s.markBadLocked(g.ID)
				continue
			}
		}
		s.noteRollbackLocked(from, g.ID, reason)
		return nil
	}
	return fmt.Errorf("no clean generation older than %d to roll back to", badGen)
}

// noteRollbackLocked records a completed rollback for /stats. Callers
// hold reloadMu.
func (s *server) noteRollbackLocked(from, to uint64, reason string) {
	delete(s.badGens, to) // the generation serving now is vouched for
	s.rollbacks.Add(1)
	s.lastRollback = &rollbackStat{
		From:   from,
		To:     to,
		At:     time.Now().UTC().Format(time.RFC3339),
		Reason: reason,
	}
	log.Printf("rolled back serving: gen %d -> gen %d (%s)", from, to, reason)
}

// pruneLocked enforces -retain against the catalog after a successful
// reload, never dropping the generation being served. Callers hold
// reloadMu.
func (s *server) pruneLocked() {
	if s.store == nil {
		return
	}
	protect := map[uint64]bool{s.coco.ServingInfo().CatalogGen: true}
	dropped, err := s.store.Prune(protect)
	if err != nil {
		log.Printf("snapstore prune: %v", err)
		return
	}
	if len(dropped) > 0 {
		log.Printf("snapstore pruned %d generations (retain %d)", len(dropped), s.store.Retain())
	}
}

// handleRollback is POST /rollback: republish an earlier committed
// generation. An optional gen parameter names it; by default the newest
// generation older than the one serving is used. Every generation newer
// than the rollback target is marked bad, so the refresh loop holds there
// instead of immediately rolling forward again; publishing a brand-new
// generation clears the hold.
func (s *server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.store == nil {
		http.Error(w, "rollback requires a catalog-backed -snapshot-dir", http.StatusBadRequest)
		return
	}
	var gen uint64
	if genStr, ok := queryParam(r.URL.RawQuery, "gen"); ok && genStr != "" {
		v, err := strconv.ParseUint(genStr, 10, 64)
		if err != nil || v == 0 {
			http.Error(w, "bad gen parameter", http.StatusBadRequest)
			return
		}
		gen = v
	}
	s.reloadMu.Lock()
	from := s.coco.ServingInfo().CatalogGen
	g, err := s.coco.RollbackTo(gen)
	if err == nil {
		// Skiplist everything newer than the target so the refresh loop
		// holds at the operator's choice.
		if gens, gerr := s.store.Generations(); gerr == nil {
			for _, cand := range gens {
				if cand.ID > g.ID {
					s.markBadLocked(cand.ID)
				}
			}
		}
		s.noteRollbackLocked(from, g.ID, "operator rollback")
	}
	s.reloadMu.Unlock()
	if err != nil {
		http.Error(w, "rollback failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{
		"status":   "rolled_back",
		"gen":      g.ID,
		"snapshot": s.snapshotInfo(),
	})
}

// scrubLoop runs the background integrity scrubber: every interval, one
// ScrubOnce pass re-hashes the served generation's files against their
// manifest, quarantining and repairing silent corruption. The pass runs
// entirely off the request path (serving reads in-memory shards), and the
// loop exits when done closes.
func (s *server) scrubLoop(interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		s.scrubTick()
	}
}

// scrubTick is one scrubber pass with its bookkeeping.
func (s *server) scrubTick() {
	rep, err := s.coco.ScrubOnce()
	if err != nil {
		s.scrubErrors.Add(1)
		log.Printf("scrub: %v", err)
		return
	}
	s.scrubPasses.Add(1)
	s.scrubRepairs.Add(uint64(len(rep.Repaired)))
	s.scrubQuarantines.Add(uint64(len(rep.Quarantined)))
	s.scrubUnrepaired.Add(uint64(len(rep.Unrepaired)))
	s.scrubMu.Lock()
	s.lastScrub = rep
	s.scrubMu.Unlock()
	if !rep.Clean() {
		log.Printf("scrub: gen %d: %d mismatches, %d quarantined, %d repaired, %d unrepaired",
			rep.Gen, len(rep.Mismatches), len(rep.Quarantined), len(rep.Repaired), len(rep.Unrepaired))
	}
}

// snapstoreInfo is the /stats "snapstore" section: catalog state, rollback
// history, and scrubber counters. Enabled is false (and everything else
// zero) when -snapshot-dir is absent or a flat pre-catalog directory.
type snapstoreInfo struct {
	Enabled            bool          `json:"enabled"`
	Root               string        `json:"root,omitempty"`
	ServingGen         uint64        `json:"serving_gen,omitempty"`
	Retain             int           `json:"retain,omitempty"`
	Generations        []genStat     `json:"generations,omitempty"`
	Rollbacks          uint64        `json:"rollbacks"`
	LastRollback       *rollbackStat `json:"last_rollback,omitempty"`
	ValidationFailures uint64        `json:"validation_failures"`
	Scrub              scrubStat     `json:"scrub"`
}

// genStat is one catalog generation in /stats.
type genStat struct {
	ID               uint64 `json:"id"`
	CreatedAt        string `json:"created_at"`
	ManifestChecksum string `json:"manifest_checksum"`
	Serving          bool   `json:"serving,omitempty"`
	Bad              bool   `json:"bad,omitempty"` // skiplisted by validation failure or rollback
}

// rollbackStat describes the most recent rollback.
type rollbackStat struct {
	From   uint64 `json:"from_gen"`
	To     uint64 `json:"to_gen"`
	At     string `json:"at"` // RFC 3339
	Reason string `json:"reason"`
}

// scrubStat aggregates the integrity scrubber's lifetime counters plus the
// most recent pass.
type scrubStat struct {
	Passes      uint64                 `json:"passes"`
	Repairs     uint64                 `json:"repairs"`
	Quarantines uint64                 `json:"quarantines"`
	Unrepaired  uint64                 `json:"unrepaired"`
	Errors      uint64                 `json:"errors"`
	Last        *snapstore.ScrubReport `json:"last,omitempty"`
}

func (s *server) snapstoreInfo() snapstoreInfo {
	out := snapstoreInfo{
		Rollbacks:          s.rollbacks.Load(),
		ValidationFailures: s.validationFailures.Load(),
		Scrub: scrubStat{
			Passes:      s.scrubPasses.Load(),
			Repairs:     s.scrubRepairs.Load(),
			Quarantines: s.scrubQuarantines.Load(),
			Unrepaired:  s.scrubUnrepaired.Load(),
			Errors:      s.scrubErrors.Load(),
		},
	}
	s.scrubMu.Lock()
	out.Scrub.Last = s.lastScrub
	s.scrubMu.Unlock()
	if s.store == nil {
		return out
	}
	out.Enabled = true
	out.Root = s.store.Root()
	out.Retain = s.store.Retain()
	serving := s.coco.ServingInfo().CatalogGen
	out.ServingGen = serving
	gens, err := s.store.Generations()
	if err != nil {
		return out
	}
	s.reloadMu.Lock()
	out.LastRollback = s.lastRollback
	for _, g := range gens {
		out.Generations = append(out.Generations, genStat{
			ID:               g.ID,
			CreatedAt:        g.CreatedAt.UTC().Format(time.RFC3339),
			ManifestChecksum: fmt.Sprintf("%08x", g.ManifestChecksum),
			Serving:          g.ID == serving,
			Bad:              s.badGens[g.ID],
		})
	}
	s.reloadMu.Unlock()
	return out
}
