package serve

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"alicoco"
	"alicoco/internal/obs"
	"alicoco/internal/raceflag"
)

// scrape parses the server's /metrics strictly, failing the test on any
// format violation.
func scrape(t *testing.T, h http.Handler) *obs.Parsed {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	p, err := obs.ParseText(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("/metrics does not parse strictly: %v", err)
	}
	return p
}

func TestMetricsEndpointCoversCatalog(t *testing.T) {
	s := testServer(t)
	h := s.handler()

	// Drive one hit, one deterministic 4xx, and one 404 so the counters
	// have something to show.
	for _, url := range []string{"/search?q=outdoor+barbecue", "/search?q=outdoor+barbecue", "/search", "/recommend?items=0"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	}

	p := scrape(t, h)
	if v, ok := p.Value("cocoserve_requests_total", "endpoint", "search", "class", "2xx"); !ok || v < 2 {
		t.Errorf("search 2xx counter = %v ok=%v, want >= 2", v, ok)
	}
	if v, ok := p.Value("cocoserve_requests_total", "endpoint", "search", "class", "4xx"); !ok || v < 1 {
		t.Errorf("search 4xx counter = %v ok=%v, want >= 1", v, ok)
	}
	snap, err := p.HistogramSnapshot(MetricsHistogramName, "endpoint", "search")
	if err != nil {
		t.Fatalf("latency histogram: %v", err)
	}
	if snap.Count() < 2 {
		t.Errorf("search latency count = %d, want >= 2 (2xx only)", snap.Count())
	}
	// One series per catalog family the ISSUE names; presence is enough —
	// values are runtime-dependent.
	for _, fam := range []string{
		"cocoserve_cache_hits_total", "cocoserve_cache_misses_total",
		"cocoserve_cache_evictions_total", "cocoserve_cache_entries",
		"cocoserve_cache_capacity",
		"cocoserve_gate_inflight", "cocoserve_gate_waiting",
		"cocoserve_gate_admitted_total", "cocoserve_gate_shed_total",
		"cocoserve_gate_shed_over_delay_total", "cocoserve_gate_dropping",
		"cocoserve_gate_last_sojourn_seconds", "cocoserve_gate_drain_per_sec",
		"cocoserve_gate_retry_after_seconds",
		"cocoserve_snapshot_generation", "cocoserve_snapshot_age_seconds",
		"cocoserve_snapshot_nodes", "cocoserve_snapshot_edges",
		"cocoserve_reload_failures_total", "cocoserve_rollbacks_total",
		"cocoserve_validation_failures_total", "cocoserve_scrub_passes_total",
		"cocoserve_panics_recovered_total", "cocoserve_degraded_refusals_total",
		"cocoserve_draining",
		"cocoserve_build_info", "cocoserve_goroutines", "cocoserve_heap_bytes",
		"cocoserve_gc_cycles_total", "cocoserve_gc_pause_p99_seconds",
		"cocoserve_process_start_time_seconds",
	} {
		if p.Family(fam) == nil {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if v, ok := p.Value("cocoserve_cache_hits_total", "layer", "search_bytes"); !ok || v < 1 {
		t.Errorf("search_bytes hits = %v ok=%v, want >= 1", v, ok)
	}
	if g := p.Family("cocoserve_build_info"); g != nil {
		if len(g.Samples) != 1 || g.Samples[0].Value != 1 {
			t.Errorf("build_info = %+v, want one sample of 1", g.Samples)
		}
		if g.Samples[0].Label("go_version") == "" {
			t.Errorf("build_info missing go_version label")
		}
	}
}

func TestMetricsRequestIDEchoAndAssign(t *testing.T) {
	s := testServer(t)
	h := s.handler()

	// A client-supplied well-formed ID echoes back — hit or miss.
	req := httptest.NewRequest(http.MethodGet, "/search?q=outdoor+barbecue", nil)
	req.Header.Set("X-Request-Id", "client-abc-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "client-abc-123" {
		t.Errorf("echoed request ID = %q, want client-abc-123", got)
	}

	// A malformed ID (header-splitting attempt) is dropped, and the miss
	// path assigns a fresh one at admission instead.
	req = httptest.NewRequest(http.MethodGet, "/search?q=miss+"+t.Name(), nil)
	req.Header.Set("X-Request-Id", "bad\x01id")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	got := rec.Header().Get("X-Request-Id")
	if got == "bad\x01id" {
		t.Error("malformed client ID echoed verbatim")
	}
	if got == "" {
		t.Error("miss path did not assign a request ID")
	}

	// Two assigned IDs differ.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/search?q=miss2+"+t.Name(), nil))
	if got2 := rec2.Header().Get("X-Request-Id"); got2 == "" || got2 == got {
		t.Errorf("assigned IDs not unique: %q vs %q", got, got2)
	}
}

func TestValidRequestID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-123":                true,
		"ABCDEF0123":             true,
		"":                       false,
		"has\nnewline":           false,
		"has\x00nul":             false,
		"héllo":                  false,
		strings.Repeat("x", 128): true,
		strings.Repeat("x", 129): false,
	} {
		if got := validRequestID(id); got != want {
			t.Errorf("validRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	coco, err := alicoco.Build(alicoco.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.cacheSize = alicoco.DefaultQueryCacheCapacity
	cfg.slowQuery = time.Nanosecond // everything is slow
	s := newServerCfg(coco, "", cfg)
	h := s.handler()

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	req := httptest.NewRequest(http.MethodGet, "/search?q=outdoor+barbecue", nil)
	req.Header.Set("X-Request-Id", "slow-test-id")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	line := buf.String()
	for _, want := range []string{"slow query:", "endpoint=search", "status=200", "request_id=slow-test-id", "gen="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query log %q missing %q", line, want)
		}
	}
	p := scrape(t, h)
	if v, ok := p.Value("cocoserve_slow_queries_total", "endpoint", "search"); !ok || v < 1 {
		t.Errorf("slow_queries_total = %v ok=%v, want >= 1", v, ok)
	}
}

// TestMetricsScrapeNotCounted pins that /metrics and the health probes
// stay outside the telemetry envelope: scraping must not skew traffic
// counters.
func TestMetricsScrapeNotCounted(t *testing.T) {
	s := testServer(t)
	h := s.handler()
	before := sumRequestsTotal(t, h)
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	}
	if after := sumRequestsTotal(t, h); after != before {
		t.Errorf("scrapes/probes moved cocoserve_requests_total: %v -> %v", before, after)
	}
}

func sumRequestsTotal(t *testing.T, h http.Handler) float64 {
	t.Helper()
	var sum float64
	f := scrape(t, h).Family("cocoserve_requests_total")
	if f == nil {
		t.Fatal("cocoserve_requests_total missing")
	}
	for _, s := range f.Samples {
		sum += s.Value
	}
	return sum
}

// TestStatsBuildSection pins the /stats "build" block: version, git SHA,
// Go version, start time, and a live uptime.
func TestStatsBuildSection(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var resp struct {
		Build obs.BuildInfo `json:"build"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Build.Version == "" || resp.Build.GoVersion == "" || resp.Build.GitSHA == "" {
		t.Errorf("build section incomplete: %+v", resp.Build)
	}
	if _, err := time.Parse(time.RFC3339, resp.Build.StartedAt); err != nil {
		t.Errorf("started_at %q not RFC3339: %v", resp.Build.StartedAt, err)
	}
	if resp.Build.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", resp.Build.UptimeSeconds)
	}
}

// TestCacheHitWithClientRequestIDAllocs bounds the other hit-path shape:
// echoing a client correlation ID costs exactly the one []string header
// value — the path stays within the historical 1-alloc budget.
func TestCacheHitWithClientRequestIDAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race (sync.Pool drops items)")
	}
	s := testServer(t)
	h := s.handler()
	req := httptest.NewRequest(http.MethodGet, "/search?q=outdoor+barbecue", nil)
	req.Header.Set("X-Request-Id", "alloc-test-id")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup status %d", rec.Code)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
	})
	if allocs > 1 {
		t.Fatalf("cache hit with client request ID: %.1f allocs/op, want <= 1", allocs)
	}
}

// TestMetricsUnderConcurrentTraffic hammers query endpoints while
// scraping, asserting every scrape parses strictly and the per-endpoint
// totals only move forward. Run under -race this is the integration-level
// proof the request-path instruments are sound.
func TestMetricsUnderConcurrentTraffic(t *testing.T) {
	s := testServer(t)
	h := s.handler()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			urls := []string{
				"/search?q=outdoor+barbecue",
				"/recommend?items=1,2&k=5",
				"/search", // deterministic 400
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, urls[(i+w)%len(urls)], nil))
			}
		}(w)
	}
	var last float64
	for i := 0; i < 20; i++ {
		total := sumRequestsTotal(t, h)
		if total < last {
			t.Fatalf("scrape %d: requests_total regressed %v -> %v", i, last, total)
		}
		last = total
	}
	close(done)
}
