package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"alicoco"
)

var (
	snapOnce   sync.Once
	snapErr    error
	snapPath   string
	snapLoaded *server // serves from the loaded snapshot, reload re-reads the file
)

// snapshotFixture saves the shared built net to a frozen snapshot once and
// loads a second, snapshot-backed server from it.
func snapshotFixture(t *testing.T) (built *server, loaded *server, path string) {
	t.Helper()
	built = testServer(t)
	snapOnce.Do(func() {
		// The fixture outlives the first test that builds it, so it cannot
		// live in that test's TempDir.
		dir, err := os.MkdirTemp("", "cocoserve-snap-")
		if err != nil {
			snapErr = err
			return
		}
		snapPath = filepath.Join(dir, "net.fz")
		if err := built.coco.SaveFrozen(snapPath); err != nil {
			snapErr = err
			return
		}
		coco, err := alicoco.LoadFrozen(snapPath)
		if err != nil {
			snapErr = err
			return
		}
		snapLoaded = &server{coco: coco, snapshot: snapPath}
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return built, snapLoaded, snapPath
}

func get(s *server, url string) (int, string) {
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec.Code, rec.Body.String()
}

// TestSnapshotServesIdenticalAnswers: a cocoserve started from -snapshot
// must answer every endpoint byte-identically to the freshly built net it
// was saved from.
func TestSnapshotServesIdenticalAnswers(t *testing.T) {
	built, loaded, _ := snapshotFixture(t)

	urls := []string{
		"/search?q=outdoor+barbecue",
		"/search?q=winter+coat",
		"/concept?name=outdoor+barbecue",
		"/hypernyms?name=coat",
		"/hypernyms?name=grill",
	}
	sessions := built.coco.SampleSessions(3)
	for _, sess := range sessions {
		parts := make([]string, len(sess))
		for i, id := range sess {
			parts[i] = strconv.Itoa(id)
		}
		urls = append(urls, "/recommend?items="+strings.Join(parts, ",")+"&k=5")
	}
	for _, url := range urls {
		bCode, bBody := get(built, url)
		lCode, lBody := get(loaded, url)
		if bCode != lCode {
			t.Fatalf("%s: status %d (built) vs %d (snapshot)", url, bCode, lCode)
		}
		if bBody != lBody {
			t.Fatalf("%s: answers differ\nbuilt:    %s\nsnapshot: %s", url, bBody, lBody)
		}
	}
	// /stats carries per-server snapshot metadata (source, checksum, age),
	// so only the net-shape portion must match byte-for-byte semantics.
	var bStats, lStats alicoco.Stats
	if _, body := get(built, "/stats"); json.Unmarshal([]byte(body), &bStats) != nil {
		t.Fatal("bad built stats")
	}
	if _, body := get(loaded, "/stats"); json.Unmarshal([]byte(body), &lStats) != nil {
		t.Fatal("bad loaded stats")
	}
	if bStats.Relations != lStats.Relations || bStats.Items != lStats.Items ||
		bStats.EConcepts != lStats.EConcepts || bStats.Primitives != lStats.Primitives {
		t.Fatalf("net stats differ:\nbuilt    %+v\nsnapshot %+v", bStats, lStats)
	}
}

// TestStatsSnapshotSection checks the operational metadata /stats now
// exposes: a built server reports source "build" with no checksum, a
// snapshot-loaded one reports source "snapshot" with the file's CRC-32,
// and both report serving counts and a sane age.
func TestStatsSnapshotSection(t *testing.T) {
	built, loaded, path := snapshotFixture(t)
	type statsResp struct {
		Snapshot snapshotInfo `json:"snapshot"`
	}
	var b, l statsResp
	if _, body := get(built, "/stats"); json.Unmarshal([]byte(body), &b) != nil {
		t.Fatal("bad built stats")
	}
	if _, body := get(loaded, "/stats"); json.Unmarshal([]byte(body), &l) != nil {
		t.Fatal("bad loaded stats")
	}
	if b.Snapshot.Source != "build" || b.Snapshot.Checksum != "" || b.Snapshot.File != "" {
		t.Fatalf("built snapshot section: %+v", b.Snapshot)
	}
	if l.Snapshot.Source != "snapshot" || l.Snapshot.Checksum == "" || l.Snapshot.File != path {
		t.Fatalf("loaded snapshot section: %+v", l.Snapshot)
	}
	for _, sn := range []snapshotInfo{b.Snapshot, l.Snapshot} {
		if sn.Nodes == 0 || sn.Edges == 0 || sn.Generation == 0 {
			t.Fatalf("empty serving counts: %+v", sn)
		}
		if sn.AgeSeconds < 0 || sn.PublishedAt == "" {
			t.Fatalf("bad publish age: %+v", sn)
		}
	}
	if b.Snapshot.Nodes != l.Snapshot.Nodes || b.Snapshot.Edges != l.Snapshot.Edges {
		t.Fatal("built and loaded servers should serve the same net shape")
	}
}

// TestReloadRejectsCorruptSnapshot is the checksum-verification guard: a
// reload pointed at a corrupted snapshot file must fail without touching
// the serving state, and the generation must not advance.
func TestReloadRejectsCorruptSnapshot(t *testing.T) {
	built := testServer(t)
	path := filepath.Join(t.TempDir(), "net.fz")
	if err := built.coco.SaveFrozen(path); err != nil {
		t.Fatal(err)
	}
	coco, err := alicoco.LoadFrozen(path)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coco: coco, snapshot: path}
	wantCode, wantSearch := get(s, "/search?q=outdoor+barbecue")
	genBefore := coco.ServingInfo().Generation

	// Flip one byte in the middle of the file: the CRC-32 check (or a
	// structural validation before it) must reject the load.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: status %d, want 500 (%s)", rec.Code, rec.Body.String())
	}
	if got := coco.ServingInfo().Generation; got != genBefore {
		t.Fatalf("corrupt reload advanced generation %d -> %d", genBefore, got)
	}
	// Serving is untouched: the same query still answers identically.
	code, body := get(s, "/search?q=outdoor+barbecue")
	if code != wantCode || body != wantSearch {
		t.Fatal("serving state changed after rejected reload")
	}
}

// TestReloadHotSwapUnderLoad hammers the query endpoints from several
// goroutines while /reload re-reads the snapshot repeatedly: every query
// must keep succeeding with a correct answer (zero downtime), and every
// reload must succeed. Run under -race this also proves the swap is sound.
func TestReloadHotSwapUnderLoad(t *testing.T) {
	_, loaded, _ := snapshotFixture(t)
	_, wantSearch := get(loaded, "/search?q=outdoor+barbecue")

	stop := make(chan struct{})
	errc := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := get(loaded, "/search?q=outdoor+barbecue")
				if code != http.StatusOK {
					errc <- fmt.Errorf("search status %d during reload", code)
					return
				}
				if body != wantSearch {
					errc <- fmt.Errorf("search answer changed during reload")
					return
				}
				if code, _ := get(loaded, "/stats"); code != http.StatusOK {
					errc <- fmt.Errorf("stats status %d during reload", code)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		loaded.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("reload %d: status %d: %s", i, rec.Code, rec.Body.String())
			break
		}
		var resp struct {
			Status   string       `json:"status"`
			Snapshot snapshotInfo `json:"snapshot"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Errorf("reload %d: bad response: %v", i, err)
			break
		}
		if resp.Status != "reloaded" || resp.Snapshot.Nodes == 0 || resp.Snapshot.Edges == 0 || resp.Snapshot.Checksum == "" {
			t.Errorf("reload %d: unexpected response %+v", i, resp)
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestReloadRefreezesLiveNet: without a snapshot file the endpoint falls
// back to re-freezing the live net.
func TestReloadRefreezesLiveNet(t *testing.T) {
	built := testServer(t)
	rec := httptest.NewRecorder()
	built.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "refreeze") {
		t.Fatalf("expected refreeze source: %s", rec.Body.String())
	}
}

func TestReloadRequiresPOST(t *testing.T) {
	_, loaded, _ := snapshotFixture(t)
	if code, _ := get(loaded, "/reload"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload: status %d, want 405", code)
	}
}

// --- parameter validation (satellite bugfixes) --------------------------

func TestHandleRecommendRejectsNegativeIDs(t *testing.T) {
	s := testServer(t)
	for _, q := range []string{"items=-1", "items=3,-7,2", "items=-0x2"} {
		if code, _ := get(s, "/recommend?"+q); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, code)
		}
	}
}

func TestHandleRecommendValidatesK(t *testing.T) {
	s := testServer(t)
	sessions := s.coco.SampleSessions(1)
	if len(sessions) == 0 || len(sessions[0]) == 0 {
		t.Fatal("no sessions")
	}
	parts := make([]string, len(sessions[0]))
	for i, id := range sessions[0] {
		parts[i] = strconv.Itoa(id)
	}
	items := strings.Join(parts, ",")

	for _, k := range []string{"0", "-3", "abc"} {
		if code, _ := get(s, "/recommend?items="+items+"&k="+k); code != http.StatusBadRequest {
			t.Fatalf("k=%s: status %d, want 400", k, code)
		}
	}
	// Huge k is capped, not rejected: the request succeeds with a bounded
	// result set.
	code, body := get(s, "/recommend?items="+items+"&k=999999")
	if code != http.StatusOK {
		t.Fatalf("huge k: status %d: %s", code, body)
	}
	var r alicoco.Recommendation
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Card.Items) > maxRecommendK {
		t.Fatalf("huge k not capped: %d items", len(r.Card.Items))
	}
}

func TestHandleConceptEmptyNameIsBadRequest(t *testing.T) {
	s := testServer(t)
	if code, _ := get(s, "/concept"); code != http.StatusBadRequest {
		t.Fatalf("missing name: status %d, want 400", code)
	}
	if code, _ := get(s, "/concept?name="); code != http.StatusBadRequest {
		t.Fatalf("empty name: status %d, want 400", code)
	}
	if code, _ := get(s, "/concept?name=nope"); code != http.StatusNotFound {
		t.Fatalf("missing concept: status %d, want 404", code)
	}
}
