// Fault-injection chaos suite: hammers the query endpoints while
// injecting corrupt/slow snapshot reads (via internal/faultfs), handler
// panics (via the server's fault hook), and overload far past admission
// capacity, asserting the production-resilience invariants: the server
// never serves a response from a snapshot it did not fully validate,
// never stops answering /healthz, sheds with 429 (never timeouts or 500s)
// when saturated, and drains in-flight requests cleanly on SIGTERM.
//
// These tests arm the process-global faultfs fault, so none of them run
// in t.Parallel.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"alicoco"
	"alicoco/internal/faultfs"
	"alicoco/internal/raceflag"
)

// chaosServer clones the shared test net into a private snapshot file and
// wires a server with an explicit resilience policy around it.
func chaosServer(t *testing.T, mutate func(*serveConfig)) *server {
	t.Helper()
	base := testServer(t)
	path := filepath.Join(t.TempDir(), "live.fz")
	if err := base.coco.SaveFrozen(path); err != nil {
		t.Fatal(err)
	}
	coco, err := alicoco.LoadFrozen(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.cacheSize = 1024
	if mutate != nil {
		mutate(&cfg)
	}
	return newServerCfg(coco, path, cfg)
}

// corruptFile flips one byte in the middle of path on disk.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCorruptReloadKeepsServing injects corrupt reads into the
// snapshot loader while the refresh loop fires as fast as it can and
// clients hammer /search and /healthz: every query answer must stay
// byte-identical to the last good generation, /healthz must never miss,
// the breaker must open, and a manual good reload must close it again.
func TestChaosCorruptReloadKeepsServing(t *testing.T) {
	s := chaosServer(t, func(cfg *serveConfig) {
		cfg.retries = 2
		cfg.backoffBase = time.Millisecond
		cfg.backoffMax = 4 * time.Millisecond
		cfg.breakerThreshold = 3
		cfg.breakerCooldown = time.Hour // stays open until the manual probe
		cfg.quarantineAfter = 0         // keep the file in place for this test
	})
	_, wantSearch := get(s, "/search?q=outdoor+barbecue")
	genBefore := s.coco.ServingInfo().Generation

	// Every read of the snapshot file comes back corrupted at byte 512 —
	// deep enough to pass the header, so the CRC/structure validation has
	// to catch it.
	restore := faultfs.Inject(faultfs.Fault{PathContains: filepath.Base(s.snapshot), CorruptAt: 512})
	defer restore()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.refreshLoop(2*time.Millisecond, done)
	}()

	errc := make(chan error, 8)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, body := get(s, "/search?q=outdoor+barbecue"); code != http.StatusOK || body != wantSearch {
					errc <- fmt.Errorf("search during corrupt reloads: status %d body %q", code, body)
					return
				}
				if code, _ := get(s, "/healthz"); code != http.StatusOK {
					errc <- fmt.Errorf("healthz went down during corrupt reloads: %d", code)
					return
				}
			}
		}()
	}

	// Let the refresh loop chew on the corrupt file until the breaker
	// opens and it stops attempting.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().After(deadline) == false {
		if s.resilienceInfo().Reload.Breaker.State == "open" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	ri := s.resilienceInfo()
	if ri.Reload.Failures == 0 || ri.Reload.Breaker.State != "open" {
		close(done)
		wg.Wait()
		t.Fatalf("breaker never opened under corrupt reloads: %+v", ri.Reload)
	}
	if got := s.coco.ServingInfo().Generation; got != genBefore {
		close(done)
		wg.Wait()
		t.Fatalf("corrupt reload advanced generation %d -> %d", genBefore, got)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Disarm the fault: a manual POST /reload (the operator's half-open
	// probe) publishes a good generation and re-closes the breaker.
	restore()
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("manual reload after disarm: status %d: %s", rec.Code, rec.Body.String())
	}
	if st := s.resilienceInfo().Reload.Breaker; st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("breaker did not close after good publish: %+v", st)
	}
	if code, body := get(s, "/search?q=outdoor+barbecue"); code != http.StatusOK || body != wantSearch {
		t.Fatalf("search after recovery: status %d body %q", code, body)
	}
}

// TestChaosSlowReloadKeepsServing: a slow disk (injected per-read delay)
// must stall only the reload, never the query path.
func TestChaosSlowReloadKeepsServing(t *testing.T) {
	s := chaosServer(t, nil)
	_, wantSearch := get(s, "/search?q=outdoor+barbecue")
	defer faultfs.Inject(faultfs.Fault{PathContains: filepath.Base(s.snapshot), Delay: 2 * time.Millisecond})()

	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		rec := httptest.NewRecorder()
		s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("slow reload failed: %d %s", rec.Code, rec.Body.String())
		}
	}()
	// While the reload crawls through its delayed reads, queries answer
	// instantly from the currently published snapshot.
	served := 0
	for {
		select {
		case <-reloadDone:
		default:
			if code, body := get(s, "/search?q=outdoor+barbecue"); code != http.StatusOK || body != wantSearch {
				t.Fatalf("search during slow reload: status %d", code)
			}
			served++
			continue
		}
		break
	}
	if served == 0 {
		t.Skip("reload finished before any query ran; nothing proven this round")
	}
	if got := s.coco.ServingInfo().Generation; got < 2 {
		t.Fatalf("slow reload never published: generation %d", got)
	}
}

// TestChaosQuarantineAndRecovery drives the full bad-file story: a
// snapshot corrupted on disk fails reload repeatedly, gets renamed into
// quarantine, serving keeps the last good generation throughout, and
// dropping a good file back re-closes the breaker on the next publish.
func TestChaosQuarantineAndRecovery(t *testing.T) {
	s := chaosServer(t, func(cfg *serveConfig) {
		cfg.quarantineAfter = 2
		cfg.breakerThreshold = 2
		cfg.breakerCooldown = time.Hour
	})
	_, wantSearch := get(s, "/search?q=outdoor+barbecue")
	genBefore := s.coco.ServingInfo().Generation
	good, err := os.ReadFile(s.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	corruptFile(t, s.snapshot)

	for i := 0; i < 2; i++ {
		if _, err := s.tryReload(); err == nil {
			t.Fatalf("reload %d of corrupt file succeeded", i)
		}
	}
	// Second consecutive failure crossed quarantineAfter: the bad file is
	// renamed aside, the original path is gone.
	if _, err := os.Stat(s.snapshot + ".quarantined"); err != nil {
		t.Fatalf("bad snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(s.snapshot); !os.IsNotExist(err) {
		t.Fatalf("bad snapshot still at original path: %v", err)
	}
	ri := s.resilienceInfo()
	if ri.Reload.Quarantined != 1 || ri.Reload.Breaker.State != "open" {
		t.Fatalf("after quarantine: %+v", ri.Reload)
	}
	// The refresh loop would now fail on a missing file — which must NOT
	// quarantine anything else or panic.
	if _, err := s.tryReload(); err == nil {
		t.Fatal("reload of missing file succeeded")
	}
	if got := s.resilienceInfo().Reload.Quarantined; got != 1 {
		t.Fatalf("missing file bumped quarantine count to %d", got)
	}
	// Serving never flinched.
	if code, body := get(s, "/search?q=outdoor+barbecue"); code != http.StatusOK || body != wantSearch {
		t.Fatalf("search after quarantine: status %d", code)
	}
	if got := s.coco.ServingInfo().Generation; got != genBefore {
		t.Fatalf("generation moved %d -> %d with no good publish", genBefore, got)
	}

	// Operator drops a good file back: next reload publishes and closes
	// the breaker.
	if err := os.WriteFile(s.snapshot, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tryReload(); err != nil {
		t.Fatalf("reload of restored file: %v", err)
	}
	ri = s.resilienceInfo()
	if ri.Reload.Breaker.State != "closed" || ri.Reload.ConsecutiveFailures != 0 {
		t.Fatalf("breaker did not recover: %+v", ri.Reload)
	}
	if got := s.coco.ServingInfo().Generation; got != genBefore+1 {
		t.Fatalf("good publish did not advance generation: %d", got)
	}
}

// TestChaosPanicRecovery injects panics into every Nth search via the
// fault hook, over real HTTP connections: panicking requests answer 500
// (the connection survives for keep-alive reuse), healthy requests keep
// answering 200, /healthz never misses, and the panic counter matches.
func TestChaosPanicRecovery(t *testing.T) {
	s := chaosServer(t, nil)
	var n atomic.Uint64
	s.hook = func(op string) {
		if op == "search" && n.Add(1)%3 == 0 {
			panic("chaos: injected handler panic")
		}
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	client := ts.Client()

	var got500, got200 int
	for i := 0; i < 30; i++ {
		resp, err := client.Get(ts.URL + "/search?q=outdoor+barbecue")
		if err != nil {
			t.Fatalf("request %d died (connection torn down?): %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			got200++
		case http.StatusInternalServerError:
			got500++
		default:
			t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
		hr, err := client.Get(ts.URL + "/healthz")
		if err != nil || hr.StatusCode != http.StatusOK {
			t.Fatalf("healthz during panic storm: %v %v", hr, err)
		}
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}
	if got500 == 0 || got200 == 0 {
		t.Fatalf("panic injection did not exercise both paths: %d ok, %d panicked", got200, got500)
	}
	if int(s.panics.Load()) != got500 {
		t.Fatalf("panics recovered %d, 500s served %d", s.panics.Load(), got500)
	}
}

// TestChaosOverloadSheds drives 4x the admission capacity of deliberately
// slow cache-missing requests: the overflow is shed with 429 +
// Retry-After — never a 500, never a hung request — /healthz keeps
// answering, /readyz reports saturation, and once the storm passes the
// server admits work again.
func TestChaosOverloadSheds(t *testing.T) {
	const capacity, queue = 2, 1
	release := make(chan struct{})
	s := chaosServer(t, func(cfg *serveConfig) {
		cfg.cacheSize = 0 // force every request through admission
		cfg.maxInflight = capacity
		cfg.queueDepth = queue
		cfg.deadline = 30 * time.Second // shed on saturation, not deadline
	})
	s.hook = func(op string) {
		if op == "search.engine" {
			<-release // hold the engine slot until the test lets go
		}
	}
	h := s.handler()

	const total = 4 * (capacity + queue)
	codes := make(chan int, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=outdoor+barbecue", nil))
			codes <- rec.Code
		}()
	}
	// Wait until the gate is fully saturated: capacity held + queue full.
	deadline := time.Now().Add(10 * time.Second)
	for !s.gate.Saturated() {
		if time.Now().After(deadline) {
			t.Fatal("gate never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := get(s, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz under overload: %d", code)
	}
	if code, _ := get(s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz should report saturation: %d", code)
	}
	// The shed responses (everyone past capacity+queue) are already back.
	shedSeen := 0
	for shedSeen < total-capacity-queue {
		select {
		case code := <-codes:
			if code != http.StatusTooManyRequests {
				t.Fatalf("overloaded request answered %d, want 429", code)
			}
			shedSeen++
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d shed responses arrived", shedSeen)
		}
	}
	// Open the floodgate: the held and queued requests complete OK.
	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request answered %d, want 200", code)
		}
	}
	st := s.gate.Stats()
	if st.Shed == 0 || st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate state after storm: %+v", st)
	}
	if code, _ := get(s, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after storm: %d", code)
	}
	// Retry-After, a JSON Content-Type, and a machine-readable reason ride
	// along with every shed.
	s.hook = nil
	rec := httptest.NewRecorder()
	s.shed(rec, shedSaturated)
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("shed response malformed: %d %v", rec.Code, rec.Header())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("shed Content-Type = %q, want application/json", ct)
	}
	var shedBody struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &shedBody); err != nil {
		t.Fatalf("shed body not JSON: %v (%q)", err, rec.Body.String())
	}
	if shedBody.Reason != "saturated" || shedBody.Error == "" {
		t.Fatalf("shed body = %+v", shedBody)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After = %q, want integer in [1,30]", rec.Header().Get("Retry-After"))
	}
}

// TestChaosOverloadNeverServesStale combines overload shedding with
// reload churn between two distinct snapshots: every 200 must match one
// of the two known-good generations byte-for-byte — saturation and
// republish may shed or delay a request, never corrupt one.
func TestChaosOverloadNeverServesStale(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos churn in -short mode")
	}
	optsA := alicoco.Options{Seed: 7, ItemsPerCategory: 2, Scenarios: 12, CorpusSentences: 150}
	optsB := alicoco.Options{Seed: 11, ItemsPerCategory: 3, Scenarios: 12, CorpusSentences: 150}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.fz")
	pathB := filepath.Join(dir, "b.fz")
	live := filepath.Join(dir, "live.fz")
	for _, c := range []struct {
		opts alicoco.Options
		path string
	}{{optsA, pathA}, {optsB, pathB}} {
		coco, err := alicoco.Build(c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := coco.SaveFrozen(c.path); err != nil {
			t.Fatal(err)
		}
	}
	copyTo := func(src string) {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(live, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyTo(pathA)
	coco, err := alicoco.LoadFrozen(live)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.cacheSize = 256
	cfg.maxInflight = 2
	cfg.queueDepth = 2
	s := newServerCfg(coco, live, cfg)

	srvA, errA := alicoco.LoadFrozen(pathA)
	srvB, errB := alicoco.LoadFrozen(pathB)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	const url = "/search?q=outdoor+barbecue"
	_, canonA := get(newServer(srvA, pathA, 0), url)
	_, canonB := get(newServer(srvB, pathB, 0), url)

	h := s.handler()
	stop := make(chan struct{})
	errc := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				switch rec.Code {
				case http.StatusOK:
					if b := rec.Body.String(); b != canonA && b != canonB {
						errc <- fmt.Errorf("response matches neither generation: %q", b)
						return
					}
				case http.StatusTooManyRequests:
					// shed under churn: acceptable, retryable
				default:
					errc <- fmt.Errorf("unexpected status %d under churn", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			copyTo(pathB)
		} else {
			copyTo(pathA)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("reload %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestGracefulDrain exercises the full shutdown sequence over a real
// listener: SIGTERM arrives while a slow request is in flight — /readyz
// flips to 503, the slow request still completes 200, and serveListener
// returns nil (clean drain) without waiting for the full drain timeout.
func TestGracefulDrain(t *testing.T) {
	s := chaosServer(t, func(cfg *serveConfig) {
		cfg.cacheSize = 0 // the slow request must reach the engine hook
	})
	inHandler := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hook = func(op string) {
		if op == "search.engine" {
			once.Do(func() { close(inHandler) })
			<-release
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() {
		served <- serveListener(s, ln, 5*time.Millisecond, 10*time.Second, sigc)
	}()
	base := "http://" + ln.Addr().String()

	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	}

	slowDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get(base + "/search?q=outdoor+barbecue")
		if err != nil {
			t.Errorf("in-flight request failed during drain: %v", err)
			slowDone <- nil
			return
		}
		slowDone <- resp
	}()
	<-inHandler // the slow request is inside the handler now

	sigc <- syscall.SIGTERM
	// Readiness must fail once draining starts, while the in-flight
	// request is still being served. Poll: the drain flag flips just
	// after the signal is consumed.
	deadline := time.Now().Add(5 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never flipped after SIGTERM")
		}
		time.Sleep(time.Millisecond)
	}

	close(release) // let the in-flight request finish
	resp := <-slowDone
	if resp == nil {
		t.Fatal("slow request lost")
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Cards") {
		t.Fatalf("in-flight request during drain: %d %q", resp.StatusCode, body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveListener did not return after drain")
	}
	// The listener is really closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting after drain")
	}
}

// TestReadyzDrainingFlag: the readiness probe fails the moment draining
// flips, independent of the gate.
func TestReadyzDrainingFlag(t *testing.T) {
	s := testServer(t)
	if code, _ := get(s, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz on healthy server: %d", code)
	}
	s.draining.Store(true)
	defer s.draining.Store(false)
	if code, _ := get(s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", code)
	}
	if code, _ := get(s, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", code)
	}
}

// TestStatsResilienceSection: the /stats payload exposes the resilience
// counters with sane shapes.
func TestStatsResilienceSection(t *testing.T) {
	s := chaosServer(t, nil)
	var resp struct {
		Resilience resilienceInfo `json:"resilience"`
	}
	_, body := get(s, "/stats")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	ri := resp.Resilience
	if ri.Admission.Capacity == 0 || ri.Admission.QueueDepth == 0 {
		t.Fatalf("admission stats empty: %+v", ri.Admission)
	}
	if ri.Reload.Breaker.State != "closed" {
		t.Fatalf("fresh breaker state %q", ri.Reload.Breaker.State)
	}
	if ri.Draining {
		t.Fatal("fresh server reports draining")
	}
	// A corrupt reload moves the failure counter through the HTTP surface.
	corruptFile(t, s.snapshot)
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d", rec.Code)
	}
	_, body = get(s, "/stats")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Resilience.Reload.Failures == 0 || resp.Resilience.Reload.ConsecutiveFailures == 0 {
		t.Fatalf("reload failure not counted: %+v", resp.Resilience.Reload)
	}
}

// TestServeCacheHitMiddlewareZeroAllocs guards the acceptance criterion
// that the middleware stack adds no per-request allocations on the
// cache-hit path: the full production handler chain (recover middleware +
// mux + telemetry envelope + handler) measures zero allocs/op — metric
// recording is atomic ops into a pooled wrapper, and the cached-response
// writers assign shared pre-allocated header value slices instead of
// paying Header().Set's per-call []string.
func TestServeCacheHitMiddlewareZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race (sync.Pool drops items)")
	}
	s := testServer(t)
	h := s.handler()
	req := httptest.NewRequest(http.MethodGet, "/search?q=outdoor+barbecue", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req) // warm: populate caches and grow the recorder
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup status %d", rec.Code)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
	})
	if allocs > 0 {
		t.Fatalf("cache-hit path through middleware: %.1f allocs/op, want 0", allocs)
	}
}
