// The -pprof-addr private profiling listener. Profiling handlers leak
// heap contents, symbol tables, and CPU time, so they never mount on the
// serving mux: they get their own listener on an operator-chosen
// (typically loopback or private-network) address, registered by hand so
// nothing here touches http.DefaultServeMux either.
package serve

import (
	"errors"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// pprofMux is the private profiling route table.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startPprof serves the profiling mux on its own listener; the returned
// stop closes it. A profile or trace in flight when stop runs is cut off
// — shutdown must not wait out a 30-second CPU profile.
func startPprof(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           pprofMux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			log.Printf("pprof listener: %v", serr)
		}
	}()
	log.Printf("pprof listening on %s (private; never on the serving mux)", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
