package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"alicoco"
)

func post(s *server, url, body string) (int, string) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewBufferString(body))
	req.Header.Set("Content-Type", "application/json")
	s.mux().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestSearchBatchMatchesSequential proves one batched round-trip returns
// exactly what the per-query endpoint returns, in request order.
func TestSearchBatchMatchesSequential(t *testing.T) {
	s := testServer(t)
	queries := []string{"outdoor barbecue", "winter coat", "grill", "outdoor barbecue"}
	reqBody, _ := json.Marshal(map[string]any{"queries": queries, "max_items": 12})
	code, body := post(s, "/search/batch", string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Results []alicoco.SearchResult `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(resp.Results), len(queries))
	}
	for i, q := range queries {
		_, single := get(s, "/search?q="+strings.ReplaceAll(q, " ", "+"))
		var want alicoco.SearchResult
		if err := json.Unmarshal([]byte(single), &want); err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(resp.Results[i])
		wantJSON, _ := json.Marshal(want)
		if string(got) != string(wantJSON) {
			t.Fatalf("query %d (%q): batch answer differs\nbatch: %s\nsingle: %s", i, q, got, wantJSON)
		}
	}
}

// TestRecommendBatchMatchesSequential compares the batched recommendations
// against per-session calls, including a session with no recommendation.
func TestRecommendBatchMatchesSequential(t *testing.T) {
	s := testServer(t)
	sessions := s.coco.SampleSessions(4)
	if len(sessions) < 2 {
		t.Fatal("not enough sessions")
	}
	sessions = append(sessions, []int{1 << 28}) // unknown item: Found must be false
	reqBody, _ := json.Marshal(map[string]any{"sessions": sessions, "k": 5})
	code, body := post(s, "/recommend/batch", string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Results []struct {
			Found  bool
			Reason string
			Card   alicoco.ConceptCard
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(sessions) {
		t.Fatalf("%d results for %d sessions", len(resp.Results), len(sessions))
	}
	if last := resp.Results[len(resp.Results)-1]; last.Found {
		t.Fatalf("unknown-item session reported Found: %+v", last)
	}
	for i, sess := range sessions[:len(sessions)-1] {
		parts := make([]string, len(sess))
		for j, id := range sess {
			parts[j] = strconv.Itoa(id)
		}
		codeS, single := get(s, "/recommend?items="+strings.Join(parts, ",")+"&k=5")
		if codeS == http.StatusNotFound {
			if resp.Results[i].Found {
				t.Fatalf("session %d: batch found, single 404", i)
			}
			continue
		}
		var want alicoco.Recommendation
		if err := json.Unmarshal([]byte(single), &want); err != nil {
			t.Fatal(err)
		}
		if !resp.Results[i].Found {
			t.Fatalf("session %d: single found, batch did not", i)
		}
		if resp.Results[i].Reason != want.Reason || resp.Results[i].Card.Name != want.Card.Name ||
			len(resp.Results[i].Card.Items) != len(want.Card.Items) {
			t.Fatalf("session %d: batch %+v differs from single %+v", i, resp.Results[i], want)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	s := testServer(t)
	manyQueries, _ := json.Marshal(map[string]any{
		"queries": make([]string, maxBatch+1),
	})
	cases := []struct {
		url, body string
		want      int
	}{
		{"/search/batch", `{"queries": []}`, http.StatusBadRequest},
		{"/search/batch", `{}`, http.StatusBadRequest},
		{"/search/batch", `not json`, http.StatusBadRequest},
		{"/search/batch", `{"queries": ["ok", "  "]}`, http.StatusBadRequest},
		{"/search/batch", string(manyQueries), http.StatusBadRequest},
		{"/recommend/batch", `{"sessions": []}`, http.StatusBadRequest},
		{"/recommend/batch", `{"sessions": [[1,-2]]}`, http.StatusBadRequest},
		{"/recommend/batch", `not json`, http.StatusBadRequest},
		{"/recommend/batch", fmt.Sprintf(`{"sessions": %s}`, strings.Repeat("[[1],", 1)+"[2]]"), http.StatusOK},
	}
	for _, tc := range cases {
		if code, body := post(s, tc.url, tc.body); code != tc.want {
			t.Fatalf("POST %s %q: status %d, want %d (%s)", tc.url, tc.body, code, tc.want, body)
		}
	}
	// GET on batch endpoints is rejected.
	if code, _ := get(s, "/search/batch"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search/batch: %d, want 405", code)
	}
	if code, _ := get(s, "/recommend/batch"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /recommend/batch: %d, want 405", code)
	}
}

// TestBatchBodySizeCap proves an oversized request body is rejected before
// decoding can materialize it (the maxBatch element cap cannot be
// sidestepped by one huge payload), with a clear 413 naming the limit.
func TestBatchBodySizeCap(t *testing.T) {
	s := testServer(t)
	huge := `{"queries": ["` + strings.Repeat("a", maxBatchBody+1024) + `"]}`
	for _, url := range []string{"/search/batch", "/recommend/batch"} {
		code, body := post(s, url, huge)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d, want 413", url, code)
		}
		if !strings.Contains(body, "too large") {
			t.Fatalf("%s oversized body: unhelpful error %q", url, body)
		}
	}
}
