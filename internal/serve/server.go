// Package serve implements the cocoserve HTTP server: the production
// serving tier of the concept net (semantic search with concept cards,
// concept lookup, cognitive recommendation, batch variants, snapshot
// lifecycle endpoints, health/readiness, and /stats). The cocoserve
// command is a thin wrapper around Main; cmd/cocoload embeds the same
// server in-process so load and chaos drills exercise the real thing.
//
// See the cmd/cocoserve command documentation for the endpoint list,
// flags, and operational behavior (PERF.md "Operational behavior" and
// "SLOs under load" carry the budgets and measured tails).
package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alicoco"
	"alicoco/internal/obs"
	"alicoco/internal/qcache"
	"alicoco/internal/resilience"
	"alicoco/internal/snapstore"
)

// maxRecommendK caps the k parameter of /recommend so a single request
// cannot ask for an unbounded result set.
const maxRecommendK = 100

// defaultSearchItems is the per-card item count of GET /search and the
// default for batches; maxSearchItems caps what a batch may request.
const (
	defaultSearchItems = 12
	maxSearchItems     = 100
)

// maxBatch caps how many queries or sessions one batch request may carry.
const maxBatch = 256

// maxBatchBody caps a batch request's body size before decoding, so the
// maxBatch element cap cannot be sidestepped by one enormous JSON payload.
const maxBatchBody = 1 << 20

// maxPooledEncodeBuf is the largest response buffer worth keeping in the
// codec pool; a rare huge batch response should not pin megabytes per
// pool slot.
const maxPooledEncodeBuf = 64 << 10

type server struct {
	coco *alicoco.CoCo

	// snapshot is the file /reload re-reads; empty when the net was built
	// live, in which case /reload re-freezes instead. Reloads serialize on
	// the facade's own offline lock; queries are never blocked.
	snapshot string

	// snapshotDir is the sharded snapshot directory /reload diffs against
	// serving (only shards whose checksums changed are re-read); it takes
	// precedence over snapshot. /reload?shard=i force-reloads one shard.
	snapshotDir string

	// searchBytes / recBytes cache the *encoded JSON bytes* of the hot
	// single-query GET endpoints, keyed on the raw query string and
	// stamped with the facade's serving generation (a /reload invalidates
	// them exactly like the engine-level result caches): a hit skips
	// parameter parsing, engine dispatch, and JSON encoding — one cache
	// lookup, one buffer write. nil disables the layer (-cache-size 0).
	searchBytes *qcache.Cache
	recBytes    *qcache.Cache

	// cfg holds the resilience policy; the zero value (direct &server{}
	// literals in tests) means no deadlines, no gating, no reload
	// hardening — every resilience type below tolerates staying nil.
	cfg serveConfig

	// gate admits cache-missing engine dispatches: a bounded number run,
	// a bounded queue waits, everyone else is shed with 429. Cache hits
	// bypass it entirely, which is the degraded cache-hits-only mode.
	gate *resilience.Gate

	// breaker + backoff harden the snapshot reload path: consecutive
	// reload failures open the breaker (the -refresh loop stops hammering
	// the broken file) and retries within one refresh trigger space out
	// with jittered exponential backoff.
	breaker *resilience.Breaker
	backoff *resilience.Backoff

	// draining flips when shutdown starts: /readyz fails so load
	// balancers stop routing here while in-flight requests finish.
	draining atomic.Bool

	// Resilience counters surfaced by /stats.
	panics         atomic.Uint64 // handler panics converted to 500s
	degraded       atomic.Uint64 // misses refused for lack of deadline budget
	reloadFailures atomic.Uint64 // reload attempts that returned an error
	reloadRetries  atomic.Uint64 // backoff retries after a failed reload
	quarantines    atomic.Uint64 // snapshot files renamed aside

	// store is the generation catalog behind -snapshot-dir, nil when the
	// directory is flat (pre-catalog) or absent; it powers rollback,
	// retention pruning, and scrub repair. See snapstore.go in this
	// package.
	store *snapstore.Store

	// Snapstore lifecycle counters surfaced by /stats.
	rollbacks          atomic.Uint64 // completed rollbacks (automatic + operator)
	validationFailures atomic.Uint64 // post-swap validation rejections
	scrubPasses        atomic.Uint64 // completed scrub passes
	scrubRepairs       atomic.Uint64 // files re-materialized by the scrubber
	scrubQuarantines   atomic.Uint64 // files quarantined by the scrubber
	scrubUnrepaired    atomic.Uint64 // mismatches no repair source covered
	scrubErrors        atomic.Uint64 // scrub passes that failed outright

	// scrubMu guards the most recent scrub report for /stats.
	scrubMu   sync.Mutex
	lastScrub *snapstore.ScrubReport

	// reloadMu serializes reload attempts with their failure bookkeeping
	// (consecFailures drives quarantine); the facade's offline lock only
	// serializes the swap itself.
	reloadMu      sync.Mutex
	consecReloads int         // consecutive reload failures, guarded by reloadMu
	shardFails    map[int]int // consecutive failures per shard, guarded by reloadMu

	// badGens skiplists catalog generations that loaded but failed
	// post-swap validation (or failed to load during a rollback walk):
	// the refresh loop holds instead of republishing them, until a
	// generation newer than every bad one lands. Guarded by reloadMu.
	badGens map[uint64]bool

	// lastRollback describes the most recent rollback for /stats.
	// Guarded by reloadMu.
	lastRollback *rollbackStat

	// hook, when set before serving starts, is called at the top of the
	// query handlers ("search", "recommend", ...) and again after
	// admission ("search.engine", ...) — the fault-injection seam chaos
	// tests use to panic or stall inside a request.
	hook func(op string)

	// metrics is the /metrics registry plus the request-path instruments;
	// built by newServerCfg (or lazily by mux for bare test literals).
	// See metrics.go in this package.
	metrics *serveMetrics
}

// newServer wires a server around a facade with the given per-cache entry
// budget (the facade's engine-level caches are resized to match) and the
// default resilience policy.
func newServer(coco *alicoco.CoCo, snapshot string, cacheSize int) *server {
	cfg := defaultServeConfig()
	cfg.cacheSize = cacheSize
	return newServerCfg(coco, snapshot, cfg)
}

// newServerCfg is newServer with an explicit resilience policy.
func newServerCfg(coco *alicoco.CoCo, snapshot string, cfg serveConfig) *server {
	coco.SetQueryCacheCapacity(cfg.cacheSize)
	s := &server{coco: coco, snapshot: snapshot, cfg: cfg}
	if cfg.cacheSize > 0 {
		s.searchBytes = qcache.New(cfg.cacheSize)
		s.recBytes = qcache.New(cfg.cacheSize)
	}
	if cfg.maxInflight > 0 {
		s.gate = resilience.NewGateCfg(resilience.GateConfig{
			Capacity:   cfg.maxInflight,
			QueueDepth: cfg.queueDepth,
			Target:     cfg.targetDelay,
			Interval:   cfg.shedInterval,
		})
	}
	if cfg.breakerThreshold > 0 {
		s.breaker = resilience.NewBreaker(cfg.breakerThreshold, cfg.breakerCooldown)
	}
	s.backoff = resilience.NewBackoff(cfg.backoffBase, cfg.backoffMax, time.Now().UnixNano())
	s.metrics = newServeMetrics(s)
	return s
}

// jsonCodec is a pooled response encoder: the buffer and the encoder bound
// to it are recycled across requests, so steady-state encoding reuses one
// grown buffer instead of allocating per response.
type jsonCodec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var codecs = sync.Pool{New: func() any {
	c := &jsonCodec{}
	c.enc = json.NewEncoder(&c.buf)
	return c
}}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONCaching(w, v, nil, qcache.Stamp{}, "")
}

// writeJSONCaching encodes v through a pooled codec, writes it, and — when
// cache is non-nil — stores a private copy of the encoded bytes under
// (stamp, key), so the next identical request is a single buffer write.
// The stamp was read by the caller *before* computing v, which is what
// makes a cached entry never older than the generation it is keyed under
// (a concurrent reload can only make v newer than the stamp, and the new
// generation stops matching the old entries entirely).
func (s *server) writeJSONCaching(w http.ResponseWriter, v any, cache *qcache.Cache, stamp qcache.Stamp, key string) {
	c := codecs.Get().(*jsonCodec)
	defer func() {
		if c.buf.Cap() <= maxPooledEncodeBuf {
			codecs.Put(c)
		}
	}()
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		// Nothing has been written yet, so the client gets a clean 500
		// instead of a truncated body.
		log.Printf("encode: %v", err)
		http.Error(w, "encode failed", http.StatusInternalServerError)
		return
	}
	if cache != nil && s.coco.CacheStamp() == stamp {
		cache.PutString(stamp, key, append([]byte(nil), c.buf.Bytes()...))
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(c.buf.Bytes()); err != nil {
		log.Printf("write: %v", err)
	}
}

// writeResults encodes {"results": v} by hand-appending the envelope
// around one Encode of the results slice itself, byte-identical to
// encoding a map[string]any{"results": v} but without allocating the
// one-entry map and reflecting over it per batch response.
func (s *server) writeResults(w http.ResponseWriter, results any) {
	c := codecs.Get().(*jsonCodec)
	defer func() {
		if c.buf.Cap() <= maxPooledEncodeBuf {
			codecs.Put(c)
		}
	}()
	c.buf.Reset()
	c.buf.WriteString(`{"results":`)
	if err := c.enc.Encode(results); err != nil {
		log.Printf("encode: %v", err)
		http.Error(w, "encode failed", http.StatusInternalServerError)
		return
	}
	b := c.buf.Bytes()
	b[len(b)-1] = '}' // Encode's trailing newline becomes the closing brace
	c.buf.WriteByte('\n')
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(c.buf.Bytes()); err != nil {
		log.Printf("write: %v", err)
	}
}

// Shared pre-allocated header values: assigning these slices directly
// into the (canonical-key) header map skips the []string{v} allocation
// Header().Set pays per call. net/http only reads header values, so one
// shared slice serving every response is safe — and it is what keeps the
// cache-hit path's single remaining allocation free for the request-ID
// echo instead of the Content-Type header.
var (
	hdrJSON    = []string{"application/json"}
	hdrText    = []string{"text/plain; charset=utf-8"}
	hdrNosniff = []string{"nosniff"}
)

// writeJSONBytes serves an already-encoded cached response.
func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header()["Content-Type"] = hdrJSON
	if _, err := w.Write(b); err != nil {
		log.Printf("write: %v", err)
	}
}

// cachedResp is a non-200 response held in the encoded-bytes caches:
// requests that deterministically fail for this snapshot (unknown items,
// malformed parameters) repeat just like good ones, and replaying the
// tiny error is even cheaper than re-parsing and re-failing.
type cachedResp struct {
	status int
	body   []byte
}

// writeCached replays a hit from an encoded-bytes cache: either raw JSON
// 200 bytes or a cached error response.
func writeCached(w http.ResponseWriter, v any) {
	if cr, ok := v.(*cachedResp); ok {
		writeErrorBytes(w, cr)
		return
	}
	writeJSONBytes(w, v.([]byte))
}

// writeErrorBytes answers with exactly the headers and body http.Error
// would have produced for the same message and status.
func writeErrorBytes(w http.ResponseWriter, cr *cachedResp) {
	h := w.Header()
	h["Content-Type"] = hdrText
	h["X-Content-Type-Options"] = hdrNosniff
	w.WriteHeader(cr.status)
	if _, err := w.Write(cr.body); err != nil {
		log.Printf("write: %v", err)
	}
}

// errorCaching answers msg/status via http.Error and — when the outcome
// is deterministic for this snapshot generation — caches the encoded
// error under (stamp, key) so the next identical request replays it
// without parsing anything. The same stamp discipline as
// writeJSONCaching applies: stamp was read before the request was
// evaluated, and a reload stops matching it.
func (s *server) errorCaching(w http.ResponseWriter, msg string, status int, cache *qcache.Cache, stamp qcache.Stamp, key string) {
	if cache != nil && s.coco.CacheStamp() == stamp {
		cache.PutString(stamp, key, &cachedResp{status: status, body: []byte(msg + "\n")})
	}
	http.Error(w, msg, status)
}

// statsResponse is the /stats payload: the Table-2 net shape plus the
// serving snapshot's operational metadata, the query-cache counters, and
// the resilience counters.
type statsResponse struct {
	alicoco.Stats
	Build      obs.BuildInfo  `json:"build"`
	Snapshot   snapshotInfo   `json:"snapshot"`
	Snapstore  snapstoreInfo  `json:"snapstore"`
	Cache      cacheInfo      `json:"cache"`
	Resilience resilienceInfo `json:"resilience"`
}

// resilienceInfo is the /stats "resilience" section: everything a load
// harness or an operator needs to see the server's protective machinery
// working — admission gate state, shed and panic counters, and the reload
// pipeline's failure/retry/breaker/quarantine state.
type resilienceInfo struct {
	Admission        resilience.GateStats `json:"admission"`
	PanicsRecovered  uint64               `json:"panics_recovered"`
	DegradedRefusals uint64               `json:"degraded_refusals"`
	Draining         bool                 `json:"draining"`
	Reload           reloadInfo           `json:"reload"`
}

type reloadInfo struct {
	Failures            uint64                  `json:"failures"`
	ConsecutiveFailures int                     `json:"consecutive_failures"`
	Retries             uint64                  `json:"retries"`
	BackoffAttempt      int                     `json:"backoff_attempt"`
	Quarantined         uint64                  `json:"quarantined"`
	Breaker             resilience.BreakerStats `json:"breaker"`
}

func (s *server) resilienceInfo() resilienceInfo {
	s.reloadMu.Lock()
	consec := s.consecReloads
	s.reloadMu.Unlock()
	backoffAttempt := 0
	if s.backoff != nil {
		backoffAttempt = s.backoff.Attempt()
	}
	return resilienceInfo{
		Admission:        s.gate.Stats(),
		PanicsRecovered:  s.panics.Load(),
		DegradedRefusals: s.degraded.Load(),
		Draining:         s.draining.Load(),
		Reload: reloadInfo{
			Failures:            s.reloadFailures.Load(),
			ConsecutiveFailures: consec,
			Retries:             s.reloadRetries.Load(),
			BackoffAttempt:      backoffAttempt,
			Quarantined:         s.quarantines.Load(),
			Breaker:             s.breaker.Stats(),
		},
	}
}

// cacheInfo breaks the hit/miss/eviction counters down by cache layer:
// the two facade-level result caches (shared by the single and batch
// endpoints) and the two encoded-bytes caches of the single-query GETs.
type cacheInfo struct {
	Search         qcache.Stats `json:"search"`
	Recommend      qcache.Stats `json:"recommend"`
	SearchBytes    qcache.Stats `json:"search_bytes"`
	RecommendBytes qcache.Stats `json:"recommend_bytes"`
}

func (s *server) cacheInfo() cacheInfo {
	ci := cacheInfo{
		SearchBytes:    s.searchBytes.Stats(),
		RecommendBytes: s.recBytes.Stats(),
	}
	ci.Search, ci.Recommend = s.coco.QueryCacheStats()
	return ci
}

type snapshotInfo struct {
	Source      string      `json:"source"`             // build | snapshot | shards | refreeze
	Generation  uint64      `json:"generation"`         // serving publishes since startup
	Checksum    string      `json:"checksum,omitempty"` // CRC-32 of the loaded snapshot content
	File        string      `json:"file,omitempty"`     // -snapshot path, when serving from one
	Dir         string      `json:"dir,omitempty"`      // -snapshot-dir path, when serving shards
	PublishedAt string      `json:"published_at"`       // RFC 3339
	AgeSeconds  float64     `json:"age_seconds"`        // time since publish
	Nodes       int         `json:"nodes"`
	Edges       int         `json:"edges"`
	Shards      []shardStat `json:"shards,omitempty"` // per-shard state of a partitioned store
}

// shardStat is one shard's slice of the /stats snapshot section:
// generation and publish time reflect when *this shard's content* last
// changed (a reload that skipped it leaves them alone), and failures
// counts its consecutive reload failures toward quarantine.
type shardStat struct {
	Index       int     `json:"index"`
	Checksum    string  `json:"checksum,omitempty"`
	Generation  uint64  `json:"generation"`
	PublishedAt string  `json:"published_at"`
	AgeSeconds  float64 `json:"age_seconds"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Failures    int     `json:"failures,omitempty"`
}

func (s *server) snapshotInfo() snapshotInfo {
	info := s.coco.ServingInfo()
	out := snapshotInfo{
		Source:      info.Source,
		Generation:  info.Generation,
		Checksum:    info.Checksum,
		File:        s.snapshot,
		Dir:         s.snapshotDir,
		PublishedAt: info.PublishedAt.UTC().Format(time.RFC3339),
		AgeSeconds:  time.Since(info.PublishedAt).Seconds(),
		Nodes:       info.Nodes,
		Edges:       info.Edges,
	}
	if shards := s.coco.ShardInfos(); len(shards) > 0 {
		s.reloadMu.Lock()
		for _, si := range shards {
			out.Shards = append(out.Shards, shardStat{
				Index:       si.Index,
				Checksum:    si.Checksum,
				Generation:  si.Generation,
				PublishedAt: si.PublishedAt.UTC().Format(time.RFC3339),
				AgeSeconds:  time.Since(si.PublishedAt).Seconds(),
				Nodes:       si.Nodes,
				Edges:       si.Edges,
				Failures:    s.shardFails[si.Index],
			})
		}
		s.reloadMu.Unlock()
	}
	return out
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, statsResponse{
		Stats:      s.coco.Stats(),
		Build:      obs.CurrentBuildInfo(),
		Snapshot:   s.snapshotInfo(),
		Snapstore:  s.snapstoreInfo(),
		Cache:      s.cacheInfo(),
		Resilience: s.resilienceInfo(),
	})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if h := s.hook; h != nil {
		h("search")
	}
	// The stamp is read before anything else: a response computed after a
	// concurrent reload can only be newer than it, never staler.
	raw := r.URL.RawQuery
	stamp := s.coco.CacheStamp()
	if v, ok := s.searchBytes.GetString(stamp, raw); ok {
		writeCached(w, v)
		return
	}
	q, _ := queryParam(raw, "q")
	if q == "" {
		s.errorCaching(w, "missing q parameter", http.StatusBadRequest, s.searchBytes, stamp, raw)
		return
	}
	ctx, release, ok := s.admit(w, r, s.cfg.deadline, resilience.PriorityNormal)
	if !ok {
		return
	}
	defer release()
	if h := s.hook; h != nil {
		h("search.engine")
	}
	res, err := s.coco.SearchCtx(ctx, q, defaultSearchItems)
	if err != nil {
		s.shed(w, shedTimeout)
		return
	}
	s.writeJSONCaching(w, res, s.searchBytes, stamp, raw)
}

// handleSearchBatch fans a page of queries across workers against one
// pinned snapshot: POST {"queries": [...], "max_items": 12} answers
// {"results": [...]} in request order.
func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if h := s.hook; h != nil {
		h("search.batch")
	}
	sc := getScratch()
	defer putScratch(sc)
	var err error
	if sc.body, err = appendReadAll(sc.body[:0], http.MaxBytesReader(w, r.Body, maxBatchBody)); err != nil {
		writeBodyError(w, err)
		return
	}
	queries, maxItems, err := parseSearchBatchBody(sc)
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(queries) == 0 {
		http.Error(w, "missing queries", http.StatusBadRequest)
		return
	}
	if len(queries) > maxBatch {
		http.Error(w, "too many queries (max "+strconv.Itoa(maxBatch)+")", http.StatusBadRequest)
		return
	}
	for _, q := range queries {
		if len(bytes.TrimSpace(q)) == 0 {
			http.Error(w, "empty query in batch", http.StatusBadRequest)
			return
		}
	}
	if maxItems <= 0 {
		maxItems = defaultSearchItems
	} else if maxItems > maxSearchItems {
		maxItems = maxSearchItems
	}
	ctx, release, ok := s.admit(w, r, s.cfg.batchDeadline, resilience.PriorityLow)
	if !ok {
		return
	}
	defer release()
	results, err := s.coco.SearchBatchBytesCtx(ctx, queries, maxItems)
	if err != nil {
		s.shed(w, shedTimeout)
		return
	}
	s.writeResults(w, results)
}

func (s *server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	cpt, ok := s.coco.LookupConcept(name)
	if !ok {
		http.Error(w, "concept not found", http.StatusNotFound)
		return
	}
	s.writeJSON(w, cpt)
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if h := s.hook; h != nil {
		h("recommend")
	}
	raw := r.URL.RawQuery
	stamp := s.coco.CacheStamp()
	if v, ok := s.recBytes.GetString(stamp, raw); ok {
		writeCached(w, v)
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	itemsVal, _ := queryParam(raw, "items")
	ids, err := appendItemsParam(sc.ids[:0], itemsVal)
	sc.ids = ids
	if err != nil {
		s.errorCaching(w, "bad items parameter", http.StatusBadRequest, s.recBytes, stamp, raw)
		return
	}
	k := 10
	if ks, ok := queryParam(raw, "k"); ok && ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			s.errorCaching(w, "bad k parameter", http.StatusBadRequest, s.recBytes, stamp, raw)
			return
		}
		if v > maxRecommendK {
			v = maxRecommendK
		}
		k = v
	}
	ctx, release, admitted := s.admit(w, r, s.cfg.deadline, resilience.PriorityNormal)
	if !admitted {
		return
	}
	defer release()
	if h := s.hook; h != nil {
		h("recommend.engine")
	}
	rec, ok, err := s.coco.RecommendCtx(ctx, ids, k)
	if err != nil {
		s.shed(w, shedTimeout)
		return
	}
	if !ok {
		s.errorCaching(w, "no recommendation for these items", http.StatusNotFound, s.recBytes, stamp, raw)
		return
	}
	s.writeJSONCaching(w, rec, s.recBytes, stamp, raw)
}

// handleRecommendBatch recommends for a page of sessions against one
// pinned snapshot: POST {"sessions": [[1,2],[3]], "k": 10} answers
// {"results": [{"Found": ...}, ...]} in request order (sessions with no
// recommendation report Found: false instead of failing the batch).
func (s *server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if h := s.hook; h != nil {
		h("recommend.batch")
	}
	sc := getScratch()
	defer putScratch(sc)
	var err error
	if sc.body, err = appendReadAll(sc.body[:0], http.MaxBytesReader(w, r.Body, maxBatchBody)); err != nil {
		writeBodyError(w, err)
		return
	}
	sessions, k, err := parseRecommendBatchBody(sc)
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(sessions) == 0 {
		http.Error(w, "missing sessions", http.StatusBadRequest)
		return
	}
	if len(sessions) > maxBatch {
		http.Error(w, "too many sessions (max "+strconv.Itoa(maxBatch)+")", http.StatusBadRequest)
		return
	}
	for _, sess := range sessions {
		for _, id := range sess {
			if id < 0 {
				http.Error(w, "negative item id in batch", http.StatusBadRequest)
				return
			}
		}
	}
	if k <= 0 {
		k = 10
	} else if k > maxRecommendK {
		k = maxRecommendK
	}
	ctx, release, ok := s.admit(w, r, s.cfg.batchDeadline, resilience.PriorityLow)
	if !ok {
		return
	}
	defer release()
	results, err := s.coco.RecommendBatchCtx(ctx, sessions, k)
	if err != nil {
		s.shed(w, shedTimeout)
		return
	}
	s.writeResults(w, results)
}

func (s *server) handleHypernyms(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	s.writeJSON(w, map[string]any{"name": name, "hypernyms": s.coco.Hypernyms(name)})
}

// handleReload swaps in a fresh serving snapshot: re-read from the snapshot
// file when one was configured, otherwise a re-freeze of the live net. The
// loader verifies the file's checksum and structure before anything is
// published, so a bad snapshot cannot displace the serving state; queries
// keep serving the old snapshot throughout, and the swap itself is one
// atomic pointer store.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// A manual reload bypasses the breaker's Allow (an operator poking the
	// endpoint is the half-open probe), but its outcome still feeds the
	// breaker — a good publish re-closes it for the -refresh loop.
	if shardStr, ok := queryParam(r.URL.RawQuery, "shard"); ok && shardStr != "" {
		if s.snapshotDir == "" {
			http.Error(w, "shard reload requires -snapshot-dir", http.StatusBadRequest)
			return
		}
		i, err := strconv.Atoi(shardStr)
		if err != nil || i < 0 {
			http.Error(w, "bad shard parameter", http.StatusBadRequest)
			return
		}
		if err := s.tryReloadShard(i); err != nil {
			http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		s.writeJSON(w, map[string]any{
			"status":   "reloaded",
			"source":   "shard:" + shardStr,
			"snapshot": s.snapshotInfo(),
		})
		return
	}
	source, err := s.tryReload()
	if err != nil {
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{
		"status":   "reloaded",
		"source":   source,
		"snapshot": s.snapshotInfo(),
	})
}

func (s *server) reload() (source string, err error) {
	if s.snapshotDir != "" {
		changed, err := s.coco.ReloadShards(s.snapshotDir)
		return "shards:" + s.snapshotDir + " (" + strconv.Itoa(changed) + " reloaded)", err
	}
	if s.snapshot != "" {
		return "snapshot:" + s.snapshot, s.coco.ReloadFrozen(s.snapshot)
	}
	return "refreeze", s.coco.Refreeze()
}

// mux builds the route table. Query, lifecycle, and stats routes run
// inside the telemetry envelope (metrics.go); /metrics itself and the
// health probes stay outside it — probes and scrapes must not skew the
// traffic counters, and must keep answering no matter what.
func (s *server) mux() *http.ServeMux {
	if s.metrics == nil {
		s.metrics = newServeMetrics(s) // bare &server{} literals in tests
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.instrument(epStats, s.handleStats))
	mux.HandleFunc("/search", s.instrument(epSearch, s.handleSearch))
	mux.HandleFunc("/search/batch", s.instrument(epSearchBatch, s.handleSearchBatch))
	mux.HandleFunc("/concept", s.instrument(epConcept, s.handleConcept))
	mux.HandleFunc("/recommend", s.instrument(epRecommend, s.handleRecommend))
	mux.HandleFunc("/recommend/batch", s.instrument(epRecommendBatch, s.handleRecommendBatch))
	mux.HandleFunc("/hypernyms", s.instrument(epHypernyms, s.handleHypernyms))
	mux.HandleFunc("/reload", s.instrument(epReload, s.handleReload))
	mux.HandleFunc("/rollback", s.instrument(epRollback, s.handleRollback))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// Main is the cocoserve entry point: it parses flags from the command
// line, builds or loads the net, and serves until drained.
func Main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "build scale: small or default")
	snapshot := flag.String("snapshot", "", "serve from a frozen snapshot file instead of building")
	snapshotDir := flag.String("snapshot-dir", "",
		"serve from a sharded snapshot directory (manifest + per-shard files); /reload re-reads only changed shards")
	shards := flag.Int("shards", 0,
		"partition a built net into N independently reloadable shards (ignored with -snapshot/-snapshot-dir)")
	refresh := flag.Duration("refresh", 0, "if > 0, reload the snapshot (or refreeze) on this interval")
	cacheSize := flag.Int("cache-size", alicoco.DefaultQueryCacheCapacity,
		"query cache capacity in entries per cache layer (0 disables caching)")
	cfg := defaultServeConfig()
	deadline := flag.Duration("deadline", cfg.deadline,
		"deadline for a single cache-missing query (0 disables)")
	batchDeadline := flag.Duration("batch-deadline", cfg.batchDeadline,
		"deadline for a batch request (0 disables)")
	maxInflight := flag.Int("max-inflight", cfg.maxInflight,
		"cache-missing engine dispatches allowed to run at once (0 disables admission control)")
	queueDepth := flag.Int("queue-depth", cfg.queueDepth,
		"requests allowed to wait for an engine slot before shedding with 429")
	targetDelay := flag.Duration("target-delay", cfg.targetDelay,
		"adaptive shedding target: queued admissions waiting longer than this for a full -shed-interval start shedding batch traffic first")
	shedInterval := flag.Duration("shed-interval", cfg.shedInterval,
		"how long queue delay must stay above -target-delay before adaptive shedding engages")
	drainTimeout := flag.Duration("drain-timeout", defaultDrainTimeout,
		"how long shutdown waits for in-flight requests before giving up")
	retain := flag.Int("retain", cfg.retain,
		"committed snapshot generations to keep on disk when -snapshot-dir is a generation catalog")
	scrubInterval := flag.Duration("scrub-interval", 0,
		"if > 0, re-hash the served snapshot files against their manifest on this interval, quarantining and repairing corruption")
	slowQuery := flag.Duration("slow-query", 0,
		"if > 0, log responses slower than this (endpoint, latency, generation, request ID) and count them in cocoserve_slow_queries_total")
	pprofAddr := flag.String("pprof-addr", "",
		"if set, serve net/http/pprof on this address via a separate private listener (never on the serving mux)")
	flag.Parse()

	var coco *alicoco.CoCo
	var err error
	switch {
	case *snapshotDir != "" && *snapshot != "":
		log.Fatalf("-snapshot and -snapshot-dir are mutually exclusive")
	case *snapshotDir != "":
		start := time.Now()
		coco, err = alicoco.LoadShardedFrozen(*snapshotDir)
		if err != nil {
			log.Fatalf("load sharded snapshot: %v", err)
		}
		log.Printf("loaded %d shards from %s in %v", coco.NumShards(), *snapshotDir, time.Since(start).Round(time.Millisecond))
	case *snapshot != "":
		start := time.Now()
		coco, err = alicoco.LoadFrozen(*snapshot)
		if err != nil {
			log.Fatalf("load snapshot: %v", err)
		}
		log.Printf("loaded snapshot %s in %v", *snapshot, time.Since(start).Round(time.Millisecond))
	default:
		opts := alicoco.Small()
		if *scale == "default" {
			opts = alicoco.Default()
		}
		log.Printf("building net (scale=%s, shards=%d)...", *scale, *shards)
		coco, err = alicoco.BuildSharded(opts, *shards)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
	}
	// Every handler reads the published frozen snapshot lock-free, so
	// request handling never contends with anything — including reloads.
	info := coco.ServingInfo()
	log.Printf("serving from frozen snapshot: %d nodes, %d edges (source %s)", info.Nodes, info.Edges, info.Source)
	cfg.cacheSize = *cacheSize
	cfg.deadline = *deadline
	cfg.batchDeadline = *batchDeadline
	cfg.maxInflight = *maxInflight
	cfg.queueDepth = *queueDepth
	cfg.targetDelay = *targetDelay
	cfg.shedInterval = *shedInterval
	cfg.retain = *retain
	cfg.scrubInterval = *scrubInterval
	cfg.slowQuery = *slowQuery
	cfg.pprofAddr = *pprofAddr
	s := newServerCfg(coco, *snapshot, cfg)
	s.snapshotDir = *snapshotDir
	s.initStore()
	if s.store != nil {
		log.Printf("snapstore catalog at %s: serving gen %d, retain %d, scrub interval %v",
			s.store.Root(), coco.ServingInfo().CatalogGen, s.store.Retain(), *scrubInterval)
	}
	if *cacheSize > 0 {
		log.Printf("query caches enabled: %d entries per layer (result + encoded-bytes)", *cacheSize)
	} else {
		log.Printf("query caches disabled (-cache-size 0)")
	}
	log.Printf("serving on %s", *addr)
	if err := serve(s, *addr, *refresh, *drainTimeout, nil); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}
