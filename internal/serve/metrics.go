// Production telemetry for the serving tier: a /metrics endpoint in
// Prometheus text format, per-request instrumentation (latency
// histograms, status-class counters, X-Request-Id correlation, the
// -slow-query threshold log), and scrape-time collectors over every
// counter the server already keeps (caches, admission gate, snapshot
// lifecycle, snapstore, runtime). The request-path cost is strictly
// atomic ops plus one pooled wrapper — the cache-hit path keeps its
// 1-alloc/op budget, enforced by the alloc guards in chaos_test.go.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alicoco/internal/obs"
	"alicoco/internal/qcache"
	"alicoco/internal/resilience"
)

// endpoint indexes the fixed set of instrumented routes. Label values
// derive from this enum — never from request data — which is the whole
// cardinality budget: the metric surface is sized at startup and cannot
// grow under traffic.
type endpoint uint8

const (
	epSearch endpoint = iota
	epSearchBatch
	epConcept
	epRecommend
	epRecommendBatch
	epHypernyms
	epReload
	epRollback
	epStats
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"search", "search_batch", "concept", "recommend", "recommend_batch",
	"hypernyms", "reload", "rollback", "stats",
}

// statusClass buckets response codes; 429 gets its own class because
// load shedding is the one "error" that is the server working as
// designed, and dashboards must separate it from real failures.
type statusClass uint8

const (
	cls2xx statusClass = iota
	cls4xx
	cls429
	cls5xx
	clsOther
	numClasses
)

var classNames = [numClasses]string{"2xx", "4xx", "429", "5xx", "other"}

func classify(status int) statusClass {
	switch {
	case status == http.StatusTooManyRequests:
		return cls429
	case status >= 200 && status < 300:
		return cls2xx
	case status >= 400 && status < 500:
		return cls4xx
	case status >= 500 && status < 600:
		return cls5xx
	}
	return clsOther
}

// serveMetrics is the server's metric surface: request-path instruments
// as fixed arrays of atomics (indexed lookups, zero per-request
// allocation) and one registry carrying them plus all the scrape-time
// collectors.
type serveMetrics struct {
	reg    *obs.Registry
	lat    [numEndpoints]*obs.Hist
	status [numEndpoints][numClasses]*obs.Counter
	slow   [numEndpoints]*obs.Counter
}

// MetricsHistogramName is the per-endpoint latency family cocoload's
// cross-check reconstructs from a scrape.
const MetricsHistogramName = "cocoserve_request_duration_seconds"

// newServeMetrics builds the registry: request-path instruments first,
// then scrape-time collectors over the server's existing state. Families
// render in this registration order.
func newServeMetrics(s *server) *serveMetrics {
	m := &serveMetrics{reg: obs.NewRegistry()}
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		name := endpointNames[ep]
		m.lat[ep] = m.reg.NewHistogram(MetricsHistogramName,
			"Latency of successful (2xx) responses by endpoint; sheds and errors count in cocoserve_requests_total only.",
			"endpoint", name)
		for cls := statusClass(0); cls < numClasses; cls++ {
			m.status[ep][cls] = m.reg.NewCounter("cocoserve_requests_total",
				"Responses by endpoint and status class.",
				"endpoint", name, "class", classNames[cls])
		}
		m.slow[ep] = m.reg.NewCounter("cocoserve_slow_queries_total",
			"Responses slower than the -slow-query threshold.",
			"endpoint", name)
	}
	m.registerCacheCollectors(s)
	m.registerGateCollectors(s)
	m.registerSnapshotCollectors(s)
	m.registerLifecycleCollectors(s)
	obs.RegisterBuildInfo(m.reg, "cocoserve_build_info")
	obs.RegisterProcess(m.reg, "cocoserve_")
	return m
}

// registerCacheCollectors exposes the four cache layers' counters at
// scrape time. The layers: the facade's engine-level result caches
// (search, recommend) and the encoded-bytes caches of the single-query
// GETs (search_bytes, recommend_bytes). All reads are nil-tolerant —
// -cache-size 0 serves zeros, not a crash.
func (m *serveMetrics) registerCacheCollectors(s *server) {
	layers := []struct {
		name  string
		stats func() qcache.Stats
	}{
		{"search", func() qcache.Stats { st, _ := s.coco.QueryCacheStats(); return st }},
		{"recommend", func() qcache.Stats { _, st := s.coco.QueryCacheStats(); return st }},
		{"search_bytes", func() qcache.Stats { return s.searchBytes.Stats() }},
		{"recommend_bytes", func() qcache.Stats { return s.recBytes.Stats() }},
	}
	for _, l := range layers {
		stats := l.stats
		m.reg.NewCounterFunc("cocoserve_cache_hits_total",
			"Query cache hits by layer.",
			func() uint64 { return stats().Hits }, "layer", l.name)
		m.reg.NewCounterFunc("cocoserve_cache_misses_total",
			"Query cache misses by layer.",
			func() uint64 { return stats().Misses }, "layer", l.name)
		m.reg.NewCounterFunc("cocoserve_cache_evictions_total",
			"Query cache LRU evictions by layer.",
			func() uint64 { return stats().Evictions }, "layer", l.name)
		m.reg.NewGaugeFunc("cocoserve_cache_entries",
			"Entries currently held by layer.",
			func() float64 { return float64(stats().Entries) }, "layer", l.name)
		m.reg.NewGaugeFunc("cocoserve_cache_capacity",
			"Configured entry capacity by layer.",
			func() float64 { return float64(stats().Capacity) }, "layer", l.name)
	}
}

// registerGateCollectors exposes the adaptive admission gate: occupancy,
// adaptive-controller state (sojourn, dropping, drain rate), and the
// shed breakdown by priority class. Nil gate (admission disabled)
// reports zeros.
func (m *serveMetrics) registerGateCollectors(s *server) {
	gs := func() resilience.GateStats { return s.gate.Stats() }
	m.reg.NewGaugeFunc("cocoserve_gate_inflight",
		"Engine dispatches currently running.",
		func() float64 { return float64(gs().InFlight) })
	m.reg.NewGaugeFunc("cocoserve_gate_waiting",
		"Requests queued for an engine slot.",
		func() float64 { return float64(gs().Waiting) })
	m.reg.NewGaugeFunc("cocoserve_gate_capacity",
		"Configured engine slots (-max-inflight).",
		func() float64 { return float64(gs().Capacity) })
	m.reg.NewCounterFunc("cocoserve_gate_admitted_total",
		"Requests admitted through the gate.",
		func() uint64 { return gs().Admitted })
	m.reg.NewCounterFunc("cocoserve_gate_shed_total",
		"Requests shed at the gate by priority class.",
		func() uint64 { return gs().ShedHigh }, "priority", "high")
	m.reg.NewCounterFunc("cocoserve_gate_shed_total",
		"Requests shed at the gate by priority class.",
		func() uint64 { return gs().ShedNormal }, "priority", "normal")
	m.reg.NewCounterFunc("cocoserve_gate_shed_total",
		"Requests shed at the gate by priority class.",
		func() uint64 { return gs().ShedLow }, "priority", "low")
	m.reg.NewCounterFunc("cocoserve_gate_shed_over_delay_total",
		"Sheds decided by the adaptive controller (standing queue delay over target).",
		func() uint64 { return gs().ShedOverDelay })
	m.reg.NewGaugeFunc("cocoserve_gate_dropping",
		"1 while the adaptive controller is in dropping mode.",
		func() float64 {
			if gs().Dropping {
				return 1
			}
			return 0
		})
	m.reg.NewGaugeFunc("cocoserve_gate_last_sojourn_seconds",
		"Most recent queued-acquire sojourn.",
		func() float64 { return float64(gs().LastSojournUS) / 1e6 })
	m.reg.NewGaugeFunc("cocoserve_gate_drain_per_sec",
		"Observed engine-slot release rate.",
		func() float64 { return gs().DrainPerSec })
	m.reg.NewGaugeFunc("cocoserve_gate_retry_after_seconds",
		"The Retry-After hint a shed response would carry now.",
		func() float64 { return float64(gs().RetryAfterSecs) })
}

// registerSnapshotCollectors exposes the serving snapshot's identity and
// freshness, plus the per-shard slice of a partitioned store. Shard
// series are registered for the partition size at startup; a partition
// cannot grow while serving, and an index past the current partition
// reports zeros.
func (m *serveMetrics) registerSnapshotCollectors(s *server) {
	m.reg.NewGaugeFunc("cocoserve_snapshot_generation",
		"Serving publish generation (increments with every swap).",
		func() float64 { return float64(s.coco.ServingInfo().Generation) })
	m.reg.NewGaugeFunc("cocoserve_snapshot_age_seconds",
		"Time since the serving snapshot was published.",
		func() float64 { return time.Since(s.coco.ServingInfo().PublishedAt).Seconds() })
	m.reg.NewGaugeFunc("cocoserve_snapshot_nodes",
		"Nodes in the serving snapshot.",
		func() float64 { return float64(s.coco.ServingInfo().Nodes) })
	m.reg.NewGaugeFunc("cocoserve_snapshot_edges",
		"Edges in the serving snapshot.",
		func() float64 { return float64(s.coco.ServingInfo().Edges) })
	for i := 0; i < s.coco.NumShards(); i++ {
		idx := i
		label := strconv.Itoa(i)
		m.reg.NewGaugeFunc("cocoserve_shard_generation",
			"Publish generation of one shard's content (reloads that skip it leave it alone).",
			func() float64 {
				if si := s.coco.ShardInfos(); idx < len(si) {
					return float64(si[idx].Generation)
				}
				return 0
			}, "shard", label)
		m.reg.NewGaugeFunc("cocoserve_shard_checksum",
			"CRC-32 of one shard's loaded content, as a number so a change is visible as a step.",
			func() float64 {
				if si := s.coco.ShardInfos(); idx < len(si) {
					if v, err := strconv.ParseUint(si[idx].Checksum, 16, 64); err == nil {
						return float64(v)
					}
				}
				return 0
			}, "shard", label)
		m.reg.NewGaugeFunc("cocoserve_shard_load_failures",
			"Consecutive reload failures attributed to one shard (quarantine countdown).",
			func() float64 {
				s.reloadMu.Lock()
				defer s.reloadMu.Unlock()
				return float64(s.shardFails[idx])
			}, "shard", label)
	}
}

// registerLifecycleCollectors exposes the reload/rollback/scrub pipeline
// and the resilience counters /stats already carries.
func (m *serveMetrics) registerLifecycleCollectors(s *server) {
	m.reg.NewCounterFunc("cocoserve_reload_failures_total",
		"Reload attempts that returned an error.",
		func() uint64 { return s.reloadFailures.Load() })
	m.reg.NewCounterFunc("cocoserve_reload_retries_total",
		"Backoff retries after a failed reload.",
		func() uint64 { return s.reloadRetries.Load() })
	m.reg.NewCounterFunc("cocoserve_quarantines_total",
		"Snapshot or shard files renamed aside after repeated failures.",
		func() uint64 { return s.quarantines.Load() })
	m.reg.NewCounterFunc("cocoserve_rollbacks_total",
		"Completed rollbacks (automatic and operator).",
		func() uint64 { return s.rollbacks.Load() })
	m.reg.NewCounterFunc("cocoserve_validation_failures_total",
		"Post-swap validation rejections.",
		func() uint64 { return s.validationFailures.Load() })
	m.reg.NewCounterFunc("cocoserve_scrub_passes_total",
		"Completed scrub passes.",
		func() uint64 { return s.scrubPasses.Load() })
	m.reg.NewCounterFunc("cocoserve_scrub_repairs_total",
		"Files re-materialized by the scrubber.",
		func() uint64 { return s.scrubRepairs.Load() })
	m.reg.NewCounterFunc("cocoserve_scrub_quarantines_total",
		"Files quarantined by the scrubber.",
		func() uint64 { return s.scrubQuarantines.Load() })
	m.reg.NewCounterFunc("cocoserve_scrub_unrepaired_total",
		"Scrub mismatches no repair source covered.",
		func() uint64 { return s.scrubUnrepaired.Load() })
	m.reg.NewCounterFunc("cocoserve_scrub_errors_total",
		"Scrub passes that failed outright.",
		func() uint64 { return s.scrubErrors.Load() })
	m.reg.NewCounterFunc("cocoserve_panics_recovered_total",
		"Handler panics converted to 500s.",
		func() uint64 { return s.panics.Load() })
	m.reg.NewCounterFunc("cocoserve_degraded_refusals_total",
		"Misses refused for lack of deadline budget (cache-hits-only mode).",
		func() uint64 { return s.degraded.Load() })
	m.reg.NewGaugeFunc("cocoserve_draining",
		"1 once shutdown has begun and readiness is failing.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
}

// statusWriter captures the response status so the instrument wrapper
// can classify and time it. Pooled: the wrapper itself must not allocate
// on the cache-hit path.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

var statusWriters = sync.Pool{New: func() any { return &statusWriter{} }}

// ridHeader is the canonical correlation header name; direct map access
// against http.Header requires the canonical form.
const ridHeader = "X-Request-Id"

// ridPrefix is a per-process random prefix under which ridCounter mints
// request IDs, so IDs stay unique across restarts without per-request
// randomness (a crypto/rand read per request would allocate and
// serialize on the entropy pool).
var ridPrefix = func() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000-0000"
	}
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

// newRequestID mints a process-unique request ID. It allocates, so it is
// called only where the request already allocates (the admitted miss
// path and shed responses) — a cache hit without a client-supplied ID
// goes un-assigned rather than costing its only spare alloc.
func newRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

// validRequestID accepts a client-supplied correlation ID for echoing:
// printable ASCII, bounded length, no header-splitting characters.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x20 || c > 0x7e {
			return false
		}
	}
	return true
}

// instrument wraps a route handler with the telemetry envelope: echo a
// client correlation ID, time the handler, count the response by status
// class, record 2xx latency into the endpoint histogram, and emit the
// slow-query log line past the -slow-query threshold. Steady-state cost
// on a cache hit without a client ID: a pooled wrapper, a clock read,
// and two atomic adds — zero allocations.
func (s *server) instrument(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics
	slowQuery := s.cfg.slowQuery
	return func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(ridHeader); id != "" && validRequestID(id) {
			w.Header()[ridHeader] = []string{id}
		}
		sw := statusWriters.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, 0
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		sw.ResponseWriter = nil
		statusWriters.Put(sw)
		if status == 0 {
			status = http.StatusOK // handler wrote nothing; net/http sends 200
		}
		cls := classify(status)
		m.status[ep][cls].Inc()
		if cls == cls2xx {
			m.lat[ep].Record(elapsed)
		}
		if slowQuery > 0 && elapsed >= slowQuery {
			m.slow[ep].Inc()
			rid := w.Header().Get(ridHeader)
			if rid == "" {
				rid = "-" // cache hits and ungated endpoints carry an ID only if the client sent one
			}
			log.Printf("slow query: endpoint=%s latency=%v status=%d gen=%d request_id=%s",
				endpointNames[ep], elapsed.Round(time.Microsecond), status,
				s.coco.CacheStamp().Gen, rid)
		}
	}
}

// handleMetrics serves the Prometheus scrape. Not itself instrumented —
// scrapes would otherwise dominate the low-traffic endpoint counters —
// and never gated: observability must keep answering through overload.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.reg.Handler().ServeHTTP(w, r)
}
