// Package world generates the deterministic synthetic e-commerce universe
// that substitutes for Alibaba's proprietary data (see DESIGN.md §1). It
// plants a ground-truth concept net — taxonomy, primitive concepts, shopping
// scenarios, items — and then emits the corpora the paper's pipeline
// consumes (queries, titles, reviews, shopping guides, click logs). Every
// construction module is evaluated against this planted truth.
package world

// Domain is one of the 20 first-level classes of the AliCoCo taxonomy
// (Section 3, Figure 3 of the paper).
type Domain string

// The 20 domains of Table 2.
const (
	Category     Domain = "Category"
	Brand        Domain = "Brand"
	Color        Domain = "Color"
	Design       Domain = "Design"
	Function     Domain = "Function"
	Material     Domain = "Material"
	Pattern      Domain = "Pattern"
	Shape        Domain = "Shape"
	Smell        Domain = "Smell"
	Taste        Domain = "Taste"
	Style        Domain = "Style"
	Time         Domain = "Time"
	Location     Domain = "Location"
	Audience     Domain = "Audience"
	Event        Domain = "Event"
	IP           Domain = "IP"
	Nature       Domain = "Nature"
	Quantity     Domain = "Quantity"
	Modifier     Domain = "Modifier"
	Organization Domain = "Organization"
)

// Domains lists all 20 first-level classes in a stable order.
var Domains = []Domain{
	Category, Brand, Color, Design, Function, Material, Pattern, Shape,
	Smell, Taste, Style, Time, Location, Audience, Event, IP, Nature,
	Quantity, Modifier, Organization,
}

// DomainNames returns the domains as strings, for label sets.
func DomainNames() []string {
	out := make([]string, len(Domains))
	for i, d := range Domains {
		out[i] = string(d)
	}
	return out
}
