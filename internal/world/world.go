package world

import (
	"math/rand"
	"sort"
	"strings"
)

// Primitive is a ground-truth primitive concept (Section 4): a surface form
// in one of the 20 domains, possibly multi-token, possibly sharing its
// surface with a primitive of another domain (ambiguity).
type Primitive struct {
	ID        int
	Tokens    []string
	Domain    Domain
	ClassPath []string // fine-grained class path within the domain (Category only)
	Hypernyms []int    // direct ground-truth hypernym primitive IDs
}

// Name returns the space-joined surface form.
func (p *Primitive) Name() string { return strings.Join(p.Tokens, " ") }

// Item is a ground-truth item: a sellable unit with a base category and
// property values (the CPV data of Section 1).
type Item struct {
	ID     int
	Leaf   int // primitive ID of the base category
	Family string
	Brand  int   // primitive ID, -1 if unbranded
	Attrs  []int // primitive IDs of property values
	Title  []string
}

// Config controls the size of the generated world.
type Config struct {
	Seed              int64
	Brands, IPs, Orgs int
	CompoundsPerLeaf  int // compound category concepts per base category
	ItemsPerLeaf      int
	GeneratedFrames   int // programmatically generated scenario frames
}

// DefaultConfig is a laptop-scale world: ~1k primitives, ~1.2k items.
func DefaultConfig() Config {
	return Config{
		Seed:             42,
		Brands:           60,
		IPs:              30,
		Orgs:             20,
		CompoundsPerLeaf: 4,
		ItemsPerLeaf:     12,
		GeneratedFrames:  120,
	}
}

// TinyConfig is for fast unit tests.
func TinyConfig() Config {
	return Config{
		Seed:             7,
		Brands:           12,
		IPs:              6,
		Orgs:             4,
		CompoundsPerLeaf: 1,
		ItemsPerLeaf:     3,
		GeneratedFrames:  20,
	}
}

// World is the planted ground truth everything is evaluated against.
type World struct {
	Cfg Config
	rng *rand.Rand

	Primitives []*Primitive
	BySurface  map[string][]int // surface -> primitive IDs (>1 means ambiguous)
	ByDomain   map[Domain][]int

	Leaves       []int // primitive IDs of base categories
	LeafByName   map[string]int
	FamilyOfLeaf map[int]string
	FamilyPrims  map[string]int // family name -> primitive ID

	Frames      []*Frame
	Items       []*Item
	ItemsByLeaf map[int][]int

	Glosses map[int]string // primitive ID -> generated gloss

	// HypernymPairs is the ground-truth isA set within Category:
	// (hyponym, hypernym) primitive ID pairs, both directions of the tree.
	HypernymPairs [][2]int
}

// New builds the world deterministically from cfg.
func New(cfg Config) *World {
	w := &World{
		Cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		BySurface:    make(map[string][]int),
		ByDomain:     make(map[Domain][]int),
		LeafByName:   make(map[string]int),
		FamilyOfLeaf: make(map[int]string),
		FamilyPrims:  make(map[string]int),
		ItemsByLeaf:  make(map[int][]int),
		Glosses:      make(map[int]string),
	}
	w.buildCategory()
	w.buildFlatDomains()
	w.buildNamedDomains()
	w.ensureAmbiguity()
	w.buildFrames()
	w.buildItems()
	w.buildGlosses()
	return w
}

// addPrimitive registers a primitive and returns its ID.
func (w *World) addPrimitive(tokens []string, d Domain, classPath []string) int {
	id := len(w.Primitives)
	p := &Primitive{ID: id, Tokens: tokens, Domain: d, ClassPath: classPath}
	w.Primitives = append(w.Primitives, p)
	w.BySurface[p.Name()] = append(w.BySurface[p.Name()], id)
	w.ByDomain[d] = append(w.ByDomain[d], id)
	return id
}

// Prim returns the primitive with the given ID.
func (w *World) Prim(id int) *Primitive { return w.Primitives[id] }

// PrimByName returns the first primitive with the given surface form in the
// given domain, or -1.
func (w *World) PrimByName(d Domain, name string) int {
	for _, id := range w.BySurface[name] {
		if w.Primitives[id].Domain == d {
			return id
		}
	}
	return -1
}

func (w *World) buildCategory() {
	for _, fam := range categoryFamilies {
		famID := w.addPrimitive([]string{fam.Name}, Category, []string{fam.Name})
		w.FamilyPrims[fam.Name] = famID
		addLeaf := func(leaf string, path []string, parent int) {
			leafID := w.addPrimitive([]string{leaf}, Category, path)
			w.Primitives[leafID].Hypernyms = []int{parent}
			w.Leaves = append(w.Leaves, leafID)
			w.LeafByName[leaf] = leafID
			w.FamilyOfLeaf[leafID] = fam.Name
			w.HypernymPairs = append(w.HypernymPairs, [2]int{leafID, parent})
			if parent != famID {
				w.HypernymPairs = append(w.HypernymPairs, [2]int{leafID, famID})
			}
		}
		mids := make([]string, 0, len(fam.Mid))
		for mid := range fam.Mid {
			mids = append(mids, mid)
		}
		sort.Strings(mids)
		for _, mid := range mids {
			midID := w.addPrimitive([]string{mid}, Category, []string{fam.Name, mid})
			w.Primitives[midID].Hypernyms = []int{famID}
			w.HypernymPairs = append(w.HypernymPairs, [2]int{midID, famID})
			for _, leaf := range fam.Mid[mid] {
				addLeaf(leaf, []string{fam.Name, mid, leaf}, midID)
			}
		}
		for _, leaf := range fam.Leaves {
			addLeaf(leaf, []string{fam.Name, leaf}, famID)
		}
	}
	// Compound category concepts: "<modifier> <leaf>" isA <leaf>.
	mods := append(append([]string{}, materialWords[:8]...), styleWords[:6]...)
	for _, leafID := range append([]int(nil), w.Leaves...) {
		leaf := w.Primitives[leafID]
		picked := pickDistinct(w.rng, len(mods), w.Cfg.CompoundsPerLeaf)
		for _, mi := range picked {
			tokens := []string{mods[mi], leaf.Tokens[0]}
			id := w.addPrimitive(tokens, Category, append(append([]string{}, leaf.ClassPath...), tokens[0]+" "+tokens[1]))
			w.Primitives[id].Hypernyms = []int{leafID}
			w.HypernymPairs = append(w.HypernymPairs, [2]int{id, leafID})
			w.FamilyOfLeaf[id] = w.FamilyOfLeaf[leafID]
		}
	}
}

// flatDomainWords maps each flat domain to its lexicon.
func flatDomainWords() map[Domain][]string {
	return map[Domain][]string{
		Color:    colorWords,
		Design:   designWords,
		Function: functionWords,
		Material: materialWords,
		Pattern:  patternWords,
		Shape:    shapeWords,
		Smell:    smellWords,
		Taste:    tasteWords,
		Style:    styleWords,
		Time:     timeWords,
		Location: locationWords,
		Audience: audienceWords,
		Event:    eventWords,
		Nature:   natureWords,
		Quantity: quantityWords,
		Modifier: modifierWords,
	}
}

func (w *World) buildFlatDomains() {
	flat := flatDomainWords()
	order := make([]Domain, 0, len(flat))
	for d := range flat {
		order = append(order, d)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, d := range order {
		for _, word := range flat[d] {
			w.addPrimitive(strings.Fields(word), d, nil)
		}
	}
}

func (w *World) buildNamedDomains() {
	for _, b := range makeBrandNames(w.rng, w.Cfg.Brands) {
		w.addPrimitive(strings.Fields(b), Brand, nil)
	}
	for _, ip := range makeIPNames(w.rng, w.Cfg.IPs) {
		w.addPrimitive(strings.Fields(ip), IP, nil)
	}
	for _, o := range makeOrgNames(w.rng, w.Cfg.Orgs) {
		w.addPrimitive(strings.Fields(o), Organization, nil)
	}
}

// ensureAmbiguity guarantees every surface in ambiguousSurfaces exists in
// both of its domains, creating the second reading if missing.
func (w *World) ensureAmbiguity() {
	surfaces := make([]string, 0, len(ambiguousSurfaces))
	for s := range ambiguousSurfaces {
		surfaces = append(surfaces, s)
	}
	sort.Strings(surfaces)
	for _, surface := range surfaces {
		for _, d := range ambiguousSurfaces[surface] {
			if w.PrimByName(d, surface) < 0 {
				w.addPrimitive(strings.Fields(surface), d, nil)
			}
		}
	}
}

// AmbiguousDomains returns all domains a surface form can take.
func (w *World) AmbiguousDomains(surface string) []Domain {
	ids := w.BySurface[surface]
	out := make([]Domain, 0, len(ids))
	seen := make(map[Domain]bool)
	for _, id := range ids {
		d := w.Primitives[id].Domain
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// pickDistinct returns k distinct indices in [0,n) (fewer if n < k).
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// LeafName returns the surface of a base category primitive.
func (w *World) LeafName(leafID int) string { return w.Primitives[leafID].Name() }

// IsLeaf reports whether id is a base category.
func (w *World) IsLeaf(id int) bool {
	_, ok := w.FamilyOfLeaf[id]
	if !ok {
		return false
	}
	for _, l := range w.Leaves {
		if l == id {
			return true
		}
	}
	return false
}
