package world

import (
	"sort"
	"strings"

	"alicoco/internal/text"
)

// Frame is a ground-truth shopping scenario — the planted analogue of an
// e-commerce concept (Section 5). Its Required categories encode the
// "semantic drift" of Section 6: items a scenario needs that share no
// surface tokens with the scenario's name.
type Frame struct {
	ID         int
	Tokens     []string
	Spans      []text.Span // gold primitive-concept labeling of Tokens
	Primitives []int       // constituent primitive IDs
	Required   []int       // base-category primitive IDs the scenario needs
	Audience   int         // audience primitive ID constraint, or -1
}

// Name returns the space-joined phrase.
func (f *Frame) Name() string { return strings.Join(f.Tokens, " ") }

// eventRequirements maps each Event word to the base categories a shopper
// needs for it. This is the core planted world knowledge; glosses and click
// logs both derive from it.
var eventRequirements = map[string][]string{
	"barbecue":     {"grill", "charcoal", "tongs", "apron", "cooler", "butter"},
	"picnic":       {"blanket", "cooler", "snacks", "hammock", "flask"},
	"camping":      {"tent", "lantern", "backpack", "compass", "flask", "cooler"},
	"wedding":      {"dress", "suit", "perfume", "lipstick"},
	"party":        {"speaker", "snacks", "chocolate", "lamp"},
	"baking":       {"oven", "whisk", "strainer", "spatula", "butter", "apron"},
	"hiking":       {"backpack", "boots", "flask", "compass", "hat"},
	"traveling":    {"backpack", "charger", "camera", "hat"},
	"swimming":     {"goggles", "sandals", "sunscreen"},
	"skiing":       {"snowboard", "goggles", "helmet", "gloves", "parka"},
	"fishing":      {"flask", "hat", "cooler", "boots"},
	"graduation":   {"camera", "suit", "dress"},
	"birthday":     {"chocolate", "cookies", "doll", "blocks", "kite"},
	"housewarming": {"vase", "lamp", "rug", "clock", "mirror"},
	"marathon":     {"sneakers", "jersey", "flask"},
	"bathing":      {"shampoo", "lotion"},
}

// timeRequirements maps seasonal/festival Time words to needed categories.
var timeRequirements = map[string][]string{
	"christmas":           {"scarf", "gloves", "sweater", "chocolate", "cookies"},
	"mid-autumn festival": {"mooncake", "tea"},
	"new year":            {"lantern", "snacks", "tea"},
	"winter":              {"coat", "parka", "gloves", "scarf", "blanket"},
	"summer":              {"shorts", "sandals", "sunscreen", "kite"},
	"valentine":           {"chocolate", "perfume", "lipstick"},
	"halloween":           {"snacks", "doll"},
}

// functionRequirements maps Function words to the categories that deliver
// that function (e.g. "keep warm for kids" -> coats, gloves...).
var functionRequirements = map[string][]string{
	"warm":       {"coat", "parka", "gloves", "scarf", "blanket", "sweater", "hat"},
	"waterproof": {"boots", "tent", "jacket", "parka"},
	"portable":   {"charger", "speaker", "flask", "lamp"},
	"insulated":  {"flask", "cooler", "kettle"},
}

// Plausibility tables (Section 5.1 criterion 3). Violations make a concept
// candidate implausible: "sexy baby dress", "warm shoes for swimming",
// "bathing in the classroom", "casual summer coat" analogues.
var (
	incompatModifierAudience = map[string][]string{
		"sexy":  {"kids", "baby", "toddlers"},
		"giant": {"baby"},
	}
	regionalStyles = []string{"british", "korean", "european", "nordic"}

	incompatEventFunction = map[string][]string{
		"swimming": {"warm", "insulated", "windproof"},
		"bathing":  {"windproof"},
		"skiing":   {"non-stick"},
	}
	incompatEventLocation = map[string][]string{
		"bathing":  {"classroom", "office", "school", "park"},
		"barbecue": {"office", "classroom"},
		"skiing":   {"beach", "indoor"},
		"swimming": {"mountain", "office", "classroom"},
	}
	// leaf categories implausible in a given time/season.
	incompatTimeLeaf = map[string][]string{
		"summer": {"coat", "parka", "sweater", "snowboard", "gloves", "scarf"},
		"winter": {"sandals", "shorts", "kite"},
	}
)

// EventRequirements exposes the planted event -> needed-categories table
// (read-only copy) for schema construction and glosses.
func EventRequirements() map[string][]string { return copyTable(eventRequirements) }

// TimeRequirements exposes the planted time -> needed-categories table.
func TimeRequirements() map[string][]string { return copyTable(timeRequirements) }

// FunctionRequirements exposes the planted function -> categories table.
func FunctionRequirements() map[string][]string { return copyTable(functionRequirements) }

// FamilyAttributes exposes the family -> property-domains schema.
func FamilyAttributes() map[string][]Domain {
	out := make(map[string][]Domain, len(familyAttributes))
	for k, v := range familyAttributes {
		out[k] = append([]Domain(nil), v...)
	}
	return out
}

func copyTable(t map[string][]string) map[string][]string {
	out := make(map[string][]string, len(t))
	for k, v := range t {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// Plausible checks a set of primitives against the incompatibility tables
// and reports the first violated rule, mirroring the commonsense judgment
// the knowledge-enhanced classifier must learn (Section 5.2.2).
func (w *World) Plausible(primIDs []int) (bool, string) {
	names := make(map[Domain][]string)
	for _, id := range primIDs {
		p := w.Primitives[id]
		names[p.Domain] = append(names[p.Domain], p.Name())
	}
	contains := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	for _, mod := range names[Modifier] {
		for _, aud := range incompatModifierAudience[mod] {
			if contains(names[Audience], aud) {
				return false, "modifier/audience: " + mod + " + " + aud
			}
		}
	}
	regional := 0
	for _, st := range names[Style] {
		if contains(regionalStyles, st) {
			regional++
		}
	}
	if regional > 1 {
		return false, "conflicting regional styles"
	}
	for _, ev := range names[Event] {
		for _, fn := range incompatEventFunction[ev] {
			if contains(names[Function], fn) {
				return false, "event/function: " + ev + " + " + fn
			}
		}
		for _, loc := range incompatEventLocation[ev] {
			if contains(names[Location], loc) {
				return false, "event/location: " + ev + " + " + loc
			}
		}
	}
	for _, tm := range names[Time] {
		for _, leafName := range incompatTimeLeaf[tm] {
			for _, cat := range names[Category] {
				if cat == leafName || strings.HasSuffix(cat, " "+leafName) {
					return false, "time/category: " + tm + " + " + cat
				}
			}
		}
	}
	return true, ""
}

// frameSpec is a compact, declarative description of a handcrafted frame.
type frameSpec struct {
	phrase   string   // tokens with [brackets] marking primitive spans: "[outdoor] [barbecue]"
	prims    []string // "Domain:surface" for each bracketed span, in order
	required []string // leaf names; empty means derive from event/time/function tables
	audience string   // optional audience surface
}

// Handcrafted scenarios, covering every example the paper mentions.
var handFrames = []frameSpec{
	{phrase: "[outdoor] [barbecue]", prims: []string{"Location:outdoor", "Event:barbecue"}},
	{phrase: "[indoor] [barbecue]", prims: []string{"Location:indoor", "Event:barbecue"},
		required: []string{"grill", "pan", "apron", "tongs"}},
	{phrase: "tools for [baking]", prims: []string{"Event:baking"}},
	{phrase: "[christmas] gifts for [grandpa]", prims: []string{"Time:christmas", "Audience:grandpa"},
		required: []string{"scarf", "gloves", "tea", "sweater"}, audience: "grandpa"},
	{phrase: "keep [warm] for [kids]", prims: []string{"Function:warm", "Audience:kids"}, audience: "kids"},
	{phrase: "[mid-autumn festival] gifts", prims: []string{"Time:mid-autumn festival"}},
	{phrase: "[camping] trip", prims: []string{"Event:camping"}},
	{phrase: "[beach] [picnic]", prims: []string{"Location:beach", "Event:picnic"}},
	{phrase: "[wedding] [party]", prims: []string{"Event:wedding", "Event:party"},
		required: []string{"dress", "suit", "perfume", "speaker"}},
	{phrase: "[winter] [skiing]", prims: []string{"Time:winter", "Event:skiing"}},
	{phrase: "[marathon] for [runners]", prims: []string{"Event:marathon", "Audience:runners"}, audience: "runners"},
	{phrase: "[baby] care essentials", prims: []string{"Audience:baby"},
		required: []string{"stroller", "crib", "diaper", "bib", "pacifier", "lotion"}, audience: "baby"},
	{phrase: "[hiking] in the [mountain]", prims: []string{"Event:hiking", "Location:mountain"}},
	{phrase: "[fishing] at the [lakeside]", prims: []string{"Event:fishing", "Location:lakeside"}},
	{phrase: "[housewarming] gifts", prims: []string{"Event:housewarming"}},
	{phrase: "[birthday] [party] for [kids]", prims: []string{"Event:birthday", "Event:party", "Audience:kids"},
		required: []string{"chocolate", "cookies", "doll", "blocks", "kite"}, audience: "kids"},
	{phrase: "[valentine] gifts for [couples]", prims: []string{"Time:valentine", "Audience:couples"}, audience: "couples"},
	{phrase: "[new year] [party]", prims: []string{"Time:new year", "Event:party"},
		required: []string{"lantern", "snacks", "tea", "speaker"}},
	{phrase: "[halloween] [party]", prims: []string{"Time:halloween", "Event:party"},
		required: []string{"snacks", "doll", "speaker"}},
	{phrase: "[summer] [swimming]", prims: []string{"Time:summer", "Event:swimming"}},
	{phrase: "[graduation] season", prims: []string{"Event:graduation"}},
	{phrase: "[village] [picnic]", prims: []string{"Location:village", "Event:picnic"}},
	{phrase: "[portable] gear for [traveling]", prims: []string{"Function:portable", "Event:traveling"},
		required: []string{"charger", "speaker", "flask", "backpack", "camera"}},
	{phrase: "[waterproof] gear for [camping]", prims: []string{"Function:waterproof", "Event:camping"},
		required: []string{"boots", "tent", "jacket"}},
	{phrase: "back to [school] for [students]", prims: []string{"Location:school", "Audience:students"},
		required: []string{"notebook", "pen", "marker", "backpack", "stapler"}, audience: "students"},
	{phrase: "[morning] [marathon]", prims: []string{"Time:morning", "Event:marathon"}},
	{phrase: "[elders] health care", prims: []string{"Audience:elders"},
		required: []string{"blanket", "kettle", "tea", "slippers"}, audience: "elders"},
	{phrase: "[weekend] [fishing]", prims: []string{"Time:weekend", "Event:fishing"}},
	{phrase: "[bathing] time for [baby]", prims: []string{"Event:bathing", "Audience:baby"},
		required: []string{"shampoo", "lotion", "bib"}, audience: "baby"},
	{phrase: "[garden] [barbecue]", prims: []string{"Location:garden", "Event:barbecue"}},
}

// parseSpecPhrase splits a bracketed phrase into tokens and spans. Each
// [...] group is one primitive span; its label is filled by the caller.
func parseSpecPhrase(phrase string) ([]string, [][2]int) {
	var tokens []string
	var spans [][2]int
	for _, field := range strings.Fields(phrase) {
		start := strings.HasPrefix(field, "[")
		end := strings.HasSuffix(field, "]")
		word := strings.Trim(field, "[]")
		if start {
			spans = append(spans, [2]int{len(tokens), -1})
		}
		tokens = append(tokens, word)
		if end {
			spans[len(spans)-1][1] = len(tokens)
		}
	}
	return tokens, spans
}

func (w *World) buildFrames() {
	for _, spec := range handFrames {
		w.addFrame(spec)
	}
	w.generateFrames()
}

// addFrame materializes a frameSpec, resolving primitives and deriving the
// required categories from the knowledge tables when not given explicitly.
func (w *World) addFrame(spec frameSpec) *Frame {
	tokens, rawSpans := parseSpecPhrase(spec.phrase)
	if len(rawSpans) != len(spec.prims) {
		panic("world: frame spec span/prim mismatch: " + spec.phrase)
	}
	f := &Frame{ID: len(w.Frames), Tokens: tokens, Audience: -1}
	reqSet := make(map[string]bool)
	for i, ps := range spec.prims {
		parts := strings.SplitN(ps, ":", 2)
		d, surface := Domain(parts[0]), parts[1]
		id := w.PrimByName(d, surface)
		if id < 0 {
			panic("world: unknown primitive in frame spec: " + ps)
		}
		f.Primitives = append(f.Primitives, id)
		f.Spans = append(f.Spans, text.Span{Start: rawSpans[i][0], End: rawSpans[i][1], Label: string(d)})
		if len(spec.required) == 0 {
			for _, leaf := range eventRequirements[surface] {
				reqSet[leaf] = true
			}
			for _, leaf := range timeRequirements[surface] {
				reqSet[leaf] = true
			}
			for _, leaf := range functionRequirements[surface] {
				reqSet[leaf] = true
			}
		}
	}
	for _, leaf := range spec.required {
		reqSet[leaf] = true
	}
	for leaf := range reqSet {
		id, ok := w.LeafByName[leaf]
		if !ok {
			panic("world: unknown leaf in frame requirements: " + leaf)
		}
		f.Required = append(f.Required, id)
	}
	sort.Ints(f.Required)
	if spec.audience != "" {
		f.Audience = w.PrimByName(Audience, spec.audience)
	}
	if len(f.Required) == 0 {
		panic("world: frame with no requirements: " + spec.phrase)
	}
	w.Frames = append(w.Frames, f)
	return f
}

// generateFrames scales the scenario layer with pattern-generated frames
// ("[function] [leaf] for [event]" etc.), keeping only plausible combos —
// the combination generation of Section 5.2.1.
func (w *World) generateFrames() {
	events := make([]string, 0, len(eventRequirements))
	for ev := range eventRequirements {
		events = append(events, ev)
	}
	sort.Strings(events)
	seen := make(map[string]bool)
	for _, f := range w.Frames {
		seen[f.Name()] = true
	}
	tries := 0
	for len(w.Frames) < len(handFrames)+w.Cfg.GeneratedFrames && tries < w.Cfg.GeneratedFrames*30 {
		tries++
		ev := events[w.rng.Intn(len(events))]
		req := eventRequirements[ev]
		leaf := req[w.rng.Intn(len(req))]
		switch w.rng.Intn(3) {
		case 0: // "<function> <leaf> for <event>"
			fn := functionWords[w.rng.Intn(len(functionWords))]
			fnID := w.PrimByName(Function, fn)
			evID := w.PrimByName(Event, ev)
			leafID := w.LeafByName[leaf]
			if okp, _ := w.Plausible([]int{fnID, evID, leafID}); !okp {
				continue
			}
			phrase := "[" + fn + "] [" + leaf + "] for [" + ev + "]"
			if seen[strings.ReplaceAll(strings.ReplaceAll(phrase, "[", ""), "]", "")] {
				continue
			}
			spec := frameSpec{
				phrase:   phrase,
				prims:    []string{"Function:" + fn, "Category:" + leaf, "Event:" + ev},
				required: []string{leaf},
			}
			seen[w.addFrame(spec).Name()] = true
		case 1: // "<time> <event>"
			tm := timeWords[w.rng.Intn(len(timeWords))]
			tmID := w.PrimByName(Time, tm)
			evID := w.PrimByName(Event, ev)
			if okp, _ := w.Plausible(append([]int{tmID, evID}, w.leafIDs(req)...)); !okp {
				continue
			}
			name := tm + " " + ev
			if seen[name] {
				continue
			}
			spec := frameSpec{
				phrase: "[" + tm + "] [" + ev + "]",
				prims:  []string{"Time:" + tm, "Event:" + ev},
			}
			seen[w.addFrame(spec).Name()] = true
		default: // "<event> essentials for <audience>"
			aud := audienceWords[w.rng.Intn(len(audienceWords))]
			name := ev + " essentials for " + aud
			if seen[name] {
				continue
			}
			spec := frameSpec{
				phrase:   "[" + ev + "] essentials for [" + aud + "]",
				prims:    []string{"Event:" + ev, "Audience:" + aud},
				audience: aud,
			}
			seen[w.addFrame(spec).Name()] = true
		}
	}
}

func (w *World) leafIDs(names []string) []int {
	out := make([]int, 0, len(names))
	for _, n := range names {
		if id, ok := w.LeafByName[n]; ok {
			out = append(out, id)
		}
	}
	return out
}
