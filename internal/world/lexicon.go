package world

import (
	"fmt"
	"math/rand"
)

// categoryFamily is one subtree of the Category domain: a family name, an
// optional intermediate layer, and base (leaf) categories. Base categories
// are the units items belong to; compound concepts ("cotton dress") hang off
// them.
type categoryFamily struct {
	Name   string
	Mid    map[string][]string // intermediate class -> leaves under it
	Leaves []string            // leaves directly under the family
}

// The Category subtree. Families mirror Figure 3's
// "Category -> ClothingAndAccessory -> Clothing -> Dress" style paths.
var categoryFamilies = []categoryFamily{
	{
		Name: "clothing",
		Mid: map[string][]string{
			"outerwear": {"coat", "jacket", "trench", "parka"},
			"tops":      {"shirt", "sweater", "hoodie", "blouse"},
			"bottoms":   {"pants", "trousers", "skirt", "jeans", "shorts"},
		},
		Leaves: []string{"dress", "hat", "scarf", "gloves", "socks", "suit"},
	},
	{
		Name:   "footwear",
		Leaves: []string{"sneakers", "boots", "sandals", "slippers", "loafers"},
	},
	{
		Name:   "kitchen",
		Leaves: []string{"grill", "pan", "pot", "kettle", "oven", "blender", "whisk", "strainer", "spatula", "apron", "tongs"},
	},
	{
		Name:   "food",
		Leaves: []string{"snacks", "mooncake", "chocolate", "tea", "coffee", "honey", "noodles", "cookies", "butter", "jam"},
	},
	{
		Name:   "outdoor",
		Leaves: []string{"tent", "lantern", "charcoal", "cooler", "hammock", "backpack", "compass", "flask"},
	},
	{
		Name:   "electronics",
		Leaves: []string{"phone", "laptop", "camera", "headphones", "speaker", "charger", "tablet", "drone"},
	},
	{
		Name:   "beauty",
		Leaves: []string{"lipstick", "perfume", "shampoo", "sunscreen", "lotion", "mascara"},
	},
	{
		Name:   "home",
		Leaves: []string{"curtain", "pillow", "blanket", "lamp", "vase", "rug", "mirror", "clock"},
	},
	{
		Name:   "baby",
		Leaves: []string{"stroller", "crib", "diaper", "bib", "rattle", "pacifier"},
	},
	{
		Name:   "sports",
		Leaves: []string{"racket", "dumbbell", "helmet", "skates", "jersey", "goggles", "kayak", "snowboard"},
	},
	{
		Name:   "toys",
		Leaves: []string{"puzzle", "doll", "blocks", "kite", "marbles"},
	},
	{
		Name:   "stationery",
		Leaves: []string{"notebook", "pen", "marker", "easel", "stapler"},
	},
}

// Flat word lists per non-category domain.
var (
	colorWords = []string{
		"red", "blue", "green", "black", "white", "pink", "purple", "yellow",
		"beige", "navy", "crimson", "teal", "ivory", "olive", "maroon", "lavender",
	}
	designWords = []string{
		"hooded", "sleeveless", "high-waist", "oversized", "slim-fit", "pleated",
		"quilted", "collared", "zippered", "layered",
	}
	functionWords = []string{
		"waterproof", "warm", "windproof", "breathable", "non-stick", "portable",
		"foldable", "rechargeable", "anti-slip", "insulated", "wireless", "reflective",
	}
	materialWords = []string{
		"cotton", "wool", "leather", "silk", "denim", "linen", "bamboo", "ceramic",
		"steel", "plastic", "glass", "wooden", "rubber", "velvet", "cashmere",
	}
	patternWords = []string{
		"striped", "floral", "plaid", "polka-dot", "camouflage", "geometric", "paisley",
	}
	shapeWords = []string{
		"round", "square", "oval", "curved", "hexagonal", "tapered",
	}
	smellWords = []string{
		"lavender", "citrus", "vanilla", "musk", "sandalwood", "jasmine", "minty",
	}
	tasteWords = []string{
		"sweet", "spicy", "salty", "sour", "bitter", "matcha", "umami",
	}
	styleWords = []string{
		"casual", "vintage", "modern", "british", "korean", "european", "nordic",
		"bohemian", "minimalist", "sporty", "elegant", "rustic", "village", "preppy",
	}
	timeWords = []string{
		"winter", "summer", "spring", "autumn", "christmas", "halloween", "weekend",
		"morning", "evening", "mid-autumn festival", "new year", "valentine",
	}
	locationWords = []string{
		"outdoor", "indoor", "beach", "mountain", "office", "school", "classroom",
		"garden", "park", "village", "city", "lakeside", "campsite", "balcony",
	}
	audienceWords = []string{
		"kids", "baby", "men", "women", "elders", "teens", "students", "toddlers",
		"grandpa", "grandma", "couples", "runners", "hikers",
	}
	eventWords = []string{
		"barbecue", "picnic", "camping", "wedding", "party", "baking", "hiking",
		"traveling", "swimming", "skiing", "fishing", "graduation", "birthday",
		"housewarming", "marathon", "bathing",
	}
	natureWords = []string{
		"handmade", "organic", "eco-friendly", "recyclable", "vegan", "hypoallergenic",
	}
	quantityWords = []string{
		"pair", "set", "pack", "dozen", "bundle",
	}
	modifierWords = []string{
		"sexy", "luxury", "budget", "premium", "mini", "giant", "classic", "deluxe", "compact",
	}
)

// ambiguousSurfaces lists surface forms that legitimately belong to two
// domains — the disambiguation cases that motivate the fuzzy CRF (Figure 7:
// "village" is both a Location and a Style). The paper notes the phenomenon
// is severe for short concepts, so the planted world makes it dense.
var ambiguousSurfaces = map[string][2]Domain{
	"village":    {Location, Style},
	"lavender":   {Color, Smell},
	"matcha":     {Taste, Color},
	"christmas":  {Time, Event},
	"halloween":  {Time, Event},
	"valentine":  {Time, Event},
	"vintage":    {Style, Time},
	"denim":      {Material, Style},
	"camouflage": {Pattern, Style},
	"minty":      {Smell, Taste},
	"citrus":     {Smell, Taste},
	"bamboo":     {Material, Nature},
}

// brand/ip/organization pseudo-word syllables.
var (
	brandSyllA = []string{"zo", "mi", "ka", "ve", "lu", "ta", "no", "ri", "su", "be", "fa", "ori"}
	brandSyllB = []string{"rel", "vat", "lan", "mor", "dex", "bon", "tis", "zen", "qui", "nor", "gal", "pex"}
	brandSyllC = []string{"la", "to", "ne", "ra", "x", "on", "ix", "ia", "us", "eo", "ic", "ar"}
)

// makeBrandNames deterministically generates n distinct pseudo-brand names.
func makeBrandNames(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool)
	var out []string
	for len(out) < n {
		name := brandSyllA[rng.Intn(len(brandSyllA))] +
			brandSyllB[rng.Intn(len(brandSyllB))] +
			brandSyllC[rng.Intn(len(brandSyllC))]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
		if len(seen) >= len(brandSyllA)*len(brandSyllB)*len(brandSyllC) {
			break
		}
	}
	// If the syllable space is exhausted, extend with numbered names.
	for i := 0; len(out) < n; i++ {
		out = append(out, fmt.Sprintf("brandia%d", i))
	}
	return out
}

var ipAdjectives = []string{"galaxy", "star", "ocean", "shadow", "crystal", "thunder", "ember", "frost", "mystic", "neon"}
var ipNouns = []string{"quest", "wanderer", "legend", "saga", "knights", "kingdom", "chronicles", "odyssey", "racers", "guardians"}

// makeIPNames generates two-token fictional-franchise names.
func makeIPNames(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool)
	var out []string
	for len(out) < n && len(seen) < len(ipAdjectives)*len(ipNouns) {
		name := ipAdjectives[rng.Intn(len(ipAdjectives))] + " " + ipNouns[rng.Intn(len(ipNouns))]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for i := 0; len(out) < n; i++ {
		out = append(out, fmt.Sprintf("saga%d world", i))
	}
	return out
}

var orgSuffixes = []string{"corp", "labs", "works", "group", "union", "guild"}

// makeOrgNames generates organization names.
func makeOrgNames(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool)
	var out []string
	for len(out) < n && len(seen) < len(brandSyllA)*len(orgSuffixes) {
		name := brandSyllA[rng.Intn(len(brandSyllA))] + brandSyllB[rng.Intn(len(brandSyllB))] + " " + orgSuffixes[rng.Intn(len(orgSuffixes))]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for i := 0; len(out) < n; i++ {
		out = append(out, fmt.Sprintf("org%d group", i))
	}
	return out
}

// familyAttributes maps a category family to the property domains its items
// plausibly carry — the schema of Section 3 ("suitable_when" etc. are in
// frames.go).
var familyAttributes = map[string][]Domain{
	"clothing":    {Color, Material, Style, Pattern, Design, Function, Audience},
	"footwear":    {Color, Material, Style, Function, Audience},
	"kitchen":     {Material, Function, Shape, Color},
	"food":        {Taste, Smell, Nature, Quantity},
	"outdoor":     {Function, Material, Color, Shape},
	"electronics": {Color, Function, Quantity},
	"beauty":      {Smell, Nature, Audience},
	"home":        {Color, Material, Pattern, Style, Shape},
	"baby":        {Color, Material, Nature, Audience},
	"sports":      {Color, Function, Material, Audience},
	"toys":        {Color, Material, Audience, Shape},
	"stationery":  {Color, Shape, Quantity},
}
