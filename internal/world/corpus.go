package world

import (
	"sort"
	"strings"
)

// Corpus bundles the four text sources the paper mines (Section 4.1):
// search queries, product titles, user reviews and shopping guides.
type Corpus struct {
	Titles  [][]string
	Queries [][]string
	Reviews [][]string
	Guides  [][]string
}

// All returns every sentence of the corpus as one slice.
func (c *Corpus) All() [][]string {
	out := make([][]string, 0, len(c.Titles)+len(c.Queries)+len(c.Reviews)+len(c.Guides))
	out = append(out, c.Titles...)
	out = append(out, c.Queries...)
	out = append(out, c.Reviews...)
	out = append(out, c.Guides...)
	return out
}

// Sentences returns the total sentence count.
func (c *Corpus) Sentences() int {
	return len(c.Titles) + len(c.Queries) + len(c.Reviews) + len(c.Guides)
}

// GenCorpus emits a corpus with roughly the requested number of sentences
// per source. Titles always include one per item.
func (w *World) GenCorpus(queries, reviews, guides int) *Corpus {
	c := &Corpus{}
	for _, item := range w.Items {
		c.Titles = append(c.Titles, item.Title)
	}
	for i := 0; i < queries; i++ {
		c.Queries = append(c.Queries, w.genQuery())
	}
	for i := 0; i < reviews; i++ {
		c.Reviews = append(c.Reviews, w.genReview())
	}
	for i := 0; i < guides; i++ {
		c.Guides = append(c.Guides, w.genGuide())
	}
	return c
}

func (w *World) randomLeaf() int { return w.Leaves[w.rng.Intn(len(w.Leaves))] }

func (w *World) randomPrimOf(d Domain) int {
	pool := w.ByDomain[d]
	return pool[w.rng.Intn(len(pool))]
}

// genQuery emits a search query: category, attribute+category, brand, or a
// scenario phrase.
func (w *World) genQuery() []string {
	switch w.rng.Intn(10) {
	case 0, 1, 2: // bare category
		return append([]string(nil), w.Primitives[w.randomLeaf()].Tokens...)
	case 3, 4: // attribute + category
		leafID := w.randomLeaf()
		fam := w.FamilyOfLeaf[leafID]
		doms := familyAttributes[fam]
		attr := w.randomPrimOf(doms[w.rng.Intn(len(doms))])
		return append(append([]string(nil), w.Primitives[attr].Tokens...), w.Primitives[leafID].Tokens...)
	case 5: // brand + category
		b := w.randomPrimOf(Brand)
		return append(append([]string(nil), w.Primitives[b].Tokens...), w.Primitives[w.randomLeaf()].Tokens...)
	default: // scenario phrase
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		return append([]string(nil), f.Tokens...)
	}
}

var reviewOpeners = []string{"great", "lovely", "decent", "awesome", "solid"}

// templateWords are the fixed function/template words the corpus generators
// emit outside concept spans.
var templateWords = []string{
	"this", "is", "perfect", "for", "love", "the", "bought",
	"such", "as", "a", "kind", "of", "every", "needs", "and",
	"you", "should", "prepare", "in", "at", "to",
}

// Stopwords returns every non-concept word the corpora and frame phrases can
// contain — the function-word whitelist for perfect-match distant labeling
// (Section 7.2).
func (w *World) Stopwords() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(word string) {
		if !seen[word] {
			seen[word] = true
			out = append(out, word)
		}
	}
	for _, t := range templateWords {
		add(t)
	}
	for _, t := range reviewOpeners {
		add(t)
	}
	// Frame filler tokens: any frame token not inside a primitive span.
	for _, f := range w.Frames {
		covered := make([]bool, len(f.Tokens))
		for _, sp := range f.Spans {
			for i := sp.Start; i < sp.End; i++ {
				covered[i] = true
			}
		}
		for i, tok := range f.Tokens {
			if !covered[i] {
				add(tok)
			}
		}
	}
	sort.Strings(out)
	return out
}

// genReview emits a review sentence tying items to scenarios — the context
// corpus that text-augmented models mine.
func (w *World) genReview() []string {
	item := w.Items[w.rng.Intn(len(w.Items))]
	leaf := w.Primitives[item.Leaf]
	switch w.rng.Intn(3) {
	case 0:
		frames := w.ItemFrames(item.ID)
		if len(frames) > 0 {
			f := w.Frames[frames[w.rng.Intn(len(frames))]]
			out := []string{"this"}
			out = append(out, leaf.Tokens...)
			out = append(out, "is", "perfect", "for")
			out = append(out, f.Tokens...)
			return out
		}
		fallthrough
	case 1:
		out := []string{reviewOpeners[w.rng.Intn(len(reviewOpeners))]}
		out = append(out, leaf.Tokens...)
		if len(item.Attrs) > 0 {
			out = append(out, "love", "the")
			out = append(out, w.Primitives[item.Attrs[w.rng.Intn(len(item.Attrs))]].Tokens...)
		}
		return out
	default:
		out := []string{"bought", "this"}
		for _, a := range item.Attrs {
			out = append(out, w.Primitives[a].Tokens...)
		}
		out = append(out, leaf.Tokens...)
		return out
	}
}

// genGuide emits shopping-guide prose: Hearst-pattern isA sentences and
// scenario-requirement sentences, the raw material for pattern-based
// hypernym discovery (Section 4.2.1) and for the knowledge glosses.
func (w *World) genGuide() []string {
	switch w.rng.Intn(4) {
	case 0: // "<family> such as <leaf> and <leaf>"
		fam := categoryFamilies[w.rng.Intn(len(categoryFamilies))]
		leaves := familyLeafNames(fam)
		if len(leaves) < 2 {
			return w.genGuide()
		}
		i, j := w.rng.Intn(len(leaves)), w.rng.Intn(len(leaves))
		for j == i {
			j = w.rng.Intn(len(leaves))
		}
		return []string{fam.Name, "such", "as", leaves[i], "and", leaves[j]}
	case 1: // "the <compound> is a kind of <leaf>"
		id := w.ByDomain[Category][w.rng.Intn(len(w.ByDomain[Category]))]
		p := w.Primitives[id]
		if len(p.Hypernyms) == 0 {
			return w.genGuide()
		}
		hyper := w.Primitives[p.Hypernyms[0]]
		out := []string{"the"}
		out = append(out, p.Tokens...)
		out = append(out, "is", "a", "kind", "of")
		out = append(out, hyper.Tokens...)
		return out
	case 2: // "every <event> needs <leaf> and <leaf>"
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		if len(f.Required) < 2 {
			return w.genGuide()
		}
		i, j := w.rng.Intn(len(f.Required)), w.rng.Intn(len(f.Required))
		for j == i {
			j = w.rng.Intn(len(f.Required))
		}
		out := []string{"every"}
		out = append(out, f.Tokens...)
		out = append(out, "needs")
		out = append(out, w.Primitives[f.Required[i]].Tokens...)
		out = append(out, "and")
		out = append(out, w.Primitives[f.Required[j]].Tokens...)
		return out
	default: // "for <scenario> you should prepare <leaf>"
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		out := []string{"for"}
		out = append(out, f.Tokens...)
		out = append(out, "you", "should", "prepare")
		out = append(out, w.Primitives[f.Required[w.rng.Intn(len(f.Required))]].Tokens...)
		return out
	}
}

func familyLeafNames(fam categoryFamily) []string {
	var out []string
	for _, mid := range sortedKeys(fam.Mid) {
		out = append(out, fam.Mid[mid]...)
	}
	out = append(out, fam.Leaves...)
	return out
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// buildGlosses writes one knowledge-base gloss per primitive, encoding the
// ground-truth relations in prose — the stand-in for Wikipedia articles
// (Section 5.2.2). Crucially, event/time glosses name their required
// categories: the "Mid-Autumn Festival mentions moon cakes" bridge.
func (w *World) buildGlosses() {
	// Reverse indexes: leaf -> events/times needing it.
	leafEvents := make(map[string][]string)
	for ev, leaves := range eventRequirements {
		for _, l := range leaves {
			leafEvents[l] = append(leafEvents[l], ev)
		}
	}
	leafTimes := make(map[string][]string)
	for tm, leaves := range timeRequirements {
		for _, l := range leaves {
			leafTimes[l] = append(leafTimes[l], tm)
		}
	}
	for _, p := range w.Primitives {
		var b strings.Builder
		b.WriteString(p.Name())
		switch p.Domain {
		case Category:
			if len(p.Hypernyms) > 0 {
				b.WriteString(" is a kind of " + w.Primitives[p.Hypernyms[0]].Name())
			} else {
				b.WriteString(" is a category of products")
			}
			base := p.Tokens[len(p.Tokens)-1]
			if evs := leafEvents[base]; len(evs) > 0 {
				sort.Strings(evs)
				b.WriteString(" often needed for " + strings.Join(evs, " and "))
			}
			if tms := leafTimes[base]; len(tms) > 0 {
				sort.Strings(tms)
				b.WriteString(" popular in " + strings.Join(tms, " and "))
			}
		case Event:
			b.WriteString(" is an occasion where people need")
			for _, l := range eventRequirements[p.Name()] {
				b.WriteString(" " + l)
			}
		case Time:
			b.WriteString(" is a time when people prepare")
			for _, l := range timeRequirements[p.Name()] {
				b.WriteString(" " + l)
			}
		case Function:
			b.WriteString(" is a function provided by")
			for _, l := range functionRequirements[p.Name()] {
				b.WriteString(" " + l)
			}
		case Audience:
			b.WriteString(" are shoppers")
			switch p.Name() {
			case "kids", "baby", "toddlers":
				b.WriteString(" who are young children needing gentle safe products")
			case "elders", "grandpa", "grandma":
				b.WriteString(" who are older adults valuing comfort")
			case "students", "teens":
				b.WriteString(" who are young people at school")
			default:
				b.WriteString(" who are adults")
			}
		case Modifier:
			switch p.Name() {
			case "sexy":
				b.WriteString(" describes styles intended for adults never for children")
			case "luxury", "premium", "deluxe":
				b.WriteString(" describes high end expensive products")
			default:
				b.WriteString(" is a general product modifier")
			}
		case Style:
			if isRegionalStyle(p.Name()) {
				b.WriteString(" is a regional style tied to one tradition")
			} else {
				b.WriteString(" is a fashion style")
			}
		case Brand:
			b.WriteString(" is a brand selling consumer products")
		case IP:
			b.WriteString(" is a fictional franchise with collectible merchandise")
		case Organization:
			b.WriteString(" is an organization")
		case Location:
			b.WriteString(" is a place where activities happen")
		default:
			b.WriteString(" is a " + strings.ToLower(string(p.Domain)) + " used to describe items")
		}
		w.Glosses[p.ID] = strings.ToLower(b.String())
	}
}

func isRegionalStyle(s string) bool {
	for _, r := range regionalStyles {
		if r == s {
			return true
		}
	}
	return false
}
