package world

import "strings"

// Candidate is a labeled e-commerce-concept candidate for the classification
// task of Section 5.2.2. Reason is empty for good candidates and names the
// violated criterion otherwise, mirroring the paper's five criteria
// (Section 5.1).
type Candidate struct {
	Tokens []string
	Good   bool
	Reason string // "incoherent", "implausible", "nonsense", "typo"
}

// Name returns the space-joined candidate phrase.
func (c Candidate) Name() string { return strings.Join(c.Tokens, " ") }

// Non-shopping filler vocabulary for "no e-commerce meaning" negatives —
// the "blue sky" / "hens lay eggs" counterexamples of Section 5.1.
var (
	fillerNouns = []string{"sky", "rain", "cloud", "grass", "river", "song", "dream", "idea", "hens", "shadow", "meeting", "silence"}
	fillerVerbs = []string{"lay", "falls", "drifts", "sings", "fades", "rises", "whispers"}
)

// ConceptCandidates emits a balanced labeled dataset of n candidates,
// deterministic for the world's seed. Roughly half are good; the bad half is
// split across the four failure modes.
func (w *World) ConceptCandidates(n int) []Candidate {
	out := make([]Candidate, 0, n)
	for len(out) < n {
		if len(out)%2 == 0 {
			out = append(out, w.goodCandidate())
		} else {
			out = append(out, w.badCandidate(false, false))
		}
	}
	return out
}

// ConceptCandidatesHoldout emits train and test sets whose implausible
// negatives use *disjoint* constraint instantiations: the training side sees
// e.g. "sexy ... for baby" and "british korean ...", the test side "sexy ...
// for toddlers" and "european nordic ...". Surface memorization cannot solve
// the test side; gloss knowledge (baby/toddlers share "young children",
// regional styles share "tied to one tradition") can — the commonsense
// generalization the paper's knowledge injection targets (Section 5.2.2).
func (w *World) ConceptCandidatesHoldout(nTrain, nTest int) (train, test []Candidate) {
	emit := func(n int, holdout bool) []Candidate {
		out := make([]Candidate, 0, n)
		for len(out) < n {
			if len(out)%2 == 0 {
				out = append(out, w.goodCandidate())
			} else {
				out = append(out, w.badCandidate(true, holdout))
			}
		}
		return out
	}
	return emit(nTrain, false), emit(nTest, true)
}

// goodCandidate samples a frame phrase or builds a fresh plausible combo.
func (w *World) goodCandidate() Candidate {
	if w.rng.Intn(2) == 0 {
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		return Candidate{Tokens: append([]string(nil), f.Tokens...), Good: true}
	}
	// Fresh plausible pattern: "<attr> <leaf> for <audience|event>".
	for tries := 0; tries < 50; tries++ {
		leafID := w.randomLeaf()
		fam := w.FamilyOfLeaf[leafID]
		doms := familyAttributes[fam]
		attrID := w.randomPrimOf(doms[w.rng.Intn(len(doms))])
		var tailID int
		if w.rng.Intn(2) == 0 {
			tailID = w.randomPrimOf(Audience)
		} else {
			tailID = w.randomPrimOf(Event)
		}
		ids := []int{attrID, leafID, tailID}
		if okp, _ := w.Plausible(ids); !okp {
			continue
		}
		tokens := append([]string(nil), w.Primitives[attrID].Tokens...)
		tokens = append(tokens, w.Primitives[leafID].Tokens...)
		tokens = append(tokens, "for")
		tokens = append(tokens, w.Primitives[tailID].Tokens...)
		return Candidate{Tokens: tokens, Good: true}
	}
	f := w.Frames[w.rng.Intn(len(w.Frames))]
	return Candidate{Tokens: append([]string(nil), f.Tokens...), Good: true}
}

func (w *World) badCandidate(split, holdout bool) Candidate {
	switch w.rng.Intn(4) {
	case 0:
		return w.incoherentCandidate()
	case 1:
		if split {
			return w.implausibleSplitCandidate(holdout)
		}
		return w.implausibleCandidate()
	case 2:
		return w.nonsenseCandidate()
	default:
		return w.typoCandidate()
	}
}

// implausibleSplitCandidate builds implausible candidates from disjoint
// instantiation pools per split. The held-out words are gloss-bridgeable to
// their training counterparts.
func (w *World) implausibleSplitCandidate(holdout bool) Candidate {
	type stylePair struct{ a, b string }
	trainAud := []string{"kids", "baby"}
	testAud := []string{"toddlers"}
	trainStyles := []stylePair{{"british", "korean"}, {"korean", "british"}}
	testStyles := []stylePair{{"european", "nordic"}, {"nordic", "european"}}
	trainTimeLeaf := map[string][]string{"summer": {"coat", "parka"}, "winter": {"sandals"}}
	testTimeLeaf := map[string][]string{"summer": {"sweater", "snowboard", "gloves", "scarf"}, "winter": {"shorts", "kite"}}

	aud, styles, timeLeaf := trainAud, trainStyles, trainTimeLeaf
	if holdout {
		aud, styles, timeLeaf = testAud, testStyles, testTimeLeaf
	}
	switch w.rng.Intn(3) {
	case 0: // modifier/audience clash
		leaf := w.Primitives[w.randomLeaf()]
		tokens := []string{"sexy"}
		tokens = append(tokens, leaf.Tokens...)
		tokens = append(tokens, "for", aud[w.rng.Intn(len(aud))])
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	case 1: // conflicting regional styles
		p := styles[w.rng.Intn(len(styles))]
		leaf := w.Primitives[w.randomLeaf()]
		tokens := []string{p.a, p.b}
		tokens = append(tokens, leaf.Tokens...)
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	default: // time/category clash
		tms := []string{"summer", "winter"}
		tm := tms[w.rng.Intn(len(tms))]
		bads := timeLeaf[tm]
		leaf := bads[w.rng.Intn(len(bads))]
		tokens := []string{"casual", tm, leaf}
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	}
}

// incoherentCandidate scrambles a good phrase's word order ("for grandpa
// gifts christmas") — caught by language-model fluency.
func (w *World) incoherentCandidate() Candidate {
	g := w.goodCandidate()
	tokens := append([]string(nil), g.Tokens...)
	if len(tokens) < 2 {
		tokens = append(tokens, "for")
	}
	orig := strings.Join(tokens, " ")
	for tries := 0; tries < 20; tries++ {
		w.rng.Shuffle(len(tokens), func(i, j int) { tokens[i], tokens[j] = tokens[j], tokens[i] })
		if strings.Join(tokens, " ") != orig {
			break
		}
	}
	return Candidate{Tokens: tokens, Good: false, Reason: "incoherent"}
}

// implausibleCandidate builds a fluent phrase that violates a commonsense
// constraint — "sexy dress for baby", "warm sneakers for swimming",
// "british korean curtain", "summer parka".
func (w *World) implausibleCandidate() Candidate {
	switch w.rng.Intn(4) {
	case 0: // modifier/audience clash
		mods := []string{"sexy", "sexy", "giant"}
		mod := mods[w.rng.Intn(len(mods))]
		bads := incompatModifierAudience[mod]
		aud := bads[w.rng.Intn(len(bads))]
		leaf := w.Primitives[w.randomLeaf()]
		tokens := []string{mod}
		tokens = append(tokens, leaf.Tokens...)
		tokens = append(tokens, "for", aud)
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	case 1: // event/function clash
		evs := make([]string, 0, len(incompatEventFunction))
		for ev := range incompatEventFunction {
			evs = append(evs, ev)
		}
		sortStringsInPlace(evs)
		ev := evs[w.rng.Intn(len(evs))]
		fns := incompatEventFunction[ev]
		fn := fns[w.rng.Intn(len(fns))]
		leaf := w.Primitives[w.randomLeaf()]
		tokens := []string{fn}
		tokens = append(tokens, leaf.Tokens...)
		tokens = append(tokens, "for", ev)
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	case 2: // conflicting regional styles
		i := w.rng.Intn(len(regionalStyles))
		j := w.rng.Intn(len(regionalStyles))
		for j == i {
			j = w.rng.Intn(len(regionalStyles))
		}
		leaf := w.Primitives[w.randomLeaf()]
		tokens := []string{regionalStyles[i], regionalStyles[j]}
		tokens = append(tokens, leaf.Tokens...)
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	default: // time/category clash
		tms := []string{"summer", "winter"}
		tm := tms[w.rng.Intn(len(tms))]
		bads := incompatTimeLeaf[tm]
		leaf := bads[w.rng.Intn(len(bads))]
		tokens := []string{"casual", tm, leaf}
		return Candidate{Tokens: tokens, Good: false, Reason: "implausible"}
	}
}

// nonsenseCandidate emits a fluent-looking phrase with no shopping meaning.
func (w *World) nonsenseCandidate() Candidate {
	switch w.rng.Intn(3) {
	case 0:
		tokens := []string{colorWords[w.rng.Intn(len(colorWords))], fillerNouns[w.rng.Intn(len(fillerNouns))]}
		return Candidate{Tokens: tokens, Good: false, Reason: "nonsense"}
	case 1:
		tokens := []string{fillerNouns[w.rng.Intn(len(fillerNouns))], fillerVerbs[w.rng.Intn(len(fillerVerbs))], fillerNouns[w.rng.Intn(len(fillerNouns))]}
		return Candidate{Tokens: tokens, Good: false, Reason: "nonsense"}
	default:
		tokens := []string{fillerNouns[w.rng.Intn(len(fillerNouns))], fillerVerbs[w.rng.Intn(len(fillerVerbs))]}
		return Candidate{Tokens: tokens, Good: false, Reason: "nonsense"}
	}
}

// typoCandidate corrupts one word of a good phrase — a "correctness"
// violation caught by character-level features and word popularity.
func (w *World) typoCandidate() Candidate {
	g := w.goodCandidate()
	tokens := append([]string(nil), g.Tokens...)
	i := w.rng.Intn(len(tokens))
	tokens[i] = corruptWord(tokens[i], w.rng.Intn(3))
	return Candidate{Tokens: tokens, Good: false, Reason: "typo"}
}

func corruptWord(word string, mode int) string {
	r := []rune(word)
	switch {
	case mode == 0 && len(r) >= 3:
		r[1], r[2] = r[2], r[1]
		return string(r)
	case mode == 1 && len(r) >= 2:
		return string(r[:len(r)-1]) + "q" + string(r[len(r)-1:])
	default:
		return word + "x"
	}
}

func sortStringsInPlace(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// QuerySet returns n labeled evaluation queries for the coverage experiment
// (Section 7.1): each query is a rewritten coherent word sequence plus a
// flag for whether it expresses a scenario-style need (beyond CPV).
type CoverageQuery struct {
	Tokens   []string
	Scenario bool // needs-style query a CPV ontology cannot cover
}

// QuerySet emits the daily 2000-query sample of Section 7.1 (size n here).
// ~35% are CPV-style (category/property/brand), ~65% scenario-style; a
// fraction of scenario queries carry an out-of-vocabulary token to keep
// coverage below 100%.
func (w *World) QuerySet(n int) []CoverageQuery {
	out := make([]CoverageQuery, 0, n)
	oov := []string{"gizmo", "whatsit", "doohickey", "thingum"}
	for len(out) < n {
		r := w.rng.Float64()
		switch {
		case r < 0.25: // category / attribute
			leafID := w.randomLeaf()
			toks := append([]string(nil), w.Primitives[leafID].Tokens...)
			if w.rng.Intn(2) == 0 {
				fam := w.FamilyOfLeaf[leafID]
				doms := familyAttributes[fam]
				attr := w.randomPrimOf(doms[w.rng.Intn(len(doms))])
				toks = append(append([]string(nil), w.Primitives[attr].Tokens...), toks...)
			}
			out = append(out, CoverageQuery{Tokens: toks})
		case r < 0.35: // brand query
			b := w.randomPrimOf(Brand)
			toks := append([]string(nil), w.Primitives[b].Tokens...)
			toks = append(toks, w.Primitives[w.randomLeaf()].Tokens...)
			out = append(out, CoverageQuery{Tokens: toks})
		default: // scenario query
			f := w.Frames[w.rng.Intn(len(w.Frames))]
			toks := append([]string(nil), f.Tokens...)
			if w.rng.Float64() < 0.18 {
				toks = append(toks, oov[w.rng.Intn(len(oov))])
			}
			out = append(out, CoverageQuery{Tokens: toks, Scenario: true})
		}
	}
	return out
}
