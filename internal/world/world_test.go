package world

import (
	"strings"
	"testing"
)

func tinyWorld(t *testing.T) *World {
	t.Helper()
	return New(TinyConfig())
}

func TestWorldDeterminism(t *testing.T) {
	w1 := New(TinyConfig())
	w2 := New(TinyConfig())
	if len(w1.Primitives) != len(w2.Primitives) {
		t.Fatalf("primitive counts differ: %d vs %d", len(w1.Primitives), len(w2.Primitives))
	}
	for i := range w1.Primitives {
		if w1.Primitives[i].Name() != w2.Primitives[i].Name() {
			t.Fatalf("primitive %d differs: %q vs %q", i, w1.Primitives[i].Name(), w2.Primitives[i].Name())
		}
	}
	if len(w1.Items) != len(w2.Items) || len(w1.Frames) != len(w2.Frames) {
		t.Fatal("items/frames differ between identical seeds")
	}
	for i := range w1.Items {
		if strings.Join(w1.Items[i].Title, " ") != strings.Join(w2.Items[i].Title, " ") {
			t.Fatalf("item %d title differs", i)
		}
	}
}

func TestAllTwentyDomainsPopulated(t *testing.T) {
	w := tinyWorld(t)
	for _, d := range Domains {
		if len(w.ByDomain[d]) == 0 {
			t.Fatalf("domain %s has no primitives", d)
		}
	}
	if len(Domains) != 20 {
		t.Fatalf("paper defines 20 domains, got %d", len(Domains))
	}
}

func TestCategoryHierarchy(t *testing.T) {
	w := tinyWorld(t)
	coat := w.PrimByName(Category, "coat")
	if coat < 0 {
		t.Fatal("coat missing")
	}
	p := w.Prim(coat)
	if len(p.ClassPath) != 3 || p.ClassPath[0] != "clothing" || p.ClassPath[1] != "outerwear" {
		t.Fatalf("coat class path: got %v", p.ClassPath)
	}
	if len(p.Hypernyms) != 1 {
		t.Fatalf("coat should have one direct hypernym, got %v", p.Hypernyms)
	}
	hyper := w.Prim(p.Hypernyms[0])
	if hyper.Name() != "outerwear" {
		t.Fatalf("coat hypernym: got %q", hyper.Name())
	}
}

func TestCompoundConceptsHaveHypernyms(t *testing.T) {
	w := tinyWorld(t)
	found := false
	for _, id := range w.ByDomain[Category] {
		p := w.Prim(id)
		if len(p.Tokens) == 2 && len(p.Hypernyms) == 1 {
			hyper := w.Prim(p.Hypernyms[0])
			if hyper.Name() != p.Tokens[1] {
				t.Fatalf("compound %q should have hypernym %q, got %q", p.Name(), p.Tokens[1], hyper.Name())
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no compound category concepts generated")
	}
}

func TestHypernymPairsConsistent(t *testing.T) {
	w := tinyWorld(t)
	if len(w.HypernymPairs) == 0 {
		t.Fatal("no ground-truth hypernym pairs")
	}
	for _, pair := range w.HypernymPairs {
		hypo, hyper := w.Prim(pair[0]), w.Prim(pair[1])
		if hypo.Domain != Category || hyper.Domain != Category {
			t.Fatalf("hypernym pair outside Category: %v -> %v", hypo.Name(), hyper.Name())
		}
	}
}

func TestAmbiguousSurfaces(t *testing.T) {
	w := tinyWorld(t)
	doms := w.AmbiguousDomains("village")
	if len(doms) != 2 {
		t.Fatalf("village should be ambiguous between 2 domains, got %v", doms)
	}
	has := func(d Domain) bool {
		for _, x := range doms {
			if x == d {
				return true
			}
		}
		return false
	}
	if !has(Location) || !has(Style) {
		t.Fatalf("village should be Location+Style, got %v", doms)
	}
	if len(w.AmbiguousDomains("lavender")) != 2 {
		t.Fatal("lavender should be Color+Smell")
	}
}

func TestPlausibleOracle(t *testing.T) {
	w := tinyWorld(t)
	id := func(d Domain, s string) int {
		v := w.PrimByName(d, s)
		if v < 0 {
			t.Fatalf("missing primitive %s:%s", d, s)
		}
		return v
	}
	cases := []struct {
		prims []int
		want  bool
	}{
		{[]int{id(Modifier, "sexy"), id(Audience, "baby")}, false},
		{[]int{id(Modifier, "sexy"), id(Audience, "women")}, true},
		{[]int{id(Style, "british"), id(Style, "korean")}, false},
		{[]int{id(Style, "british"), id(Style, "casual")}, true},
		{[]int{id(Function, "warm"), id(Event, "swimming")}, false},
		{[]int{id(Function, "warm"), id(Event, "skiing")}, true},
		{[]int{id(Event, "bathing"), id(Location, "classroom")}, false},
		{[]int{id(Event, "barbecue"), id(Location, "outdoor")}, true},
		{[]int{id(Time, "summer"), id(Category, "coat")}, false},
		{[]int{id(Time, "winter"), id(Category, "coat")}, true},
	}
	for i, tc := range cases {
		got, reason := w.Plausible(tc.prims)
		if got != tc.want {
			t.Fatalf("case %d: Plausible=%v (%s), want %v", i, got, reason, tc.want)
		}
	}
}

func TestFramesWellFormed(t *testing.T) {
	w := tinyWorld(t)
	if len(w.Frames) < len(handFrames) {
		t.Fatalf("expected at least %d frames, got %d", len(handFrames), len(w.Frames))
	}
	for _, f := range w.Frames {
		if len(f.Required) == 0 {
			t.Fatalf("frame %q has no requirements", f.Name())
		}
		if len(f.Spans) != len(f.Primitives) {
			t.Fatalf("frame %q spans/primitives mismatch", f.Name())
		}
		for i, sp := range f.Spans {
			p := w.Prim(f.Primitives[i])
			got := strings.Join(f.Tokens[sp.Start:sp.End], " ")
			if got != p.Name() {
				t.Fatalf("frame %q span %d covers %q, primitive is %q", f.Name(), i, got, p.Name())
			}
			if sp.Label != string(p.Domain) {
				t.Fatalf("frame %q span label %q != domain %q", f.Name(), sp.Label, p.Domain)
			}
		}
	}
}

func TestSemanticDriftPlanted(t *testing.T) {
	w := tinyWorld(t)
	// The mid-autumn frame must require mooncake, whose name shares no
	// token with the frame phrase — the Section 6 motivating case.
	var maf *Frame
	for _, f := range w.Frames {
		if f.Name() == "mid-autumn festival gifts" {
			maf = f
			break
		}
	}
	if maf == nil {
		t.Fatal("mid-autumn festival frame missing")
	}
	mooncake := w.LeafByName["mooncake"]
	found := false
	for _, r := range maf.Required {
		if r == mooncake {
			found = true
		}
	}
	if !found {
		t.Fatal("mid-autumn frame should require mooncake")
	}
	for _, tok := range maf.Tokens {
		if tok == "mooncake" {
			t.Fatal("drift case should not contain the required token")
		}
	}
	// And the gloss must mention it (the knowledge bridge).
	tm := w.PrimByName(Time, "mid-autumn festival")
	if !strings.Contains(w.Glosses[tm], "mooncake") {
		t.Fatalf("mid-autumn gloss should mention mooncake: %q", w.Glosses[tm])
	}
}

func TestItemsWellFormed(t *testing.T) {
	w := tinyWorld(t)
	if len(w.Items) != len(w.Leaves)*w.Cfg.ItemsPerLeaf {
		t.Fatalf("item count: got %d want %d", len(w.Items), len(w.Leaves)*w.Cfg.ItemsPerLeaf)
	}
	for _, item := range w.Items {
		if len(item.Title) == 0 {
			t.Fatalf("item %d has empty title", item.ID)
		}
		leafName := w.Prim(item.Leaf).Tokens
		tail := item.Title[len(item.Title)-len(leafName):]
		if strings.Join(tail, " ") != strings.Join(leafName, " ") {
			t.Fatalf("item title should end with category: %v vs %v", item.Title, leafName)
		}
		for _, a := range item.Attrs {
			d := w.Prim(a).Domain
			okd := false
			for _, fd := range familyAttributes[item.Family] {
				if fd == d {
					okd = true
				}
			}
			if !okd {
				t.Fatalf("item %d carries attr domain %s not allowed for family %s", item.ID, d, item.Family)
			}
		}
	}
}

func TestFrameItemAssociation(t *testing.T) {
	w := tinyWorld(t)
	for _, f := range w.Frames[:10] {
		items := w.FrameItems(f)
		for _, itemID := range items {
			item := w.Items[itemID]
			okLeaf := false
			for _, r := range f.Required {
				if r == item.Leaf {
					okLeaf = true
				}
			}
			if !okLeaf {
				t.Fatalf("frame %q associated with item of wrong category", f.Name())
			}
		}
		// Reverse index agrees.
		for _, itemID := range items {
			frames := w.ItemFrames(itemID)
			found := false
			for _, fid := range frames {
				if fid == f.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("ItemFrames missing frame %q for item %d", f.Name(), itemID)
			}
		}
	}
}

func TestAudienceConstraintFiltersItems(t *testing.T) {
	w := tinyWorld(t)
	var kidFrame *Frame
	for _, f := range w.Frames {
		if f.Audience >= 0 && w.Prim(f.Audience).Name() == "kids" {
			kidFrame = f
			break
		}
	}
	if kidFrame == nil {
		t.Skip("no kids frame in tiny world")
	}
	for _, itemID := range w.FrameItems(kidFrame) {
		aud := w.itemAudience(w.Items[itemID])
		if aud >= 0 && w.Prim(aud).Name() != "kids" {
			t.Fatalf("kids frame matched item with audience %q", w.Prim(aud).Name())
		}
	}
}

func TestCorpusGeneration(t *testing.T) {
	w := tinyWorld(t)
	c := w.GenCorpus(50, 50, 50)
	if len(c.Titles) != len(w.Items) {
		t.Fatalf("titles: got %d want %d", len(c.Titles), len(w.Items))
	}
	if len(c.Queries) != 50 || len(c.Reviews) != 50 || len(c.Guides) != 50 {
		t.Fatal("corpus sizes wrong")
	}
	if c.Sentences() != len(c.All()) {
		t.Fatal("Sentences and All disagree")
	}
	for _, s := range c.All() {
		if len(s) == 0 {
			t.Fatal("empty sentence in corpus")
		}
	}
}

func TestGuideContainsHearstPatterns(t *testing.T) {
	w := tinyWorld(t)
	c := w.GenCorpus(0, 0, 200)
	sawSuchAs, sawKindOf := false, false
	for _, g := range c.Guides {
		s := strings.Join(g, " ")
		if strings.Contains(s, "such as") {
			sawSuchAs = true
		}
		if strings.Contains(s, "is a kind of") {
			sawKindOf = true
		}
	}
	if !sawSuchAs || !sawKindOf {
		t.Fatal("guides should contain Hearst patterns")
	}
}

func TestGlossesCoverAllPrimitives(t *testing.T) {
	w := tinyWorld(t)
	for _, p := range w.Primitives {
		g, ok := w.Glosses[p.ID]
		if !ok || g == "" {
			t.Fatalf("primitive %q has no gloss", p.Name())
		}
	}
	// Event glosses must name required categories.
	bb := w.PrimByName(Event, "barbecue")
	if !strings.Contains(w.Glosses[bb], "grill") {
		t.Fatalf("barbecue gloss should mention grill: %q", w.Glosses[bb])
	}
}

func TestConceptCandidatesBalancedAndLabeled(t *testing.T) {
	w := tinyWorld(t)
	cands := w.ConceptCandidates(200)
	good, bad := 0, 0
	reasons := make(map[string]int)
	for _, c := range cands {
		if len(c.Tokens) == 0 {
			t.Fatal("empty candidate")
		}
		if c.Good {
			good++
			if c.Reason != "" {
				t.Fatal("good candidate with a reason")
			}
		} else {
			bad++
			reasons[c.Reason]++
		}
	}
	if good == 0 || bad == 0 {
		t.Fatalf("unbalanced: %d good %d bad", good, bad)
	}
	for _, r := range []string{"incoherent", "implausible", "nonsense", "typo"} {
		if reasons[r] == 0 {
			t.Fatalf("no %q negatives generated: %v", r, reasons)
		}
	}
}

func TestImplausibleCandidatesVioateOracle(t *testing.T) {
	w := tinyWorld(t)
	checked := 0
	for i := 0; i < 500 && checked < 20; i++ {
		c := w.implausibleCandidate()
		// Map tokens back to primitives where possible and verify the
		// oracle rejects the combination.
		var prims []int
		joined := strings.Join(c.Tokens, " ")
		for _, p := range w.Primitives {
			name := p.Name()
			if name == "" {
				continue
			}
			if strings.Contains(" "+joined+" ", " "+name+" ") {
				prims = append(prims, p.ID)
			}
		}
		okp, _ := w.Plausible(prims)
		if okp {
			t.Fatalf("implausible candidate %q passed the oracle", joined)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no implausible candidates checked")
	}
}

func TestClickLogSessions(t *testing.T) {
	w := tinyWorld(t)
	sessions := w.ClickLog(30)
	if len(sessions) != 30 {
		t.Fatalf("sessions: got %d", len(sessions))
	}
	for _, s := range sessions {
		if len(s.Viewed) == 0 || len(s.Clicked) == 0 {
			t.Fatal("session without views or clicks")
		}
		f := w.Frames[s.Frame]
		// Views are always drawn from the latent frame's items.
		assoc := make(map[int]bool)
		for _, id := range w.FrameItems(f) {
			assoc[id] = true
		}
		for _, v := range s.Viewed {
			if !assoc[v] {
				t.Fatalf("viewed item %d outside latent frame %q", v, f.Name())
			}
		}
	}
}

func TestMatchingPairs(t *testing.T) {
	w := tinyWorld(t)
	pairs := w.MatchingPairs(100, 100)
	pos, neg := 0, 0
	seen := make(map[[2]int]bool)
	for _, p := range pairs {
		key := [2]int{p.Frame, p.Item}
		if seen[key] {
			t.Fatal("duplicate pair")
		}
		seen[key] = true
		if p.Label {
			pos++
			if !w.isAssociated(w.Frames[p.Frame], p.Item) {
				t.Fatal("positive pair not actually associated")
			}
		} else {
			neg++
			if w.isAssociated(w.Frames[p.Frame], p.Item) {
				t.Fatal("negative pair actually associated")
			}
		}
	}
	if pos == 0 || neg != 100 {
		t.Fatalf("pos=%d neg=%d", pos, neg)
	}
}

func TestQuerySetMixture(t *testing.T) {
	w := tinyWorld(t)
	qs := w.QuerySet(400)
	scen := 0
	for _, q := range qs {
		if len(q.Tokens) == 0 {
			t.Fatal("empty query")
		}
		if q.Scenario {
			scen++
		}
	}
	frac := float64(scen) / float64(len(qs))
	if frac < 0.5 || frac > 0.8 {
		t.Fatalf("scenario fraction %v outside expected band", frac)
	}
}

func TestCorruptWordChanges(t *testing.T) {
	for mode := 0; mode < 3; mode++ {
		if corruptWord("sweater", mode) == "sweater" {
			t.Fatalf("mode %d did not corrupt", mode)
		}
	}
	if corruptWord("ab", 0) == "ab" {
		t.Fatal("short word fallback should still corrupt")
	}
}
