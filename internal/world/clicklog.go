package world

// Session is one simulated user shopping session: the user has an
// (unobserved) scenario need, views some of its items, and clicks others.
// Click logs are the supervision source for concept-item matching
// (Section 7.6, "user click logs of the running application") and the
// replay data for the recommendation experiments (Section 8.2).
type Session struct {
	User    int
	Frame   int   // the latent need
	Viewed  []int // item IDs the user browsed (triggers)
	Clicked []int // item IDs the user clicked afterwards
}

// ClickLog simulates n sessions. A small noise rate injects clicks outside
// the latent scenario so models cannot rely on perfectly clean labels.
func (w *World) ClickLog(n int) []Session {
	out := make([]Session, 0, n)
	for len(out) < n {
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		assoc := w.FrameItems(f)
		if len(assoc) < 4 {
			continue
		}
		perm := w.rng.Perm(len(assoc))
		nView := 2 + w.rng.Intn(2)
		nClick := 2 + w.rng.Intn(3)
		if nView+nClick > len(assoc) {
			nView = len(assoc) / 2
			nClick = len(assoc) - nView
		}
		s := Session{User: len(out), Frame: f.ID}
		for _, pi := range perm[:nView] {
			s.Viewed = append(s.Viewed, assoc[pi])
		}
		for _, pi := range perm[nView : nView+nClick] {
			item := assoc[pi]
			if w.rng.Float64() < 0.05 { // noise click
				item = w.Items[w.rng.Intn(len(w.Items))].ID
			}
			s.Clicked = append(s.Clicked, item)
		}
		out = append(out, s)
	}
	return out
}

// MatchingPair is one labeled (concept, item) example for the semantic
// matching task of Section 6.
type MatchingPair struct {
	Frame int
	Item  int
	Label bool
}

// MatchingPairs builds a labeled dataset: positives from ground-truth
// frame-item association, negatives by random mismatch. The returned set is
// deduplicated and deterministic for the world's seed.
func (w *World) MatchingPairs(nPos, nNeg int) []MatchingPair {
	seen := make(map[[2]int]bool)
	var out []MatchingPair
	for len(out) < nPos {
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		assoc := w.FrameItems(f)
		if len(assoc) == 0 {
			continue
		}
		item := assoc[w.rng.Intn(len(assoc))]
		key := [2]int{f.ID, item}
		if seen[key] {
			// Allow saturation on tiny worlds.
			if len(seen) >= w.maxPairs() {
				break
			}
			continue
		}
		seen[key] = true
		out = append(out, MatchingPair{Frame: f.ID, Item: item, Label: true})
	}
	negs := 0
	for negs < nNeg {
		f := w.Frames[w.rng.Intn(len(w.Frames))]
		item := w.Items[w.rng.Intn(len(w.Items))]
		if w.isAssociated(f, item.ID) {
			continue
		}
		key := [2]int{f.ID, item.ID}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, MatchingPair{Frame: f.ID, Item: item.ID, Label: false})
		negs++
	}
	return out
}

func (w *World) maxPairs() int {
	total := 0
	for _, f := range w.Frames {
		total += len(w.FrameItems(f))
	}
	return total
}

func (w *World) isAssociated(f *Frame, itemID int) bool {
	item := w.Items[itemID]
	for _, leafID := range f.Required {
		if leafID == item.Leaf {
			if f.Audience >= 0 {
				if aud := w.itemAudience(item); aud >= 0 && aud != f.Audience {
					return false
				}
			}
			return true
		}
	}
	return false
}
