package world

import "sort"

// buildItems synthesizes the item layer: for every base category,
// Cfg.ItemsPerLeaf items with a brand and property values drawn from the
// domains the category's family plausibly carries.
func (w *World) buildItems() {
	brands := w.ByDomain[Brand]
	flat := flatDomainWords()
	_ = flat
	for _, leafID := range w.Leaves {
		fam := w.FamilyOfLeaf[leafID]
		attrDomains := familyAttributes[fam]
		for k := 0; k < w.Cfg.ItemsPerLeaf; k++ {
			item := &Item{
				ID:     len(w.Items),
				Leaf:   leafID,
				Family: fam,
				Brand:  -1,
			}
			if len(brands) > 0 && w.rng.Float64() < 0.8 {
				item.Brand = brands[w.rng.Intn(len(brands))]
			}
			// Pick 2-3 attribute values from distinct compatible domains.
			nAttr := 2 + w.rng.Intn(2)
			perm := w.rng.Perm(len(attrDomains))
			for _, di := range perm {
				if len(item.Attrs) >= nAttr {
					break
				}
				pool := w.ByDomain[attrDomains[di]]
				if len(pool) == 0 {
					continue
				}
				item.Attrs = append(item.Attrs, pool[w.rng.Intn(len(pool))])
			}
			item.Title = w.composeTitle(item)
			w.Items = append(w.Items, item)
			w.ItemsByLeaf[leafID] = append(w.ItemsByLeaf[leafID], item.ID)
		}
	}
}

// composeTitle renders an item title the way merchants do: brand first,
// attributes, then the category noun, occasionally a trailing quantity word.
func (w *World) composeTitle(item *Item) []string {
	var title []string
	if item.Brand >= 0 {
		title = append(title, w.Primitives[item.Brand].Tokens...)
	}
	attrs := append([]int(nil), item.Attrs...)
	w.rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	for _, a := range attrs {
		title = append(title, w.Primitives[a].Tokens...)
	}
	title = append(title, w.Primitives[item.Leaf].Tokens...)
	return title
}

// ItemHasAttr reports whether the item carries the given primitive as an
// attribute (or leaf or brand).
func (w *World) ItemHasAttr(item *Item, primID int) bool {
	if item.Leaf == primID || item.Brand == primID {
		return true
	}
	for _, a := range item.Attrs {
		if a == primID {
			return true
		}
	}
	return false
}

// itemAudience returns the item's audience attribute primitive, or -1.
func (w *World) itemAudience(item *Item) int {
	for _, a := range item.Attrs {
		if w.Primitives[a].Domain == Audience {
			return a
		}
	}
	return -1
}

// FrameItems returns the ground-truth item IDs associated with a frame: the
// item's base category is required by the scenario and, when the frame has
// an audience constraint, the item either targets that audience or is
// audience-neutral.
func (w *World) FrameItems(f *Frame) []int {
	var out []int
	for _, leafID := range f.Required {
		for _, itemID := range w.ItemsByLeaf[leafID] {
			item := w.Items[itemID]
			if f.Audience >= 0 {
				if aud := w.itemAudience(item); aud >= 0 && aud != f.Audience {
					continue
				}
			}
			out = append(out, itemID)
		}
	}
	sort.Ints(out)
	return out
}

// ItemFrames returns the ground-truth frames an item belongs to.
func (w *World) ItemFrames(itemID int) []int {
	var out []int
	item := w.Items[itemID]
	for _, f := range w.Frames {
		required := false
		for _, leafID := range f.Required {
			if leafID == item.Leaf {
				required = true
				break
			}
		}
		if !required {
			continue
		}
		if f.Audience >= 0 {
			if aud := w.itemAudience(item); aud >= 0 && aud != f.Audience {
				continue
			}
		}
		out = append(out, f.ID)
	}
	return out
}

// ItemPrimitives returns the ground-truth primitive concepts of an item:
// its base category, brand, and attribute values.
func (w *World) ItemPrimitives(itemID int) []int {
	item := w.Items[itemID]
	out := []int{item.Leaf}
	if item.Brand >= 0 {
		out = append(out, item.Brand)
	}
	out = append(out, item.Attrs...)
	return out
}
