// A strict parser for the Prometheus text exposition format. It is
// deliberately pickier than a scraping server needs to be: every sample
// must belong to a HELP+TYPE-announced family, families must not
// interleave, histogram `le` bounds must be strictly increasing with
// non-decreasing cumulative counts and a +Inf bucket equal to _count.
// Tests use it to pin the renderer's format; cocoload uses it to
// reconstruct the server-side latency histograms for the
// client-vs-server cross-check (exactly, because the renderer emits
// bounds from the shared Hist bucket layout).
package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParsedSample is one exposition line: full sample name (including
// _bucket/_sum/_count suffixes), its labels in source order, and value.
type ParsedSample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// Label returns the sample's value for a label key ("" when absent).
func (s *ParsedSample) Label(key string) string {
	for _, kv := range s.Labels {
		if kv[0] == key {
			return kv[1]
		}
	}
	return ""
}

// matches reports whether the sample carries every given key=value pair.
func (s *ParsedSample) matches(pairs [][2]string) bool {
	for _, want := range pairs {
		if s.Label(want[0]) != want[1] {
			return false
		}
	}
	return true
}

// ParsedFamily is one HELP/TYPE-announced metric family and its samples.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Parsed is a full scrape.
type Parsed struct {
	Families []*ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family, nil when absent.
func (p *Parsed) Family(name string) *ParsedFamily { return p.byName[name] }

// Value returns the value of the series name{pairs...} for a counter or
// gauge family; ok is false when the family or series is missing. pairs
// are alternating label key, value.
func (p *Parsed) Value(name string, pairs ...string) (float64, bool) {
	f := p.byName[name]
	if f == nil {
		return 0, false
	}
	want := labelPairs(pairs)
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name == name && s.matches(want) && len(s.Labels) == len(want) {
			return s.Value, true
		}
	}
	return 0, false
}

func labelPairs(pairs []string) [][2]string {
	out := make([][2]string, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, [2]string{pairs[i], pairs[i+1]})
	}
	return out
}

// HistogramSnapshot reconstructs the histogram series name{pairs...} onto
// the shared Hist bucket layout. Every `le` bound the renderer emits is a
// bucket upper bound of that layout, so the reconstruction is exact: the
// returned snapshot quantiles agree with the serving process's own Hist
// to the bucket. Bounds that do not land on the layout are an error —
// that is the cross-check catching a layout drift, not a condition to
// paper over. MaxUS is 0 (unknowable from a scrape).
func (p *Parsed) HistogramSnapshot(name string, pairs ...string) (HistSnapshot, error) {
	var snap HistSnapshot
	f := p.byName[name]
	if f == nil {
		return snap, fmt.Errorf("obs: no histogram family %q in scrape", name)
	}
	if f.Type != "histogram" {
		return snap, fmt.Errorf("obs: family %q has type %s, want histogram", name, f.Type)
	}
	want := labelPairs(pairs)
	var (
		prevCum  uint64
		prevIdx  = -1
		seenInf  bool
		count    uint64
		seenAny  bool
		sumSecs  float64
		seenSum  bool
		seenCnt  bool
		infCount uint64
	)
	for i := range f.Samples {
		s := &f.Samples[i]
		if !s.matches(want) {
			continue
		}
		switch s.Name {
		case name + "_sum":
			sumSecs, seenSum = s.Value, true
		case name + "_count":
			count, seenCnt = uint64(s.Value), true
		case name + "_bucket":
			seenAny = true
			le := s.Label("le")
			cum := uint64(s.Value)
			if le == "+Inf" {
				seenInf, infCount = true, cum
				continue
			}
			sec, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return snap, fmt.Errorf("obs: %s bad le %q: %v", name, le, err)
			}
			us := uint64(math.Round(sec * 1e6))
			idx := histIndex(us)
			if histUpper(idx) != us {
				return snap, fmt.Errorf("obs: %s le %q (%dµs) is not a bucket bound of the shared layout", name, le, us)
			}
			if idx <= prevIdx {
				return snap, fmt.Errorf("obs: %s le bounds not increasing at %q", name, le)
			}
			if cum < prevCum {
				return snap, fmt.Errorf("obs: %s cumulative count regressed at le=%q", name, le)
			}
			snap.Counts[idx] = cum - prevCum
			snap.Total += cum - prevCum
			prevCum, prevIdx = cum, idx
		}
	}
	if !seenAny && !seenInf {
		return snap, fmt.Errorf("obs: histogram %q%v has no buckets in scrape", name, pairs)
	}
	if !seenInf || !seenSum || !seenCnt {
		return snap, fmt.Errorf("obs: histogram %q missing +Inf/_sum/_count", name)
	}
	if infCount < prevCum {
		return snap, fmt.Errorf("obs: histogram %q +Inf bucket %d below last bucket %d", name, infCount, prevCum)
	}
	// Observations past the last finite bound (saturated top buckets) fold
	// into the final slot so Total matches +Inf.
	if extra := infCount - prevCum; extra > 0 {
		snap.Counts[histBuckets-1] += extra
		snap.Total += extra
	}
	if snap.Total != count {
		return snap, fmt.Errorf("obs: histogram %q count %d != +Inf bucket %d", name, count, snap.Total)
	}
	snap.SumUS = uint64(math.Round(sumSecs * 1e6))
	return snap, nil
}

// ParseText parses and validates one exposition payload. Violations of
// the format — or of the invariants the renderer promises (HELP and TYPE
// before samples, no family interleaving, monotone cumulative buckets,
// +Inf == _count) — are errors.
func ParseText(b []byte) (*Parsed, error) {
	p := &Parsed{byName: make(map[string]*ParsedFamily)}
	var cur *ParsedFamily
	help := make(map[string]string)
	typed := make(map[string]string)
	closed := make(map[string]bool) // families whose sample block has ended
	seenSeries := make(map[string]bool)
	lineNo := 0
	rest := string(b)
	for len(rest) > 0 {
		lineNo++
		line := rest
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, text, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if kind == "" {
				continue // plain comment
			}
			if cur != nil && cur.Name != name {
				closed[cur.Name] = true
				cur = nil
			}
			switch kind {
			case "HELP":
				if _, dup := help[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				help[name] = text
			case "TYPE":
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch text {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, text, name)
				}
				typed[name] = text
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		famName := familyOf(sample.Name, typed)
		if famName == "" {
			return nil, fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, sample.Name)
		}
		if _, ok := help[famName]; !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding HELP", lineNo, sample.Name)
		}
		if cur == nil || cur.Name != famName {
			if cur != nil {
				closed[cur.Name] = true
			}
			if closed[famName] {
				return nil, fmt.Errorf("line %d: family %s interleaved", lineNo, famName)
			}
			cur = p.byName[famName]
			if cur == nil {
				cur = &ParsedFamily{Name: famName, Help: help[famName], Type: typed[famName]}
				p.Families = append(p.Families, cur)
				p.byName[famName] = cur
			}
		}
		key := seriesKey(sample)
		if seenSeries[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
		if cur.Type == "counter" && sample.Value < 0 {
			return nil, fmt.Errorf("line %d: counter %s is negative", lineNo, sample.Name)
		}
		cur.Samples = append(cur.Samples, sample)
	}
	for _, f := range p.Families {
		if f.Type == "histogram" {
			if err := validateHistFamily(f); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// validateHistFamily checks the bucket invariants of every series in a
// histogram family (grouped by its non-le label set).
func validateHistFamily(f *ParsedFamily) error {
	type state struct {
		lastLe  float64
		lastCum float64
		haveInf bool
		inf     float64
		count   float64
		haveCnt bool
	}
	states := make(map[string]*state)
	get := func(s *ParsedSample) *state {
		var b strings.Builder
		for _, kv := range s.Labels {
			if kv[0] == "le" {
				continue
			}
			b.WriteString(kv[0])
			b.WriteByte('=')
			b.WriteString(kv[1])
			b.WriteByte(';')
		}
		k := b.String()
		st := states[k]
		if st == nil {
			st = &state{lastLe: math.Inf(-1), lastCum: -1}
			states[k] = st
		}
		return st
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		st := get(s)
		switch s.Name {
		case f.Name + "_bucket":
			leStr := s.Label("le")
			if leStr == "" {
				return fmt.Errorf("obs: %s bucket without le label", f.Name)
			}
			le := inf
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("obs: %s bad le %q", f.Name, leStr)
				}
				le = v
			}
			if le <= st.lastLe {
				return fmt.Errorf("obs: %s le bounds not strictly increasing at %q", f.Name, leStr)
			}
			if st.lastCum >= 0 && s.Value < st.lastCum {
				return fmt.Errorf("obs: %s cumulative bucket regressed at le=%q", f.Name, leStr)
			}
			st.lastLe, st.lastCum = le, s.Value
			if math.IsInf(le, 1) {
				st.haveInf, st.inf = true, s.Value
			}
		case f.Name + "_count":
			st.count, st.haveCnt = s.Value, true
		case f.Name + "_sum":
		default:
			return fmt.Errorf("obs: unexpected sample %s in histogram family %s", s.Name, f.Name)
		}
	}
	for k, st := range states {
		if !st.haveInf {
			return fmt.Errorf("obs: %s{%s} missing le=\"+Inf\" bucket", f.Name, k)
		}
		if !st.haveCnt {
			return fmt.Errorf("obs: %s{%s} missing _count", f.Name, k)
		}
		if st.inf != st.count {
			return fmt.Errorf("obs: %s{%s} +Inf bucket %v != count %v", f.Name, k, st.inf, st.count)
		}
	}
	return nil
}

// familyOf maps a sample name to its announced family: exact match, or
// the histogram/summary suffix forms.
func familyOf(sample string, typed map[string]string) string {
	if _, ok := typed[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(sample, suf)
		if !found {
			continue
		}
		if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return ""
}

func seriesKey(s ParsedSample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for _, kv := range s.Labels {
		b.WriteString(kv[0])
		b.WriteByte('=')
		b.WriteString(kv[1])
		b.WriteByte(',')
	}
	b.WriteByte('}')
	return b.String()
}

// parseComment handles `# HELP name text`, `# TYPE name type`, and plain
// comments (returned with kind "").
func parseComment(line string) (kind, name, text string, err error) {
	body := strings.TrimPrefix(line, "#")
	if !strings.HasPrefix(body, " ") {
		return "", "", "", nil
	}
	body = body[1:]
	switch {
	case strings.HasPrefix(body, "HELP "):
		rest := body[len("HELP "):]
		name, text, _ = strings.Cut(rest, " ")
		if !validMetricName(name) {
			return "", "", "", fmt.Errorf("bad HELP metric name %q", name)
		}
		return "HELP", name, unescapeHelp(text), nil
	case strings.HasPrefix(body, "TYPE "):
		rest := body[len("TYPE "):]
		var ok bool
		name, text, ok = strings.Cut(rest, " ")
		if !ok || !validMetricName(name) {
			return "", "", "", fmt.Errorf("bad TYPE line %q", line)
		}
		return "TYPE", name, text, nil
	}
	return "", "", "", nil
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// parseSampleLine parses `name{labels} value` (no timestamps: the
// renderer never emits them, so the strict parser rejects them).
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("bad sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	valStr := strings.TrimPrefix(rest, " ")
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("bad (or timestamped) value in %q", line)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return inf, nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

func isNameChar(c byte, first bool) bool {
	alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
	return alpha || (!first && c >= '0' && c <= '9')
}

// parseLabels parses `{k="v",...}` returning the byte length consumed.
func parseLabels(s string) (int, [][2]string, error) {
	var labels [][2]string
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		key := s[start:i]
		if !validLabelName(key) {
			return 0, nil, fmt.Errorf("bad label name %q", key)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s value not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value for %s", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in label %s", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in label %s", s[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, [2]string{key, val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		} else if i >= len(s) || s[i] != '}' {
			return 0, nil, fmt.Errorf("unterminated label set after %s", key)
		}
	}
}
