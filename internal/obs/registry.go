// A dependency-free Prometheus text-format (version 0.0.4) metric
// registry. Metrics are registered once at startup with fixed label
// sets — label values never derive from request data, which is the
// whole cardinality budget — and rendered into a pooled buffer at
// scrape time. Counters and histograms on the request path are pure
// atomics; gauges and scrape-time counters are callback-backed so their
// cost is paid only when a scraper asks.
package obs

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var inf = math.Inf(1)

// Counter is a monotone counter; Inc/Add are single atomic adds.
type Counter struct{ c atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.c.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.c.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one label-set instance of a family. Exactly one of the value
// sources is set, matching the family's kind.
type series struct {
	labels    string // pre-rendered `a="b",c="d"` (no braces), "" for none
	counter   *Counter
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Hist
}

type family struct {
	name, help string
	kind       metricKind
	series     []*series
	labelSets  map[string]bool // duplicate-registration guard
}

// Registry holds metric families and renders them in registration order.
// Registration is expected at startup; it is mutex-guarded anyway so a
// late registration cannot race a scrape.
type Registry struct {
	mu   sync.RWMutex
	fams []*family
	byNm map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNm: make(map[string]*family)}
}

// NewCounter registers and returns a request-path counter. Labels are
// alternating key, value pairs fixed for the series' lifetime. Invalid
// names, kind conflicts, and duplicate label sets panic: registration
// runs at startup and a bad registration is a programming error.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{counter: c}, labels)
	return c
}

// NewCounterFunc registers a counter whose value is read at scrape time —
// for monotone counts that already live elsewhere (cache hit totals, gate
// admission counts) and must not be double-tracked.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64, labels ...string) {
	r.register(name, help, kindCounter, &series{counterFn: fn}, labels)
}

// NewGaugeFunc registers a gauge sampled at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, &series{gaugeFn: fn}, labels)
}

// NewHistogram registers and returns a request-path latency histogram;
// Record on the returned Hist is two atomic adds. The exposition renders
// cumulative `le` buckets in seconds — only the non-empty buckets plus
// the mandatory +Inf, so payload size tracks the spread of observed
// latencies (tens of buckets in practice) rather than the 512-slot
// layout.
func (r *Registry) NewHistogram(name, help string, labels ...string) *Hist {
	h := &Hist{}
	r.register(name, help, kindHistogram, &series{hist: h}, labels)
	return h
}

func (r *Registry) register(name, help string, kind metricKind, s *series, labels []string) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list for " + name)
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) || labels[i] == "le" {
			panic("obs: invalid label name " + strconv.Quote(labels[i]) + " on " + name)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	s.labels = b.String()

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byNm[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, labelSets: make(map[string]bool)}
		r.fams = append(r.fams, f)
		r.byNm[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered as a different type")
	}
	if f.labelSets[s.labels] {
		panic("obs: duplicate series " + name + "{" + s.labels + "}")
	}
	f.labelSets[s.labels] = true
	f.series = append(f.series, s)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// escapeLabelValue applies the exposition format's label escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line's free text.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// AppendText renders the registry in exposition format, appending to buf.
// Families render in registration order, series in registration order
// within a family, so successive scrapes diff cleanly.
func (r *Registry) AppendText(buf []byte) []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				v := uint64(0)
				if s.counter != nil {
					v = s.counter.Value()
				} else {
					v = s.counterFn()
				}
				buf = appendSample(buf, f.name, s.labels, "")
				buf = strconv.AppendUint(buf, v, 10)
				buf = append(buf, '\n')
			case kindGauge:
				buf = appendSample(buf, f.name, s.labels, "")
				buf = appendFloat(buf, s.gaugeFn())
				buf = append(buf, '\n')
			case kindHistogram:
				buf = appendHist(buf, f.name, s.labels, s.hist)
			}
		}
	}
	return buf
}

// appendSample writes `name{labels}` + a space (no value); le, when
// non-empty, is an extra pre-escaped label value for histogram buckets.
func appendSample(buf []byte, name, labels, le string) []byte {
	buf = append(buf, name...)
	if labels != "" || le != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if le != "" {
			if labels != "" {
				buf = append(buf, ',')
			}
			buf = append(buf, `le="`...)
			buf = append(buf, le...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	return buf
}

func appendFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// leStrings caches the rendered `le` value of every bucket upper bound
// (computed once; bounds are fixed for the process lifetime).
var leStrings = func() [histBuckets]string {
	var a [histBuckets]string
	for i := range a {
		us := histUpper(i)
		if us == ^uint64(0) {
			a[i] = "+Inf"
			continue
		}
		a[i] = strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
	}
	return a
}()

// appendHist renders one histogram series: cumulative non-empty buckets,
// the mandatory +Inf bucket, _sum (seconds), and _count. The counts come
// from one Snapshot, so the rendered series is internally consistent
// (+Inf == _count) no matter how hard Record is hammering concurrently.
func appendHist(buf []byte, name, labels string, h *Hist) []byte {
	snap := h.Snapshot()
	var cum uint64
	bucket := name + "_bucket"
	for i := 0; i < histBuckets; i++ {
		if snap.Counts[i] == 0 {
			continue
		}
		cum += snap.Counts[i]
		if leStrings[i] == "+Inf" {
			// Saturated top buckets fold into the +Inf line below.
			continue
		}
		buf = appendSample(buf, bucket, labels, leStrings[i])
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = appendSample(buf, bucket, labels, "+Inf")
	buf = strconv.AppendUint(buf, snap.Total, 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendFloat(buf, float64(snap.SumUS)/1e6)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, snap.Total, 10)
	buf = append(buf, '\n')
	return buf
}

// scrapeBufs pools exposition buffers across scrapes; one scrape's grown
// buffer serves the next.
var scrapeBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 16<<10)
	return &b
}}

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		bp := scrapeBufs.Get().(*[]byte)
		buf := r.AppendText((*bp)[:0])
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write(buf)
		if cap(buf) <= 1<<20 {
			*bp = buf
			scrapeBufs.Put(bp)
		}
	})
}

// SortedFamilyNames lists registered family names (for tests and docs).
func (r *Registry) SortedFamilyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
