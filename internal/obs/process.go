package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// runtime/metrics sample keys the process collectors read. Batched into
// one Read per scrape: the runtime stops the world for none of these,
// but each Read call has fixed overhead worth amortizing.
var procSamples = []metrics.Sample{
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/gc/pauses:seconds"},
}

type procReader struct {
	mu      sync.Mutex
	samples []metrics.Sample
	stamp   time.Time

	goroutines float64
	heapBytes  float64
	gcCycles   uint64
	gcPauseP99 float64
}

// read refreshes the cached values at most once per 100ms, so a scrape
// that evaluates four collector closures costs one metrics.Read.
func (p *procReader) read() {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if !p.stamp.IsZero() && now.Sub(p.stamp) < 100*time.Millisecond {
		return
	}
	p.stamp = now
	metrics.Read(p.samples)
	for i := range p.samples {
		s := &p.samples[i]
		switch s.Name {
		case "/sched/goroutines:goroutines":
			p.goroutines = float64(s.Value.Uint64())
		case "/memory/classes/heap/objects:bytes":
			p.heapBytes = float64(s.Value.Uint64())
		case "/gc/cycles/total:gc-cycles":
			p.gcCycles = s.Value.Uint64()
		case "/gc/pauses:seconds":
			p.gcPauseP99 = histP99(s.Value.Float64Histogram())
		}
	}
}

// histP99 pulls the conservative p99 (bucket upper bound) out of a
// runtime Float64Histogram. The runtime's pause histogram has +Inf edges;
// a rank landing in the overflow bucket reports the last finite edge.
func histP99(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(0.99 * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	lastFinite := 0.0
	for i, c := range h.Counts {
		seen += c
		// Bucket i spans (Buckets[i], Buckets[i+1]].
		upper := h.Buckets[i+1]
		if upper < inf {
			lastFinite = upper
		}
		if seen > rank {
			if upper < inf {
				return upper
			}
			return lastFinite
		}
	}
	return lastFinite
}

// RegisterProcess adds the runtime-sourced process gauges and counters to
// a registry: goroutine count, live heap bytes, completed GC cycles, and
// the runtime's GC pause p99. All are sampled at scrape time.
func RegisterProcess(r *Registry, prefix string) {
	p := &procReader{samples: append([]metrics.Sample(nil), procSamples...)}
	r.NewGaugeFunc(prefix+"goroutines",
		"Current number of live goroutines.",
		func() float64 { p.read(); return p.goroutines })
	r.NewGaugeFunc(prefix+"heap_bytes",
		"Bytes of live heap objects.",
		func() float64 { p.read(); return p.heapBytes })
	r.NewCounterFunc(prefix+"gc_cycles_total",
		"Completed GC cycles since process start.",
		func() uint64 { p.read(); return p.gcCycles })
	r.NewGaugeFunc(prefix+"gc_pause_p99_seconds",
		"p99 GC stop-the-world pause since process start (bucket upper bound).",
		func() float64 { p.read(); return p.gcPauseP99 })
	r.NewGaugeFunc(prefix+"process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return float64(StartTime.UnixNano()) / 1e9 })
}
