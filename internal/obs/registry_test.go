package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryRenderParsesRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests seen.", "endpoint", "search")
	c.Add(42)
	c2 := r.NewCounter("test_requests_total", "Requests seen.", "endpoint", "recommend")
	c2.Add(7)
	r.NewGaugeFunc("test_depth", "Queue depth.", func() float64 { return 3.5 })
	r.NewCounterFunc("test_hits_total", "Hits.", func() uint64 { return 99 }, "layer", "search")
	h := r.NewHistogram("test_latency_seconds", "Latency.", "endpoint", "search")
	for i := 1; i <= 500; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}

	out := r.AppendText(nil)
	p, err := ParseText(out)
	if err != nil {
		t.Fatalf("render did not parse: %v\n%s", err, out)
	}
	if v, ok := p.Value("test_requests_total", "endpoint", "search"); !ok || v != 42 {
		t.Errorf("counter = %v ok=%v, want 42", v, ok)
	}
	if v, ok := p.Value("test_requests_total", "endpoint", "recommend"); !ok || v != 7 {
		t.Errorf("counter2 = %v ok=%v, want 7", v, ok)
	}
	if v, ok := p.Value("test_depth"); !ok || v != 3.5 {
		t.Errorf("gauge = %v ok=%v, want 3.5", v, ok)
	}
	if v, ok := p.Value("test_hits_total", "layer", "search"); !ok || v != 99 {
		t.Errorf("counterFn = %v ok=%v, want 99", v, ok)
	}
	snap, err := p.HistogramSnapshot("test_latency_seconds", "endpoint", "search")
	if err != nil {
		t.Fatalf("HistogramSnapshot: %v", err)
	}
	want := h.Snapshot()
	if snap.Total != want.Total || snap.Counts != want.Counts {
		t.Errorf("round-trip snapshot differs: total %d vs %d", snap.Total, want.Total)
	}
	// Quantiles agree exactly: same buckets, same conservative rule
	// (within one bucket — the live Hist clamps to observed max).
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, wantQ := snap.Quantile(q), want.Quantile(q)
		if got < wantQ || float64(got) > float64(wantQ)*1.126 {
			t.Errorf("q%v: reconstructed %v vs live %v", q, got, wantQ)
		}
	}
}

func TestRegistryHelpTypeAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "Second registered.")
	r.NewGaugeFunc("a_gauge", "First alphabetically, second rendered.", func() float64 { return 1 })
	out := string(r.AppendText(nil))
	// Registration order, not alphabetical.
	if strings.Index(out, "b_total") > strings.Index(out, "a_gauge") {
		t.Errorf("families not in registration order:\n%s", out)
	}
	if !strings.Contains(out, "# HELP b_total Second registered.\n# TYPE b_total counter\n") {
		t.Errorf("missing HELP/TYPE block:\n%s", out)
	}
	names := r.SortedFamilyNames()
	if len(names) != 2 || names[0] != "a_gauge" || names[1] != "b_total" {
		t.Errorf("SortedFamilyNames = %v", names)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("esc_gauge", `Help with \ backslash`+"\nand newline",
		func() float64 { return 1 },
		"path", `a"b\c`+"\nd")
	out := r.AppendText(nil)
	p, err := ParseText(out)
	if err != nil {
		t.Fatalf("escaped render did not parse: %v\n%s", err, out)
	}
	f := p.Family("esc_gauge")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("family missing: %v", f)
	}
	if got := f.Samples[0].Label("path"); got != `a"b\c`+"\nd" {
		t.Errorf("label round-trip = %q", got)
	}
	if f.Help != `Help with \ backslash`+"\nand newline" {
		t.Errorf("help round-trip = %q", f.Help)
	}
}

func TestRegistryInvalidRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.NewCounter("9bad", "h") }},
		{"bad label name", func(r *Registry) { r.NewCounter("ok_total", "h", "9bad", "v") }},
		{"le label", func(r *Registry) { r.NewHistogram("ok_seconds", "h", "le", "0.1") }},
		{"odd labels", func(r *Registry) { r.NewCounter("ok_total", "h", "dangling") }},
		{"kind conflict", func(r *Registry) {
			r.NewCounter("twice", "h")
			r.NewHistogram("twice", "h")
		}},
		{"duplicate series", func(r *Registry) {
			r.NewCounter("dup_total", "h", "a", "b")
			r.NewCounter("dup_total", "h", "a", "b")
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn(NewRegistry())
		})
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("handler_total", "h").Inc()
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if ct := w.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	if _, err := ParseText(w.Body.Bytes()); err != nil {
		t.Errorf("handler output did not parse: %v", err)
	}
	if !strings.Contains(w.Body.String(), "handler_total 1\n") {
		t.Errorf("missing sample:\n%s", w.Body.String())
	}
}

// TestScrapeMonotonicityUnderHammer scrapes repeatedly while writers
// hammer a counter and a histogram, asserting every scrape parses
// strictly and counters / cumulative buckets never move backwards. Run
// under -race this also proves the lock-free recording is sound.
func TestScrapeMonotonicityUnderHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hammer_total", "h")
	h := r.NewHistogram("hammer_seconds", "h")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * 37 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Record(d)
				d += 13 * time.Microsecond
				if d > 5*time.Millisecond {
					d = time.Microsecond
				}
			}
		}(w)
	}

	var (
		lastCounter float64
		lastCount   uint64
		lastBuckets HistSnapshot
	)
	for i := 0; i < 50; i++ {
		out := r.AppendText(nil)
		p, err := ParseText(out)
		if err != nil {
			t.Fatalf("scrape %d did not parse: %v\n%s", i, err, out)
		}
		v, ok := p.Value("hammer_total")
		if !ok || v < lastCounter {
			t.Fatalf("scrape %d: counter %v regressed from %v", i, v, lastCounter)
		}
		lastCounter = v
		snap, err := p.HistogramSnapshot("hammer_seconds")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if snap.Count() < lastCount {
			t.Fatalf("scrape %d: hist count %d regressed from %d", i, snap.Count(), lastCount)
		}
		for b := range snap.Counts {
			if snap.Counts[b] < lastBuckets.Counts[b] {
				t.Fatalf("scrape %d: bucket %d regressed %d -> %d",
					i, b, lastBuckets.Counts[b], snap.Counts[b])
			}
		}
		lastCount, lastBuckets = snap.Count(), snap
	}
	close(stop)
	wg.Wait()
}

// TestRecordZeroAllocs pins the request-path recording cost: Counter.Inc
// and Hist.Record must not allocate (the CI alloc-guard step runs this).
func TestRecordZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("alloc_total", "h", "endpoint", "search")
	h := r.NewHistogram("alloc_seconds", "h", "endpoint", "search")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Record(123 * time.Microsecond)
	}); n != 0 {
		t.Errorf("metric recording allocates %v per op, want 0", n)
	}
}

func TestAppendFloatSpecials(t *testing.T) {
	for _, c := range []struct {
		v    float64
		want string
	}{{inf, "+Inf"}, {math.Inf(-1), "-Inf"}, {1.5, "1.5"}, {0, "0"}} {
		if got := string(appendFloat(nil, c.v)); got != c.want {
			t.Errorf("appendFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := string(appendFloat(nil, math.NaN())); got != "NaN" {
		t.Errorf("appendFloat(NaN) = %q", got)
	}
}
