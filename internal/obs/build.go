package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Build identity, stamped by the release build:
//
//	go build -ldflags "-X alicoco/internal/obs.Version=v1.2.3 -X alicoco/internal/obs.GitSHA=$(git rev-parse HEAD)"
//
// Unstamped builds report Version "dev" and fall back to the VCS
// revision Go embeds in the binary (when built from a checkout).
var (
	Version = "dev"
	GitSHA  = ""
)

// StartTime is when this process started.
var StartTime = time.Now()

// ResolvedGitSHA returns the stamped GitSHA, or the module build info's
// vcs.revision when no stamp was injected, or "unknown".
func ResolvedGitSHA() string {
	if GitSHA != "" {
		return GitSHA
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// BuildInfo is the build identity block surfaced by /stats and the
// build_info metric.
type BuildInfo struct {
	Version       string  `json:"version"`
	GitSHA        string  `json:"git_sha"`
	GoVersion     string  `json:"go_version"`
	StartedAt     string  `json:"started_at"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// CurrentBuildInfo snapshots the build identity and current uptime.
func CurrentBuildInfo() BuildInfo {
	return BuildInfo{
		Version:       Version,
		GitSHA:        ResolvedGitSHA(),
		GoVersion:     runtime.Version(),
		StartedAt:     StartTime.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(StartTime).Seconds(),
	}
}

// RegisterBuildInfo adds the conventional build_info gauge (constant 1,
// identity carried in labels).
func RegisterBuildInfo(r *Registry, name string) {
	r.NewGaugeFunc(name,
		"Build identity; constant 1 with version labels.",
		func() float64 { return 1 },
		"version", Version,
		"go_version", runtime.Version(),
		"git_sha", ResolvedGitSHA(),
	)
}
