// Package obs is the production observability layer: a lock-free
// latency histogram shared by the serving tier and the load harness, a
// dependency-free Prometheus text-format metric registry built on it,
// a strict exposition parser (used by tests and by cocoload's
// server-vs-client cross-check), and process/build metadata collectors.
// Everything a request path touches is atomic-ops only; rendering and
// collection costs are paid at scrape time.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free latency histogram with geometric buckets: 8 linear
// sub-buckets per power-of-two octave of microseconds (HdrHistogram's
// layout, cut down), giving <= 12.5% relative quantile error from 1µs to
// hours in a fixed 512-slot array of atomics. Record is two atomic adds —
// safe for every request-handling goroutine (or every worker of an
// open-loop load driver) to hammer concurrently with zero allocation and
// no coordination. Promoted here from internal/loadgen so the serving
// tier's /metrics endpoint and the load harness measure with the same
// buckets — which is what makes cocoload's server-vs-client histogram
// cross-check exact rather than approximate.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumUS  atomic.Uint64
	maxUS  atomic.Uint64
}

const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = 512
)

// HistBuckets is the fixed bucket count of every Hist.
const HistBuckets = histBuckets

// histIndex maps a microsecond value to its bucket: values below histSub
// map linearly (exact), larger values keep histSubBits of mantissa.
func histIndex(us uint64) int {
	if us < histSub {
		return int(us)
	}
	exp := bits.Len64(us) - 1 - histSubBits
	idx := (exp+1)*histSub + int(us>>uint(exp)) - histSub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histUpper is the inclusive upper bound of a bucket in microseconds —
// quantiles report it, so they err conservative (never under-report a
// tail).
func histUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	exp := idx/histSub - 1
	if exp >= 60 {
		return ^uint64(0) // (off+1)<<exp would overflow; ~36,000 years in µs
	}
	off := idx%histSub + histSub
	return (uint64(off+1) << uint(exp)) - 1
}

// BucketUpperSeconds is the inclusive upper bound of bucket idx in
// seconds, the unit the Prometheus exposition uses for `le` labels. The
// saturated top buckets (bounds past ~36,000 years) report +Inf.
func BucketUpperSeconds(idx int) float64 {
	us := histUpper(idx)
	if us == ^uint64(0) {
		return inf
	}
	return float64(us) / 1e6
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	us := uint64(d.Microseconds())
	h.counts[histIndex(us)].Add(1)
	h.total.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Quantile returns the value at quantile q in [0,1] (conservative: the
// upper bound of the bucket the rank lands in), or 0 with no data. The
// walk reads each bucket once; concurrent Records may or may not be seen,
// which is fine for progress reporting and end-of-run summaries alike.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			us := histUpper(i)
			if m := h.maxUS.Load(); us > m {
				us = m // never report past the observed max
			}
			return time.Duration(us) * time.Microsecond
		}
	}
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Max returns the largest recorded observation.
func (h *Hist) Max() time.Duration {
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Mean returns the arithmetic mean of recorded observations.
func (h *Hist) Mean() time.Duration {
	t := h.total.Load()
	if t == 0 {
		return 0
	}
	return time.Duration(h.sumUS.Load()/t) * time.Microsecond
}

// HistSnapshot is a point-in-time copy of a Hist: plain uint64s, safe to
// diff, merge, and serialize. Total is recomputed as the sum of the
// bucket counts read during the snapshot, so a snapshot is always
// internally consistent (its +Inf cumulative bucket equals its count)
// even when taken mid-Record — exactly the invariant the Prometheus
// exposition format requires.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Total  uint64 // sum of Counts (not the racy live total)
	SumUS  uint64
	MaxUS  uint64 // 0 when unknown (snapshots reconstructed from a scrape)
}

// Snapshot copies the histogram's state. Concurrent Records land in the
// snapshot or the next one; per-bucket counts are monotone across
// successive snapshots.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	s.SumUS = h.sumUS.Load()
	s.MaxUS = h.maxUS.Load()
	return s
}

// Count returns the snapshot's observation count.
func (s *HistSnapshot) Count() uint64 { return s.Total }

// Quantile is Hist.Quantile over the frozen counts. When MaxUS is zero
// (scrape-reconstructed snapshots), the bucket upper bound is reported
// without the observed-max clamp.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Total))
	if rank >= s.Total {
		rank = s.Total - 1
	}
	var seen uint64
	for i := range s.Counts {
		seen += s.Counts[i]
		if seen > rank {
			us := histUpper(i)
			if s.MaxUS != 0 && us > s.MaxUS {
				us = s.MaxUS
			}
			return time.Duration(us) * time.Microsecond
		}
	}
	return time.Duration(s.MaxUS) * time.Microsecond
}

// Mean returns the snapshot's arithmetic mean, 0 with no data.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return time.Duration(s.SumUS/s.Total) * time.Microsecond
}

// Sub returns the per-bucket difference s − prev: the observations that
// arrived between two snapshots of the same (monotone) histogram.
// Buckets where prev exceeds s clamp to zero rather than underflowing.
func (s *HistSnapshot) Sub(prev *HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Counts {
		if s.Counts[i] > prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
			d.Total += d.Counts[i]
		}
	}
	if s.SumUS > prev.SumUS {
		d.SumUS = s.SumUS - prev.SumUS
	}
	d.MaxUS = 0 // the interval's max is unknowable from endpoints alone
	return d
}

// Merge adds o's observations into s (same bucket layout by construction).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
		s.Total += o.Counts[i]
	}
	s.SumUS += o.SumUS
	if o.MaxUS > s.MaxUS {
		s.MaxUS = o.MaxUS
	}
}
