package obs

import (
	"testing"
	"time"
)

func TestHistQuantilesConservative(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.99, 990 * time.Millisecond}, {0.999, 999 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		// Conservative: at or above the true quantile, within the 12.5%
		// bucket-width error, never past the max.
		if got < c.want || got > c.want+c.want/8+time.Millisecond || got > h.Max() {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v]", c.q, got, c.want, c.want+c.want/8)
		}
	}
	if h.Max() != time.Second {
		t.Errorf("Max = %v, want 1s", h.Max())
	}
	if m := h.Mean(); m < 480*time.Millisecond || m > 520*time.Millisecond {
		t.Errorf("Mean = %v, want ~500ms", m)
	}
}

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// (quantiles never under-report).
	for _, us := range []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1_000_000, 3_600_000_000} {
		idx := histIndex(us)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", us, idx)
		}
		if idx < histBuckets-1 && histUpper(idx) < us {
			t.Errorf("histUpper(histIndex(%d)) = %d < value", us, histUpper(idx))
		}
	}
	// Monotone bucket bounds until the top buckets saturate at max uint64
	// (values up there are ~36,000 years in µs — unreachable latencies).
	for i := 1; i < histBuckets && histUpper(i) != ^uint64(0); i++ {
		if histUpper(i) <= histUpper(i-1) {
			t.Fatalf("histUpper not monotone at %d: %d <= %d", i, histUpper(i), histUpper(i-1))
		}
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	if got := h.Quantile(0.999); got != 0 {
		t.Errorf("empty Quantile(0.999) = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	if got := h.Max(); got != 0 {
		t.Errorf("empty Max = %v, want 0", got)
	}
	if got := h.Count(); got != 0 {
		t.Errorf("empty Count = %d, want 0", got)
	}
	snap := h.Snapshot()
	if snap.Count() != 0 || snap.Quantile(0.99) != 0 || snap.Mean() != 0 {
		t.Errorf("empty snapshot not all-zero: count=%d q99=%v mean=%v",
			snap.Count(), snap.Quantile(0.99), snap.Mean())
	}
}

func TestHistSnapshotSubMerge(t *testing.T) {
	var h Hist
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	before := h.Snapshot()
	for i := 101; i <= 300; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	after := h.Snapshot()
	delta := after.Sub(&before)
	if delta.Count() != 200 {
		t.Fatalf("delta count = %d, want 200", delta.Count())
	}
	// The interval held 101..300ms, median 200ms; conservative quantile
	// stays within a bucket width above.
	if q := delta.Quantile(0.5); q < 200*time.Millisecond || q > 230*time.Millisecond {
		t.Errorf("delta p50 = %v, want ~200ms", q)
	}
	merged := before
	merged.Merge(&delta)
	if merged.Count() != after.Count() || merged.SumUS != after.SumUS {
		t.Errorf("before+delta != after: count %d vs %d, sum %d vs %d",
			merged.Count(), after.Count(), merged.SumUS, after.SumUS)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != after.Counts[i] {
			t.Fatalf("bucket %d: merged %d != after %d", i, merged.Counts[i], after.Counts[i])
		}
	}
}

func TestBucketUpperSeconds(t *testing.T) {
	if got := BucketUpperSeconds(histIndex(1000)); got < 0.001 {
		t.Errorf("bound for 1ms bucket = %v, want >= 0.001", got)
	}
	// The saturated top must render +Inf, matching the exposition.
	top := BucketUpperSeconds(histBuckets - 1)
	if top != inf {
		t.Errorf("top bucket bound = %v, want +Inf", top)
	}
	if HistBuckets != histBuckets {
		t.Errorf("HistBuckets = %d, want %d", HistBuckets, histBuckets)
	}
}
