package obs

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *Parsed {
	t.Helper()
	p, err := ParseText([]byte(s))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	return p
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"no TYPE", "# HELP x h\nx 1\n", "no preceding TYPE"},
		{"no HELP", "# TYPE x counter\nx 1\n", "no preceding HELP"},
		{"unknown type", "# HELP x h\n# TYPE x widget\nx 1\n", "unknown TYPE"},
		{"duplicate HELP", "# HELP x h\n# HELP x h\n# TYPE x counter\nx 1\n", "duplicate HELP"},
		{"duplicate TYPE", "# HELP x h\n# TYPE x counter\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
		{"duplicate series", "# HELP x h\n# TYPE x counter\nx 1\nx 2\n", "duplicate series"},
		{"negative counter", "# HELP x h\n# TYPE x counter\nx -1\n", "negative"},
		{"interleaved families", "# HELP a h\n# TYPE a counter\n# HELP b h\n# TYPE b counter\na 1\nb 1\na{k=\"v\"} 2\n", "interleaved"},
		{"timestamped", "# HELP x h\n# TYPE x counter\nx 1 123456\n", "timestamped"},
		{"bad value", "# HELP x h\n# TYPE x counter\nx one\n", "bad value"},
		{"unterminated labels", "# HELP x h\n# TYPE x counter\nx{k=\"v\" 1\n", "unterminated"},
		{"bad escape", "# HELP x h\n# TYPE x counter\nx{k=\"a\\t\"} 1\n", "bad escape"},
		{"bucket without le", "# HELP x h\n# TYPE x histogram\nx_bucket 1\nx_bucket{le=\"+Inf\"} 1\nx_sum 1\nx_count 1\n", "without le"},
		{"le not increasing", "# HELP x h\n# TYPE x histogram\nx_bucket{le=\"0.2\"} 1\nx_bucket{le=\"0.1\"} 2\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 2\n", "not strictly increasing"},
		{"cumulative regression", "# HELP x h\n# TYPE x histogram\nx_bucket{le=\"0.1\"} 5\nx_bucket{le=\"0.2\"} 3\nx_bucket{le=\"+Inf\"} 5\nx_sum 1\nx_count 5\n", "regressed"},
		{"missing +Inf", "# HELP x h\n# TYPE x histogram\nx_bucket{le=\"0.1\"} 1\nx_sum 1\nx_count 1\n", "+Inf"},
		{"+Inf != count", "# HELP x h\n# TYPE x histogram\nx_bucket{le=\"+Inf\"} 3\nx_sum 1\nx_count 4\n", "!= count"},
		{"stray histogram sample", "# HELP x h\n# TYPE x histogram\nx_bucket{le=\"+Inf\"} 1\nx_sum 1\nx_count 1\nx_extra 1\n", "no preceding TYPE"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseText([]byte(c.in))
			if err == nil {
				t.Fatalf("accepted invalid input:\n%s", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseAccepts(t *testing.T) {
	p := mustParse(t, `# plain comment line
# HELP a_total Requests.
# TYPE a_total counter
a_total{endpoint="search",class="2xx"} 10
a_total{endpoint="search",class="5xx"} 0

# HELP g Current value.
# TYPE g gauge
g -1.5
# HELP h Latency.
# TYPE h histogram
h_bucket{le="0.001"} 2
h_bucket{le="0.01"} 5
h_bucket{le="+Inf"} 6
h_sum 0.123
h_count 6
`)
	if v, ok := p.Value("a_total", "endpoint", "search", "class", "2xx"); !ok || v != 10 {
		t.Errorf("a_total 2xx = %v ok=%v", v, ok)
	}
	if v, ok := p.Value("g"); !ok || v != -1.5 {
		t.Errorf("g = %v ok=%v", v, ok)
	}
	f := p.Family("h")
	if f == nil || f.Type != "histogram" || len(f.Samples) != 5 {
		t.Fatalf("h family = %+v", f)
	}
	if _, ok := p.Value("missing"); ok {
		t.Error("lookup of absent family succeeded")
	}
}

func TestHistogramSnapshotRejectsForeignBounds(t *testing.T) {
	// le=0.000123 (123µs) is not a bound of the shared layout; the
	// cross-check must notice layout drift instead of mis-binning.
	in := `# HELP h x
# TYPE h histogram
h_bucket{le="0.000123"} 1
h_bucket{le="+Inf"} 1
h_sum 0.000123
h_count 1
`
	p := mustParse(t, in)
	if _, err := p.HistogramSnapshot("h"); err == nil || !strings.Contains(err.Error(), "not a bucket bound") {
		t.Errorf("foreign bound accepted: %v", err)
	}
}

func TestHistogramSnapshotMissingFamily(t *testing.T) {
	p := mustParse(t, "# HELP x h\n# TYPE x counter\nx 1\n")
	if _, err := p.HistogramSnapshot("absent"); err == nil {
		t.Error("absent family accepted")
	}
	if _, err := p.HistogramSnapshot("x"); err == nil || !strings.Contains(err.Error(), "want histogram") {
		t.Errorf("counter-as-histogram accepted: %v", err)
	}
}
