package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 1000
		hits := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("fn called for n=0") })
	calls := 0
	For(8, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1: %d calls", calls)
	}
}

func TestForSequentialWhenOneWorker(t *testing.T) {
	var order []int
	For(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("one worker must run in order: %v", order)
		}
	}
}
