// Package par provides the tiny fan-out primitive the serving and training
// hot paths share: a bounded parallel for over an index space. Work is
// handed out through an atomic counter, so the goroutine count is fixed and
// callers stay deterministic by writing results into index-addressed slots
// and reducing sequentially afterwards.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) across min(workers, n) goroutines
// and returns when all calls have finished. workers <= 0 means
// runtime.GOMAXPROCS(0). fn must be safe for concurrent invocation; with
// workers == 1 (or n == 1) the calls run sequentially in order on the
// calling goroutine.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
