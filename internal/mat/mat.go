// Package mat provides the small dense linear-algebra substrate used by the
// neural models in this repository. It is deliberately minimal: float64
// vectors and row-major matrices with the handful of operations the models
// need, written for clarity and determinism rather than BLAS-level speed.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to zero.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add adds u into v element-wise. Panics if lengths differ.
func (v Vec) Add(u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("mat: Add length mismatch %d vs %d", len(v), len(u)))
	}
	for i := range v {
		v[i] += u[i]
	}
}

// AddScaled adds s*u into v element-wise.
func (v Vec) AddScaled(s float64, u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(v), len(u)))
	}
	for i := range v {
		v[i] += s * u[i]
	}
}

// Scale multiplies every element of v by s.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and u.
func (v Vec) Dot(u Vec) float64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(u)))
	}
	var s float64
	for i := range v {
		s += v[i] * u[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Sum returns the sum of the elements of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index. Panics on empty input.
func (v Vec) Max() (float64, int) {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v {
		if x > best {
			best, at = x, i
		}
	}
	return best, at
}

// ArgMax returns the index of the maximum element.
func (v Vec) ArgMax() int {
	_, i := v.Max()
	return i
}

// Hadamard multiplies v element-wise by u in place.
func (v Vec) Hadamard(u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("mat: Hadamard length mismatch %d vs %d", len(v), len(u)))
	}
	for i := range v {
		v[i] *= u[i]
	}
}

// Concat returns the concatenation of the given vectors as a new vector.
func Concat(vs ...Vec) Vec {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vec, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// Softmax returns the softmax of v as a new vector, computed stably.
func Softmax(v Vec) Vec {
	out := make(Vec, len(v))
	if len(v) == 0 {
		return out
	}
	max, _ := v.Max()
	var z float64
	for i, x := range v {
		e := math.Exp(x - max)
		out[i] = e
		z += e
	}
	for i := range out {
		out[i] /= z
	}
	return out
}

// LogSumExp returns log(sum_i exp(v_i)) computed stably.
func LogSumExp(v Vec) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	max, _ := v.Max()
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, x := range v {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Tanh is math.Tanh, re-exported so models need only this package.
func Tanh(x float64) float64 { return math.Tanh(x) }

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either has zero norm.
func CosineSimilarity(a, b Vec) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       Vec // len Rows*Cols, Data[r*Cols+c]
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimensions")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make(Vec, rows*cols)}
}

// NewMatFrom builds a matrix from the given rows, which must all share a length.
func NewMatFrom(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic("mat: ragged rows")
		}
		copy(m.Row(r), row)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns the element at row r, column c.
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Mat) Set(r, c int, x float64) { m.Data[r*m.Cols+c] = x }

// Row returns row r as a slice sharing m's storage.
func (m *Mat) Row(r int) Vec { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero sets every element of m to zero.
func (m *Mat) Zero() { m.Data.Zero() }

// Add adds o into m element-wise.
func (m *Mat) Add(o *Mat) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("mat: Add shape mismatch")
	}
	m.Data.Add(o.Data)
}

// AddScaled adds s*o into m element-wise.
func (m *Mat) AddScaled(s float64, o *Mat) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	m.Data.AddScaled(s, o.Data)
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) { m.Data.Scale(s) }

// MulVec returns m·v as a new vector of length m.Rows.
func (m *Mat) MulVec(v Vec) Vec {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for c, x := range row {
			s += x * v[c]
		}
		out[r] = s
	}
	return out
}

// MulVecT returns mᵀ·v as a new vector of length m.Cols.
func (m *Mat) MulVecT(v Vec) Vec {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch %dx%d ᵀ· %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		vr := v[r]
		if vr == 0 {
			continue
		}
		for c, x := range row {
			out[c] += x * vr
		}
	}
	return out
}

// AddOuter adds s * a·bᵀ into m, where a has length m.Rows and b length m.Cols.
// It is the rank-1 accumulation used by gradient updates.
func (m *Mat) AddOuter(s float64, a, b Vec) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("mat: AddOuter shape mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		sa := s * a[r]
		if sa == 0 {
			continue
		}
		row := m.Row(r)
		for c := range row {
			row[c] += sa * b[c]
		}
	}
}

// RandInit fills m with uniform values in [-scale, scale] drawn from rng.
func (m *Mat) RandInit(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// XavierInit fills m with the Glorot uniform initialization for a layer with
// the given fan-in and fan-out.
func (m *Mat) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	scale := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.RandInit(rng, scale)
}
