package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVecAddScaleDot(t *testing.T) {
	v := Vec{1, 2, 3}
	u := Vec{4, 5, 6}
	v.Add(u)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	v.Scale(2)
	if v[0] != 10 || v[2] != 18 {
		t.Fatalf("Scale: got %v", v)
	}
	if got := u.Dot(Vec{1, 0, 1}); got != 10 {
		t.Fatalf("Dot: got %v want 10", got)
	}
}

func TestVecAddScaled(t *testing.T) {
	v := Vec{1, 1}
	v.AddScaled(3, Vec{2, -1})
	if v[0] != 7 || v[1] != -2 {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestMaxArgMax(t *testing.T) {
	v := Vec{-1, 5, 3, 5}
	max, at := v.Max()
	if max != 5 || at != 1 {
		t.Fatalf("Max: got %v at %d", max, at)
	}
	if v.ArgMax() != 1 {
		t.Fatalf("ArgMax: got %d", v.ArgMax())
	}
}

func TestSumMeanNorm(t *testing.T) {
	v := Vec{3, 4}
	if v.Sum() != 7 {
		t.Fatalf("Sum: got %v", v.Sum())
	}
	if v.Mean() != 3.5 {
		t.Fatalf("Mean: got %v", v.Mean())
	}
	if !almostEqual(v.Norm(), 5, 1e-12) {
		t.Fatalf("Norm: got %v", v.Norm())
	}
	if (Vec{}).Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	v := Vec{1, 2, 3, 4}
	s := Softmax(v)
	if !almostEqual(s.Sum(), 1, 1e-12) {
		t.Fatalf("Softmax sum: got %v", s.Sum())
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("Softmax should be increasing for increasing input: %v", s)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	s := Softmax(Vec{1000, 1000, 1000})
	for _, x := range s {
		if !almostEqual(x, 1.0/3, 1e-12) {
			t.Fatalf("Softmax large values: got %v", s)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	v := Vec{0, 0}
	if !almostEqual(LogSumExp(v), math.Log(2), 1e-12) {
		t.Fatalf("LogSumExp: got %v", LogSumExp(v))
	}
	if !math.IsInf(LogSumExp(Vec{}), -1) {
		t.Fatal("LogSumExp of empty should be -Inf")
	}
	// Stability at large magnitudes.
	if got := LogSumExp(Vec{1e4, 1e4}); !almostEqual(got, 1e4+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp stability: got %v", got)
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("Sigmoid saturation wrong")
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{-3, -0.5, 0.7, 2} {
		if !almostEqual(Sigmoid(-x), 1-Sigmoid(x), 1e-12) {
			t.Fatalf("Sigmoid symmetry failed at %v", x)
		}
	}
}

func TestConcat(t *testing.T) {
	v := Concat(Vec{1, 2}, Vec{}, Vec{3})
	if len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Fatalf("Concat: got %v", v)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if !almostEqual(CosineSimilarity(Vec{1, 0}, Vec{1, 0}), 1, 1e-12) {
		t.Fatal("cos of identical vectors should be 1")
	}
	if !almostEqual(CosineSimilarity(Vec{1, 0}, Vec{0, 1}), 0, 1e-12) {
		t.Fatal("cos of orthogonal vectors should be 0")
	}
	if CosineSimilarity(Vec{0, 0}, Vec{1, 1}) != 0 {
		t.Fatal("cos with zero vector should be 0")
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMatFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	out := m.MulVec(Vec{1, 1})
	if out[0] != 3 || out[1] != 7 || out[2] != 11 {
		t.Fatalf("MulVec: got %v", out)
	}
	outT := m.MulVecT(Vec{1, 1, 1})
	if outT[0] != 9 || outT[1] != 12 {
		t.Fatalf("MulVecT: got %v", outT)
	}
}

func TestMatAddOuter(t *testing.T) {
	m := NewMat(2, 3)
	m.AddOuter(2, Vec{1, 2}, Vec{1, 0, 1})
	want := [][]float64{{2, 0, 2}, {4, 0, 4}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != want[r][c] {
				t.Fatalf("AddOuter at (%d,%d): got %v want %v", r, c, m.At(r, c), want[r][c])
			}
		}
	}
}

func TestMatCloneIndependence(t *testing.T) {
	m := NewMatFrom([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMatRowSharesStorage(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row should alias matrix storage")
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(10, 10)
	m.XavierInit(rng, 10, 10)
	bound := math.Sqrt(6.0 / 20.0)
	for _, x := range m.Data {
		if x < -bound || x > bound {
			t.Fatalf("Xavier value %v outside [-%v,%v]", x, bound, bound)
		}
	}
}

// Property: MulVecT is the adjoint of MulVec, i.e. <M v, u> == <v, Mᵀ u>.
func TestPropertyAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMat(rows, cols)
		m.RandInit(rng, 1)
		v := NewVec(cols)
		u := NewVec(rows)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		lhs := m.MulVec(v).Dot(u)
		rhs := v.Dot(m.MulVecT(u))
		return almostEqual(lhs, rhs, 1e-9*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any finite input.
func TestPropertySoftmaxDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		v := NewVec(n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		s := Softmax(v)
		sum := 0.0
		for _, x := range s {
			if x < 0 || x > 1 {
				return false
			}
			sum += x
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: LogSumExp(v) >= max(v), with equality iff one dominant element.
func TestPropertyLogSumExpLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		v := NewVec(n)
		for i := range v {
			v[i] = rng.NormFloat64() * 5
		}
		max, _ := v.Max()
		lse := LogSumExp(v)
		return lse >= max-1e-12 && lse <= max+math.Log(float64(n))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
