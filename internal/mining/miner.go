// Package mining implements primitive-concept vocabulary mining
// (Section 4.1 / 7.2 of the paper): a BiLSTM-CRF sequence labeler over the
// 20 first-level domain labels, trained with distant supervision produced by
// max-matching existing concepts against the corpus, then used to discover
// new concept surface forms.
package mining

import (
	"math/rand"
	"sort"
	"strings"

	"alicoco/internal/mat"
	"alicoco/internal/nn"
	"alicoco/internal/text"
)

// Config controls the mining model.
type Config struct {
	EmbDim int
	Hidden int
	LR     float64
	Clip   float64
	Epochs int
	Seed   int64
}

// DefaultConfig returns laptop-scale hyperparameters.
func DefaultConfig() Config {
	return Config{EmbDim: 24, Hidden: 16, LR: 0.01, Clip: 5, Epochs: 8, Seed: 17}
}

// Miner is the BiLSTM-CRF mining model (Figure 4).
type Miner struct {
	cfg    Config
	Tags   []string
	tagIdx map[string]int
	vocab  *text.Vocab
	emb    *nn.Embedding
	bi     *nn.BiLSTM
	proj   *nn.Dense
	crf    *nn.CRF
	params []*nn.Param
	opt    *nn.Adam
}

// NewMiner builds an untrained miner for the given first-level classes.
func NewMiner(classes []string, cfg Config) *Miner {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tags, tagIdx := text.IOBLabelSet(classes)
	m := &Miner{
		cfg:    cfg,
		Tags:   tags,
		tagIdx: tagIdx,
		vocab:  text.NewVocab(),
	}
	// Vocab grows during dataset construction; the embedding table is
	// allocated afterwards in finalize.
	_ = rng
	return m
}

// Example is one labeled training sentence.
type Example struct {
	Tokens []string
	Tags   []string
}

// BuildDistantData distantly labels corpus sentences with the segmenter's
// lexicon, keeping only unambiguous perfect matches (Section 7.2). At most
// maxSentences examples are returned.
func BuildDistantData(seg *text.Segmenter, corpus [][]string, maxSentences int) []Example {
	var out []Example
	for _, sent := range corpus {
		if maxSentences > 0 && len(out) >= maxSentences {
			break
		}
		tags, okL := seg.DistantLabel(sent)
		if !okL {
			continue
		}
		out = append(out, Example{Tokens: sent, Tags: tags})
	}
	return out
}

// finalize allocates model parameters once the vocabulary is known.
func (m *Miner) finalize() {
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.emb = nn.NewEmbedding("mine.emb", m.vocab.Len(), m.cfg.EmbDim, rng)
	m.bi = nn.NewBiLSTM("mine.bi", m.cfg.EmbDim, m.cfg.Hidden, rng)
	m.proj = nn.NewDense("mine.proj", m.bi.OutDim(), len(m.Tags), nn.Identity, rng)
	m.crf = nn.NewCRF("mine.crf", len(m.Tags), rng)
	m.params = nn.CollectParams(m.emb, m.bi, m.proj, m.crf)
	m.opt = nn.NewAdam(m.cfg.LR, m.cfg.Clip)
}

// Train fits the model on labeled examples. It may be called once.
func (m *Miner) Train(examples []Example) float64 {
	for _, ex := range examples {
		m.vocab.Encode(ex.Tokens)
	}
	m.vocab.Freeze()
	m.finalize()
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	var lastLoss float64
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		var total float64
		for _, pi := range perm {
			ex := examples[pi]
			gold := make([]int, len(ex.Tags))
			for i, tg := range ex.Tags {
				gold[i] = m.tagIdx[tg]
			}
			emits, back := m.forward(ex.Tokens)
			loss, dEmit := m.crf.Loss(emits, gold)
			total += loss
			back(dEmit)
			m.opt.Step(m.params)
		}
		lastLoss = total / float64(len(examples))
	}
	return lastLoss
}

// forward runs embedding -> BiLSTM -> projection, returning emissions and a
// backward closure.
func (m *Miner) forward(tokens []string) ([]mat.Vec, func([]mat.Vec)) {
	ids := m.vocab.EncodeFixed(tokens)
	xs := m.emb.LookupSeq(ids)
	hs, bc := m.bi.Forward(xs)
	emits := make([]mat.Vec, len(hs))
	caches := make([]*nn.DenseCache, len(hs))
	for i, h := range hs {
		emits[i], caches[i] = m.proj.Forward(h)
	}
	back := func(dEmit []mat.Vec) {
		dhs := make([]mat.Vec, len(dEmit))
		for i := range dEmit {
			dhs[i] = m.proj.Backward(dEmit[i], caches[i])
		}
		dxs := m.bi.Backward(dhs, bc)
		m.emb.AccumulateSeq(ids, dxs)
	}
	return emits, back
}

// Predict returns IOB tags for a sentence.
func (m *Miner) Predict(tokens []string) []string {
	if m.crf == nil {
		panic("mining: Predict before Train")
	}
	emits, _ := m.forward(tokens)
	nn.ZeroGrads(m.params)
	path, _ := m.crf.Decode(emits)
	out := make([]string, len(path))
	for i, k := range path {
		out[i] = m.Tags[k]
	}
	return out
}

// MinedConcept is a newly discovered surface form with its predicted domain
// and corpus support.
type MinedConcept struct {
	Tokens []string
	Domain string
	Count  int
}

// Name returns the space-joined surface form.
func (c MinedConcept) Name() string { return strings.Join(c.Tokens, " ") }

// Mine predicts over the corpus and returns surface forms not already known
// to the lexicon. Domain votes for the same surface are aggregated and the
// majority domain wins (ties break lexicographically); Count is the total
// mention count across domains. Results sort by support then name. known
// reports lexicon membership of a surface form.
func (m *Miner) Mine(corpus [][]string, known func(string) bool) []MinedConcept {
	votes := make(map[string]map[string]int)
	tokensOf := make(map[string][]string)
	for _, sent := range corpus {
		tags := m.Predict(sent)
		for _, sp := range text.DecodeIOB(tags) {
			toks := sent[sp.Start:sp.End]
			name := strings.Join(toks, " ")
			if known(name) {
				continue
			}
			if votes[name] == nil {
				votes[name] = make(map[string]int)
			}
			votes[name][sp.Label]++
			tokensOf[name] = toks
		}
	}
	out := make([]MinedConcept, 0, len(votes))
	for name, byDomain := range votes {
		best, bestCount, total := "", -1, 0
		domains := make([]string, 0, len(byDomain))
		for d := range byDomain {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		for _, d := range domains {
			total += byDomain[d]
			if byDomain[d] > bestCount {
				best, bestCount = d, byDomain[d]
			}
		}
		out = append(out, MinedConcept{Tokens: tokensOf[name], Domain: best, Count: total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
