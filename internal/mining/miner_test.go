package mining

import (
	"strings"
	"testing"

	"alicoco/internal/text"
	"alicoco/internal/world"
)

// buildMiningFixture constructs a tiny world, a lexicon with a held-out
// fraction of primitives, and a corpus.
func buildMiningFixture(t *testing.T) (*world.World, *text.Segmenter, map[string]world.Domain, [][]string) {
	t.Helper()
	cfg := world.TinyConfig()
	cfg.ItemsPerLeaf = 5
	w := world.New(cfg)
	corpus := w.GenCorpus(500, 500, 250).All()
	seg := text.NewSegmenter()
	seg.AddStopwords(w.Stopwords()...)
	heldOut := make(map[string]world.Domain)
	for i, p := range w.Primitives {
		// Hold out every 5th primitive as "new" (skip ambiguous surfaces
		// so distant labels stay clean).
		if len(w.BySurface[p.Name()]) > 1 {
			continue
		}
		if i%5 == 0 {
			heldOut[p.Name()] = p.Domain
			continue
		}
		seg.AddPhrase(p.Tokens, string(p.Domain))
	}
	return w, seg, heldOut, corpus
}

func TestBuildDistantData(t *testing.T) {
	_, seg, _, corpus := buildMiningFixture(t)
	data := BuildDistantData(seg, corpus, 0)
	if len(data) == 0 {
		t.Fatal("no distant training data produced")
	}
	for _, ex := range data {
		if len(ex.Tokens) != len(ex.Tags) {
			t.Fatal("token/tag length mismatch")
		}
		hasB := false
		for _, tg := range ex.Tags {
			if strings.HasPrefix(tg, "B-") {
				hasB = true
			}
		}
		if !hasB {
			t.Fatal("distant example with no labeled span")
		}
	}
	capped := BuildDistantData(seg, corpus, 10)
	if len(capped) != 10 {
		t.Fatalf("maxSentences not respected: %d", len(capped))
	}
}

func TestMinerLearnsAndMinesHeldOutConcepts(t *testing.T) {
	_, seg, heldOut, corpus := buildMiningFixture(t)
	data := BuildDistantData(seg, corpus, 1200)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	m := NewMiner(world.DomainNames(), cfg)
	loss := m.Train(data)
	if loss <= 0 {
		t.Fatalf("suspicious final loss %v", loss)
	}

	// Tagging accuracy on training data should be high (sanity).
	correct, total := 0, 0
	for _, ex := range data[:50] {
		pred := m.Predict(ex.Tokens)
		for i := range pred {
			total++
			if pred[i] == ex.Tags[i] {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Fatalf("train tagging accuracy too low: %.3f", acc)
	}

	known := func(name string) bool { return seg.Len() > 0 && segHas(seg, name) }
	mined := m.Mine(corpus, known)
	if len(mined) == 0 {
		t.Fatal("no new concepts mined")
	}

	// Surface precision: among the best-supported mined spans, most should
	// be genuine held-out primitives (the rest go to the paper's manual
	// check and are discarded).
	top := mined
	if len(top) > 50 {
		top = top[:50]
	}
	genuine := 0
	for _, mc := range top {
		if _, ok := heldOut[mc.Name()]; ok {
			genuine++
		}
	}
	if prec := float64(genuine) / float64(len(top)); prec < 0.5 {
		t.Fatalf("mined surface precision too low: %.2f (%d/%d)", prec, genuine, len(top))
	}

	// Domain precision for the Category domain, where title position gives
	// the model real signal. (Attribute domains are positionally
	// interchangeable in titles and legitimately confusable.)
	catHits, catChecked := 0, 0
	for _, mc := range mined {
		dom, ok := heldOut[mc.Name()]
		if !ok || mc.Domain != "Category" || mc.Count < 3 {
			continue
		}
		catChecked++
		if dom == "Category" {
			catHits++
		}
	}
	if catChecked == 0 {
		t.Fatal("no Category concepts mined")
	}
	if prec := float64(catHits) / float64(catChecked); prec < 0.6 {
		t.Fatalf("Category domain precision too low: %.2f (%d/%d)", prec, catHits, catChecked)
	}
}

func segHas(seg *text.Segmenter, name string) bool {
	segs := seg.MaxMatch(strings.Fields(name))
	return len(segs) == 1 && len(segs[0].Labels) > 0
}

func TestMineSortsBySupport(t *testing.T) {
	_, seg, _, corpus := buildMiningFixture(t)
	data := BuildDistantData(seg, corpus, 300)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := NewMiner(world.DomainNames(), cfg)
	m.Train(data)
	mined := m.Mine(corpus[:300], func(string) bool { return false })
	for i := 1; i < len(mined); i++ {
		if mined[i].Count > mined[i-1].Count {
			t.Fatal("mined concepts not sorted by support")
		}
	}
}

func TestPredictBeforeTrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewMiner(world.DomainNames(), DefaultConfig())
	m.Predict([]string{"x"})
}
