package nn

import (
	"math/rand"

	"alicoco/internal/mat"
)

// Conv1D is a 1-D convolution over a sequence of vectors with zero padding,
// the char-level and text encoders of Figures 6 and 8. For window k (odd)
// and input dim D it learns a (Filters)×(k·D) kernel applied at every
// position.
type Conv1D struct {
	In, Filters, Window int
	Act                 Activation
	W, B                *Param
}

// NewConv1D returns a Glorot-initialized convolution. Window must be odd so
// the output aligns with input positions.
func NewConv1D(name string, in, filters, window int, act Activation, rng *rand.Rand) *Conv1D {
	if window%2 == 0 {
		panic("nn: Conv1D window must be odd")
	}
	return &Conv1D{
		In:      in,
		Filters: filters,
		Window:  window,
		Act:     act,
		W:       NewParamXavier(name+".W", filters, window*in, rng),
		B:       NewParam(name+".b", filters, 1),
	}
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// Conv1DCache stores forward state for the backward pass.
type Conv1DCache struct {
	windows []mat.Vec // concatenated (zero-padded) input windows
	ys      []mat.Vec // activated outputs
	n       int
}

func (c *Conv1D) window(xs []mat.Vec, t int) mat.Vec {
	half := c.Window / 2
	w := make(mat.Vec, 0, c.Window*c.In)
	for off := -half; off <= half; off++ {
		j := t + off
		if j < 0 || j >= len(xs) {
			w = append(w, mat.NewVec(c.In)...)
		} else {
			w = append(w, xs[j]...)
		}
	}
	return w
}

// Forward convolves xs and returns per-position filter activations.
func (c *Conv1D) Forward(xs []mat.Vec) ([]mat.Vec, *Conv1DCache) {
	cache := &Conv1DCache{n: len(xs)}
	out := make([]mat.Vec, len(xs))
	for t := range xs {
		w := c.window(xs, t)
		y := c.W.W.MulVec(w)
		for i := range y {
			y[i] = activate(c.Act, y[i]+c.B.W.Data[i])
		}
		out[t] = y
		cache.windows = append(cache.windows, w)
		cache.ys = append(cache.ys, y)
	}
	return out, cache
}

// Backward accumulates kernel gradients and returns per-position input grads.
func (c *Conv1D) Backward(dys []mat.Vec, cache *Conv1DCache) []mat.Vec {
	dxs := make([]mat.Vec, cache.n)
	for t := range dxs {
		dxs[t] = mat.NewVec(c.In)
	}
	half := c.Window / 2
	for t := 0; t < cache.n; t++ {
		dz := make(mat.Vec, c.Filters)
		for i := range dz {
			dz[i] = dys[t][i] * activateGrad(c.Act, cache.ys[t][i])
		}
		c.W.G.AddOuter(1, dz, cache.windows[t])
		c.B.G.Data.Add(dz)
		dw := c.W.W.MulVecT(dz)
		for off := -half; off <= half; off++ {
			j := t + off
			if j < 0 || j >= cache.n {
				continue
			}
			seg := dw[(off+half)*c.In : (off+half+1)*c.In]
			dxs[j].Add(mat.Vec(seg))
		}
	}
	return dxs
}

// MaxPoolTime takes the element-wise maximum over a sequence, the standard
// pooling after a convolution. The cache records argmax positions.
type MaxPoolCache struct {
	argmax []int
	n, dim int
}

// MaxPool returns the per-dimension max over xs.
func MaxPool(xs []mat.Vec) (mat.Vec, *MaxPoolCache) {
	if len(xs) == 0 {
		return nil, &MaxPoolCache{}
	}
	dim := len(xs[0])
	out := xs[0].Clone()
	cache := &MaxPoolCache{argmax: make([]int, dim), n: len(xs), dim: dim}
	for t := 1; t < len(xs); t++ {
		for i, x := range xs[t] {
			if x > out[i] {
				out[i] = x
				cache.argmax[i] = t
			}
		}
	}
	return out, cache
}

// MaxPoolBackward routes the upstream gradient to the argmax positions.
func MaxPoolBackward(dy mat.Vec, cache *MaxPoolCache) []mat.Vec {
	dxs := make([]mat.Vec, cache.n)
	for t := range dxs {
		dxs[t] = mat.NewVec(cache.dim)
	}
	for i, t := range cache.argmax {
		dxs[t][i] = dy[i]
	}
	return dxs
}

// MeanPool returns the element-wise mean over xs.
func MeanPool(xs []mat.Vec) mat.Vec {
	if len(xs) == 0 {
		return nil
	}
	out := mat.NewVec(len(xs[0]))
	for _, x := range xs {
		out.Add(x)
	}
	out.Scale(1 / float64(len(xs)))
	return out
}

// MeanPoolBackward distributes the upstream gradient uniformly over n steps.
func MeanPoolBackward(dy mat.Vec, n int) []mat.Vec {
	dxs := make([]mat.Vec, n)
	for t := range dxs {
		d := dy.Clone()
		d.Scale(1 / float64(n))
		dxs[t] = d
	}
	return dxs
}
