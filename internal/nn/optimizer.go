package nn

import (
	"math"

	"alicoco/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients and clears
// the gradients afterwards.
type Optimizer interface {
	Step(ps []*Param)
}

// ClipGrads rescales all gradients so their global L2 norm is at most c.
// It returns the pre-clip norm.
func ClipGrads(ps []*Param, c float64) float64 {
	var sq float64
	for _, p := range ps {
		for _, g := range p.G.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if c > 0 && norm > c {
		scale := c / norm
		for _, p := range ps {
			p.G.Scale(scale)
		}
	}
	return norm
}

// SGD is stochastic gradient descent with optional momentum and gradient
// clipping.
type SGD struct {
	LR, Momentum, Clip float64
	vel                map[*Param]mat.Vec
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, clip float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Clip: clip, vel: make(map[*Param]mat.Vec)}
}

// Step implements Optimizer.
func (o *SGD) Step(ps []*Param) {
	if o.Clip > 0 {
		ClipGrads(ps, o.Clip)
	}
	for _, p := range ps {
		if o.Momentum > 0 {
			v, okv := o.vel[p]
			if !okv {
				v = mat.NewVec(len(p.W.Data))
				o.vel[p] = v
			}
			for i := range v {
				v[i] = o.Momentum*v[i] - o.LR*p.G.Data[i]
				p.W.Data[i] += v[i]
			}
		} else {
			p.W.Data.AddScaled(-o.LR, p.G.Data)
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction and optional
// gradient clipping.
type Adam struct {
	LR, Beta1, Beta2, Eps, Clip float64
	t                           int
	m, v                        map[*Param]mat.Vec
}

// NewAdam returns an Adam optimizer with the usual defaults for the moments.
func NewAdam(lr, clip float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: clip,
		m: make(map[*Param]mat.Vec), v: make(map[*Param]mat.Vec),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(ps []*Param) {
	if o.Clip > 0 {
		ClipGrads(ps, o.Clip)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range ps {
		m, okm := o.m[p]
		if !okm {
			m = mat.NewVec(len(p.W.Data))
			o.m[p] = m
		}
		v, okv := o.v[p]
		if !okv {
			v = mat.NewVec(len(p.W.Data))
			o.v[p] = v
		}
		for i, g := range p.G.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// Adagrad is the Adagrad optimizer, a good default for sparse embedding
// gradients.
type Adagrad struct {
	LR, Eps, Clip float64
	acc           map[*Param]mat.Vec
}

// NewAdagrad returns an Adagrad optimizer.
func NewAdagrad(lr, clip float64) *Adagrad {
	return &Adagrad{LR: lr, Eps: 1e-8, Clip: clip, acc: make(map[*Param]mat.Vec)}
}

// Step implements Optimizer.
func (o *Adagrad) Step(ps []*Param) {
	if o.Clip > 0 {
		ClipGrads(ps, o.Clip)
	}
	for _, p := range ps {
		a, oka := o.acc[p]
		if !oka {
			a = mat.NewVec(len(p.W.Data))
			o.acc[p] = a
		}
		for i, g := range p.G.Data {
			if g == 0 {
				continue
			}
			a[i] += g * g
			p.W.Data[i] -= o.LR * g / (math.Sqrt(a[i]) + o.Eps)
		}
		p.ZeroGrad()
	}
}
