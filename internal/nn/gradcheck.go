package nn

import (
	"fmt"
	"math"
)

// GradCheck compares the analytic gradient stored in each parameter against
// central finite differences of the given loss closure. The loss closure
// must be deterministic and must NOT accumulate gradients itself (gradients
// should already be populated before the call). It returns the worst
// relative error over all checked entries.
//
// This is the correctness backstop for every hand-derived backward pass in
// this package and is exercised heavily in the tests.
func GradCheck(ps []*Param, loss func() float64, eps float64) (float64, error) {
	worst := 0.0
	for _, p := range ps {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := loss()
			p.W.Data[i] = orig - eps
			lm := loss()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.G.Data[i]
			denom := math.Max(1, math.Abs(num)+math.Abs(ana))
			rel := math.Abs(num-ana) / denom
			if rel > worst {
				worst = rel
			}
			if rel > 1e-3 {
				return worst, fmt.Errorf("nn: gradcheck failed for %s[%d]: analytic %.8f vs numeric %.8f (rel %.2e)",
					p.Name, i, ana, num, rel)
			}
		}
	}
	return worst, nil
}
