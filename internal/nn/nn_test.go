package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"alicoco/internal/mat"
)

// quadLoss returns 0.5*Σ||out_t||² and the matching upstream gradients.
func quadLoss(outs []mat.Vec) (float64, []mat.Vec) {
	var l float64
	ds := make([]mat.Vec, len(outs))
	for t, o := range outs {
		for _, x := range o {
			l += 0.5 * x * x
		}
		ds[t] = o.Clone()
	}
	return l, ds
}

func randSeq(rng *rand.Rand, n, dim int) []mat.Vec {
	xs := make([]mat.Vec, n)
	for t := range xs {
		xs[t] = make(mat.Vec, dim)
		for i := range xs[t] {
			xs[t][i] = rng.NormFloat64()
		}
	}
	return xs
}

func TestDenseGradCheck(t *testing.T) {
	for _, act := range []Activation{Identity, Tanh, SigmoidAct} {
		rng := rand.New(rand.NewSource(7))
		d := NewDense("d", 4, 3, act, rng)
		x := randSeq(rng, 1, 4)[0]
		y, c := d.Forward(x)
		_, dy := quadLoss([]mat.Vec{y})
		d.Backward(dy[0], c)
		loss := func() float64 {
			out, _ := d.Forward(x)
			l, _ := quadLoss([]mat.Vec{out})
			return l
		}
		if _, err := GradCheck(d.Params(), loss, 1e-5); err != nil {
			t.Fatalf("act=%d: %v", act, err)
		}
	}
}

func TestDenseInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense("d", 4, 3, Tanh, rng)
	x := randSeq(rng, 1, 4)[0]
	y, c := d.Forward(x)
	_, dy := quadLoss([]mat.Vec{y})
	dx := d.Backward(dy[0], c)
	// finite differences on the input
	eps := 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		yp, _ := d.Forward(x)
		lp, _ := quadLoss([]mat.Vec{yp})
		x[i] = orig - eps
		ym, _ := d.Forward(x)
		lm, _ := quadLoss([]mat.Vec{ym})
		x[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLSTM("l", 3, 4, rng)
	xs := randSeq(rng, 5, 3)
	hs, c := l.Forward(xs)
	_, dhs := quadLoss(hs)
	l.Backward(dhs, c)
	loss := func() float64 {
		out, _ := l.Forward(xs)
		v, _ := quadLoss(out)
		return v
	}
	if _, err := GradCheck(l.Params(), loss, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestLSTMInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewLSTM("l", 2, 3, rng)
	xs := randSeq(rng, 4, 2)
	hs, c := l.Forward(xs)
	_, dhs := quadLoss(hs)
	dxs := l.Backward(dhs, c)
	eps := 1e-5
	for t0 := range xs {
		for i := range xs[t0] {
			orig := xs[t0][i]
			xs[t0][i] = orig + eps
			hp, _ := l.Forward(xs)
			lp, _ := quadLoss(hp)
			xs[t0][i] = orig - eps
			hm, _ := l.Forward(xs)
			lm, _ := quadLoss(hm)
			xs[t0][i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dxs[t0][i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("input grad (%d,%d): analytic %v numeric %v", t0, i, dxs[t0][i], num)
			}
		}
	}
}

func TestBiLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := NewBiLSTM("b", 3, 2, rng)
	xs := randSeq(rng, 4, 3)
	hs, c := b.Forward(xs)
	if len(hs[0]) != b.OutDim() {
		t.Fatalf("OutDim: got %d want %d", len(hs[0]), b.OutDim())
	}
	_, dhs := quadLoss(hs)
	b.Backward(dhs, c)
	loss := func() float64 {
		out, _ := b.Forward(xs)
		v, _ := quadLoss(out)
		return v
	}
	if _, err := GradCheck(b.Params(), loss, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestConv1DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cv := NewConv1D("c", 3, 4, 3, Tanh, rng)
	xs := randSeq(rng, 5, 3)
	ys, c := cv.Forward(xs)
	_, dys := quadLoss(ys)
	cv.Backward(dys, c)
	loss := func() float64 {
		out, _ := cv.Forward(xs)
		v, _ := quadLoss(out)
		return v
	}
	if _, err := GradCheck(cv.Params(), loss, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestConv1DInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	cv := NewConv1D("c", 2, 3, 3, Identity, rng)
	xs := randSeq(rng, 4, 2)
	ys, c := cv.Forward(xs)
	_, dys := quadLoss(ys)
	dxs := cv.Backward(dys, c)
	eps := 1e-5
	for t0 := range xs {
		for i := range xs[t0] {
			orig := xs[t0][i]
			xs[t0][i] = orig + eps
			yp, _ := cv.Forward(xs)
			lp, _ := quadLoss(yp)
			xs[t0][i] = orig - eps
			ym, _ := cv.Forward(xs)
			lm, _ := quadLoss(ym)
			xs[t0][i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dxs[t0][i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("input grad (%d,%d): analytic %v numeric %v", t0, i, dxs[t0][i], num)
			}
		}
	}
}

func TestConv1DEvenWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even window")
		}
	}()
	NewConv1D("c", 2, 3, 2, Identity, rand.New(rand.NewSource(1)))
}

func TestSelfAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sa := NewSelfAttention("a", 3, 4, rng)
	xs := randSeq(rng, 4, 3)
	ys, c := sa.Forward(xs)
	_, dys := quadLoss(ys)
	sa.Backward(dys, c)
	loss := func() float64 {
		out, _ := sa.Forward(xs)
		v, _ := quadLoss(out)
		return v
	}
	if _, err := GradCheck(sa.Params(), loss, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestSelfAttentionInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	sa := NewSelfAttention("a", 2, 3, rng)
	xs := randSeq(rng, 3, 2)
	ys, c := sa.Forward(xs)
	_, dys := quadLoss(ys)
	dxs := sa.Backward(dys, c)
	eps := 1e-5
	for t0 := range xs {
		for i := range xs[t0] {
			orig := xs[t0][i]
			xs[t0][i] = orig + eps
			yp, _ := sa.Forward(xs)
			lp, _ := quadLoss(yp)
			xs[t0][i] = orig - eps
			ym, _ := sa.Forward(xs)
			lm, _ := quadLoss(ym)
			xs[t0][i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dxs[t0][i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("input grad (%d,%d): analytic %v numeric %v", t0, i, dxs[t0][i], num)
			}
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	xs := []mat.Vec{{1, 5}, {3, 2}}
	y, c := MaxPool(xs)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("MaxPool: got %v", y)
	}
	dxs := MaxPoolBackward(mat.Vec{10, 20}, c)
	if dxs[1][0] != 10 || dxs[0][1] != 20 || dxs[0][0] != 0 || dxs[1][1] != 0 {
		t.Fatalf("MaxPoolBackward: got %v", dxs)
	}
}

func TestMeanPool(t *testing.T) {
	xs := []mat.Vec{{2, 4}, {4, 8}}
	y := MeanPool(xs)
	if y[0] != 3 || y[1] != 6 {
		t.Fatalf("MeanPool: got %v", y)
	}
	dxs := MeanPoolBackward(mat.Vec{2, 2}, 2)
	if dxs[0][0] != 1 || dxs[1][1] != 1 {
		t.Fatalf("MeanPoolBackward: got %v", dxs)
	}
}

func TestEmbeddingLookupAndAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := NewEmbedding("e", 5, 3, rng)
	v := e.Lookup(2)
	if len(v) != 3 {
		t.Fatalf("Lookup dim: got %d", len(v))
	}
	// out-of-range lookup returns zeros
	z := e.Lookup(-1)
	for _, x := range z {
		if x != 0 {
			t.Fatal("Lookup(-1) should be zero vector")
		}
	}
	e.Accumulate(2, mat.Vec{1, 1, 1})
	if e.Table.G.At(2, 0) != 1 {
		t.Fatal("Accumulate did not write gradient")
	}
	e.Accumulate(99, mat.Vec{1, 1, 1}) // must not panic
	e.Frozen = true
	e.Accumulate(2, mat.Vec{1, 1, 1})
	if e.Table.G.At(2, 0) != 1 {
		t.Fatal("frozen embedding must not accumulate")
	}
	if e.Params() != nil {
		t.Fatal("frozen embedding must expose no params")
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dr := NewDropout(0.5, rng)
	x := mat.Vec{1, 1, 1, 1, 1, 1, 1, 1}
	y, mask := dr.Forward(x, true)
	if mask == nil {
		t.Fatal("training dropout should return a mask")
	}
	zeros := 0
	for i := range y {
		if y[i] == 0 {
			zeros++
		} else if y[i] != 2 {
			t.Fatalf("kept values should be scaled by 1/keep: got %v", y[i])
		}
	}
	if zeros == 0 || zeros == len(y) {
		t.Logf("dropout extreme mask (zeros=%d); acceptable but unusual", zeros)
	}
	yi, mi := dr.Forward(x, false)
	if mi != nil || yi[0] != 1 {
		t.Fatal("inference dropout must be identity")
	}
	dy := dr.Backward(mat.Vec{1, 1, 1, 1, 1, 1, 1, 1}, mask)
	for i := range dy {
		if (mask[i] == 0) != (dy[i] == 0) {
			t.Fatal("backward must apply the same mask")
		}
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d1 := NewDense("d", 3, 2, Tanh, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, d1.Params()); err != nil {
		t.Fatal(err)
	}
	d2 := NewDense("d", 3, 2, Tanh, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, d2.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range d1.W.W.Data {
		if d1.W.W.Data[i] != d2.W.W.Data[i] {
			t.Fatal("weights differ after round trip")
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d1 := NewDense("d", 3, 2, Tanh, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, d1.Params()); err != nil {
		t.Fatal(err)
	}
	d2 := NewDense("d", 4, 2, Tanh, rng)
	if err := LoadParams(&buf, d2.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	p := NewParam("x", 1, 1)
	p.W.Data[0] = 5
	opt := NewSGD(0.1, 0, 0)
	for i := 0; i < 100; i++ {
		p.G.Data[0] = p.W.Data[0] // d/dx of 0.5x²
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 1e-3 {
		t.Fatalf("SGD did not converge: x=%v", p.W.Data[0])
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	p := NewParam("x", 1, 1)
	p.W.Data[0] = 5
	opt := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.G.Data[0] = p.W.Data[0]
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 1e-2 {
		t.Fatalf("Adam did not converge: x=%v", p.W.Data[0])
	}
}

func TestAdagradReducesQuadratic(t *testing.T) {
	p := NewParam("x", 1, 1)
	p.W.Data[0] = 5
	opt := NewAdagrad(0.5, 0)
	for i := 0; i < 2000; i++ {
		p.G.Data[0] = p.W.Data[0]
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 0.05 {
		t.Fatalf("Adagrad did not converge: x=%v", p.W.Data[0])
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("x", 1, 2)
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	norm := ClipGrads([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm: got %v", norm)
	}
	got := math.Hypot(p.G.Data[0], p.G.Data[1])
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-clip norm: got %v", got)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := NewParam("x", 1, 1)
	p.W.Data[0] = 5
	opt := NewSGD(0.05, 0.9, 0)
	for i := 0; i < 300; i++ {
		p.G.Data[0] = p.W.Data[0]
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]) > 1e-2 {
		t.Fatalf("momentum SGD did not converge: x=%v", p.W.Data[0])
	}
}

func TestCollectParamsAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := NewDense("d", 2, 2, Identity, rng)
	l := NewLSTM("l", 2, 2, rng)
	ps := CollectParams(d, l)
	if len(ps) != 4 {
		t.Fatalf("CollectParams: got %d params", len(ps))
	}
	ps[0].G.Data[0] = 9
	ZeroGrads(ps)
	if ps[0].G.Data[0] != 0 {
		t.Fatal("ZeroGrads did not clear")
	}
}
