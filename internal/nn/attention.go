package nn

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
)

// SelfAttention is single-head scaled dot-product self-attention over a
// sequence, used to let each token of a short concept attend to the others
// (Figures 5, 6 and 8 of the paper).
type SelfAttention struct {
	In, Dk     int
	Wq, Wk, Wv *Param
}

// NewSelfAttention returns a self-attention layer projecting inputs of dim
// `in` to key/query/value dim `dk`; the output dim is dk.
func NewSelfAttention(name string, in, dk int, rng *rand.Rand) *SelfAttention {
	return &SelfAttention{
		In: in, Dk: dk,
		Wq: NewParamXavier(name+".Wq", dk, in, rng),
		Wk: NewParamXavier(name+".Wk", dk, in, rng),
		Wv: NewParamXavier(name+".Wv", dk, in, rng),
	}
}

// Params implements Layer.
func (s *SelfAttention) Params() []*Param { return []*Param{s.Wq, s.Wk, s.Wv} }

// AttnCache holds forward state for the backward pass.
type AttnCache struct {
	xs      []mat.Vec
	q, k, v []mat.Vec
	attn    []mat.Vec // attn[i] = softmax over j
	n       int
}

// Forward computes out_i = Σ_j softmax_j(q_i·k_j/√dk) v_j.
func (s *SelfAttention) Forward(xs []mat.Vec) ([]mat.Vec, *AttnCache) {
	n := len(xs)
	c := &AttnCache{xs: xs, n: n}
	c.q = make([]mat.Vec, n)
	c.k = make([]mat.Vec, n)
	c.v = make([]mat.Vec, n)
	for i, x := range xs {
		c.q[i] = s.Wq.W.MulVec(x)
		c.k[i] = s.Wk.W.MulVec(x)
		c.v[i] = s.Wv.W.MulVec(x)
	}
	scale := 1 / math.Sqrt(float64(s.Dk))
	out := make([]mat.Vec, n)
	c.attn = make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		e := make(mat.Vec, n)
		for j := 0; j < n; j++ {
			e[j] = c.q[i].Dot(c.k[j]) * scale
		}
		a := mat.Softmax(e)
		c.attn[i] = a
		o := mat.NewVec(s.Dk)
		for j := 0; j < n; j++ {
			o.AddScaled(a[j], c.v[j])
		}
		out[i] = o
	}
	return out, c
}

// Backward accumulates projection gradients and returns input gradients.
func (s *SelfAttention) Backward(dys []mat.Vec, c *AttnCache) []mat.Vec {
	n := c.n
	scale := 1 / math.Sqrt(float64(s.Dk))
	dq := make([]mat.Vec, n)
	dk := make([]mat.Vec, n)
	dv := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		dq[i] = mat.NewVec(s.Dk)
		dk[i] = mat.NewVec(s.Dk)
		dv[i] = mat.NewVec(s.Dk)
	}
	for i := 0; i < n; i++ {
		a := c.attn[i]
		da := make(mat.Vec, n)
		for j := 0; j < n; j++ {
			da[j] = dys[i].Dot(c.v[j])
			dv[j].AddScaled(a[j], dys[i])
		}
		// softmax backward: de_j = a_j*(da_j - Σ a_j' da_j')
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += a[j] * da[j]
		}
		for j := 0; j < n; j++ {
			de := a[j] * (da[j] - dot) * scale
			dq[i].AddScaled(de, c.k[j])
			dk[j].AddScaled(de, c.q[i])
		}
	}
	dxs := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		s.Wq.G.AddOuter(1, dq[i], c.xs[i])
		s.Wk.G.AddOuter(1, dk[i], c.xs[i])
		s.Wv.G.AddOuter(1, dv[i], c.xs[i])
		dx := s.Wq.W.MulVecT(dq[i])
		dx.Add(s.Wk.W.MulVecT(dk[i]))
		dx.Add(s.Wv.W.MulVecT(dv[i]))
		dxs[i] = dx
	}
	return dxs
}
