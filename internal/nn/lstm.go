package nn

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
)

// LSTM is a single-direction long short-term memory layer applied over a
// sequence of input vectors. Gates are packed i|f|g|o into one weight matrix
// of shape (4H)×(In+H) as in the classic fused formulation.
type LSTM struct {
	In, Hidden int
	W          *Param // (4H)×(In+H)
	B          *Param // (4H)×1
}

// NewLSTM returns an LSTM with Glorot weights and forget-gate bias 1, the
// standard trick that eases gradient flow early in training.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		W:      NewParamXavier(name+".W", 4*hidden, in+hidden, rng),
		B:      NewParam(name+".b", 4*hidden, 1),
	}
	for k := 0; k < hidden; k++ {
		l.B.W.Data[hidden+k] = 1 // forget gate bias
	}
	return l
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.W, l.B} }

type lstmStep struct {
	x, hPrev, cPrev mat.Vec
	i, f, g, o      mat.Vec
	c, tanhC        mat.Vec
}

// LSTMCache stores per-step state for backpropagation through time.
type LSTMCache struct {
	steps []lstmStep
}

// Forward runs the LSTM over xs starting from zero state and returns the
// hidden state at every step plus the cache for Backward.
func (l *LSTM) Forward(xs []mat.Vec) ([]mat.Vec, *LSTMCache) {
	h := mat.NewVec(l.Hidden)
	c := mat.NewVec(l.Hidden)
	hs := make([]mat.Vec, len(xs))
	cache := &LSTMCache{steps: make([]lstmStep, len(xs))}
	H := l.Hidden
	for t, x := range xs {
		xh := mat.Concat(x, h)
		z := l.W.W.MulVec(xh)
		z.Add(l.B.W.Data)
		st := lstmStep{
			x: x, hPrev: h, cPrev: c,
			i: make(mat.Vec, H), f: make(mat.Vec, H), g: make(mat.Vec, H), o: make(mat.Vec, H),
			c: make(mat.Vec, H), tanhC: make(mat.Vec, H),
		}
		for k := 0; k < H; k++ {
			st.i[k] = mat.Sigmoid(z[k])
			st.f[k] = mat.Sigmoid(z[H+k])
			st.g[k] = math.Tanh(z[2*H+k])
			st.o[k] = mat.Sigmoid(z[3*H+k])
			st.c[k] = st.f[k]*c[k] + st.i[k]*st.g[k]
			st.tanhC[k] = math.Tanh(st.c[k])
		}
		newH := make(mat.Vec, H)
		for k := 0; k < H; k++ {
			newH[k] = st.o[k] * st.tanhC[k]
		}
		h, c = newH, st.c
		hs[t] = newH
		cache.steps[t] = st
	}
	return hs, cache
}

// Backward backpropagates through time given the gradient of the loss with
// respect to every hidden output, accumulates parameter gradients, and
// returns the gradient with respect to each input.
func (l *LSTM) Backward(dhs []mat.Vec, cache *LSTMCache) []mat.Vec {
	H := l.Hidden
	dxs := make([]mat.Vec, len(cache.steps))
	dhNext := mat.NewVec(H)
	dcNext := mat.NewVec(H)
	for t := len(cache.steps) - 1; t >= 0; t-- {
		st := cache.steps[t]
		dh := dhs[t].Clone()
		dh.Add(dhNext)
		dz := make(mat.Vec, 4*H)
		dc := dcNext.Clone()
		for k := 0; k < H; k++ {
			do := dh[k] * st.tanhC[k]
			dc[k] += dh[k] * st.o[k] * (1 - st.tanhC[k]*st.tanhC[k])
			di := dc[k] * st.g[k]
			df := dc[k] * st.cPrev[k]
			dg := dc[k] * st.i[k]
			dz[k] = di * st.i[k] * (1 - st.i[k])
			dz[H+k] = df * st.f[k] * (1 - st.f[k])
			dz[2*H+k] = dg * (1 - st.g[k]*st.g[k])
			dz[3*H+k] = do * st.o[k] * (1 - st.o[k])
		}
		xh := mat.Concat(st.x, st.hPrev)
		l.W.G.AddOuter(1, dz, xh)
		l.B.G.Data.Add(dz)
		dxh := l.W.W.MulVecT(dz)
		dxs[t] = mat.Vec(dxh[:l.In]).Clone()
		dhNext = mat.Vec(dxh[l.In:]).Clone()
		dcNext = make(mat.Vec, H)
		for k := 0; k < H; k++ {
			dcNext[k] = dc[k] * st.f[k]
		}
	}
	return dxs
}

// BiLSTM runs a forward and a backward LSTM over the sequence and
// concatenates their hidden states, giving each position context from both
// directions — the encoder used throughout the paper's models (Figures 4-6).
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM returns a bidirectional LSTM whose output dimension is 2*hidden.
func NewBiLSTM(name string, in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(name+".fwd", in, hidden, rng),
		Bwd: NewLSTM(name+".bwd", in, hidden, rng),
	}
}

// Params implements Layer.
func (b *BiLSTM) Params() []*Param { return append(b.Fwd.Params(), b.Bwd.Params()...) }

// OutDim returns the per-position output dimension (2*hidden).
func (b *BiLSTM) OutDim() int { return 2 * b.Fwd.Hidden }

// BiLSTMCache stores both directions' caches.
type BiLSTMCache struct {
	fwd, bwd *LSTMCache
	n        int
}

func reverseSeq(xs []mat.Vec) []mat.Vec {
	out := make([]mat.Vec, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

// Forward returns per-position concatenated [fwd_t ; bwd_t] states.
func (b *BiLSTM) Forward(xs []mat.Vec) ([]mat.Vec, *BiLSTMCache) {
	fh, fc := b.Fwd.Forward(xs)
	bhRev, bc := b.Bwd.Forward(reverseSeq(xs))
	bh := reverseSeq(bhRev)
	out := make([]mat.Vec, len(xs))
	for t := range xs {
		out[t] = mat.Concat(fh[t], bh[t])
	}
	return out, &BiLSTMCache{fwd: fc, bwd: bc, n: len(xs)}
}

// Backward splits the upstream gradient between the two directions,
// backpropagates each, and returns summed input gradients.
func (b *BiLSTM) Backward(dhs []mat.Vec, cache *BiLSTMCache) []mat.Vec {
	H := b.Fwd.Hidden
	dFwd := make([]mat.Vec, cache.n)
	dBwd := make([]mat.Vec, cache.n)
	for t := 0; t < cache.n; t++ {
		dFwd[t] = mat.Vec(dhs[t][:H]).Clone()
		dBwd[cache.n-1-t] = mat.Vec(dhs[t][H:]).Clone()
	}
	dxF := b.Fwd.Backward(dFwd, cache.fwd)
	dxBRev := b.Bwd.Backward(dBwd, cache.bwd)
	dxB := reverseSeq(dxBRev)
	out := make([]mat.Vec, cache.n)
	for t := 0; t < cache.n; t++ {
		out[t] = dxF[t].Clone()
		out[t].Add(dxB[t])
	}
	return out
}
