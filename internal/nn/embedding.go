package nn

import (
	"math/rand"

	"alicoco/internal/mat"
)

// Embedding is a lookup table mapping token ids to dense vectors.
type Embedding struct {
	Vocab, Dim int
	Table      *Param
	Frozen     bool // when true, Backward does not accumulate gradients
}

// NewEmbedding returns an embedding table initialized uniformly in
// [-0.5/dim, 0.5/dim], the word2vec convention.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Vocab: vocab, Dim: dim, Table: NewParam(name, vocab, dim)}
	e.Table.W.RandInit(rng, 0.5/float64(dim))
	return e
}

// NewEmbeddingFrom wraps pre-trained vectors (rows of m) as an embedding
// layer. The table is copied.
func NewEmbeddingFrom(name string, m *mat.Mat, frozen bool) *Embedding {
	e := &Embedding{Vocab: m.Rows, Dim: m.Cols, Table: NewParam(name, m.Rows, m.Cols), Frozen: frozen}
	copy(e.Table.W.Data, m.Data)
	return e
}

// Params implements Layer. A frozen embedding exposes no trainable params.
func (e *Embedding) Params() []*Param {
	if e.Frozen {
		return nil
	}
	return []*Param{e.Table}
}

// Lookup returns the vector for id. Ids outside the table return a zero
// vector (used for padding / unknown tokens mapped to -1).
func (e *Embedding) Lookup(id int) mat.Vec {
	if id < 0 || id >= e.Vocab {
		return mat.NewVec(e.Dim)
	}
	return e.Table.W.Row(id).Clone()
}

// LookupSeq maps a sequence of ids to vectors.
func (e *Embedding) LookupSeq(ids []int) []mat.Vec {
	out := make([]mat.Vec, len(ids))
	for i, id := range ids {
		out[i] = e.Lookup(id)
	}
	return out
}

// Accumulate adds the gradient d into the row for id.
func (e *Embedding) Accumulate(id int, d mat.Vec) {
	if e.Frozen || id < 0 || id >= e.Vocab {
		return
	}
	e.Table.G.Row(id).Add(d)
}

// AccumulateSeq adds per-position gradients for a sequence lookup.
func (e *Embedding) AccumulateSeq(ids []int, ds []mat.Vec) {
	for i, id := range ids {
		e.Accumulate(id, ds[i])
	}
}
