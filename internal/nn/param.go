// Package nn is the neural-network substrate used by every learned module in
// the AliCoCo reproduction: dense layers, embeddings, (bi)LSTMs, 1-D
// convolutions, self-attention, linear-chain CRFs (plain and fuzzy), and the
// optimizers that train them. Everything is stdlib-only float64 code with
// explicit, hand-derived backward passes; correctness is enforced by
// finite-difference gradient checks in the test suite.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"alicoco/internal/mat"
)

// Param is a single trainable tensor with its accumulated gradient.
type Param struct {
	Name string
	W    *mat.Mat
	G    *mat.Mat
}

// NewParam returns a zero-initialized parameter with the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: mat.NewMat(rows, cols), G: mat.NewMat(rows, cols)}
}

// NewParamXavier returns a Glorot-initialized parameter.
func NewParamXavier(name string, rows, cols int, rng *rand.Rand) *Param {
	p := NewParam(name, rows, cols)
	p.W.XavierInit(rng, cols, rows)
	return p
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is anything exposing trainable parameters.
type Layer interface {
	Params() []*Param
}

// CollectParams flattens the parameters of several layers.
func CollectParams(layers ...Layer) []*Param {
	var out []*Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// paramState is the gob wire form of a parameter.
type paramState struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams serializes the weights (not gradients) of ps to w.
func SaveParams(w io.Writer, ps []*Param) error {
	states := make([]paramState, len(ps))
	for i, p := range ps {
		states[i] = paramState{Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols, Data: p.W.Data}
	}
	return gob.NewEncoder(w).Encode(states)
}

// LoadParams restores weights saved by SaveParams into ps, matching by
// position and validating name and shape.
func LoadParams(r io.Reader, ps []*Param) error {
	var states []paramState
	if err := gob.NewDecoder(r).Decode(&states); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(states) != len(ps) {
		return fmt.Errorf("nn: param count mismatch: saved %d, model has %d", len(states), len(ps))
	}
	for i, s := range states {
		p := ps[i]
		if s.Name != p.Name || s.Rows != p.W.Rows || s.Cols != p.W.Cols {
			return fmt.Errorf("nn: param %d mismatch: saved %s %dx%d, model %s %dx%d",
				i, s.Name, s.Rows, s.Cols, p.Name, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, s.Data)
	}
	return nil
}
