package nn

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
)

// CRF is a linear-chain conditional random field over K labels with learned
// transition scores, including virtual START and END states. It provides
// both the standard negative log-likelihood (single gold path, Figure 4) and
// the fuzzy variant of Shang et al. used in Section 5.3, whose numerator
// marginalizes over a *set* of acceptable label sequences (Equation 8).
type CRF struct {
	K     int
	Trans *Param // (K+2)×(K+2); row/col K = START, K+1 = END
}

// NewCRF returns a CRF with small random transition scores.
func NewCRF(name string, k int, rng *rand.Rand) *CRF {
	c := &CRF{K: k, Trans: NewParam(name+".trans", k+2, k+2)}
	c.Trans.W.RandInit(rng, 0.1)
	return c
}

// Params implements Layer.
func (c *CRF) Params() []*Param { return []*Param{c.Trans} }

func (c *CRF) start() int { return c.K }
func (c *CRF) end() int   { return c.K + 1 }

// forwardBackward computes the log-partition over label sequences restricted
// to `allowed` (nil means unrestricted) and, when sign != 0, accumulates
// sign * expected sufficient statistics into the transition gradient and
// into dEmit. This single routine powers both terms of the (fuzzy) loss.
func (c *CRF) forwardBackward(emit []mat.Vec, allowed [][]bool, sign float64, dEmit []mat.Vec) float64 {
	n := len(emit)
	if n == 0 {
		return 0
	}
	K := c.K
	tr := c.Trans.W
	ok := func(t, k int) bool {
		if allowed == nil {
			return true
		}
		row := allowed[t]
		any := false
		for _, b := range row {
			if b {
				any = true
				break
			}
		}
		if !any {
			return true // degenerate mask: treat as unrestricted
		}
		return row[k]
	}
	negInf := math.Inf(-1)
	alpha := make([]mat.Vec, n)
	for t := range alpha {
		alpha[t] = make(mat.Vec, K)
	}
	for k := 0; k < K; k++ {
		if ok(0, k) {
			alpha[0][k] = emit[0][k] + tr.At(c.start(), k)
		} else {
			alpha[0][k] = negInf
		}
	}
	scratch := make(mat.Vec, K)
	for t := 1; t < n; t++ {
		for k := 0; k < K; k++ {
			if !ok(t, k) {
				alpha[t][k] = negInf
				continue
			}
			for j := 0; j < K; j++ {
				scratch[j] = alpha[t-1][j] + tr.At(j, k)
			}
			alpha[t][k] = emit[t][k] + mat.LogSumExp(scratch)
		}
	}
	final := make(mat.Vec, K)
	for k := 0; k < K; k++ {
		final[k] = alpha[n-1][k] + tr.At(k, c.end())
	}
	logZ := mat.LogSumExp(final)
	if sign == 0 {
		return logZ
	}

	beta := make([]mat.Vec, n)
	for t := range beta {
		beta[t] = make(mat.Vec, K)
	}
	for k := 0; k < K; k++ {
		beta[n-1][k] = tr.At(k, c.end())
	}
	for t := n - 2; t >= 0; t-- {
		for k := 0; k < K; k++ {
			for j := 0; j < K; j++ {
				if ok(t+1, j) {
					scratch[j] = tr.At(k, j) + emit[t+1][j] + beta[t+1][j]
				} else {
					scratch[j] = negInf
				}
			}
			beta[t][k] = mat.LogSumExp(scratch)
		}
	}

	g := c.Trans.G
	// Unary marginals -> emission grads, START and END transitions.
	for t := 0; t < n; t++ {
		for k := 0; k < K; k++ {
			lp := alpha[t][k] + beta[t][k] - logZ
			if math.IsInf(lp, -1) {
				continue
			}
			p := math.Exp(lp)
			dEmit[t][k] += sign * p
			if t == 0 {
				g.Set(c.start(), k, g.At(c.start(), k)+sign*p)
			}
			if t == n-1 {
				g.Set(k, c.end(), g.At(k, c.end())+sign*p)
			}
		}
	}
	// Pairwise marginals -> interior transition grads.
	for t := 0; t < n-1; t++ {
		for j := 0; j < K; j++ {
			if math.IsInf(alpha[t][j], -1) {
				continue
			}
			for k := 0; k < K; k++ {
				if !ok(t+1, k) {
					continue
				}
				lp := alpha[t][j] + tr.At(j, k) + emit[t+1][k] + beta[t+1][k] - logZ
				if math.IsInf(lp, -1) {
					continue
				}
				g.Set(j, k, g.At(j, k)+sign*math.Exp(lp))
			}
		}
	}
	return logZ
}

// pathScore returns the score of a specific label path and, when sign != 0,
// accumulates sign * its sufficient statistics.
func (c *CRF) pathScore(emit []mat.Vec, path []int, sign float64, dEmit []mat.Vec) float64 {
	n := len(emit)
	if n == 0 {
		return 0
	}
	tr, g := c.Trans.W, c.Trans.G
	s := emit[0][path[0]] + tr.At(c.start(), path[0])
	if sign != 0 {
		dEmit[0][path[0]] += sign
		g.Set(c.start(), path[0], g.At(c.start(), path[0])+sign)
	}
	for t := 1; t < n; t++ {
		s += emit[t][path[t]] + tr.At(path[t-1], path[t])
		if sign != 0 {
			dEmit[t][path[t]] += sign
			g.Set(path[t-1], path[t], g.At(path[t-1], path[t])+sign)
		}
	}
	s += tr.At(path[n-1], c.end())
	if sign != 0 {
		g.Set(path[n-1], c.end(), g.At(path[n-1], c.end())+sign)
	}
	return s
}

// Loss returns the negative log-likelihood of the gold path and accumulates
// gradients into the transition parameters and the returned dEmit.
func (c *CRF) Loss(emit []mat.Vec, gold []int) (float64, []mat.Vec) {
	dEmit := make([]mat.Vec, len(emit))
	for t := range dEmit {
		dEmit[t] = make(mat.Vec, c.K)
	}
	logZ := c.forwardBackward(emit, nil, 1, dEmit)
	score := c.pathScore(emit, gold, -1, dEmit)
	return logZ - score, dEmit
}

// FuzzyLoss returns -log P(Y ∈ allowed | X): the log-partition over all
// sequences minus the log-partition over the allowed set (Equation 8).
func (c *CRF) FuzzyLoss(emit []mat.Vec, allowed [][]bool) (float64, []mat.Vec) {
	dEmit := make([]mat.Vec, len(emit))
	for t := range dEmit {
		dEmit[t] = make(mat.Vec, c.K)
	}
	logZ := c.forwardBackward(emit, nil, 1, dEmit)
	logZc := c.forwardBackward(emit, allowed, -1, dEmit)
	return logZ - logZc, dEmit
}

// Decode returns the Viterbi-optimal label path and its score.
func (c *CRF) Decode(emit []mat.Vec) ([]int, float64) {
	n := len(emit)
	if n == 0 {
		return nil, 0
	}
	K := c.K
	tr := c.Trans.W
	delta := make([]mat.Vec, n)
	back := make([][]int, n)
	for t := range delta {
		delta[t] = make(mat.Vec, K)
		back[t] = make([]int, K)
	}
	for k := 0; k < K; k++ {
		delta[0][k] = emit[0][k] + tr.At(c.start(), k)
	}
	for t := 1; t < n; t++ {
		for k := 0; k < K; k++ {
			best, arg := math.Inf(-1), 0
			for j := 0; j < K; j++ {
				s := delta[t-1][j] + tr.At(j, k)
				if s > best {
					best, arg = s, j
				}
			}
			delta[t][k] = emit[t][k] + best
			back[t][k] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for k := 0; k < K; k++ {
		s := delta[n-1][k] + tr.At(k, c.end())
		if s > best {
			best, arg = s, k
		}
	}
	path := make([]int, n)
	path[n-1] = arg
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path, best
}

// Marginals returns per-position label posteriors p(y_t = k | X).
func (c *CRF) Marginals(emit []mat.Vec) []mat.Vec {
	dEmit := make([]mat.Vec, len(emit))
	for t := range dEmit {
		dEmit[t] = make(mat.Vec, c.K)
	}
	// Run forward-backward with sign=1 into a throwaway gradient, then
	// subtract what we added to keep Trans.G untouched.
	gBefore := c.Trans.G.Clone()
	c.forwardBackward(emit, nil, 1, dEmit)
	c.Trans.G.Data = gBefore.Data
	return dEmit
}
