package nn

import (
	"math"
	"math/rand"
	"testing"

	"alicoco/internal/mat"
)

func randEmissions(rng *rand.Rand, n, k int) []mat.Vec {
	e := make([]mat.Vec, n)
	for t := range e {
		e[t] = make(mat.Vec, k)
		for i := range e[t] {
			e[t][i] = rng.NormFloat64()
		}
	}
	return e
}

// enumerate returns the log-partition by brute force over all K^n paths.
func bruteLogZ(c *CRF, emit []mat.Vec, allowed [][]bool) float64 {
	n, K := len(emit), c.K
	var scores []float64
	path := make([]int, n)
	var rec func(t int)
	rec = func(t int) {
		if t == n {
			scores = append(scores, c.pathScore(emit, path, 0, nil))
			return
		}
		for k := 0; k < K; k++ {
			if allowed != nil && !allowed[t][k] {
				continue
			}
			path[t] = k
			rec(t + 1)
		}
	}
	rec(0)
	return mat.LogSumExp(scores)
}

func TestCRFLogZMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCRF("c", 3, rng)
	emit := randEmissions(rng, 4, 3)
	got := c.forwardBackward(emit, nil, 0, nil)
	want := bruteLogZ(c, emit, nil)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("logZ: got %v want %v", got, want)
	}
}

func TestCRFConstrainedLogZMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewCRF("c", 3, rng)
	emit := randEmissions(rng, 4, 3)
	allowed := [][]bool{
		{true, false, true},
		{false, true, false},
		{true, true, true},
		{false, false, true},
	}
	got := c.forwardBackward(emit, allowed, 0, nil)
	want := bruteLogZ(c, emit, allowed)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("constrained logZ: got %v want %v", got, want)
	}
}

func TestCRFLossNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCRF("c", 4, rng)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		emit := randEmissions(rng, n, 4)
		gold := make([]int, n)
		for i := range gold {
			gold[i] = rng.Intn(4)
		}
		l, _ := c.Loss(emit, gold)
		if l < -1e-9 {
			t.Fatalf("NLL must be >= 0, got %v", l)
		}
		ZeroGrads(c.Params())
	}
}

func TestCRFGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := NewCRF("c", 3, rng)
	emit := randEmissions(rng, 4, 3)
	gold := []int{0, 2, 1, 2}
	_, dEmit := c.Loss(emit, gold)

	// Check transition gradient.
	loss := func() float64 {
		gSave := c.Trans.G.Clone()
		l, _ := c.Loss(emit, gold)
		c.Trans.G.Data = gSave.Data
		return l
	}
	if _, err := GradCheck(c.Params(), loss, 1e-5); err != nil {
		t.Fatal(err)
	}

	// Check emission gradient against finite differences.
	eps := 1e-5
	for t0 := range emit {
		for k := range emit[t0] {
			orig := emit[t0][k]
			gSave := c.Trans.G.Clone()
			emit[t0][k] = orig + eps
			lp, _ := c.Loss(emit, gold)
			emit[t0][k] = orig - eps
			lm, _ := c.Loss(emit, gold)
			emit[t0][k] = orig
			c.Trans.G.Data = gSave.Data
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dEmit[t0][k]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("emission grad (%d,%d): analytic %v numeric %v", t0, k, dEmit[t0][k], num)
			}
		}
	}
}

func TestFuzzyCRFGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewCRF("c", 3, rng)
	emit := randEmissions(rng, 3, 3)
	allowed := [][]bool{
		{true, true, false},
		{false, true, true},
		{true, false, true},
	}
	_, dEmit := c.FuzzyLoss(emit, allowed)

	loss := func() float64 {
		gSave := c.Trans.G.Clone()
		l, _ := c.FuzzyLoss(emit, allowed)
		c.Trans.G.Data = gSave.Data
		return l
	}
	if _, err := GradCheck(c.Params(), loss, 1e-5); err != nil {
		t.Fatal(err)
	}

	eps := 1e-5
	for t0 := range emit {
		for k := range emit[t0] {
			orig := emit[t0][k]
			gSave := c.Trans.G.Clone()
			emit[t0][k] = orig + eps
			lp, _ := c.FuzzyLoss(emit, allowed)
			emit[t0][k] = orig - eps
			lm, _ := c.FuzzyLoss(emit, allowed)
			emit[t0][k] = orig
			c.Trans.G.Data = gSave.Data
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dEmit[t0][k]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("fuzzy emission grad (%d,%d): analytic %v numeric %v", t0, k, dEmit[t0][k], num)
			}
		}
	}
}

func TestFuzzySingletonEqualsPlainLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := NewCRF("c", 3, rng)
	emit := randEmissions(rng, 4, 3)
	gold := []int{1, 0, 2, 2}
	allowed := make([][]bool, len(gold))
	for t0, g := range gold {
		allowed[t0] = make([]bool, 3)
		allowed[t0][g] = true
	}
	lPlain, _ := c.Loss(emit, gold)
	ZeroGrads(c.Params())
	lFuzzy, _ := c.FuzzyLoss(emit, allowed)
	if math.Abs(lPlain-lFuzzy) > 1e-9 {
		t.Fatalf("fuzzy with singleton set should equal plain NLL: %v vs %v", lFuzzy, lPlain)
	}
}

func TestFuzzyLossNonNegativeAndBelowPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCRF("c", 3, rng)
	emit := randEmissions(rng, 4, 3)
	gold := []int{1, 0, 2, 2}
	// Allowed set contains gold plus extra options: fuzzy loss must be
	// >= 0 and <= plain NLL of the gold path (superset probability).
	allowed := make([][]bool, len(gold))
	for t0, g := range gold {
		allowed[t0] = make([]bool, 3)
		allowed[t0][g] = true
		allowed[t0][(g+1)%3] = true
	}
	lPlain, _ := c.Loss(emit, gold)
	ZeroGrads(c.Params())
	lFuzzy, _ := c.FuzzyLoss(emit, allowed)
	if lFuzzy < -1e-9 {
		t.Fatalf("fuzzy loss must be >= 0, got %v", lFuzzy)
	}
	if lFuzzy > lPlain+1e-9 {
		t.Fatalf("fuzzy loss over superset must not exceed plain NLL: %v vs %v", lFuzzy, lPlain)
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewCRF("c", 3, rng)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5)
		emit := randEmissions(rng, n, 3)
		path, score := c.Decode(emit)
		// Brute force best path.
		best := math.Inf(-1)
		cur := make([]int, n)
		var rec func(t int)
		rec = func(t int) {
			if t == n {
				s := c.pathScore(emit, cur, 0, nil)
				if s > best {
					best = s
				}
				return
			}
			for k := 0; k < 3; k++ {
				cur[t] = k
				rec(t + 1)
			}
		}
		rec(0)
		if math.Abs(score-best) > 1e-9 {
			t.Fatalf("viterbi score %v != brute force %v", score, best)
		}
		if got := c.pathScore(emit, path, 0, nil); math.Abs(got-best) > 1e-9 {
			t.Fatalf("viterbi path score %v != brute force %v", got, best)
		}
	}
}

func TestMarginalsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := NewCRF("c", 4, rng)
	emit := randEmissions(rng, 5, 4)
	gBefore := c.Trans.G.Clone()
	marg := c.Marginals(emit)
	for t0, m := range marg {
		if math.Abs(m.Sum()-1) > 1e-9 {
			t.Fatalf("marginals at %d sum to %v", t0, m.Sum())
		}
	}
	for i := range gBefore.Data {
		if c.Trans.G.Data[i] != gBefore.Data[i] {
			t.Fatal("Marginals must not mutate gradients")
		}
	}
}

func TestCRFEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := NewCRF("c", 3, rng)
	l, _ := c.Loss(nil, nil)
	if l != 0 {
		t.Fatalf("empty loss: got %v", l)
	}
	path, _ := c.Decode(nil)
	if path != nil {
		t.Fatalf("empty decode: got %v", path)
	}
}

// Training sanity: a BiLSTM-CRF on a toy pattern should fit it.
func TestBiLSTMCRFLearnsToyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	emb := NewEmbedding("emb", 6, 8, rng)
	bi := NewBiLSTM("bi", 8, 6, rng)
	proj := NewDense("proj", 12, 3, Identity, rng)
	crf := NewCRF("crf", 3, rng)
	params := CollectParams(emb, bi, proj, crf)
	opt := NewAdam(0.02, 5)

	// token i -> label i%3, with sequences of tokens 0..5
	seqs := [][]int{{0, 1, 2, 3}, {3, 4, 5}, {1, 2, 3, 4, 5}, {0, 2, 4}, {5, 1, 3}}
	labelOf := func(tok int) int { return tok % 3 }

	forward := func(toks []int) ([]mat.Vec, func(dEmit []mat.Vec)) {
		xs := emb.LookupSeq(toks)
		hs, bc := bi.Forward(xs)
		emits := make([]mat.Vec, len(hs))
		caches := make([]*DenseCache, len(hs))
		for i, h := range hs {
			emits[i], caches[i] = proj.Forward(h)
		}
		back := func(dEmit []mat.Vec) {
			dhs := make([]mat.Vec, len(dEmit))
			for i := range dEmit {
				dhs[i] = proj.Backward(dEmit[i], caches[i])
			}
			dxs := bi.Backward(dhs, bc)
			emb.AccumulateSeq(toks, dxs)
		}
		return emits, back
	}

	for epoch := 0; epoch < 60; epoch++ {
		for _, toks := range seqs {
			gold := make([]int, len(toks))
			for i, tk := range toks {
				gold[i] = labelOf(tk)
			}
			emits, back := forward(toks)
			_, dEmit := crf.Loss(emits, gold)
			back(dEmit)
			opt.Step(params)
		}
	}

	correct, total := 0, 0
	for _, toks := range seqs {
		emits, _ := forward(toks)
		ZeroGrads(params)
		path, _ := crf.Decode(emits)
		for i, tk := range toks {
			total++
			if path[i] == labelOf(tk) {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Fatalf("BiLSTM-CRF failed to fit toy pattern: accuracy %.2f", acc)
	}
}
