package nn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: logZ upper-bounds the score of every individual path, so the
// CRF NLL of any gold path is non-negative.
func TestPropertyLogZBoundsPathScores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		c := NewCRF("c", k, rng)
		emit := randEmissions(rng, n, k)
		logZ := c.forwardBackward(emit, nil, 0, nil)
		path := make([]int, n)
		for i := range path {
			path[i] = rng.Intn(k)
		}
		return c.pathScore(emit, path, 0, nil) <= logZ+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: constraining the label set can only lower the partition
// function, so the fuzzy loss is always non-negative.
func TestPropertyConstrainedLogZMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		c := NewCRF("c", k, rng)
		emit := randEmissions(rng, n, k)
		allowed := make([][]bool, n)
		for i := range allowed {
			allowed[i] = make([]bool, k)
			any := false
			for j := range allowed[i] {
				allowed[i][j] = rng.Intn(2) == 0
				any = any || allowed[i][j]
			}
			if !any {
				allowed[i][rng.Intn(k)] = true
			}
		}
		full := c.forwardBackward(emit, nil, 0, nil)
		constrained := c.forwardBackward(emit, allowed, 0, nil)
		return constrained <= full+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: enlarging the allowed set never increases the fuzzy loss
// (more acceptable paths -> higher numerator probability).
func TestPropertyFuzzyLossMonotoneInAllowedSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3
		n := 1 + rng.Intn(4)
		c := NewCRF("c", k, rng)
		emit := randEmissions(rng, n, k)
		small := make([][]bool, n)
		large := make([][]bool, n)
		for i := range small {
			small[i] = make([]bool, k)
			large[i] = make([]bool, k)
			g := rng.Intn(k)
			small[i][g] = true
			copy(large[i], small[i])
			large[i][rng.Intn(k)] = true
		}
		lSmall, _ := c.FuzzyLoss(emit, small)
		ZeroGrads(c.Params())
		lLarge, _ := c.FuzzyLoss(emit, large)
		ZeroGrads(c.Params())
		return lLarge <= lSmall+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Viterbi path's score never falls below any random path's
// score.
func TestPropertyViterbiOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		c := NewCRF("c", k, rng)
		emit := randEmissions(rng, n, k)
		_, best := c.Decode(emit)
		for trial := 0; trial < 10; trial++ {
			path := make([]int, n)
			for i := range path {
				path[i] = rng.Intn(k)
			}
			if c.pathScore(emit, path, 0, nil) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
