package nn

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
)

// Activation identifies the nonlinearity applied by a Dense layer.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	Tanh
	SigmoidAct
	ReLU
)

func activate(a Activation, x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case SigmoidAct:
		return mat.Sigmoid(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// activateGrad returns dy/dz given the activation output y.
func activateGrad(a Activation, y float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case SigmoidAct:
		return y * (1 - y)
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Dense is a fully connected layer y = act(Wx + b).
type Dense struct {
	In, Out int
	Act     Activation
	W, B    *Param
}

// NewDense returns a Glorot-initialized dense layer.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	return &Dense{
		In:  in,
		Out: out,
		Act: act,
		W:   NewParamXavier(name+".W", out, in, rng),
		B:   NewParam(name+".b", out, 1),
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// DenseCache stores the forward state needed for the backward pass.
type DenseCache struct {
	x, y mat.Vec
}

// Forward applies the layer to x and returns the output with a cache.
func (d *Dense) Forward(x mat.Vec) (mat.Vec, *DenseCache) {
	y := d.W.W.MulVec(x)
	for i := range y {
		y[i] = activate(d.Act, y[i]+d.B.W.Data[i])
	}
	return y, &DenseCache{x: x, y: y}
}

// Apply runs the layer without recording a cache (inference only).
func (d *Dense) Apply(x mat.Vec) mat.Vec {
	y, _ := d.Forward(x)
	return y
}

// Backward accumulates gradients for dy at the cached input and returns dx.
func (d *Dense) Backward(dy mat.Vec, c *DenseCache) mat.Vec {
	dz := make(mat.Vec, d.Out)
	for i := range dz {
		dz[i] = dy[i] * activateGrad(d.Act, c.y[i])
	}
	d.W.G.AddOuter(1, dz, c.x)
	d.B.G.Data.Add(dz)
	return d.W.W.MulVecT(dz)
}

// Dropout applies inverted dropout with probability p during training.
type Dropout struct {
	P   float64
	rng *rand.Rand
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward masks x during training; at p=0 or train=false it is the identity.
// The returned mask must be passed to Backward.
func (dr *Dropout) Forward(x mat.Vec, train bool) (mat.Vec, mat.Vec) {
	if !train || dr.P <= 0 {
		return x, nil
	}
	keep := 1 - dr.P
	out := make(mat.Vec, len(x))
	mask := make(mat.Vec, len(x))
	for i := range x {
		if dr.rng.Float64() < keep {
			mask[i] = 1 / keep
			out[i] = x[i] * mask[i]
		}
	}
	return out, mask
}

// Backward applies the dropout mask to the upstream gradient.
func (dr *Dropout) Backward(dy mat.Vec, mask mat.Vec) mat.Vec {
	if mask == nil {
		return dy
	}
	out := make(mat.Vec, len(dy))
	for i := range dy {
		out[i] = dy[i] * mask[i]
	}
	return out
}
