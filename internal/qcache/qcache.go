// Package qcache is a sharded, generation-stamped query-result cache for
// the serving path. AliCoCo's workloads (semantic search, cognitive
// recommendation) are read-heavy with highly skewed, repetitive query
// distributions — exactly the shape a result cache exploits — and serving
// runs on immutable frozen snapshots, which makes invalidation trivial:
// every entry is stamped with the snapshot's publish generation (plus its
// checksum), and lookups carry the stamp of the snapshot they are about to
// read. A /reload or Refreeze bumps the generation, so every entry cached
// against the old snapshot simply stops matching — the whole cache is
// invalidated for free, with no epoch scans and no flush pause. Stale
// entries are dropped lazily when a lookup lands on them, or pushed out by
// normal LRU pressure.
//
// Concurrency: keys are hashed with xxhash64 and distributed across
// power-of-two shards; each shard is an independent mutex + intrusive LRU
// list, so concurrent requests contend only when they hash to the same
// shard. Get and GetString are allocation-free (stored values are returned
// as-is); Put copies the key and should be handed an immutable value.
package qcache

import (
	"runtime"
	"sync"
)

// Stamp identifies the serving snapshot an entry was computed from: the
// facade's monotone publish generation plus the snapshot file's CRC-32
// (zero for in-process freezes). An entry is served only when its stamp
// equals the lookup's stamp, so a republished snapshot can never satisfy a
// lookup with results from a predecessor.
type Stamp struct {
	Gen uint64
	Sum uint32
}

// Stats is a point-in-time counter snapshot of one cache.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// entry is one cached result, linked into its shard's LRU list.
type entry struct {
	hash       uint64 // full key hash, kept for map deletion on eviction
	key        []byte // full key bytes, compared on every hit (collision guard)
	stamp      Stamp
	val        any
	prev, next *entry // LRU list, head = most recently used
}

// shard is an independent slice of the cache: its own lock, hash map, and
// LRU list. One map slot per hash; a colliding Put replaces the resident.
type shard struct {
	mu         sync.Mutex
	m          map[uint64]*entry
	head, tail *entry
	cap        int
	hits       uint64
	misses     uint64
	evictions  uint64
}

// Cache is a sharded, bounded, generation-stamped result cache. The zero
// value is not usable; construct with New. A nil *Cache is valid and
// behaves as an always-miss cache, so callers can leave caching unwired
// without branching.
type Cache struct {
	shards []shard
	mask   uint64
}

// shardCount picks a power-of-two shard count scaled to the host's
// parallelism (capped so tiny caches are not shredded into useless slivers).
func shardCount() int {
	n := runtime.GOMAXPROCS(0)
	c := 1
	for c < n && c < 64 {
		c <<= 1
	}
	return c
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// New returns a cache holding about capacity entries, rounded up to a power
// of two and split evenly across the shards. capacity <= 0 yields a cache
// that stores nothing (every lookup misses), which is how caching is
// disabled without changing call sites.
func New(capacity int) *Cache {
	return newWithShards(capacity, shardCount())
}

// newWithShards is New with an explicit shard count (tests pin it so LRU
// order is deterministic regardless of GOMAXPROCS).
func newWithShards(capacity, shards int) *Cache {
	shards = ceilPow2(shards)
	c := &Cache{shards: make([]shard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*entry)
	}
	c.setCapacity(capacity)
	return c
}

// setCapacity distributes capacity across shards and evicts overflow.
func (c *Cache) setCapacity(capacity int) {
	per := 0
	if capacity > 0 {
		per = ceilPow2(capacity) / len(c.shards)
		if per < 1 {
			per = 1
		}
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.cap = per
		for len(s.m) > s.cap {
			s.evictTail()
		}
		s.mu.Unlock()
	}
}

// Resize changes the cache's capacity in place, evicting LRU overflow.
// n <= 0 empties the cache and disables storage.
func (c *Cache) Resize(n int) {
	if c == nil {
		return
	}
	c.setCapacity(n)
}

// Get returns the value cached for key under stamp. An entry stamped by a
// different snapshot generation is a miss and is dropped on the spot.
func (c *Cache) Get(stamp Stamp, key []byte) (any, bool) {
	if c == nil {
		return nil, false
	}
	h := Hash(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[h]
	if e == nil || !bytesEqualKey(e.key, key) {
		s.misses++
		return nil, false
	}
	if e.stamp != stamp {
		// Lazy invalidation: the serving snapshot moved on, so the slot is
		// dead weight — free it rather than waiting for LRU pressure.
		s.remove(e)
		s.misses++
		return nil, false
	}
	s.moveToFront(e)
	s.hits++
	return e.val, true
}

// GetString is Get keyed by a string, hashing and comparing without
// converting (or allocating) the key.
func (c *Cache) GetString(stamp Stamp, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	h := Hash(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[h]
	if e == nil || string(e.key) != key { // string(b) == s compiles without allocating
		s.misses++
		return nil, false
	}
	if e.stamp != stamp {
		s.remove(e)
		s.misses++
		return nil, false
	}
	s.moveToFront(e)
	s.hits++
	return e.val, true
}

// Put stores val for key under stamp. The key bytes are copied; val is
// retained as-is and must never be mutated afterwards (cache a private
// deep copy of anything the caller will reuse). A hash-colliding resident
// entry is replaced, keeping the map at one entry per hash.
func (c *Cache) Put(stamp Stamp, key []byte, val any) {
	if c == nil {
		return
	}
	h := Hash(key)
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap <= 0 {
		return
	}
	if e := s.m[h]; e != nil {
		// Same hash: refresh in place (same key) or replace the colliding
		// resident — either way the newest result wins the slot.
		e.key = append(e.key[:0], key...)
		e.stamp = stamp
		e.val = val
		s.moveToFront(e)
		return
	}
	e := &entry{hash: h, key: append([]byte(nil), key...), stamp: stamp, val: val}
	s.m[h] = e
	s.pushFront(e)
	if len(s.m) > s.cap {
		s.evictTail()
	}
}

// PutString is Put keyed by a string.
func (c *Cache) PutString(stamp Stamp, key string, val any) {
	if c == nil {
		return
	}
	// The key is copied into the entry either way, so the []byte path is
	// reused with a throwaway conversion only on this (already-allocating)
	// store path.
	c.Put(stamp, []byte(key), val)
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.m)
		st.Capacity += s.cap
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// bytesEqualKey compares two keys without importing bytes (keeps the hot
// path free of interface conversions the compiler cannot see through).
func bytesEqualKey(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- intrusive LRU list (callers hold the shard lock) -------------------

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// remove deletes e from the shard entirely.
func (s *shard) remove(e *entry) {
	s.unlink(e)
	delete(s.m, e.hash)
}

// evictTail drops the least recently used entry (counted as an eviction,
// including capacity-shrink evictions from Resize).
func (s *shard) evictTail() {
	if s.tail == nil {
		return
	}
	s.remove(s.tail)
	s.evictions++
}
