package qcache

import "math/bits"

// xxhash64 (XXH64, seed 0), implemented here so the cache key hash is
// dependency-free. The generic signature lets both []byte keys and string
// keys hash without converting (converting a string to []byte would
// allocate on the hot path). Conformance to the reference vectors is
// pinned by TestXXH64Vectors.

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

// Hash returns the XXH64 (seed 0) of the key bytes.
func Hash[T ~string | ~[]byte](b T) uint64 {
	n := len(b)
	i := 0
	var h uint64
	if n >= 32 {
		// The accumulator seeds wrap modulo 2^64, so they must be computed
		// on variables (constant arithmetic would overflow at compile time).
		v1 := prime1
		v1 += prime2
		v2 := prime2
		v3 := uint64(0)
		v4 := uint64(0)
		v4 -= prime1
		for ; i+32 <= n; i += 32 {
			v1 = round(v1, le64(b, i))
			v2 = round(v2, le64(b, i+8))
			v3 = round(v3, le64(b, i+16))
			v4 = round(v4, le64(b, i+24))
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = prime5
	}
	h += uint64(n)
	for ; i+8 <= n; i += 8 {
		h ^= round(0, le64(b, i))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
	}
	if i+4 <= n {
		h ^= uint64(le32(b, i)) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(b[i]) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	return bits.RotateLeft64(acc, 31) * prime1
}

func mergeRound(acc, val uint64) uint64 {
	acc ^= round(0, val)
	return acc*prime1 + prime4
}

// le64 reads 8 little-endian bytes at offset i.
func le64[T ~string | ~[]byte](b T, i int) uint64 {
	return uint64(b[i]) | uint64(b[i+1])<<8 | uint64(b[i+2])<<16 | uint64(b[i+3])<<24 |
		uint64(b[i+4])<<32 | uint64(b[i+5])<<40 | uint64(b[i+6])<<48 | uint64(b[i+7])<<56
}

// le32 reads 4 little-endian bytes at offset i.
func le32[T ~string | ~[]byte](b T, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}
