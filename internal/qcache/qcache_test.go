package qcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"alicoco/internal/raceflag"
)

// TestXXH64Vectors pins the hash to the published XXH64 (seed 0) reference
// values, so the implementation cannot silently drift from the spec.
func TestXXH64Vectors(t *testing.T) {
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"as", 0x1c330fb2d66be179},
		{"asd", 0x631c37ce72a97393},
		{"asdf", 0x415872f599cea71e},
		{
			// Exactly 63 characters, exercising every tail code path.
			"Call me Ishmael. Some years ago--never mind how long precisely-",
			0x02a2e85470d6fd96,
		},
	}
	for _, v := range vectors {
		if got := Hash(v.in); got != v.want {
			t.Errorf("Hash(%q) = %#x, want %#x", v.in, got, v.want)
		}
		if got := Hash([]byte(v.in)); got != v.want {
			t.Errorf("Hash([]byte(%q)) = %#x, want %#x", v.in, got, v.want)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newWithShards(64, 4)
	s1 := Stamp{Gen: 1, Sum: 0xabcd}
	c.Put(s1, []byte("outdoor barbecue"), "v1")
	if v, ok := c.Get(s1, []byte("outdoor barbecue")); !ok || v.(string) != "v1" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if v, ok := c.GetString(s1, "outdoor barbecue"); !ok || v.(string) != "v1" {
		t.Fatalf("GetString = %v, %v", v, ok)
	}
	if _, ok := c.Get(s1, []byte("winter coat")); ok {
		t.Fatal("unexpected hit for absent key")
	}
	// Overwrite: same key, newest value wins.
	c.Put(s1, []byte("outdoor barbecue"), "v2")
	if v, _ := c.Get(s1, []byte("outdoor barbecue")); v.(string) != "v2" {
		t.Fatalf("overwrite lost: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestStampMismatchMissesAndDrops: an entry from an old generation must
// never be served, and looking it up evicts it on the spot.
func TestStampMismatchMissesAndDrops(t *testing.T) {
	c := newWithShards(64, 1)
	old := Stamp{Gen: 1, Sum: 7}
	c.Put(old, []byte("q"), "stale")
	for _, stamp := range []Stamp{{Gen: 2, Sum: 7}, {Gen: 1, Sum: 8}} {
		c.Put(old, []byte("q"), "stale")
		if _, ok := c.Get(stamp, []byte("q")); ok {
			t.Fatalf("stale hit under stamp %+v", stamp)
		}
		if c.Len() != 0 {
			t.Fatalf("stale entry not dropped under stamp %+v", stamp)
		}
	}
	// Same for the string path.
	c.Put(old, []byte("q"), "stale")
	if _, ok := c.GetString(Stamp{Gen: 9}, "q"); ok {
		t.Fatal("stale GetString hit")
	}
	if c.Len() != 0 {
		t.Fatal("stale entry not dropped by GetString")
	}
}

// TestLRUEviction fills a single-shard cache past capacity and checks that
// the least recently used keys fall out, in order.
func TestLRUEviction(t *testing.T) {
	c := newWithShards(4, 1) // capacity 4, one shard: deterministic order
	s := Stamp{Gen: 1}
	for i := 0; i < 4; i++ {
		c.Put(s, []byte{byte(i)}, i)
	}
	// Touch 0 so 1 becomes the LRU.
	if _, ok := c.Get(s, []byte{0}); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(s, []byte{9}, 9) // evicts 1
	if _, ok := c.Get(s, []byte{1}); ok {
		t.Fatal("LRU entry 1 should have been evicted")
	}
	for _, k := range []byte{0, 2, 3, 9} {
		if _, ok := c.Get(s, []byte{k}); !ok {
			t.Fatalf("entry %d unexpectedly evicted", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 4 || st.Capacity != 4 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestResize(t *testing.T) {
	c := newWithShards(16, 1)
	s := Stamp{Gen: 1}
	for i := 0; i < 16; i++ {
		c.Put(s, []byte{byte(i)}, i)
	}
	c.Resize(4)
	if got := c.Len(); got != 4 {
		t.Fatalf("Len after shrink = %d, want 4", got)
	}
	// The survivors are the 4 most recently used.
	for _, k := range []byte{12, 13, 14, 15} {
		if _, ok := c.Get(s, []byte{k}); !ok {
			t.Fatalf("MRU entry %d evicted by shrink", k)
		}
	}
	c.Resize(0)
	if c.Len() != 0 {
		t.Fatal("Resize(0) should empty the cache")
	}
	c.Put(s, []byte("x"), 1)
	if c.Len() != 0 {
		t.Fatal("Put on a zero-capacity cache stored an entry")
	}
	if _, ok := c.Get(s, []byte("x")); ok {
		t.Fatal("zero-capacity cache returned a hit")
	}
}

func TestZeroCapacityNew(t *testing.T) {
	c := New(0)
	c.Put(Stamp{Gen: 1}, []byte("k"), "v")
	if _, ok := c.Get(Stamp{Gen: 1}, []byte("k")); ok {
		t.Fatal("New(0) cache must always miss")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	c.Put(Stamp{Gen: 1}, []byte("k"), "v")
	c.PutString(Stamp{Gen: 1}, "k", "v")
	if _, ok := c.Get(Stamp{Gen: 1}, []byte("k")); ok {
		t.Fatal("nil cache hit")
	}
	if _, ok := c.GetString(Stamp{Gen: 1}, "k"); ok {
		t.Fatal("nil cache string hit")
	}
	c.Resize(10)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len")
	}
}

// TestPutCopiesKey: mutating the caller's key buffer after Put must not
// corrupt the stored entry (engines build keys in pooled scratch).
func TestPutCopiesKey(t *testing.T) {
	c := newWithShards(8, 1)
	s := Stamp{Gen: 1}
	key := []byte("abc")
	c.Put(s, key, "v")
	key[0] = 'z'
	if _, ok := c.Get(s, []byte("abc")); !ok {
		t.Fatal("entry lost after caller mutated the key buffer")
	}
	if _, ok := c.Get(s, key); ok {
		t.Fatal("mutated key should miss")
	}
}

// TestGetStringMatchesGet: the two lookup paths agree on hashing and
// comparison for random keys.
func TestGetStringMatchesGet(t *testing.T) {
	c := newWithShards(1024, 4)
	s := Stamp{Gen: 3, Sum: 1}
	rng := rand.New(rand.NewSource(11))
	keys := make([]string, 200)
	for i := range keys {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		keys[i] = string(b)
		c.PutString(s, keys[i], i)
	}
	for i, k := range keys {
		v1, ok1 := c.Get(s, []byte(k))
		v2, ok2 := c.GetString(s, k)
		if !ok1 || !ok2 || v1 != v2 {
			t.Fatalf("key %d: Get=(%v,%v) GetString=(%v,%v)", i, v1, ok1, v2, ok2)
		}
	}
	if got := Hash("hello"); got != Hash([]byte("hello")) {
		t.Fatal("string and byte hashing disagree")
	}
}

// TestConcurrentHammer exercises Get/Put/Resize/Stats from many goroutines;
// -race proves shard locking is sound.
func TestConcurrentHammer(t *testing.T) {
	c := New(256)
	stamps := []Stamp{{Gen: 1}, {Gen: 2}, {Gen: 3, Sum: 5}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			key := make([]byte, 0, 16)
			for i := 0; i < 2000; i++ {
				key = append(key[:0], fmt.Sprintf("q-%d", rng.Intn(500))...)
				stamp := stamps[rng.Intn(len(stamps))]
				if v, ok := c.Get(stamp, key); ok {
					// A hit must carry the value stored under this stamp.
					want := fmt.Sprintf("%s@%d", key, stamp.Gen)
					if v.(string) != want {
						t.Errorf("hit %q under %+v returned %q", key, stamp, v)
						return
					}
				} else {
					c.Put(stamp, key, fmt.Sprintf("%s@%d", key, stamp.Gen))
				}
				if i%500 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 20; i++ {
			c.Resize(64 + i*16)
		}
		close(done)
	}()
	wg.Wait()
	<-done
}

// TestGetZeroAllocs is the CI guard for the hit path: a cache hit performs
// zero allocations (the stored value is returned as-is, keys are hashed
// and compared in place).
func TestGetZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation guards are not meaningful under -race")
	}
	c := New(64)
	stamp := Stamp{Gen: 1, Sum: 2}
	val := &Stats{Hits: 42} // any pre-boxed pointer value
	c.Put(stamp, []byte("outdoor barbecue"), val)
	key := []byte("outdoor barbecue")
	allocs := testing.AllocsPerRun(200, func() {
		v, ok := c.Get(stamp, key)
		if !ok || v.(*Stats).Hits != 42 {
			t.Fatal("hit failed")
		}
		v, ok = c.GetString(stamp, "outdoor barbecue")
		if !ok || v.(*Stats).Hits != 42 {
			t.Fatal("string hit failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(4096)
	stamp := Stamp{Gen: 1}
	key := []byte("outdoor barbecue and some longer key material")
	c.Put(stamp, key, "value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(stamp, key); !ok {
			b.Fatal("miss")
		}
	}
}
