// Package faultfs is a fault-injection shim over file reads, built for
// chaos-testing the snapshot reload path. Production code opens snapshot
// files through Open; with no fault armed — the default — that is a plain
// os.Open with zero overhead beyond one atomic load. Tests arm a Fault to
// make reads of matching files slow (Delay), short (FailAfter), corrupt
// (CorruptAt), or fail outright (OpenErr), which exercises every loader
// failure mode against the real file plumbing instead of a mocked reader.
//
// The armed fault is process-global (the production call sites cannot be
// handed a per-test instance without threading it through the public
// facade), so tests that arm faults must not run in parallel with each
// other; Inject returns a restore func to disarm deterministically.
package faultfs

import (
	"errors"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error surfaced by injected read failures.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault describes what to do to reads of matching files. The zero value
// of every field is inert, so a Fault only does what was asked of it.
type Fault struct {
	// PathContains restricts the fault to files whose path contains this
	// substring; empty matches every Open.
	PathContains string

	// OpenErr, when set, fails Open itself.
	OpenErr error

	// Delay is added to every Read call (a slow disk).
	Delay time.Duration

	// FailAfter, when > 0, lets this many bytes through and then fails
	// every Read with ReadErr (a short read / truncated transfer).
	FailAfter int64

	// ReadErr is the error FailAfter trips with; nil means ErrInjected.
	ReadErr error

	// CorruptAt, when > 0, XOR-flips the byte at this file offset as it
	// passes through (silent corruption the loader's checksum must catch).
	CorruptAt int64
}

var (
	armed    atomic.Pointer[Fault]
	injected atomic.Uint64
)

// Inject arms f for every subsequent matching Open and returns a restore
// func that disarms it. Arming replaces any previously armed fault.
func Inject(f Fault) (restore func()) {
	armed.Store(&f)
	return func() { armed.Store(nil) }
}

// Injected reports how many operations (opens or reads) a fault has
// touched since process start — chaos tests assert their fault actually
// fired.
func Injected() uint64 { return injected.Load() }

// Open opens path for reading, routing it through the armed fault when one
// matches. Callers treat the result exactly like an *os.File opened for
// reading.
func Open(path string) (io.ReadCloser, error) {
	f := armed.Load()
	if f == nil || !strings.Contains(path, f.PathContains) {
		return os.Open(path)
	}
	if f.OpenErr != nil {
		injected.Add(1)
		return nil, f.OpenErr
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultReader{file: file, fault: f}, nil
}

// faultReader applies the armed fault to a real file's read stream.
type faultReader struct {
	file  *os.File
	fault *Fault
	off   int64
}

func (r *faultReader) Read(p []byte) (int, error) {
	ft := r.fault
	if ft.Delay > 0 {
		injected.Add(1)
		time.Sleep(ft.Delay)
	}
	if ft.FailAfter > 0 {
		if r.off >= ft.FailAfter {
			injected.Add(1)
			if ft.ReadErr != nil {
				return 0, ft.ReadErr
			}
			return 0, ErrInjected
		}
		if rem := ft.FailAfter - r.off; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := r.file.Read(p)
	if ca := ft.CorruptAt; ca > 0 && r.off <= ca && ca < r.off+int64(n) {
		injected.Add(1)
		p[ca-r.off] ^= 0xFF
	}
	r.off += int64(n)
	return n, err
}

func (r *faultReader) Close() error { return r.file.Close() }
