// Package faultfs is a fault-injection shim over file I/O, built for
// chaos-testing the snapshot reload and save paths. Production code opens
// snapshot files through Open and writes them through Create/CreateTemp/
// Rename/SyncDir; with no fault armed — the default — those are the plain
// os calls with zero overhead beyond one atomic load. Tests arm a Fault to
// make reads of matching files slow (Delay), short (FailAfter), corrupt
// (CorruptAt), or fail outright (OpenErr), which exercises every loader
// failure mode against the real file plumbing instead of a mocked reader.
//
// The write side arms a CrashPoint instead: InjectCrash kills the
// process-visible write sequence at an exact operation — the Nth matching
// create, write, sync, close, rename, directory sync, or remove — and
// every write operation after the trip fails too, exactly as if the
// process had died there (writes after a power loss never reach the disk).
// Crash-matrix tests enumerate every operation of a save this way and
// prove recovery from each prefix.
//
// The armed fault is process-global (the production call sites cannot be
// handed a per-test instance without threading it through the public
// facade), so tests that arm faults must not run in parallel with each
// other; Inject and InjectCrash return restore funcs to disarm
// deterministically.
package faultfs

import (
	"errors"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error surfaced by injected read failures.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault describes what to do to reads of matching files. The zero value
// of every field is inert, so a Fault only does what was asked of it.
type Fault struct {
	// PathContains restricts the fault to files whose path contains this
	// substring; empty matches every Open.
	PathContains string

	// OpenErr, when set, fails Open itself.
	OpenErr error

	// Delay is added to every Read call (a slow disk).
	Delay time.Duration

	// FailAfter, when > 0, lets this many bytes through and then fails
	// every Read with ReadErr (a short read / truncated transfer).
	FailAfter int64

	// ReadErr is the error FailAfter trips with; nil means ErrInjected.
	ReadErr error

	// CorruptAt, when > 0, XOR-flips the byte at this file offset as it
	// passes through (silent corruption the loader's checksum must catch).
	CorruptAt int64
}

var (
	armed    atomic.Pointer[Fault]
	injected atomic.Uint64
)

// Inject arms f for every subsequent matching Open and returns a restore
// func that disarms it. Arming replaces any previously armed fault.
func Inject(f Fault) (restore func()) {
	armed.Store(&f)
	return func() { armed.Store(nil) }
}

// Injected reports how many operations (opens or reads) a fault has
// touched since process start — chaos tests assert their fault actually
// fired.
func Injected() uint64 { return injected.Load() }

// Open opens path for reading, routing it through the armed fault when one
// matches. Callers treat the result exactly like an *os.File opened for
// reading.
func Open(path string) (io.ReadCloser, error) {
	f := armed.Load()
	if f == nil || !strings.Contains(path, f.PathContains) {
		return os.Open(path)
	}
	if f.OpenErr != nil {
		injected.Add(1)
		return nil, f.OpenErr
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultReader{file: file, fault: f}, nil
}

// faultReader applies the armed fault to a real file's read stream.
type faultReader struct {
	file  *os.File
	fault *Fault
	off   int64
}

func (r *faultReader) Read(p []byte) (int, error) {
	ft := r.fault
	if ft.Delay > 0 {
		injected.Add(1)
		time.Sleep(ft.Delay)
	}
	if ft.FailAfter > 0 {
		if r.off >= ft.FailAfter {
			injected.Add(1)
			if ft.ReadErr != nil {
				return 0, ft.ReadErr
			}
			return 0, ErrInjected
		}
		if rem := ft.FailAfter - r.off; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := r.file.Read(p)
	if ca := ft.CorruptAt; ca > 0 && r.off <= ca && ca < r.off+int64(n) {
		injected.Add(1)
		p[ca-r.off] ^= 0xFF
	}
	r.off += int64(n)
	return n, err
}

func (r *faultReader) Close() error { return r.file.Close() }

// --- write-path crash injection ---

// Operation names for write-path crash points: every durable step of an
// atomic file write, in the order a save performs them.
const (
	OpCreate  = "create"  // opening a file (or temp file) for writing
	OpWrite   = "write"   // one Write call against an open file
	OpSync    = "sync"    // fsync of file contents
	OpClose   = "close"   // closing the written file
	OpRename  = "rename"  // renaming into place (the per-file commit)
	OpSyncDir = "syncdir" // fsync of a directory (making a rename durable)
	OpRemove  = "remove"  // deleting a file or directory tree
)

// ErrCrashed is the error write operations surface once an injected crash
// has fired: from the tripped operation on, the "process" is dead and no
// write reaches the disk.
var ErrCrashed = errors.New("faultfs: injected crash")

// CrashPoint describes where an injected crash fires. The zero value
// crashes at the very first write operation of any kind.
type CrashPoint struct {
	// PathContains restricts counting to operations on matching paths;
	// empty matches every operation.
	PathContains string

	// Op restricts counting to one operation kind (OpWrite, OpRename, ...);
	// empty matches all kinds.
	Op string

	// After is how many matching operations complete before the crash: the
	// (After+1)-th matching operation fails, and every write operation after
	// it — matching or not — fails too.
	After uint64

	// Short tears the tripping operation when it is a write: half the bytes
	// reach the file before the failure, leaving a torn tail on disk the
	// way a mid-write power loss would.
	Short bool

	// Err overrides the error the crash surfaces; nil means ErrCrashed.
	Err error
}

func (c *CrashPoint) err() error {
	if c.Err != nil {
		return c.Err
	}
	return ErrCrashed
}

var (
	crash      atomic.Pointer[CrashPoint]
	crashOps   atomic.Uint64
	crashTrips atomic.Bool
)

// InjectCrash arms c for subsequent write operations and returns a restore
// func that disarms it ("reboots the machine": after restore, writes work
// again and recovery code can run). Arming resets the operation counter
// and the fired flag.
func InjectCrash(c CrashPoint) (restore func()) {
	crashOps.Store(0)
	crashTrips.Store(false)
	crash.Store(&c)
	return func() { crash.Store(nil) }
}

// CrashFired reports whether the armed crash point has tripped.
func CrashFired() bool { return crashTrips.Load() }

// CrashOps reports how many matching write operations the armed crash
// point has observed — arming with After set beyond the sequence length
// turns a save into a dry run that counts its own crash points.
func CrashOps() uint64 { return crashOps.Load() }

// crashCheck gates one write-path operation: nil means proceed. The
// returned CrashPoint is non-nil exactly when this call is the tripping
// operation (so the caller can apply Short semantics).
func crashCheck(path, op string) (*CrashPoint, error) {
	c := crash.Load()
	if c == nil {
		return nil, nil
	}
	if crashTrips.Load() {
		// The process died earlier in the sequence; nothing reaches disk.
		injected.Add(1)
		return nil, c.err()
	}
	if !strings.Contains(path, c.PathContains) || (c.Op != "" && c.Op != op) {
		return nil, nil
	}
	if crashOps.Add(1)-1 != c.After {
		return nil, nil
	}
	crashTrips.Store(true)
	injected.Add(1)
	return c, c.err()
}

// WFile is a write handle routed through the armed crash point. With no
// crash armed it delegates straight to the underlying *os.File.
type WFile struct {
	f    *os.File
	path string
}

// Name returns the path of the underlying file.
func (w *WFile) Name() string { return w.f.Name() }

func (w *WFile) Write(p []byte) (int, error) {
	cp, err := crashCheck(w.path, OpWrite)
	if err != nil {
		if cp != nil && cp.Short && len(p) > 1 {
			// A torn write: the first half of the buffer lands on disk.
			n, _ := w.f.Write(p[: len(p)/2 : len(p)/2])
			return n, err
		}
		return 0, err
	}
	return w.f.Write(p)
}

// Sync fsyncs the file contents through the crash point.
func (w *WFile) Sync() error {
	if _, err := crashCheck(w.path, OpSync); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *WFile) Close() error {
	if _, err := crashCheck(w.path, OpClose); err != nil {
		w.f.Close() // release the descriptor; the logical close "crashed"
		return err
	}
	return w.f.Close()
}

// Create opens path for writing through the armed crash point.
func Create(path string) (*WFile, error) {
	if _, err := crashCheck(path, OpCreate); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &WFile{f: f, path: path}, nil
}

// CreateTemp is os.CreateTemp routed through the armed crash point; the
// crash point matches against dir/pattern (the temp suffix is random).
func CreateTemp(dir, pattern string) (*WFile, error) {
	logical := dir + string(os.PathSeparator) + pattern
	if _, err := crashCheck(logical, OpCreate); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &WFile{f: f, path: logical}, nil
}

// Rename renames oldpath to newpath through the armed crash point, which
// matches against the destination.
func Rename(oldpath, newpath string) error {
	if _, err := crashCheck(newpath, OpRename); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// SyncDir fsyncs a directory, making renames inside it durable. Crash
// points match against the directory path.
func SyncDir(dir string) error {
	if _, err := crashCheck(dir, OpSyncDir); err != nil {
		return err
	}
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Remove deletes one file through the armed crash point.
func Remove(path string) error {
	if _, err := crashCheck(path, OpRemove); err != nil {
		return err
	}
	return os.Remove(path)
}

// RemoveAll deletes a tree through the armed crash point.
func RemoveAll(path string) error {
	if _, err := crashCheck(path, OpRemove); err != nil {
		return err
	}
	return os.RemoveAll(path)
}

// ---------------------------------------------------------------------------
// Query-time shard faults: slow (or stall) the in-memory read path of one
// shard, the injection behind "one slow shard must not stall the whole
// scatter-gather". Disk faults (Fault/Open above) cannot reach query time —
// once a snapshot is loaded, serving never touches the filesystem — so the
// sharded read path calls QueryProbe at every shard boundary instead. The
// probe costs a single atomic load while nothing is armed.
// ---------------------------------------------------------------------------

// QueryFault delays every probed access to one shard (or all shards) at
// query time, simulating a hot, swapping, or NUMA-remote shard.
type QueryFault struct {
	// Shard is the shard index to afflict; negative matches every shard.
	Shard int
	// Delay is added at each probed shard boundary the fault matches.
	Delay time.Duration
}

var queryArmed atomic.Pointer[QueryFault]

// InjectQuery arms a query-time shard fault; the returned restore disarms
// it. Tests that arm query faults must not run in parallel with other
// query-path tests — the injection point is process-global (which is
// exactly why chaos drivers embed the server in-process).
func InjectQuery(f QueryFault) (restore func()) {
	queryArmed.Store(&f)
	return func() { queryArmed.Store(nil) }
}

// QueryProbe is called by the sharded read path when query execution
// crosses into the given shard. With no fault armed it is one atomic load;
// with a matching fault armed it sleeps the injected delay and counts the
// hit in Injected.
func QueryProbe(shard int) {
	f := queryArmed.Load()
	if f == nil {
		return
	}
	if f.Shard >= 0 && f.Shard != shard {
		return
	}
	injected.Add(1)
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}
