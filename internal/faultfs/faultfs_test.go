package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readAll(t *testing.T, path string) ([]byte, error) {
	t.Helper()
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func TestPassthroughWhenDisarmed(t *testing.T) {
	want := []byte("hello snapshot world")
	path := writeTemp(t, "net.fz", want)
	got, err := readAll(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestOpenErr(t *testing.T) {
	path := writeTemp(t, "net.fz", []byte("data"))
	boom := errors.New("disk on fire")
	restore := Inject(Fault{OpenErr: boom})
	defer restore()
	if _, err := Open(path); !errors.Is(err, boom) {
		t.Fatalf("err %v, want injected open error", err)
	}
	restore()
	if _, err := readAll(t, path); err != nil {
		t.Fatalf("restore did not disarm: %v", err)
	}
}

func TestFailAfterTruncatesStream(t *testing.T) {
	want := bytes.Repeat([]byte{0xAB}, 1024)
	path := writeTemp(t, "net.fz", want)
	defer Inject(Fault{FailAfter: 100})()
	got, err := readAll(t, path)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v, want ErrInjected", err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d bytes before failure, want 100", len(got))
	}
}

func TestFailAfterCustomError(t *testing.T) {
	path := writeTemp(t, "net.fz", make([]byte, 64))
	short := errors.New("connection reset")
	defer Inject(Fault{FailAfter: 10, ReadErr: short})()
	if _, err := readAll(t, path); !errors.Is(err, short) {
		t.Fatalf("err %v, want custom read error", err)
	}
}

func TestCorruptAtFlipsExactlyOneByte(t *testing.T) {
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i)
	}
	path := writeTemp(t, "net.fz", want)
	defer Inject(Fault{CorruptAt: 1234})()
	got, err := readAll(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d want %d", len(got), len(want))
	}
	for i := range got {
		switch {
		case i == 1234 && got[i] != want[i]^0xFF:
			t.Fatalf("byte %d not flipped: %x", i, got[i])
		case i != 1234 && got[i] != want[i]:
			t.Fatalf("byte %d corrupted unexpectedly", i)
		}
	}
}

func TestPathFilter(t *testing.T) {
	matched := writeTemp(t, "live.fz", []byte("abcdef"))
	other := writeTemp(t, "other.bin", []byte("abcdef"))
	defer Inject(Fault{PathContains: "live.fz", FailAfter: 2})()
	if _, err := readAll(t, matched); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching file not faulted: %v", err)
	}
	if got, err := readAll(t, other); err != nil || string(got) != "abcdef" {
		t.Fatalf("non-matching file faulted: %q, %v", got, err)
	}
}

func TestDelaySlowsReads(t *testing.T) {
	path := writeTemp(t, "net.fz", make([]byte, 10))
	defer Inject(Fault{Delay: 30 * time.Millisecond})()
	before := Injected()
	start := time.Now()
	if _, err := readAll(t, path); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("read finished in %v despite injected delay", elapsed)
	}
	if Injected() == before {
		t.Fatal("injected counter did not move")
	}
}
