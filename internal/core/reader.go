package core

// Reader is the read-only query surface of the concept net, satisfied by
// both the mutable *Net (lock-guarded reads) and the immutable *FrozenNet
// (lock-free CSR snapshot). Serving code — the search and recommendation
// engines, the inference miner, the HTTP server — should depend on Reader
// so it can run against either store; production traffic goes to a frozen
// snapshot built once per net version (the paper's build-offline /
// serve-online split).
//
// Slices returned by a Reader are read-only views: callers must not modify
// them. *Net returns fresh copies, which trivially satisfies that;
// *FrozenNet returns sub-slices of its internal layout for zero-allocation
// reads.
type Reader interface {
	// Node returns the node for id; ok is false for invalid ids.
	Node(id NodeID) (Node, bool)
	// NumNodes returns the node count.
	NumNodes() int
	// NumEdges returns the edge count.
	NumEdges() int
	// FindByName returns all nodes with the given surface form.
	FindByName(name string) []NodeID
	// FindByNameKind returns nodes with the given name in one layer.
	FindByNameKind(name string, kind NodeKind) []NodeID
	// FirstByNameKind returns the first matching node or InvalidNode.
	FirstByNameKind(name string, kind NodeKind) NodeID
	// Out returns outgoing half-edges of a kind (all kinds if kind < 0).
	Out(id NodeID, kind EdgeKind) []HalfEdge
	// In returns incoming half-edges of a kind (all kinds if kind < 0).
	In(id NodeID, kind EdgeKind) []HalfEdge
	// Ancestors walks EdgeIsA/EdgeInstanceOf upward from id (BFS) up to
	// maxDepth levels (maxDepth <= 0 means unlimited), excluding id.
	Ancestors(id NodeID, maxDepth int) []NodeID
	// Descendants walks EdgeIsA/EdgeInstanceOf downward (incoming edges).
	Descendants(id NodeID, maxDepth int) []NodeID
	// IsAncestor reports whether anc is reachable upward from id.
	IsAncestor(id, anc NodeID) bool
	// NodesOfKind returns all node IDs in one layer.
	NodesOfKind(kind NodeKind) []NodeID
	// ItemsForEConcept returns items associated with an e-commerce
	// concept, best-weight first, up to limit (limit <= 0 means all).
	ItemsForEConcept(id NodeID, limit int) []HalfEdge
	// EConceptsForItem returns the e-commerce concepts an item serves.
	EConceptsForItem(id NodeID, limit int) []HalfEdge
	// PrimitivesForEConcept returns the primitives interpreting an
	// e-commerce concept.
	PrimitivesForEConcept(id NodeID) []HalfEdge

	// The Append variants below produce the same answers as their
	// allocate-and-return counterparts but write into a caller-owned dst
	// slice (appending after any existing elements, like the append
	// builtin), so hot serving loops can reuse one buffer across requests
	// instead of allocating per call. The appended elements are owned by
	// the caller and stay valid after later net mutations.

	// AppendAncestors is Ancestors into a caller-owned buffer.
	AppendAncestors(dst []NodeID, id NodeID, maxDepth int) []NodeID
	// AppendDescendants is Descendants into a caller-owned buffer.
	AppendDescendants(dst []NodeID, id NodeID, maxDepth int) []NodeID
	// AppendItemsForEConcept is ItemsForEConcept into a caller-owned buffer.
	AppendItemsForEConcept(dst []HalfEdge, id NodeID, limit int) []HalfEdge
	// AppendEConceptsForItem is EConceptsForItem into a caller-owned buffer.
	AppendEConceptsForItem(dst []HalfEdge, id NodeID, limit int) []HalfEdge
	// AppendFindByNameKind is FindByNameKind into a caller-owned buffer.
	AppendFindByNameKind(dst []NodeID, name string, kind NodeKind) []NodeID

	// FirstByNameKindBytes is FirstByNameKind keyed by a caller-owned byte
	// buffer. Both stores resolve it with a map[string] index lookup the
	// compiler performs without converting (allocating) the key, so exact
	// name resolution on the query hot path costs zero allocations.
	FirstByNameKindBytes(name []byte, kind NodeKind) NodeID
}

var (
	_ Reader = (*Net)(nil)
	_ Reader = (*FrozenNet)(nil)
	_ Reader = (*ShardSet)(nil)
)
