package core

import (
	"bytes"
	"encoding/gob"
	"io"
	"strings"
	"testing"
)

// saveFrozen freezes-and-saves a net, failing the test on error.
func saveFrozen(t *testing.T, f *FrozenNet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("frozen save: %v", err)
	}
	return buf.Bytes()
}

// TestFrozenSaveLoadRoundTripRandomized proves save -> load is the identity
// on the full Reader surface: every method of the loaded snapshot answers
// exactly like the original frozen net, across randomized nets that
// exercise all edge kinds and shared surface forms.
func TestFrozenSaveLoadRoundTripRandomized(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		n := buildRandomNet(t, seed)
		f := n.Freeze()
		g, err := LoadFrozen(bytes.NewReader(saveFrozen(t, f)))
		if err != nil {
			t.Fatalf("seed %d: load frozen: %v", seed, err)
		}
		if g.NumNodes() != f.NumNodes() || g.NumEdges() != f.NumEdges() {
			t.Fatalf("seed %d: counts differ: %d/%d nodes, %d/%d edges",
				seed, g.NumNodes(), f.NumNodes(), g.NumEdges(), f.NumEdges())
		}
		for id := NodeID(0); int(id) < f.NumNodes(); id++ {
			fn, _ := f.Node(id)
			gn, _ := g.Node(id)
			if fn != gn {
				t.Fatalf("seed %d: node %d differs: %+v vs %+v", seed, id, fn, gn)
			}
			for kind := EdgeKind(-1); kind < numEdgeKinds; kind++ {
				if !edgesEqual(f.Out(id, kind), g.Out(id, kind)) {
					t.Fatalf("seed %d: Out(%d,%v) differs", seed, id, kind)
				}
				if !edgesEqual(f.In(id, kind), g.In(id, kind)) {
					t.Fatalf("seed %d: In(%d,%v) differs", seed, id, kind)
				}
			}
			for _, depth := range []int{0, 1, 2} {
				if !idsEqual(f.Ancestors(id, depth), g.Ancestors(id, depth)) {
					t.Fatalf("seed %d: Ancestors(%d,%d) differ", seed, id, depth)
				}
				if !idsEqual(f.Descendants(id, depth), g.Descendants(id, depth)) {
					t.Fatalf("seed %d: Descendants(%d,%d) differ", seed, id, depth)
				}
			}
			for anc := NodeID(0); int(anc) < f.NumNodes(); anc += 3 {
				if f.IsAncestor(id, anc) != g.IsAncestor(id, anc) {
					t.Fatalf("seed %d: IsAncestor(%d,%d) differs", seed, id, anc)
				}
			}
			nd, _ := f.Node(id)
			if !idsEqual(f.FindByName(nd.Name), g.FindByName(nd.Name)) {
				t.Fatalf("seed %d: FindByName(%q) differs", seed, nd.Name)
			}
			if !idsEqual(f.FindByNameKind(nd.Name, nd.Kind), g.FindByNameKind(nd.Name, nd.Kind)) {
				t.Fatalf("seed %d: FindByNameKind(%q) differs", seed, nd.Name)
			}
			if f.FirstByNameKind(nd.Name, nd.Kind) != g.FirstByNameKind(nd.Name, nd.Kind) {
				t.Fatalf("seed %d: FirstByNameKind(%q) differs", seed, nd.Name)
			}
		}
		for kind := NodeKind(0); kind < numKinds; kind++ {
			if !idsEqual(f.NodesOfKind(kind), g.NodesOfKind(kind)) {
				t.Fatalf("seed %d: NodesOfKind(%v) differ", seed, kind)
			}
		}
		for _, ec := range f.NodesOfKind(KindEConcept) {
			for _, limit := range []int{0, 1, 3} {
				if !edgesEqual(f.ItemsForEConcept(ec, limit), g.ItemsForEConcept(ec, limit)) {
					t.Fatalf("seed %d: ItemsForEConcept(%d,%d) differs", seed, ec, limit)
				}
			}
			if !edgesEqual(f.PrimitivesForEConcept(ec), g.PrimitivesForEConcept(ec)) {
				t.Fatalf("seed %d: PrimitivesForEConcept(%d) differs", seed, ec)
			}
		}
		for _, it := range f.NodesOfKind(KindItem) {
			if !edgesEqual(f.EConceptsForItem(it, 5), g.EConceptsForItem(it, 5)) {
				t.Fatalf("seed %d: EConceptsForItem(%d) differs", seed, it)
			}
		}
		ls, gs := f.ComputeStats(), g.ComputeStats()
		if ls.Nodes != gs.Nodes || ls.Edges != gs.Edges || ls.IsAPrimitive != gs.IsAPrimitive {
			t.Fatalf("seed %d: stats differ", seed)
		}
	}
}

// TestFrozenSaveDeterministic: identical nets serialize to identical bytes
// (the name index is emitted in sorted order), so snapshot files diff
// cleanly and checksums are reproducible.
func TestFrozenSaveDeterministic(t *testing.T) {
	n := buildRandomNet(t, 3)
	f := n.Freeze()
	a, b := saveFrozen(t, f), saveFrozen(t, f)
	if !bytes.Equal(a, b) {
		t.Fatal("two saves of the same frozen net differ")
	}
}

// TestLoadFrozenPostingsStillSorted: the freeze-time weight sort survives
// the round trip without LoadFrozen re-sorting anything.
func TestLoadFrozenPostingsStillSorted(t *testing.T) {
	n := buildRandomNet(t, 42)
	g, err := LoadFrozen(bytes.NewReader(saveFrozen(t, n.Freeze())))
	if err != nil {
		t.Fatal(err)
	}
	for _, ec := range g.NodesOfKind(KindEConcept) {
		items := g.ItemsForEConcept(ec, 0)
		for i := 1; i < len(items); i++ {
			if items[i].Weight > items[i-1].Weight {
				t.Fatalf("postings of %d not weight-sorted after load", ec)
			}
		}
	}
}

// TestLoadFrozenTruncated: every proper prefix of a valid snapshot must
// error — never panic, never return a net.
func TestLoadFrozenTruncated(t *testing.T) {
	n, _ := buildToyNet(t)
	full := saveFrozen(t, n.Freeze())
	for cut := 0; cut < len(full); cut++ {
		if _, err := LoadFrozen(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", cut, len(full))
		}
	}
}

func TestLoadFrozenBadMagicAndVersion(t *testing.T) {
	n, _ := buildToyNet(t)
	full := saveFrozen(t, n.Freeze())

	bad := append([]byte(nil), full...)
	copy(bad, "NOPE")
	if _, err := LoadFrozen(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got %v", err)
	}

	bad = append([]byte(nil), full...)
	bad[4], bad[5] = 0xFF, 0xFF
	if _, err := LoadFrozen(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: got %v", err)
	}

	if _, err := LoadFrozen(bytes.NewReader([]byte("garbage that is not a snapshot"))); err == nil {
		t.Fatal("garbage should not load")
	}
}

// TestLoadFrozenChecksum: a flipped payload byte that keeps the structure
// valid (a weight byte) is caught by the trailing CRC.
func TestLoadFrozenChecksum(t *testing.T) {
	n, _ := buildToyNet(t)
	full := saveFrozen(t, n.Freeze())
	bad := append([]byte(nil), full...)
	// The last 4 bytes are the CRC; the byte just before them is the high
	// byte of the final in-CSR edge record's weight.
	bad[len(bad)-5] ^= 0x40
	_, err := LoadFrozen(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("checksum corruption: got %v", err)
	}
}

// corrupt cases built by mutating a freshly frozen net before saving: the
// file is internally consistent (valid CRC) but structurally wrong, so the
// structural validation itself must catch it.
func TestLoadFrozenStructuralCorruption(t *testing.T) {
	freshFrozen := func() *FrozenNet {
		n, _ := buildToyNet(t)
		return n.Freeze()
	}
	cases := []struct {
		name    string
		mutate  func(f *FrozenNet)
		errWant string
	}{
		{"edge kind out of range", func(f *FrozenNet) {
			f.out.edges[0].Kind = EdgeKind(99)
		}, "kind"},
		{"edge kind wrong CSR group", func(f *FrozenNet) {
			// Valid enum value, but disagrees with the group the edge sits in.
			f.out.edges[0].Kind = (f.out.edges[0].Kind + 1) % numEdgeKinds
		}, "disagrees with CSR group"},
		{"peer out of range", func(f *FrozenNet) {
			f.out.edges[0].Peer = NodeID(f.NumNodes() + 7)
		}, "peer"},
		{"name index id mismatch", func(f *FrozenNet) {
			for name, ids := range f.byName {
				other := (int(ids[0]) + 1) % f.NumNodes()
				if f.nodes[other].Name != name {
					f.byName[name] = []NodeID{NodeID(other)}
					return
				}
			}
		}, "name index"},
		{"kind index id mismatch", func(f *FrozenNet) {
			f.byKind[KindClass][0] = f.byKind[KindItem][0]
		}, "kind"},
		{"shard range exceeds declared total", func(f *FrozenNet) {
			f.total--
		}, "declared total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := freshFrozen()
			tc.mutate(f)
			_, err := LoadFrozen(bytes.NewReader(saveFrozen(t, f)))
			if err == nil {
				t.Fatal("corrupt snapshot loaded successfully")
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("error %q does not mention %q", err, tc.errWant)
			}
		})
	}
}

// TestLoadFrozenHugeClaimedCounts: a tiny file whose header claims huge
// element counts must fail on the missing data without the claimed counts
// driving allocation (slices only grow as genuine bytes arrive).
func TestLoadFrozenHugeClaimedCounts(t *testing.T) {
	huge := []byte{0, 0, 0, 8} // 1<<27, exactly at the cap
	zero := []byte{0, 0, 0, 0}
	buf := append([]byte("ACFZ"), 2, 0) // magic + version
	buf = append(buf, 4, 6)             // numKinds, numEdgeKinds
	buf = append(buf, huge...)          // nodeCount
	buf = append(buf, zero...)          // base
	buf = append(buf, huge...)          // totalNodes
	buf = append(buf, huge...)          // outEdgeCount
	buf = append(buf, huge...)          // inEdgeCount
	buf = append(buf, huge...)          // relCount, then EOF
	if _, err := LoadFrozen(bytes.NewReader(buf)); err == nil {
		t.Fatal("truncated file with huge claimed counts loaded successfully")
	}
	// Above the cap the count itself is rejected.
	over := []byte{1, 0, 0, 8} // 1<<27 + 1
	buf = append([]byte("ACFZ"), 2, 0)
	buf = append(buf, 4, 6)
	buf = append(buf, over...)
	if _, err := LoadFrozen(bytes.NewReader(buf)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("over-cap count: got %v", err)
	}
}

// TestFrozenSaveRejectsOversizedStrings: Save enforces the loader's string
// limit up front, so it never emits a snapshot LoadFrozen would reject.
func TestFrozenSaveRejectsOversizedStrings(t *testing.T) {
	n := NewNet()
	n.AddNode(KindPrimitive, strings.Repeat("x", maxFrozenStr+1), "d")
	if err := n.Freeze().Save(io.Discard); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized node name: got %v", err)
	}
}

// --- gob (*Net) snapshot corruption: the satellite bugfixes in Load ------

// encodeGobSnapshot produces raw Save-format bytes from an arbitrary
// snapshot value, so tests can plant invalid fields.
func encodeGobSnapshot(t *testing.T, s snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func twoPrimSnapshot() snapshot {
	return snapshot{
		Version: snapshotVersion,
		Nodes: []Node{
			{ID: 0, Kind: KindPrimitive, Name: "a", Domain: "Color"},
			{ID: 1, Kind: KindPrimitive, Name: "b", Domain: "Color"},
		},
		Out:   [][]HalfEdge{{{Peer: 1, Kind: EdgeIsA, Weight: 1}}, nil},
		Edges: 1,
	}
}

func TestLoadRejectsCorruptEdgeKind(t *testing.T) {
	s := twoPrimSnapshot()
	s.Out[0][0].Kind = EdgeKind(99)
	if _, err := Load(bytes.NewReader(encodeGobSnapshot(t, s))); err == nil {
		t.Fatal("edge kind 99 must be rejected")
	}
	s = twoPrimSnapshot()
	s.Out[0][0].Kind = EdgeKind(-2)
	if _, err := Load(bytes.NewReader(encodeGobSnapshot(t, s))); err == nil {
		t.Fatal("negative edge kind must be rejected")
	}
}

func TestLoadRejectsNodeIDMismatch(t *testing.T) {
	s := twoPrimSnapshot()
	s.Nodes[1].ID = 5
	if _, err := Load(bytes.NewReader(encodeGobSnapshot(t, s))); err == nil {
		t.Fatal("node id disagreeing with its index must be rejected")
	}
}

func TestLoadRejectsNodeKindOutOfRange(t *testing.T) {
	s := twoPrimSnapshot()
	s.Nodes[0].Kind = NodeKind(42)
	if _, err := Load(bytes.NewReader(encodeGobSnapshot(t, s))); err == nil {
		t.Fatal("node kind 42 must be rejected")
	}
}

func TestLoadRejectsAdjacencyShapeMismatch(t *testing.T) {
	s := twoPrimSnapshot()
	s.Out = s.Out[:1]
	if _, err := Load(bytes.NewReader(encodeGobSnapshot(t, s))); err == nil {
		t.Fatal("adjacency shorter than node list must be rejected")
	}
}

func TestLoadRecomputesEdgeCounter(t *testing.T) {
	s := twoPrimSnapshot()
	s.Edges = 999 // stale counter
	n, err := Load(bytes.NewReader(encodeGobSnapshot(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumEdges() != 1 {
		t.Fatalf("stale counter not recomputed: NumEdges = %d", n.NumEdges())
	}
	if n.ComputeStats().Edges != 1 {
		t.Fatalf("stats still see stale counter: %d", n.ComputeStats().Edges)
	}

	s = twoPrimSnapshot()
	s.Edges = -3
	if _, err := Load(bytes.NewReader(encodeGobSnapshot(t, s))); err == nil {
		t.Fatal("negative edge count must be rejected")
	}
}

// TestLoadTruncatedGob: a truncated Save stream errors instead of panicking.
func TestLoadTruncatedGob(t *testing.T) {
	n, _ := buildToyNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated gob at %d bytes loaded successfully", cut)
		}
	}
}

// TestLoadThenFreeze: a corrupt snapshot that previously slipped through
// Load used to panic in buildCSR/Freeze; a valid one must still freeze.
func TestLoadThenFreeze(t *testing.T) {
	n, _ := buildToyNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Freeze()
	if f.NumEdges() != n.NumEdges() {
		t.Fatalf("freeze after load: %d edges, want %d", f.NumEdges(), n.NumEdges())
	}
}
