package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// buildToyNet plants a small four-layer net:
//
//	class: Category -> clothing -> dress
//	primitive: dress, silk dress (isA dress), silk
//	econcept: wedding party -> interpretedBy dress primitive
//	items: item1 (dress), item2 (silk dress)
func buildToyNet(t *testing.T) (*Net, map[string]NodeID) {
	t.Helper()
	n := NewNet()
	ids := map[string]NodeID{}
	add := func(key string, kind NodeKind, name, dom string) {
		ids[key] = n.AddNode(kind, name, dom)
	}
	edge := func(a, b string, k EdgeKind, rel string, w float64) {
		if err := n.AddEdge(ids[a], ids[b], k, rel, w); err != nil {
			t.Fatalf("edge %s->%s: %v", a, b, err)
		}
	}
	add("clsCategory", KindClass, "category", "Category")
	add("clsClothing", KindClass, "clothing", "Category")
	add("clsDress", KindClass, "dress", "Category")
	add("pDress", KindPrimitive, "dress", "Category")
	add("pSilkDress", KindPrimitive, "silk dress", "Category")
	add("pSilk", KindPrimitive, "silk", "Material")
	add("eWedding", KindEConcept, "wedding party", "")
	add("item1", KindItem, "zorella elegant dress", "clothing")
	add("item2", KindItem, "mivato silk dress", "clothing")

	edge("clsClothing", "clsCategory", EdgeIsA, "", 1)
	edge("clsDress", "clsClothing", EdgeIsA, "", 1)
	edge("pDress", "clsDress", EdgeInstanceOf, "", 1)
	edge("pSilkDress", "pDress", EdgeIsA, "", 1)
	edge("pSilk", "clsCategory", EdgeInstanceOf, "", 1) // lazy class reuse for test
	edge("eWedding", "pDress", EdgeInterpretedBy, "", 1)
	edge("item1", "pDress", EdgeItemPrimitive, "", 1)
	edge("item2", "pSilkDress", EdgeItemPrimitive, "", 1)
	edge("item2", "pSilk", EdgeItemPrimitive, "", 1)
	edge("item1", "eWedding", EdgeItemEConcept, "", 0.9)
	edge("item2", "eWedding", EdgeItemEConcept, "", 0.7)
	return n, ids
}

func TestAddNodeIdempotent(t *testing.T) {
	n := NewNet()
	a := n.AddNode(KindPrimitive, "dress", "Category")
	b := n.AddNode(KindPrimitive, "dress", "Category")
	if a != b {
		t.Fatal("same (kind,name,domain) should return same node")
	}
	c := n.AddNode(KindPrimitive, "dress", "Style")
	if c == a {
		t.Fatal("different domain should be a new node")
	}
	if n.NumNodes() != 2 {
		t.Fatalf("node count: got %d", n.NumNodes())
	}
}

func TestEdgeValidation(t *testing.T) {
	n := NewNet()
	item := n.AddNode(KindItem, "x", "")
	class := n.AddNode(KindClass, "c", "Category")
	if err := n.AddEdge(item, class, EdgeIsA, "", 1); err == nil {
		t.Fatal("item isA class must be rejected")
	}
	if err := n.AddEdge(NodeID(99), class, EdgeIsA, "", 1); err == nil {
		t.Fatal("invalid node id must be rejected")
	}
	prim := n.AddNode(KindPrimitive, "p", "Color")
	if err := n.AddEdge(prim, class, EdgeInstanceOf, "", 1); err != nil {
		t.Fatalf("valid instanceOf rejected: %v", err)
	}
}

func TestDuplicateEdgeUpdatesWeight(t *testing.T) {
	n := NewNet()
	a := n.AddNode(KindPrimitive, "a", "Color")
	b := n.AddNode(KindPrimitive, "b", "Color")
	if err := n.AddEdge(a, b, EdgeIsA, "", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(a, b, EdgeIsA, "", 0.8); err != nil {
		t.Fatal(err)
	}
	if n.NumEdges() != 1 {
		t.Fatalf("duplicate edge should update, not add: %d edges", n.NumEdges())
	}
	out := n.Out(a, EdgeIsA)
	if len(out) != 1 || out[0].Weight != 0.8 {
		t.Fatalf("weight not updated: %+v", out)
	}
	in := n.In(b, EdgeIsA)
	if len(in) != 1 || in[0].Weight != 0.8 {
		t.Fatalf("incoming weight not updated: %+v", in)
	}
}

func TestFindByName(t *testing.T) {
	n, ids := buildToyNet(t)
	found := n.FindByName("dress")
	if len(found) != 2 { // class + primitive share the surface
		t.Fatalf("dress should resolve to 2 nodes, got %d", len(found))
	}
	prim := n.FirstByNameKind("dress", KindPrimitive)
	if prim != ids["pDress"] {
		t.Fatal("FirstByNameKind wrong")
	}
	if n.FirstByNameKind("nope", KindItem) != InvalidNode {
		t.Fatal("missing name should be InvalidNode")
	}
}

func TestAncestorsAndDescendants(t *testing.T) {
	n, ids := buildToyNet(t)
	anc := n.Ancestors(ids["pSilkDress"], 0)
	want := map[NodeID]bool{ids["pDress"]: true, ids["clsDress"]: true, ids["clsClothing"]: true, ids["clsCategory"]: true}
	if len(anc) != len(want) {
		t.Fatalf("ancestors: got %v", anc)
	}
	for _, a := range anc {
		if !want[a] {
			t.Fatalf("unexpected ancestor %d", a)
		}
	}
	if !n.IsAncestor(ids["pSilkDress"], ids["clsCategory"]) {
		t.Fatal("IsAncestor failed")
	}
	if n.IsAncestor(ids["clsCategory"], ids["pSilkDress"]) {
		t.Fatal("IsAncestor direction wrong")
	}
	desc := n.Descendants(ids["clsClothing"], 0)
	if len(desc) != 3 { // clsDress, pDress, pSilkDress
		t.Fatalf("descendants: got %v", desc)
	}
}

func TestAncestorsDepthLimit(t *testing.T) {
	n, ids := buildToyNet(t)
	anc := n.Ancestors(ids["pSilkDress"], 1)
	if len(anc) != 1 {
		t.Fatalf("depth-1 ancestors: got %v", anc)
	}
}

func TestItemsForEConceptSorted(t *testing.T) {
	n, ids := buildToyNet(t)
	items := n.ItemsForEConcept(ids["eWedding"], 0)
	if len(items) != 2 {
		t.Fatalf("items: got %d", len(items))
	}
	if items[0].Weight < items[1].Weight {
		t.Fatal("items should be sorted best-first")
	}
	limited := n.ItemsForEConcept(ids["eWedding"], 1)
	if len(limited) != 1 || limited[0].Peer != ids["item1"] {
		t.Fatalf("limit: got %+v", limited)
	}
}

func TestEConceptsForItemAndInterpretation(t *testing.T) {
	n, ids := buildToyNet(t)
	ecs := n.EConceptsForItem(ids["item2"], 0)
	if len(ecs) != 1 || ecs[0].Peer != ids["eWedding"] {
		t.Fatalf("econcepts for item: %+v", ecs)
	}
	prims := n.PrimitivesForEConcept(ids["eWedding"])
	if len(prims) != 1 || prims[0].Peer != ids["pDress"] {
		t.Fatalf("interpretation: %+v", prims)
	}
}

func TestNodesOfKind(t *testing.T) {
	n, _ := buildToyNet(t)
	if len(n.NodesOfKind(KindItem)) != 2 {
		t.Fatal("wrong item count")
	}
	if len(n.NodesOfKind(KindClass)) != 3 {
		t.Fatal("wrong class count")
	}
}

func TestStats(t *testing.T) {
	n, _ := buildToyNet(t)
	s := n.ComputeStats()
	if s.PerKind["primitive"] != 3 || s.PerKind["econcept"] != 1 || s.PerKind["item"] != 2 {
		t.Fatalf("stats per kind: %+v", s.PerKind)
	}
	if s.PrimitivesByDom["Category"] != 2 || s.PrimitivesByDom["Material"] != 1 {
		t.Fatalf("stats by domain: %+v", s.PrimitivesByDom)
	}
	if s.IsAPrimitive != 1 {
		t.Fatalf("isA primitive: got %d", s.IsAPrimitive)
	}
	if s.AvgItemsPerEConcept != 2 {
		t.Fatalf("avg items per econcept: got %v", s.AvgItemsPerEConcept)
	}
	if s.Render() == "" {
		t.Fatal("Render should produce output")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n, ids := buildToyNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != n.NumNodes() || m.NumEdges() != n.NumEdges() {
		t.Fatal("counts differ after round trip")
	}
	// Incoming index must be rebuilt.
	items := m.ItemsForEConcept(ids["eWedding"], 0)
	if len(items) != 2 {
		t.Fatalf("loaded net lost incoming edges: %+v", items)
	}
	// Name index must be rebuilt.
	if m.FirstByNameKind("dress", KindPrimitive) == InvalidNode {
		t.Fatal("loaded net lost name index")
	}
	s1, s2 := n.ComputeStats(), m.ComputeStats()
	if s1.Edges != s2.Edges || s1.IsAPrimitive != s2.IsAPrimitive {
		t.Fatal("stats differ after round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Fatal("garbage should not load")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	n := NewNet()
	root := n.AddNode(KindClass, "root", "Category")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := n.AddNode(KindClass, fmt.Sprintf("c%d-%d", g, i), "Category")
				if err := n.AddEdge(id, root, EdgeIsA, "", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n.Descendants(root, 0)
				n.ComputeStats()
				n.FindByName("root")
			}
		}()
	}
	wg.Wait()
	if got := len(n.Descendants(root, 0)); got != 800 {
		t.Fatalf("descendants after concurrent build: got %d", got)
	}
}

// Property: Save/Load round-trips random nets exactly.
func TestPropertySaveLoadRandomNets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNet()
		var prims []NodeID
		for i := 0; i < 5+rng.Intn(20); i++ {
			prims = append(prims, n.AddNode(KindPrimitive, fmt.Sprintf("p%d", i), "Color"))
		}
		for i := 0; i < 30; i++ {
			a, b := prims[rng.Intn(len(prims))], prims[rng.Intn(len(prims))]
			if a == b {
				continue
			}
			_ = n.AddEdge(a, b, EdgeIsA, "", rng.Float64())
		}
		var buf bytes.Buffer
		if err := n.Save(&buf); err != nil {
			return false
		}
		m, err := Load(&buf)
		if err != nil {
			return false
		}
		if m.NumNodes() != n.NumNodes() || m.NumEdges() != n.NumEdges() {
			return false
		}
		for _, p := range prims {
			if len(m.Out(p, EdgeIsA)) != len(n.Out(p, EdgeIsA)) {
				return false
			}
			if len(m.In(p, EdgeIsA)) != len(n.In(p, EdgeIsA)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ancestors never contains the start node and never repeats.
func TestPropertyAncestorsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNet()
		var nodes []NodeID
		for i := 0; i < 10; i++ {
			nodes = append(nodes, n.AddNode(KindPrimitive, fmt.Sprintf("p%d", i), "X"))
		}
		for i := 0; i < 15; i++ {
			a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
			if a != b {
				_ = n.AddEdge(a, b, EdgeIsA, "", 1)
			}
		}
		start := nodes[rng.Intn(len(nodes))]
		anc := n.Ancestors(start, 0)
		seen := map[NodeID]bool{}
		for _, a := range anc {
			if a == start || seen[a] {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndEdgeStrings(t *testing.T) {
	if KindClass.String() != "class" || KindItem.String() != "item" {
		t.Fatal("NodeKind strings wrong")
	}
	if EdgeIsA.String() != "isA" || EdgeSchema.String() != "schema" {
		t.Fatal("EdgeKind strings wrong")
	}
	if NodeKind(99).String() != "invalid" || EdgeKind(99).String() != "invalid" {
		t.Fatal("invalid enums should say so")
	}
}
